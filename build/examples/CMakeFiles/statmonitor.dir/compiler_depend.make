# Empty compiler generated dependencies file for statmonitor.
# This may be replaced when dependencies are built.
