file(REMOVE_RECURSE
  "CMakeFiles/statmonitor.dir/statmonitor.cpp.o"
  "CMakeFiles/statmonitor.dir/statmonitor.cpp.o.d"
  "statmonitor"
  "statmonitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statmonitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
