file(REMOVE_RECURSE
  "CMakeFiles/cardfiler.dir/cardfiler.cpp.o"
  "CMakeFiles/cardfiler.dir/cardfiler.cpp.o.d"
  "cardfiler"
  "cardfiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardfiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
