# Empty compiler generated dependencies file for cardfiler.
# This may be replaced when dependencies are built.
