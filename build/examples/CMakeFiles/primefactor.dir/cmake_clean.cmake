file(REMOVE_RECURSE
  "CMakeFiles/primefactor.dir/primefactor.cpp.o"
  "CMakeFiles/primefactor.dir/primefactor.cpp.o.d"
  "primefactor"
  "primefactor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primefactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
