# Empty compiler generated dependencies file for primefactor.
# This may be replaced when dependencies are built.
