file(REMOVE_RECURSE
  "CMakeFiles/dirtree.dir/dirtree.cpp.o"
  "CMakeFiles/dirtree.dir/dirtree.cpp.o.d"
  "dirtree"
  "dirtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dirtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
