# Empty compiler generated dependencies file for dirtree.
# This may be replaced when dependencies are built.
