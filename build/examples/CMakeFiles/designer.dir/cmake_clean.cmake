file(REMOVE_RECURSE
  "CMakeFiles/designer.dir/designer.cpp.o"
  "CMakeFiles/designer.dir/designer.cpp.o.d"
  "designer"
  "designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
