# Empty dependencies file for designer.
# This may be replaced when dependencies are built.
