file(REMOVE_RECURSE
  "../bench/bench_callbacks"
  "../bench/bench_callbacks.pdb"
  "CMakeFiles/bench_callbacks.dir/bench_callbacks.cc.o"
  "CMakeFiles/bench_callbacks.dir/bench_callbacks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_callbacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
