# Empty dependencies file for bench_callbacks.
# This may be replaced when dependencies are built.
