# Empty dependencies file for bench_ext.
# This may be replaced when dependencies are built.
