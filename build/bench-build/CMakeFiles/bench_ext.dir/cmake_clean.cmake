file(REMOVE_RECURSE
  "../bench/bench_ext"
  "../bench/bench_ext.pdb"
  "CMakeFiles/bench_ext.dir/bench_ext.cc.o"
  "CMakeFiles/bench_ext.dir/bench_ext.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
