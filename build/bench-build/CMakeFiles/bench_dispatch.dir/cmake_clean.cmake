file(REMOVE_RECURSE
  "../bench/bench_dispatch"
  "../bench/bench_dispatch.pdb"
  "CMakeFiles/bench_dispatch.dir/bench_dispatch.cc.o"
  "CMakeFiles/bench_dispatch.dir/bench_dispatch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
