# Empty dependencies file for bench_codegen.
# This may be replaced when dependencies are built.
