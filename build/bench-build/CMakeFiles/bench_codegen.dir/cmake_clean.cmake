file(REMOVE_RECURSE
  "../bench/bench_codegen"
  "../bench/bench_codegen.pdb"
  "CMakeFiles/bench_codegen.dir/bench_codegen.cc.o"
  "CMakeFiles/bench_codegen.dir/bench_codegen.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
