file(REMOVE_RECURSE
  "../bench/bench_xrm"
  "../bench/bench_xrm.pdb"
  "CMakeFiles/bench_xrm.dir/bench_xrm.cc.o"
  "CMakeFiles/bench_xrm.dir/bench_xrm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
