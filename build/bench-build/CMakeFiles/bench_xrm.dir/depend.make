# Empty dependencies file for bench_xrm.
# This may be replaced when dependencies are built.
