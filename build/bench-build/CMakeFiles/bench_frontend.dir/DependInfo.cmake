
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_frontend.cc" "bench-build/CMakeFiles/bench_frontend.dir/bench_frontend.cc.o" "gcc" "bench-build/CMakeFiles/bench_frontend.dir/bench_frontend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wafecore.dir/DependInfo.cmake"
  "/root/repo/build/src/tcl/CMakeFiles/wtcl.dir/DependInfo.cmake"
  "/root/repo/build/src/xaw/CMakeFiles/xaw.dir/DependInfo.cmake"
  "/root/repo/build/src/xm/CMakeFiles/xmw.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/wext.dir/DependInfo.cmake"
  "/root/repo/build/src/xt/CMakeFiles/xtk.dir/DependInfo.cmake"
  "/root/repo/build/src/xsim/CMakeFiles/xsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
