file(REMOVE_RECURSE
  "../bench/bench_frontend"
  "../bench/bench_frontend.pdb"
  "CMakeFiles/bench_frontend.dir/bench_frontend.cc.o"
  "CMakeFiles/bench_frontend.dir/bench_frontend.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
