# Empty compiler generated dependencies file for bench_frontend.
# This may be replaced when dependencies are built.
