file(REMOVE_RECURSE
  "../bench/bench_actions"
  "../bench/bench_actions.pdb"
  "CMakeFiles/bench_actions.dir/bench_actions.cc.o"
  "CMakeFiles/bench_actions.dir/bench_actions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
