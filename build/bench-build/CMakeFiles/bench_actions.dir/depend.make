# Empty dependencies file for bench_actions.
# This may be replaced when dependencies are built.
