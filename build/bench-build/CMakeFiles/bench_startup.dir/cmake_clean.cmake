file(REMOVE_RECURSE
  "../bench/bench_startup"
  "../bench/bench_startup.pdb"
  "CMakeFiles/bench_startup.dir/bench_startup.cc.o"
  "CMakeFiles/bench_startup.dir/bench_startup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
