file(REMOVE_RECURSE
  "../bench/bench_tcl"
  "../bench/bench_tcl.pdb"
  "CMakeFiles/bench_tcl.dir/bench_tcl.cc.o"
  "CMakeFiles/bench_tcl.dir/bench_tcl.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
