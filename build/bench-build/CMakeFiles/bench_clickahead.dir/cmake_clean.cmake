file(REMOVE_RECURSE
  "../bench/bench_clickahead"
  "../bench/bench_clickahead.pdb"
  "CMakeFiles/bench_clickahead.dir/bench_clickahead.cc.o"
  "CMakeFiles/bench_clickahead.dir/bench_clickahead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clickahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
