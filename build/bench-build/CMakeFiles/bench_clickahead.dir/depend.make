# Empty dependencies file for bench_clickahead.
# This may be replaced when dependencies are built.
