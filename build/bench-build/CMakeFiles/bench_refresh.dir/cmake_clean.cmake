file(REMOVE_RECURSE
  "../bench/bench_refresh"
  "../bench/bench_refresh.pdb"
  "CMakeFiles/bench_refresh.dir/bench_refresh.cc.o"
  "CMakeFiles/bench_refresh.dir/bench_refresh.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
