# Empty compiler generated dependencies file for bench_xmstring.
# This may be replaced when dependencies are built.
