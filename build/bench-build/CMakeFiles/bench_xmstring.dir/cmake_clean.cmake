file(REMOVE_RECURSE
  "../bench/bench_xmstring"
  "../bench/bench_xmstring.pdb"
  "CMakeFiles/bench_xmstring.dir/bench_xmstring.cc.o"
  "CMakeFiles/bench_xmstring.dir/bench_xmstring.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xmstring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
