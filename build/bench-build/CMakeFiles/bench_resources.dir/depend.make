# Empty dependencies file for bench_resources.
# This may be replaced when dependencies are built.
