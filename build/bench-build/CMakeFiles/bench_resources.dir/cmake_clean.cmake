file(REMOVE_RECURSE
  "../bench/bench_resources"
  "../bench/bench_resources.pdb"
  "CMakeFiles/bench_resources.dir/bench_resources.cc.o"
  "CMakeFiles/bench_resources.dir/bench_resources.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
