# Empty compiler generated dependencies file for bench_masstransfer.
# This may be replaced when dependencies are built.
