file(REMOVE_RECURSE
  "../bench/bench_masstransfer"
  "../bench/bench_masstransfer.pdb"
  "CMakeFiles/bench_masstransfer.dir/bench_masstransfer.cc.o"
  "CMakeFiles/bench_masstransfer.dir/bench_masstransfer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_masstransfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
