# Empty compiler generated dependencies file for wext.
# This may be replaced when dependencies are built.
