file(REMOVE_RECURSE
  "libwext.a"
)
