
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ext/plotter.cc" "src/ext/CMakeFiles/wext.dir/plotter.cc.o" "gcc" "src/ext/CMakeFiles/wext.dir/plotter.cc.o.d"
  "/root/repo/src/ext/rdd.cc" "src/ext/CMakeFiles/wext.dir/rdd.cc.o" "gcc" "src/ext/CMakeFiles/wext.dir/rdd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xt/CMakeFiles/xtk.dir/DependInfo.cmake"
  "/root/repo/build/src/xsim/CMakeFiles/xsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
