file(REMOVE_RECURSE
  "CMakeFiles/wext.dir/plotter.cc.o"
  "CMakeFiles/wext.dir/plotter.cc.o.d"
  "CMakeFiles/wext.dir/rdd.cc.o"
  "CMakeFiles/wext.dir/rdd.cc.o.d"
  "libwext.a"
  "libwext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
