file(REMOVE_RECURSE
  "CMakeFiles/xsim.dir/color.cc.o"
  "CMakeFiles/xsim.dir/color.cc.o.d"
  "CMakeFiles/xsim.dir/display.cc.o"
  "CMakeFiles/xsim.dir/display.cc.o.d"
  "CMakeFiles/xsim.dir/event.cc.o"
  "CMakeFiles/xsim.dir/event.cc.o.d"
  "CMakeFiles/xsim.dir/font.cc.o"
  "CMakeFiles/xsim.dir/font.cc.o.d"
  "CMakeFiles/xsim.dir/keysym.cc.o"
  "CMakeFiles/xsim.dir/keysym.cc.o.d"
  "CMakeFiles/xsim.dir/pixmap.cc.o"
  "CMakeFiles/xsim.dir/pixmap.cc.o.d"
  "libxsim.a"
  "libxsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
