file(REMOVE_RECURSE
  "libxsim.a"
)
