# Empty compiler generated dependencies file for xsim.
# This may be replaced when dependencies are built.
