
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xsim/color.cc" "src/xsim/CMakeFiles/xsim.dir/color.cc.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/color.cc.o.d"
  "/root/repo/src/xsim/display.cc" "src/xsim/CMakeFiles/xsim.dir/display.cc.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/display.cc.o.d"
  "/root/repo/src/xsim/event.cc" "src/xsim/CMakeFiles/xsim.dir/event.cc.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/event.cc.o.d"
  "/root/repo/src/xsim/font.cc" "src/xsim/CMakeFiles/xsim.dir/font.cc.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/font.cc.o.d"
  "/root/repo/src/xsim/keysym.cc" "src/xsim/CMakeFiles/xsim.dir/keysym.cc.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/keysym.cc.o.d"
  "/root/repo/src/xsim/pixmap.cc" "src/xsim/CMakeFiles/xsim.dir/pixmap.cc.o" "gcc" "src/xsim/CMakeFiles/xsim.dir/pixmap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
