file(REMOVE_RECURSE
  "libxaw.a"
)
