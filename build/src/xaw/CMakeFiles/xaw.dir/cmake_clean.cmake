file(REMOVE_RECURSE
  "CMakeFiles/xaw.dir/athena.cc.o"
  "CMakeFiles/xaw.dir/athena.cc.o.d"
  "CMakeFiles/xaw.dir/athena_containers.cc.o"
  "CMakeFiles/xaw.dir/athena_containers.cc.o.d"
  "CMakeFiles/xaw.dir/athena_core.cc.o"
  "CMakeFiles/xaw.dir/athena_core.cc.o.d"
  "CMakeFiles/xaw.dir/athena_list.cc.o"
  "CMakeFiles/xaw.dir/athena_list.cc.o.d"
  "CMakeFiles/xaw.dir/athena_menu.cc.o"
  "CMakeFiles/xaw.dir/athena_menu.cc.o.d"
  "CMakeFiles/xaw.dir/athena_misc.cc.o"
  "CMakeFiles/xaw.dir/athena_misc.cc.o.d"
  "CMakeFiles/xaw.dir/athena_text.cc.o"
  "CMakeFiles/xaw.dir/athena_text.cc.o.d"
  "libxaw.a"
  "libxaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
