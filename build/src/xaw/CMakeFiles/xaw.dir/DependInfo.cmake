
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xaw/athena.cc" "src/xaw/CMakeFiles/xaw.dir/athena.cc.o" "gcc" "src/xaw/CMakeFiles/xaw.dir/athena.cc.o.d"
  "/root/repo/src/xaw/athena_containers.cc" "src/xaw/CMakeFiles/xaw.dir/athena_containers.cc.o" "gcc" "src/xaw/CMakeFiles/xaw.dir/athena_containers.cc.o.d"
  "/root/repo/src/xaw/athena_core.cc" "src/xaw/CMakeFiles/xaw.dir/athena_core.cc.o" "gcc" "src/xaw/CMakeFiles/xaw.dir/athena_core.cc.o.d"
  "/root/repo/src/xaw/athena_list.cc" "src/xaw/CMakeFiles/xaw.dir/athena_list.cc.o" "gcc" "src/xaw/CMakeFiles/xaw.dir/athena_list.cc.o.d"
  "/root/repo/src/xaw/athena_menu.cc" "src/xaw/CMakeFiles/xaw.dir/athena_menu.cc.o" "gcc" "src/xaw/CMakeFiles/xaw.dir/athena_menu.cc.o.d"
  "/root/repo/src/xaw/athena_misc.cc" "src/xaw/CMakeFiles/xaw.dir/athena_misc.cc.o" "gcc" "src/xaw/CMakeFiles/xaw.dir/athena_misc.cc.o.d"
  "/root/repo/src/xaw/athena_text.cc" "src/xaw/CMakeFiles/xaw.dir/athena_text.cc.o" "gcc" "src/xaw/CMakeFiles/xaw.dir/athena_text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xt/CMakeFiles/xtk.dir/DependInfo.cmake"
  "/root/repo/build/src/xsim/CMakeFiles/xsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
