# Empty compiler generated dependencies file for xaw.
# This may be replaced when dependencies are built.
