# Empty dependencies file for xmw.
# This may be replaced when dependencies are built.
