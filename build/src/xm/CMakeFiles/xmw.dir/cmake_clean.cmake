file(REMOVE_RECURSE
  "CMakeFiles/xmw.dir/motif.cc.o"
  "CMakeFiles/xmw.dir/motif.cc.o.d"
  "CMakeFiles/xmw.dir/xmstring.cc.o"
  "CMakeFiles/xmw.dir/xmstring.cc.o.d"
  "libxmw.a"
  "libxmw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
