file(REMOVE_RECURSE
  "libxmw.a"
)
