file(REMOVE_RECURSE
  "CMakeFiles/xtk.dir/app.cc.o"
  "CMakeFiles/xtk.dir/app.cc.o.d"
  "CMakeFiles/xtk.dir/classes.cc.o"
  "CMakeFiles/xtk.dir/classes.cc.o.d"
  "CMakeFiles/xtk.dir/converter.cc.o"
  "CMakeFiles/xtk.dir/converter.cc.o.d"
  "CMakeFiles/xtk.dir/translations.cc.o"
  "CMakeFiles/xtk.dir/translations.cc.o.d"
  "CMakeFiles/xtk.dir/widget.cc.o"
  "CMakeFiles/xtk.dir/widget.cc.o.d"
  "CMakeFiles/xtk.dir/xrm.cc.o"
  "CMakeFiles/xtk.dir/xrm.cc.o.d"
  "libxtk.a"
  "libxtk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
