
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xt/app.cc" "src/xt/CMakeFiles/xtk.dir/app.cc.o" "gcc" "src/xt/CMakeFiles/xtk.dir/app.cc.o.d"
  "/root/repo/src/xt/classes.cc" "src/xt/CMakeFiles/xtk.dir/classes.cc.o" "gcc" "src/xt/CMakeFiles/xtk.dir/classes.cc.o.d"
  "/root/repo/src/xt/converter.cc" "src/xt/CMakeFiles/xtk.dir/converter.cc.o" "gcc" "src/xt/CMakeFiles/xtk.dir/converter.cc.o.d"
  "/root/repo/src/xt/translations.cc" "src/xt/CMakeFiles/xtk.dir/translations.cc.o" "gcc" "src/xt/CMakeFiles/xtk.dir/translations.cc.o.d"
  "/root/repo/src/xt/widget.cc" "src/xt/CMakeFiles/xtk.dir/widget.cc.o" "gcc" "src/xt/CMakeFiles/xtk.dir/widget.cc.o.d"
  "/root/repo/src/xt/xrm.cc" "src/xt/CMakeFiles/xtk.dir/xrm.cc.o" "gcc" "src/xt/CMakeFiles/xtk.dir/xrm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xsim/CMakeFiles/xsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
