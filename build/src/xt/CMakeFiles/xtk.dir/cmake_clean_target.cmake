file(REMOVE_RECURSE
  "libxtk.a"
)
