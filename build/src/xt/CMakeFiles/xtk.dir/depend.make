# Empty dependencies file for xtk.
# This may be replaced when dependencies are built.
