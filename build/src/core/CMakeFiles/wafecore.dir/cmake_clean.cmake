file(REMOVE_RECURSE
  "CMakeFiles/wafecore.dir/comm.cc.o"
  "CMakeFiles/wafecore.dir/comm.cc.o.d"
  "CMakeFiles/wafecore.dir/commands.cc.o"
  "CMakeFiles/wafecore.dir/commands.cc.o.d"
  "CMakeFiles/wafecore.dir/commands_widgets.cc.o"
  "CMakeFiles/wafecore.dir/commands_widgets.cc.o.d"
  "CMakeFiles/wafecore.dir/converters.cc.o"
  "CMakeFiles/wafecore.dir/converters.cc.o.d"
  "CMakeFiles/wafecore.dir/naming.cc.o"
  "CMakeFiles/wafecore.dir/naming.cc.o.d"
  "CMakeFiles/wafecore.dir/percent.cc.o"
  "CMakeFiles/wafecore.dir/percent.cc.o.d"
  "CMakeFiles/wafecore.dir/spec.cc.o"
  "CMakeFiles/wafecore.dir/spec.cc.o.d"
  "CMakeFiles/wafecore.dir/wafe.cc.o"
  "CMakeFiles/wafecore.dir/wafe.cc.o.d"
  "libwafecore.a"
  "libwafecore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafecore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
