
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/comm.cc" "src/core/CMakeFiles/wafecore.dir/comm.cc.o" "gcc" "src/core/CMakeFiles/wafecore.dir/comm.cc.o.d"
  "/root/repo/src/core/commands.cc" "src/core/CMakeFiles/wafecore.dir/commands.cc.o" "gcc" "src/core/CMakeFiles/wafecore.dir/commands.cc.o.d"
  "/root/repo/src/core/commands_widgets.cc" "src/core/CMakeFiles/wafecore.dir/commands_widgets.cc.o" "gcc" "src/core/CMakeFiles/wafecore.dir/commands_widgets.cc.o.d"
  "/root/repo/src/core/converters.cc" "src/core/CMakeFiles/wafecore.dir/converters.cc.o" "gcc" "src/core/CMakeFiles/wafecore.dir/converters.cc.o.d"
  "/root/repo/src/core/naming.cc" "src/core/CMakeFiles/wafecore.dir/naming.cc.o" "gcc" "src/core/CMakeFiles/wafecore.dir/naming.cc.o.d"
  "/root/repo/src/core/percent.cc" "src/core/CMakeFiles/wafecore.dir/percent.cc.o" "gcc" "src/core/CMakeFiles/wafecore.dir/percent.cc.o.d"
  "/root/repo/src/core/spec.cc" "src/core/CMakeFiles/wafecore.dir/spec.cc.o" "gcc" "src/core/CMakeFiles/wafecore.dir/spec.cc.o.d"
  "/root/repo/src/core/wafe.cc" "src/core/CMakeFiles/wafecore.dir/wafe.cc.o" "gcc" "src/core/CMakeFiles/wafecore.dir/wafe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcl/CMakeFiles/wtcl.dir/DependInfo.cmake"
  "/root/repo/build/src/xt/CMakeFiles/xtk.dir/DependInfo.cmake"
  "/root/repo/build/src/xaw/CMakeFiles/xaw.dir/DependInfo.cmake"
  "/root/repo/build/src/xm/CMakeFiles/xmw.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/wext.dir/DependInfo.cmake"
  "/root/repo/build/src/xsim/CMakeFiles/xsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
