file(REMOVE_RECURSE
  "libwafecore.a"
)
