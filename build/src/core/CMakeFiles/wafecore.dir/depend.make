# Empty dependencies file for wafecore.
# This may be replaced when dependencies are built.
