file(REMOVE_RECURSE
  "CMakeFiles/wafe.dir/wafe_main.cc.o"
  "CMakeFiles/wafe.dir/wafe_main.cc.o.d"
  "wafe"
  "wafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
