# Empty dependencies file for wafe.
# This may be replaced when dependencies are built.
