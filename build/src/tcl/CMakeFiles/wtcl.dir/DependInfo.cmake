
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcl/builtins_array.cc" "src/tcl/CMakeFiles/wtcl.dir/builtins_array.cc.o" "gcc" "src/tcl/CMakeFiles/wtcl.dir/builtins_array.cc.o.d"
  "/root/repo/src/tcl/builtins_core.cc" "src/tcl/CMakeFiles/wtcl.dir/builtins_core.cc.o" "gcc" "src/tcl/CMakeFiles/wtcl.dir/builtins_core.cc.o.d"
  "/root/repo/src/tcl/builtins_io.cc" "src/tcl/CMakeFiles/wtcl.dir/builtins_io.cc.o" "gcc" "src/tcl/CMakeFiles/wtcl.dir/builtins_io.cc.o.d"
  "/root/repo/src/tcl/builtins_list.cc" "src/tcl/CMakeFiles/wtcl.dir/builtins_list.cc.o" "gcc" "src/tcl/CMakeFiles/wtcl.dir/builtins_list.cc.o.d"
  "/root/repo/src/tcl/builtins_string.cc" "src/tcl/CMakeFiles/wtcl.dir/builtins_string.cc.o" "gcc" "src/tcl/CMakeFiles/wtcl.dir/builtins_string.cc.o.d"
  "/root/repo/src/tcl/expr.cc" "src/tcl/CMakeFiles/wtcl.dir/expr.cc.o" "gcc" "src/tcl/CMakeFiles/wtcl.dir/expr.cc.o.d"
  "/root/repo/src/tcl/interp.cc" "src/tcl/CMakeFiles/wtcl.dir/interp.cc.o" "gcc" "src/tcl/CMakeFiles/wtcl.dir/interp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
