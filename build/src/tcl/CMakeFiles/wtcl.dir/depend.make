# Empty dependencies file for wtcl.
# This may be replaced when dependencies are built.
