file(REMOVE_RECURSE
  "libwtcl.a"
)
