file(REMOVE_RECURSE
  "CMakeFiles/wtcl.dir/builtins_array.cc.o"
  "CMakeFiles/wtcl.dir/builtins_array.cc.o.d"
  "CMakeFiles/wtcl.dir/builtins_core.cc.o"
  "CMakeFiles/wtcl.dir/builtins_core.cc.o.d"
  "CMakeFiles/wtcl.dir/builtins_io.cc.o"
  "CMakeFiles/wtcl.dir/builtins_io.cc.o.d"
  "CMakeFiles/wtcl.dir/builtins_list.cc.o"
  "CMakeFiles/wtcl.dir/builtins_list.cc.o.d"
  "CMakeFiles/wtcl.dir/builtins_string.cc.o"
  "CMakeFiles/wtcl.dir/builtins_string.cc.o.d"
  "CMakeFiles/wtcl.dir/expr.cc.o"
  "CMakeFiles/wtcl.dir/expr.cc.o.d"
  "CMakeFiles/wtcl.dir/interp.cc.o"
  "CMakeFiles/wtcl.dir/interp.cc.o.d"
  "libwtcl.a"
  "libwtcl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wtcl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
