
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_app_loop.cc" "tests/CMakeFiles/wafe_tests.dir/test_app_loop.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_app_loop.cc.o.d"
  "/root/repo/tests/test_binary.cc" "tests/CMakeFiles/wafe_tests.dir/test_binary.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_binary.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/wafe_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_frontend.cc" "tests/CMakeFiles/wafe_tests.dir/test_frontend.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_frontend.cc.o.d"
  "/root/repo/tests/test_misc_gaps.cc" "tests/CMakeFiles/wafe_tests.dir/test_misc_gaps.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_misc_gaps.cc.o.d"
  "/root/repo/tests/test_motif_widgets.cc" "tests/CMakeFiles/wafe_tests.dir/test_motif_widgets.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_motif_widgets.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/wafe_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_selections.cc" "tests/CMakeFiles/wafe_tests.dir/test_selections.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_selections.cc.o.d"
  "/root/repo/tests/test_tcl_commands.cc" "tests/CMakeFiles/wafe_tests.dir/test_tcl_commands.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_tcl_commands.cc.o.d"
  "/root/repo/tests/test_tcl_edge.cc" "tests/CMakeFiles/wafe_tests.dir/test_tcl_edge.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_tcl_edge.cc.o.d"
  "/root/repo/tests/test_tcl_expr.cc" "tests/CMakeFiles/wafe_tests.dir/test_tcl_expr.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_tcl_expr.cc.o.d"
  "/root/repo/tests/test_tcl_parser.cc" "tests/CMakeFiles/wafe_tests.dir/test_tcl_parser.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_tcl_parser.cc.o.d"
  "/root/repo/tests/test_text_selection.cc" "tests/CMakeFiles/wafe_tests.dir/test_text_selection.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_text_selection.cc.o.d"
  "/root/repo/tests/test_translations.cc" "tests/CMakeFiles/wafe_tests.dir/test_translations.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_translations.cc.o.d"
  "/root/repo/tests/test_viewport_tour.cc" "tests/CMakeFiles/wafe_tests.dir/test_viewport_tour.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_viewport_tour.cc.o.d"
  "/root/repo/tests/test_wafe_core.cc" "tests/CMakeFiles/wafe_tests.dir/test_wafe_core.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_wafe_core.cc.o.d"
  "/root/repo/tests/test_widgets.cc" "tests/CMakeFiles/wafe_tests.dir/test_widgets.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_widgets.cc.o.d"
  "/root/repo/tests/test_widgets2.cc" "tests/CMakeFiles/wafe_tests.dir/test_widgets2.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_widgets2.cc.o.d"
  "/root/repo/tests/test_xrm.cc" "tests/CMakeFiles/wafe_tests.dir/test_xrm.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_xrm.cc.o.d"
  "/root/repo/tests/test_xsim.cc" "tests/CMakeFiles/wafe_tests.dir/test_xsim.cc.o" "gcc" "tests/CMakeFiles/wafe_tests.dir/test_xsim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wafecore.dir/DependInfo.cmake"
  "/root/repo/build/src/tcl/CMakeFiles/wtcl.dir/DependInfo.cmake"
  "/root/repo/build/src/xsim/CMakeFiles/xsim.dir/DependInfo.cmake"
  "/root/repo/build/src/xt/CMakeFiles/xtk.dir/DependInfo.cmake"
  "/root/repo/build/src/xaw/CMakeFiles/xaw.dir/DependInfo.cmake"
  "/root/repo/build/src/xm/CMakeFiles/xmw.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/wext.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
