# Empty dependencies file for wafe_tests.
# This may be replaced when dependencies are built.
