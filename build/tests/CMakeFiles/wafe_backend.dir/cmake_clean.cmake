file(REMOVE_RECURSE
  "CMakeFiles/wafe_backend.dir/helpers/wafe_backend.cc.o"
  "CMakeFiles/wafe_backend.dir/helpers/wafe_backend.cc.o.d"
  "wafe_backend"
  "wafe_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wafe_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
