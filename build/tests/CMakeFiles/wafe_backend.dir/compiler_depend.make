# Empty compiler generated dependencies file for wafe_backend.
# This may be replaced when dependencies are built.
