#!/bin/sh
# check_all.sh [default|asan|ubsan]
#
# One-shot gate: configure + build the selected preset, run the core (tier-1)
# test suite, then each labeled concern suite in turn so a failure localizes
# to its subsystem:
#
#   default  -> build/        (RelWithDebInfo)
#   asan     -> build-asan/   (WAFE_SANITIZE=ON,   preset "sanitize")
#   ubsan    -> build-ubsan/  (WAFE_SANITIZE=UBSAN, preset "ubsan")
#
# Labels run: tcl comm faults obs ui oracle replay. The oracle differential tests
# self-skip (exit 77) when no reference tclsh is available; that counts as a
# pass here, matching ctest's "skipped" accounting. perf benches are slow and
# only run when WAFE_CHECK_PERF=1.

set -eu

mode=${1:-default}
case "$mode" in
  default) preset=default;  build_dir=build ;;
  asan)    preset=sanitize; build_dir=build-asan ;;
  ubsan)   preset=ubsan;    build_dir=build-ubsan ;;
  *) echo "usage: $0 [default|asan|ubsan]" >&2; exit 2 ;;
esac

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$repo"

labels="tcl comm faults obs ui oracle replay"
[ "${WAFE_CHECK_PERF:-0}" = "1" ] && labels="$labels perf"

echo "== configure ($preset -> $build_dir)"
cmake --preset "$preset" >/dev/null
echo "== build"
cmake --build "$build_dir" -j "$(nproc)"

status=0

echo "== core (unlabeled tier-1)"
if ! ctest --test-dir "$build_dir" -LE 'tcl|comm|faults|obs|ui|perf|oracle|replay' \
     --output-on-failure; then
  status=1
fi

for label in $labels; do
  echo "== label: $label"
  if ! ctest --test-dir "$build_dir" -L "$label" --output-on-failure; then
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_all: OK ($mode)"
else
  echo "check_all: FAILURES ($mode)" >&2
fi
exit "$status"
