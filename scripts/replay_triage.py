#!/usr/bin/env python3
"""Minimize fault-tripping session journals into committed regression entries.

Workflow:

    # 1. Capture: a recording session trips a guard (circuit breaker, eval
    #    limit); the journal is on disk. Convert it to the editable text form.
    build/src/core/wreplay --dump crash.wj > /tmp/crash.wjt

    # 2. Distill: minimize the text journal while replaying it still trips
    #    the same guard, then drop the result into the committed corpus with
    #    an #expect directive pinning the metric.
    scripts/replay_triage.py --wreplay build/src/core/wreplay \
        --expect tcl.eval.limit.steps \
        --out tests/replay/corpus/my_fault.wjt /tmp/crash.wjt

Minimization is a greedy delta-debugging pass over the journal's records: a
reduction is kept only while `wreplay <journal>` still exits 0 AND its
replay summary still shows the signature the fault left behind (for
--expect tcl.* / comm.* guards, the trip is detected by replaying under
WAFE_METRICS=1 and checking the summary's evalTrips count or, for line-level
faults, the given --signature regex against wreplay's combined output).
Records the replay summary of the minimized journal as a trailing comment.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

MAGIC = "# wafe-journal-text 1"


def read_journal(path):
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    if not lines or lines[0] != MAGIC:
        sys.exit(f"{path}: not a text journal (expected '{MAGIC}'); "
                 "convert with: wreplay --dump <binary.wj>")
    body = [l for l in lines[1:] if l.strip() and not l.startswith("#")]
    return body


def write_journal(path, records, comments=()):
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(MAGIC + "\n")
        for comment in comments:
            fh.write(comment.rstrip() + "\n")
        for record in records:
            fh.write(record + "\n")


def run_replay(wreplay, records, signature):
    """Replays the candidate; returns True when the fault signature is there."""
    with tempfile.NamedTemporaryFile("w", suffix=".wjt", delete=False) as fh:
        fh.write(MAGIC + "\n")
        for record in records:
            fh.write(record + "\n")
        candidate = fh.name
    try:
        env = dict(os.environ, WAFE_METRICS="1")
        proc = subprocess.run([wreplay, candidate], capture_output=True,
                              text=True, timeout=60, env=env)
        if proc.returncode != 0:
            return False
        return re.search(signature, proc.stdout + proc.stderr) is not None
    except subprocess.TimeoutExpired:
        return False
    finally:
        os.unlink(candidate)


def ddmin(records, still_fails):
    """Classic greedy ddmin over the record list."""
    chunk = max(1, len(records) // 2)
    while chunk >= 1:
        shrunk = True
        while shrunk:
            shrunk = False
            i = 0
            while i < len(records):
                candidate = records[:i] + records[i + chunk:]
                if candidate and still_fails(candidate):
                    records = candidate
                    shrunk = True
                else:
                    i += chunk
        chunk //= 2
    return records


def main():
    parser = argparse.ArgumentParser(
        description="minimize a fault-tripping session journal")
    parser.add_argument("--wreplay", required=True, help="wreplay binary")
    parser.add_argument("--out", required=True, help="minimized journal path")
    parser.add_argument("--expect", action="append", default=[],
                        help="metric name to pin in an #expect directive "
                             "(repeatable); written with min-delta 1")
    parser.add_argument("--signature", default=None,
                        help="regex the replay output must keep matching "
                             "(default: derived from the original run)")
    parser.add_argument("journal", help="text journal to minimize (.wjt)")
    args = parser.parse_args()

    records = read_journal(args.journal)
    if not records:
        sys.exit(f"{args.journal}: no records")

    if args.signature is not None:
        signature = args.signature
    elif args.expect:
        # Pin the metric the fault fires: wreplay prints every non-zero
        # counter after the replay ("replay: metric <name> <n>").
        signature = "|".join(rf"replay: metric {re.escape(m)} [1-9]"
                             for m in args.expect)
    else:
        # Default signature: the guard trips show up in the replay summary's
        # counts — a journal that stops tripping stops matching.
        signature = r"evalTrips [1-9]|gone [1-9]"
        if not run_replay(args.wreplay, records, signature):
            # Fall back to "replays clean at all": minimization then only
            # guards against breaking the journal outright.
            signature = r"^replay: records"

    if not run_replay(args.wreplay, records, signature):
        sys.exit(f"{args.journal}: replay does not match signature "
                 f"/{signature}/ before minimization; nothing to distill")

    minimized = ddmin(records, lambda r: run_replay(args.wreplay, r, signature))
    print(f"minimized {len(records)} -> {len(minimized)} records")

    comments = [f"# Minimized by replay_triage.py from {os.path.basename(args.journal)}",
                f"# signature: {signature}"]
    comments += [f"#expect {metric} 1" for metric in args.expect]
    write_journal(args.out, minimized, comments)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
