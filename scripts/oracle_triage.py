#!/usr/bin/env python3
"""Distill oracle divergences into minimized, committed corpus entries.

Workflow:

    # 1. Hunt: run the seeded generator (or a corpus) and emit every
    #    diverging case as a .test skeleton into a scratch directory.
    build/tests/oracle_runner --generate 2000 --seed 7 --mode diff --emit /tmp/div

    # 2. Distill: minimize each skeleton while it still diverges, record
    #    wtcl's outcome as the embedded expectation, and drop the result
    #    into the committed corpus.
    scripts/oracle_triage.py --runner build/tests/oracle_runner \
        --out tests/oracle/corpus /tmp/div/*.test

Minimization is a greedy delta-debugging pass over lines, then over
space-separated words of each line: a reduction is kept only while
`oracle_runner --case F --mode diff` still reports a divergence in the SAME
fields (result/code/errorinfo) as the original, so shrinking cannot slide
into an unrelated failure mode. Cases whose divergence disappears during
recheck (e.g. already fixed) are skipped.

After the interpreter is fixed, refresh the committed expectations with:

    build/tests/oracle_runner --corpus tests/oracle/corpus --record
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

DIVERGENCE_EXIT = 1
SKIP_EXIT = 77


def parse_case(text):
    """Returns (comments, sections) where sections is a list of (tag, body)."""
    comments = []
    sections = []
    tag = None
    body = []
    for line in text.splitlines():
        if tag is None and line.startswith("#"):
            comments.append(line)
            continue
        m = re.match(r"%% (\w+)( .*)?$", line)
        if m:
            if tag is not None:
                sections.append((tag, "\n".join(body)))
            tag = m.group(1) + (m.group(2) or "")
            body = []
        elif tag is not None:
            body.append(line)
    if tag is not None:
        sections.append((tag, "\n".join(body)))
    return comments, sections


def render_case(script, flags=""):
    out = []
    if flags:
        out.append("%% flags " + flags)
    out.append("%% script")
    out.append(script)
    return "\n".join(out) + "\n"


def run_case(runner, script, flags, workdir):
    """Returns (diverged, signature). The signature is the sorted tuple of
    diverging fields ("result", "code", "errorinfo", ...) so the minimizer
    can reject reductions that slip into a *different* failure mode (e.g. a
    numeric divergence collapsing into a syntax-error divergence)."""
    path = os.path.join(workdir, "candidate.test")
    with open(path, "w") as f:
        f.write(render_case(script, flags))
    proc = subprocess.run(
        [runner, "--case", path, "--mode", "diff"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    if proc.returncode != DIVERGENCE_EXIT:
        return False, ()
    fields = re.findall(r"^\s*diff (\w+):", proc.stdout, re.MULTILINE)
    return True, tuple(sorted(set(fields)))


def minimize(runner, script, flags, signature, workdir):
    """Greedy ddmin over lines, then over words of each surviving line. A
    reduction is kept only if the same fields still diverge."""
    def still_diverges(candidate):
        diverged, sig = run_case(runner, candidate, flags, workdir)
        return diverged and sig == signature

    lines = script.splitlines()
    changed = True
    while changed and len(lines) > 1:
        changed = False
        for i in range(len(lines)):
            candidate = lines[:i] + lines[i + 1:]
            if still_diverges("\n".join(candidate)):
                lines = candidate
                changed = True
                break
    # Word-level pass: try dropping words from each surviving line.
    for i, line in enumerate(lines):
        words = line.split(" ")
        changed = True
        while changed and len(words) > 1:
            changed = False
            for j in range(len(words)):
                candidate_words = words[:j] + words[j + 1:]
                candidate = lines[:i] + [" ".join(candidate_words)] + lines[i + 1:]
                if still_diverges("\n".join(candidate)):
                    words = candidate_words
                    changed = True
                    break
        lines[i] = " ".join(words)
    return "\n".join(lines)


def record(runner, path):
    """Fills the case's expectations from wtcl's current outcome."""
    subprocess.run([runner, "--case", path, "--record"],
                   stdout=subprocess.DEVNULL, check=True)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("cases", nargs="+", help=".test skeletons (from --emit)")
    ap.add_argument("--runner", required=True, help="path to oracle_runner")
    ap.add_argument("--out", required=True, help="committed corpus directory")
    ap.add_argument("--keep-name", action="store_true",
                    help="keep input file names instead of div-NN numbering")
    args = ap.parse_args()

    probe = subprocess.run([args.runner, "--generate", "1", "--seed", "1",
                            "--mode", "diff"], stdout=subprocess.DEVNULL)
    if probe.returncode == SKIP_EXIT:
        print("oracle_triage: no reference tclsh found "
              "(set WAFE_TCLSH or add tclsh to PATH)", file=sys.stderr)
        return 2

    written = 0
    with tempfile.TemporaryDirectory(prefix="oracle-triage-") as workdir:
        for case_path in args.cases:
            with open(case_path) as f:
                comments, sections = parse_case(f.read())
            script = next((b for t, b in sections if t == "script"), None)
            flags = next((t[len("flags "):] for t, b in sections
                          if t.startswith("flags")), "")
            if script is None:
                print(f"{case_path}: no %% script section, skipped")
                continue
            diverged, signature = run_case(args.runner, script, flags, workdir)
            if not diverged:
                print(f"{case_path}: no longer diverges, skipped")
                continue
            small = minimize(args.runner, script, flags, signature, workdir)
            base = os.path.basename(case_path)
            name = base if args.keep_name else f"div-{written:02d}-{base}"
            out_path = os.path.join(args.out, name)
            with open(out_path, "w") as f:
                f.write(f"# oracle spec case: {os.path.splitext(name)[0]}\n")
                f.write(render_case(small, flags))
            record(args.runner, out_path)
            print(f"{case_path}: minimized "
                  f"{len(script.splitlines())} -> {len(small.splitlines())} "
                  f"line(s), wrote {out_path}")
            written += 1
    print(f"oracle_triage: {written} corpus entr{'y' if written == 1 else 'ies'} written")
    return 0


if __name__ == "__main__":
    sys.exit(main())
