#!/usr/bin/env python3
"""Guard against performance regressions in the committed BENCH_*.json files.

Runs a benchmark binary with `--json` into a temporary file and compares the
fresh per-benchmark `real_time` against the committed baseline JSON. The run
fails (exit 1) if any benchmark present in both reports regressed by more
than the threshold (default 25%). Benchmarks that exist on only one side are
reported but never fail the run, so adding or retiring cases does not break
the gate before the baseline is refreshed.

Timing on shared CI machines is noisy, so the gate is opt-in: unless
WAFE_PERF is set to a non-empty value other than "0", the script exits with
code 77 (the ctest SKIP_RETURN_CODE), making `ctest -L perf` a no-op by
default and a real check when explicitly armed:

    WAFE_PERF=1 ctest -L perf --output-on-failure

Usage: bench_compare.py [--threshold PCT] BENCH_BINARY BASELINE_JSON
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SKIP_EXIT_CODE = 77


def load_benchmarks(path):
    """Maps benchmark name -> real_time (ns), skipping aggregate rows."""
    with open(path, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real_time = bench.get("real_time")
        if name is not None and real_time is not None:
            times[name] = float(real_time)
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="maximum allowed regression in percent (default 25)")
    parser.add_argument("bench_binary", help="benchmark executable to run")
    parser.add_argument("baseline_json", help="committed BENCH_*.json to compare against")
    args = parser.parse_args()

    if os.environ.get("WAFE_PERF", "0") in ("", "0"):
        print("WAFE_PERF not set; skipping perf comparison (exit 77)")
        return SKIP_EXIT_CODE

    baseline = load_benchmarks(args.baseline_json)
    if not baseline:
        print(f"error: no benchmarks in baseline {args.baseline_json}", file=sys.stderr)
        return 1

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        subprocess.run([args.bench_binary, "--json", fresh_path], check=True,
                       stdout=subprocess.DEVNULL)
        fresh = load_benchmarks(fresh_path)
    finally:
        os.unlink(fresh_path)

    failures = []
    for name in sorted(baseline):
        if name not in fresh:
            print(f"  [gone]  {name} (in baseline only; refresh the JSON?)")
            continue
        old, new = baseline[name], fresh[name]
        delta_pct = (new - old) / old * 100.0
        verdict = "FAIL" if delta_pct > args.threshold else "ok"
        print(f"  [{verdict:>4}] {name}: {old:.0f} ns -> {new:.0f} ns ({delta_pct:+.1f}%)")
        if delta_pct > args.threshold:
            failures.append(name)
    for name in sorted(set(fresh) - set(baseline)):
        print(f"  [new ]  {name}: {fresh[name]:.0f} ns (not in baseline)")

    if failures:
        print(f"\n{len(failures)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}% vs {args.baseline_json}: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print(f"\nno regression beyond {args.threshold:.0f}% vs {args.baseline_json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
