// Scrollbar, StripChart, and Grip.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/xaw/athena_internal.h"
#include "src/xt/app.h"

namespace xaw {

namespace {

using RT = xtk::ResourceType;
using xtk::CallData;
using xtk::Widget;

constexpr char kSamplesKey[] = "_samples";

double ThumbFraction(const Widget& scrollbar, const xsim::Event& event) {
  bool vertical = scrollbar.GetString("orientation") != "horizontal";
  long length = vertical ? static_cast<long>(scrollbar.height())
                         : static_cast<long>(scrollbar.width());
  if (length <= 0) {
    return 0.0;
  }
  long at = vertical ? event.y : event.x;
  double fraction = static_cast<double>(at) / static_cast<double>(length);
  return std::clamp(fraction, 0.0, 1.0);
}

void ScrollbarExpose(Widget& w) {
  if (!w.realized()) {
    return;
  }
  double top = w.GetFloat("topOfThumb");
  double shown = w.GetFloat("shown", 1.0);
  bool vertical = w.GetString("orientation") != "horizontal";
  xsim::Pixel fg = w.GetPixel("foreground", xsim::kBlackPixel);
  if (vertical) {
    xsim::Position y = static_cast<xsim::Position>(top * w.height());
    xsim::Dimension h = static_cast<xsim::Dimension>(std::max(1.0, shown * w.height()));
    w.display().FillRect(w.window(), xsim::Rect{0, y, w.width(), h}, fg);
  } else {
    xsim::Position x = static_cast<xsim::Position>(top * w.width());
    xsim::Dimension thumb_w = static_cast<xsim::Dimension>(std::max(1.0, shown * w.width()));
    w.display().FillRect(w.window(), xsim::Rect{x, 0, thumb_w, w.height()}, fg);
  }
  DrawShadow(w, /*sunken=*/true);
}

std::vector<double> ChartSamples(const Widget& chart) {
  std::vector<double> samples;
  for (const std::string& s : chart.GetStringList(kSamplesKey)) {
    samples.push_back(std::strtod(s.c_str(), nullptr));
  }
  return samples;
}

// StripChart polls its getValue callback every `update` seconds (the Xaw
// contract behind the paper's xnetstats/xvmstats-style monitors). The timer
// resolves the widget by name at fire time so a destroyed chart cannot
// dangle.
void ScheduleStripChartUpdate(Widget& w) {
  long update = w.GetLong("update", 10);
  const xtk::CallbackList* callbacks = w.GetCallbacks("getValue");
  if (update <= 0 || callbacks == nullptr || callbacks->empty()) {
    return;
  }
  xtk::AppContext* app = &w.app();
  std::string name = w.name();
  int id = app->AddTimeout(update * 1000, [app, name] {
    Widget* chart = app->FindWidget(name);
    if (chart == nullptr || !chart->realized()) {
      return;
    }
    // Polling is itself a getValue notification; mark it so a callback that
    // answers by pushing a sample (StripChartAddValue) does not re-notify.
    chart->SetRawValue("_inGetValue", 1L);
    app->CallCallbacks(chart, "getValue", CallData{});
    chart->SetRawValue("_inGetValue", 0L);
    ScheduleStripChartUpdate(*chart);
  });
  w.SetRawValue("_updateTimer", static_cast<long>(id));
}

void StripChartExpose(Widget& w) {
  if (!w.realized()) {
    return;
  }
  std::vector<double> samples = ChartSamples(w);
  double scale = std::max(1.0, static_cast<double>(w.GetLong("minScale", 1)));
  for (double sample : samples) {
    scale = std::max(scale, sample);
  }
  xsim::Pixel fg = w.GetPixel("foreground", xsim::kBlackPixel);
  long width = static_cast<long>(w.width());
  long height = static_cast<long>(w.height());
  long start = std::max(0L, static_cast<long>(samples.size()) - width);
  for (long i = start; i < static_cast<long>(samples.size()); ++i) {
    long x = i - start;
    long bar = static_cast<long>(samples[static_cast<std::size_t>(i)] / scale *
                                 static_cast<double>(height));
    bar = std::clamp(bar, 0L, height);
    w.display().DrawLine(w.window(),
                         xsim::Point{static_cast<xsim::Position>(x),
                                     static_cast<xsim::Position>(height)},
                         xsim::Point{static_cast<xsim::Position>(x),
                                     static_cast<xsim::Position>(height - bar)},
                         fg);
  }
}

}  // namespace

void ScrollbarSetThumb(xtk::Widget& scrollbar, double top, double shown) {
  scrollbar.SetRawValue("topOfThumb", top);
  scrollbar.SetRawValue("shown", shown);
  scrollbar.app().Redraw(&scrollbar);
}

void StripChartAddValue(xtk::Widget& chart, double value) {
  std::vector<std::string> samples = chart.GetStringList(kSamplesKey);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  samples.push_back(buffer);
  // Bound the history to a screenful to honor the memory-management promise.
  std::size_t limit = std::max<std::size_t>(chart.width(), 64) * 2;
  if (samples.size() > limit) {
    samples.erase(samples.begin(),
                  samples.begin() + static_cast<long>(samples.size() - limit));
  }
  chart.SetRawValue(kSamplesKey, samples);
  // Notify getValue listeners of the pushed sample — but never reentrantly:
  // the poll timer's getValue callback typically pushes through this very
  // function, and notifying again from inside it is a feedback loop that
  // recurses until the eval depth guard (or the stack) gives out.
  if (chart.GetLong("_inGetValue", 0) == 0) {
    chart.SetRawValue("_inGetValue", 1L);
    chart.app().CallCallbacks(&chart, "getValue", CallData{});
    chart.SetRawValue("_inGetValue", 0L);
  }
  chart.app().Redraw(&chart);
}

void BuildMiscClasses(AthenaClasses& set) {
  const xtk::WidgetClass* super = set.three_d ? set.three_d_class : set.simple;

  // --- Scrollbar -------------------------------------------------------------------
  xtk::WidgetClass* scrollbar = NewClass("Scrollbar", super);
  scrollbar->resources = {
      {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
      {"orientation", "Orientation", RT::kString, "vertical"},
      {"length", "Length", RT::kDimension, "100"},
      {"thickness", "Thickness", RT::kDimension, "14"},
      {"shown", "Shown", RT::kFloat, "1.0"},
      {"topOfThumb", "TopOfThumb", RT::kFloat, "0.0"},
      {"minimumThumb", "MinimumThumb", RT::kDimension, "7"},
      {"scrollProc", "Callback", RT::kCallback, ""},
      {"jumpProc", "Callback", RT::kCallback, ""},
      {"thumbProc", "Callback", RT::kCallback, ""},
  };
  scrollbar->initialize = [](Widget& w) {
    bool vertical = w.GetString("orientation") != "horizontal";
    xsim::Dimension length = static_cast<xsim::Dimension>(w.GetLong("length", 100));
    xsim::Dimension thickness = static_cast<xsim::Dimension>(w.GetLong("thickness", 14));
    if (vertical) {
      ApplyPreferredSize(w, thickness, length);
    } else {
      ApplyPreferredSize(w, length, thickness);
    }
  };
  scrollbar->expose = ScrollbarExpose;
  scrollbar->default_translations =
      "<Btn1Down>: StartScroll(Continuous) MoveThumb() NotifyThumb()\n"
      "<Btn1Motion>: MoveThumb() NotifyThumb()\n"
      "<Btn1Up>: NotifyScroll(Proportional) EndScroll()";
  scrollbar->actions["StartScroll"] = [](Widget&, const xsim::Event&,
                                         const std::vector<std::string>&) {};
  scrollbar->actions["MoveThumb"] = [](Widget& w, const xsim::Event& event,
                                       const std::vector<std::string>&) {
    w.SetRawValue("topOfThumb", ThumbFraction(w, event));
    w.app().Redraw(&w);
  };
  scrollbar->actions["NotifyThumb"] = [](Widget& w, const xsim::Event& event,
                                         const std::vector<std::string>&) {
    CallData data;
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%g", ThumbFraction(w, event));
    data.fields["t"] = buffer;
    w.app().CallCallbacks(&w, "jumpProc", data);
  };
  scrollbar->actions["NotifyScroll"] = [](Widget& w, const xsim::Event& event,
                                          const std::vector<std::string>&) {
    CallData data;
    data.fields["p"] = std::to_string(event.y);
    w.app().CallCallbacks(&w, "scrollProc", data);
  };
  scrollbar->actions["EndScroll"] = [](Widget&, const xsim::Event&,
                                       const std::vector<std::string>&) {};
  set.scrollbar = scrollbar;

  // --- StripChart --------------------------------------------------------------------
  xtk::WidgetClass* chart = NewClass("StripChart", super);
  chart->resources = {
      {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
      {"highlight", "Foreground", RT::kPixel, "XtDefaultForeground"},
      {"getValue", "Callback", RT::kCallback, ""},
      {"jumpScroll", "JumpScroll", RT::kInt, "50"},
      {"minScale", "Scale", RT::kInt, "1"},
      {"update", "Interval", RT::kInt, "10"},
  };
  chart->initialize = [](Widget& w) { ApplyPreferredSize(w, 120, 40); };
  chart->expose = StripChartExpose;
  chart->realize = ScheduleStripChartUpdate;
  chart->destroy = [](Widget& w) {
    long id = w.GetLong("_updateTimer", 0);
    if (id != 0) {
      w.app().RemoveTimeout(static_cast<int>(id));
    }
  };
  set.strip_chart = chart;

  // --- Grip ---------------------------------------------------------------------------
  xtk::WidgetClass* grip = NewClass("Grip", super);
  grip->resources = {
      {"callback", "Callback", RT::kCallback, ""},
      {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
  };
  grip->initialize = [](Widget& w) { ApplyPreferredSize(w, 8, 8); };
  grip->expose = [](Widget& w) {
    if (w.realized()) {
      w.display().FillRect(w.window(), xsim::Rect{0, 0, w.width(), w.height()},
                           w.GetPixel("foreground", xsim::kBlackPixel));
    }
  };
  grip->default_translations = "<Btn1Down>: GripAction()";
  grip->actions["GripAction"] = [](Widget& w, const xsim::Event&,
                                   const std::vector<std::string>& params) {
    CallData data;
    if (!params.empty()) {
      data.fields["a"] = params[0];
    }
    w.app().CallCallbacks(&w, "callback", data);
  };
  set.grip = grip;
}

}  // namespace xaw
