// SimpleMenu and its entry classes (Sme, SmeBSB, SmeLine). SimpleMenu is an
// OverrideShell popped up by MenuButton's PopupMenu action; entries fire
// their callbacks when the menu is released over them.
#include "src/xaw/athena_internal.h"
#include "src/xt/app.h"

namespace xaw {

namespace {

using RT = xtk::ResourceType;
using xtk::CallData;
using xtk::Widget;

void LayoutMenu(Widget& menu) {
  xsim::Dimension width = 60;
  for (Widget* entry : menu.children()) {
    if (!entry->managed()) {
      continue;
    }
    width = std::max(width, entry->width());
  }
  xsim::Position y = 0;
  for (Widget* entry : menu.children()) {
    if (!entry->managed()) {
      continue;
    }
    entry->SetGeometry(0, y, width, entry->height());
    y += static_cast<xsim::Position>(entry->height());
  }
  menu.SetGeometry(menu.x(), menu.y(), width, static_cast<xsim::Dimension>(std::max(y, 1)));
}

void EntryNotify(Widget& entry) {
  entry.app().CallCallbacks(&entry, "callback", CallData{});
}

}  // namespace

void BuildMenuClasses(AthenaClasses& set) {
  // --- SimpleMenu -----------------------------------------------------------------
  xtk::WidgetClass* menu = NewClass("SimpleMenu", xtk::OverrideShellClass());
  menu->composite = true;
  menu->shell = true;
  menu->resources = {
      {"label", "Label", RT::kString, ""},
      {"cursor", "Cursor", RT::kString, ""},
      {"popupOnEntry", "Widget", RT::kWidget, ""},
      {"rowHeight", "RowHeight", RT::kDimension, "0"},
      {"menuOnScreen", "Boolean", RT::kBoolean, "true"},
  };
  menu->change_managed = LayoutMenu;
  menu->default_translations =
      "<EnterWindow>: highlight()\n"
      "<LeaveWindow>: unhighlight()\n"
      "<BtnUp>: MenuPopdown() notify() unhighlight()";
  menu->actions["MenuPopdown"] = [](Widget& w, const xsim::Event&,
                                    const std::vector<std::string>&) {
    Widget* shell = &w;
    while (shell->parent() != nullptr) {
      shell = shell->parent();
    }
    w.app().Popdown(shell);
  };
  menu->actions["highlight"] = [](Widget&, const xsim::Event&,
                                  const std::vector<std::string>&) {};
  menu->actions["unhighlight"] = [](Widget&, const xsim::Event&,
                                    const std::vector<std::string>&) {};
  menu->actions["notify"] = [](Widget&, const xsim::Event&,
                               const std::vector<std::string>&) {};
  set.simple_menu = menu;

  // --- Sme (base entry) --------------------------------------------------------------
  xtk::WidgetClass* sme = NewClass("Sme", xtk::CoreClass());
  sme->resources = {
      {"callback", "Callback", RT::kCallback, ""},
  };
  sme->default_translations =
      "<BtnUp>: notify() MenuPopdown()\n"
      "<EnterWindow>: highlight()\n"
      "<LeaveWindow>: unhighlight()";
  sme->actions["notify"] = [](Widget& w, const xsim::Event&,
                              const std::vector<std::string>&) { EntryNotify(w); };
  sme->actions["highlight"] = [](Widget& w, const xsim::Event&,
                                 const std::vector<std::string>&) {
    w.SetRawValue("_highlighted", true);
    w.app().Redraw(&w);
  };
  sme->actions["unhighlight"] = [](Widget& w, const xsim::Event&,
                                   const std::vector<std::string>&) {
    w.SetRawValue("_highlighted", false);
    w.app().Redraw(&w);
  };
  sme->actions["MenuPopdown"] = [](Widget& w, const xsim::Event&,
                                   const std::vector<std::string>&) {
    Widget* shell = &w;
    while (shell->parent() != nullptr && !shell->widget_class()->shell) {
      shell = shell->parent();
    }
    w.app().Popdown(shell);
  };
  set.sme = sme;

  // --- SmeBSB -----------------------------------------------------------------------
  xtk::WidgetClass* bsb = NewClass("SmeBSB", sme);
  bsb->resources = {
      {"label", "Label", RT::kString, ""},
      {"font", "Font", RT::kFont, "XtDefaultFont"},
      {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
      {"justify", "Justify", RT::kString, "left"},
      {"leftBitmap", "LeftBitmap", RT::kPixmap, ""},
      {"rightBitmap", "RightBitmap", RT::kPixmap, ""},
      {"leftMargin", "HorizontalMargins", RT::kDimension, "4"},
      {"rightMargin", "HorizontalMargins", RT::kDimension, "4"},
      {"vertSpace", "VertSpace", RT::kInt, "25"},
  };
  bsb->initialize = [](Widget& w) {
    if (!w.WasExplicit("label") && w.GetString("label").empty()) {
      w.SetRawValue("label", w.name());
    }
    xsim::FontPtr font = w.GetFont("font");
    if (font == nullptr) {
      font = xsim::FontRegistry::Default().Open("fixed");
    }
    xsim::Dimension width = font->TextWidth(w.GetString("label")) +
                            static_cast<xsim::Dimension>(w.GetLong("leftMargin", 4)) +
                            static_cast<xsim::Dimension>(w.GetLong("rightMargin", 4));
    ApplyPreferredSize(w, width, font->Height() + 4);
  };
  bsb->expose = [](Widget& w) {
    bool highlighted = false;
    const xtk::ResourceValue& value = w.Value("_highlighted");
    if (const bool* v = std::get_if<bool>(&value)) {
      highlighted = *v;
    }
    DrawLabelText(w, w.GetString("label"), highlighted);
  };
  set.sme_bsb = bsb;

  // --- SmeLine ------------------------------------------------------------------------
  xtk::WidgetClass* line = NewClass("SmeLine", sme);
  line->resources = {
      {"lineWidth", "LineWidth", RT::kDimension, "1"},
      {"stipple", "Stipple", RT::kPixmap, ""},
  };
  line->initialize = [](Widget& w) { ApplyPreferredSize(w, 60, 3); };
  line->expose = [](Widget& w) {
    if (!w.realized()) {
      return;
    }
    w.display().DrawLine(w.window(), xsim::Point{0, 1},
                         xsim::Point{static_cast<xsim::Position>(w.width()), 1},
                         xsim::kBlackPixel);
  };
  set.sme_line = line;
}

}  // namespace xaw
