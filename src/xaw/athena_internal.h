// Shared helpers for the Athena widget implementations. Internal to src/xaw.
#ifndef SRC_XAW_ATHENA_INTERNAL_H_
#define SRC_XAW_ATHENA_INTERNAL_H_

#include <string>

#include "src/xaw/athena.h"
#include "src/xt/widget.h"

namespace xaw {

// Builders, one per source file; each fills its classes into the set.
void BuildSimpleClasses(AthenaClasses& set);  // Simple, ThreeD, Label, Command, Toggle,
                                              // MenuButton
void BuildContainerClasses(AthenaClasses& set);  // Box, Form, Dialog, Paned, Viewport
void BuildListClass(AthenaClasses& set);
void BuildTextClass(AthenaClasses& set);
void BuildMenuClasses(AthenaClasses& set);  // SimpleMenu, Sme, SmeBSB, SmeLine
void BuildMiscClasses(AthenaClasses& set);  // Scrollbar, StripChart, Grip

// Allocates a class that lives for the process lifetime.
xtk::WidgetClass* NewClass(const std::string& name, const xtk::WidgetClass* superclass);

// Shadow width of a widget (0 unless built with the ThreeD class).
xsim::Dimension ShadowWidth(const xtk::Widget& widget);

// Draws the Xaw3d shadow frame (raised or sunken) if the widget has one.
void DrawShadow(xtk::Widget& widget, bool sunken);

// Draws a text label honoring font, foreground, justify and the internal
// margins, optionally inverted (set Command buttons).
void DrawLabelText(xtk::Widget& widget, const std::string& text, bool inverted);

// Preferred size of a label-like widget for its current text/bitmap.
void PreferredLabelSize(const xtk::Widget& widget, const std::string& text,
                        xsim::Dimension* width, xsim::Dimension* height);

// Applies the preferred size unless the user specified one explicitly.
void ApplyPreferredSize(xtk::Widget& widget, xsim::Dimension width, xsim::Dimension height);

// Resizes a widget and propagates to the window when realized.
void ResizeWidget(xtk::Widget& widget, xsim::Dimension width, xsim::Dimension height);

// Lays out a Form widget's children by their constraints.
void LayoutForm(xtk::Widget& form);

}  // namespace xaw

#endif  // SRC_XAW_ATHENA_INTERNAL_H_
