// Composite Athena widgets: Box, Form, Dialog, Paned, Viewport.
#include <algorithm>
#include <cstdlib>

#include "src/xaw/athena_internal.h"
#include "src/xt/app.h"

namespace xaw {

namespace {

using RT = xtk::ResourceType;
using xtk::Widget;

// Resizes a container to `w`,`h` unless the user fixed its size explicitly.
void FitContainer(Widget& container, xsim::Dimension w, xsim::Dimension h) {
  xsim::Dimension width = container.WasExplicit("width") ? container.width() : w;
  xsim::Dimension height = container.WasExplicit("height") ? container.height() : h;
  container.SetGeometry(container.x(), container.y(), width, height);
}

void LayoutBox(Widget& box) {
  long h_space = box.GetLong("hSpace", 4);
  long v_space = box.GetLong("vSpace", 4);
  std::string orientation = box.GetString("orientation");
  xsim::Dimension limit = box.WasExplicit("width") ? box.width() : 0;
  xsim::Position x = static_cast<xsim::Position>(h_space);
  xsim::Position y = static_cast<xsim::Position>(v_space);
  xsim::Dimension row_height = 0;
  xsim::Dimension max_x = 0;
  for (Widget* child : box.children()) {
    if (!child->managed()) {
      continue;
    }
    xsim::Dimension cw = child->width() + 2 * child->border_width();
    xsim::Dimension ch = child->height() + 2 * child->border_width();
    if (orientation == "vertical") {
      child->SetGeometry(static_cast<xsim::Position>(h_space), y, child->width(),
                         child->height());
      y += static_cast<xsim::Position>(ch + v_space);
      max_x = std::max(max_x, cw + 2 * static_cast<xsim::Dimension>(h_space));
      continue;
    }
    if (limit != 0 && x != h_space && x + static_cast<xsim::Position>(cw) >
                                          static_cast<xsim::Position>(limit)) {
      x = static_cast<xsim::Position>(h_space);
      y += static_cast<xsim::Position>(row_height + v_space);
      row_height = 0;
    }
    child->SetGeometry(x, y, child->width(), child->height());
    x += static_cast<xsim::Position>(cw + h_space);
    row_height = std::max(row_height, ch);
    max_x = std::max(max_x, static_cast<xsim::Dimension>(x));
  }
  xsim::Dimension total_h =
      static_cast<xsim::Dimension>(y) +
      (orientation == "vertical" ? 0 : row_height + static_cast<xsim::Dimension>(v_space));
  FitContainer(box, orientation == "vertical" ? max_x : max_x, total_h);
}

void LayoutPaned(Widget& paned) {
  long internal = paned.GetLong("internalBorderWidth", 1);
  std::string orientation = paned.GetString("orientation");
  bool vertical = orientation != "horizontal";
  xsim::Position offset = 0;
  xsim::Dimension breadth = 0;
  for (Widget* child : paned.children()) {
    if (!child->managed()) {
      continue;
    }
    breadth = std::max(breadth, vertical ? child->width() : child->height());
  }
  for (Widget* child : paned.children()) {
    if (!child->managed()) {
      continue;
    }
    if (vertical) {
      child->SetGeometry(0, offset, breadth, child->height());
      offset += static_cast<xsim::Position>(child->height() + 2 * child->border_width() +
                                            internal);
    } else {
      child->SetGeometry(offset, 0, child->width(), breadth);
      offset += static_cast<xsim::Position>(child->width() + 2 * child->border_width() +
                                            internal);
    }
  }
  if (vertical) {
    FitContainer(paned, breadth, static_cast<xsim::Dimension>(offset));
  } else {
    FitContainer(paned, static_cast<xsim::Dimension>(offset), breadth);
  }
}

// The viewport's scrollable content: the first managed non-scrollbar child.
Widget* ViewportChild(Widget& viewport) {
  for (Widget* child : viewport.children()) {
    if (child->managed() && child->widget_class()->name != "Scrollbar") {
      return child;
    }
  }
  return nullptr;
}

void LayoutViewport(Widget& viewport) {
  // Positions the content child at the scroll offset.
  long offset_x = viewport.GetLong("_scrollX");
  long offset_y = viewport.GetLong("_scrollY");
  Widget* child = ViewportChild(viewport);
  if (child == nullptr) {
    return;
  }
  child->SetGeometry(static_cast<xsim::Position>(-offset_x),
                     static_cast<xsim::Position>(-offset_y), child->width(),
                     child->height());
  if (!viewport.WasExplicit("width") && !viewport.WasExplicit("height")) {
    FitContainer(viewport, child->width(), child->height());
  }
  // Vertical scrollbar: created on demand when the content overflows (or
  // forceBars is set) and allowVert is enabled.
  if (viewport.GetBool("allowVert") &&
      (viewport.GetBool("forceBars") || child->height() > viewport.height())) {
    std::string bar_name = viewport.name() + ".vertical";
    Widget* bar = viewport.app().FindWidget(bar_name);
    if (bar == nullptr) {
      std::string error;
      bar = viewport.app().CreateWidget(
          bar_name, "Scrollbar", &viewport,
          {{"orientation", "vertical"},
           {"length", std::to_string(viewport.height())}},
          true, &error);
      if (bar == nullptr) {
        return;
      }
      // Wire the thumb to the scroll offset.
      Widget* vp = &viewport;
      xtk::CallbackList jump;
      jump.push_back(xtk::Callback{
          "viewport-scroll", [vp](Widget&, const xtk::CallData& data) {
            Widget* content = ViewportChild(*vp);
            if (content == nullptr) {
              return;
            }
            double fraction = std::strtod(data.Get("t").c_str(), nullptr);
            long max_offset =
                std::max(0L, static_cast<long>(content->height()) -
                                 static_cast<long>(vp->height()));
            vp->SetRawValue("_scrollY",
                            static_cast<long>(fraction * static_cast<double>(max_offset)));
            LayoutViewport(*vp);
            vp->app().Redraw(vp);
          }});
      bar->SetRawValue("jumpProc", jump);
    }
    // Pin the bar to the right edge, full height, above the content.
    xsim::Dimension thickness = static_cast<xsim::Dimension>(bar->GetLong("thickness", 14));
    bar->SetGeometry(static_cast<xsim::Position>(viewport.width() - thickness), 0, thickness,
                     viewport.height());
    if (bar->realized()) {
      bar->display().RaiseWindow(bar->window());
    }
    double shown = child->height() > 0
                       ? std::min(1.0, static_cast<double>(viewport.height()) /
                                           static_cast<double>(child->height()))
                       : 1.0;
    bar->SetRawValue("shown", shown);
  }
}

void DialogInitialize(Widget& dialog) {
  // The Athena Dialog creates a label child (and a value text child when the
  // `value` resource is set). Children are registered under qualified names
  // to keep Wafe's flat namespace collision-free.
  std::string error;
  std::vector<std::pair<std::string, std::string>> args;
  args.emplace_back("label", dialog.GetString("label"));
  args.emplace_back("borderWidth", "0");
  dialog.app().CreateWidget(dialog.name() + ".label", "Label", &dialog, args, true, &error);
  if (dialog.WasExplicit("value")) {
    std::vector<std::pair<std::string, std::string>> value_args;
    value_args.emplace_back("string", dialog.GetString("value"));
    value_args.emplace_back("editType", "edit");
    dialog.app().CreateWidget(dialog.name() + ".value", "AsciiText", &dialog, value_args, true,
                              &error);
  }
}

}  // namespace

void LayoutForm(xtk::Widget& form) {
  if (form.GetLong("_noLayout") != 0) {
    return;
  }
  long distance = form.GetLong("defaultDistance", 4);
  xsim::Dimension max_w = 0;
  xsim::Dimension max_h = 0;
  for (Widget* child : form.children()) {
    if (!child->managed()) {
      continue;
    }
    long h_dist = child->WasExplicit("horizDistance") ? child->GetLong("horizDistance")
                                                      : distance;
    long v_dist = child->WasExplicit("vertDistance") ? child->GetLong("vertDistance")
                                                     : distance;
    Widget* from_horiz = child->GetWidget("fromHoriz");
    Widget* from_vert = child->GetWidget("fromVert");
    xsim::Position x = static_cast<xsim::Position>(h_dist);
    xsim::Position y = static_cast<xsim::Position>(v_dist);
    if (from_horiz != nullptr) {
      x = from_horiz->x() + static_cast<xsim::Position>(from_horiz->width() +
                                                        2 * from_horiz->border_width()) +
          static_cast<xsim::Position>(h_dist);
    }
    if (from_vert != nullptr) {
      y = from_vert->y() + static_cast<xsim::Position>(from_vert->height() +
                                                       2 * from_vert->border_width()) +
          static_cast<xsim::Position>(v_dist);
    }
    child->SetGeometry(x, y, child->width(), child->height());
    max_w = std::max(max_w, static_cast<xsim::Dimension>(x) + child->width() +
                                2 * child->border_width() +
                                static_cast<xsim::Dimension>(distance));
    max_h = std::max(max_h, static_cast<xsim::Dimension>(y) + child->height() +
                                2 * child->border_width() +
                                static_cast<xsim::Dimension>(distance));
  }
  if (max_w > 0 && max_h > 0) {
    FitContainer(form, max_w, max_h);
  }
}

void FormDoLayout(xtk::Widget& form, bool do_layout) {
  form.SetRawValue("_noLayout", static_cast<long>(do_layout ? 0 : 1));
  if (do_layout) {
    LayoutForm(form);
    form.app().Redraw(&form);
  }
}

void FormAllowResize(xtk::Widget& child, bool allow) {
  child.SetRawValue("resizable", allow);
}

void BuildContainerClasses(AthenaClasses& set) {
  // --- Box --------------------------------------------------------------------
  xtk::WidgetClass* box = NewClass("Box", xtk::CompositeClass());
  box->composite = true;
  box->resources = {
      {"hSpace", "HSpace", RT::kDimension, "4"},
      {"vSpace", "VSpace", RT::kDimension, "4"},
      {"orientation", "Orientation", RT::kString, "vertical"},
  };
  box->change_managed = LayoutBox;
  box->resize = LayoutBox;
  set.box = box;

  // --- Form --------------------------------------------------------------------
  xtk::WidgetClass* form = NewClass("Form", xtk::ConstraintClass());
  form->composite = true;
  form->resources = {
      {"defaultDistance", "Thickness", RT::kDimension, "4"},
  };
  form->constraints = {
      {"fromHoriz", "Widget", RT::kWidget, ""},
      {"fromVert", "Widget", RT::kWidget, ""},
      {"horizDistance", "Thickness", RT::kInt, "4"},
      {"vertDistance", "Thickness", RT::kInt, "4"},
      {"top", "Edge", RT::kString, "rubber"},
      {"bottom", "Edge", RT::kString, "rubber"},
      {"left", "Edge", RT::kString, "rubber"},
      {"right", "Edge", RT::kString, "rubber"},
      {"resizable", "Boolean", RT::kBoolean, "false"},
  };
  form->change_managed = [](Widget& w) { LayoutForm(w); };
  form->resize = [](Widget& w) { LayoutForm(w); };
  set.form = form;

  // --- Dialog ------------------------------------------------------------------
  xtk::WidgetClass* dialog = NewClass("Dialog", form);
  dialog->composite = true;
  dialog->resources = {
      {"label", "Label", RT::kString, ""},
      {"value", "Value", RT::kString, ""},
      {"icon", "Icon", RT::kPixmap, ""},
  };
  dialog->initialize = DialogInitialize;
  set.dialog = dialog;

  // --- Paned -------------------------------------------------------------------
  xtk::WidgetClass* paned = NewClass("Paned", xtk::ConstraintClass());
  paned->composite = true;
  paned->resources = {
      {"internalBorderWidth", "BorderWidth", RT::kDimension, "1"},
      {"orientation", "Orientation", RT::kString, "vertical"},
      {"gripIndent", "GripIndent", RT::kPosition, "10"},
  };
  paned->constraints = {
      {"min", "Min", RT::kDimension, "1"},
      {"max", "Max", RT::kDimension, "10000"},
      {"allowResize", "Boolean", RT::kBoolean, "false"},
      {"showGrip", "ShowGrip", RT::kBoolean, "true"},
      {"skipAdjust", "Boolean", RT::kBoolean, "false"},
  };
  paned->change_managed = LayoutPaned;
  paned->resize = LayoutPaned;
  set.paned = paned;

  // --- Viewport ------------------------------------------------------------------
  xtk::WidgetClass* viewport = NewClass("Viewport", form);
  viewport->composite = true;
  viewport->resources = {
      {"allowHoriz", "Boolean", RT::kBoolean, "false"},
      {"allowVert", "Boolean", RT::kBoolean, "false"},
      {"forceBars", "Boolean", RT::kBoolean, "false"},
      {"useBottom", "Boolean", RT::kBoolean, "false"},
      {"useRight", "Boolean", RT::kBoolean, "false"},
  };
  viewport->change_managed = LayoutViewport;
  viewport->resize = LayoutViewport;
  set.viewport = viewport;
}

}  // namespace xaw
