#include "src/xaw/athena.h"

#include "src/xaw/athena_internal.h"

namespace xaw {

using xtk::ResourceType;

std::vector<const xtk::WidgetClass*> AthenaClasses::All() const {
  std::vector<const xtk::WidgetClass*> all = {
      simple,   label, command,    toggle,     menu_button, box, form,
      dialog,   paned, viewport,   list,       ascii_text,  scrollbar,
      strip_chart, grip, simple_menu, sme,     sme_bsb,     sme_line,
  };
  if (three_d_class != nullptr) {
    all.push_back(three_d_class);
  }
  return all;
}

const AthenaClasses& GetAthenaClasses(bool three_d) {
  static const AthenaClasses* plain = nullptr;
  static const AthenaClasses* shaded = nullptr;
  const AthenaClasses*& slot = three_d ? shaded : plain;
  if (slot == nullptr) {
    auto* set = new AthenaClasses();
    set->three_d = three_d;
    BuildSimpleClasses(*set);
    BuildContainerClasses(*set);
    BuildListClass(*set);
    BuildTextClass(*set);
    BuildMenuClasses(*set);
    BuildMiscClasses(*set);
    slot = set;
  }
  return *slot;
}

void RegisterAthenaClasses(xtk::AppContext& app, bool three_d) {
  xtk::RegisterIntrinsicClasses(app);
  const AthenaClasses& classes = GetAthenaClasses(three_d);
  for (const xtk::WidgetClass* cls : classes.All()) {
    app.RegisterClass(cls);
  }
}

// --- Shared helpers ---------------------------------------------------------------

xtk::WidgetClass* NewClass(const std::string& name, const xtk::WidgetClass* superclass) {
  auto* cls = new xtk::WidgetClass();
  cls->name = name;
  cls->superclass = superclass;
  return cls;
}

xsim::Dimension ShadowWidth(const xtk::Widget& widget) {
  if (widget.FindSpec("shadowWidth") == nullptr) {
    return 0;
  }
  return static_cast<xsim::Dimension>(widget.GetLong("shadowWidth"));
}

void DrawShadow(xtk::Widget& widget, bool sunken) {
  xsim::Dimension shadow = ShadowWidth(widget);
  if (shadow == 0 || !widget.realized()) {
    return;
  }
  xsim::Pixel top = widget.GetPixel("topShadowPixel", xsim::MakePixel(240, 240, 240));
  xsim::Pixel bottom = widget.GetPixel("bottomShadowPixel", xsim::MakePixel(100, 100, 100));
  if (sunken) {
    std::swap(top, bottom);
  }
  xsim::Display& d = widget.display();
  xsim::Dimension w = widget.width();
  xsim::Dimension h = widget.height();
  d.FillRect(widget.window(), xsim::Rect{0, 0, w, shadow}, top);
  d.FillRect(widget.window(), xsim::Rect{0, 0, shadow, h}, top);
  d.FillRect(widget.window(),
             xsim::Rect{0, static_cast<xsim::Position>(h - shadow), w, shadow}, bottom);
  d.FillRect(widget.window(),
             xsim::Rect{static_cast<xsim::Position>(w - shadow), 0, shadow, h}, bottom);
}

void PreferredLabelSize(const xtk::Widget& widget, const std::string& text,
                        xsim::Dimension* width, xsim::Dimension* height) {
  xsim::FontPtr font = widget.GetFont("font");
  if (font == nullptr) {
    font = xsim::FontRegistry::Default().Open("fixed");
  }
  long internal_w = widget.GetLong("internalWidth", 4);
  long internal_h = widget.GetLong("internalHeight", 2);
  xsim::Dimension shadow = ShadowWidth(widget);
  xsim::Dimension text_w = font->TextWidth(text);
  xsim::Dimension text_h = font->Height();
  if (xsim::PixmapPtr bitmap = widget.GetPixmap("bitmap")) {
    text_w = bitmap->width;
    text_h = bitmap->height > text_h ? bitmap->height : text_h;
  }
  if (xsim::PixmapPtr left = widget.GetPixmap("leftBitmap")) {
    text_w += left->width + 2;
  }
  *width = text_w + 2 * static_cast<xsim::Dimension>(internal_w) + 2 * shadow;
  *height = text_h + 2 * static_cast<xsim::Dimension>(internal_h) + 2 * shadow;
}

void ApplyPreferredSize(xtk::Widget& widget, xsim::Dimension width, xsim::Dimension height) {
  xsim::Dimension w = widget.WasExplicit("width") ? widget.width() : width;
  xsim::Dimension h = widget.WasExplicit("height") ? widget.height() : height;
  widget.SetGeometry(widget.x(), widget.y(), w, h);
}

void ResizeWidget(xtk::Widget& widget, xsim::Dimension width, xsim::Dimension height) {
  widget.SetGeometry(widget.x(), widget.y(), width, height);
}

void DrawLabelText(xtk::Widget& widget, const std::string& text, bool inverted) {
  if (!widget.realized()) {
    return;
  }
  xsim::Display& d = widget.display();
  xsim::FontPtr font = widget.GetFont("font");
  if (font == nullptr) {
    font = xsim::FontRegistry::Default().Open("fixed");
  }
  xsim::Pixel fg = widget.GetPixel("foreground", xsim::kBlackPixel);
  xsim::Pixel bg = widget.GetPixel("background", xsim::kWhitePixel);
  if (inverted) {
    d.FillRect(widget.window(), xsim::Rect{0, 0, widget.width(), widget.height()}, fg);
    std::swap(fg, bg);
  }
  long internal_w = widget.GetLong("internalWidth", 4);
  xsim::Dimension shadow = ShadowWidth(widget);
  std::string justify = widget.GetString("justify");
  xsim::Dimension text_width = font->TextWidth(text);
  xsim::Position x = static_cast<xsim::Position>(internal_w + shadow);
  if (xsim::PixmapPtr left = widget.GetPixmap("leftBitmap")) {
    d.CopyPixmap(widget.window(), *left, x,
                 static_cast<xsim::Position>((widget.height() - left->height) / 2));
    x += static_cast<xsim::Position>(left->width + 2);
  }
  if (justify == "center" || justify.empty()) {
    if (widget.width() > text_width) {
      x = static_cast<xsim::Position>((widget.width() - text_width) / 2);
    }
  } else if (justify == "right") {
    if (widget.width() > text_width + internal_w + shadow) {
      x = static_cast<xsim::Position>(widget.width() - text_width - internal_w - shadow);
    }
  }
  xsim::Position baseline = static_cast<xsim::Position>(
      (widget.height() + font->ascent - font->descent) / 2);
  if (xsim::PixmapPtr bitmap = widget.GetPixmap("bitmap")) {
    d.CopyPixmap(widget.window(), *bitmap,
                 static_cast<xsim::Position>((widget.width() - bitmap->width) / 2),
                 static_cast<xsim::Position>((widget.height() - bitmap->height) / 2));
  } else {
    d.DrawText(widget.window(), x, baseline, text, font, fg);
  }
}

}  // namespace xaw
