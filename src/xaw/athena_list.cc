// The Athena List widget: displays a string list in columns, lets the user
// select an item with Button1, and fires its callback with the index and
// the active element — the source of Wafe's %i / %s percent codes.
#include <algorithm>

#include "src/xaw/athena_internal.h"
#include "src/xt/app.h"

namespace xaw {

namespace {

using RT = xtk::ResourceType;
using xtk::CallData;
using xtk::Widget;

constexpr char kHighlightKey[] = "_listHighlight";

long RowSpacing(const Widget& list) { return list.GetLong("rowSpacing", 2); }

xsim::FontPtr ListFont(const Widget& list) {
  xsim::FontPtr font = list.GetFont("font");
  return font != nullptr ? font : xsim::FontRegistry::Default().Open("fixed");
}

long RowHeight(const Widget& list) {
  return static_cast<long>(ListFont(list)->Height()) + RowSpacing(list);
}

int ItemAtPosition(const Widget& list, xsim::Position y) {
  long internal_h = list.GetLong("internalHeight", 2);
  long row = (y - internal_h) / RowHeight(list);
  std::vector<std::string> items = list.GetStringList("list");
  if (row < 0 || row >= static_cast<long>(items.size())) {
    return -1;
  }
  return static_cast<int>(row);
}

void ListComputeSize(Widget& list) {
  std::vector<std::string> items = list.GetStringList("list");
  xsim::FontPtr font = ListFont(list);
  long internal_w = list.GetLong("internalWidth", 2);
  long internal_h = list.GetLong("internalHeight", 2);
  xsim::Dimension max_w = 0;
  for (const std::string& item : items) {
    max_w = std::max(max_w, font->TextWidth(item));
  }
  xsim::Dimension width = max_w + 2 * static_cast<xsim::Dimension>(internal_w) +
                          static_cast<xsim::Dimension>(list.GetLong("columnSpacing", 6));
  xsim::Dimension height = static_cast<xsim::Dimension>(
      2 * internal_h + RowHeight(list) * static_cast<long>(items.size()));
  if (height == static_cast<xsim::Dimension>(2 * internal_h)) {
    height += static_cast<xsim::Dimension>(RowHeight(list));
  }
  ApplyPreferredSize(list, width, height);
}

void ListExpose(Widget& list) {
  if (!list.realized()) {
    return;
  }
  std::vector<std::string> items = list.GetStringList("list");
  xsim::FontPtr font = ListFont(list);
  xsim::Pixel fg = list.GetPixel("foreground", xsim::kBlackPixel);
  xsim::Pixel bg = list.GetPixel("background", xsim::kWhitePixel);
  long internal_w = list.GetLong("internalWidth", 2);
  long internal_h = list.GetLong("internalHeight", 2);
  long highlight = list.GetLong(kHighlightKey, -1);
  long row_height = RowHeight(list);
  for (std::size_t i = 0; i < items.size(); ++i) {
    xsim::Position top =
        static_cast<xsim::Position>(internal_h + row_height * static_cast<long>(i));
    bool selected = highlight == static_cast<long>(i);
    if (selected) {
      list.display().FillRect(
          list.window(),
          xsim::Rect{0, top, list.width(), static_cast<xsim::Dimension>(row_height)}, fg);
    }
    xsim::Position baseline = top + static_cast<xsim::Position>(font->ascent) + 1;
    list.display().DrawText(list.window(), static_cast<xsim::Position>(internal_w), baseline,
                            items[i], font, selected ? bg : fg);
  }
}

void ListNotify(Widget& list) {
  long highlight = list.GetLong(kHighlightKey, -1);
  std::vector<std::string> items = list.GetStringList("list");
  if (highlight < 0 || highlight >= static_cast<long>(items.size())) {
    return;
  }
  CallData data;
  data.fields["i"] = std::to_string(highlight);
  data.fields["s"] = items[static_cast<std::size_t>(highlight)];
  list.app().CallCallbacks(&list, "callback", data);
}

}  // namespace

void ListChange(xtk::Widget& list, const std::vector<std::string>& items, bool resize) {
  list.SetRawValue("list", items);
  list.SetRawValue("numberStrings", static_cast<long>(items.size()));
  list.SetRawValue(kHighlightKey, static_cast<long>(-1));
  if (resize) {
    ListComputeSize(list);
  }
  list.app().Redraw(&list);
}

void ListHighlight(xtk::Widget& list, int index) {
  list.SetRawValue(kHighlightKey, static_cast<long>(index));
  list.app().Redraw(&list);
}

void ListUnhighlight(xtk::Widget& list) { ListHighlight(list, -1); }

int ListCurrent(const xtk::Widget& list, std::string* item) {
  long highlight = list.GetLong(kHighlightKey, -1);
  std::vector<std::string> items = list.GetStringList("list");
  if (highlight < 0 || highlight >= static_cast<long>(items.size())) {
    return -1;
  }
  if (item != nullptr) {
    *item = items[static_cast<std::size_t>(highlight)];
  }
  return static_cast<int>(highlight);
}

void BuildListClass(AthenaClasses& set) {
  xtk::WidgetClass* list = NewClass("List", set.simple);
  list->resources = {
      {"callback", "Callback", RT::kCallback, ""},
      {"columnSpacing", "Spacing", RT::kDimension, "6"},
      {"defaultColumns", "Columns", RT::kInt, "2"},
      {"font", "Font", RT::kFont, "XtDefaultFont"},
      {"forceColumns", "Columns", RT::kBoolean, "false"},
      {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
      {"internalHeight", "Height", RT::kDimension, "2"},
      {"internalWidth", "Width", RT::kDimension, "2"},
      {"list", "List", RT::kStringList, ""},
      {"longest", "Longest", RT::kInt, "0"},
      {"numberStrings", "NumberStrings", RT::kInt, "0"},
      {"pasteBuffer", "Boolean", RT::kBoolean, "false"},
      {"rowSpacing", "Spacing", RT::kDimension, "2"},
      {"verticalList", "Boolean", RT::kBoolean, "false"},
  };
  list->initialize = [](Widget& w) {
    std::vector<std::string> items = w.GetStringList("list");
    w.SetRawValue("numberStrings", static_cast<long>(items.size()));
    w.SetRawValue(kHighlightKey, static_cast<long>(-1));
    ListComputeSize(w);
  };
  list->expose = ListExpose;
  list->set_values = [](Widget& w, const std::string& resource) {
    if (resource == "list") {
      std::vector<std::string> items = w.GetStringList("list");
      w.SetRawValue("numberStrings", static_cast<long>(items.size()));
      w.SetRawValue(kHighlightKey, static_cast<long>(-1));
      ListComputeSize(w);
    }
  };
  list->default_translations =
      "<Btn1Down>: Set()\n"
      "<Btn1Up>: Notify()";
  list->actions["Set"] = [](Widget& w, const xsim::Event& event,
                            const std::vector<std::string>&) {
    int index = ItemAtPosition(w, event.y);
    if (index >= 0) {
      ListHighlight(w, index);
    }
  };
  list->actions["Unset"] = [](Widget& w, const xsim::Event&,
                              const std::vector<std::string>&) { ListUnhighlight(w); };
  list->actions["Notify"] = [](Widget& w, const xsim::Event&,
                               const std::vector<std::string>&) { ListNotify(w); };
  set.list = list;
}

}  // namespace xaw
