// Simple, ThreeD, Label, Command, Toggle, and MenuButton.
#include "src/xaw/athena_internal.h"
#include "src/xt/app.h"

namespace xaw {

namespace {

using RT = xtk::ResourceType;
using xtk::CallData;
using xtk::Widget;

// Internal (non-resource) state keys.
constexpr char kSetState[] = "_set";
constexpr char kHighlighted[] = "_highlighted";

bool InternalFlag(const Widget& widget, const char* key) {
  const xtk::ResourceValue& value = widget.Value(key);
  const bool* v = std::get_if<bool>(&value);
  return v != nullptr && *v;
}

void LabelInitialize(Widget& widget) {
  // Athena defaults the label text to the widget name.
  if (!widget.WasExplicit("label") && widget.GetString("label").empty()) {
    widget.SetRawValue("label", widget.name());
  }
  xsim::Dimension width = 0;
  xsim::Dimension height = 0;
  PreferredLabelSize(widget, widget.GetString("label"), &width, &height);
  ApplyPreferredSize(widget, width, height);
}

void LabelExpose(Widget& widget) {
  DrawLabelText(widget, widget.GetString("label"), /*inverted=*/false);
  DrawShadow(widget, /*sunken=*/false);
}

void LabelSetValues(Widget& widget, const std::string& resource) {
  if (resource == "label" || resource == "font") {
    if (widget.GetBool("resize", true) && !widget.WasExplicit("width")) {
      xsim::Dimension width = 0;
      xsim::Dimension height = 0;
      PreferredLabelSize(widget, widget.GetString("label"), &width, &height);
      ResizeWidget(widget, width, height);
    }
  }
}

void CommandExpose(Widget& widget) {
  bool set = InternalFlag(widget, kSetState);
  DrawLabelText(widget, widget.GetString("label"), set);
  DrawShadow(widget, set);
  if (InternalFlag(widget, kHighlighted)) {
    long thickness = widget.GetLong("highlightThickness", 2);
    widget.display().DrawRectOutline(
        widget.window(), xsim::Rect{0, 0, widget.width(), widget.height()},
        widget.GetPixel("foreground", xsim::kBlackPixel));
    (void)thickness;
  }
}

void ToggleExpose(Widget& widget) {
  bool set = widget.GetBool("state");
  DrawLabelText(widget, widget.GetString("label"), set);
  DrawShadow(widget, set);
}

}  // namespace

void BuildSimpleClasses(AthenaClasses& set) {
  // --- Simple -------------------------------------------------------------------
  xtk::WidgetClass* simple = NewClass("Simple", xtk::CoreClass());
  simple->resources = {
      {"cursor", "Cursor", RT::kString, ""},
      {"cursorName", "Cursor", RT::kString, ""},
      {"insensitiveBorder", "Insensitive", RT::kPixmap, ""},
      {"pointerColor", "Foreground", RT::kPixel, "XtDefaultForeground"},
      {"pointerColorBackground", "Background", RT::kPixel, "XtDefaultBackground"},
      {"international", "International", RT::kBoolean, "false"},
  };
  set.simple = simple;

  // --- ThreeD (Xaw3d only) ---------------------------------------------------------
  const xtk::WidgetClass* label_super = simple;
  if (set.three_d) {
    xtk::WidgetClass* three_d = NewClass("ThreeD", simple);
    three_d->resources = {
        {"shadowWidth", "ShadowWidth", RT::kDimension, "2"},
        {"topShadowPixel", "TopShadowPixel", RT::kPixel, "#f0f0f0"},
        {"bottomShadowPixel", "BottomShadowPixel", RT::kPixel, "#646464"},
        {"topShadowContrast", "TopShadowContrast", RT::kInt, "20"},
        {"bottomShadowContrast", "BottomShadowContrast", RT::kInt, "40"},
        {"beNiceToColormap", "BeNiceToColormap", RT::kBoolean, "false"},
        {"userData", "UserData", RT::kString, ""},
    };
    set.three_d_class = three_d;
    label_super = three_d;
  }

  // --- Label ------------------------------------------------------------------------
  xtk::WidgetClass* label = NewClass("Label", label_super);
  label->resources = {
      {"bitmap", "Pixmap", RT::kPixmap, ""},
      {"encoding", "Encoding", RT::kInt, "0"},
      {"font", "Font", RT::kFont, "XtDefaultFont"},
      {"fontSet", "FontSet", RT::kString, ""},
      {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
      {"internalHeight", "Height", RT::kDimension, "2"},
      {"internalWidth", "Width", RT::kDimension, "4"},
      {"justify", "Justify", RT::kString, "center"},
      {"label", "Label", RT::kString, ""},
      {"leftBitmap", "LeftBitmap", RT::kPixmap, ""},
      {"resize", "Resize", RT::kBoolean, "true"},
  };
  label->initialize = LabelInitialize;
  label->expose = LabelExpose;
  label->set_values = LabelSetValues;
  set.label = label;

  // --- Command ---------------------------------------------------------------------
  xtk::WidgetClass* command = NewClass("Command", label);
  command->resources = {
      {"callback", "Callback", RT::kCallback, ""},
      {"highlightThickness", "Thickness", RT::kDimension, "2"},
      {"cornerRoundPercent", "CornerRoundPercent", RT::kDimension, "25"},
      {"shapeStyle", "ShapeStyle", RT::kString, "rectangle"},
  };
  command->expose = CommandExpose;
  command->default_translations =
      "<EnterWindow>: highlight()\n"
      "<LeaveWindow>: reset()\n"
      "<Btn1Down>: set()\n"
      "<Btn1Up>: notify() unset()";
  command->actions["highlight"] = [](Widget& w, const xsim::Event&,
                                     const std::vector<std::string>&) {
    w.SetRawValue(kHighlighted, true);
    w.app().Redraw(&w);
  };
  command->actions["reset"] = [](Widget& w, const xsim::Event&,
                                 const std::vector<std::string>&) {
    w.SetRawValue(kHighlighted, false);
    w.SetRawValue(kSetState, false);
    w.app().Redraw(&w);
  };
  command->actions["unhighlight"] = [](Widget& w, const xsim::Event&,
                                       const std::vector<std::string>&) {
    w.SetRawValue(kHighlighted, false);
    w.app().Redraw(&w);
  };
  command->actions["set"] = [](Widget& w, const xsim::Event&,
                               const std::vector<std::string>&) {
    w.SetRawValue(kSetState, true);
    w.app().Redraw(&w);
  };
  command->actions["unset"] = [](Widget& w, const xsim::Event&,
                                 const std::vector<std::string>&) {
    w.SetRawValue(kSetState, false);
    w.app().Redraw(&w);
  };
  command->actions["notify"] = [](Widget& w, const xsim::Event&,
                                  const std::vector<std::string>&) {
    w.app().CallCallbacks(&w, "callback", CallData{});
  };
  set.command = command;

  // --- Toggle ------------------------------------------------------------------------
  xtk::WidgetClass* toggle = NewClass("Toggle", command);
  toggle->resources = {
      {"state", "State", RT::kBoolean, "false"},
      {"radioGroup", "Widget", RT::kWidget, ""},
      {"radioData", "RadioData", RT::kString, ""},
  };
  toggle->expose = ToggleExpose;
  toggle->default_translations =
      "<EnterWindow>: highlight()\n"
      "<LeaveWindow>: unhighlight()\n"
      "<Btn1Up>: toggle() notify()";
  toggle->actions["toggle"] = [](Widget& w, const xsim::Event&,
                                 const std::vector<std::string>&) {
    bool new_state = !w.GetBool("state");
    w.SetRawValue("state", new_state);
    if (new_state) {
      // Radio semantics: clear the other members of the group.
      Widget* group = w.GetWidget("radioGroup");
      if (group != nullptr) {
        // Collect the set reachable through radioGroup links among siblings.
        Widget* parent = w.parent();
        if (parent != nullptr) {
          for (Widget* sibling : parent->children()) {
            if (sibling != &w && sibling->FindSpec("state") != nullptr &&
                (sibling->GetWidget("radioGroup") == group || sibling == group)) {
              sibling->SetRawValue("state", false);
              w.app().Redraw(sibling);
            }
          }
        }
      }
    }
    w.app().Redraw(&w);
  };
  toggle->actions["set"] = [](Widget& w, const xsim::Event&,
                              const std::vector<std::string>&) {
    w.SetRawValue("state", true);
    w.app().Redraw(&w);
  };
  toggle->actions["unset"] = [](Widget& w, const xsim::Event&,
                                const std::vector<std::string>&) {
    w.SetRawValue("state", false);
    w.app().Redraw(&w);
  };
  set.toggle = toggle;

  // --- MenuButton ----------------------------------------------------------------------
  xtk::WidgetClass* menu_button = NewClass("MenuButton", command);
  menu_button->resources = {
      {"menuName", "MenuName", RT::kString, "menu"},
  };
  menu_button->default_translations =
      "<EnterWindow>: highlight()\n"
      "<LeaveWindow>: reset()\n"
      "<BtnDown>: reset() PopupMenu()";
  menu_button->actions["PopupMenu"] = [](Widget& w, const xsim::Event&,
                                         const std::vector<std::string>&) {
    Widget* menu = w.app().FindWidget(w.GetString("menuName"));
    if (menu == nullptr) {
      return;
    }
    // Position the menu under the button, as the MenuButton widget does.
    xsim::Point origin = w.display().RootPosition(w.window());
    menu->SetGeometry(origin.x, origin.y + static_cast<xsim::Position>(w.height()),
                      menu->width(), menu->height());
    w.app().Popup(menu, xtk::GrabKind::kExclusive);
  };
  set.menu_button = menu_button;
}

// --- Toggle programmatic interface (XawToggle...) ----------------------------------

namespace {

// Collects the members of a toggle's radio group: siblings sharing the same
// radioGroup link (or linked to each other).
std::vector<Widget*> RadioGroupMembers(const Widget& member) {
  std::vector<Widget*> group;
  Widget* parent = member.parent();
  if (parent == nullptr) {
    return group;
  }
  Widget* anchor = member.GetWidget("radioGroup");
  for (Widget* sibling : parent->children()) {
    if (sibling->FindSpec("state") == nullptr) {
      continue;
    }
    if (sibling == &member || sibling == anchor ||
        sibling->GetWidget("radioGroup") == anchor ||
        sibling->GetWidget("radioGroup") == &member) {
      group.push_back(sibling);
    }
  }
  return group;
}

}  // namespace

void ToggleSetCurrent(xtk::Widget& any_group_member, const std::string& radio_data) {
  for (Widget* member : RadioGroupMembers(any_group_member)) {
    bool selected = member->GetString("radioData") == radio_data;
    member->SetRawValue("state", selected);
    member->app().Redraw(member);
  }
}

std::string ToggleGetCurrent(const xtk::Widget& any_group_member) {
  for (Widget* member : RadioGroupMembers(const_cast<xtk::Widget&>(any_group_member))) {
    if (member->GetBool("state")) {
      return member->GetString("radioData");
    }
  }
  return "";
}

void ToggleChangeRadioGroup(xtk::Widget& toggle, xtk::Widget* group_member) {
  toggle.SetRawValue("radioGroup", group_member);
}

}  // namespace xaw
