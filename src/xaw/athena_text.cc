// The AsciiText widget: a single editable text buffer with an insertion
// point and the classic emacs-flavored Athena text actions. Covers the
// paper's prime-factor example: characters typed into the widget accumulate
// in the `string` resource which the backend reads with `gV input string`.
#include <algorithm>

#include "src/xaw/athena_internal.h"
#include "src/xt/app.h"

// The widget also implements the classic Xt selection wiring: sweeping with
// Button1 selects text and owns PRIMARY; insert-selection (Button2) pastes
// the PRIMARY value at the insertion point.

namespace xaw {

namespace {

using RT = xtk::ResourceType;
using xtk::CallData;
using xtk::Widget;

bool Editable(const Widget& text) {
  std::string edit_type = text.GetString("editType");
  return edit_type == "edit" || edit_type == "append";
}

long ClampPosition(const Widget& text, long position) {
  long length = static_cast<long>(text.GetString("string").size());
  return std::max(0L, std::min(position, length));
}

void Insert(Widget& text, const std::string& str) {
  if (!Editable(text) || str.empty()) {
    return;
  }
  std::string buffer = text.GetString("string");
  long point = ClampPosition(text, text.GetLong("insertPosition"));
  buffer.insert(static_cast<std::size_t>(point), str);
  text.SetRawValue("string", buffer);
  text.SetRawValue("insertPosition", point + static_cast<long>(str.size()));
  text.app().CallCallbacks(&text, "callback", CallData{});
  text.app().Redraw(&text);
}

void DeleteRange(Widget& text, long from, long to) {
  if (!Editable(text)) {
    return;
  }
  std::string buffer = text.GetString("string");
  from = ClampPosition(text, from);
  to = ClampPosition(text, to);
  if (from >= to) {
    return;
  }
  buffer.erase(static_cast<std::size_t>(from), static_cast<std::size_t>(to - from));
  text.SetRawValue("string", buffer);
  text.SetRawValue("insertPosition", from);
  text.app().CallCallbacks(&text, "callback", CallData{});
  text.app().Redraw(&text);
}

void TextExpose(Widget& text) {
  if (!text.realized()) {
    return;
  }
  xsim::FontPtr font = text.GetFont("font");
  if (font == nullptr) {
    font = xsim::FontRegistry::Default().Open("fixed");
  }
  xsim::Pixel fg = text.GetPixel("foreground", xsim::kBlackPixel);
  std::string buffer = text.GetString("string");
  // Draw each line; the caret is a vertical bar at the insertion point.
  long point = ClampPosition(text, text.GetLong("insertPosition"));
  xsim::Position y = static_cast<xsim::Position>(font->ascent) + 2;
  std::size_t line_start = 0;
  long seen = 0;
  while (line_start <= buffer.size()) {
    std::size_t line_end = buffer.find('\n', line_start);
    std::string line = buffer.substr(
        line_start, line_end == std::string::npos ? std::string::npos : line_end - line_start);
    text.display().DrawText(text.window(), 2, y, line, font, fg);
    if (text.GetBool("displayCaret", true) && point >= seen &&
        point <= seen + static_cast<long>(line.size())) {
      xsim::Position caret_x =
          2 + static_cast<xsim::Position>(font->char_width * static_cast<unsigned>(point - seen));
      text.display().DrawLine(
          text.window(), xsim::Point{caret_x, y - static_cast<xsim::Position>(font->ascent)},
          xsim::Point{caret_x, y + static_cast<xsim::Position>(font->descent)}, fg);
    }
    seen += static_cast<long>(line.size()) + 1;
    if (line_end == std::string::npos) {
      break;
    }
    line_start = line_end + 1;
    y += static_cast<xsim::Position>(font->Height());
  }
  DrawShadow(text, /*sunken=*/true);
}

// Maps a window-relative click position to a buffer position (fixed-pitch
// fonts; multi-line buffers honor the line the y coordinate falls in).
long PositionFromClick(const Widget& text, xsim::Position x, xsim::Position y) {
  xsim::FontPtr font = text.GetFont("font");
  if (font == nullptr) {
    font = xsim::FontRegistry::Default().Open("fixed");
  }
  const std::string buffer = text.GetString("string");
  long row = std::max(0L, static_cast<long>((y - 2) / static_cast<long>(font->Height())));
  long col = std::max(0L, static_cast<long>((x - 2 + static_cast<long>(font->char_width) / 2) /
                                            static_cast<long>(font->char_width)));
  std::size_t line_start = 0;
  while (row > 0) {
    std::size_t nl = buffer.find('\n', line_start);
    if (nl == std::string::npos) {
      break;
    }
    line_start = nl + 1;
    --row;
  }
  std::size_t line_end = buffer.find('\n', line_start);
  long line_length = static_cast<long>(
      (line_end == std::string::npos ? buffer.size() : line_end) - line_start);
  return static_cast<long>(line_start) + std::min(col, line_length);
}

long SelAnchor(const Widget& text) { return text.GetLong("_selAnchor", -1); }
long SelEnd(const Widget& text) { return text.GetLong("_selEnd", -1); }

std::string SelectedText(const Widget& text) {
  long a = SelAnchor(text);
  long b = SelEnd(text);
  if (a < 0 || b < 0) {
    return "";
  }
  long from = std::min(a, b);
  long to = std::max(a, b);
  const std::string buffer = text.GetString("string");
  from = std::clamp(from, 0L, static_cast<long>(buffer.size()));
  to = std::clamp(to, 0L, static_cast<long>(buffer.size()));
  return buffer.substr(static_cast<std::size_t>(from), static_cast<std::size_t>(to - from));
}

long LineStart(const std::string& buffer, long point) {
  if (point <= 0) {
    return 0;
  }
  std::size_t nl = buffer.rfind('\n', static_cast<std::size_t>(point - 1));
  return nl == std::string::npos ? 0 : static_cast<long>(nl) + 1;
}

long LineEnd(const std::string& buffer, long point) {
  std::size_t nl = buffer.find('\n', static_cast<std::size_t>(point));
  return nl == std::string::npos ? static_cast<long>(buffer.size()) : static_cast<long>(nl);
}

}  // namespace

void TextInsert(xtk::Widget& text, const std::string& str) { Insert(text, str); }

void TextSetInsertionPoint(xtk::Widget& text, long position) {
  text.SetRawValue("insertPosition", ClampPosition(text, position));
  text.app().Redraw(&text);
}

long TextGetInsertionPoint(const xtk::Widget& text) {
  return ClampPosition(text, text.GetLong("insertPosition"));
}

void BuildTextClass(AthenaClasses& set) {
  const xtk::WidgetClass* super = set.three_d ? set.three_d_class : set.simple;
  xtk::WidgetClass* text = NewClass("AsciiText", super);
  text->resources = {
      {"autoFill", "AutoFill", RT::kBoolean, "false"},
      {"callback", "Callback", RT::kCallback, ""},
      {"displayCaret", "Output", RT::kBoolean, "true"},
      {"displayPosition", "TextPosition", RT::kInt, "0"},
      {"echo", "Output", RT::kBoolean, "true"},
      {"editType", "EditType", RT::kString, "read"},
      {"font", "Font", RT::kFont, "XtDefaultFont"},
      {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
      {"insertPosition", "TextPosition", RT::kInt, "0"},
      {"leftMargin", "Margin", RT::kPosition, "2"},
      {"length", "Length", RT::kInt, "0"},
      {"resize", "Resize", RT::kString, "never"},
      {"scrollHorizontal", "Scroll", RT::kString, "never"},
      {"scrollVertical", "Scroll", RT::kString, "never"},
      {"string", "String", RT::kString, ""},
      {"wrap", "Wrap", RT::kString, "never"},
  };
  text->initialize = [](Widget& w) {
    xsim::FontPtr font = w.GetFont("font");
    if (font == nullptr) {
      font = xsim::FontRegistry::Default().Open("fixed");
    }
    ApplyPreferredSize(w, 100, font->Height() + 6);
    w.SetRawValue("insertPosition",
                  ClampPosition(w, static_cast<long>(w.GetString("string").size())));
  };
  text->expose = TextExpose;
  text->set_values = [](Widget& w, const std::string& resource) {
    if (resource == "string") {
      w.SetRawValue("insertPosition",
                    ClampPosition(w, static_cast<long>(w.GetString("string").size())));
    }
  };
  text->default_translations =
      "<Key>Return: newline()\n"
      "<Key>BackSpace: delete-previous-character()\n"
      "<Key>Delete: delete-previous-character()\n"
      "Ctrl<Key>a: beginning-of-line()\n"
      "Ctrl<Key>e: end-of-line()\n"
      "Ctrl<Key>k: kill-to-end-of-line()\n"
      "<Key>Left: backward-character()\n"
      "<Key>Right: forward-character()\n"
      "<KeyPress>: insert-char()\n"
      "<Btn1Down>: select-start()\n"
      "<Btn1Motion>: extend-adjust()\n"
      "<Btn1Up>: extend-end()\n"
      "<Btn2Down>: insert-selection(PRIMARY)";
  text->actions["insert-char"] = [](Widget& w, const xsim::Event& event,
                                    const std::vector<std::string>&) {
    if (auto ascii = xsim::KeysymToAscii(event.keysym)) {
      if (*ascii >= 0x20 && *ascii < 0x7f) {
        Insert(w, std::string(1, *ascii));
      }
    }
  };
  text->actions["insert-string"] = [](Widget& w, const xsim::Event&,
                                      const std::vector<std::string>& params) {
    for (const std::string& param : params) {
      Insert(w, param);
    }
  };
  text->actions["newline"] = [](Widget& w, const xsim::Event&,
                                const std::vector<std::string>&) { Insert(w, "\n"); };
  text->actions["delete-previous-character"] = [](Widget& w, const xsim::Event&,
                                                  const std::vector<std::string>&) {
    long point = ClampPosition(w, w.GetLong("insertPosition"));
    DeleteRange(w, point - 1, point);
  };
  text->actions["delete-next-character"] = [](Widget& w, const xsim::Event&,
                                              const std::vector<std::string>&) {
    long point = ClampPosition(w, w.GetLong("insertPosition"));
    DeleteRange(w, point, point + 1);
  };
  text->actions["beginning-of-line"] = [](Widget& w, const xsim::Event&,
                                          const std::vector<std::string>&) {
    std::string buffer = w.GetString("string");
    TextSetInsertionPoint(w, LineStart(buffer, ClampPosition(w, w.GetLong("insertPosition"))));
  };
  text->actions["end-of-line"] = [](Widget& w, const xsim::Event&,
                                    const std::vector<std::string>&) {
    std::string buffer = w.GetString("string");
    TextSetInsertionPoint(w, LineEnd(buffer, ClampPosition(w, w.GetLong("insertPosition"))));
  };
  text->actions["kill-to-end-of-line"] = [](Widget& w, const xsim::Event&,
                                            const std::vector<std::string>&) {
    std::string buffer = w.GetString("string");
    long point = ClampPosition(w, w.GetLong("insertPosition"));
    DeleteRange(w, point, LineEnd(buffer, point));
  };
  text->actions["backward-character"] = [](Widget& w, const xsim::Event&,
                                           const std::vector<std::string>&) {
    TextSetInsertionPoint(w, ClampPosition(w, w.GetLong("insertPosition")) - 1);
  };
  text->actions["forward-character"] = [](Widget& w, const xsim::Event&,
                                          const std::vector<std::string>&) {
    TextSetInsertionPoint(w, ClampPosition(w, w.GetLong("insertPosition")) + 1);
  };
  text->actions["select-start"] = [](Widget& w, const xsim::Event& event,
                                     const std::vector<std::string>&) {
    w.display().SetInputFocus(w.window());
    long position = PositionFromClick(w, event.x, event.y);
    w.SetRawValue("_selAnchor", position);
    w.SetRawValue("_selEnd", position);
    w.SetRawValue("insertPosition", ClampPosition(w, position));
    w.app().Redraw(&w);
  };
  text->actions["extend-adjust"] = [](Widget& w, const xsim::Event& event,
                                      const std::vector<std::string>&) {
    if (SelAnchor(w) < 0) {
      return;
    }
    w.SetRawValue("_selEnd", PositionFromClick(w, event.x, event.y));
    w.app().Redraw(&w);
  };
  text->actions["extend-end"] = [](Widget& w, const xsim::Event& event,
                                   const std::vector<std::string>&) {
    if (SelAnchor(w) < 0) {
      return;
    }
    w.SetRawValue("_selEnd", PositionFromClick(w, event.x, event.y));
    std::string selected = SelectedText(w);
    if (!selected.empty()) {
      // Sweeping a range owns PRIMARY with it (XawTextSetSelection).
      w.app().OwnSelection(&w, "PRIMARY", [&w] { return SelectedText(w); });
    }
  };
  text->actions["insert-selection"] = [](Widget& w, const xsim::Event&,
                                         const std::vector<std::string>& params) {
    std::string selection = params.empty() ? "PRIMARY" : params[0];
    if (auto value = w.app().GetSelectionValue(selection)) {
      Insert(w, *value);
    }
  };
  set.ascii_text = text;
}

}  // namespace xaw
