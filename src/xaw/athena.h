// The Athena widget set (Xaw), with optional Xaw3d styling. The class
// hierarchy mirrors X11R5/Xaw3d:
//
//   Core -> Simple [-> ThreeD] -> Label -> Command -> Toggle / MenuButton
//   Composite -> Box, Form (-> Dialog), Paned, Viewport
//   Simple -> List, Text (AsciiText), Scrollbar, StripChart, Grip
//   OverrideShell -> SimpleMenu; Sme -> SmeBSB, SmeLine
//
// With three_d enabled (the Xaw3d relink of the paper), the ThreeD class
// sits between Simple and Label and contributes the shadow resources that
// bring Label's resource count to the 42 the paper reports.
#ifndef SRC_XAW_ATHENA_H_
#define SRC_XAW_ATHENA_H_

#include <string>
#include <vector>

#include "src/xt/app.h"
#include "src/xt/classes.h"

namespace xaw {

// All Athena classes for one styling variant. Instances are created once per
// variant and live for the process lifetime.
struct AthenaClasses {
  bool three_d = false;
  const xtk::WidgetClass* simple = nullptr;
  const xtk::WidgetClass* three_d_class = nullptr;  // null when !three_d
  const xtk::WidgetClass* label = nullptr;
  const xtk::WidgetClass* command = nullptr;
  const xtk::WidgetClass* toggle = nullptr;
  const xtk::WidgetClass* menu_button = nullptr;
  const xtk::WidgetClass* box = nullptr;
  const xtk::WidgetClass* form = nullptr;
  const xtk::WidgetClass* dialog = nullptr;
  const xtk::WidgetClass* paned = nullptr;
  const xtk::WidgetClass* viewport = nullptr;
  const xtk::WidgetClass* list = nullptr;
  const xtk::WidgetClass* ascii_text = nullptr;
  const xtk::WidgetClass* scrollbar = nullptr;
  const xtk::WidgetClass* strip_chart = nullptr;
  const xtk::WidgetClass* grip = nullptr;
  const xtk::WidgetClass* simple_menu = nullptr;
  const xtk::WidgetClass* sme = nullptr;
  const xtk::WidgetClass* sme_bsb = nullptr;
  const xtk::WidgetClass* sme_line = nullptr;

  std::vector<const xtk::WidgetClass*> All() const;
};

// Returns the class set for a styling variant (built on first use).
const AthenaClasses& GetAthenaClasses(bool three_d);

// Registers intrinsic + Athena classes with the app context.
void RegisterAthenaClasses(xtk::AppContext& app, bool three_d = true);

// --- Programmatic interface (XawXxx functions) --------------------------------

// XawListChange: replaces the item list, optionally resizing.
void ListChange(xtk::Widget& list, const std::vector<std::string>& items, bool resize);
// XawListHighlight / XawListUnhighlightCurrent.
void ListHighlight(xtk::Widget& list, int index);
void ListUnhighlight(xtk::Widget& list);
// XawListShowCurrent: returns the highlighted index (-1) and item.
int ListCurrent(const xtk::Widget& list, std::string* item);

// XawToggleSetCurrent / XawToggleGetCurrent over a radio group.
void ToggleSetCurrent(xtk::Widget& any_group_member, const std::string& radio_data);
std::string ToggleGetCurrent(const xtk::Widget& any_group_member);
// XawToggleChangeRadioGroup.
void ToggleChangeRadioGroup(xtk::Widget& toggle, xtk::Widget* group_member);

// XawFormDoLayout.
void FormDoLayout(xtk::Widget& form, bool do_layout);
// XawFormAllowResize (per-child constraint toggle).
void FormAllowResize(xtk::Widget& child, bool allow);

// XawTextReplace-style editing helpers for AsciiText.
void TextInsert(xtk::Widget& text, const std::string& str);
void TextSetInsertionPoint(xtk::Widget& text, long position);
long TextGetInsertionPoint(const xtk::Widget& text);

// XawScrollbarSetThumb.
void ScrollbarSetThumb(xtk::Widget& scrollbar, double top, double shown);

// StripChart: appends a sample (the repaint scrolls the chart).
void StripChartAddValue(xtk::Widget& chart, double value);

}  // namespace xaw

#endif  // SRC_XAW_ATHENA_H_
