#include "src/xsim/font.h"

#include <cctype>
#include <cstdio>

namespace xsim {

namespace {

// Case-insensitive glob with * and ? (XLFD matching ignores case).
bool FontGlobMatch(std::string_view pattern, std::string_view str) {
  std::size_t p = 0;
  std::size_t s = 0;
  std::size_t star_p = std::string_view::npos;
  std::size_t star_s = 0;
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  while (s < str.size()) {
    if (p < pattern.size() && pattern[p] == '*') {
      star_p = ++p;
      star_s = s;
      continue;
    }
    if (p < pattern.size() && (pattern[p] == '?' || lower(pattern[p]) == lower(str[s]))) {
      ++p;
      ++s;
      continue;
    }
    if (star_p != std::string_view::npos) {
      p = star_p;
      s = ++star_s;
      continue;
    }
    return false;
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

}  // namespace

void FontRegistry::Register(Font font) {
  fonts_.push_back(std::make_shared<const Font>(std::move(font)));
}

FontPtr FontRegistry::Open(std::string_view pattern) const {
  for (const auto& font : fonts_) {
    if (FontGlobMatch(pattern, font->name)) {
      return font;
    }
  }
  return nullptr;
}

std::vector<std::string> FontRegistry::List(std::string_view pattern) const {
  std::vector<std::string> names;
  for (const auto& font : fonts_) {
    if (FontGlobMatch(pattern, font->name)) {
      names.push_back(font->name);
    }
  }
  return names;
}

FontRegistry& FontRegistry::Default() {
  static FontRegistry* registry = [] {
    auto* r = new FontRegistry();
    // Classic aliases.
    r->Register(Font{"fixed", 6, 10, 3, false, false});
    r->Register(Font{"6x13", 6, 10, 3, false, false});
    r->Register(Font{"9x15", 9, 12, 3, false, false});
    r->Register(Font{"cursor", 8, 12, 4, false, false});
    // XLFD families at the sizes Wafe-era applications use. The pixel-size
    // field drives the metrics: width ~ size/2, ascent ~ 4*size/5.
    struct Family {
      const char* foundry;
      const char* family;
      // The slant letter of the family's non-upright faces in the real 75dpi
      // distribution: helvetica and courier ship oblique ("o"), times and
      // lucida italic ("i"). Patterns name these letters explicitly
      // ("-adobe-helvetica-medium-o-normal--12-..."), so using "i" across
      // the board would break era-correct requests.
      const char* slanted;
    };
    static constexpr Family kFamilies[] = {
        {"b&h", "lucida", "i"},
        {"adobe", "helvetica", "o"},
        {"adobe", "courier", "o"},
        {"adobe", "times", "i"},
        {"misc", "fixed", "o"},
    };
    static constexpr const char* kWeights[] = {"medium", "bold"};
    static constexpr unsigned kSizes[] = {8, 10, 12, 14, 18, 24};
    for (const Family& family : kFamilies) {
      for (const char* weight : kWeights) {
        for (const char* slant : {"r", family.slanted}) {
          for (unsigned size : kSizes) {
            char name[128];
            std::snprintf(name, sizeof(name), "-%s-%s-%s-%s-normal--%u-%u-75-75-p-0-iso8859-1",
                          family.foundry, family.family, weight, slant, size, size * 10);
            Font font;
            font.name = name;
            font.char_width = size / 2;
            font.ascent = size * 4 / 5;
            font.descent = size - font.ascent;
            font.bold = std::string_view(weight) == "bold";
            font.italic = std::string_view(slant) != "r";
            r->Register(std::move(font));
          }
        }
      }
    }
    return r;
  }();
  return *registry;
}

}  // namespace xsim
