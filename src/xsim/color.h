// Color handling for the simulated display: a named-color database modeled
// on X11's rgb.txt plus #rgb / #rrggbb parsing. Pixels are 32-bit ARGB.
#ifndef SRC_XSIM_COLOR_H_
#define SRC_XSIM_COLOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xsim {

using Pixel = std::uint32_t;

constexpr Pixel MakePixel(unsigned r, unsigned g, unsigned b) {
  return 0xff000000u | ((r & 0xffu) << 16) | ((g & 0xffu) << 8) | (b & 0xffu);
}

constexpr unsigned PixelRed(Pixel p) { return (p >> 16) & 0xffu; }
constexpr unsigned PixelGreen(Pixel p) { return (p >> 8) & 0xffu; }
constexpr unsigned PixelBlue(Pixel p) { return p & 0xffu; }

inline constexpr Pixel kBlackPixel = MakePixel(0, 0, 0);
inline constexpr Pixel kWhitePixel = MakePixel(255, 255, 255);

// Looks up a color by name (case-insensitive, spaces ignored, as X does) or
// by #rgb / #rrggbb / #rrrrggggbbbb hex spec. Returns nullopt if unknown.
std::optional<Pixel> LookupColor(std::string_view spec);

// Formats a pixel back as a #rrggbb spec (used by reverse converters).
std::string FormatColor(Pixel pixel);

// All known color names (sorted), for introspection and tests.
std::vector<std::string> KnownColorNames();

}  // namespace xsim

#endif  // SRC_XSIM_COLOR_H_
