// The simulated display server: a window tree, an event queue with synthetic
// input injection, pointer/keyboard state with grabs and focus, and a
// framebuffer with a recorded draw-op log so tests can assert on rendered
// output deterministically.
#ifndef SRC_XSIM_DISPLAY_H_
#define SRC_XSIM_DISPLAY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/xsim/color.h"
#include "src/xsim/event.h"
#include "src/xsim/font.h"
#include "src/xsim/geometry.h"
#include "src/xsim/pixmap.h"

namespace xsim {

class Display {
 public:
  explicit Display(std::string name = ":0", Dimension width = 1024, Dimension height = 768);

  Display(const Display&) = delete;
  Display& operator=(const Display&) = delete;

  const std::string& name() const { return name_; }
  Dimension width() const { return width_; }
  Dimension height() const { return height_; }
  WindowId root() const { return kRootWindow; }

  // --- Window tree ----------------------------------------------------------

  WindowId CreateWindow(WindowId parent, const Rect& geometry, Dimension border_width = 0,
                        Pixel background = kWhitePixel);
  // Destroys a window and its subtree; emits DestroyNotify bottom-up.
  void DestroyWindow(WindowId window);
  bool Exists(WindowId window) const;

  void MapWindow(WindowId window);
  void UnmapWindow(WindowId window);
  bool IsMapped(WindowId window) const;
  // Mapped and all ancestors mapped (XIsViewable analogue).
  bool IsViewable(WindowId window) const;

  void MoveResizeWindow(WindowId window, const Rect& geometry);
  void SetWindowBackground(WindowId window, Pixel background);
  void SetWindowBorder(WindowId window, Dimension width, Pixel color);
  void RaiseWindow(WindowId window);

  Rect WindowGeometry(WindowId window) const;  // relative to parent
  Pixel WindowBackground(WindowId window) const;
  WindowId Parent(WindowId window) const;
  std::vector<WindowId> Children(WindowId window) const;  // bottom-to-top
  // Translates the window origin to root coordinates.
  Point RootPosition(WindowId window) const;
  // Deepest viewable window containing the root-relative point.
  WindowId WindowAtPoint(Position x, Position y) const;

  std::size_t WindowCount() const { return windows_.size(); }

  // --- Protocol errors ------------------------------------------------------

  // Operations addressing a nonexistent (already destroyed) window are X
  // protocol errors. A real server delivers BadWindow / BadDrawable to the
  // client's error handler; the simulation does the same through this hook.
  // Without a handler the op is silently ignored (raw-Display behavior).
  static constexpr int kBadWindow = 3;    // X11 protocol error codes
  static constexpr int kBadPixmap = 4;
  static constexpr int kBadDrawable = 9;

  struct ProtocolError {
    int code = 0;                 // kBadWindow / kBadDrawable / kBadPixmap
    const char* request = "";     // protocol request name, e.g. "MapWindow"
    WindowId resource = kNoWindow;
  };

  static const char* ErrorCodeName(int code);

  using ProtocolErrorHandler = std::function<void(const ProtocolError&)>;
  void SetProtocolErrorHandler(ProtocolErrorHandler handler) {
    error_handler_ = std::move(handler);
  }

  // Delivers a synthetic error through the handler (fault injection).
  void InjectProtocolError(int code, const char* request, WindowId resource);

  std::size_t protocol_error_count() const { return protocol_errors_; }

  // --- Events -----------------------------------------------------------------

  bool Pending() const { return !queue_.empty(); }
  Event NextEvent();
  void PutBackEvent(const Event& event);
  void SendEvent(const Event& event) { Enqueue(event); }

  // --- Input injection ----------------------------------------------------------

  // Pointer events are delivered to the grab window when a grab is active,
  // otherwise to the deepest viewable window under the pointer.
  void InjectButtonPress(Position x, Position y, unsigned button, unsigned state = 0);
  void InjectButtonRelease(Position x, Position y, unsigned button, unsigned state = 0);
  // Moves the pointer, emitting Leave/Enter pairs on window crossings and a
  // MotionNotify in the target window.
  void InjectMotion(Position x, Position y, unsigned state = 0);
  // Key events go to the focus window (or the window under the pointer if no
  // focus is set). The keycode is derived from the keyboard map.
  void InjectKeyPress(KeySym keysym, unsigned state = 0);
  void InjectKeyRelease(KeySym keysym, unsigned state = 0);
  // Types a character string: per character, presses (with shift handling)
  // and releases the key.
  void InjectText(const std::string& text);

  void SetInputFocus(WindowId window) { focus_ = window; }
  WindowId InputFocus() const { return focus_; }
  Point PointerPosition() const { return pointer_; }

  // Observer invoked at every injection primitive with a text encoding of
  // the call ("buttonpress x y button state", "motion x y state",
  // "keypress keysym state", ...). InjectText decomposes into key
  // press/release primitives, so the observer sees each physical event
  // exactly once — the session recorder journals these for replay.
  using InjectObserver = std::function<void(const std::string& encoded)>;
  void set_inject_observer(InjectObserver fn) { inject_observer_ = std::move(fn); }

  // --- Grabs -----------------------------------------------------------------------

  // Pointer grab, as popup shells use it. With owner_events the event is
  // still reported relative to the window under the pointer when that window
  // belongs to the client (we model a single client, so it always does).
  void GrabPointer(WindowId window, bool owner_events);
  void UngrabPointer();
  WindowId PointerGrab() const { return grab_; }

  // --- Selections ---------------------------------------------------------------------

  // Transfers selection ownership; the previous owner receives a
  // SelectionClear event (message = selection name).
  void SetSelectionOwner(const std::string& selection, WindowId owner);
  WindowId SelectionOwner(const std::string& selection) const;

  // --- Damage batching -----------------------------------------------------------

  // When batching is on (AppContext enables it on the displays it opens),
  // exposure damage accumulates per window instead of enqueueing an Expose
  // per update; FlushDamage then coalesces — rects on the same window are
  // unioned and child damage is dropped when an ancestor is also damaged —
  // and enqueues one Expose per remaining window. Default off: raw Display
  // users expect an immediate Expose per update.
  void SetDamageBatching(bool on) { damage_batching_ = on; }
  bool damage_batching() const { return damage_batching_; }
  // Records exposure damage for a viewable window (window-relative rect).
  // Emits the Expose immediately when batching is off.
  void AddDamage(WindowId window, const Rect& rect);
  // Coalesces pending damage into Expose events; returns how many were sent.
  std::size_t FlushDamage();
  bool HasPendingDamage() const { return !damage_.empty(); }

  // --- Time -------------------------------------------------------------------------

  // Deterministic server time: advances by 1ms per injected event.
  std::uint64_t Now() const { return now_; }
  void AdvanceTime(std::uint64_t ms) { now_ += ms; }

  // --- Drawing ----------------------------------------------------------------------

  void ClearWindow(WindowId window);
  void FillRect(WindowId window, const Rect& rect, Pixel pixel);
  void DrawRectOutline(WindowId window, const Rect& rect, Pixel pixel);
  void DrawLine(WindowId window, Point from, Point to, Pixel pixel);
  void DrawText(WindowId window, Position x, Position y, const std::string& text,
                const FontPtr& font, Pixel pixel);
  void CopyPixmap(WindowId window, const Pixmap& pixmap, Position x, Position y);

  struct DrawOp {
    enum class Kind { kClear, kFillRect, kRectOutline, kLine, kText, kPixmap };
    Kind kind = Kind::kClear;
    WindowId window = kNoWindow;
    Rect rect;           // window-relative
    Point to;            // for lines
    Pixel pixel = kBlackPixel;
    std::string text;    // for text ops
    std::string font;    // font name for text ops
  };

  const std::vector<DrawOp>& draw_ops() const { return draw_ops_; }
  void ClearDrawOps() { draw_ops_.clear(); }
  // The op log is bounded (oldest half dropped past the limit) so long
  // sessions do not grow without bound; tests inspect recent ops only.
  void set_draw_op_limit(std::size_t limit) { draw_op_limit_ = limit; }
  // All text drawn since the op log was last cleared, in draw order.
  std::vector<std::string> VisibleText() const;
  // True if any draw op on `window` rendered exactly `text`.
  bool WindowShowsText(WindowId window, const std::string& text) const;

  Pixel PixelAt(Position x, Position y) const;
  const std::vector<Pixel>& framebuffer() const { return framebuffer_; }

 private:
  static constexpr WindowId kRootWindow = 1;

  struct Window {
    WindowId id = kNoWindow;
    WindowId parent = kNoWindow;
    std::vector<WindowId> children;  // bottom-to-top stacking
    Rect geometry;
    Dimension border_width = 0;
    Pixel border_color = kBlackPixel;
    Pixel background = kWhitePixel;
    bool mapped = false;
  };

  // Appends to the event queue and reports the new depth to the obs layer.
  void Enqueue(const Event& event);

  Window* Find(WindowId id);
  const Window* Find(WindowId id) const;
  // Fires a protocol error at the installed handler (never throws/aborts).
  void RaiseProtocolError(int code, const char* request, WindowId resource);
  WindowId HitTest(const Window& window, Position x, Position y) const;
  void EmitCrossing(WindowId old_window, WindowId new_window, Position x, Position y,
                    unsigned state);
  void InjectKey(KeySym keysym, bool press, unsigned state);
  // Clips a window-relative rect to the window and the framebuffer; returns
  // the root-relative clipped rect.
  Rect ClipToWindow(const Window& window, const Rect& rect) const;
  void PaintRect(const Rect& root_rect, Pixel pixel);
  // Appends to the bounded op log.
  void RecordOp(DrawOp op);

  std::string name_;
  Dimension width_;
  Dimension height_;
  std::map<WindowId, Window> windows_;
  std::map<std::string, WindowId> selections_;
  WindowId next_id_ = kRootWindow + 1;
  std::deque<Event> queue_;
  bool damage_batching_ = false;
  std::map<WindowId, Rect> damage_;  // pending union rect per window
  std::vector<DrawOp> draw_ops_;
  std::size_t draw_op_limit_ = 100000;
  std::vector<Pixel> framebuffer_;
  Point pointer_{0, 0};
  WindowId pointer_window_ = kRootWindow;
  WindowId focus_ = kNoWindow;
  WindowId grab_ = kNoWindow;
  bool grab_owner_events_ = false;
  std::uint64_t now_ = 1000;
  ProtocolErrorHandler error_handler_;
  std::size_t protocol_errors_ = 0;
  InjectObserver inject_observer_;
};

}  // namespace xsim

#endif  // SRC_XSIM_DISPLAY_H_
