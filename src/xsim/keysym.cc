#include "src/xsim/keysym.h"

#include <array>

namespace xsim {

namespace {

struct NamedSym {
  KeySym keysym;
  const char* name;
};

constexpr NamedSym kNamedSyms[] = {
    {kKeyReturn, "Return"},     {kKeyTab, "Tab"},
    {kKeyBackSpace, "BackSpace"}, {kKeyEscape, "Escape"},
    {kKeyDelete, "Delete"},     {kKeyShiftL, "Shift_L"},
    {kKeyShiftR, "Shift_R"},    {kKeyControlL, "Control_L"},
    {kKeyControlR, "Control_R"}, {kKeyMetaL, "Meta_L"},
    {kKeyLeft, "Left"},         {kKeyUp, "Up"},
    {kKeyRight, "Right"},       {kKeyDown, "Down"},
    {kKeyHome, "Home"},         {kKeyEnd, "End"},
};

// X names for the printable ASCII range 0x20..0x7e, indexed by c - 0x20.
// Letters and digits are their own names.
constexpr const char* kAsciiNames[] = {
    "space",      "exclam",     "quotedbl",   "numbersign", "dollar",    "percent",
    "ampersand",  "apostrophe", "parenleft",  "parenright", "asterisk",  "plus",
    "comma",      "minus",      "period",     "slash",      "0",         "1",
    "2",          "3",          "4",          "5",          "6",         "7",
    "8",          "9",          "colon",      "semicolon",  "less",      "equal",
    "greater",    "question",   "at",         "A",          "B",         "C",
    "D",          "E",          "F",          "G",          "H",         "I",
    "J",          "K",          "L",          "M",          "N",         "O",
    "P",          "Q",          "R",          "S",          "T",         "U",
    "V",          "W",          "X",          "Y",          "Z",         "bracketleft",
    "backslash",  "bracketright", "asciicircum", "underscore", "grave",  "a",
    "b",          "c",          "d",          "e",          "f",         "g",
    "h",          "i",          "j",          "k",          "l",         "m",
    "n",          "o",          "p",          "q",          "r",         "s",
    "t",          "u",          "v",          "w",          "x",         "y",
    "z",          "braceleft",  "bar",        "braceright", "asciitilde",
};

// The simulated keyboard map, modeled on the DECstation LK201 layout: each
// physical key has a keycode plus its unshifted and shifted character. The
// paper's key-echo example fixes three data points: 'w' = 198,
// Shift_L = 174, '1'/'!' = 197.
struct MappedKey {
  KeyCode keycode;
  char unshifted;  // 0 for non-character keys
  char shifted;
  KeySym special;  // non-zero for modifier / function keys
};

constexpr MappedKey kKeyboard[] = {
    // Digit column keys interleave with the letter row beneath, as on the
    // LK201 (odd codes digits, even codes letters).
    {197, '1', '!', 0}, {199, '2', '@', 0}, {201, '3', '#', 0}, {203, '4', '$', 0},
    {205, '5', '%', 0}, {207, '6', '^', 0}, {209, '7', '&', 0}, {211, '8', '*', 0},
    {213, '9', '(', 0}, {215, '0', ')', 0}, {217, '-', '_', 0}, {219, '=', '+', 0},
    {196, 'q', 'Q', 0}, {198, 'w', 'W', 0}, {200, 'e', 'E', 0}, {202, 'r', 'R', 0},
    {204, 't', 'T', 0}, {206, 'y', 'Y', 0}, {208, 'u', 'U', 0}, {210, 'i', 'I', 0},
    {212, 'o', 'O', 0}, {214, 'p', 'P', 0},
    {178, 'a', 'A', 0}, {180, 's', 'S', 0}, {182, 'd', 'D', 0}, {184, 'f', 'F', 0},
    {186, 'g', 'G', 0}, {188, 'h', 'H', 0}, {190, 'j', 'J', 0}, {192, 'k', 'K', 0},
    {194, 'l', 'L', 0},
    {155, 'z', 'Z', 0}, {157, 'x', 'X', 0}, {159, 'c', 'C', 0}, {161, 'v', 'V', 0},
    {163, 'b', 'B', 0}, {165, 'n', 'N', 0}, {167, 'm', 'M', 0},
    {222, ';', ':', 0}, {223, '\'', '"', 0}, {224, ',', '<', 0}, {225, '.', '>', 0},
    {226, '/', '?', 0}, {227, '`', '~', 0}, {228, '[', '{', 0}, {229, ']', '}', 0},
    {230, '\\', '|', 0},
    {129, ' ', ' ', 0},
    {139, 0, 0, kKeyReturn},  {137, 0, 0, kKeyTab},      {135, 0, 0, kKeyBackSpace},
    {113, 0, 0, kKeyEscape},  {141, 0, 0, kKeyDelete},   {174, 0, 0, kKeyShiftL},
    {171, 0, 0, kKeyShiftR},  {175, 0, 0, kKeyControlL}, {177, 0, 0, kKeyMetaL},
    {146, 0, 0, kKeyLeft},    {147, 0, 0, kKeyRight},    {148, 0, 0, kKeyUp},
    {149, 0, 0, kKeyDown},    {150, 0, 0, kKeyHome},     {151, 0, 0, kKeyEnd},
};

}  // namespace

std::string KeysymToString(KeySym keysym) {
  for (const NamedSym& named : kNamedSyms) {
    if (named.keysym == keysym) {
      return named.name;
    }
  }
  if (keysym >= 0x20 && keysym <= 0x7e) {
    return kAsciiNames[keysym - 0x20];
  }
  return "";
}

std::optional<KeySym> StringToKeysym(std::string_view name) {
  for (const NamedSym& named : kNamedSyms) {
    if (name == named.name) {
      return named.keysym;
    }
  }
  for (std::size_t i = 0; i < std::size(kAsciiNames); ++i) {
    if (name == kAsciiNames[i]) {
      return static_cast<KeySym>(0x20 + i);
    }
  }
  return std::nullopt;
}

std::optional<char> KeysymToAscii(KeySym keysym) {
  if (keysym >= 0x20 && keysym <= 0x7e) {
    return static_cast<char>(keysym);
  }
  if (keysym == kKeyReturn) {
    return '\r';
  }
  if (keysym == kKeyTab) {
    return '\t';
  }
  if (keysym == kKeyBackSpace) {
    return '\b';
  }
  if (keysym == kKeyEscape) {
    return '\x1b';
  }
  if (keysym == kKeyDelete) {
    return '\x7f';
  }
  return std::nullopt;
}

KeySym AsciiToKeysym(char c) { return static_cast<KeySym>(static_cast<unsigned char>(c)); }

KeyCode KeysymToKeycode(KeySym keysym) {
  for (const MappedKey& key : kKeyboard) {
    if (key.special != 0) {
      if (key.special == keysym) {
        return key.keycode;
      }
      continue;
    }
    if (AsciiToKeysym(key.unshifted) == keysym || AsciiToKeysym(key.shifted) == keysym) {
      return key.keycode;
    }
  }
  return 0;
}

KeySym KeycodeToKeysym(KeyCode keycode, bool shifted) {
  for (const MappedKey& key : kKeyboard) {
    if (key.keycode != keycode) {
      continue;
    }
    if (key.special != 0) {
      return key.special;
    }
    return AsciiToKeysym(shifted ? key.shifted : key.unshifted);
  }
  return kNoSymbol;
}

}  // namespace xsim
