#include "src/xsim/pixmap.h"

#include <cctype>
#include <cstdlib>
#include <map>

namespace xsim {

namespace {

// Extracts all double-quoted string literals from C-ish source.
std::vector<std::string> ExtractStrings(std::string_view source) {
  std::vector<std::string> strings;
  std::size_t i = 0;
  while (i < source.size()) {
    if (source[i] == '"') {
      std::string current;
      ++i;
      while (i < source.size() && source[i] != '"') {
        if (source[i] == '\\' && i + 1 < source.size()) {
          current.push_back(source[i + 1]);
          i += 2;
        } else {
          current.push_back(source[i]);
          ++i;
        }
      }
      ++i;  // closing quote
      strings.push_back(std::move(current));
    } else if (source[i] == '/' && i + 1 < source.size() && source[i + 1] == '*') {
      std::size_t end = source.find("*/", i + 2);
      i = end == std::string_view::npos ? source.size() : end + 2;
    } else {
      ++i;
    }
  }
  return strings;
}

// Finds "#define <something>_<suffix> <number>".
bool FindDefine(std::string_view source, std::string_view suffix, unsigned* out) {
  std::size_t pos = 0;
  while ((pos = source.find("#define", pos)) != std::string_view::npos) {
    std::size_t line_end = source.find('\n', pos);
    std::string_view line = source.substr(pos, line_end == std::string_view::npos
                                                   ? source.size() - pos
                                                   : line_end - pos);
    std::size_t name_end = line.find_last_not_of("0123456789 \t");
    if (name_end != std::string_view::npos) {
      std::string_view head = line.substr(0, name_end + 1);
      if (head.size() >= suffix.size() &&
          head.substr(head.size() - suffix.size()) == suffix) {
        std::string_view tail = line.substr(name_end + 1);
        char* end = nullptr;
        std::string tail_str(tail);
        unsigned long v = std::strtoul(tail_str.c_str(), &end, 10);
        if (end != tail_str.c_str()) {
          *out = static_cast<unsigned>(v);
          return true;
        }
      }
    }
    pos += 7;
  }
  return false;
}

}  // namespace

PixmapPtr ParseXbm(std::string_view source, Pixel foreground, Pixel background) {
  unsigned width = 0;
  unsigned height = 0;
  if (!FindDefine(source, "_width", &width) || !FindDefine(source, "_height", &height) ||
      width == 0 || height == 0) {
    return nullptr;
  }
  // Collect hex bytes from the bits array.
  std::size_t bits_pos = source.find("bits[]");
  if (bits_pos == std::string_view::npos) {
    bits_pos = source.find('{');
  }
  if (bits_pos == std::string_view::npos) {
    return nullptr;
  }
  std::vector<unsigned char> bytes;
  std::size_t i = source.find('{', bits_pos);
  if (i == std::string_view::npos) {
    return nullptr;
  }
  while (i < source.size() && source[i] != '}') {
    if (source[i] == '0' && i + 1 < source.size() &&
        (source[i + 1] == 'x' || source[i + 1] == 'X')) {
      unsigned value = 0;
      std::size_t j = i + 2;
      while (j < source.size() && std::isxdigit(static_cast<unsigned char>(source[j]))) {
        char c = source[j];
        value = value * 16 +
                static_cast<unsigned>(std::isdigit(static_cast<unsigned char>(c))
                                          ? c - '0'
                                          : std::tolower(static_cast<unsigned char>(c)) - 'a' +
                                                10);
        ++j;
      }
      bytes.push_back(static_cast<unsigned char>(value & 0xff));
      i = j;
    } else {
      ++i;
    }
  }
  const unsigned bytes_per_row = (width + 7) / 8;
  if (bytes.size() < static_cast<std::size_t>(bytes_per_row) * height) {
    return nullptr;
  }
  auto pixmap = std::make_shared<Pixmap>();
  pixmap->width = width;
  pixmap->height = height;
  pixmap->pixels.resize(static_cast<std::size_t>(width) * height);
  for (unsigned y = 0; y < height; ++y) {
    for (unsigned x = 0; x < width; ++x) {
      unsigned char byte = bytes[y * bytes_per_row + x / 8];
      bool set = (byte >> (x % 8)) & 1u;  // XBM is LSB-first
      pixmap->pixels[y * width + x] = set ? foreground : background;
    }
  }
  return pixmap;
}

PixmapPtr ParseXpm(std::string_view source) {
  std::vector<std::string> strings = ExtractStrings(source);
  if (strings.empty()) {
    // Allow the raw "! XPM2" line format too: lines are the strings.
    return nullptr;
  }
  // Header: "width height ncolors chars_per_pixel".
  unsigned width = 0;
  unsigned height = 0;
  unsigned ncolors = 0;
  unsigned cpp = 0;
  {
    const std::string& header = strings[0];
    char* end = nullptr;
    const char* p = header.c_str();
    width = static_cast<unsigned>(std::strtoul(p, &end, 10));
    p = end;
    height = static_cast<unsigned>(std::strtoul(p, &end, 10));
    p = end;
    ncolors = static_cast<unsigned>(std::strtoul(p, &end, 10));
    p = end;
    cpp = static_cast<unsigned>(std::strtoul(p, &end, 10));
    if (width == 0 || height == 0 || ncolors == 0 || cpp == 0) {
      return nullptr;
    }
  }
  if (strings.size() < 1 + ncolors + height) {
    return nullptr;
  }
  struct ColorEntry {
    Pixel pixel = kBlackPixel;
    bool transparent = false;
  };
  std::map<std::string, ColorEntry> colors;
  for (unsigned c = 0; c < ncolors; ++c) {
    const std::string& line = strings[1 + c];
    if (line.size() < cpp) {
      return nullptr;
    }
    std::string key = line.substr(0, cpp);
    // Tokens after the key: pairs of <keychar> <color>; we honor the `c` key.
    std::string rest = line.substr(cpp);
    std::vector<std::string> tokens;
    std::string current;
    for (char ch : rest) {
      if (std::isspace(static_cast<unsigned char>(ch))) {
        if (!current.empty()) {
          tokens.push_back(current);
          current.clear();
        }
      } else {
        current.push_back(ch);
      }
    }
    if (!current.empty()) {
      tokens.push_back(current);
    }
    ColorEntry entry;
    bool found = false;
    for (std::size_t t = 0; t + 1 < tokens.size(); t += 2) {
      if (tokens[t] == "c") {
        const std::string& spec = tokens[t + 1];
        if (spec == "None" || spec == "none") {
          entry.transparent = true;
          found = true;
        } else if (auto pixel = LookupColor(spec)) {
          entry.pixel = *pixel;
          found = true;
        }
        break;
      }
    }
    if (!found) {
      return nullptr;
    }
    colors[key] = entry;
  }
  auto pixmap = std::make_shared<Pixmap>();
  pixmap->width = width;
  pixmap->height = height;
  pixmap->pixels.resize(static_cast<std::size_t>(width) * height, kWhitePixel);
  bool any_transparent = false;
  std::vector<bool> mask(static_cast<std::size_t>(width) * height, true);
  for (unsigned y = 0; y < height; ++y) {
    const std::string& row = strings[1 + ncolors + y];
    if (row.size() < static_cast<std::size_t>(width) * cpp) {
      return nullptr;
    }
    for (unsigned x = 0; x < width; ++x) {
      std::string key = row.substr(static_cast<std::size_t>(x) * cpp, cpp);
      auto it = colors.find(key);
      if (it == colors.end()) {
        return nullptr;
      }
      if (it->second.transparent) {
        mask[y * width + x] = false;
        any_transparent = true;
      } else {
        pixmap->pixels[y * width + x] = it->second.pixel;
      }
    }
  }
  if (any_transparent) {
    pixmap->mask = std::move(mask);
  }
  return pixmap;
}

PixmapPtr ParseBitmapOrPixmap(std::string_view source, Pixel foreground, Pixel background) {
  if (PixmapPtr xbm = ParseXbm(source, foreground, background)) {
    return xbm;
  }
  return ParseXpm(source);
}

}  // namespace xsim
