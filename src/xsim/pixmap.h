// Pixmaps and the XBM / XPM image file formats. XPM support includes color
// tables and the "None" transparency color that produces a shape mask, as
// the Xpm library the paper links against does.
#ifndef SRC_XSIM_PIXMAP_H_
#define SRC_XSIM_PIXMAP_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/xsim/color.h"

namespace xsim {

struct Pixmap {
  unsigned width = 0;
  unsigned height = 0;
  std::vector<Pixel> pixels;      // row-major, width*height
  std::vector<bool> mask;         // shape mask; empty when fully opaque
  std::string name;               // source name, if known

  Pixel At(unsigned x, unsigned y) const { return pixels[y * width + x]; }
  bool Opaque(unsigned x, unsigned y) const {
    return mask.empty() || mask[y * width + x];
  }
};

using PixmapPtr = std::shared_ptr<const Pixmap>;

// Parses X bitmap (.xbm) C source: "#define name_width W", "#define
// name_height H", and a bits[] array of hex bytes. Set bits render in
// `foreground`, clear bits in `background`. Returns nullptr on a parse error.
PixmapPtr ParseXbm(std::string_view source, Pixel foreground = kBlackPixel,
                   Pixel background = kWhitePixel);

// Parses X pixmap (.xpm) C source (XPM 2/3 string arrays): header
// "w h ncolors cpp", color definitions with a `c` key, pixel rows.
// The color "None" becomes transparent in the mask. Returns nullptr on a
// parse error or an unknown color.
PixmapPtr ParseXpm(std::string_view source);

// The converter behavior Wafe registers: try XBM first, fall back to XPM.
PixmapPtr ParseBitmapOrPixmap(std::string_view source, Pixel foreground = kBlackPixel,
                              Pixel background = kWhitePixel);

}  // namespace xsim

#endif  // SRC_XSIM_PIXMAP_H_
