#include "src/xsim/color.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>

namespace xsim {

namespace {

struct NamedColor {
  const char* name;
  unsigned char r;
  unsigned char g;
  unsigned char b;
};

// A representative slice of X11's rgb.txt, covering every color the Wafe
// paper and the Athena defaults mention plus the common palette.
constexpr NamedColor kColors[] = {
    {"aliceblue", 240, 248, 255},
    {"antiquewhite", 250, 235, 215},
    {"aquamarine", 127, 255, 212},
    {"azure", 240, 255, 255},
    {"beige", 245, 245, 220},
    {"bisque", 255, 228, 196},
    {"black", 0, 0, 0},
    {"blanchedalmond", 255, 235, 205},
    {"blue", 0, 0, 255},
    {"blueviolet", 138, 43, 226},
    {"brown", 165, 42, 42},
    {"burlywood", 222, 184, 135},
    {"cadetblue", 95, 158, 160},
    {"chartreuse", 127, 255, 0},
    {"chocolate", 210, 105, 30},
    {"coral", 255, 127, 80},
    {"cornflowerblue", 100, 149, 237},
    {"cornsilk", 255, 248, 220},
    {"cyan", 0, 255, 255},
    {"darkblue", 0, 0, 139},
    {"darkcyan", 0, 139, 139},
    {"darkgoldenrod", 184, 134, 11},
    {"darkgray", 169, 169, 169},
    {"darkgreen", 0, 100, 0},
    {"darkgrey", 169, 169, 169},
    {"darkkhaki", 189, 183, 107},
    {"darkmagenta", 139, 0, 139},
    {"darkolivegreen", 85, 107, 47},
    {"darkorange", 255, 140, 0},
    {"darkorchid", 153, 50, 204},
    {"darkred", 139, 0, 0},
    {"darksalmon", 233, 150, 122},
    {"darkseagreen", 143, 188, 143},
    {"darkslateblue", 72, 61, 139},
    {"darkslategray", 47, 79, 79},
    {"darkturquoise", 0, 206, 209},
    {"darkviolet", 148, 0, 211},
    {"deeppink", 255, 20, 147},
    {"deepskyblue", 0, 191, 255},
    {"dimgray", 105, 105, 105},
    {"dimgrey", 105, 105, 105},
    {"dodgerblue", 30, 144, 255},
    {"firebrick", 178, 34, 34},
    {"floralwhite", 255, 250, 240},
    {"forestgreen", 34, 139, 34},
    {"gainsboro", 220, 220, 220},
    {"ghostwhite", 248, 248, 255},
    {"gold", 255, 215, 0},
    {"goldenrod", 218, 165, 32},
    {"gray", 190, 190, 190},
    {"gray25", 64, 64, 64},
    {"gray50", 127, 127, 127},
    {"gray75", 191, 191, 191},
    {"gray90", 229, 229, 229},
    {"green", 0, 255, 0},
    {"greenyellow", 173, 255, 47},
    {"grey", 190, 190, 190},
    {"honeydew", 240, 255, 240},
    {"hotpink", 255, 105, 180},
    {"indianred", 205, 92, 92},
    {"ivory", 255, 255, 240},
    {"khaki", 240, 230, 140},
    {"lavender", 230, 230, 250},
    {"lavenderblush", 255, 240, 245},
    {"lawngreen", 124, 252, 0},
    {"lemonchiffon", 255, 250, 205},
    {"lightblue", 173, 216, 230},
    {"lightcoral", 240, 128, 128},
    {"lightcyan", 224, 255, 255},
    {"lightgoldenrod", 238, 221, 130},
    {"lightgray", 211, 211, 211},
    {"lightgreen", 144, 238, 144},
    {"lightgrey", 211, 211, 211},
    {"lightpink", 255, 182, 193},
    {"lightsalmon", 255, 160, 122},
    {"lightseagreen", 32, 178, 170},
    {"lightskyblue", 135, 206, 250},
    {"lightslategray", 119, 136, 153},
    {"lightsteelblue", 176, 196, 222},
    {"lightyellow", 255, 255, 224},
    {"limegreen", 50, 205, 50},
    {"linen", 250, 240, 230},
    {"magenta", 255, 0, 255},
    {"maroon", 176, 48, 96},
    {"mediumaquamarine", 102, 205, 170},
    {"mediumblue", 0, 0, 205},
    {"mediumorchid", 186, 85, 211},
    {"mediumpurple", 147, 112, 219},
    {"mediumseagreen", 60, 179, 113},
    {"mediumslateblue", 123, 104, 238},
    {"mediumspringgreen", 0, 250, 154},
    {"mediumturquoise", 72, 209, 204},
    {"mediumvioletred", 199, 21, 133},
    {"midnightblue", 25, 25, 112},
    {"mintcream", 245, 255, 250},
    {"mistyrose", 255, 228, 225},
    {"moccasin", 255, 228, 181},
    {"navajowhite", 255, 222, 173},
    {"navy", 0, 0, 128},
    {"navyblue", 0, 0, 128},
    {"oldlace", 253, 245, 230},
    {"olivedrab", 107, 142, 35},
    {"orange", 255, 165, 0},
    {"orangered", 255, 69, 0},
    {"orchid", 218, 112, 214},
    {"palegoldenrod", 238, 232, 170},
    {"palegreen", 152, 251, 152},
    {"paleturquoise", 175, 238, 238},
    {"palevioletred", 219, 112, 147},
    {"papayawhip", 255, 239, 213},
    {"peachpuff", 255, 218, 185},
    {"peru", 205, 133, 63},
    {"pink", 255, 192, 203},
    {"plum", 221, 160, 221},
    {"powderblue", 176, 224, 230},
    {"purple", 160, 32, 240},
    {"red", 255, 0, 0},
    {"rosybrown", 188, 143, 143},
    {"royalblue", 65, 105, 225},
    {"saddlebrown", 139, 69, 19},
    {"salmon", 250, 128, 114},
    {"sandybrown", 244, 164, 96},
    {"seagreen", 46, 139, 87},
    {"seashell", 255, 245, 238},
    {"sienna", 160, 82, 45},
    {"skyblue", 135, 206, 235},
    {"slateblue", 106, 90, 205},
    {"slategray", 112, 128, 144},
    {"snow", 255, 250, 250},
    {"springgreen", 0, 255, 127},
    {"steelblue", 70, 130, 180},
    {"tan", 210, 180, 140},
    {"thistle", 216, 191, 216},
    {"tomato", 255, 99, 71},
    {"turquoise", 64, 224, 208},
    {"violet", 238, 130, 238},
    {"violetred", 208, 32, 144},
    {"wheat", 245, 222, 179},
    {"white", 255, 255, 255},
    {"whitesmoke", 245, 245, 245},
    {"yellow", 255, 255, 0},
    {"yellowgreen", 154, 205, 50},
};

std::string Canonical(std::string_view spec) {
  std::string out;
  out.reserve(spec.size());
  for (char c : spec) {
    if (c == ' ' || c == '\t') {
      continue;
    }
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

std::optional<unsigned> HexComponent(std::string_view digits) {
  // X scales an n-digit component to 8 bits by taking the top byte.
  unsigned value = 0;
  for (char c : digits) {
    int h = HexValue(c);
    if (h < 0) {
      return std::nullopt;
    }
    value = value * 16 + static_cast<unsigned>(h);
  }
  switch (digits.size()) {
    case 1:
      return value * 17;  // 0xf -> 0xff
    case 2:
      return value;
    case 3:
      return value >> 4;
    case 4:
      return value >> 8;
    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<Pixel> LookupColor(std::string_view spec) {
  if (spec.empty()) {
    return std::nullopt;
  }
  if (spec[0] == '#') {
    std::string_view digits = spec.substr(1);
    if (digits.empty() || digits.size() % 3 != 0 || digits.size() > 12) {
      return std::nullopt;
    }
    std::size_t per = digits.size() / 3;
    auto r = HexComponent(digits.substr(0, per));
    auto g = HexComponent(digits.substr(per, per));
    auto b = HexComponent(digits.substr(2 * per, per));
    if (!r || !g || !b) {
      return std::nullopt;
    }
    return MakePixel(*r, *g, *b);
  }
  std::string canonical = Canonical(spec);
  for (const NamedColor& c : kColors) {
    if (canonical == c.name) {
      return MakePixel(c.r, c.g, c.b);
    }
  }
  return std::nullopt;
}

std::string FormatColor(Pixel pixel) {
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "#%02x%02x%02x", PixelRed(pixel), PixelGreen(pixel),
                PixelBlue(pixel));
  return buffer;
}

std::vector<std::string> KnownColorNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kColors));
  for (const NamedColor& c : kColors) {
    names.push_back(c.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace xsim
