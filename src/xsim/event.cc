#include "src/xsim/event.h"

namespace xsim {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kNone:
      return "None";
    case EventType::kButtonPress:
      return "ButtonPress";
    case EventType::kButtonRelease:
      return "ButtonRelease";
    case EventType::kKeyPress:
      return "KeyPress";
    case EventType::kKeyRelease:
      return "KeyRelease";
    case EventType::kMotionNotify:
      return "MotionNotify";
    case EventType::kEnterNotify:
      return "EnterNotify";
    case EventType::kLeaveNotify:
      return "LeaveNotify";
    case EventType::kExpose:
      return "Expose";
    case EventType::kConfigureNotify:
      return "ConfigureNotify";
    case EventType::kMapNotify:
      return "MapNotify";
    case EventType::kUnmapNotify:
      return "UnmapNotify";
    case EventType::kDestroyNotify:
      return "DestroyNotify";
    case EventType::kFocusIn:
      return "FocusIn";
    case EventType::kFocusOut:
      return "FocusOut";
    case EventType::kClientMessage:
      return "ClientMessage";
    case EventType::kSelectionClear:
      return "SelectionClear";
  }
  return "Unknown";
}

std::string Event::TypeName() const { return EventTypeName(type); }

}  // namespace xsim
