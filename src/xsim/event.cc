#include "src/xsim/event.h"

#include "src/obs/obs.h"

namespace xsim {

namespace {

wobs::Counter g_events_enqueued("xsim.events.enqueued");
wobs::MaxGauge g_queue_depth("xsim.event_queue.depth.max");

}  // namespace

void NoteEventQueueDepth(std::size_t depth) {
  g_events_enqueued.Increment();
  g_queue_depth.Observe(depth);
}

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kNone:
      return "None";
    case EventType::kButtonPress:
      return "ButtonPress";
    case EventType::kButtonRelease:
      return "ButtonRelease";
    case EventType::kKeyPress:
      return "KeyPress";
    case EventType::kKeyRelease:
      return "KeyRelease";
    case EventType::kMotionNotify:
      return "MotionNotify";
    case EventType::kEnterNotify:
      return "EnterNotify";
    case EventType::kLeaveNotify:
      return "LeaveNotify";
    case EventType::kExpose:
      return "Expose";
    case EventType::kConfigureNotify:
      return "ConfigureNotify";
    case EventType::kMapNotify:
      return "MapNotify";
    case EventType::kUnmapNotify:
      return "UnmapNotify";
    case EventType::kDestroyNotify:
      return "DestroyNotify";
    case EventType::kFocusIn:
      return "FocusIn";
    case EventType::kFocusOut:
      return "FocusOut";
    case EventType::kClientMessage:
      return "ClientMessage";
    case EventType::kSelectionClear:
      return "SelectionClear";
  }
  return "Unknown";
}

std::string Event::TypeName() const { return EventTypeName(type); }

}  // namespace xsim
