// Simulated fonts: a registry of fixed-metric faces addressed by XLFD-style
// patterns (wildcards included), as the paper's examples use
// ("*b&h-lucida-medium-r*14*"). Metrics are deterministic so rendering and
// layout are reproducible in tests.
#ifndef SRC_XSIM_FONT_H_
#define SRC_XSIM_FONT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace xsim {

struct Font {
  // The full XLFD the font was registered under.
  std::string name;
  // Fixed-pitch metrics (pixels).
  unsigned char_width = 6;
  unsigned ascent = 10;
  unsigned descent = 3;
  bool bold = false;
  bool italic = false;

  unsigned Height() const { return ascent + descent; }
  unsigned TextWidth(std::string_view text) const {
    return char_width * static_cast<unsigned>(text.size());
  }
};

using FontPtr = std::shared_ptr<const Font>;

class FontRegistry {
 public:
  // The default registry, pre-populated with the classic server fonts
  // ("fixed", "6x13", lucida/helvetica/courier XLFD families, sizes 8..24).
  static FontRegistry& Default();

  // Registers a font under its XLFD name.
  void Register(Font font);

  // Opens the first registered font whose XLFD matches `pattern`
  // (X-style shell glob, case-insensitive). Returns nullptr on no match.
  FontPtr Open(std::string_view pattern) const;

  // All matching names, in registration order (XListFonts analogue).
  std::vector<std::string> List(std::string_view pattern) const;

  std::size_t size() const { return fonts_.size(); }

 private:
  std::vector<std::shared_ptr<const Font>> fonts_;
};

}  // namespace xsim

#endif  // SRC_XSIM_FONT_H_
