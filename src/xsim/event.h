// Event structures for the simulated display, mirroring the XEvent subset
// the X Toolkit's translation manager consumes.
#ifndef SRC_XSIM_EVENT_H_
#define SRC_XSIM_EVENT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/xsim/geometry.h"
#include "src/xsim/keysym.h"

namespace xsim {

using WindowId = std::uint32_t;
inline constexpr WindowId kNoWindow = 0;

enum class EventType {
  kNone,
  kButtonPress,
  kButtonRelease,
  kKeyPress,
  kKeyRelease,
  kMotionNotify,
  kEnterNotify,
  kLeaveNotify,
  kExpose,
  kConfigureNotify,
  kMapNotify,
  kUnmapNotify,
  kDestroyNotify,
  kFocusIn,
  kFocusOut,
  kClientMessage,
  kSelectionClear,
};

// Modifier state bits (X's state field).
inline constexpr unsigned kShiftMask = 1u << 0;
inline constexpr unsigned kLockMask = 1u << 1;
inline constexpr unsigned kControlMask = 1u << 2;
inline constexpr unsigned kMod1Mask = 1u << 3;  // usually Meta/Alt
inline constexpr unsigned kButton1Mask = 1u << 8;
inline constexpr unsigned kButton2Mask = 1u << 9;
inline constexpr unsigned kButton3Mask = 1u << 10;

// One event. A single struct (rather than a variant) keeps the dispatch
// paths simple; fields are meaningful per type as in XEvent.
struct Event {
  EventType type = EventType::kNone;
  WindowId window = kNoWindow;
  std::uint64_t time = 0;  // server timestamp, milliseconds

  // Pointer events.
  Position x = 0;
  Position y = 0;
  Position x_root = 0;
  Position y_root = 0;
  unsigned button = 0;  // 1..5 for button events
  unsigned state = 0;   // modifier mask

  // Key events.
  KeyCode keycode = 0;
  KeySym keysym = kNoSymbol;

  // Expose events.
  Rect area;
  int count = 0;  // number of following expose events

  // ConfigureNotify.
  Rect configure;

  // ClientMessage payload (used by tests and the comm layer).
  std::string message;

  // Human-readable event-type name ("ButtonPress", ...).
  std::string TypeName() const;
};

const char* EventTypeName(EventType type);

// Observability hook: the display reports the queue length after every
// enqueue so the obs layer can keep an event count and a depth high-water
// mark (metrics `xsim.events.enqueued` / `xsim.event_queue.depth.max`).
void NoteEventQueueDepth(std::size_t depth);

}  // namespace xsim

#endif  // SRC_XSIM_EVENT_H_
