#include "src/xsim/display.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#include "src/obs/obs.h"

namespace xsim {

namespace {

// Damage-batching instruments: requested counts every damaged update,
// coalesced counts updates absorbed into already-pending damage, flushed
// counts the Expose events actually delivered.
wobs::Counter g_refresh_requested("xsim.refresh.requested");
wobs::Counter g_refresh_coalesced("xsim.refresh.coalesced");
wobs::Counter g_refresh_flushed("xsim.refresh.flushed");
wobs::Counter g_protocol_errors("xsim.protocol.errors");
wobs::Histogram g_flush_duration("xsim.flush.duration");

}  // namespace

const char* Display::ErrorCodeName(int code) {
  switch (code) {
    case kBadWindow:
      return "BadWindow";
    case kBadPixmap:
      return "BadPixmap";
    case kBadDrawable:
      return "BadDrawable";
    default:
      return "UnknownError";
  }
}

void Display::RaiseProtocolError(int code, const char* request, WindowId resource) {
  // `None` targets are no-ops rather than errors: toolkit teardown paths
  // pass kNoWindow for windows that were never created.
  if (resource == kNoWindow) {
    return;
  }
  InjectProtocolError(code, request, resource);
}

void Display::InjectProtocolError(int code, const char* request, WindowId resource) {
  ++protocol_errors_;
  g_protocol_errors.Increment();
  wobs::Log("xsim", std::string(ErrorCodeName(code)) + ": " + request + " on resource " +
                        std::to_string(resource),
            false);
  if (error_handler_) {
    error_handler_(ProtocolError{code, request, resource});
  }
}

Display::Display(std::string name, Dimension width, Dimension height)
    : name_(std::move(name)), width_(width), height_(height) {
  framebuffer_.assign(static_cast<std::size_t>(width_) * height_, kBlackPixel);
  Window root;
  root.id = kRootWindow;
  root.geometry = Rect{0, 0, width_, height_};
  root.mapped = true;
  root.background = kBlackPixel;
  windows_[kRootWindow] = root;
}

Display::Window* Display::Find(WindowId id) {
  auto it = windows_.find(id);
  return it == windows_.end() ? nullptr : &it->second;
}

const Display::Window* Display::Find(WindowId id) const {
  auto it = windows_.find(id);
  return it == windows_.end() ? nullptr : &it->second;
}

WindowId Display::CreateWindow(WindowId parent, const Rect& geometry, Dimension border_width,
                               Pixel background) {
  Window* parent_window = Find(parent);
  if (parent_window == nullptr) {
    return kNoWindow;
  }
  Window window;
  window.id = next_id_++;
  window.parent = parent;
  window.geometry = geometry;
  window.border_width = border_width;
  window.background = background;
  WindowId id = window.id;
  windows_[id] = std::move(window);
  // Reacquire: the map insert may have invalidated the pointer.
  Find(parent)->children.push_back(id);
  return id;
}

void Display::DestroyWindow(WindowId window) {
  Window* w = Find(window);
  if (w == nullptr) {
    RaiseProtocolError(kBadWindow, "DestroyWindow", window);
    return;
  }
  if (window == kRootWindow) {
    return;
  }
  // Destroy children first (copy: destruction mutates the list).
  std::vector<WindowId> children = w->children;
  for (WindowId child : children) {
    DestroyWindow(child);
  }
  Event event;
  event.type = EventType::kDestroyNotify;
  event.window = window;
  event.time = now_;
  Enqueue(event);
  if (Window* parent = Find(Find(window)->parent)) {
    auto& siblings = parent->children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), window), siblings.end());
  }
  if (grab_ == window) {
    grab_ = kNoWindow;
  }
  if (focus_ == window) {
    focus_ = kNoWindow;
  }
  if (pointer_window_ == window) {
    pointer_window_ = kRootWindow;
  }
  for (auto it = selections_.begin(); it != selections_.end();) {
    if (it->second == window) {
      it = selections_.erase(it);
    } else {
      ++it;
    }
  }
  damage_.erase(window);
  windows_.erase(window);
}

bool Display::Exists(WindowId window) const { return Find(window) != nullptr; }

void Display::MapWindow(WindowId window) {
  Window* w = Find(window);
  if (w == nullptr) {
    RaiseProtocolError(kBadWindow, "MapWindow", window);
    return;
  }
  if (w->mapped) {
    return;
  }
  w->mapped = true;
  Event map_event;
  map_event.type = EventType::kMapNotify;
  map_event.window = window;
  map_event.time = now_;
  Enqueue(map_event);
  AddDamage(window, Rect{0, 0, w->geometry.width, w->geometry.height});
}

void Display::UnmapWindow(WindowId window) {
  Window* w = Find(window);
  if (w == nullptr) {
    RaiseProtocolError(kBadWindow, "UnmapWindow", window);
    return;
  }
  if (!w->mapped) {
    return;
  }
  w->mapped = false;
  Event event;
  event.type = EventType::kUnmapNotify;
  event.window = window;
  event.time = now_;
  Enqueue(event);
}

bool Display::IsMapped(WindowId window) const {
  const Window* w = Find(window);
  return w != nullptr && w->mapped;
}

bool Display::IsViewable(WindowId window) const {
  const Window* w = Find(window);
  while (w != nullptr) {
    if (!w->mapped) {
      return false;
    }
    if (w->id == kRootWindow) {
      return true;
    }
    w = Find(w->parent);
  }
  return false;
}

void Display::MoveResizeWindow(WindowId window, const Rect& geometry) {
  Window* w = Find(window);
  if (w == nullptr) {
    RaiseProtocolError(kBadWindow, "MoveResizeWindow", window);
    return;
  }
  if (w->geometry == geometry) {
    return;  // no-change requests generate no events (prevents layout loops)
  }
  bool resized = w->geometry.width != geometry.width || w->geometry.height != geometry.height;
  w->geometry = geometry;
  Event event;
  event.type = EventType::kConfigureNotify;
  event.window = window;
  event.configure = geometry;
  event.time = now_;
  Enqueue(event);
  if (resized) {
    AddDamage(window, Rect{0, 0, geometry.width, geometry.height});
  }
}

void Display::AddDamage(WindowId window, const Rect& rect) {
  const Window* w = Find(window);
  if (w == nullptr || rect.Empty() || !IsViewable(window)) {
    return;
  }
  g_refresh_requested.Increment();
  if (!damage_batching_) {
    Event expose;
    expose.type = EventType::kExpose;
    expose.window = window;
    expose.area = rect;
    expose.time = now_;
    Enqueue(expose);
    return;
  }
  auto [it, inserted] = damage_.emplace(window, rect);
  if (!inserted) {
    it->second = it->second.Union(rect);
    g_refresh_coalesced.Increment();
  }
}

std::size_t Display::FlushDamage() {
  if (damage_.empty()) {
    return 0;
  }
  // After the empty check: only flushes with real damage produce a span, so
  // the per-cycle no-op flush doesn't drown the trace. Inside a %-request
  // this span inherits the request id — the refresh leg of the round trip.
  wobs::ScopedEvent obs_span("xsim", "damage-flush", &g_flush_duration);
  std::map<WindowId, Rect> damaged;
  damaged.swap(damage_);
  std::size_t flushed = 0;
  for (const auto& [window, rect] : damaged) {
    const Window* w = Find(window);
    if (w == nullptr || !IsViewable(window)) {
      continue;
    }
    // Damage on an ancestor subsumes this window: the toolkit repaints a
    // window's whole subtree on Expose, so a child Expose would be a
    // duplicate paint.
    bool covered = false;
    for (WindowId ancestor = w->parent; ancestor != kNoWindow;) {
      if (damaged.count(ancestor) != 0) {
        covered = true;
        break;
      }
      const Window* a = Find(ancestor);
      if (a == nullptr) {
        break;
      }
      ancestor = a->parent;
    }
    if (covered) {
      g_refresh_coalesced.Increment();
      continue;
    }
    Event expose;
    expose.type = EventType::kExpose;
    expose.window = window;
    expose.area = rect;
    expose.time = now_;
    Enqueue(expose);
    ++flushed;
    g_refresh_flushed.Increment();
  }
  return flushed;
}

void Display::SetWindowBackground(WindowId window, Pixel background) {
  if (Window* w = Find(window)) {
    w->background = background;
  } else {
    RaiseProtocolError(kBadWindow, "SetWindowBackground", window);
  }
}

void Display::SetWindowBorder(WindowId window, Dimension width, Pixel color) {
  if (Window* w = Find(window)) {
    w->border_width = width;
    w->border_color = color;
  } else {
    RaiseProtocolError(kBadWindow, "SetWindowBorder", window);
  }
}

void Display::RaiseWindow(WindowId window) {
  Window* w = Find(window);
  if (w == nullptr) {
    RaiseProtocolError(kBadWindow, "RaiseWindow", window);
    return;
  }
  Window* parent = Find(w->parent);
  if (parent == nullptr) {
    return;
  }
  auto& siblings = parent->children;
  auto it = std::find(siblings.begin(), siblings.end(), window);
  if (it != siblings.end()) {
    siblings.erase(it);
    siblings.push_back(window);
  }
}

Rect Display::WindowGeometry(WindowId window) const {
  const Window* w = Find(window);
  return w == nullptr ? Rect{} : w->geometry;
}

Pixel Display::WindowBackground(WindowId window) const {
  const Window* w = Find(window);
  return w == nullptr ? kWhitePixel : w->background;
}

WindowId Display::Parent(WindowId window) const {
  const Window* w = Find(window);
  return w == nullptr ? kNoWindow : w->parent;
}

std::vector<WindowId> Display::Children(WindowId window) const {
  const Window* w = Find(window);
  return w == nullptr ? std::vector<WindowId>{} : w->children;
}

Point Display::RootPosition(WindowId window) const {
  Point origin{0, 0};
  const Window* w = Find(window);
  while (w != nullptr && w->id != kRootWindow) {
    origin.x += w->geometry.x;
    origin.y += w->geometry.y;
    w = Find(w->parent);
  }
  return origin;
}

WindowId Display::HitTest(const Window& window, Position x, Position y) const {
  // x,y are relative to `window`. Children are stacked bottom-to-top; search
  // topmost first.
  for (auto it = window.children.rbegin(); it != window.children.rend(); ++it) {
    const Window* child = Find(*it);
    if (child == nullptr || !child->mapped) {
      continue;
    }
    if (child->geometry.Contains(x, y)) {
      return HitTest(*child, x - child->geometry.x, y - child->geometry.y);
    }
  }
  return window.id;
}

WindowId Display::WindowAtPoint(Position x, Position y) const {
  const Window* root = Find(kRootWindow);
  return HitTest(*root, x, y);
}

void Display::RecordOp(DrawOp op) {
  draw_ops_.push_back(std::move(op));
  if (draw_ops_.size() > draw_op_limit_) {
    draw_ops_.erase(draw_ops_.begin(),
                    draw_ops_.begin() + static_cast<long>(draw_ops_.size() / 2));
  }
}

Event Display::NextEvent() {
  if (queue_.empty()) {
    return Event{};
  }
  Event event = queue_.front();
  queue_.pop_front();
  return event;
}

void Display::Enqueue(const Event& event) {
  queue_.push_back(event);
  NoteEventQueueDepth(queue_.size());
}

void Display::PutBackEvent(const Event& event) { queue_.push_front(event); }

void Display::EmitCrossing(WindowId old_window, WindowId new_window, Position x, Position y,
                           unsigned state) {
  if (old_window == new_window) {
    return;
  }
  if (old_window != kNoWindow && Exists(old_window)) {
    Event leave;
    leave.type = EventType::kLeaveNotify;
    leave.window = old_window;
    Point origin = RootPosition(old_window);
    leave.x = x - origin.x;
    leave.y = y - origin.y;
    leave.x_root = x;
    leave.y_root = y;
    leave.state = state;
    leave.time = now_;
    Enqueue(leave);
  }
  if (new_window != kNoWindow && Exists(new_window)) {
    Event enter;
    enter.type = EventType::kEnterNotify;
    enter.window = new_window;
    Point origin = RootPosition(new_window);
    enter.x = x - origin.x;
    enter.y = y - origin.y;
    enter.x_root = x;
    enter.y_root = y;
    enter.state = state;
    enter.time = now_;
    Enqueue(enter);
  }
}

void Display::InjectMotion(Position x, Position y, unsigned state) {
  if (inject_observer_) {
    inject_observer_("motion " + std::to_string(x) + " " + std::to_string(y) +
                     " " + std::to_string(state));
  }
  now_ += 1;
  pointer_ = Point{x, y};
  WindowId target = grab_ != kNoWindow && !grab_owner_events_ ? grab_ : WindowAtPoint(x, y);
  EmitCrossing(pointer_window_, target, x, y, state);
  pointer_window_ = target;
  Event motion;
  motion.type = EventType::kMotionNotify;
  motion.window = target;
  Point origin = RootPosition(target);
  motion.x = x - origin.x;
  motion.y = y - origin.y;
  motion.x_root = x;
  motion.y_root = y;
  motion.state = state;
  motion.time = now_;
  Enqueue(motion);
}

void Display::InjectButtonPress(Position x, Position y, unsigned button, unsigned state) {
  if (inject_observer_) {
    inject_observer_("buttonpress " + std::to_string(x) + " " + std::to_string(y) +
                     " " + std::to_string(button) + " " + std::to_string(state));
  }
  now_ += 1;
  pointer_ = Point{x, y};
  WindowId target = grab_ != kNoWindow && !grab_owner_events_ ? grab_ : WindowAtPoint(x, y);
  if (pointer_window_ != target) {
    EmitCrossing(pointer_window_, target, x, y, state);
    pointer_window_ = target;
  }
  Event event;
  event.type = EventType::kButtonPress;
  event.window = target;
  Point origin = RootPosition(target);
  event.x = x - origin.x;
  event.y = y - origin.y;
  event.x_root = x;
  event.y_root = y;
  event.button = button;
  event.state = state;
  event.time = now_;
  Enqueue(event);
}

void Display::InjectButtonRelease(Position x, Position y, unsigned button, unsigned state) {
  if (inject_observer_) {
    inject_observer_("buttonrelease " + std::to_string(x) + " " + std::to_string(y) +
                     " " + std::to_string(button) + " " + std::to_string(state));
  }
  now_ += 1;
  pointer_ = Point{x, y};
  WindowId target = grab_ != kNoWindow && !grab_owner_events_ ? grab_ : WindowAtPoint(x, y);
  Event event;
  event.type = EventType::kButtonRelease;
  event.window = target;
  Point origin = RootPosition(target);
  event.x = x - origin.x;
  event.y = y - origin.y;
  event.x_root = x;
  event.y_root = y;
  event.button = button;
  event.state = state | (kButton1Mask << (button - 1));
  event.time = now_;
  Enqueue(event);
}

void Display::InjectKey(KeySym keysym, bool press, unsigned state) {
  if (inject_observer_) {
    inject_observer_(std::string(press ? "keypress " : "keyrelease ") +
                     std::to_string(keysym) + " " + std::to_string(state));
  }
  now_ += 1;
  WindowId target = focus_ != kNoWindow ? focus_ : pointer_window_;
  if (target == kNoWindow) {
    target = kRootWindow;
  }
  Event event;
  event.type = press ? EventType::kKeyPress : EventType::kKeyRelease;
  event.window = target;
  event.keysym = keysym;
  event.keycode = KeysymToKeycode(keysym);
  event.state = state;
  Point origin = RootPosition(target);
  event.x = pointer_.x - origin.x;
  event.y = pointer_.y - origin.y;
  event.x_root = pointer_.x;
  event.y_root = pointer_.y;
  event.time = now_;
  Enqueue(event);
}

void Display::InjectKeyPress(KeySym keysym, unsigned state) { InjectKey(keysym, true, state); }

void Display::InjectKeyRelease(KeySym keysym, unsigned state) {
  InjectKey(keysym, false, state);
}

void Display::InjectText(const std::string& text) {
  for (char c : text) {
    bool shifted = std::isupper(static_cast<unsigned char>(c)) != 0;
    if (!shifted && std::strchr("!@#$%^&*()_+{}|:\"<>?~", c) != nullptr) {
      shifted = true;
    }
    KeySym keysym = c == '\n' ? kKeyReturn : AsciiToKeysym(c);
    unsigned state = shifted ? kShiftMask : 0;
    if (shifted) {
      InjectKeyPress(kKeyShiftL, 0);
    }
    InjectKeyPress(keysym, state);
    InjectKeyRelease(keysym, state);
    if (shifted) {
      InjectKeyRelease(kKeyShiftL, kShiftMask);
    }
  }
}

void Display::SetSelectionOwner(const std::string& selection, WindowId owner) {
  auto it = selections_.find(selection);
  if (it != selections_.end() && it->second != owner && Exists(it->second)) {
    Event clear;
    clear.type = EventType::kSelectionClear;
    clear.window = it->second;
    clear.message = selection;
    clear.time = now_;
    Enqueue(clear);
  }
  if (owner == kNoWindow) {
    selections_.erase(selection);
  } else {
    selections_[selection] = owner;
  }
}

WindowId Display::SelectionOwner(const std::string& selection) const {
  auto it = selections_.find(selection);
  return it == selections_.end() ? kNoWindow : it->second;
}

void Display::GrabPointer(WindowId window, bool owner_events) {
  grab_ = window;
  grab_owner_events_ = owner_events;
}

void Display::UngrabPointer() {
  grab_ = kNoWindow;
  grab_owner_events_ = false;
}

// --- Drawing ---------------------------------------------------------------------

Rect Display::ClipToWindow(const Window& window, const Rect& rect) const {
  Point origin = RootPosition(window.id);
  Rect root_rect{origin.x + rect.x, origin.y + rect.y, rect.width, rect.height};
  Rect window_rect{origin.x, origin.y, window.geometry.width, window.geometry.height};
  Rect screen{0, 0, width_, height_};
  return root_rect.Intersect(window_rect).Intersect(screen);
}

void Display::PaintRect(const Rect& root_rect, Pixel pixel) {
  for (Position y = root_rect.y; y < root_rect.y + static_cast<Position>(root_rect.height);
       ++y) {
    for (Position x = root_rect.x; x < root_rect.x + static_cast<Position>(root_rect.width);
         ++x) {
      framebuffer_[static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)] = pixel;
    }
  }
}

void Display::ClearWindow(WindowId window) {
  Window* w = Find(window);
  if (w == nullptr) {
    RaiseProtocolError(kBadWindow, "ClearWindow", window);
    return;
  }
  DrawOp op;
  op.kind = DrawOp::Kind::kClear;
  op.window = window;
  op.rect = Rect{0, 0, w->geometry.width, w->geometry.height};
  op.pixel = w->background;
  RecordOp(op);
  PaintRect(ClipToWindow(*w, op.rect), w->background);
}

void Display::FillRect(WindowId window, const Rect& rect, Pixel pixel) {
  Window* w = Find(window);
  if (w == nullptr) {
    RaiseProtocolError(kBadDrawable, "FillRect", window);
    return;
  }
  DrawOp op;
  op.kind = DrawOp::Kind::kFillRect;
  op.window = window;
  op.rect = rect;
  op.pixel = pixel;
  RecordOp(op);
  PaintRect(ClipToWindow(*w, rect), pixel);
}

void Display::DrawRectOutline(WindowId window, const Rect& rect, Pixel pixel) {
  Window* w = Find(window);
  if (w == nullptr) {
    RaiseProtocolError(kBadDrawable, "DrawRectOutline", window);
    return;
  }
  DrawOp op;
  op.kind = DrawOp::Kind::kRectOutline;
  op.window = window;
  op.rect = rect;
  op.pixel = pixel;
  RecordOp(op);
  if (rect.width == 0 || rect.height == 0) {
    return;
  }
  PaintRect(ClipToWindow(*w, Rect{rect.x, rect.y, rect.width, 1}), pixel);
  PaintRect(ClipToWindow(
                *w, Rect{rect.x, rect.y + static_cast<Position>(rect.height) - 1, rect.width, 1}),
            pixel);
  PaintRect(ClipToWindow(*w, Rect{rect.x, rect.y, 1, rect.height}), pixel);
  PaintRect(ClipToWindow(
                *w, Rect{rect.x + static_cast<Position>(rect.width) - 1, rect.y, 1, rect.height}),
            pixel);
}

void Display::DrawLine(WindowId window, Point from, Point to, Pixel pixel) {
  Window* w = Find(window);
  if (w == nullptr) {
    RaiseProtocolError(kBadDrawable, "DrawLine", window);
    return;
  }
  DrawOp op;
  op.kind = DrawOp::Kind::kLine;
  op.window = window;
  op.rect = Rect{from.x, from.y, 1, 1};
  op.to = to;
  op.pixel = pixel;
  RecordOp(op);
  // Bresenham, clipped per pixel.
  Point origin = RootPosition(window);
  int x0 = from.x;
  int y0 = from.y;
  int x1 = to.x;
  int y1 = to.y;
  int dx = std::abs(x1 - x0);
  int dy = -std::abs(y1 - y0);
  int sx = x0 < x1 ? 1 : -1;
  int sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  for (;;) {
    Position rx = origin.x + x0;
    Position ry = origin.y + y0;
    if (rx >= 0 && ry >= 0 && rx < static_cast<Position>(width_) &&
        ry < static_cast<Position>(height_) &&
        Rect{0, 0, w->geometry.width, w->geometry.height}.Contains(x0, y0)) {
      framebuffer_[static_cast<std::size_t>(ry) * width_ + static_cast<std::size_t>(rx)] =
          pixel;
    }
    if (x0 == x1 && y0 == y1) {
      break;
    }
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

void Display::DrawText(WindowId window, Position x, Position y, const std::string& text,
                       const FontPtr& font, Pixel pixel) {
  Window* w = Find(window);
  if (w == nullptr) {
    RaiseProtocolError(kBadDrawable, "DrawText", window);
    return;
  }
  if (font == nullptr) {
    return;
  }
  DrawOp op;
  op.kind = DrawOp::Kind::kText;
  op.window = window;
  op.rect = Rect{x, y, font->TextWidth(text), font->Height()};
  op.pixel = pixel;
  op.text = text;
  op.font = font->name;
  RecordOp(op);
  // Rasterize each glyph as a filled cell scaled to 60% coverage — enough
  // for pixel-level assertions (text changes the framebuffer deterministically).
  Position baseline_top = y - static_cast<Position>(font->ascent);
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == ' ') {
      continue;
    }
    Rect glyph{x + static_cast<Position>(i * font->char_width) + 1, baseline_top + 1,
               font->char_width > 2 ? font->char_width - 2 : 1,
               font->Height() > 2 ? font->Height() - 2 : 1};
    PaintRect(ClipToWindow(*w, glyph), pixel);
  }
}

void Display::CopyPixmap(WindowId window, const Pixmap& pixmap, Position x, Position y) {
  Window* w = Find(window);
  if (w == nullptr) {
    RaiseProtocolError(kBadDrawable, "CopyPixmap", window);
    return;
  }
  DrawOp op;
  op.kind = DrawOp::Kind::kPixmap;
  op.window = window;
  op.rect = Rect{x, y, pixmap.width, pixmap.height};
  op.text = pixmap.name;
  RecordOp(op);
  Point origin = RootPosition(window);
  for (unsigned py = 0; py < pixmap.height; ++py) {
    for (unsigned px = 0; px < pixmap.width; ++px) {
      if (!pixmap.Opaque(px, py)) {
        continue;
      }
      Position wx = x + static_cast<Position>(px);
      Position wy = y + static_cast<Position>(py);
      if (!Rect{0, 0, w->geometry.width, w->geometry.height}.Contains(wx, wy)) {
        continue;
      }
      Position rx = origin.x + wx;
      Position ry = origin.y + wy;
      if (rx < 0 || ry < 0 || rx >= static_cast<Position>(width_) ||
          ry >= static_cast<Position>(height_)) {
        continue;
      }
      framebuffer_[static_cast<std::size_t>(ry) * width_ + static_cast<std::size_t>(rx)] =
          pixmap.At(px, py);
    }
  }
}

std::vector<std::string> Display::VisibleText() const {
  std::vector<std::string> texts;
  for (const DrawOp& op : draw_ops_) {
    if (op.kind == DrawOp::Kind::kText) {
      texts.push_back(op.text);
    }
  }
  return texts;
}

bool Display::WindowShowsText(WindowId window, const std::string& text) const {
  for (const DrawOp& op : draw_ops_) {
    if (op.kind == DrawOp::Kind::kText && op.window == window && op.text == text) {
      return true;
    }
  }
  return false;
}

Pixel Display::PixelAt(Position x, Position y) const {
  if (x < 0 || y < 0 || x >= static_cast<Position>(width_) ||
      y >= static_cast<Position>(height_)) {
    return kBlackPixel;
  }
  return framebuffer_[static_cast<std::size_t>(y) * width_ + static_cast<std::size_t>(x)];
}

}  // namespace xsim
