// Basic geometry types shared across the simulated display and the toolkit.
#ifndef SRC_XSIM_GEOMETRY_H_
#define SRC_XSIM_GEOMETRY_H_

#include <algorithm>
#include <cstdint>

namespace xsim {

using Position = int;
using Dimension = unsigned int;

struct Point {
  Position x = 0;
  Position y = 0;

  friend bool operator==(const Point&, const Point&) = default;
};

struct Rect {
  Position x = 0;
  Position y = 0;
  Dimension width = 0;
  Dimension height = 0;

  friend bool operator==(const Rect&, const Rect&) = default;

  bool Contains(Position px, Position py) const {
    return px >= x && py >= y && px < x + static_cast<Position>(width) &&
           py < y + static_cast<Position>(height);
  }

  bool Intersects(const Rect& other) const {
    return x < other.x + static_cast<Position>(other.width) &&
           other.x < x + static_cast<Position>(width) &&
           y < other.y + static_cast<Position>(other.height) &&
           other.y < y + static_cast<Position>(height);
  }

  Rect Intersect(const Rect& other) const {
    Position x0 = std::max(x, other.x);
    Position y0 = std::max(y, other.y);
    Position x1 = std::min(x + static_cast<Position>(width),
                           other.x + static_cast<Position>(other.width));
    Position y1 = std::min(y + static_cast<Position>(height),
                           other.y + static_cast<Position>(other.height));
    if (x1 <= x0 || y1 <= y0) {
      return Rect{};
    }
    return Rect{x0, y0, static_cast<Dimension>(x1 - x0), static_cast<Dimension>(y1 - y0)};
  }

  // Bounding box of both rects; an empty rect is the identity.
  Rect Union(const Rect& other) const {
    if (Empty()) {
      return other;
    }
    if (other.Empty()) {
      return *this;
    }
    Position x0 = std::min(x, other.x);
    Position y0 = std::min(y, other.y);
    Position x1 = std::max(x + static_cast<Position>(width),
                           other.x + static_cast<Position>(other.width));
    Position y1 = std::max(y + static_cast<Position>(height),
                           other.y + static_cast<Position>(other.height));
    return Rect{x0, y0, static_cast<Dimension>(x1 - x0), static_cast<Dimension>(y1 - y0)};
  }

  bool Empty() const { return width == 0 || height == 0; }
};

}  // namespace xsim

#endif  // SRC_XSIM_GEOMETRY_H_
