// Keysym table and keyboard mapping for the simulated display. Keysym values
// follow X11: printable Latin-1 characters are their own keysym value, and
// function / modifier keys use the 0xffXX range.
#ifndef SRC_XSIM_KEYSYM_H_
#define SRC_XSIM_KEYSYM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace xsim {

using KeySym = std::uint32_t;
using KeyCode = std::uint8_t;

inline constexpr KeySym kNoSymbol = 0;
inline constexpr KeySym kKeyReturn = 0xff0d;
inline constexpr KeySym kKeyTab = 0xff09;
inline constexpr KeySym kKeyBackSpace = 0xff08;
inline constexpr KeySym kKeyEscape = 0xff1b;
inline constexpr KeySym kKeyDelete = 0xffff;
inline constexpr KeySym kKeyShiftL = 0xffe1;
inline constexpr KeySym kKeyShiftR = 0xffe2;
inline constexpr KeySym kKeyControlL = 0xffe3;
inline constexpr KeySym kKeyControlR = 0xffe4;
inline constexpr KeySym kKeyMetaL = 0xffe7;
inline constexpr KeySym kKeyLeft = 0xff51;
inline constexpr KeySym kKeyUp = 0xff52;
inline constexpr KeySym kKeyRight = 0xff53;
inline constexpr KeySym kKeyDown = 0xff54;
inline constexpr KeySym kKeyHome = 0xff50;
inline constexpr KeySym kKeyEnd = 0xff57;

// XKeysymToString analogue: "w", "exclam", "Return", "Shift_L", ...
std::string KeysymToString(KeySym keysym);

// XStringToKeysym analogue.
std::optional<KeySym> StringToKeysym(std::string_view name);

// The printable ASCII character a keysym produces, if any (drives the %a
// percent code of Wafe's exec action).
std::optional<char> KeysymToAscii(KeySym keysym);

// Keysym for an ASCII character (shifted characters map to themselves:
// '!' -> XK_exclam == '!').
KeySym AsciiToKeysym(char c);

// Deterministic keyboard map of the simulated server: keycode <-> keysym.
// The map is modeled on the DECstation LK201 layout the paper's key-echo
// example was produced on, so that keycode 198 is "w", 174 "Shift_L" and
// 197 "exclam".
KeyCode KeysymToKeycode(KeySym keysym);
KeySym KeycodeToKeysym(KeyCode keycode, bool shifted);

}  // namespace xsim

#endif  // SRC_XSIM_KEYSYM_H_
