// Internal access surface shared by the built-in command implementations and
// the expr evaluator. Not part of the public wtcl API.
#ifndef SRC_TCL_INTERP_INTERNAL_H_
#define SRC_TCL_INTERP_INTERNAL_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/tcl/interp.h"

namespace wtcl {

struct InterpInternal {
  // Defines (or redefines) a Tcl proc and registers its invocation command.
  static Result DefineProc(Interp& interp, const std::string& name,
                           const std::string& formals_source, const std::string& body);

  // Links `local_name` in the current frame to `other_name` in the frame
  // `level` spec (absolute "#n" or relative count) designates.
  static Result Upvar(Interp& interp, const std::string& level_spec,
                      const std::string& other_name, const std::string& local_name);

  // Evaluates a script in the frame the `level` spec designates.
  static Result Uplevel(Interp& interp, const std::string& level_spec, std::string_view script);

  // Links `name` in the current frame to the global variable of that name.
  static Result Global(Interp& interp, const std::string& name);

  // Resolves a level spec relative to the current frame. Returns false and
  // sets *error on a malformed spec.
  static bool ResolveLevel(Interp& interp, const std::string& spec, bool* was_explicit,
                           std::size_t* frame_index, std::string* error);

  // `error msg customInfo` seeds errorInfo explicitly; marking the trace
  // active keeps InvokeCommand from overwriting the seed with the bare
  // message when it records the first "while executing" level.
  static void SeedErrorTrace(Interp& interp) { interp.error_trace_active_ = true; }

  // Bracket / variable parsing hooks for the expr evaluator.
  static Result ParseBracket(Interp& interp, std::string_view s, std::size_t* pos,
                             std::string* out);
  static Result ParseVariable(Interp& interp, std::string_view s, std::size_t* pos,
                              std::string* out);
};

}  // namespace wtcl

#endif  // SRC_TCL_INTERP_INTERNAL_H_
