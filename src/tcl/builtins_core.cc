// Core built-in commands: variables, control flow, procedures, scoping,
// error handling, and introspection.
#include <time.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/tcl/interp.h"
#include "src/tcl/interp_internal.h"

namespace wtcl {

namespace {

Result ArityError(const std::string& name, const std::string& usage) {
  return Result::Error("wrong # args: should be \"" + name + " " + usage + "\"");
}

Result CmdSet(Interp& interp, const ValueVec& argv) {
  if (argv.size() == 2) {
    std::string value;
    if (!interp.GetVar(argv[1].String(), &value)) {
      return Result::Error("can't read \"" + argv[1].String() + "\": no such variable");
    }
    return Result::Ok(value);
  }
  if (argv.size() == 3) {
    // Typed store: the variable shares argv[2]'s rep, so a value that was
    // already classified or list-parsed keeps those caches.
    return interp.SetVarValue(argv[1].String(), argv[2]);
  }
  return ArityError("set", "varName ?newValue?");
}

Result CmdUnset(Interp& interp, const ValueVec& argv) {
  if (argv.size() < 2) {
    return ArityError("unset", "varName ?varName ...?");
  }
  for (std::size_t i = 1; i < argv.size(); ++i) {
    if (!interp.UnsetVar(argv[i].String())) {
      return Result::Error("can't unset \"" + argv[i].String() + "\": no such variable");
    }
  }
  return Result::Ok();
}

Result CheckedIncr(long value, long increment, long* sum) {
  if (__builtin_add_overflow(value, increment, sum)) {
    return Result::Error("integer overflow in incr: " + std::to_string(value) +
                         (increment < 0 ? " " : " + ") + std::to_string(increment));
  }
  return Result::Ok();
}

Result CmdIncr(Interp& interp, const ValueVec& argv) {
  if (argv.size() != 2 && argv.size() != 3) {
    return ArityError("incr", "varName ?increment?");
  }
  long increment = 1;
  if (argv.size() == 3 && !argv[2].GetInt(&increment)) {
    return Result::Error(IntegerParseError(argv[2].String(), argv[2].Classify()));
  }
  const std::string& name = argv[1].String();
  if (Value* slot = interp.GetVarValuePtr(name)) {
    // Scalar fast path: the classification is cached on the slot, so a loop
    // counter parses once and then increments as a long until something
    // reads it as a string.
    long value = 0;
    if (!slot->GetInt(&value)) {
      return Result::Error(IntegerParseError(slot->String(), slot->Classify()));
    }
    long sum = 0;
    Result overflow = CheckedIncr(value, increment, &sum);
    if (!overflow.ok()) {
      return overflow;
    }
    slot->SetInt(sum);
    return Result::Ok(std::to_string(sum));
  }
  // Array elements and element-targeted links go through the full resolver.
  std::string current;
  if (!interp.GetVar(name, &current)) {
    // Tcl treats an unset target as 0: incr creates it.
    Result created = interp.SetVarValue(name, Value::FromInt(increment));
    if (!created.ok()) return created;
    return Result::Ok(std::to_string(increment));
  }
  long value = 0;
  std::string error;
  if (!ParseInt(current, &value, &error)) {
    return Result::Error(std::move(error));
  }
  long sum = 0;
  Result overflow = CheckedIncr(value, increment, &sum);
  if (!overflow.ok()) {
    return overflow;
  }
  return interp.SetVarValue(name, Value::FromInt(sum));
}

Result CmdIf(Interp& interp, const ValueVec& argv) {
  // if expr ?then? body ?elseif expr ?then? body ...? ?else? ?body?
  std::size_t i = 1;
  while (i < argv.size()) {
    if (i + 1 >= argv.size()) {
      return Result::Error("wrong # args: no expression after \"" + argv[i - 1].String() +
                           "\" argument");
    }
    bool truth = false;
    Result r = interp.ExprBoolean(argv[i].String(), &truth);
    if (r.code == Status::kError) {
      return r;
    }
    ++i;
    if (i < argv.size() && argv[i].String() == "then") {
      ++i;
    }
    if (i >= argv.size()) {
      return Result::Error("wrong # args: no script following expression");
    }
    if (truth) {
      Result body = interp.Eval(argv[i].String());
      if (body.code == Status::kError) body.skip_trace = true;
      return body;
    }
    ++i;
    if (i >= argv.size()) {
      return Result::Ok();
    }
    if (argv[i].String() == "elseif") {
      ++i;
      continue;
    }
    if (argv[i].String() == "else") {
      ++i;
    }
    if (i >= argv.size()) {
      return Result::Error("wrong # args: no script following \"else\"");
    }
    Result body = interp.Eval(argv[i].String());
    if (body.code == Status::kError) body.skip_trace = true;
    return body;
  }
  return Result::Ok();
}

Result CmdWhile(Interp& interp, const ValueVec& argv) {
  if (argv.size() != 3) {
    return ArityError("while", "test command");
  }
  Result last = Result::Ok();
  // Compile the body once up front: iterations skip even the cache lookup.
  ScriptHandle compiled_body = interp.Precompile(argv[2].String());
  ExprHandle compiled_test = interp.PrecompileExpr(argv[1].String());
  for (;;) {
    bool truth = false;
    Result r = interp.ExprBooleanCompiled(compiled_test, &truth);
    if (r.code == Status::kError) {
      return r;
    }
    if (!truth) {
      break;
    }
    Result body = interp.EvalCompiled(compiled_body);
    if (body.code == Status::kBreak) {
      break;
    }
    if (body.code == Status::kContinue || body.code == Status::kOk) {
      continue;
    }
    if (body.code == Status::kError) body.skip_trace = true;
    return body;  // error or return propagate
  }
  last.value.clear();
  return last;
}

Result CmdFor(Interp& interp, const ValueVec& argv) {
  if (argv.size() != 5) {
    return ArityError("for", "start test next command");
  }
  Result r = interp.Eval(argv[1].String());
  if (r.code != Status::kOk) {
    if (r.code == Status::kError) r.skip_trace = true;
    return r;
  }
  ScriptHandle compiled_body = interp.Precompile(argv[4].String());
  ScriptHandle compiled_next = interp.Precompile(argv[3].String());
  ExprHandle compiled_test = interp.PrecompileExpr(argv[2].String());
  for (;;) {
    bool truth = false;
    r = interp.ExprBooleanCompiled(compiled_test, &truth);
    if (r.code == Status::kError) {
      return r;
    }
    if (!truth) {
      break;
    }
    Result body = interp.EvalCompiled(compiled_body);
    if (body.code == Status::kBreak) {
      break;
    }
    if (body.code != Status::kContinue && body.code != Status::kOk) {
      if (body.code == Status::kError) body.skip_trace = true;
      return body;
    }
    r = interp.EvalCompiled(compiled_next);
    if (r.code != Status::kOk) {
      if (r.code == Status::kError) r.skip_trace = true;
      return r;
    }
  }
  return Result::Ok();
}

Result CmdForeach(Interp& interp, const ValueVec& argv) {
  if (argv.size() != 4) {
    return ArityError("foreach", "varName list command");
  }
  // Typed iteration: parsing the list caches its elements on argv[2]'s rep
  // (and, through the `$list` argv fast path, on the variable itself), and
  // every element is bound by rep-share rather than string copy. The
  // iteration stays safe if the body rewrites the source variable: that
  // replaces the variable's Value, while argv keeps the original rep alive.
  const std::vector<Value>* items = argv[2].GetList();
  if (items == nullptr) {
    return Result::Error("unmatched open brace in list");
  }
  ScriptHandle compiled_body = interp.Precompile(argv[3].String());
  const std::string& name = argv[1].String();
  for (const Value& item : *items) {
    Result r = interp.SetVarValue(name, item);
    if (r.code == Status::kError) {
      return r;
    }
    Result body = interp.EvalCompiled(compiled_body);
    if (body.code == Status::kBreak) {
      break;
    }
    if (body.code != Status::kContinue && body.code != Status::kOk) {
      return body;
    }
  }
  return Result::Ok();
}

Result CmdSwitch(Interp& interp, const ValueVec& argv) {
  // switch ?-exact|-glob? string {pattern body ?pattern body ...?}
  // or the flat form: switch string pattern body ?pattern body ...?
  std::size_t i = 1;
  bool glob = false;
  while (i < argv.size() && !argv[i].String().empty() && argv[i].String()[0] == '-') {
    const std::string& option = argv[i].String();
    if (option == "-exact") {
      glob = false;
    } else if (option == "-glob") {
      glob = true;
    } else if (option == "--") {
      ++i;
      break;
    } else {
      return Result::Error("bad option \"" + option + "\": should be -exact, -glob, or --");
    }
    ++i;
  }
  if (i >= argv.size()) {
    return ArityError("switch", "?switches? string pattern body ... ?default body?");
  }
  const std::string& subject = argv[i++].String();
  std::vector<std::string> clauses;
  if (argv.size() - i == 1) {
    if (!SplitList(argv[i].String(), &clauses)) {
      return Result::Error("unmatched open brace in switch body");
    }
  } else {
    clauses.reserve(argv.size() - i);
    for (std::size_t j = i; j < argv.size(); ++j) {
      clauses.push_back(argv[j].String());
    }
  }
  if (clauses.empty() || clauses.size() % 2 != 0) {
    return Result::Error("extra switch pattern with no body");
  }
  for (std::size_t c = 0; c < clauses.size(); c += 2) {
    const std::string& pattern = clauses[c];
    bool matched = false;
    if (pattern == "default" && c + 2 == clauses.size()) {
      matched = true;
    } else if (glob) {
      matched = GlobMatch(pattern, subject);
    } else {
      matched = pattern == subject;
    }
    if (matched) {
      // "-" bodies fall through to the next clause.
      std::size_t body = c + 1;
      while (body < clauses.size() && clauses[body] == "-") {
        body += 2;
      }
      if (body >= clauses.size()) {
        return Result::Error("no body specified for pattern \"" + pattern + "\"");
      }
      return interp.Eval(clauses[body]);
    }
  }
  return Result::Ok();
}

Result CmdCase(Interp& interp, const ValueVec& argv) {
  // The classic Tcl 6 form: case string ?in? patList body ?patList body ...?
  // Each patList is a list of glob patterns; "default" matches anything.
  std::size_t i = 1;
  if (i >= argv.size()) {
    return ArityError("case", "string ?in? patList body ?patList body ...?");
  }
  const std::string& subject = argv[i++].String();
  if (i < argv.size() && argv[i].String() == "in") {
    ++i;
  }
  std::vector<std::string> clauses;
  if (argv.size() - i == 1) {
    if (!SplitList(argv[i].String(), &clauses)) {
      return Result::Error("unmatched open brace in case body");
    }
  } else {
    clauses.reserve(argv.size() - i);
    for (std::size_t j = i; j < argv.size(); ++j) {
      clauses.push_back(argv[j].String());
    }
  }
  if (clauses.empty() || clauses.size() % 2 != 0) {
    return Result::Error("extra case pattern with no body");
  }
  for (std::size_t c = 0; c < clauses.size(); c += 2) {
    std::vector<std::string> patterns;
    if (!SplitList(clauses[c], &patterns)) {
      return Result::Error("unmatched open brace in case patterns");
    }
    for (const std::string& pattern : patterns) {
      if (pattern == "default" || GlobMatch(pattern, subject)) {
        return interp.Eval(clauses[c + 1]);
      }
    }
  }
  return Result::Ok();
}

Result CmdProcDef(Interp& interp, const ValueVec& argv) {
  if (argv.size() != 4) {
    return ArityError("proc", "name args body");
  }
  return InterpInternal::DefineProc(interp, argv[1].String(), argv[2].String(),
                                    argv[3].String());
}

Result CmdReturn(Interp& interp, const ValueVec& argv) {
  (void)interp;
  if (argv.size() > 2) {
    return ArityError("return", "?value?");
  }
  Result r;
  r.code = Status::kReturn;
  if (argv.size() == 2) {
    r.value = argv[1].String();
  }
  return r;
}

Result CmdBreak(Interp& interp, const ValueVec& argv) {
  (void)interp;
  (void)argv;
  Result r;
  r.code = Status::kBreak;
  return r;
}

Result CmdContinue(Interp& interp, const ValueVec& argv) {
  (void)interp;
  (void)argv;
  Result r;
  r.code = Status::kContinue;
  return r;
}

Result CmdError(Interp& interp, const ValueVec& argv) {
  if (argv.size() < 2 || argv.size() > 4) {
    return ArityError("error", "message ?errorInfo? ?errorCode?");
  }
  if (argv.size() >= 3 && !argv[2].String().empty()) {
    interp.SetGlobalVar("errorInfo", argv[2].String());
    InterpInternal::SeedErrorTrace(interp);
  }
  if (argv.size() == 4) {
    interp.SetGlobalVar("errorCode", argv[3].String());
  }
  return Result::Error(argv[1].String());
}

Result CmdCatch(Interp& interp, const ValueVec& argv) {
  if (argv.size() != 2 && argv.size() != 3) {
    return ArityError("catch", "command ?varName?");
  }
  Result r = interp.Eval(argv[1].String());
  if (argv.size() == 3) {
    interp.SetVar(argv[2].String(), r.value);
  }
  return Result::Ok(std::to_string(static_cast<int>(r.code)));
}

Result CmdEval(Interp& interp, const ValueVec& argv) {
  if (argv.size() < 2) {
    return ArityError("eval", "arg ?arg ...?");
  }
  std::string script;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    if (i != 1) {
      script.push_back(' ');
    }
    script.append(argv[i].String());
  }
  return interp.Eval(script);
}

Result CmdExpr(Interp& interp, const ValueVec& argv) {
  if (argv.size() < 2) {
    return ArityError("expr", "arg ?arg ...?");
  }
  std::string expression;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    if (i != 1) {
      expression.push_back(' ');
    }
    expression.append(argv[i].String());
  }
  return interp.EvalExpr(expression);
}

Result CmdGlobal(Interp& interp, const ValueVec& argv) {
  if (argv.size() < 2) {
    return ArityError("global", "varName ?varName ...?");
  }
  for (std::size_t i = 1; i < argv.size(); ++i) {
    Result r = InterpInternal::Global(interp, argv[i].String());
    if (r.code == Status::kError) {
      return r;
    }
  }
  return Result::Ok();
}

Result CmdUpvar(Interp& interp, const ValueVec& argv) {
  // upvar ?level? otherVar localVar ?otherVar localVar ...?
  if (argv.size() < 3) {
    return ArityError("upvar", "?level? otherVar localVar ?otherVar localVar ...?");
  }
  std::size_t i = 1;
  std::string level = "1";
  const std::string& first = argv[1].String();
  // A level spec is "#n" or a number; heuristic matches Tcl's.
  if ((first[0] == '#' || std::isdigit(static_cast<unsigned char>(first[0]))) &&
      argv.size() % 2 == 0) {
    level = first;
    i = 2;
  }
  if ((argv.size() - i) % 2 != 0) {
    return ArityError("upvar", "?level? otherVar localVar ?otherVar localVar ...?");
  }
  for (; i + 1 < argv.size(); i += 2) {
    Result r = InterpInternal::Upvar(interp, level, argv[i].String(), argv[i + 1].String());
    if (r.code == Status::kError) {
      return r;
    }
  }
  return Result::Ok();
}

Result CmdUplevel(Interp& interp, const ValueVec& argv) {
  if (argv.size() < 2) {
    return ArityError("uplevel", "?level? command ?arg ...?");
  }
  std::size_t i = 1;
  std::string level;
  const std::string& first = argv[1].String();
  if (first[0] == '#' || std::isdigit(static_cast<unsigned char>(first[0]))) {
    if (argv.size() < 3) {
      return ArityError("uplevel", "?level? command ?arg ...?");
    }
    level = first;
    i = 2;
  }
  std::string script;
  for (std::size_t j = i; j < argv.size(); ++j) {
    if (j != i) {
      script.push_back(' ');
    }
    script.append(argv[j].String());
  }
  return InterpInternal::Uplevel(interp, level, script);
}

Result CmdRename(Interp& interp, const ValueVec& argv) {
  if (argv.size() != 3) {
    return ArityError("rename", "oldName newName");
  }
  if (!argv[2].String().empty() && interp.HasCommand(argv[2].String())) {
    return Result::Error("can't rename to \"" + argv[2].String() + "\": command already exists");
  }
  if (!interp.RenameCommand(argv[1].String(), argv[2].String())) {
    return Result::Error("can't rename \"" + argv[1].String() + "\": command doesn't exist");
  }
  return Result::Ok();
}

Result CmdSource(Interp& interp, const ValueVec& argv) {
  if (argv.size() != 2) {
    return ArityError("source", "fileName");
  }
  std::ifstream file(argv[1].String());
  if (!file) {
    return Result::Error("couldn't read file \"" + argv[1].String() + "\"");
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return interp.Eval(buffer.str());
}

Result CmdTime(Interp& interp, const ValueVec& argv) {
  if (argv.size() != 2 && argv.size() != 3) {
    return ArityError("time", "command ?count?");
  }
  long count = 1;
  if (argv.size() == 3) {
    if (!argv[2].GetInt(&count) || count <= 0) {
      return Result::Error("expected positive integer but got \"" + argv[2].String() + "\"");
    }
  }
  timespec start{};
  clock_gettime(CLOCK_MONOTONIC, &start);
  for (long i = 0; i < count; ++i) {
    Result r = interp.Eval(argv[1].String());
    if (r.code == Status::kError) {
      return r;
    }
  }
  timespec end{};
  clock_gettime(CLOCK_MONOTONIC, &end);
  long long micros = (end.tv_sec - start.tv_sec) * 1000000LL +
                     (end.tv_nsec - start.tv_nsec) / 1000;
  return Result::Ok(std::to_string(micros / count) + " microseconds per iteration");
}

Result CmdInfo(Interp& interp, const ValueVec& argv) {
  if (argv.size() < 2) {
    return ArityError("info", "option ?arg ...?");
  }
  const std::string& option = argv[1].String();
  if (option == "exists") {
    if (argv.size() != 3) {
      return ArityError("info exists", "varName");
    }
    return Result::Ok(interp.VarExists(argv[2].String()) ? "1" : "0");
  }
  if (option == "commands") {
    std::vector<std::string> names = interp.CommandNames();
    if (argv.size() == 3) {
      std::vector<std::string> filtered;
      for (const std::string& name : names) {
        if (GlobMatch(argv[2].String(), name)) {
          filtered.push_back(name);
        }
      }
      names = std::move(filtered);
    }
    return Result::Ok(MergeList(names));
  }
  if (option == "procs") {
    std::vector<std::string> names = interp.ProcNames();
    if (argv.size() == 3) {
      std::vector<std::string> filtered;
      for (const std::string& name : names) {
        if (GlobMatch(argv[2].String(), name)) {
          filtered.push_back(name);
        }
      }
      names = std::move(filtered);
    }
    return Result::Ok(MergeList(names));
  }
  if (option == "body") {
    if (argv.size() != 3) {
      return ArityError("info body", "procName");
    }
    std::string body;
    if (!interp.ProcBody(argv[2].String(), &body)) {
      return Result::Error("\"" + argv[2].String() + "\" isn't a procedure");
    }
    return Result::Ok(body);
  }
  if (option == "args") {
    if (argv.size() != 3) {
      return ArityError("info args", "procName");
    }
    std::string args;
    if (!interp.ProcArgs(argv[2].String(), &args)) {
      return Result::Error("\"" + argv[2].String() + "\" isn't a procedure");
    }
    return Result::Ok(args);
  }
  if (option == "level") {
    return Result::Ok(std::to_string(interp.CurrentLevel()));
  }
  if (option == "vars") {
    return Result::Ok(MergeList(interp.LocalVarNames()));
  }
  if (option == "globals") {
    return Result::Ok(MergeList(interp.GlobalVarNames()));
  }
  if (option == "cmdcount") {
    return Result::Ok(std::to_string(interp.CommandCount()));
  }
  if (option == "tclversion") {
    return Result::Ok("6.7");  // the vintage Wafe embedded
  }
  return Result::Error("bad option \"" + option +
                       "\": should be args, body, cmdcount, commands, exists, globals, level, "
                       "procs, tclversion, or vars");
}

}  // namespace

void RegisterCoreBuiltins(Interp& interp) {
  interp.RegisterCommand("set", CmdSet);
  interp.RegisterCommand("unset", CmdUnset);
  interp.RegisterCommand("incr", CmdIncr);
  interp.RegisterCommand("if", CmdIf);
  interp.RegisterCommand("while", CmdWhile);
  interp.RegisterCommand("for", CmdFor);
  interp.RegisterCommand("foreach", CmdForeach);
  interp.RegisterCommand("switch", CmdSwitch);
  interp.RegisterCommand("case", CmdCase);
  interp.RegisterCommand("proc", CmdProcDef);
  interp.RegisterCommand("return", CmdReturn);
  interp.RegisterCommand("break", CmdBreak);
  interp.RegisterCommand("continue", CmdContinue);
  interp.RegisterCommand("error", CmdError);
  interp.RegisterCommand("catch", CmdCatch);
  interp.RegisterCommand("eval", CmdEval);
  interp.RegisterCommand("expr", CmdExpr);
  interp.RegisterCommand("global", CmdGlobal);
  interp.RegisterCommand("upvar", CmdUpvar);
  interp.RegisterCommand("uplevel", CmdUplevel);
  interp.RegisterCommand("rename", CmdRename);
  interp.RegisterCommand("source", CmdSource);
  interp.RegisterCommand("time", CmdTime);
  interp.RegisterCommand("info", CmdInfo);
}

}  // namespace wtcl
