#include "src/tcl/value.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace wtcl {

// List syntax lives in interp.cc (shared with the public SplitList API);
// declared here rather than through interp.h to keep the headers acyclic.
bool SplitList(std::string_view list, std::vector<std::string>* out);
std::string QuoteListElement(std::string_view element);

namespace {

bool IsTclSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' ||
         c == '\f';
}

std::string_view TrimWhitespace(std::string_view text) {
  while (!text.empty() && IsTclSpace(text.front())) text.remove_prefix(1);
  while (!text.empty() && IsTclSpace(text.back())) text.remove_suffix(1);
  return text;
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

// Optional sign followed by one or more digits — the shape that must parse as
// an integer or be a hard error, never fall through to the double parser.
bool IsDigitRun(std::string_view text) {
  if (!text.empty() && (text.front() == '+' || text.front() == '-')) {
    text.remove_prefix(1);
  }
  if (text.empty()) return false;
  for (char c : text) {
    if (!IsAsciiDigit(c)) return false;
  }
  return true;
}

}  // namespace

NumberKind ClassifyNumber(std::string_view text, long* int_out,
                          double* double_out) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed.empty()) return NumberKind::kNotNumeric;
  // strtol/strtod want a terminator; numbers are short, so the copy is cheap
  // and consumers cache the classification anyway.
  std::string buf(trimmed);
  const char* start = buf.c_str();
  char* end = nullptr;
  errno = 0;
  long int_value = std::strtol(start, &end, 0);
  if (end != start && *end == '\0') {
    if (errno == ERANGE) return NumberKind::kOverflow;
    if (int_out) *int_out = int_value;
    return NumberKind::kInt;
  }
  // A digit run that the integer parser rejected (or stopped short in) is an
  // invalid octal like "08" — a hard error, not the double 8.0.
  if (IsDigitRun(trimmed)) return NumberKind::kBadInteger;
  char* dend = nullptr;
  double double_value = std::strtod(start, &dend);
  if (dend != start && *dend == '\0') {
    // Out-of-range magnitudes saturate (±HUGE_VAL / denormals), mirroring
    // Tcl: "1e400" is the double Inf, not a parse failure.
    if (double_out) *double_out = double_value;
    return NumberKind::kDouble;
  }
  return NumberKind::kNotNumeric;
}

std::string IntegerParseError(std::string_view text, NumberKind kind) {
  if (kind == NumberKind::kOverflow) {
    return "integer value too large to represent \"" + std::string(text) +
           "\"";
  }
  std::string message =
      "expected integer but got \"" + std::string(text) + "\"";
  if (kind == NumberKind::kBadInteger) {
    message += " (looks like invalid octal number)";
  }
  return message;
}

std::string DoubleParseError(std::string_view text) {
  return "expected floating-point number but got \"" + std::string(text) +
         "\"";
}

bool ParseInt(std::string_view text, long* out, std::string* error) {
  long value = 0;
  NumberKind kind = ClassifyNumber(text, &value, nullptr);
  if (kind == NumberKind::kInt) {
    *out = value;
    return true;
  }
  if (error) *error = IntegerParseError(text, kind);
  return false;
}

bool ParseDouble(std::string_view text, double* out, std::string* error) {
  std::string_view trimmed = TrimWhitespace(text);
  if (!trimmed.empty()) {
    std::string buf(trimmed);
    const char* start = buf.c_str();
    char* end = nullptr;
    double value = std::strtod(start, &end);
    if (end != start && *end == '\0') {
      *out = value;
      return true;
    }
  }
  if (error) *error = DoubleParseError(text);
  return false;
}

NumberKind ScanNumberPrefix(const char* text, std::size_t* pos, long* int_out,
                            double* double_out) {
  const char* start = text + *pos;
  char* iend = nullptr;
  errno = 0;
  long int_value = std::strtol(start, &iend, 0);
  int int_errno = errno;
  char* dend = nullptr;
  double double_value = std::strtod(start, &dend);
  if (dend > iend) {
    std::string_view token(start, static_cast<std::size_t>(dend - start));
    *pos = static_cast<std::size_t>(dend - text);
    // "08" scans further as a double than as an integer; that digit run is a
    // malformed integer, not 8.0.
    if (IsDigitRun(token)) return NumberKind::kBadInteger;
    if (double_out) *double_out = double_value;
    return NumberKind::kDouble;
  }
  if (iend == start) return NumberKind::kNotNumeric;
  *pos = static_cast<std::size_t>(iend - text);
  if (int_errno == ERANGE) return NumberKind::kOverflow;
  if (int_out) *int_out = int_value;
  return NumberKind::kInt;
}

bool ScanIntPrefix(const std::string& text, std::size_t* pos, int base,
                   long* out) {
  const char* start = text.c_str() + *pos;
  char* end = nullptr;
  long value = std::strtol(start, &end, base);
  if (end == start) return false;
  *out = value;
  *pos = static_cast<std::size_t>(end - text.c_str());
  return true;
}

bool ScanDoublePrefix(const std::string& text, std::size_t* pos, double* out) {
  const char* start = text.c_str() + *pos;
  char* end = nullptr;
  double value = std::strtod(start, &end);
  if (end == start) return false;
  *out = value;
  *pos = static_cast<std::size_t>(end - text.c_str());
  return true;
}

bool ParseIndex(std::string_view text, std::size_t length, long* out) {
  std::string_view trimmed = TrimWhitespace(text);
  if (trimmed == "end") {
    *out = static_cast<long>(length) - 1;
    return true;
  }
  if (trimmed.size() > 4 && trimmed.substr(0, 3) == "end" &&
      (trimmed[3] == '-' || trimmed[3] == '+')) {
    long offset = 0;
    if (!ParseInt(trimmed.substr(4), &offset, nullptr)) return false;
    long result = 0;
    bool overflow =
        trimmed[3] == '-'
            ? __builtin_sub_overflow(static_cast<long>(length) - 1, offset,
                                     &result)
            : __builtin_add_overflow(static_cast<long>(length) - 1, offset,
                                     &result);
    if (overflow) return false;
    *out = result;
    return true;
  }
  return ParseInt(trimmed, out, nullptr);
}

std::string IndexParseError(std::string_view text) {
  return "bad index \"" + std::string(text) +
         "\": must be integer?[+-]integer? or end?[+-]integer?";
}

std::string FormatDouble(double value) {
  // Tcl's spellings for the non-finite values.
  if (std::isinf(value)) return value < 0 ? "-Inf" : "Inf";
  if (std::isnan(value)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  std::string text(buf);
  // C's %g switches to scientific notation once the decimal exponent reaches
  // the precision (6); Tcl's Tcl_PrintDouble keeps fixed notation out to
  // exponent 16. Expand the in-between exponents back to fixed form so
  // double(2147483647) reads "2147480000.0", not "2.14748e+09". The negative
  // side needs no help: both switch below 1e-4.
  std::size_t e_at = text.find_first_of("eE");
  if (e_at != std::string::npos) {
    int exponent = std::atoi(text.c_str() + e_at + 1);
    if (exponent >= 6 && exponent <= 16) {
      std::string mantissa = text.substr(0, e_at);
      std::string sign;
      if (!mantissa.empty() && mantissa[0] == '-') {
        sign = "-";
        mantissa.erase(0, 1);
      }
      std::size_t dot = mantissa.find('.');
      std::string digits = dot == std::string::npos
                               ? mantissa
                               : mantissa.substr(0, dot) + mantissa.substr(dot + 1);
      std::size_t integer_len = static_cast<std::size_t>(exponent) + 1;
      if (digits.size() < integer_len) {
        digits.append(integer_len - digits.size(), '0');
      }
      text = sign + digits.substr(0, integer_len);
      std::string fraction = digits.substr(integer_len);
      text += fraction.empty() ? ".0" : "." + fraction;
      return text;
    }
  }
  // Mirror Tcl: a double must not read back as an integer ("2" -> "2.0"),
  // but exponents are left alone.
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  return text;
}

Value Value::FromInt(long v) {
  Value value;
  value.rep_ = std::make_shared<Rep>();
  value.rep_->has_string = false;
  value.rep_->num = NumberKind::kInt;
  value.rep_->int_value = v;
  return value;
}

Value Value::FromDouble(double v) {
  Value value;
  value.rep_ = std::make_shared<Rep>();
  value.rep_->has_string = false;
  value.rep_->num = NumberKind::kDouble;
  value.rep_->double_value = v;
  return value;
}

Value Value::FromList(std::vector<Value> elements) {
  Value value;
  value.rep_ = std::make_shared<Rep>();
  value.rep_->has_string = false;
  value.rep_->list_parsed = true;
  value.rep_->list =
      std::make_shared<const std::vector<Value>>(std::move(elements));
  return value;
}

const std::string& Value::EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}

void Value::MaterializeString() const {
  const Rep& rep = *rep_;
  if (rep.num == NumberKind::kInt) {
    rep.str = std::to_string(rep.int_value);
  } else if (rep.num == NumberKind::kDouble) {
    rep.str = FormatDouble(rep.double_value);
  } else if (rep.list) {
    std::string joined;
    bool first = true;
    for (const Value& element : *rep.list) {
      if (!first) joined += ' ';
      first = false;
      joined += QuoteListElement(element.String());
    }
    rep.str = std::move(joined);
  } else {
    rep.str.clear();
  }
  rep.has_string = true;
}

NumberKind Value::ClassifySlow() const {
  const std::string& text = String();
  rep_->num =
      ClassifyNumber(text, &rep_->int_value, &rep_->double_value);
  return rep_->num;
}

bool Value::GetDouble(double* out) const {
  switch (Classify()) {
    case NumberKind::kInt:
      *out = static_cast<double>(rep_->int_value);
      return true;
    case NumberKind::kDouble:
      *out = rep_->double_value;
      return true;
    default:
      return false;
  }
}

const std::vector<Value>* Value::GetList() const {
  if (!rep_) {
    static const std::vector<Value> kEmptyList;
    return &kEmptyList;
  }
  if (!rep_->list_parsed) {
    rep_->list_parsed = true;
    std::vector<std::string> elements;
    if (SplitList(String(), &elements)) {
      auto parsed = std::make_shared<std::vector<Value>>();
      parsed->reserve(elements.size());
      for (std::string& element : elements) {
        parsed->emplace_back(std::move(element));
      }
      rep_->list = std::move(parsed);
    }
  }
  return rep_->list ? rep_->list.get() : nullptr;
}

void Value::SetString(std::string s) {
  if (rep_ && rep_.use_count() == 1) {
    Rep& rep = *rep_;
    rep.str = std::move(s);
    rep.has_string = true;
    rep.list_parsed = false;
    rep.list.reset();
    rep.num = NumberKind::kUnparsed;
    return;
  }
  rep_ = std::make_shared<Rep>(std::move(s));
}

void Value::SetInt(long v) {
  if (rep_ && rep_.use_count() == 1) {
    Rep& rep = *rep_;
    rep.has_string = false;
    rep.list_parsed = false;
    rep.list.reset();
    rep.num = NumberKind::kInt;
    rep.int_value = v;
    return;
  }
  rep_ = std::make_shared<Rep>();
  rep_->has_string = false;
  rep_->num = NumberKind::kInt;
  rep_->int_value = v;
}

std::string* Value::MutableString() {
  if (!rep_ || rep_.use_count() != 1) {
    rep_ = std::make_shared<Rep>();
  } else {
    Rep& rep = *rep_;
    rep.list_parsed = false;
    rep.list.reset();
    rep.num = NumberKind::kUnparsed;
  }
  rep_->has_string = true;
  return &rep_->str;
}

}  // namespace wtcl
