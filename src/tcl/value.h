#ifndef WAFE_TCL_VALUE_H_
#define WAFE_TCL_VALUE_H_

// Dual-representation Tcl values (Tcl_Obj-style "shimmering").
//
// A Value is a refcounted handle to a canonical string plus lazily computed,
// cached internal representations: a numeric classification (long / double)
// and a parsed list.  Reps are filled on first use and retained until the
// logical value changes, so hot loops (`lindex $l $i`, `incr`, expr operands)
// stop reparsing the same string per use.  Logical mutation goes through
// SetString/SetInt/MutableString, which update a uniquely owned rep in place
// and copy-on-write a shared one; the lazy caches themselves may be filled on
// a shared rep (the interpreter is single-threaded), which is what makes a
// list parse triggered through an argv slot stick to the variable that the
// slot was copied from.
//
// This header also centralizes numeric parsing for the whole interpreter:
// ClassifyNumber / ParseInt / ParseDouble / ParseIndex and the prefix
// scanners are the single place where overflow (ERANGE), octal/hex prefixes,
// surrounding whitespace, and `end-N` index semantics are decided.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace wtcl {

// Result of classifying a whole string as a number, Tcl-style: base-0
// integers (0x hex, leading-0 octal) tried first, then doubles.  Surrounding
// ASCII whitespace is accepted.  The two failure kinds beyond "not a number"
// are deliberate: an all-digit token that fails integer parsing (an invalid
// octal like "08") and an integer that overflows long must both become hard
// errors at the consumer, never a silent double or a clamped LONG_MAX.
enum class NumberKind : unsigned char {
  kUnparsed = 0,  // internal sentinel: classification not yet attempted
  kInt,
  kDouble,
  kNotNumeric,
  kBadInteger,  // digit-run that fails integer parsing, e.g. "08", "0778"
  kOverflow,    // integer syntax but outside [LONG_MIN, LONG_MAX]
};

// Classifies `text` as a whole; on kInt/kDouble the corresponding out
// parameter (when non-null) receives the parsed value.
NumberKind ClassifyNumber(std::string_view text, long* int_out,
                          double* double_out);

// Strict integer parse: true only for kInt.  On failure, when `error` is
// non-null it receives the canonical message ("expected integer but got ..."
// or "integer value too large to represent ..." for overflow).
bool ParseInt(std::string_view text, long* out, std::string* error);

// Lenient double parse (Tcl double semantics): accepts anything strtod
// consumes entirely, including values that overflow long ("9e19" written as
// twenty digits) and leading-zero digit runs ("08").  On failure fills
// "expected floating-point number but got ...".
bool ParseDouble(std::string_view text, double* out, std::string* error);

// The canonical error strings for a failed integer classification, shared by
// every consumer so messages stay uniform.
std::string IntegerParseError(std::string_view text, NumberKind kind);
std::string DoubleParseError(std::string_view text);

// Scans the longest number token at text[*pos] (expr tokenizer); `text` must
// be NUL-terminated storage (std::string data).  On
// kInt/kDouble/kOverflow/kBadInteger, *pos is advanced past the token so the
// caller can slice it for error messages; on kNotNumeric *pos is untouched.
NumberKind ScanNumberPrefix(const char* text, std::size_t* pos, long* int_out,
                            double* double_out);

// Fixed-base prefix scans for `scan` %d/%x/%o and %f/%e/%g: sscanf-style
// lenient (overflow clamps, as C scanning does).  Advance *pos on success.
bool ScanIntPrefix(const std::string& text, std::size_t* pos, int base,
                   long* out);
bool ScanDoublePrefix(const std::string& text, std::size_t* pos, double* out);

// List index: "N" (base-0 integer), "end", or "end±N".  `length` is the list
// length; "end" maps to length-1.  The end±N arithmetic is overflow-checked;
// false means the index was malformed or the arithmetic overflowed.
bool ParseIndex(std::string_view text, std::size_t length, long* out);

// The canonical complaint for a malformed index, shared by every index
// consumer (string index/range, lindex/lrange/linsert/lreplace).
std::string IndexParseError(std::string_view text);

// %g with a ".0" suffix when the result would otherwise read as an integer —
// the one true double-to-string used by expr results and double Values.
std::string FormatDouble(double value);

class Value {
 public:
  Value() = default;  // empty string; allocates nothing
  Value(std::string s) : rep_(std::make_shared<Rep>(std::move(s))) {}
  Value(std::string_view s) : Value(std::string(s)) {}
  Value(const char* s) : Value(std::string(s)) {}

  static Value FromInt(long v);
  static Value FromDouble(double v);
  // Takes ownership of the elements; the string rep (MergeList formatting) is
  // materialized only if someone asks for it.
  static Value FromList(std::vector<Value> elements);

  // The canonical string rep, materialized on demand.  The reference is valid
  // while this Value (or any sharer of its rep) is alive and unmutated.
  const std::string& String() const {
    if (!rep_) return EmptyString();
    if (!rep_->has_string) MaterializeString();
    return rep_->str;
  }

  // Cached whole-string classification (never kUnparsed).
  NumberKind Classify() const {
    if (!rep_) return NumberKind::kNotNumeric;
    if (rep_->num != NumberKind::kUnparsed) return rep_->num;
    return ClassifySlow();
  }

  // true iff the value is a well-formed integer; fills *out.
  bool GetInt(long* out) const {
    if (Classify() != NumberKind::kInt) return false;
    *out = rep_->int_value;
    return true;
  }

  // true iff the value is numeric (int or double); fills *out.
  bool GetDouble(double* out) const;

  // The cached list rep, parsing on first use.  Returns nullptr when the
  // string is not a well-formed list (unmatched brace); an empty string is an
  // empty list.  The pointer is valid under the same rules as String().
  const std::vector<Value>* GetList() const;

  // Logical mutation: in place when the rep is uniquely owned, COW otherwise.
  void SetString(std::string s);
  void SetInt(long v);

  // Returns this value's string buffer for the caller to overwrite (contents
  // unspecified — clear before appending).  Reuses a uniquely owned rep's
  // capacity; all cached reps are invalidated.
  std::string* MutableString();

  // Pooling probes (frame-recycle leanness checks).
  bool HasListRep() const { return rep_ && rep_->list != nullptr; }
  std::size_t StringCapacity() const { return rep_ ? rep_->str.capacity() : 0; }

 private:
  struct Rep {
    Rep() = default;
    explicit Rep(std::string s) : str(std::move(s)) {}
    // All fields are mutable-by-convention caches except the logical value
    // itself; they are only rebuilt, never logically changed, through a
    // shared pointer (single-threaded).
    mutable std::string str;
    mutable bool has_string = true;
    mutable bool list_parsed = false;
    mutable NumberKind num = NumberKind::kUnparsed;
    mutable long int_value = 0;
    mutable double double_value = 0.0;
    mutable std::shared_ptr<const std::vector<Value>> list;
  };

  static const std::string& EmptyString();
  void MaterializeString() const;
  NumberKind ClassifySlow() const;

  std::shared_ptr<Rep> rep_;
};

using ValueVec = std::vector<Value>;

}  // namespace wtcl

#endif  // WAFE_TCL_VALUE_H_
