// String-oriented built-ins: string, format, append, scan (subset).
//
// Numeric arguments (string index/range, format %d/%f, scan conversions)
// parse through the central value.cc parsers: format/string reuse the
// cached classification on their argument Values; scan's prefix scans go
// through ScanIntPrefix/ScanDoublePrefix, the one sscanf-style entry point.
#include <cctype>
#include <cstdio>
#include <cstring>

#include "src/tcl/interp.h"

namespace wtcl {

namespace {

Result ArityError(const std::string& name, const std::string& usage) {
  return Result::Error("wrong # args: should be \"" + name + " " + usage + "\"");
}

std::string ToLower(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string Trim(const std::string& s, const std::string& chars, bool left, bool right) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  if (left) {
    while (begin < end && chars.find(s[begin]) != std::string::npos) {
      ++begin;
    }
  }
  if (right) {
    while (end > begin && chars.find(s[end - 1]) != std::string::npos) {
      --end;
    }
  }
  return s.substr(begin, end - begin);
}

Result CmdString(Interp& interp, const ValueVec& argv) {
  (void)interp;
  if (argv.size() < 3) {
    return ArityError("string", "option arg ?arg ...?");
  }
  const std::string& option = argv[1].String();
  const std::string& subject = argv[2].String();
  if (option == "length") {
    return Result::Ok(std::to_string(subject.size()));
  }
  if (option == "tolower") {
    return Result::Ok(ToLower(subject));
  }
  if (option == "toupper") {
    return Result::Ok(ToUpper(subject));
  }
  if (option == "trim" || option == "trimleft" || option == "trimright") {
    std::string chars = " \t\n\r\f\v";
    if (argv.size() == 4) {
      chars = argv[3].String();
    }
    return Result::Ok(
        Trim(subject, chars, option != "trimright", option != "trimleft"));
  }
  if (option == "index") {
    if (argv.size() != 4) {
      return ArityError("string index", "string charIndex");
    }
    long index = 0;
    if (!ParseIndex(argv[3].String(), subject.size(), &index)) {
      return Result::Error(IndexParseError(argv[3].String()));
    }
    if (index < 0 || static_cast<std::size_t>(index) >= subject.size()) {
      return Result::Ok("");
    }
    return Result::Ok(std::string(1, subject[static_cast<std::size_t>(index)]));
  }
  if (option == "range") {
    if (argv.size() != 5) {
      return ArityError("string range", "string first last");
    }
    long first = 0;
    if (!ParseIndex(argv[3].String(), subject.size(), &first)) {
      return Result::Error(IndexParseError(argv[3].String()));
    }
    long last = 0;
    if (!ParseIndex(argv[4].String(), subject.size(), &last)) {
      return Result::Error(IndexParseError(argv[4].String()));
    }
    if (first < 0) {
      first = 0;
    }
    if (last >= static_cast<long>(subject.size())) {
      last = static_cast<long>(subject.size()) - 1;
    }
    if (first > last) {
      return Result::Ok("");
    }
    return Result::Ok(subject.substr(static_cast<std::size_t>(first),
                                     static_cast<std::size_t>(last - first + 1)));
  }
  if (option == "compare") {
    if (argv.size() != 4) {
      return ArityError("string compare", "string1 string2");
    }
    int c = subject.compare(argv[3].String());
    return Result::Ok(c < 0 ? "-1" : (c > 0 ? "1" : "0"));
  }
  if (option == "match") {
    if (argv.size() != 4) {
      return ArityError("string match", "pattern string");
    }
    return Result::Ok(GlobMatch(subject, argv[3].String()) ? "1" : "0");
  }
  if (option == "first") {
    if (argv.size() != 4) {
      return ArityError("string first", "string1 string2");
    }
    // Tcl defines an empty needle as not-found; string::find would say 0.
    if (subject.empty()) {
      return Result::Ok("-1");
    }
    std::size_t at = argv[3].String().find(subject);
    return Result::Ok(at == std::string::npos ? "-1" : std::to_string(at));
  }
  if (option == "last") {
    if (argv.size() != 4) {
      return ArityError("string last", "string1 string2");
    }
    if (subject.empty()) {
      return Result::Ok("-1");
    }
    std::size_t at = argv[3].String().rfind(subject);
    return Result::Ok(at == std::string::npos ? "-1" : std::to_string(at));
  }
  return Result::Error("bad option \"" + option +
                       "\": should be compare, first, index, last, length, match, range, "
                       "tolower, toupper, trim, trimleft, or trimright");
}

Result CmdAppend(Interp& interp, const ValueVec& argv) {
  if (argv.size() < 2) {
    return ArityError("append", "varName ?value ...?");
  }
  std::string value;
  interp.GetVar(argv[1].String(), &value);
  for (std::size_t i = 2; i < argv.size(); ++i) {
    value += argv[i].String();
  }
  return interp.SetVar(argv[1].String(), std::move(value));
}

Result CmdFormatWrap(Interp& interp, const ValueVec& argv) {
  (void)interp;
  return FormatCommandString(argv);
}

Result CmdScan(Interp& interp, const ValueVec& argv) {
  // scan string format varName ?varName ...? — supports %d %x %o %f %e %g
  // %s %c and literal/whitespace matching, enough for Wafe-era scripts.
  if (argv.size() < 4) {
    return ArityError("scan", "string format varName ?varName ...?");
  }
  const std::string& input = argv[1].String();
  const std::string& format = argv[2].String();
  std::size_t in = 0;
  std::size_t var = 3;
  int assigned = 0;
  std::size_t f = 0;
  while (f < format.size()) {
    char fc = format[f];
    if (std::isspace(static_cast<unsigned char>(fc))) {
      while (in < input.size() && std::isspace(static_cast<unsigned char>(input[in]))) {
        ++in;
      }
      ++f;
      continue;
    }
    if (fc != '%') {
      if (in >= input.size() || input[in] != fc) {
        break;
      }
      ++in;
      ++f;
      continue;
    }
    ++f;
    if (f >= format.size()) {
      return Result::Error("bad scan conversion character");
    }
    char conv = format[f++];
    if (conv == '%') {
      if (in >= input.size() || input[in] != '%') {
        break;
      }
      ++in;
      continue;
    }
    while (in < input.size() && std::isspace(static_cast<unsigned char>(input[in])) &&
           conv != 'c') {
      ++in;
    }
    if (var >= argv.size()) {
      return Result::Error("different numbers of variable names and field specifiers");
    }
    Value value;
    if (conv == 'd' || conv == 'x' || conv == 'o') {
      int base = conv == 'd' ? 10 : (conv == 'x' ? 16 : 8);
      long v = 0;
      if (!ScanIntPrefix(input, &in, base, &v)) {
        break;
      }
      value = Value::FromInt(v);
    } else if (conv == 'f' || conv == 'e' || conv == 'g') {
      double v = 0;
      if (!ScanDoublePrefix(input, &in, &v)) {
        break;
      }
      // scan reports doubles in plain %g form ("3", not "3.0"), matching the
      // historical sscanf-based implementation.
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer), "%g", v);
      value = Value(buffer);
    } else if (conv == 's') {
      std::size_t start = in;
      while (in < input.size() && !std::isspace(static_cast<unsigned char>(input[in]))) {
        ++in;
      }
      if (in == start) {
        break;
      }
      value = Value(input.substr(start, in - start));
    } else if (conv == 'c') {
      if (in >= input.size()) {
        break;
      }
      value = Value::FromInt(static_cast<long>(static_cast<unsigned char>(input[in])));
      ++in;
    } else {
      return Result::Error(std::string("bad scan conversion character \"") + conv + "\"");
    }
    interp.SetVarValue(argv[var++].String(), std::move(value));
    ++assigned;
  }
  return Result::Ok(std::to_string(assigned));
}

}  // namespace

Result FormatCommandString(const ValueVec& argv) {
  if (argv.size() < 2) {
    return Result::Error("wrong # args: should be \"format formatString ?arg ...?\"");
  }
  const std::string& format = argv[1].String();
  std::string out;
  std::size_t arg = 2;
  std::size_t i = 0;
  while (i < format.size()) {
    char c = format[i];
    if (c != '%') {
      out.push_back(c);
      ++i;
      continue;
    }
    // Collect the specifier: %[flags][width][.precision]conv
    std::size_t start = i;
    ++i;
    while (i < format.size() && std::strchr("-+ #0", format[i]) != nullptr) {
      ++i;
    }
    bool width_star = false;
    if (i < format.size() && format[i] == '*') {
      width_star = true;
      ++i;
    } else {
      while (i < format.size() && std::isdigit(static_cast<unsigned char>(format[i]))) {
        ++i;
      }
    }
    bool prec_star = false;
    if (i < format.size() && format[i] == '.') {
      ++i;
      if (i < format.size() && format[i] == '*') {
        prec_star = true;
        ++i;
      } else {
        while (i < format.size() && std::isdigit(static_cast<unsigned char>(format[i]))) {
          ++i;
        }
      }
    }
    // Skip length modifiers (accepted and ignored).
    while (i < format.size() && std::strchr("hlL", format[i]) != nullptr) {
      ++i;
    }
    if (i >= format.size()) {
      return Result::Error("format string ended in middle of field specifier");
    }
    char conv = format[i];
    ++i;
    std::string spec = format.substr(start, i - start);
    // Remove length modifiers from the spec we hand to snprintf and insert
    // the ones we need per conversion.
    std::string clean;
    for (char sc : spec) {
      if (sc != 'h' && sc != 'l' && sc != 'L') {
        clean.push_back(sc);
      }
    }
    long star_width = 0;
    long star_prec = 0;
    auto next_long = [&](long* v) {
      if (arg >= argv.size() || !argv[arg].GetInt(v)) {
        return false;
      }
      ++arg;
      return true;
    };
    if (width_star && !next_long(&star_width)) {
      return Result::Error("expected integer for \"*\" width");
    }
    if (prec_star && !next_long(&star_prec)) {
      return Result::Error("expected integer for \"*\" precision");
    }
    char buffer[512];
    switch (conv) {
      case '%':
        out.push_back('%');
        break;
      case 'd':
      case 'i':
      case 'u':
      case 'o':
      case 'x':
      case 'X':
      case 'c': {
        if (arg >= argv.size()) {
          return Result::Error("not enough arguments for all format specifiers");
        }
        long v = 0;
        if (!argv[arg].GetInt(&v)) {
          return Result::Error(IntegerParseError(argv[arg].String(), argv[arg].Classify()));
        }
        ++arg;
        // Insert the `l` modifier before the conversion char.
        std::string with_l = clean;
        if (conv != 'c') {
          with_l.insert(with_l.size() - 1, "l");
        }
        if (width_star || prec_star) {
          if (width_star && prec_star) {
            std::snprintf(buffer, sizeof(buffer), with_l.c_str(), static_cast<int>(star_width),
                          static_cast<int>(star_prec), conv == 'c' ? static_cast<long>(v) : v);
          } else if (width_star) {
            std::snprintf(buffer, sizeof(buffer), with_l.c_str(), static_cast<int>(star_width),
                          v);
          } else {
            std::snprintf(buffer, sizeof(buffer), with_l.c_str(), static_cast<int>(star_prec),
                          v);
          }
        } else if (conv == 'c') {
          std::snprintf(buffer, sizeof(buffer), clean.c_str(), static_cast<int>(v));
        } else {
          std::snprintf(buffer, sizeof(buffer), with_l.c_str(), v);
        }
        out += buffer;
        break;
      }
      case 'f':
      case 'e':
      case 'E':
      case 'g':
      case 'G': {
        if (arg >= argv.size()) {
          return Result::Error("not enough arguments for all format specifiers");
        }
        double v = 0;
        // Lenient on purpose: %f of "08" is 8.0, and integers too large for a
        // long still format as doubles — ParseDouble's strtod reach, not the
        // strict integer classifier.
        std::string error;
        if (!ParseDouble(argv[arg].String(), &v, &error)) {
          return Result::Error(std::move(error));
        }
        ++arg;
        if (width_star && prec_star) {
          std::snprintf(buffer, sizeof(buffer), clean.c_str(), static_cast<int>(star_width),
                        static_cast<int>(star_prec), v);
        } else if (width_star || prec_star) {
          std::snprintf(buffer, sizeof(buffer), clean.c_str(),
                        static_cast<int>(width_star ? star_width : star_prec), v);
        } else {
          std::snprintf(buffer, sizeof(buffer), clean.c_str(), v);
        }
        out += buffer;
        break;
      }
      case 's': {
        if (arg >= argv.size()) {
          return Result::Error("not enough arguments for all format specifiers");
        }
        const std::string& v = argv[arg++].String();
        if (width_star && prec_star) {
          std::snprintf(buffer, sizeof(buffer), clean.c_str(), static_cast<int>(star_width),
                        static_cast<int>(star_prec), v.c_str());
          out += buffer;
        } else if (width_star || prec_star) {
          std::snprintf(buffer, sizeof(buffer), clean.c_str(),
                        static_cast<int>(width_star ? star_width : star_prec), v.c_str());
          out += buffer;
        } else if (clean == "%s") {
          out += v;  // fast path, avoids the snprintf buffer limit
        } else {
          std::snprintf(buffer, sizeof(buffer), clean.c_str(), v.c_str());
          out += buffer;
        }
        break;
      }
      default:
        return Result::Error(std::string("bad field specifier \"") + conv + "\"");
    }
  }
  return Result::Ok(std::move(out));
}

void RegisterStringBuiltins(Interp& interp) {
  interp.RegisterCommand("string", CmdString);
  interp.RegisterCommand("append", CmdAppend);
  interp.RegisterCommand("format", CmdFormatWrap);
  interp.RegisterCommand("scan", CmdScan);
}

}  // namespace wtcl
