// The `expr` evaluator: a recursive-descent parser over Tcl expression
// syntax with long/double/string operands, the full C operator set Tcl
// supports (including ?: and short-circuit && / ||), and math functions.
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>
#include <variant>

#include "src/tcl/interp.h"
#include "src/tcl/interp_internal.h"

namespace wtcl {

namespace {

struct Value {
  enum class Kind { kInt, kDouble, kString };
  Kind kind = Kind::kInt;
  long i = 0;
  double d = 0.0;
  std::string s;

  static Value Int(long v) {
    Value value;
    value.kind = Kind::kInt;
    value.i = v;
    return value;
  }
  static Value Double(double v) {
    Value value;
    value.kind = Kind::kDouble;
    value.d = v;
    return value;
  }
  static Value Str(std::string v) {
    Value value;
    value.kind = Kind::kString;
    value.s = std::move(v);
    return value;
  }

  bool numeric() const { return kind != Kind::kString; }
  double AsDouble() const { return kind == Kind::kInt ? static_cast<double>(i) : d; }

  std::string ToString() const {
    switch (kind) {
      case Kind::kInt:
        return std::to_string(i);
      case Kind::kDouble: {
        // Tcl prints doubles with %g but keeps them recognizable as doubles.
        char buffer[64];
        std::snprintf(buffer, sizeof(buffer), "%g", d);
        std::string out(buffer);
        if (out.find_first_of(".eEnN") == std::string::npos) {
          out += ".0";
        }
        return out;
      }
      case Kind::kString:
        return s;
    }
    return "";
  }
};

// Attempts to parse an entire string as an integer or double.
bool ParseNumber(const std::string& text, Value* out) {
  if (text.empty()) {
    return false;
  }
  const char* start = text.c_str();
  char* end = nullptr;
  errno = 0;
  long i = std::strtol(start, &end, 0);
  if (end != start && *end == '\0' && errno != ERANGE) {
    *out = Value::Int(i);
    return true;
  }
  errno = 0;
  double d = std::strtod(start, &end);
  if (end != start && *end == '\0' && errno != ERANGE) {
    *out = Value::Double(d);
    return true;
  }
  return false;
}

class ExprParser {
 public:
  ExprParser(Interp& interp, std::string_view text) : interp_(interp), text_(text) {}

  Result Run(Value* out) {
    Result r = ParseTernary(out);
    if (r.code == Status::kError) {
      return r;
    }
    SkipSpace();
    if (pos_ < text_.size()) {
      return Syntax();
    }
    return Result::Ok();
  }

 private:
  Result Syntax() {
    return Result::Error("syntax error in expression \"" + std::string(text_) + "\"");
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(std::string_view token) {
    SkipSpace();
    return text_.substr(pos_, token.size()) == token;
  }

  bool Consume(std::string_view token) {
    if (Peek(token)) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  // Precedence climbing, lowest first: ?: || && | ^ & ==/!= relational
  // shifts additive multiplicative unary primary.

  Result ParseTernary(Value* out) {
    Result r = ParseOr(out);
    if (r.code == Status::kError) {
      return r;
    }
    SkipSpace();
    if (Consume("?")) {
      bool cond = false;
      Result t = Truth(*out, &cond);
      if (t.code == Status::kError) {
        return t;
      }
      Value a;
      Value b;
      r = ParseTernary(&a);
      if (r.code == Status::kError) {
        return r;
      }
      SkipSpace();
      if (!Consume(":")) {
        return Syntax();
      }
      r = ParseTernary(&b);
      if (r.code == Status::kError) {
        return r;
      }
      *out = cond ? a : b;
    }
    return Result::Ok();
  }

  Result Truth(const Value& v, bool* out) {
    switch (v.kind) {
      case Value::Kind::kInt:
        *out = v.i != 0;
        return Result::Ok();
      case Value::Kind::kDouble:
        *out = v.d != 0.0;
        return Result::Ok();
      case Value::Kind::kString: {
        std::string lower;
        for (char c : v.s) {
          lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
        }
        if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") {
          *out = true;
          return Result::Ok();
        }
        if (lower == "false" || lower == "no" || lower == "off" || lower == "0") {
          *out = false;
          return Result::Ok();
        }
        Value number;
        if (ParseNumber(v.s, &number)) {
          return Truth(number, out);
        }
        return Result::Error("expected boolean value but got \"" + v.s + "\"");
      }
    }
    return Result::Ok();
  }

  Result ParseOr(Value* out) {
    Result r = ParseAnd(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (text_.substr(pos_, 2) == "||") {
        pos_ += 2;
        bool left = false;
        Result t = Truth(*out, &left);
        if (t.code == Status::kError) {
          return t;
        }
        Value rhs;
        r = ParseAnd(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        bool right = false;
        t = Truth(rhs, &right);
        if (t.code == Status::kError) {
          return t;
        }
        *out = Value::Int(left || right ? 1 : 0);
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseAnd(Value* out) {
    Result r = ParseBitOr(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (text_.substr(pos_, 2) == "&&") {
        pos_ += 2;
        bool left = false;
        Result t = Truth(*out, &left);
        if (t.code == Status::kError) {
          return t;
        }
        Value rhs;
        r = ParseBitOr(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        bool right = false;
        t = Truth(rhs, &right);
        if (t.code == Status::kError) {
          return t;
        }
        *out = Value::Int(left && right ? 1 : 0);
      } else {
        return Result::Ok();
      }
    }
  }

  Result RequireInts(const Value& a, const Value& b, long* x, long* y) {
    if (a.kind != Value::Kind::kInt || b.kind != Value::Kind::kInt) {
      return Result::Error("can't use non-integer value as operand of bitwise operator");
    }
    *x = a.i;
    *y = b.i;
    return Result::Ok();
  }

  Result ParseBitOr(Value* out) {
    Result r = ParseBitXor(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '|' &&
          (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '|')) {
        ++pos_;
        Value rhs;
        r = ParseBitXor(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        long x = 0;
        long y = 0;
        Result ir = RequireInts(*out, rhs, &x, &y);
        if (ir.code == Status::kError) {
          return ir;
        }
        *out = Value::Int(x | y);
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseBitXor(Value* out) {
    Result r = ParseBitAnd(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '^') {
        ++pos_;
        Value rhs;
        r = ParseBitAnd(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        long x = 0;
        long y = 0;
        Result ir = RequireInts(*out, rhs, &x, &y);
        if (ir.code == Status::kError) {
          return ir;
        }
        *out = Value::Int(x ^ y);
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseBitAnd(Value* out) {
    Result r = ParseEquality(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '&' &&
          (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '&')) {
        ++pos_;
        Value rhs;
        r = ParseEquality(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        long x = 0;
        long y = 0;
        Result ir = RequireInts(*out, rhs, &x, &y);
        if (ir.code == Status::kError) {
          return ir;
        }
        *out = Value::Int(x & y);
      } else {
        return Result::Ok();
      }
    }
  }

  // Compares a and b: -1, 0, 1. Numeric when both numeric, else string.
  static int Compare(const Value& a, const Value& b) {
    if (a.numeric() && b.numeric()) {
      if (a.kind == Value::Kind::kInt && b.kind == Value::Kind::kInt) {
        if (a.i < b.i) {
          return -1;
        }
        return a.i > b.i ? 1 : 0;
      }
      double x = a.AsDouble();
      double y = b.AsDouble();
      if (x < y) {
        return -1;
      }
      return x > y ? 1 : 0;
    }
    std::string x = a.ToString();
    std::string y = b.ToString();
    int c = x.compare(y);
    if (c < 0) {
      return -1;
    }
    return c > 0 ? 1 : 0;
  }

  Result ParseEquality(Value* out) {
    Result r = ParseRelational(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      std::string_view two = text_.substr(pos_, 2);
      if (two == "==" || two == "!=") {
        pos_ += 2;
        Value rhs;
        r = ParseRelational(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        int c = Compare(*out, rhs);
        *out = Value::Int(two == "==" ? (c == 0) : (c != 0));
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseRelational(Value* out) {
    Result r = ParseShift(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      std::string_view two = text_.substr(pos_, 2);
      if (two == "<=" || two == ">=") {
        pos_ += 2;
        Value rhs;
        r = ParseShift(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        int c = Compare(*out, rhs);
        *out = Value::Int(two == "<=" ? (c <= 0) : (c >= 0));
      } else if (pos_ < text_.size() && (text_[pos_] == '<' || text_[pos_] == '>') &&
                 (pos_ + 1 >= text_.size() || text_[pos_ + 1] != text_[pos_])) {
        char op = text_[pos_];
        ++pos_;
        Value rhs;
        r = ParseShift(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        int c = Compare(*out, rhs);
        *out = Value::Int(op == '<' ? (c < 0) : (c > 0));
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseShift(Value* out) {
    Result r = ParseAdditive(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      std::string_view two = text_.substr(pos_, 2);
      if (two == "<<" || two == ">>") {
        pos_ += 2;
        Value rhs;
        r = ParseAdditive(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        long x = 0;
        long y = 0;
        Result ir = RequireInts(*out, rhs, &x, &y);
        if (ir.code == Status::kError) {
          return ir;
        }
        *out = Value::Int(two == "<<" ? (x << y) : (x >> y));
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseAdditive(Value* out) {
    Result r = ParseMultiplicative(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        char op = text_[pos_];
        ++pos_;
        Value rhs;
        r = ParseMultiplicative(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        Result ar = Arith(op, *out, rhs, out);
        if (ar.code == Status::kError) {
          return ar;
        }
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseMultiplicative(Value* out) {
    Result r = ParseUnary(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() &&
          (text_[pos_] == '*' || text_[pos_] == '/' || text_[pos_] == '%')) {
        char op = text_[pos_];
        ++pos_;
        Value rhs;
        r = ParseUnary(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        Result ar = Arith(op, *out, rhs, out);
        if (ar.code == Status::kError) {
          return ar;
        }
      } else {
        return Result::Ok();
      }
    }
  }

  Result Arith(char op, const Value& a, const Value& b, Value* out) {
    if (!a.numeric() || !b.numeric()) {
      return Result::Error(std::string("can't use non-numeric string as operand of \"") + op +
                           "\"");
    }
    if (a.kind == Value::Kind::kInt && b.kind == Value::Kind::kInt) {
      switch (op) {
        case '+':
          *out = Value::Int(a.i + b.i);
          return Result::Ok();
        case '-':
          *out = Value::Int(a.i - b.i);
          return Result::Ok();
        case '*':
          *out = Value::Int(a.i * b.i);
          return Result::Ok();
        case '/':
          if (b.i == 0) {
            return Result::Error("divide by zero");
          }
          {
            // Tcl floors integer division toward negative infinity.
            long q = a.i / b.i;
            if ((a.i % b.i != 0) && ((a.i < 0) != (b.i < 0))) {
              --q;
            }
            *out = Value::Int(q);
          }
          return Result::Ok();
        case '%':
          if (b.i == 0) {
            return Result::Error("divide by zero");
          }
          {
            long m = a.i % b.i;
            if (m != 0 && ((a.i < 0) != (b.i < 0))) {
              m += b.i;
            }
            *out = Value::Int(m);
          }
          return Result::Ok();
      }
    }
    double x = a.AsDouble();
    double y = b.AsDouble();
    switch (op) {
      case '+':
        *out = Value::Double(x + y);
        return Result::Ok();
      case '-':
        *out = Value::Double(x - y);
        return Result::Ok();
      case '*':
        *out = Value::Double(x * y);
        return Result::Ok();
      case '/':
        if (y == 0.0) {
          return Result::Error("divide by zero");
        }
        *out = Value::Double(x / y);
        return Result::Ok();
      case '%':
        return Result::Error("can't use floating-point value as operand of \"%\"");
    }
    return Syntax();
  }

  Result ParseUnary(Value* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Syntax();
    }
    char c = text_[pos_];
    if (c == '-' || c == '+' || c == '!' || c == '~') {
      ++pos_;
      Value v;
      Result r = ParseUnary(&v);
      if (r.code == Status::kError) {
        return r;
      }
      switch (c) {
        case '-':
          if (v.kind == Value::Kind::kInt) {
            *out = Value::Int(-v.i);
          } else if (v.kind == Value::Kind::kDouble) {
            *out = Value::Double(-v.d);
          } else {
            return Result::Error("can't use non-numeric string as operand of \"-\"");
          }
          return Result::Ok();
        case '+':
          if (!v.numeric()) {
            return Result::Error("can't use non-numeric string as operand of \"+\"");
          }
          *out = v;
          return Result::Ok();
        case '!': {
          bool truth = false;
          Result t = Truth(v, &truth);
          if (t.code == Status::kError) {
            return t;
          }
          *out = Value::Int(truth ? 0 : 1);
          return Result::Ok();
        }
        case '~':
          if (v.kind != Value::Kind::kInt) {
            return Result::Error("can't use non-integer value as operand of \"~\"");
          }
          *out = Value::Int(~v.i);
          return Result::Ok();
      }
    }
    return ParsePrimary(out);
  }

  Result ParsePrimary(Value* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Syntax();
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      Result r = ParseTernary(out);
      if (r.code == Status::kError) {
        return r;
      }
      SkipSpace();
      if (!Consume(")")) {
        return Result::Error("unbalanced parentheses in expression");
      }
      return Result::Ok();
    }
    if (c == '$') {
      std::string text;
      Result r = InterpInternal::ParseVariable(interp_, text_, &pos_, &text);
      if (r.code == Status::kError) {
        return r;
      }
      if (!ParseNumber(text, out)) {
        *out = Value::Str(std::move(text));
      }
      return Result::Ok();
    }
    if (c == '[') {
      std::string text;
      Result r = InterpInternal::ParseBracket(interp_, text_, &pos_, &text);
      if (r.code == Status::kError) {
        return r;
      }
      if (!ParseNumber(text, out)) {
        *out = Value::Str(std::move(text));
      }
      return Result::Ok();
    }
    if (c == '"') {
      // Quoted string with substitutions.
      ++pos_;
      std::string text;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        char qc = text_[pos_];
        if (qc == '\\' && pos_ + 1 < text_.size()) {
          // Reuse the interp's backslash handling via SubstituteWord on the
          // two-character sequence would be heavyweight; handle inline.
          std::string piece = std::string(text_.substr(pos_, 2));
          Result sub = interp_.SubstituteWord(piece);
          if (sub.code == Status::kError) {
            return sub;
          }
          text += sub.value;
          pos_ += 2;
        } else if (qc == '$') {
          Result r = InterpInternal::ParseVariable(interp_, text_, &pos_, &text);
          if (r.code == Status::kError) {
            return r;
          }
        } else if (qc == '[') {
          Result r = InterpInternal::ParseBracket(interp_, text_, &pos_, &text);
          if (r.code == Status::kError) {
            return r;
          }
        } else {
          text.push_back(qc);
          ++pos_;
        }
      }
      if (pos_ >= text_.size()) {
        return Result::Error("missing \" in expression");
      }
      ++pos_;
      *out = Value::Str(std::move(text));
      return Result::Ok();
    }
    if (c == '{') {
      int depth = 1;
      std::size_t start = pos_ + 1;
      std::size_t j = start;
      while (j < text_.size() && depth > 0) {
        if (text_[j] == '{') {
          ++depth;
        } else if (text_[j] == '}') {
          --depth;
          if (depth == 0) {
            break;
          }
        }
        ++j;
      }
      if (depth != 0) {
        return Result::Error("missing close-brace in expression");
      }
      std::string text(text_.substr(start, j - start));
      pos_ = j + 1;
      if (!ParseNumber(text, out)) {
        *out = Value::Str(std::move(text));
      }
      return Result::Ok();
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return ParseNumberToken(out);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ParseFunction(out);
    }
    return Syntax();
  }

  Result ParseNumberToken(Value* out) {
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    errno = 0;
    long i = std::strtol(start, &end, 0);
    const char* int_end = end;
    errno = 0;
    char* dend = nullptr;
    double d = std::strtod(start, &dend);
    if (dend > int_end) {
      *out = Value::Double(d);
      pos_ += static_cast<std::size_t>(dend - start);
      return Result::Ok();
    }
    if (int_end == start) {
      return Syntax();
    }
    *out = Value::Int(i);
    pos_ += static_cast<std::size_t>(int_end - start);
    return Result::Ok();
  }

  Result ParseFunction(Value* out) {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    std::string name(text_.substr(start, pos_ - start));
    SkipSpace();
    if (!Consume("(")) {
      // Bare identifiers: boolean literals are accepted, anything else is an
      // error (Tcl requires quoting for strings in expressions).
      if (name == "true" || name == "yes" || name == "on") {
        *out = Value::Int(1);
        return Result::Ok();
      }
      if (name == "false" || name == "no" || name == "off") {
        *out = Value::Int(0);
        return Result::Ok();
      }
      return Result::Error("syntax error in expression: unexpected \"" + name + "\"");
    }
    std::vector<Value> args;
    SkipSpace();
    if (!Peek(")")) {
      for (;;) {
        Value v;
        Result r = ParseTernary(&v);
        if (r.code == Status::kError) {
          return r;
        }
        args.push_back(std::move(v));
        SkipSpace();
        if (Consume(",")) {
          continue;
        }
        break;
      }
    }
    if (!Consume(")")) {
      return Result::Error("missing ) in expression function call");
    }
    return ApplyFunction(name, args, out);
  }

  Result ApplyFunction(const std::string& name, const std::vector<Value>& args, Value* out) {
    auto need = [&](std::size_t n) { return args.size() == n; };
    auto arg_num = [&](std::size_t idx, double* v) {
      if (!args[idx].numeric()) {
        return false;
      }
      *v = args[idx].AsDouble();
      return true;
    };
    if (name == "abs" && need(1)) {
      if (args[0].kind == Value::Kind::kInt) {
        *out = Value::Int(std::labs(args[0].i));
        return Result::Ok();
      }
      double v = 0;
      if (!arg_num(0, &v)) {
        return Result::Error("argument to math function didn't have numeric value");
      }
      *out = Value::Double(std::fabs(v));
      return Result::Ok();
    }
    if (name == "int" && need(1)) {
      double v = 0;
      if (!arg_num(0, &v)) {
        return Result::Error("argument to math function didn't have numeric value");
      }
      *out = Value::Int(static_cast<long>(v));
      return Result::Ok();
    }
    if (name == "round" && need(1)) {
      double v = 0;
      if (!arg_num(0, &v)) {
        return Result::Error("argument to math function didn't have numeric value");
      }
      *out = Value::Int(static_cast<long>(v < 0 ? v - 0.5 : v + 0.5));
      return Result::Ok();
    }
    if (name == "double" && need(1)) {
      double v = 0;
      if (!arg_num(0, &v)) {
        return Result::Error("argument to math function didn't have numeric value");
      }
      *out = Value::Double(v);
      return Result::Ok();
    }
    struct Unary {
      const char* name;
      double (*fn)(double);
    };
    static const Unary kUnary[] = {
        {"sqrt", std::sqrt}, {"sin", std::sin},     {"cos", std::cos},   {"tan", std::tan},
        {"asin", std::asin}, {"acos", std::acos},   {"atan", std::atan}, {"exp", std::exp},
        {"log", std::log},   {"log10", std::log10}, {"sinh", std::sinh}, {"cosh", std::cosh},
        {"tanh", std::tanh}, {"floor", std::floor}, {"ceil", std::ceil},
    };
    for (const Unary& u : kUnary) {
      if (name == u.name) {
        if (!need(1)) {
          return Result::Error("too many arguments for math function");
        }
        double v = 0;
        if (!arg_num(0, &v)) {
          return Result::Error("argument to math function didn't have numeric value");
        }
        *out = Value::Double(u.fn(v));
        return Result::Ok();
      }
    }
    if ((name == "pow" || name == "atan2" || name == "fmod" || name == "hypot") && need(2)) {
      double a = 0;
      double b = 0;
      if (!arg_num(0, &a) || !arg_num(1, &b)) {
        return Result::Error("argument to math function didn't have numeric value");
      }
      double v = 0;
      if (name == "pow") {
        v = std::pow(a, b);
      } else if (name == "atan2") {
        v = std::atan2(a, b);
      } else if (name == "fmod") {
        v = std::fmod(a, b);
      } else {
        v = std::hypot(a, b);
      }
      *out = Value::Double(v);
      return Result::Ok();
    }
    return Result::Error("unknown math function \"" + name + "\"");
  }

  Interp& interp_;
  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result Interp::EvalExpr(std::string_view expression) {
  ExprParser parser(*this, expression);
  Value value;
  Result r = parser.Run(&value);
  if (r.code == Status::kError) {
    return r;
  }
  return Result::Ok(value.ToString());
}

Result Interp::ExprBoolean(std::string_view expression, bool* value) {
  Result r = EvalExpr(expression);
  if (r.code == Status::kError) {
    return r;
  }
  const std::string& text = r.value;
  if (text == "1") {
    *value = true;
    return Result::Ok();
  }
  if (text == "0" || text.empty()) {
    *value = false;
    return Result::Ok();
  }
  std::string lower;
  for (char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "true" || lower == "yes" || lower == "on") {
    *value = true;
    return Result::Ok();
  }
  if (lower == "false" || lower == "no" || lower == "off") {
    *value = false;
    return Result::Ok();
  }
  char* end = nullptr;
  double d = std::strtod(text.c_str(), &end);
  if (end != text.c_str() && *end == '\0') {
    *value = d != 0.0;
    return Result::Ok();
  }
  return Result::Error("expected boolean value but got \"" + text + "\"");
}

}  // namespace wtcl
