// The `expr` evaluator: Tcl expression syntax with long/double/string
// operands, the full C operator set Tcl supports (including ?: and && / ||),
// and math functions.
//
// Two engines share one set of evaluation helpers:
//   - A compile-once AST engine: expressions parse once into an ExprNode
//     tree (operands are kConst or kSubst substitution programs from
//     src/tcl/script.h), memoized in a content-keyed LRU cache. Loop tests
//     are the hottest expressions in the tree, so this is the hot path.
//   - The legacy interleaved parser (ExprParser), kept as the fallback for
//     structurally invalid expressions: it evaluates while parsing, so for
//     malformed input the order of substitution side effects vs. the syntax
//     error is observable — the fallback preserves it exactly. A failed
//     compile is cached too (as a null AST), so repeated evaluation of a
//     malformed expression does not re-attempt compilation.
#include <cctype>
#include <climits>
#include <cmath>
#include <memory>
#include <string>
#include <variant>

#include "src/obs/obs.h"
#include "src/tcl/interp.h"
#include "src/tcl/interp_internal.h"
#include "src/tcl/script.h"

namespace wtcl {

namespace {

// Expr AST cache traffic (the script cache reports from interp.cc).
wobs::Counter g_expr_cache_hits("tcl.expr.cache.hits");
wobs::Counter g_expr_cache_misses("tcl.expr.cache.misses");
wobs::Counter g_expr_cache_evictions("tcl.expr.cache.evictions");

// Expressions are short (loop tests, callback conditions); anything larger
// than this is evaluated without being retained.
constexpr std::size_t kExprCacheCapacity = 512;
constexpr std::size_t kExprCacheMaxKeyBytes = 16 * 1024;

struct Operand {
  enum class Kind { kInt, kDouble, kString };
  Kind kind = Kind::kInt;
  long i = 0;
  double d = 0.0;
  std::string s;
  // Leading-zero digit run ("08"): comparison operators fall back to string
  // comparison like any non-numeric operand, but arithmetic must complain
  // about the invalid octal specifically, so the classification is kept.
  bool bad_octal = false;

  static Operand Int(long v) {
    Operand value;
    value.kind = Kind::kInt;
    value.i = v;
    return value;
  }
  static Operand Double(double v) {
    Operand value;
    value.kind = Kind::kDouble;
    value.d = v;
    return value;
  }
  static Operand Str(std::string v) {
    Operand value;
    value.kind = Kind::kString;
    value.s = std::move(v);
    return value;
  }

  bool numeric() const { return kind != Kind::kString; }
  double AsDouble() const { return kind == Kind::kInt ? static_cast<double>(i) : d; }

  std::string ToString() const {
    switch (kind) {
      case Kind::kInt:
        return std::to_string(i);
      case Kind::kDouble:
        return FormatDouble(d);
      case Kind::kString:
        return s;
    }
    return "";
  }
};

// Integer wrap helpers: signed overflow is UB, so arithmetic that may wrap
// goes through unsigned, which is defined to wrap (and matches the
// two's-complement results the interpreter always produced in practice).
long WrapAdd(long a, long b) {
  return static_cast<long>(static_cast<unsigned long>(a) + static_cast<unsigned long>(b));
}
long WrapSub(long a, long b) {
  return static_cast<long>(static_cast<unsigned long>(a) - static_cast<unsigned long>(b));
}
long WrapMul(long a, long b) {
  return static_cast<long>(static_cast<unsigned long>(a) * static_cast<unsigned long>(b));
}
long WrapNeg(long v) { return static_cast<long>(0ul - static_cast<unsigned long>(v)); }

constexpr unsigned long kShiftMask = sizeof(long) * 8 - 1;
long ShiftLeft(long x, long y) {
  return static_cast<long>(static_cast<unsigned long>(x)
                           << (static_cast<unsigned long>(y) & kShiftMask));
}
long ShiftRight(long x, long y) { return x >> (static_cast<unsigned long>(y) & kShiftMask); }

// Whether `v` can be cast to long without UB; the valid window is
// [-2^63, 2^63), both ends exactly representable as doubles.
bool FitsLong(double v) {
  return v >= static_cast<double>(LONG_MIN) && v < -static_cast<double>(LONG_MIN);
}

// Makes an operand from evaluated text via the central classifier. Digit
// runs that fail the integer parse ("08") become flagged string operands —
// comparisons string-compare them, arithmetic rejects them by name (the
// Tcl "can't use invalid octal number" contract). Out-of-range integers are
// hard errors (no bignum promotion — a documented deviation).
Result OperandFromText(std::string text, Operand* out) {
  long i = 0;
  double d = 0;
  NumberKind kind = ClassifyNumber(text, &i, &d);
  switch (kind) {
    case NumberKind::kInt:
      *out = Operand::Int(i);
      out->s = std::move(text);  // spelling, for string-compare fallback
      return Result::Ok();
    case NumberKind::kDouble:
      *out = Operand::Double(d);
      out->s = std::move(text);
      return Result::Ok();
    case NumberKind::kOverflow:
      return Result::Error(IntegerParseError(text, kind));
    case NumberKind::kBadInteger:
      *out = Operand::Str(std::move(text));
      out->bad_octal = true;
      return Result::Ok();
    default:
      *out = Operand::Str(std::move(text));
      return Result::Ok();
  }
}

// Same contract, reading the cached classification on a typed Value (the
// `$name` operand fast path) instead of reparsing its string.
Result OperandFromValue(const Value& value, Operand* out) {
  long i = 0;
  if (value.GetInt(&i)) {
    *out = Operand::Int(i);
    out->s = value.String();  // spelling, for string-compare fallback
    return Result::Ok();
  }
  NumberKind kind = value.Classify();
  if (kind == NumberKind::kDouble) {
    double d = 0;
    value.GetDouble(&d);
    *out = Operand::Double(d);
    out->s = value.String();
    return Result::Ok();
  }
  if (kind == NumberKind::kOverflow) {
    return Result::Error(IntegerParseError(value.String(), kind));
  }
  *out = Operand::Str(value.String());
  if (kind == NumberKind::kBadInteger) out->bad_octal = true;
  return Result::Ok();
}

// --- Shared evaluation helpers (both engines) --------------------------------

Result Truth(const Operand& v, bool* out) {
  switch (v.kind) {
    case Operand::Kind::kInt:
      *out = v.i != 0;
      return Result::Ok();
    case Operand::Kind::kDouble:
      *out = v.d != 0.0;
      return Result::Ok();
    case Operand::Kind::kString: {
      std::string lower;
      for (char c : v.s) {
        lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      }
      if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") {
        *out = true;
        return Result::Ok();
      }
      if (lower == "false" || lower == "no" || lower == "off" || lower == "0") {
        *out = false;
        return Result::Ok();
      }
      long i = 0;
      double d = 0;
      NumberKind kind = ClassifyNumber(v.s, &i, &d);
      if (kind == NumberKind::kInt) {
        *out = i != 0;
        return Result::Ok();
      }
      if (kind == NumberKind::kDouble) {
        *out = d != 0.0;
        return Result::Ok();
      }
      std::string message = "expected boolean value but got \"" + v.s + "\"";
      if (kind == NumberKind::kBadInteger) {
        message += " (looks like invalid octal number)";
      }
      return Result::Error(message);
    }
  }
  return Result::Ok();
}

Result RequireInts(const Operand& a, const Operand& b, long* x, long* y) {
  if (a.kind != Operand::Kind::kInt || b.kind != Operand::Kind::kInt) {
    return Result::Error("can't use non-integer value as operand of bitwise operator");
  }
  *x = a.i;
  *y = b.i;
  return Result::Ok();
}

// Compares a and b: -1, 0, 1. Numeric when both numeric, else string.
int Compare(const Operand& a, const Operand& b) {
  if (a.numeric() && b.numeric()) {
    if (a.kind == Operand::Kind::kInt && b.kind == Operand::Kind::kInt) {
      if (a.i < b.i) {
        return -1;
      }
      return a.i > b.i ? 1 : 0;
    }
    double x = a.AsDouble();
    double y = b.AsDouble();
    if (x < y) {
      return -1;
    }
    return x > y ? 1 : 0;
  }
  // String comparison against a numeric operand uses the operand's original
  // spelling when one was preserved ("0777", not "511") — Tcl compares the
  // object's string rep, which keeps the source text.
  std::string x = a.s.empty() ? a.ToString() : a.s;
  std::string y = b.s.empty() ? b.ToString() : b.s;
  int c = x.compare(y);
  if (c < 0) {
    return -1;
  }
  return c > 0 ? 1 : 0;
}

Result Arith(char op, const Operand& a, const Operand& b, Operand* out) {
  if (!a.numeric() || !b.numeric()) {
    const char* what = (a.bad_octal || b.bad_octal) ? "invalid octal number"
                                                    : "non-numeric string";
    return Result::Error(std::string("can't use ") + what +
                         " as operand of \"" + op + "\"");
  }
  if (a.kind == Operand::Kind::kInt && b.kind == Operand::Kind::kInt) {
    switch (op) {
      case '+':
        *out = Operand::Int(WrapAdd(a.i, b.i));
        return Result::Ok();
      case '-':
        *out = Operand::Int(WrapSub(a.i, b.i));
        return Result::Ok();
      case '*':
        *out = Operand::Int(WrapMul(a.i, b.i));
        return Result::Ok();
      case '/':
        if (b.i == 0) {
          return Result::Error("divide by zero");
        }
        if (b.i == -1) {
          // Divides exactly; also sidesteps the LONG_MIN / -1 trap.
          *out = Operand::Int(WrapNeg(a.i));
          return Result::Ok();
        }
        {
          // Tcl floors integer division toward negative infinity.
          long q = a.i / b.i;
          if ((a.i % b.i != 0) && ((a.i < 0) != (b.i < 0))) {
            --q;
          }
          *out = Operand::Int(q);
        }
        return Result::Ok();
      case '%':
        if (b.i == 0) {
          return Result::Error("divide by zero");
        }
        if (b.i == -1) {
          *out = Operand::Int(0);
          return Result::Ok();
        }
        {
          long m = a.i % b.i;
          if (m != 0 && ((a.i < 0) != (b.i < 0))) {
            m += b.i;
          }
          *out = Operand::Int(m);
        }
        return Result::Ok();
    }
  }
  double x = a.AsDouble();
  double y = b.AsDouble();
  switch (op) {
    case '+':
      *out = Operand::Double(x + y);
      return Result::Ok();
    case '-':
      *out = Operand::Double(x - y);
      return Result::Ok();
    case '*':
      *out = Operand::Double(x * y);
      return Result::Ok();
    case '/':
      if (y == 0.0) {
        return Result::Error("divide by zero");
      }
      *out = Operand::Double(x / y);
      return Result::Ok();
    case '%':
      return Result::Error("can't use floating-point value as operand of \"%\"");
  }
  return Result::Error("syntax error in expression");  // unreachable
}

Result ApplyFunction(const std::string& name, const std::vector<Operand>& args, Operand* out) {
  auto need = [&](std::size_t n) { return args.size() == n; };
  auto arg_num = [&](std::size_t idx, double* v) {
    if (!args[idx].numeric()) {
      return false;
    }
    *v = args[idx].AsDouble();
    return true;
  };
  if (name == "abs" && need(1)) {
    if (args[0].kind == Operand::Kind::kInt) {
      *out = Operand::Int(args[0].i < 0 ? WrapNeg(args[0].i) : args[0].i);
      return Result::Ok();
    }
    double v = 0;
    if (!arg_num(0, &v)) {
      return Result::Error("argument to math function didn't have numeric value");
    }
    *out = Operand::Double(std::fabs(v));
    return Result::Ok();
  }
  if (name == "int" && need(1)) {
    double v = 0;
    if (!arg_num(0, &v)) {
      return Result::Error("argument to math function didn't have numeric value");
    }
    if (!FitsLong(v)) {
      return Result::Error("integer value too large to represent");
    }
    *out = Operand::Int(static_cast<long>(v));
    return Result::Ok();
  }
  if (name == "round" && need(1)) {
    double v = 0;
    if (!arg_num(0, &v)) {
      return Result::Error("argument to math function didn't have numeric value");
    }
    double rounded = v < 0 ? v - 0.5 : v + 0.5;
    if (!FitsLong(rounded)) {
      return Result::Error("integer value too large to represent");
    }
    *out = Operand::Int(static_cast<long>(rounded));
    return Result::Ok();
  }
  if (name == "double" && need(1)) {
    double v = 0;
    if (!arg_num(0, &v)) {
      return Result::Error("argument to math function didn't have numeric value");
    }
    *out = Operand::Double(v);
    return Result::Ok();
  }
  struct Unary {
    const char* name;
    double (*fn)(double);
  };
  static const Unary kUnary[] = {
      {"sqrt", std::sqrt}, {"sin", std::sin},     {"cos", std::cos},   {"tan", std::tan},
      {"asin", std::asin}, {"acos", std::acos},   {"atan", std::atan}, {"exp", std::exp},
      {"log", std::log},   {"log10", std::log10}, {"sinh", std::sinh}, {"cosh", std::cosh},
      {"tanh", std::tanh}, {"floor", std::floor}, {"ceil", std::ceil},
  };
  for (const Unary& u : kUnary) {
    if (name == u.name) {
      if (!need(1)) {
        return Result::Error("too many arguments for math function");
      }
      double v = 0;
      if (!arg_num(0, &v)) {
        return Result::Error("argument to math function didn't have numeric value");
      }
      *out = Operand::Double(u.fn(v));
      return Result::Ok();
    }
  }
  if ((name == "pow" || name == "atan2" || name == "fmod" || name == "hypot") && need(2)) {
    double a = 0;
    double b = 0;
    if (!arg_num(0, &a) || !arg_num(1, &b)) {
      return Result::Error("argument to math function didn't have numeric value");
    }
    double v = 0;
    if (name == "pow") {
      v = std::pow(a, b);
    } else if (name == "atan2") {
      v = std::atan2(a, b);
    } else if (name == "fmod") {
      v = std::fmod(a, b);
    } else {
      v = std::hypot(a, b);
    }
    *out = Operand::Double(v);
    return Result::Ok();
  }
  return Result::Error("unknown math function \"" + name + "\"");
}

// --- Legacy interleaved parser (fallback engine) -----------------------------

class ExprParser {
 public:
  ExprParser(Interp& interp, std::string_view text) : interp_(interp), text_(text) {}

  Result Run(Operand* out) {
    Result r = ParseTernary(out);
    if (r.code == Status::kError) {
      return r;
    }
    SkipSpace();
    if (pos_ < text_.size()) {
      return Syntax();
    }
    return Result::Ok();
  }

 private:
  Result Syntax() {
    return Result::Error("syntax error in expression \"" + std::string(text_) + "\"");
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(std::string_view token) {
    SkipSpace();
    return text_.substr(pos_, token.size()) == token;
  }

  bool Consume(std::string_view token) {
    if (Peek(token)) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  // Precedence climbing, lowest first: ?: || && | ^ & ==/!= relational
  // shifts additive multiplicative unary primary.

  Result ParseTernary(Operand* out) {
    Result r = ParseOr(out);
    if (r.code == Status::kError) {
      return r;
    }
    SkipSpace();
    if (Consume("?")) {
      bool cond = false;
      Result t = Truth(*out, &cond);
      if (t.code == Status::kError) {
        return t;
      }
      Operand a;
      Operand b;
      r = ParseTernary(&a);
      if (r.code == Status::kError) {
        return r;
      }
      SkipSpace();
      if (!Consume(":")) {
        return Syntax();
      }
      r = ParseTernary(&b);
      if (r.code == Status::kError) {
        return r;
      }
      *out = cond ? a : b;
    }
    return Result::Ok();
  }

  Result ParseOr(Operand* out) {
    Result r = ParseAnd(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (text_.substr(pos_, 2) == "||") {
        pos_ += 2;
        bool left = false;
        Result t = Truth(*out, &left);
        if (t.code == Status::kError) {
          return t;
        }
        Operand rhs;
        r = ParseAnd(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        bool right = false;
        t = Truth(rhs, &right);
        if (t.code == Status::kError) {
          return t;
        }
        *out = Operand::Int(left || right ? 1 : 0);
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseAnd(Operand* out) {
    Result r = ParseBitOr(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (text_.substr(pos_, 2) == "&&") {
        pos_ += 2;
        bool left = false;
        Result t = Truth(*out, &left);
        if (t.code == Status::kError) {
          return t;
        }
        Operand rhs;
        r = ParseBitOr(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        bool right = false;
        t = Truth(rhs, &right);
        if (t.code == Status::kError) {
          return t;
        }
        *out = Operand::Int(left && right ? 1 : 0);
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseBitOr(Operand* out) {
    Result r = ParseBitXor(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '|' &&
          (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '|')) {
        ++pos_;
        Operand rhs;
        r = ParseBitXor(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        long x = 0;
        long y = 0;
        Result ir = RequireInts(*out, rhs, &x, &y);
        if (ir.code == Status::kError) {
          return ir;
        }
        *out = Operand::Int(x | y);
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseBitXor(Operand* out) {
    Result r = ParseBitAnd(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '^') {
        ++pos_;
        Operand rhs;
        r = ParseBitAnd(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        long x = 0;
        long y = 0;
        Result ir = RequireInts(*out, rhs, &x, &y);
        if (ir.code == Status::kError) {
          return ir;
        }
        *out = Operand::Int(x ^ y);
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseBitAnd(Operand* out) {
    Result r = ParseEquality(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '&' &&
          (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '&')) {
        ++pos_;
        Operand rhs;
        r = ParseEquality(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        long x = 0;
        long y = 0;
        Result ir = RequireInts(*out, rhs, &x, &y);
        if (ir.code == Status::kError) {
          return ir;
        }
        *out = Operand::Int(x & y);
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseEquality(Operand* out) {
    Result r = ParseRelational(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      std::string_view two = text_.substr(pos_, 2);
      if (two == "==" || two == "!=") {
        pos_ += 2;
        Operand rhs;
        r = ParseRelational(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        int c = Compare(*out, rhs);
        *out = Operand::Int(two == "==" ? (c == 0) : (c != 0));
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseRelational(Operand* out) {
    Result r = ParseShift(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      std::string_view two = text_.substr(pos_, 2);
      if (two == "<=" || two == ">=") {
        pos_ += 2;
        Operand rhs;
        r = ParseShift(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        int c = Compare(*out, rhs);
        *out = Operand::Int(two == "<=" ? (c <= 0) : (c >= 0));
      } else if (pos_ < text_.size() && (text_[pos_] == '<' || text_[pos_] == '>') &&
                 (pos_ + 1 >= text_.size() || text_[pos_ + 1] != text_[pos_])) {
        char op = text_[pos_];
        ++pos_;
        Operand rhs;
        r = ParseShift(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        int c = Compare(*out, rhs);
        *out = Operand::Int(op == '<' ? (c < 0) : (c > 0));
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseShift(Operand* out) {
    Result r = ParseAdditive(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      std::string_view two = text_.substr(pos_, 2);
      if (two == "<<" || two == ">>") {
        pos_ += 2;
        Operand rhs;
        r = ParseAdditive(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        long x = 0;
        long y = 0;
        Result ir = RequireInts(*out, rhs, &x, &y);
        if (ir.code == Status::kError) {
          return ir;
        }
        *out = Operand::Int(two == "<<" ? ShiftLeft(x, y) : ShiftRight(x, y));
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseAdditive(Operand* out) {
    Result r = ParseMultiplicative(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        char op = text_[pos_];
        ++pos_;
        Operand rhs;
        r = ParseMultiplicative(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        Result ar = Arith(op, *out, rhs, out);
        if (ar.code == Status::kError) {
          return ar;
        }
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseMultiplicative(Operand* out) {
    Result r = ParseUnary(out);
    if (r.code == Status::kError) {
      return r;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() &&
          (text_[pos_] == '*' || text_[pos_] == '/' || text_[pos_] == '%')) {
        char op = text_[pos_];
        ++pos_;
        Operand rhs;
        r = ParseUnary(&rhs);
        if (r.code == Status::kError) {
          return r;
        }
        Result ar = Arith(op, *out, rhs, out);
        if (ar.code == Status::kError) {
          return ar;
        }
      } else {
        return Result::Ok();
      }
    }
  }

  Result ParseUnary(Operand* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Syntax();
    }
    char c = text_[pos_];
    if (c == '-' || c == '+' || c == '!' || c == '~') {
      ++pos_;
      Operand v;
      Result r = ParseUnary(&v);
      if (r.code == Status::kError) {
        return r;
      }
      switch (c) {
        case '-':
          if (v.kind == Operand::Kind::kInt) {
            *out = Operand::Int(WrapNeg(v.i));
          } else if (v.kind == Operand::Kind::kDouble) {
            *out = Operand::Double(-v.d);
          } else {
            return Result::Error("can't use non-numeric string as operand of \"-\"");
          }
          return Result::Ok();
        case '+':
          if (!v.numeric()) {
            return Result::Error("can't use non-numeric string as operand of \"+\"");
          }
          *out = v;
          return Result::Ok();
        case '!': {
          bool truth = false;
          Result t = Truth(v, &truth);
          if (t.code == Status::kError) {
            return t;
          }
          *out = Operand::Int(truth ? 0 : 1);
          return Result::Ok();
        }
        case '~':
          if (v.kind != Operand::Kind::kInt) {
            return Result::Error("can't use non-integer value as operand of \"~\"");
          }
          *out = Operand::Int(~v.i);
          return Result::Ok();
      }
    }
    return ParsePrimary(out);
  }

  Result ParsePrimary(Operand* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Syntax();
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      Result r = ParseTernary(out);
      if (r.code == Status::kError) {
        return r;
      }
      SkipSpace();
      if (!Consume(")")) {
        return Result::Error("unbalanced parentheses in expression");
      }
      return Result::Ok();
    }
    if (c == '$') {
      std::string text;
      Result r = InterpInternal::ParseVariable(interp_, text_, &pos_, &text);
      if (r.code == Status::kError) {
        return r;
      }
      return OperandFromText(std::move(text), out);
    }
    if (c == '[') {
      std::string text;
      Result r = InterpInternal::ParseBracket(interp_, text_, &pos_, &text);
      if (r.code == Status::kError) {
        return r;
      }
      return OperandFromText(std::move(text), out);
    }
    if (c == '"') {
      // Quoted string with substitutions.
      ++pos_;
      std::string text;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        char qc = text_[pos_];
        if (qc == '\\' && pos_ + 1 < text_.size()) {
          // Reuse the interp's backslash handling via SubstituteWord on the
          // two-character sequence would be heavyweight; handle inline.
          std::string piece = std::string(text_.substr(pos_, 2));
          Result sub = interp_.SubstituteWord(piece);
          if (sub.code == Status::kError) {
            return sub;
          }
          text += sub.value;
          pos_ += 2;
        } else if (qc == '$') {
          Result r = InterpInternal::ParseVariable(interp_, text_, &pos_, &text);
          if (r.code == Status::kError) {
            return r;
          }
        } else if (qc == '[') {
          Result r = InterpInternal::ParseBracket(interp_, text_, &pos_, &text);
          if (r.code == Status::kError) {
            return r;
          }
        } else {
          text.push_back(qc);
          ++pos_;
        }
      }
      if (pos_ >= text_.size()) {
        return Result::Error("missing \" in expression");
      }
      ++pos_;
      *out = Operand::Str(std::move(text));
      return Result::Ok();
    }
    if (c == '{') {
      int depth = 1;
      std::size_t start = pos_ + 1;
      std::size_t j = start;
      while (j < text_.size() && depth > 0) {
        if (text_[j] == '{') {
          ++depth;
        } else if (text_[j] == '}') {
          --depth;
          if (depth == 0) {
            break;
          }
        }
        ++j;
      }
      if (depth != 0) {
        return Result::Error("missing close-brace in expression");
      }
      std::string text(text_.substr(start, j - start));
      pos_ = j + 1;
      return OperandFromText(std::move(text), out);
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return ParseNumberToken(out);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return ParseFunction(out);
    }
    return Syntax();
  }

  Result ParseNumberToken(Operand* out) {
    std::size_t start = pos_;
    long i = 0;
    double d = 0;
    NumberKind kind = ScanNumberPrefix(text_.data(), &pos_, &i, &d);
    if (kind == NumberKind::kInt) {
      *out = Operand::Int(i);
      out->s = std::string(text_.substr(start, pos_ - start));
      return Result::Ok();
    }
    if (kind == NumberKind::kDouble) {
      *out = Operand::Double(d);
      out->s = std::string(text_.substr(start, pos_ - start));
      return Result::Ok();
    }
    if (kind == NumberKind::kNotNumeric) {
      return Syntax();
    }
    std::string token(text_.substr(start, pos_ - start));
    return Result::Error(IntegerParseError(token, kind));
  }

  Result ParseFunction(Operand* out) {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    std::string name(text_.substr(start, pos_ - start));
    SkipSpace();
    if (!Consume("(")) {
      // Bare identifiers: boolean literals are accepted, anything else is an
      // error (Tcl requires quoting for strings in expressions).
      if (name == "true" || name == "yes" || name == "on") {
        *out = Operand::Int(1);
        return Result::Ok();
      }
      if (name == "false" || name == "no" || name == "off") {
        *out = Operand::Int(0);
        return Result::Ok();
      }
      return Result::Error("syntax error in expression: unexpected \"" + name + "\"");
    }
    std::vector<Operand> args;
    SkipSpace();
    if (!Peek(")")) {
      for (;;) {
        Operand v;
        Result r = ParseTernary(&v);
        if (r.code == Status::kError) {
          return r;
        }
        args.push_back(std::move(v));
        SkipSpace();
        if (Consume(",")) {
          continue;
        }
        break;
      }
    }
    if (!Consume(")")) {
      return Result::Error("missing ) in expression function call");
    }
    return ApplyFunction(name, args, out);
  }

  Interp& interp_;
  std::string_view text_;
  std::size_t pos_ = 0;
};

// --- Compile-once AST engine -------------------------------------------------

// Binary operators that always evaluate both operands (matching the legacy
// engine, which has no short-circuit evaluation either: && / || evaluate
// both sides and only combine the truth values).
enum class BinOp {
  kBitOr,
  kBitXor,
  kBitAnd,
  kEq,
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kShl,
  kShr,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
};

struct ExprNode {
  enum class Kind {
    kConst,    // `constant`
    kSubst,    // `segments` (+ force_string for quoted strings)
    kUnary,    // `op` applied to children[0]
    kBinary,   // `bin` over children[0], children[1]
    kAnd,      // truth(children[0]) && truth(children[1]), both evaluated
    kOr,       // truth(children[0]) || truth(children[1]), both evaluated
    kTernary,  // children[0] ? children[1] : children[2], both arms evaluated
    kFunc,     // func_name applied to children
  };
  Kind kind = Kind::kConst;
  Operand constant;                     // kConst
  std::vector<WordSegment> segments;  // kSubst
  // Quoted strings are string values even when they look numeric; $var and
  // [cmd] results are re-parsed as numbers at evaluation time.
  bool force_string = false;
  char op = 0;                  // kUnary: - + ! ~
  BinOp bin = BinOp::kBitOr;    // kBinary
  std::string func_name;        // kFunc
  std::vector<std::unique_ptr<ExprNode>> children;
};

using NodePtr = std::unique_ptr<ExprNode>;

// A compiled expression. A null root marks an expression the compiler could
// not handle structurally: evaluation falls back to the legacy interleaved
// parser on `source` (preserving its exact error/side-effect ordering), and
// the null is cached so the compile is not re-attempted.
struct ExprAst {
  NodePtr root;
  std::string source;  // retained only when root is null (fallback input)
};

// Structural compiler: mirrors ExprParser's grammar exactly but builds
// nodes instead of evaluating. Any structural error returns null (fallback);
// it must never accept an expression the legacy parser would reject.
class ExprCompiler {
 public:
  explicit ExprCompiler(std::string_view text) : text_(text) {}

  NodePtr Run() {
    NodePtr root = CompileTernary();
    if (root == nullptr) {
      return nullptr;
    }
    SkipSpace();
    if (pos_ < text_.size()) {
      return nullptr;  // trailing junk: legacy reports the syntax error
    }
    return root;
  }

 private:
  static NodePtr MakeConst(Operand v) {
    auto node = std::make_unique<ExprNode>();
    node->kind = ExprNode::Kind::kConst;
    node->constant = std::move(v);
    return node;
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(std::string_view token) {
    SkipSpace();
    return text_.substr(pos_, token.size()) == token;
  }

  bool Consume(std::string_view token) {
    if (Peek(token)) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  NodePtr CompileTernary() {
    NodePtr cond = CompileOr();
    if (cond == nullptr) {
      return nullptr;
    }
    SkipSpace();
    if (Consume("?")) {
      NodePtr a = CompileTernary();
      if (a == nullptr) {
        return nullptr;
      }
      SkipSpace();
      if (!Consume(":")) {
        return nullptr;
      }
      NodePtr b = CompileTernary();
      if (b == nullptr) {
        return nullptr;
      }
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kTernary;
      node->children.push_back(std::move(cond));
      node->children.push_back(std::move(a));
      node->children.push_back(std::move(b));
      return node;
    }
    return cond;
  }

  NodePtr CompileOr() {
    NodePtr left = CompileAnd();
    if (left == nullptr) {
      return nullptr;
    }
    for (;;) {
      SkipSpace();
      if (text_.substr(pos_, 2) == "||") {
        pos_ += 2;
        NodePtr right = CompileAnd();
        if (right == nullptr) {
          return nullptr;
        }
        auto node = std::make_unique<ExprNode>();
        node->kind = ExprNode::Kind::kOr;
        node->children.push_back(std::move(left));
        node->children.push_back(std::move(right));
        left = std::move(node);
      } else {
        return left;
      }
    }
  }

  NodePtr CompileAnd() {
    NodePtr left = CompileBitOr();
    if (left == nullptr) {
      return nullptr;
    }
    for (;;) {
      SkipSpace();
      if (text_.substr(pos_, 2) == "&&") {
        pos_ += 2;
        NodePtr right = CompileBitOr();
        if (right == nullptr) {
          return nullptr;
        }
        auto node = std::make_unique<ExprNode>();
        node->kind = ExprNode::Kind::kAnd;
        node->children.push_back(std::move(left));
        node->children.push_back(std::move(right));
        left = std::move(node);
      } else {
        return left;
      }
    }
  }

  NodePtr MakeBinary(BinOp op, NodePtr left, NodePtr right) {
    auto node = std::make_unique<ExprNode>();
    node->kind = ExprNode::Kind::kBinary;
    node->bin = op;
    node->children.push_back(std::move(left));
    node->children.push_back(std::move(right));
    return node;
  }

  NodePtr CompileBitOr() {
    NodePtr left = CompileBitXor();
    if (left == nullptr) {
      return nullptr;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '|' &&
          (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '|')) {
        ++pos_;
        NodePtr right = CompileBitXor();
        if (right == nullptr) {
          return nullptr;
        }
        left = MakeBinary(BinOp::kBitOr, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  NodePtr CompileBitXor() {
    NodePtr left = CompileBitAnd();
    if (left == nullptr) {
      return nullptr;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '^') {
        ++pos_;
        NodePtr right = CompileBitAnd();
        if (right == nullptr) {
          return nullptr;
        }
        left = MakeBinary(BinOp::kBitXor, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  NodePtr CompileBitAnd() {
    NodePtr left = CompileEquality();
    if (left == nullptr) {
      return nullptr;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '&' &&
          (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '&')) {
        ++pos_;
        NodePtr right = CompileEquality();
        if (right == nullptr) {
          return nullptr;
        }
        left = MakeBinary(BinOp::kBitAnd, std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  NodePtr CompileEquality() {
    NodePtr left = CompileRelational();
    if (left == nullptr) {
      return nullptr;
    }
    for (;;) {
      SkipSpace();
      std::string_view two = text_.substr(pos_, 2);
      if (two == "==" || two == "!=") {
        pos_ += 2;
        NodePtr right = CompileRelational();
        if (right == nullptr) {
          return nullptr;
        }
        left = MakeBinary(two == "==" ? BinOp::kEq : BinOp::kNe, std::move(left),
                          std::move(right));
      } else {
        return left;
      }
    }
  }

  NodePtr CompileRelational() {
    NodePtr left = CompileShift();
    if (left == nullptr) {
      return nullptr;
    }
    for (;;) {
      SkipSpace();
      std::string_view two = text_.substr(pos_, 2);
      if (two == "<=" || two == ">=") {
        pos_ += 2;
        NodePtr right = CompileShift();
        if (right == nullptr) {
          return nullptr;
        }
        left = MakeBinary(two == "<=" ? BinOp::kLe : BinOp::kGe, std::move(left),
                          std::move(right));
      } else if (pos_ < text_.size() && (text_[pos_] == '<' || text_[pos_] == '>') &&
                 (pos_ + 1 >= text_.size() || text_[pos_ + 1] != text_[pos_])) {
        char op = text_[pos_];
        ++pos_;
        NodePtr right = CompileShift();
        if (right == nullptr) {
          return nullptr;
        }
        left = MakeBinary(op == '<' ? BinOp::kLt : BinOp::kGt, std::move(left),
                          std::move(right));
      } else {
        return left;
      }
    }
  }

  NodePtr CompileShift() {
    NodePtr left = CompileAdditive();
    if (left == nullptr) {
      return nullptr;
    }
    for (;;) {
      SkipSpace();
      std::string_view two = text_.substr(pos_, 2);
      if (two == "<<" || two == ">>") {
        pos_ += 2;
        NodePtr right = CompileAdditive();
        if (right == nullptr) {
          return nullptr;
        }
        left = MakeBinary(two == "<<" ? BinOp::kShl : BinOp::kShr, std::move(left),
                          std::move(right));
      } else {
        return left;
      }
    }
  }

  NodePtr CompileAdditive() {
    NodePtr left = CompileMultiplicative();
    if (left == nullptr) {
      return nullptr;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        char op = text_[pos_];
        ++pos_;
        NodePtr right = CompileMultiplicative();
        if (right == nullptr) {
          return nullptr;
        }
        left = MakeBinary(op == '+' ? BinOp::kAdd : BinOp::kSub, std::move(left),
                          std::move(right));
      } else {
        return left;
      }
    }
  }

  NodePtr CompileMultiplicative() {
    NodePtr left = CompileUnary();
    if (left == nullptr) {
      return nullptr;
    }
    for (;;) {
      SkipSpace();
      if (pos_ < text_.size() &&
          (text_[pos_] == '*' || text_[pos_] == '/' || text_[pos_] == '%')) {
        char op = text_[pos_];
        ++pos_;
        NodePtr right = CompileUnary();
        if (right == nullptr) {
          return nullptr;
        }
        left = MakeBinary(op == '*' ? BinOp::kMul : (op == '/' ? BinOp::kDiv : BinOp::kMod),
                          std::move(left), std::move(right));
      } else {
        return left;
      }
    }
  }

  NodePtr CompileUnary() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return nullptr;
    }
    char c = text_[pos_];
    if (c == '-' || c == '+' || c == '!' || c == '~') {
      ++pos_;
      NodePtr operand = CompileUnary();
      if (operand == nullptr) {
        return nullptr;
      }
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kUnary;
      node->op = c;
      node->children.push_back(std::move(operand));
      return node;
    }
    return CompilePrimary();
  }

  NodePtr CompilePrimary() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return nullptr;
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      NodePtr inner = CompileTernary();
      if (inner == nullptr) {
        return nullptr;
      }
      SkipSpace();
      if (!Consume(")")) {
        return nullptr;
      }
      return inner;
    }
    if (c == '$') {
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kSubst;
      std::string error;
      if (!CompileVariableSegments(text_, &pos_, &node->segments, &error)) {
        return nullptr;
      }
      return node;
    }
    if (c == '[') {
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kSubst;
      std::string error;
      if (!CompileBracketSegments(text_, &pos_, &node->segments, &error)) {
        return nullptr;
      }
      return node;
    }
    if (c == '"') {
      // Quoted string with substitutions: always a string value.
      ++pos_;
      auto node = std::make_unique<ExprNode>();
      node->kind = ExprNode::Kind::kSubst;
      node->force_string = true;
      std::string pending;
      auto flush = [&]() {
        if (pending.empty()) {
          return;
        }
        WordSegment segment;
        segment.kind = WordSegment::Kind::kLiteral;
        segment.text = std::move(pending);
        pending.clear();
        node->segments.push_back(std::move(segment));
      };
      while (pos_ < text_.size() && text_[pos_] != '"') {
        char qc = text_[pos_];
        if (qc == '\\' && pos_ + 1 < text_.size()) {
          // The legacy engine substitutes exactly the two-character window
          // (so `\x41` is "x41", unlike script context); mirror that.
          std::string_view piece = text_.substr(pos_, 2);
          std::size_t piece_pos = 0;
          detail::SubstBackslash(piece, &piece_pos, &pending);
          pos_ += 2;
        } else if (qc == '$') {
          flush();
          std::string error;
          if (!CompileVariableSegments(text_, &pos_, &node->segments, &error)) {
            return nullptr;
          }
        } else if (qc == '[') {
          flush();
          std::string error;
          if (!CompileBracketSegments(text_, &pos_, &node->segments, &error)) {
            return nullptr;
          }
        } else {
          pending.push_back(qc);
          ++pos_;
        }
      }
      if (pos_ >= text_.size()) {
        return nullptr;
      }
      ++pos_;
      flush();
      return node;
    }
    if (c == '{') {
      int depth = 1;
      std::size_t start = pos_ + 1;
      std::size_t j = start;
      while (j < text_.size() && depth > 0) {
        if (text_[j] == '{') {
          ++depth;
        } else if (text_[j] == '}') {
          --depth;
          if (depth == 0) {
            break;
          }
        }
        ++j;
      }
      if (depth != 0) {
        return nullptr;
      }
      std::string text(text_.substr(start, j - start));
      pos_ = j + 1;
      long i = 0;
      double d = 0;
      NumberKind kind = ClassifyNumber(text, &i, &d);
      if (kind == NumberKind::kInt) {
        Operand value = Operand::Int(i);
        value.s = text;
        return MakeConst(std::move(value));
      }
      if (kind == NumberKind::kDouble) {
        Operand value = Operand::Double(d);
        value.s = text;
        return MakeConst(std::move(value));
      }
      if (kind != NumberKind::kNotNumeric) {
        return nullptr;  // "08"/overflow: the legacy re-parse reports it
      }
      return MakeConst(Operand::Str(std::move(text)));
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
      return CompileNumberToken();
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return CompileFunction();
    }
    return nullptr;
  }

  NodePtr CompileNumberToken() {
    std::size_t start = pos_;
    long i = 0;
    double d = 0;
    NumberKind kind = ScanNumberPrefix(text_.data(), &pos_, &i, &d);
    if (kind == NumberKind::kInt) {
      Operand value = Operand::Int(i);
      value.s = std::string(text_.substr(start, pos_ - start));
      return MakeConst(std::move(value));
    }
    if (kind == NumberKind::kDouble) {
      Operand value = Operand::Double(d);
      value.s = std::string(text_.substr(start, pos_ - start));
      return MakeConst(std::move(value));
    }
    return nullptr;  // malformed or out of range: the legacy engine reports it
  }

  NodePtr CompileFunction() {
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_')) {
      ++pos_;
    }
    std::string name(text_.substr(start, pos_ - start));
    SkipSpace();
    if (!Consume("(")) {
      if (name == "true" || name == "yes" || name == "on") {
        return MakeConst(Operand::Int(1));
      }
      if (name == "false" || name == "no" || name == "off") {
        return MakeConst(Operand::Int(0));
      }
      return nullptr;  // legacy reports `unexpected "name"`
    }
    auto node = std::make_unique<ExprNode>();
    node->kind = ExprNode::Kind::kFunc;
    node->func_name = std::move(name);
    SkipSpace();
    if (!Peek(")")) {
      for (;;) {
        NodePtr arg = CompileTernary();
        if (arg == nullptr) {
          return nullptr;
        }
        node->children.push_back(std::move(arg));
        SkipSpace();
        if (Consume(",")) {
          continue;
        }
        break;
      }
    }
    if (!Consume(")")) {
      return nullptr;
    }
    // Function-name validity stays a runtime concern (ApplyFunction), like
    // the legacy engine, which resolves the name only after the arguments.
    return node;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// AST evaluation. Operand evaluation order matches the legacy interleaved
// engine exactly: left before right, condition before both ternary arms,
// truth-of-left before the right operand of && / ||, and operand type
// errors after both operands are evaluated.
Result EvalNode(Interp& interp, const ExprNode& node, Operand* out) {
  switch (node.kind) {
    case ExprNode::Kind::kConst:
      *out = node.constant;
      return Result::Ok();
    case ExprNode::Kind::kSubst: {
      // `$name` operand: read the variable's cached classification directly —
      // a loop counter stays a long across iterations with no reparse.
      if (!node.force_string && node.segments.size() == 1 &&
          node.segments[0].kind == WordSegment::Kind::kVariable) {
        if (const Value* fast = interp.GetVarValuePtr(node.segments[0].text)) {
          return OperandFromValue(*fast, out);
        }
      }
      std::string text;
      Result r = EvalWordSegments(interp, node.segments, &text);
      if (r.code == Status::kError) {
        return r;
      }
      if (node.force_string) {
        *out = Operand::Str(std::move(text));
        return Result::Ok();
      }
      return OperandFromText(std::move(text), out);
    }
    case ExprNode::Kind::kUnary: {
      Operand v;
      Result r = EvalNode(interp, *node.children[0], &v);
      if (r.code == Status::kError) {
        return r;
      }
      switch (node.op) {
        case '-':
          if (v.kind == Operand::Kind::kInt) {
            *out = Operand::Int(WrapNeg(v.i));
          } else if (v.kind == Operand::Kind::kDouble) {
            *out = Operand::Double(-v.d);
          } else {
            return Result::Error("can't use non-numeric string as operand of \"-\"");
          }
          return Result::Ok();
        case '+':
          if (!v.numeric()) {
            return Result::Error("can't use non-numeric string as operand of \"+\"");
          }
          *out = std::move(v);
          return Result::Ok();
        case '!': {
          bool truth = false;
          Result t = Truth(v, &truth);
          if (t.code == Status::kError) {
            return t;
          }
          *out = Operand::Int(truth ? 0 : 1);
          return Result::Ok();
        }
        case '~':
          if (v.kind != Operand::Kind::kInt) {
            return Result::Error("can't use non-integer value as operand of \"~\"");
          }
          *out = Operand::Int(~v.i);
          return Result::Ok();
      }
      return Result::Error("syntax error in expression");  // unreachable
    }
    case ExprNode::Kind::kBinary: {
      Operand a;
      Operand b;
      Result r = EvalNode(interp, *node.children[0], &a);
      if (r.code == Status::kError) {
        return r;
      }
      r = EvalNode(interp, *node.children[1], &b);
      if (r.code == Status::kError) {
        return r;
      }
      switch (node.bin) {
        case BinOp::kBitOr:
        case BinOp::kBitXor:
        case BinOp::kBitAnd:
        case BinOp::kShl:
        case BinOp::kShr: {
          long x = 0;
          long y = 0;
          Result ir = RequireInts(a, b, &x, &y);
          if (ir.code == Status::kError) {
            return ir;
          }
          switch (node.bin) {
            case BinOp::kBitOr:
              *out = Operand::Int(x | y);
              break;
            case BinOp::kBitXor:
              *out = Operand::Int(x ^ y);
              break;
            case BinOp::kBitAnd:
              *out = Operand::Int(x & y);
              break;
            case BinOp::kShl:
              *out = Operand::Int(ShiftLeft(x, y));
              break;
            default:
              *out = Operand::Int(ShiftRight(x, y));
              break;
          }
          return Result::Ok();
        }
        case BinOp::kEq:
          *out = Operand::Int(Compare(a, b) == 0);
          return Result::Ok();
        case BinOp::kNe:
          *out = Operand::Int(Compare(a, b) != 0);
          return Result::Ok();
        case BinOp::kLt:
          *out = Operand::Int(Compare(a, b) < 0);
          return Result::Ok();
        case BinOp::kGt:
          *out = Operand::Int(Compare(a, b) > 0);
          return Result::Ok();
        case BinOp::kLe:
          *out = Operand::Int(Compare(a, b) <= 0);
          return Result::Ok();
        case BinOp::kGe:
          *out = Operand::Int(Compare(a, b) >= 0);
          return Result::Ok();
        case BinOp::kAdd:
          return Arith('+', a, b, out);
        case BinOp::kSub:
          return Arith('-', a, b, out);
        case BinOp::kMul:
          return Arith('*', a, b, out);
        case BinOp::kDiv:
          return Arith('/', a, b, out);
        case BinOp::kMod:
          return Arith('%', a, b, out);
      }
      return Result::Error("syntax error in expression");  // unreachable
    }
    case ExprNode::Kind::kAnd:
    case ExprNode::Kind::kOr: {
      Operand lhs;
      Result r = EvalNode(interp, *node.children[0], &lhs);
      if (r.code == Status::kError) {
        return r;
      }
      bool left = false;
      Result t = Truth(lhs, &left);
      if (t.code == Status::kError) {
        return t;
      }
      Operand rhs;
      r = EvalNode(interp, *node.children[1], &rhs);
      if (r.code == Status::kError) {
        return r;
      }
      bool right = false;
      t = Truth(rhs, &right);
      if (t.code == Status::kError) {
        return t;
      }
      bool combined =
          node.kind == ExprNode::Kind::kAnd ? (left && right) : (left || right);
      *out = Operand::Int(combined ? 1 : 0);
      return Result::Ok();
    }
    case ExprNode::Kind::kTernary: {
      Operand cv;
      Result r = EvalNode(interp, *node.children[0], &cv);
      if (r.code == Status::kError) {
        return r;
      }
      bool cond = false;
      Result t = Truth(cv, &cond);
      if (t.code == Status::kError) {
        return t;
      }
      // Both arms evaluate (matching the legacy engine) before one is picked.
      Operand a;
      Operand b;
      r = EvalNode(interp, *node.children[1], &a);
      if (r.code == Status::kError) {
        return r;
      }
      r = EvalNode(interp, *node.children[2], &b);
      if (r.code == Status::kError) {
        return r;
      }
      *out = cond ? std::move(a) : std::move(b);
      return Result::Ok();
    }
    case ExprNode::Kind::kFunc: {
      std::vector<Operand> args;
      args.reserve(node.children.size());
      for (const auto& child : node.children) {
        Operand v;
        Result r = EvalNode(interp, *child, &v);
        if (r.code == Status::kError) {
          return r;
        }
        args.push_back(std::move(v));
      }
      return ApplyFunction(node.func_name, args, out);
    }
  }
  return Result::Error("syntax error in expression");  // unreachable
}

// Compile-through-cache, shared by every expr entry point. `cache_slot` is
// the interp's expr cache, created lazily here so interp.cc does not need
// the expr counters.
std::shared_ptr<const ExprAst> CompileExprCached(std::unique_ptr<CompileCache>& cache_slot,
                                                 std::string_view expression) {
  if (cache_slot == nullptr) {
    cache_slot = std::make_unique<CompileCache>(kExprCacheCapacity, kExprCacheMaxKeyBytes,
                                                &g_expr_cache_hits, &g_expr_cache_misses,
                                                &g_expr_cache_evictions);
  }
  std::shared_ptr<const void> cached = cache_slot->Get(expression);
  if (cached != nullptr) {
    return std::static_pointer_cast<const ExprAst>(cached);
  }
  auto compiled = std::make_shared<ExprAst>();
  compiled->root = ExprCompiler(expression).Run();
  if (compiled->root == nullptr) {
    compiled->source.assign(expression);
  }
  cache_slot->Put(expression, compiled);
  return compiled;
}

Result EvalAst(Interp& interp, const ExprAst& ast, Operand* out) {
  if (ast.root == nullptr) {
    ExprParser parser(interp, ast.source);
    return parser.Run(out);
  }
  return EvalNode(interp, *ast.root, out);
}

Result EvalExprValue(Interp& interp, std::unique_ptr<CompileCache>& cache_slot,
                     std::string_view expression, Operand* out) {
  return EvalAst(interp, *CompileExprCached(cache_slot, expression), out);
}

// The boolean contract of `expr` conditions, applied to an already-evaluated
// value. Numeric kinds short-circuit the string parse (the ToString round
// trip reaches the same answer: "%g" output re-parses to the same double,
// NaN/Inf spellings parse via strtod, and d != 0 matches strtod != 0).
Result BooleanFromValue(const Operand& v, bool* value) {
  if (v.kind == Operand::Kind::kInt) {
    *value = v.i != 0;
    return Result::Ok();
  }
  if (v.kind == Operand::Kind::kDouble) {
    *value = v.d != 0.0;
    return Result::Ok();
  }
  const std::string& text = v.s;
  if (text == "1") {
    *value = true;
    return Result::Ok();
  }
  if (text == "0" || text.empty()) {
    *value = false;
    return Result::Ok();
  }
  std::string lower;
  for (char c : text) {
    lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "true" || lower == "yes" || lower == "on") {
    *value = true;
    return Result::Ok();
  }
  if (lower == "false" || lower == "no" || lower == "off") {
    *value = false;
    return Result::Ok();
  }
  long i = 0;
  double d = 0;
  NumberKind kind = ClassifyNumber(text, &i, &d);
  if (kind == NumberKind::kInt) {
    *value = i != 0;
    return Result::Ok();
  }
  if (kind == NumberKind::kDouble) {
    *value = d != 0.0;
    return Result::Ok();
  }
  return Result::Error("expected boolean value but got \"" + text + "\"");
}

}  // namespace

Result Interp::EvalExpr(std::string_view expression) {
  Operand value;
  Result r = EvalExprValue(*this, expr_cache_, expression, &value);
  if (r.code == Status::kError) {
    return r;
  }
  return Result::Ok(value.ToString());
}

Result Interp::ExprBoolean(std::string_view expression, bool* value) {
  Operand v;
  Result r = EvalExprValue(*this, expr_cache_, expression, &v);
  if (r.code == Status::kError) {
    return r;
  }
  return BooleanFromValue(v, value);
}

ExprHandle Interp::PrecompileExpr(std::string_view expression) {
  return CompileExprCached(expr_cache_, expression);
}

Result Interp::ExprBooleanCompiled(const ExprHandle& expression, bool* value) {
  Operand v;
  Result r = EvalAst(*this, *static_cast<const ExprAst*>(expression.get()), &v);
  if (r.code == Status::kError) {
    return r;
  }
  return BooleanFromValue(v, value);
}

}  // namespace wtcl
