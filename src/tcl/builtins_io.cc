// Output built-ins. `echo` is the Wafe-flavored command the paper uses
// throughout (joins its arguments with spaces and appends a newline);
// `puts` is standard Tcl puts with -nonewline.
#include "src/tcl/interp.h"

namespace wtcl {

namespace {

Result CmdEcho(Interp& interp, const ValueVec& argv) {
  std::string line;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    if (i != 1) {
      line.push_back(' ');
    }
    line += argv[i].String();
  }
  line.push_back('\n');
  interp.Output(line);
  return Result::Ok();
}

Result CmdPuts(Interp& interp, const ValueVec& argv) {
  bool newline = true;
  std::size_t i = 1;
  if (i < argv.size() && argv[i].String() == "-nonewline") {
    newline = false;
    ++i;
  }
  // Accept and ignore the channel words "stdout" / "stderr" for script
  // compatibility; both go to the interp sink.
  if (argv.size() - i == 2 && (argv[i].String() == "stdout" || argv[i].String() == "stderr")) {
    ++i;
  }
  if (argv.size() - i != 1) {
    return Result::Error("wrong # args: should be \"puts ?-nonewline? ?channel? string\"");
  }
  std::string text = argv[i].String();
  if (newline) {
    text.push_back('\n');
  }
  interp.Output(text);
  return Result::Ok();
}

}  // namespace

void RegisterIoBuiltins(Interp& interp) {
  interp.RegisterCommand("echo", CmdEcho);
  interp.RegisterCommand("puts", CmdPuts);
}

}  // namespace wtcl
