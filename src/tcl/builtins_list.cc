// List built-ins: list, lindex, llength, lrange, lappend, linsert,
// lreplace, lsearch, lsort, concat, join, split.
//
// The read-only commands (lindex, llength, lrange, lsearch, lsort, join)
// consume the argument's cached list rep: `lindex $l $i` in a loop parses
// the list once — the parse sticks to the variable through the argv
// rep-share — instead of re-splitting the string per call. Index syntax
// ("end", "end-N", hex/octal) is decided centrally by ParseIndex in
// value.cc.
#include <algorithm>
#include <utility>

#include "src/tcl/interp.h"

namespace wtcl {

namespace {

Result ArityError(const std::string& name, const std::string& usage) {
  return Result::Error("wrong # args: should be \"" + name + " " + usage + "\"");
}

Result ListError() { return Result::Error("unmatched open brace in list"); }

Result CmdList(Interp& interp, const ValueVec& argv) {
  (void)interp;
  std::vector<Value> elements(argv.begin() + 1, argv.end());
  return Result::Ok(Value::FromList(std::move(elements)).String());
}

Result CmdLindex(Interp& interp, const ValueVec& argv) {
  (void)interp;
  if (argv.size() != 3) {
    return ArityError("lindex", "list index");
  }
  const std::vector<Value>* elements = argv[1].GetList();
  if (elements == nullptr) {
    return ListError();
  }
  long index = 0;
  if (!ParseIndex(argv[2].String(), elements->size(), &index)) {
    return Result::Error(IndexParseError(argv[2].String()));
  }
  if (index < 0 || static_cast<std::size_t>(index) >= elements->size()) {
    return Result::Ok("");
  }
  return Result::Ok((*elements)[static_cast<std::size_t>(index)].String());
}

Result CmdLlength(Interp& interp, const ValueVec& argv) {
  (void)interp;
  if (argv.size() != 2) {
    return ArityError("llength", "list");
  }
  const std::vector<Value>* elements = argv[1].GetList();
  if (elements == nullptr) {
    return ListError();
  }
  return Result::Ok(std::to_string(elements->size()));
}

Result CmdLrange(Interp& interp, const ValueVec& argv) {
  (void)interp;
  if (argv.size() != 4) {
    return ArityError("lrange", "list first last");
  }
  const std::vector<Value>* elements = argv[1].GetList();
  if (elements == nullptr) {
    return ListError();
  }
  long first = 0;
  if (!ParseIndex(argv[2].String(), elements->size(), &first)) {
    return Result::Error(IndexParseError(argv[2].String()));
  }
  long last = 0;
  if (!ParseIndex(argv[3].String(), elements->size(), &last)) {
    return Result::Error(IndexParseError(argv[3].String()));
  }
  if (first < 0) {
    first = 0;
  }
  if (last >= static_cast<long>(elements->size())) {
    last = static_cast<long>(elements->size()) - 1;
  }
  std::vector<Value> out;
  for (long i = first; i <= last; ++i) {
    out.push_back((*elements)[static_cast<std::size_t>(i)]);
  }
  return Result::Ok(Value::FromList(std::move(out)).String());
}

Result CmdLappend(Interp& interp, const ValueVec& argv) {
  if (argv.size() < 2) {
    return ArityError("lappend", "varName ?value ...?");
  }
  std::string value;
  interp.GetVar(argv[1].String(), &value);
  for (std::size_t i = 2; i < argv.size(); ++i) {
    if (!value.empty()) {
      value.push_back(' ');
    }
    value += QuoteListElement(argv[i].String());
  }
  return interp.SetVar(argv[1].String(), std::move(value));
}

Result CmdLinsert(Interp& interp, const ValueVec& argv) {
  (void)interp;
  if (argv.size() < 4) {
    return ArityError("linsert", "list index element ?element ...?");
  }
  const std::vector<Value>* parsed = argv[1].GetList();
  if (parsed == nullptr) {
    return ListError();
  }
  // linsert indexes insertion points, not elements: "end" means the slot
  // after the last element (append), so the index parses against size+1.
  long index = 0;
  if (!ParseIndex(argv[2].String(), parsed->size() + 1, &index)) {
    return Result::Error(IndexParseError(argv[2].String()));
  }
  if (index < 0) {
    index = 0;
  }
  if (index > static_cast<long>(parsed->size())) {
    index = static_cast<long>(parsed->size());
  }
  std::vector<Value> elements = *parsed;
  elements.insert(elements.begin() + index, argv.begin() + 3, argv.end());
  return Result::Ok(Value::FromList(std::move(elements)).String());
}

Result CmdLreplace(Interp& interp, const ValueVec& argv) {
  (void)interp;
  if (argv.size() < 4) {
    return ArityError("lreplace", "list first last ?element ...?");
  }
  const std::vector<Value>* elements = argv[1].GetList();
  if (elements == nullptr) {
    return ListError();
  }
  long first = 0;
  if (!ParseIndex(argv[2].String(), elements->size(), &first)) {
    return Result::Error(IndexParseError(argv[2].String()));
  }
  long last = 0;
  if (!ParseIndex(argv[3].String(), elements->size(), &last)) {
    return Result::Error(IndexParseError(argv[3].String()));
  }
  if (first < 0) {
    first = 0;
  }
  if (last >= static_cast<long>(elements->size())) {
    last = static_cast<long>(elements->size()) - 1;
  }
  std::vector<Value> out;
  for (long i = 0; i < first && i < static_cast<long>(elements->size()); ++i) {
    out.push_back((*elements)[static_cast<std::size_t>(i)]);
  }
  for (std::size_t i = 4; i < argv.size(); ++i) {
    out.push_back(argv[i]);
  }
  for (long i = std::max(last + 1, first); i < static_cast<long>(elements->size()); ++i) {
    out.push_back((*elements)[static_cast<std::size_t>(i)]);
  }
  return Result::Ok(Value::FromList(std::move(out)).String());
}

Result CmdLsearch(Interp& interp, const ValueVec& argv) {
  (void)interp;
  // lsearch ?-exact|-glob? list pattern
  std::size_t i = 1;
  bool exact = false;
  if (argv.size() == 4) {
    if (argv[1].String() == "-exact") {
      exact = true;
    } else if (argv[1].String() != "-glob") {
      return Result::Error("bad search mode \"" + argv[1].String() +
                           "\": must be -exact or -glob");
    }
    i = 2;
  } else if (argv.size() != 3) {
    return ArityError("lsearch", "?mode? list pattern");
  }
  const std::vector<Value>* elements = argv[i].GetList();
  if (elements == nullptr) {
    return ListError();
  }
  const std::string& pattern = argv[i + 1].String();
  for (std::size_t e = 0; e < elements->size(); ++e) {
    const std::string& element = (*elements)[e].String();
    bool match = exact ? element == pattern : GlobMatch(pattern, element);
    if (match) {
      return Result::Ok(std::to_string(e));
    }
  }
  return Result::Ok("-1");
}

Result CmdLsort(Interp& interp, const ValueVec& argv) {
  (void)interp;
  // lsort ?-ascii|-integer|-real? ?-increasing|-decreasing? list
  bool decreasing = false;
  enum class Mode { kAscii, kInteger, kReal } mode = Mode::kAscii;
  std::size_t i = 1;
  while (i + 1 < argv.size()) {
    const std::string& option = argv[i].String();
    if (option == "-ascii") {
      mode = Mode::kAscii;
    } else if (option == "-integer") {
      mode = Mode::kInteger;
    } else if (option == "-real") {
      mode = Mode::kReal;
    } else if (option == "-increasing") {
      decreasing = false;
    } else if (option == "-decreasing") {
      decreasing = true;
    } else {
      return Result::Error("bad lsort option \"" + option + "\"");
    }
    ++i;
  }
  if (i >= argv.size()) {
    return ArityError("lsort", "?options? list");
  }
  const std::vector<Value>* parsed = argv[i].GetList();
  if (parsed == nullptr) {
    return ListError();
  }
  std::vector<Value> elements = *parsed;
  if (mode == Mode::kAscii) {
    std::sort(elements.begin(), elements.end(),
              [](const Value& a, const Value& b) { return a.String() < b.String(); });
  } else if (mode == Mode::kInteger) {
    // Decorate-sort-undecorate: each element parses exactly once, and a
    // non-integer is a hard error instead of silently comparing as 0.
    std::vector<std::pair<long, Value>> decorated;
    decorated.reserve(elements.size());
    for (Value& element : elements) {
      long key = 0;
      if (!element.GetInt(&key)) {
        return Result::Error(IntegerParseError(element.String(), element.Classify()));
      }
      decorated.emplace_back(key, std::move(element));
    }
    std::stable_sort(decorated.begin(), decorated.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t e = 0; e < decorated.size(); ++e) {
      elements[e] = std::move(decorated[e].second);
    }
  } else {
    std::vector<std::pair<double, Value>> decorated;
    decorated.reserve(elements.size());
    for (Value& element : elements) {
      double key = 0;
      // ParseDouble is deliberately lenient (accepts what strtod accepts),
      // matching the reach of -real in classic Tcl.
      std::string error;
      if (!ParseDouble(element.String(), &key, &error)) {
        return Result::Error(std::move(error));
      }
      decorated.emplace_back(key, std::move(element));
    }
    std::stable_sort(decorated.begin(), decorated.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t e = 0; e < decorated.size(); ++e) {
      elements[e] = std::move(decorated[e].second);
    }
  }
  if (decreasing) {
    std::reverse(elements.begin(), elements.end());
  }
  return Result::Ok(Value::FromList(std::move(elements)).String());
}

Result CmdConcat(Interp& interp, const ValueVec& argv) {
  (void)interp;
  std::string out;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& arg = argv[i].String();
    // concat trims each argument and joins with single spaces.
    std::size_t begin = arg.find_first_not_of(" \t\n");
    if (begin == std::string::npos) {
      continue;
    }
    std::size_t end = arg.find_last_not_of(" \t\n");
    if (!out.empty()) {
      out.push_back(' ');
    }
    out += arg.substr(begin, end - begin + 1);
  }
  return Result::Ok(std::move(out));
}

Result CmdJoin(Interp& interp, const ValueVec& argv) {
  (void)interp;
  if (argv.size() != 2 && argv.size() != 3) {
    return ArityError("join", "list ?joinString?");
  }
  std::string sep = argv.size() == 3 ? argv[2].String() : " ";
  const std::vector<Value>* elements = argv[1].GetList();
  if (elements == nullptr) {
    return ListError();
  }
  std::string out;
  for (std::size_t i = 0; i < elements->size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += (*elements)[i].String();
  }
  return Result::Ok(std::move(out));
}

Result CmdSplit(Interp& interp, const ValueVec& argv) {
  (void)interp;
  if (argv.size() != 2 && argv.size() != 3) {
    return ArityError("split", "string ?splitChars?");
  }
  const std::string& subject = argv[1].String();
  std::string chars = argv.size() == 3 ? argv[2].String() : " \t\n\r";
  std::vector<std::string> out;
  if (chars.empty()) {
    for (char c : subject) {
      out.push_back(std::string(1, c));
    }
  } else if (!subject.empty()) {
    // An empty subject splits to the empty list, not one empty element.
    std::string current;
    for (char c : subject) {
      if (chars.find(c) != std::string::npos) {
        out.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    out.push_back(current);
  }
  return Result::Ok(MergeList(out));
}

}  // namespace

void RegisterListBuiltins(Interp& interp) {
  interp.RegisterCommand("list", CmdList);
  interp.RegisterCommand("lindex", CmdLindex);
  interp.RegisterCommand("llength", CmdLlength);
  interp.RegisterCommand("lrange", CmdLrange);
  interp.RegisterCommand("lappend", CmdLappend);
  interp.RegisterCommand("linsert", CmdLinsert);
  interp.RegisterCommand("lreplace", CmdLreplace);
  interp.RegisterCommand("lsearch", CmdLsearch);
  interp.RegisterCommand("lsort", CmdLsort);
  interp.RegisterCommand("concat", CmdConcat);
  interp.RegisterCommand("join", CmdJoin);
  interp.RegisterCommand("split", CmdSplit);
}

}  // namespace wtcl
