// List built-ins: list, lindex, llength, lrange, lappend, linsert,
// lreplace, lsearch, lsort, concat, join, split.
#include <algorithm>
#include <cstdlib>

#include "src/tcl/interp.h"

namespace wtcl {

namespace {

Result ArityError(const std::string& name, const std::string& usage) {
  return Result::Error("wrong # args: should be \"" + name + " " + usage + "\"");
}

Result SplitOrError(const std::string& text, std::vector<std::string>* out) {
  if (!SplitList(text, out)) {
    return Result::Error("unmatched open brace in list");
  }
  return Result::Ok();
}

// Parses a list index, supporting "end" and "end-N".
bool ParseIndex(const std::string& text, std::size_t length, long* out) {
  if (text == "end") {
    *out = static_cast<long>(length) - 1;
    return true;
  }
  if (text.rfind("end-", 0) == 0) {
    char* end = nullptr;
    long offset = std::strtol(text.c_str() + 4, &end, 10);
    if (end == text.c_str() + 4 || *end != '\0') {
      return false;
    }
    *out = static_cast<long>(length) - 1 - offset;
    return true;
  }
  char* end = nullptr;
  long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

Result CmdList(Interp& interp, const std::vector<std::string>& argv) {
  (void)interp;
  std::vector<std::string> elements(argv.begin() + 1, argv.end());
  return Result::Ok(MergeList(elements));
}

Result CmdLindex(Interp& interp, const std::vector<std::string>& argv) {
  (void)interp;
  if (argv.size() != 3) {
    return ArityError("lindex", "list index");
  }
  std::vector<std::string> elements;
  Result r = SplitOrError(argv[1], &elements);
  if (r.code == Status::kError) {
    return r;
  }
  long index = 0;
  if (!ParseIndex(argv[2], elements.size(), &index)) {
    return Result::Error("expected integer but got \"" + argv[2] + "\"");
  }
  if (index < 0 || static_cast<std::size_t>(index) >= elements.size()) {
    return Result::Ok("");
  }
  return Result::Ok(elements[static_cast<std::size_t>(index)]);
}

Result CmdLlength(Interp& interp, const std::vector<std::string>& argv) {
  (void)interp;
  if (argv.size() != 2) {
    return ArityError("llength", "list");
  }
  std::vector<std::string> elements;
  Result r = SplitOrError(argv[1], &elements);
  if (r.code == Status::kError) {
    return r;
  }
  return Result::Ok(std::to_string(elements.size()));
}

Result CmdLrange(Interp& interp, const std::vector<std::string>& argv) {
  (void)interp;
  if (argv.size() != 4) {
    return ArityError("lrange", "list first last");
  }
  std::vector<std::string> elements;
  Result r = SplitOrError(argv[1], &elements);
  if (r.code == Status::kError) {
    return r;
  }
  long first = 0;
  long last = 0;
  if (!ParseIndex(argv[2], elements.size(), &first) ||
      !ParseIndex(argv[3], elements.size(), &last)) {
    return Result::Error("bad index in lrange");
  }
  if (first < 0) {
    first = 0;
  }
  if (last >= static_cast<long>(elements.size())) {
    last = static_cast<long>(elements.size()) - 1;
  }
  std::vector<std::string> out;
  for (long i = first; i <= last; ++i) {
    out.push_back(elements[static_cast<std::size_t>(i)]);
  }
  return Result::Ok(MergeList(out));
}

Result CmdLappend(Interp& interp, const std::vector<std::string>& argv) {
  if (argv.size() < 2) {
    return ArityError("lappend", "varName ?value ...?");
  }
  std::string value;
  interp.GetVar(argv[1], &value);
  for (std::size_t i = 2; i < argv.size(); ++i) {
    if (!value.empty()) {
      value.push_back(' ');
    }
    value += QuoteListElement(argv[i]);
  }
  return interp.SetVar(argv[1], std::move(value));
}

Result CmdLinsert(Interp& interp, const std::vector<std::string>& argv) {
  (void)interp;
  if (argv.size() < 4) {
    return ArityError("linsert", "list index element ?element ...?");
  }
  std::vector<std::string> elements;
  Result r = SplitOrError(argv[1], &elements);
  if (r.code == Status::kError) {
    return r;
  }
  long index = 0;
  if (!ParseIndex(argv[2], elements.size(), &index)) {
    return Result::Error("expected integer but got \"" + argv[2] + "\"");
  }
  if (index < 0) {
    index = 0;
  }
  if (index > static_cast<long>(elements.size())) {
    index = static_cast<long>(elements.size());
  }
  elements.insert(elements.begin() + index, argv.begin() + 3, argv.end());
  return Result::Ok(MergeList(elements));
}

Result CmdLreplace(Interp& interp, const std::vector<std::string>& argv) {
  (void)interp;
  if (argv.size() < 4) {
    return ArityError("lreplace", "list first last ?element ...?");
  }
  std::vector<std::string> elements;
  Result r = SplitOrError(argv[1], &elements);
  if (r.code == Status::kError) {
    return r;
  }
  long first = 0;
  long last = 0;
  if (!ParseIndex(argv[2], elements.size(), &first) ||
      !ParseIndex(argv[3], elements.size(), &last)) {
    return Result::Error("bad index in lreplace");
  }
  if (first < 0) {
    first = 0;
  }
  if (last >= static_cast<long>(elements.size())) {
    last = static_cast<long>(elements.size()) - 1;
  }
  std::vector<std::string> out;
  for (long i = 0; i < first && i < static_cast<long>(elements.size()); ++i) {
    out.push_back(elements[static_cast<std::size_t>(i)]);
  }
  for (std::size_t i = 4; i < argv.size(); ++i) {
    out.push_back(argv[i]);
  }
  for (long i = std::max(last + 1, first); i < static_cast<long>(elements.size()); ++i) {
    out.push_back(elements[static_cast<std::size_t>(i)]);
  }
  return Result::Ok(MergeList(out));
}

Result CmdLsearch(Interp& interp, const std::vector<std::string>& argv) {
  (void)interp;
  // lsearch ?-exact|-glob? list pattern
  std::size_t i = 1;
  bool exact = false;
  if (argv.size() == 4) {
    if (argv[1] == "-exact") {
      exact = true;
    } else if (argv[1] != "-glob") {
      return Result::Error("bad search mode \"" + argv[1] + "\": must be -exact or -glob");
    }
    i = 2;
  } else if (argv.size() != 3) {
    return ArityError("lsearch", "?mode? list pattern");
  }
  std::vector<std::string> elements;
  Result r = SplitOrError(argv[i], &elements);
  if (r.code == Status::kError) {
    return r;
  }
  const std::string& pattern = argv[i + 1];
  for (std::size_t e = 0; e < elements.size(); ++e) {
    bool match = exact ? elements[e] == pattern : GlobMatch(pattern, elements[e]);
    if (match) {
      return Result::Ok(std::to_string(e));
    }
  }
  return Result::Ok("-1");
}

Result CmdLsort(Interp& interp, const std::vector<std::string>& argv) {
  (void)interp;
  // lsort ?-ascii|-integer|-real? ?-increasing|-decreasing? list
  bool decreasing = false;
  enum class Mode { kAscii, kInteger, kReal } mode = Mode::kAscii;
  std::size_t i = 1;
  while (i + 1 < argv.size()) {
    if (argv[i] == "-ascii") {
      mode = Mode::kAscii;
    } else if (argv[i] == "-integer") {
      mode = Mode::kInteger;
    } else if (argv[i] == "-real") {
      mode = Mode::kReal;
    } else if (argv[i] == "-increasing") {
      decreasing = false;
    } else if (argv[i] == "-decreasing") {
      decreasing = true;
    } else {
      return Result::Error("bad lsort option \"" + argv[i] + "\"");
    }
    ++i;
  }
  if (i >= argv.size()) {
    return ArityError("lsort", "?options? list");
  }
  std::vector<std::string> elements;
  Result r = SplitOrError(argv[i], &elements);
  if (r.code == Status::kError) {
    return r;
  }
  auto numeric_less = [mode](const std::string& a, const std::string& b) {
    if (mode == Mode::kInteger) {
      return std::strtol(a.c_str(), nullptr, 10) < std::strtol(b.c_str(), nullptr, 10);
    }
    return std::strtod(a.c_str(), nullptr) < std::strtod(b.c_str(), nullptr);
  };
  if (mode == Mode::kAscii) {
    std::sort(elements.begin(), elements.end());
  } else {
    std::sort(elements.begin(), elements.end(), numeric_less);
  }
  if (decreasing) {
    std::reverse(elements.begin(), elements.end());
  }
  return Result::Ok(MergeList(elements));
}

Result CmdConcat(Interp& interp, const std::vector<std::string>& argv) {
  (void)interp;
  std::string out;
  for (std::size_t i = 1; i < argv.size(); ++i) {
    // concat trims each argument and joins with single spaces.
    std::size_t begin = argv[i].find_first_not_of(" \t\n");
    if (begin == std::string::npos) {
      continue;
    }
    std::size_t end = argv[i].find_last_not_of(" \t\n");
    if (!out.empty()) {
      out.push_back(' ');
    }
    out += argv[i].substr(begin, end - begin + 1);
  }
  return Result::Ok(std::move(out));
}

Result CmdJoin(Interp& interp, const std::vector<std::string>& argv) {
  (void)interp;
  if (argv.size() != 2 && argv.size() != 3) {
    return ArityError("join", "list ?joinString?");
  }
  std::string sep = argv.size() == 3 ? argv[2] : " ";
  std::vector<std::string> elements;
  Result r = SplitOrError(argv[1], &elements);
  if (r.code == Status::kError) {
    return r;
  }
  std::string out;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += elements[i];
  }
  return Result::Ok(std::move(out));
}

Result CmdSplit(Interp& interp, const std::vector<std::string>& argv) {
  (void)interp;
  if (argv.size() != 2 && argv.size() != 3) {
    return ArityError("split", "string ?splitChars?");
  }
  const std::string& subject = argv[1];
  std::string chars = argv.size() == 3 ? argv[2] : " \t\n\r";
  std::vector<std::string> out;
  if (chars.empty()) {
    for (char c : subject) {
      out.push_back(std::string(1, c));
    }
  } else {
    std::string current;
    for (char c : subject) {
      if (chars.find(c) != std::string::npos) {
        out.push_back(current);
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    out.push_back(current);
  }
  return Result::Ok(MergeList(out));
}

}  // namespace

void RegisterListBuiltins(Interp& interp) {
  interp.RegisterCommand("list", CmdList);
  interp.RegisterCommand("lindex", CmdLindex);
  interp.RegisterCommand("llength", CmdLlength);
  interp.RegisterCommand("lrange", CmdLrange);
  interp.RegisterCommand("lappend", CmdLappend);
  interp.RegisterCommand("linsert", CmdLinsert);
  interp.RegisterCommand("lreplace", CmdLreplace);
  interp.RegisterCommand("lsearch", CmdLsearch);
  interp.RegisterCommand("lsort", CmdLsort);
  interp.RegisterCommand("concat", CmdConcat);
  interp.RegisterCommand("join", CmdJoin);
  interp.RegisterCommand("split", CmdSplit);
}

}  // namespace wtcl
