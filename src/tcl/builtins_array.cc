// Associative array introspection: array exists/get/names/set/size.
#include "src/tcl/interp.h"

namespace wtcl {

namespace {

Result ArityError(const std::string& name, const std::string& usage) {
  return Result::Error("wrong # args: should be \"" + name + " " + usage + "\"");
}

Result CmdArray(Interp& interp, const ValueVec& argv) {
  if (argv.size() < 3) {
    return ArityError("array", "option arrayName ?arg ...?");
  }
  const std::string& option = argv[1].String();
  const std::string& name = argv[2].String();
  if (option == "exists") {
    return Result::Ok(interp.IsArray(name) ? "1" : "0");
  }
  if (option == "names") {
    std::vector<std::string> names;
    if (!interp.ArrayNames(name, &names)) {
      return Result::Ok("");
    }
    if (argv.size() == 4) {
      std::vector<std::string> filtered;
      for (const std::string& n : names) {
        if (GlobMatch(argv[3].String(), n)) {
          filtered.push_back(n);
        }
      }
      names = std::move(filtered);
    }
    return Result::Ok(MergeList(names));
  }
  if (option == "size") {
    std::vector<std::string> names;
    if (!interp.ArrayNames(name, &names)) {
      return Result::Ok("0");
    }
    return Result::Ok(std::to_string(names.size()));
  }
  if (option == "get") {
    std::vector<std::string> names;
    if (!interp.ArrayNames(name, &names)) {
      return Result::Ok("");
    }
    std::vector<std::string> pairs;
    for (const std::string& n : names) {
      if (argv.size() == 4 && !GlobMatch(argv[3].String(), n)) {
        continue;
      }
      std::string value;
      interp.GetVar(name + "(" + n + ")", &value);
      pairs.push_back(n);
      pairs.push_back(value);
    }
    return Result::Ok(MergeList(pairs));
  }
  if (option == "set") {
    if (argv.size() != 4) {
      return ArityError("array set", "arrayName list");
    }
    std::vector<std::string> pairs;
    if (!SplitList(argv[3].String(), &pairs) || pairs.size() % 2 != 0) {
      return Result::Error("list must have an even number of elements");
    }
    for (std::size_t i = 0; i + 1 < pairs.size(); i += 2) {
      Result r = interp.SetVar(name + "(" + pairs[i] + ")", pairs[i + 1]);
      if (r.code == Status::kError) {
        return r;
      }
    }
    return Result::Ok();
  }
  return Result::Error("bad option \"" + option +
                       "\": should be exists, get, names, set, or size");
}

}  // namespace

void RegisterArrayBuiltins(Interp& interp) {
  interp.RegisterCommand("array", CmdArray);
}

}  // namespace wtcl
