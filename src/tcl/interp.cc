#include "src/tcl/interp.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/obs/obs.h"
#include "src/tcl/interp_internal.h"
#include "src/tcl/script.h"

namespace wtcl {

namespace {

// Observability instruments for the interpreter hot path (src/obs).
wobs::Counter g_eval_count("tcl.evals");
wobs::Counter g_command_count("tcl.commands");
wobs::Counter g_error_count("tcl.errors");
wobs::MaxGauge g_eval_depth("tcl.eval.depth.max");
wobs::Histogram g_command_duration("tcl.command.duration");
// Eval-guard trips (one count per tripped top-level evaluation).
wobs::Counter g_limit_depth("tcl.eval.limit.depth");
wobs::Counter g_limit_steps("tcl.eval.limit.steps");
wobs::Counter g_limit_ms("tcl.eval.limit.ms");
// Compiled-script cache traffic (the expr cache reports from expr.cc).
wobs::Counter g_script_cache_hits("tcl.script.cache.hits");
wobs::Counter g_script_cache_misses("tcl.script.cache.misses");
wobs::Counter g_script_cache_evictions("tcl.script.cache.evictions");

// Script-cache bounds: plenty for every loop body, proc body, and callback
// in a session while keeping a hostile stream of unique scripts from
// accumulating IR without limit. Oversized scripts compile but skip the
// cache (a 64 KiB script is not a hot loop body).
constexpr std::size_t kScriptCacheCapacity = 512;
constexpr std::size_t kScriptCacheMaxKeyBytes = 64 * 1024;

// Which guard tripped; sticky in Interp::limit_tripped_ until the outermost
// Eval unwinds.
enum LimitKind { kLimitNone = 0, kLimitSteps, kLimitMs };

// Character-level lexing helpers live in script.h's detail namespace so the
// fresh substitution parser below and the script compiler share one
// definition (their semantics must never drift apart).
using detail::IsCommandTerminator;
using detail::IsVarNameChar;
using detail::IsWordSeparator;
using detail::SubstBackslash;

}  // namespace

// --- List utilities ----------------------------------------------------------

bool SplitList(std::string_view list, std::vector<std::string>* out) {
  out->clear();
  std::size_t i = 0;
  const std::size_t n = list.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(list[i]))) {
      ++i;
    }
    if (i >= n) {
      break;
    }
    std::string element;
    if (list[i] == '{') {
      int depth = 1;
      std::size_t j = i + 1;
      while (j < n && depth > 0) {
        if (list[j] == '\\' && j + 1 < n) {
          j += 2;
          continue;
        }
        if (list[j] == '{') {
          ++depth;
        } else if (list[j] == '}') {
          --depth;
        }
        ++j;
      }
      if (depth != 0) {
        return false;
      }
      element.assign(list.substr(i + 1, j - i - 2));
      i = j;
      if (i < n && !std::isspace(static_cast<unsigned char>(list[i]))) {
        return false;
      }
    } else if (list[i] == '"') {
      std::size_t j = i + 1;
      while (j < n && list[j] != '"') {
        if (list[j] == '\\' && j + 1 < n) {
          SubstBackslash(list, &j, &element);
        } else {
          element.push_back(list[j]);
          ++j;
        }
      }
      if (j >= n) {
        return false;
      }
      i = j + 1;
      if (i < n && !std::isspace(static_cast<unsigned char>(list[i]))) {
        return false;
      }
    } else {
      while (i < n && !std::isspace(static_cast<unsigned char>(list[i]))) {
        if (list[i] == '\\' && i + 1 < n) {
          SubstBackslash(list, &i, &element);
        } else {
          element.push_back(list[i]);
          ++i;
        }
      }
    }
    out->push_back(std::move(element));
  }
  return true;
}

std::string QuoteListElement(std::string_view element) {
  if (element.empty()) {
    return "{}";
  }
  bool needs_quoting = false;
  int brace_depth = 0;
  bool braces_balanced = true;
  bool has_backslash = false;
  for (std::size_t i = 0; i < element.size(); ++i) {
    char c = element[i];
    if (std::isspace(static_cast<unsigned char>(c)) || c == '[' || c == ']' || c == '$' ||
        c == ';' || c == '"') {
      needs_quoting = true;
    }
    if (c == '\\') {
      has_backslash = true;
      needs_quoting = true;
    }
    if (c == '{') {
      ++brace_depth;
      needs_quoting = true;
    } else if (c == '}') {
      --brace_depth;
      needs_quoting = true;
      if (brace_depth < 0) {
        braces_balanced = false;
      }
    }
  }
  if (brace_depth != 0) {
    braces_balanced = false;
  }
  if (!needs_quoting) {
    return std::string(element);
  }
  if (braces_balanced && !has_backslash) {
    std::string quoted;
    quoted.reserve(element.size() + 2);
    quoted.push_back('{');
    quoted.append(element);
    quoted.push_back('}');
    return quoted;
  }
  // Fall back to backslash quoting. Whitespace controls use their symbolic
  // escapes: a raw backslash-newline would read back as a space.
  std::string quoted;
  quoted.reserve(element.size() * 2);
  for (char c : element) {
    switch (c) {
      case '\n':
        quoted += "\\n";
        break;
      case '\t':
        quoted += "\\t";
        break;
      case '\r':
        quoted += "\\r";
        break;
      case ' ':
      case ';':
      case '$':
      case '[':
      case ']':
      case '{':
      case '}':
      case '"':
      case '\\':
        quoted.push_back('\\');
        quoted.push_back(c);
        break;
      default:
        quoted.push_back(c);
    }
  }
  return quoted;
}

std::string MergeList(const std::vector<std::string>& elements) {
  std::string out;
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (i != 0) {
      out.push_back(' ');
    }
    out.append(QuoteListElement(elements[i]));
  }
  return out;
}

bool GlobMatch(std::string_view pattern, std::string_view str) {
  std::size_t p = 0;
  std::size_t s = 0;
  std::size_t star_p = std::string_view::npos;
  std::size_t star_s = 0;
  while (s < str.size()) {
    if (p < pattern.size()) {
      char pc = pattern[p];
      if (pc == '*') {
        star_p = ++p;
        star_s = s;
        continue;
      }
      if (pc == '?') {
        ++p;
        ++s;
        continue;
      }
      if (pc == '[') {
        std::size_t close = pattern.find(']', p + 1);
        if (close != std::string_view::npos) {
          bool matched = false;
          std::size_t q = p + 1;
          while (q < close) {
            if (q + 2 < close && pattern[q + 1] == '-') {
              if (str[s] >= pattern[q] && str[s] <= pattern[q + 2]) {
                matched = true;
              }
              q += 3;
            } else {
              if (str[s] == pattern[q]) {
                matched = true;
              }
              ++q;
            }
          }
          if (matched) {
            p = close + 1;
            ++s;
            continue;
          }
          if (star_p != std::string_view::npos) {
            p = star_p;
            s = ++star_s;
            continue;
          }
          return false;
        }
      }
      if (pc == '\\' && p + 1 < pattern.size()) {
        pc = pattern[p + 1];
        if (pc == str[s]) {
          p += 2;
          ++s;
          continue;
        }
      } else if (pc == str[s]) {
        ++p;
        ++s;
        continue;
      }
    }
    if (star_p != std::string_view::npos) {
      p = star_p;
      s = ++star_s;
      continue;
    }
    return false;
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

// --- Internal structures ------------------------------------------------------

struct Interp::Variable {
  enum class Kind { kScalar, kArray, kLink };
  Kind kind = Kind::kScalar;
  // Scalars and array elements hold Values, so numeric/list reps cached by
  // one command (an `expr` operand classification, a `lindex` list parse)
  // are still there for the next.
  Value scalar;
  std::map<std::string, Value> array;
  // For kLink: index of the target frame and the variable name there.
  std::size_t link_frame = 0;
  std::string link_name;
};

struct Interp::VarNodePool {
  std::vector<std::unordered_map<std::string, Variable>::node_type> nodes;
};

struct Interp::Frame {
  // Hash map: variable lookup is on the per-command hot path. Node-based, so
  // Variable* stays valid across rehashing (upvar links and FindVar rely on
  // pointer stability). Name listings sort on the way out.
  std::unordered_map<std::string, Variable> vars;
  // Primed-bind cache for proc frames: the formal nodes' addresses from the
  // previous call of the owning proc, valid while nothing has been erased
  // from `vars` since `slots_gen` was stamped (inserts never move nodes).
  std::vector<Variable*> formal_slots;
  std::uint32_t erase_gen = 0;
  std::uint32_t slots_gen = 0;
};

struct Interp::ResolvedVar {
  Frame* frame = nullptr;
  std::string base;
  std::string index;
  bool is_element = false;
};

struct Interp::Proc {
  // Formal arguments: name plus optional default. The last formal may be
  // "args", collecting the remaining actuals as a list.
  struct Formal {
    std::string name;
    std::string default_value;
    bool has_default = false;
  };
  std::vector<Formal> formals;
  std::string formals_source;
  std::string body;
  // Body IR, compiled once at definition time: calls skip even the cache
  // lookup, and a redefinition builds a fresh Proc with fresh IR.
  ScriptHandle compiled;
  // Spent call frames kept with their formal bindings intact ("primed"):
  // the next call rebinds each formal's node in place instead of
  // re-inserting. Small and lean only — see the recycle path.
  std::vector<std::unique_ptr<Interp::Frame>> frame_pool;
};

// Splits "name(index)" into base and index. Returns false for scalars.
static bool SplitElementName(const std::string& name, std::string* base, std::string* index) {
  std::size_t open = name.find('(');
  if (open == std::string::npos || name.back() != ')') {
    return false;
  }
  *base = name.substr(0, open);
  *index = name.substr(open + 1, name.size() - open - 2);
  return true;
}

// --- Interp ------------------------------------------------------------------

Interp::Interp() {
  script_cache_ = std::make_unique<CompileCache>(
      kScriptCacheCapacity, kScriptCacheMaxKeyBytes, &g_script_cache_hits,
      &g_script_cache_misses, &g_script_cache_evictions);
  frames_.push_back(std::make_unique<Frame>());
  RegisterCoreBuiltins(*this);
  RegisterStringBuiltins(*this);
  RegisterListBuiltins(*this);
  RegisterArrayBuiltins(*this);
  RegisterIoBuiltins(*this);
}

Interp::~Interp() = default;

// Process-wide epoch source: every command-table mutation in any interp
// draws a fresh value, so a dispatch memo can never validate against a
// different interp that happens to reuse a freed interp's address.
// (Evaluation is single-threaded; no synchronization needed.)
static std::uint64_t g_command_epoch_source = 0;

void Interp::RegisterCommand(const std::string& name, CommandFn fn) {
  command_epoch_ = ++g_command_epoch_source;
  commands_[name] = std::make_shared<const CommandFn>(std::move(fn));
}

bool Interp::UnregisterCommand(const std::string& name) {
  command_epoch_ = ++g_command_epoch_source;
  procs_.erase(name);
  return commands_.erase(name) > 0;
}

bool Interp::RenameCommand(const std::string& from, const std::string& to) {
  auto it = commands_.find(from);
  if (it == commands_.end()) {
    return false;
  }
  command_epoch_ = ++g_command_epoch_source;
  if (to.empty()) {
    commands_.erase(it);
    procs_.erase(from);
    return true;
  }
  commands_[to] = it->second;
  commands_.erase(from);
  auto pit = procs_.find(from);
  if (pit != procs_.end()) {
    procs_[to] = pit->second;
    procs_.erase(pit);
  }
  return true;
}

bool Interp::HasCommand(const std::string& name) const {
  return commands_.count(name) > 0;
}

std::vector<std::string> Interp::CommandNames() const {
  std::vector<std::string> names;
  names.reserve(commands_.size());
  for (const auto& [name, fn] : commands_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::size_t Interp::FlushCompileCaches() {
  std::size_t dropped = script_cache_->Flush();
  if (expr_cache_ != nullptr) {
    dropped += expr_cache_->Flush();
  }
  return dropped;
}

std::size_t Interp::ScriptCacheSize() const { return script_cache_->size(); }

std::size_t Interp::ExprCacheSize() const {
  return expr_cache_ == nullptr ? 0 : expr_cache_->size();
}

int Interp::CurrentLevel() const { return static_cast<int>(active_frame_); }

void Interp::Output(const std::string& text) const {
  if (output_) {
    output_(text);
    return;
  }
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

// --- Variables ---------------------------------------------------------------

bool Interp::ResolveName(const std::string& name, ResolvedVar* out) const {
  std::string base;
  std::string index;
  bool is_element = SplitElementName(name, &base, &index);
  if (!is_element) {
    base = name;
  }
  Frame* frame = frames_[active_frame_].get();
  // Chase upvar links (links always point at shallower frames; depth is
  // bounded by the frame stack, so no cycle guard is needed). A link may
  // target an array element ("upvar a(key) v"); indexing an element link
  // again is an error.
  for (;;) {
    auto it = frame->vars.find(base);
    if (it == frame->vars.end() || it->second.kind != Variable::Kind::kLink) {
      break;
    }
    Frame* next = frames_[it->second.link_frame].get();
    std::string link_base;
    std::string link_index;
    if (SplitElementName(it->second.link_name, &link_base, &link_index)) {
      if (is_element) {
        return false;  // element of an element
      }
      base = link_base;
      index = link_index;
      is_element = true;
    } else {
      base = it->second.link_name;
    }
    frame = next;
  }
  out->frame = frame;
  out->base = std::move(base);
  out->index = std::move(index);
  out->is_element = is_element;
  return true;
}

Interp::Variable* Interp::FindVarInFrame(Frame& frame, const std::string& base) const {
  auto it = frame.vars.find(base);
  if (it == frame.vars.end()) {
    return nullptr;
  }
  Variable* var = &it->second;
  while (var->kind == Variable::Kind::kLink) {
    Frame& target = *frames_[var->link_frame];
    std::string link_base;
    std::string link_index;
    if (SplitElementName(var->link_name, &link_base, &link_index)) {
      auto lit = target.vars.find(link_base);
      return lit == target.vars.end() ? nullptr : &lit->second;
    }
    auto lit = target.vars.find(var->link_name);
    if (lit == target.vars.end()) {
      return nullptr;
    }
    var = &lit->second;
  }
  return var;
}

Interp::Variable* Interp::FindVar(const std::string& name) const {
  std::string base = name;
  std::string index;
  SplitElementName(name, &base, &index);
  return FindVarInFrame(*frames_[active_frame_], base);
}

const Value* Interp::GetVarValuePtr(const std::string& name) const {
  if (name.find('(') != std::string::npos) {
    return nullptr;  // element syntax: full resolver
  }
  const Frame* frame = frames_[active_frame_].get();
  auto it = frame->vars.find(name);
  if (it == frame->vars.end()) {
    return nullptr;
  }
  const Variable* var = &it->second;
  while (var->kind == Variable::Kind::kLink) {
    if (var->link_name.find('(') != std::string::npos) {
      return nullptr;  // link targets an array element: full resolver
    }
    frame = frames_[var->link_frame].get();
    it = frame->vars.find(var->link_name);
    if (it == frame->vars.end()) {
      return nullptr;
    }
    var = &it->second;
  }
  return var->kind == Variable::Kind::kScalar ? &var->scalar : nullptr;
}

Value* Interp::GetVarValuePtr(const std::string& name) {
  // Safe: callers mutate through the Value API, which copies-on-write when
  // the rep is shared (e.g. with an argv slot or a cached IR literal).
  return const_cast<Value*>(
      static_cast<const Interp*>(this)->GetVarValuePtr(name));
}

const std::string* Interp::GetVarPtr(const std::string& name) const {
  const Value* value = GetVarValuePtr(name);
  return value == nullptr ? nullptr : &value->String();
}

bool Interp::GetVar(const std::string& name, std::string* value) const {
  if (const std::string* fast = GetVarPtr(name)) {
    *value = *fast;
    return true;
  }
  ResolvedVar resolved;
  if (!ResolveName(name, &resolved)) {
    return false;
  }
  auto it = resolved.frame->vars.find(resolved.base);
  if (it == resolved.frame->vars.end()) {
    return false;
  }
  const Variable& var = it->second;
  if (resolved.is_element) {
    if (var.kind != Variable::Kind::kArray) {
      return false;
    }
    auto eit = var.array.find(resolved.index);
    if (eit == var.array.end()) {
      return false;
    }
    *value = eit->second.String();
    return true;
  }
  if (var.kind != Variable::Kind::kScalar) {
    return false;
  }
  *value = var.scalar.String();
  return true;
}

Result Interp::SetVar(const std::string& name, std::string value) {
  return SetVarValue(name, Value(std::move(value)));
}

Result Interp::SetVarValue(const std::string& name, Value value) {
  // Fast path: a plain name that is unset or already a scalar in the active
  // frame. Links, arrays, and element syntax take the full resolver below.
  if (name.find('(') == std::string::npos) {
    auto emplaced = frames_[active_frame_]->vars.try_emplace(name);
    Variable& var = emplaced.first->second;  // default-constructed = kScalar
    if (var.kind == Variable::Kind::kScalar) {
      var.scalar = std::move(value);
      return Result::Ok(var.scalar.String());
    }
  }
  ResolvedVar resolved;
  if (!ResolveName(name, &resolved)) {
    return Result::Error("can't set \"" + name + "\": bad variable reference");
  }
  auto it = resolved.frame->vars.find(resolved.base);
  Variable* var;
  if (it == resolved.frame->vars.end()) {
    var = &resolved.frame->vars[resolved.base];
    var->kind = resolved.is_element ? Variable::Kind::kArray : Variable::Kind::kScalar;
  } else {
    var = &it->second;
  }
  if (resolved.is_element) {
    if (var->kind == Variable::Kind::kScalar && var->scalar.String().empty() &&
        var->array.empty()) {
      var->kind = Variable::Kind::kArray;
    }
    if (var->kind != Variable::Kind::kArray) {
      return Result::Error("can't set \"" + name + "\": variable isn't array");
    }
    Value& element = var->array[resolved.index];
    element = std::move(value);
    return Result::Ok(element.String());
  }
  if (var->kind == Variable::Kind::kArray && !var->array.empty()) {
    return Result::Error("can't set \"" + name + "\": variable is array");
  }
  var->kind = Variable::Kind::kScalar;
  var->scalar = std::move(value);
  return Result::Ok(var->scalar.String());
}

bool Interp::UnsetVar(const std::string& name) {
  ResolvedVar resolved;
  if (!ResolveName(name, &resolved)) {
    return false;
  }
  auto it = resolved.frame->vars.find(resolved.base);
  if (it == resolved.frame->vars.end()) {
    return false;
  }
  if (resolved.is_element) {
    if (it->second.kind != Variable::Kind::kArray) {
      return false;
    }
    return it->second.array.erase(resolved.index) > 0;
  }
  // Unset through a link removes the target variable only; the link itself
  // survives, so a later set recreates the target (Tcl semantics).
  ++resolved.frame->erase_gen;  // invalidates any primed-bind slot cache
  resolved.frame->vars.erase(it);
  return true;
}

bool Interp::VarExists(const std::string& name) const {
  std::string value;
  if (GetVar(name, &value)) {
    return true;
  }
  // An array name without index also "exists".
  std::string base = name;
  std::string index;
  if (!SplitElementName(name, &base, &index)) {
    Variable* var = FindVarInFrame(*frames_[active_frame_], base);
    return var != nullptr && var->kind == Variable::Kind::kArray;
  }
  return false;
}

bool Interp::GetGlobalVar(const std::string& name, std::string* value) const {
  std::string base = name;
  std::string index;
  bool is_element = SplitElementName(name, &base, &index);
  Variable* var = FindVarInFrame(*frames_[0], base);
  if (var == nullptr) {
    return false;
  }
  if (is_element) {
    auto it = var->array.find(index);
    if (it == var->array.end()) {
      return false;
    }
    *value = it->second.String();
    return true;
  }
  if (var->kind != Variable::Kind::kScalar) {
    return false;
  }
  *value = var->scalar.String();
  return true;
}

Result Interp::SetGlobalVar(const std::string& name, std::string value) {
  std::size_t saved = active_frame_;
  active_frame_ = 0;
  Result r = SetVar(name, std::move(value));
  active_frame_ = saved;
  return r;
}

bool Interp::ArrayNames(const std::string& name, std::vector<std::string>* out) const {
  Variable* var = FindVarInFrame(*frames_[active_frame_], name);
  if (var == nullptr || var->kind != Variable::Kind::kArray) {
    return false;
  }
  out->clear();
  for (const auto& [key, value] : var->array) {
    out->push_back(key);
  }
  return true;
}

bool Interp::IsArray(const std::string& name) const {
  Variable* var = FindVarInFrame(*frames_[active_frame_], name);
  return var != nullptr && var->kind == Variable::Kind::kArray;
}

std::vector<std::string> Interp::LocalVarNames() const {
  std::vector<std::string> names;
  for (const auto& [name, var] : frames_[active_frame_]->vars) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> Interp::GlobalVarNames() const {
  std::vector<std::string> names;
  for (const auto& [name, var] : frames_[0]->vars) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> Interp::ProcNames() const {
  std::vector<std::string> names;
  for (const auto& [name, proc] : procs_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool Interp::ProcBody(const std::string& name, std::string* body) const {
  auto it = procs_.find(name);
  if (it == procs_.end()) {
    return false;
  }
  *body = it->second->body;
  return true;
}

bool Interp::ProcArgs(const std::string& name, std::string* args) const {
  auto it = procs_.find(name);
  if (it == procs_.end()) {
    return false;
  }
  *args = it->second->formals_source;
  return true;
}

// --- Parsing and evaluation ----------------------------------------------------

Result Interp::ParseBracket(std::string_view script, std::size_t* pos, std::string* out) {
  // *pos points at '['. Find the matching ']' while skipping nested
  // brackets, braces, quotes, and backslash escapes, then evaluate the
  // inner script.
  std::size_t i = *pos + 1;
  const std::size_t n = script.size();
  int depth = 1;
  std::size_t start = i;
  while (i < n && depth > 0) {
    char c = script[i];
    if (c == '\\' && i + 1 < n) {
      i += 2;
      continue;
    }
    if (c == '[') {
      ++depth;
    } else if (c == ']') {
      --depth;
      if (depth == 0) {
        break;
      }
    } else if (c == '{') {
      int bd = 1;
      ++i;
      while (i < n && bd > 0) {
        if (script[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (script[i] == '{') {
          ++bd;
        } else if (script[i] == '}') {
          --bd;
        }
        ++i;
      }
      continue;
    } else if (c == '"') {
      ++i;
      while (i < n && script[i] != '"') {
        if (script[i] == '\\' && i + 1 < n) {
          i += 2;
        } else {
          ++i;
        }
      }
    }
    ++i;
  }
  if (depth != 0) {
    return Result::Error("missing close-bracket");
  }
  Result r = Eval(script.substr(start, i - start));
  if (r.code == Status::kError) {
    return r;
  }
  out->append(r.value);
  *pos = i + 1;
  return Result::Ok();
}

Result Interp::ParseVariable(std::string_view script, std::size_t* pos, std::string* out) {
  // *pos points at '$'.
  std::size_t i = *pos + 1;
  const std::size_t n = script.size();
  if (i >= n) {
    out->push_back('$');
    *pos = i;
    return Result::Ok();
  }
  if (script[i] == '{') {
    std::size_t close = script.find('}', i + 1);
    if (close == std::string_view::npos) {
      return Result::Error("missing close-brace for variable name");
    }
    std::string name(script.substr(i + 1, close - i - 1));
    std::string value;
    if (!GetVar(name, &value)) {
      return Result::Error("can't read \"" + name + "\": no such variable");
    }
    out->append(value);
    *pos = close + 1;
    return Result::Ok();
  }
  std::size_t start = i;
  while (i < n && IsVarNameChar(script[i])) {
    ++i;
  }
  if (i == start) {
    // Bare dollar sign.
    out->push_back('$');
    *pos = start;
    return Result::Ok();
  }
  std::string name(script.substr(start, i - start));
  if (i < n && script[i] == '(') {
    // Array element: the index itself undergoes substitution.
    std::size_t j = i + 1;
    std::string index;
    while (j < n && script[j] != ')') {
      char c = script[j];
      if (c == '\\') {
        SubstBackslash(script, &j, &index);
      } else if (c == '$') {
        std::size_t p = j;
        Result r = ParseVariable(script, &p, &index);
        if (r.code == Status::kError) {
          return r;
        }
        j = p;
      } else if (c == '[') {
        std::size_t p = j;
        Result r = ParseBracket(script, &p, &index);
        if (r.code == Status::kError) {
          return r;
        }
        j = p;
      } else {
        index.push_back(c);
        ++j;
      }
    }
    if (j >= n) {
      return Result::Error("missing )");
    }
    name += "(" + index + ")";
    i = j + 1;
  }
  std::string value;
  if (!GetVar(name, &value)) {
    return Result::Error("can't read \"" + name + "\": no such variable");
  }
  out->append(value);
  *pos = i;
  return Result::Ok();
}

Result Interp::SubstituteWord(std::string_view word) {
  std::string out;
  std::size_t i = 0;
  const std::size_t n = word.size();
  while (i < n) {
    char c = word[i];
    if (c == '\\') {
      SubstBackslash(word, &i, &out);
    } else if (c == '$') {
      Result r = ParseVariable(word, &i, &out);
      if (r.code == Status::kError) {
        return r;
      }
    } else if (c == '[') {
      Result r = ParseBracket(word, &i, &out);
      if (r.code == Status::kError) {
        return r;
      }
    } else {
      out.push_back(c);
      ++i;
    }
  }
  return Result::Ok(std::move(out));
}

Result Interp::ParseWord(std::string_view script, std::size_t* pos, std::string* out) {
  std::size_t i = *pos;
  const std::size_t n = script.size();
  out->clear();
  if (script[i] == '{') {
    int depth = 1;
    std::size_t start = i + 1;
    ++i;
    while (i < n && depth > 0) {
      char c = script[i];
      if (c == '\\' && i + 1 < n) {
        if (script[i + 1] == '\n') {
          // Backslash-newline is still processed inside braces.
          ++i;
        }
        i += 2;
        continue;
      }
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0) {
          break;
        }
      }
      ++i;
    }
    if (depth != 0) {
      return Result::Error("missing close-brace");
    }
    std::string_view inner = script.substr(start, i - start);
    // Inside braces: literal, except backslash-newline collapses to space.
    std::size_t j = 0;
    while (j < inner.size()) {
      if (inner[j] == '\\' && j + 1 < inner.size() && inner[j + 1] == '\n') {
        SubstBackslash(inner, &j, out);
      } else {
        out->push_back(inner[j]);
        ++j;
      }
    }
    ++i;  // past closing brace
    if (i < n && !IsWordSeparator(script[i]) && !IsCommandTerminator(script[i])) {
      return Result::Error("extra characters after close-brace");
    }
    *pos = i;
    return Result::Ok();
  }
  if (script[i] == '"') {
    ++i;
    while (i < n && script[i] != '"') {
      char c = script[i];
      if (c == '\\') {
        SubstBackslash(script, &i, out);
      } else if (c == '$') {
        Result r = ParseVariable(script, &i, out);
        if (r.code == Status::kError) {
          return r;
        }
      } else if (c == '[') {
        Result r = ParseBracket(script, &i, out);
        if (r.code == Status::kError) {
          return r;
        }
      } else {
        out->push_back(c);
        ++i;
      }
    }
    if (i >= n) {
      return Result::Error("missing \"");
    }
    ++i;  // past closing quote
    if (i < n && !IsWordSeparator(script[i]) && !IsCommandTerminator(script[i])) {
      return Result::Error("extra characters after close-quote");
    }
    *pos = i;
    return Result::Ok();
  }
  // Bare word.
  while (i < n && !IsWordSeparator(script[i]) && !IsCommandTerminator(script[i])) {
    char c = script[i];
    if (c == '\\') {
      if (i + 1 < n && script[i + 1] == '\n') {
        break;  // acts as a word separator
      }
      SubstBackslash(script, &i, out);
    } else if (c == '$') {
      Result r = ParseVariable(script, &i, out);
      if (r.code == Status::kError) {
        return r;
      }
    } else if (c == '[') {
      Result r = ParseBracket(script, &i, out);
      if (r.code == Status::kError) {
        return r;
      }
    } else {
      out->push_back(c);
      ++i;
    }
  }
  *pos = i;
  return Result::Ok();
}

Result Interp::ExecuteCompiled(const CompiledScript& script) {
  // argv vectors are pooled (stack-wise: nested evaluations acquire their
  // own). Literal and `$name` words land in their slot as a refcount bump;
  // substitution programs build into the slot's string buffer, which is
  // reused in the steady state while the slot's rep stays uniquely owned.
  ValueVec argv;
  bool argv_acquired = false;
  Result last = Result::Ok();
  for (const CompiledCommand& command : script.commands) {
    current_line_ = command.line;
    if (!command.literal_argv.empty()) {
      // Every word is a literal: dispatch straight from the IR.
      last = InvokeLiteral(command);
      if (last.code != Status::kOk) {
        break;
      }
      continue;
    }
    if (!argv_acquired) {
      if (!argv_pool_.empty()) {
        argv = std::move(argv_pool_.back());
        argv_pool_.pop_back();
      }
      argv_acquired = true;
    }
    const std::size_t words = command.words.size();
    if (argv.size() > words) {
      argv.resize(words);
    }
    bool failed = false;
    for (std::size_t w = 0; w < words; ++w) {
      const CompiledWord& word = command.words[w];
      if (w == argv.size()) {
        argv.emplace_back();
      }
      Value& slot = argv[w];
      if (word.literal) {
        slot = word.value;
        continue;
      }
      if (word.parse_error.empty() && word.segments.size() == 1 &&
          word.segments[0].kind == WordSegment::Kind::kVariable) {
        // `$name` word: share the variable's rep, so typed reps a command
        // computes through this slot (a list parse in `lindex $l $i`) are
        // cached on the variable itself.
        if (const Value* fast = GetVarValuePtr(word.segments[0].text)) {
          slot = *fast;
          continue;
        }
      }
      std::string* buf = slot.MutableString();
      buf->clear();
      Result r = EvalWordSegments(*this, word.segments, buf);
      if (r.code == Status::kError) {
        last = std::move(r);
        failed = true;
        break;
      }
      if (!word.parse_error.empty()) {
        // Structural parse error embedded at compile time; the segments
        // before it have run (for their side effects), matching the order
        // fresh parsing reports it in.
        last = Result::Error(word.parse_error);
        failed = true;
        break;
      }
    }
    if (failed) {
      break;
    }
    last = command.words[0].literal ? InvokeMemoized(command, argv)
                                    : InvokeCommand(argv, &command);
    if (last.code != Status::kOk) {
      break;
    }
  }
  if (argv_acquired) {
    argv_pool_.push_back(std::move(argv));
  }
  return last;
}

ScriptHandle Interp::Precompile(std::string_view script) {
  std::shared_ptr<const void> cached = script_cache_->Get(script);
  if (cached != nullptr) {
    return std::static_pointer_cast<const CompiledScript>(std::move(cached));
  }
  ScriptHandle compiled = CompileScript(script);
  script_cache_->Put(script, compiled);
  return compiled;
}

Result Interp::EvalCompiled(const ScriptHandle& script) {
  if (script == nullptr) {
    return Result::Ok();
  }
  if (nesting_ == 0) {
    // Fresh top-level evaluation: arm the watchdog budgets and start a new
    // errorInfo trace.
    steps_used_ = 0;
    limit_tripped_ = kLimitNone;
    // The wall-clock deadline is armed lazily at the first periodic probe,
    // so short scripts never touch the clock.
    deadline_ns_ = 0;
    error_trace_active_ = false;
  }
  if (++nesting_ > max_nesting_) {
    --nesting_;
    g_limit_depth.Increment();
    return Result::Error("limit exceeded: too many nested calls to Eval (depth " +
                         std::to_string(max_nesting_) + ")");
  }
  // Charge the budgets per script evaluation too, not just per command:
  // a loop with an empty body (`while {1} {}`) re-evaluates the body every
  // iteration without ever invoking a command, and must still trip.
  if ((max_steps_ != 0 || max_eval_ms_ > 0 || scripted_ms_trip_step_ != 0) &&
      !ChargeEvalStep()) {
    Result guard = CheckEvalBudget();
    if (!guard.ok()) {
      --nesting_;
      return guard;
    }
  }
  g_eval_count.Increment();
  g_eval_depth.Observe(static_cast<std::uint64_t>(nesting_));
  int saved_line = current_line_;
  current_line_ = 1;
  Result r = ExecuteCompiled(*script);
  current_line_ = saved_line;
  --nesting_;
  return r;
}

Result Interp::Eval(std::string_view script) { return EvalCompiled(Precompile(script)); }

Result Interp::GlobalEval(std::string_view script) {
  std::size_t saved = active_frame_;
  active_frame_ = 0;
  Result r = Eval(script);
  active_frame_ = saved;
  return r;
}

Result Interp::CheckEvalBudget() {
  if (limit_tripped_ != kLimitNone) {
    // Sticky until the outermost Eval unwinds: re-raising on every command
    // keeps a hostile `catch` loop from swallowing the error and running on.
    return limit_tripped_ == kLimitSteps
               ? Result::Error("limit exceeded: step budget of " + std::to_string(max_steps_) +
                               " commands exhausted")
               : Result::Error("limit exceeded: wall-clock budget of " +
                               std::to_string(max_eval_ms_) + " ms exhausted");
  }
  // The fast path already charged the step; this slow path only runs when
  // a budget is exhausted or the periodic wall-clock probe is due.
  if (max_steps_ != 0 && steps_used_ > max_steps_) {
    limit_tripped_ = kLimitSteps;
    g_limit_steps.Increment();
    // First trip only (the sticky flag re-raises without re-entering this
    // branch): preserve the runaway script's spans before the unwind.
    wobs::DumpFlightRecord("eval-limit-steps");
    return Result::Error("limit exceeded: step budget of " + std::to_string(max_steps_) +
                         " commands exhausted");
  }
  if ((max_eval_ms_ > 0 || scripted_ms_trip_step_ != 0) &&
      (steps_used_ & 63u) == 0) {
    // A replay substitutes the recorded trip step for the clock: the virtual
    // clock is frozen, so the deadline comparison alone would never fire.
    bool due = false;
    if (scripted_ms_trip_step_ != 0) {
      due = steps_used_ >= scripted_ms_trip_step_;
    } else if (deadline_ns_ == 0) {
      deadline_ns_ =
          wobs::NowNs() + static_cast<std::uint64_t>(max_eval_ms_) * 1000000u;
    } else {
      due = wobs::NowNs() > deadline_ns_;
    }
    if (due) {
      scripted_ms_trip_step_ = 0;
      limit_tripped_ = kLimitMs;
      g_limit_ms.Increment();
      if (limit_observer_) {
        limit_observer_("ms", steps_used_);
      }
      wobs::DumpFlightRecord("eval-limit-ms");
      return Result::Error("limit exceeded: wall-clock budget of " +
                           std::to_string(max_eval_ms_) + " ms exhausted");
    }
  }
  return Result::Ok();
}

void Interp::RecordErrorTrace(const ValueVec& argv, const Result& r) {
  // Fallback when no compiled source span is at hand: reconstruct the
  // command from its substituted argv.
  std::string cmd = argv[0].String();
  for (std::size_t a = 1; a < argv.size() && cmd.size() < 60; ++a) {
    cmd += ' ';
    cmd += argv[a].String();
  }
  RecordErrorTrace(std::string_view(cmd), r);
}

void Interp::RecordErrorTrace(std::string_view cmd, const Result& r) {
  // Maintain errorInfo like Tcl: a rolling trace of the failing commands.
  // A fresh error (no trace in flight) starts from the message — or from the
  // seed `error msg customInfo` planted — instead of appending to the stale
  // trace of some earlier, already-handled error.
  std::string info;
  if (!error_trace_active_) {
    error_trace_active_ = true;
    info = r.value;
  } else if (!GetGlobalVar("errorInfo", &info)) {
    info = r.value;
  }
  std::string text(cmd);
  if (text.size() > 60) {
    text.resize(60);
    text += "...";
  }
  info += "\n    while executing\n\"" + text + "\" (line " + std::to_string(current_line_) +
          ", level " + std::to_string(nesting_) + ")";
  SetGlobalVar("errorInfo", info);
}

Result Interp::InvokeCommand(const ValueVec& argv, const CompiledCommand* command) {
  ++command_count_;
  auto trace = [&](const Result& failed) {
    if (command != nullptr && !command->source.empty()) {
      RecordErrorTrace(std::string_view(command->source), failed);
    } else {
      RecordErrorTrace(argv, failed);
    }
  };
  if ((max_steps_ != 0 || max_eval_ms_ > 0 || scripted_ms_trip_step_ != 0) &&
      !ChargeEvalStep()) {
    Result guard = CheckEvalBudget();
    if (guard.code != Status::kOk) {
      g_error_count.Increment();
      trace(guard);
      return guard;
    }
  }
  g_command_count.Increment();
  const std::string& name = argv[0].String();
  // Per-command span: the name view stays valid for the whole invocation
  // (argv is alive until after the ScopedEvent destructor fires).
  wobs::ScopedEvent obs_span("tcl", name, &g_command_duration);
  auto it = commands_.find(name);
  if (it == commands_.end()) {
    g_error_count.Increment();
    Result r = Result::Error("invalid command name \"" + name + "\"");
    trace(r);
    return r;
  }
  // Pin the function so that commands that redefine themselves are safe;
  // the refcount bump is all the copy costs.
  std::shared_ptr<const CommandFn> fn = it->second;
  Result r = (*fn)(*this, argv);
  if (r.code == Status::kError) {
    g_error_count.Increment();
    if (r.skip_trace) {
      r.skip_trace = false;  // consumed: enclosing commands record theirs
    } else {
      trace(r);
    }
  } else {
    error_trace_active_ = false;
  }
  return r;
}

Result Interp::InvokeLiteral(const CompiledCommand& command) {
  return InvokeMemoized(command, command.literal_argv);
}

Result Interp::InvokeMemoized(const CompiledCommand& command, const ValueVec& argv) {
  ++command_count_;
  auto trace = [&](const Result& failed) {
    if (!command.source.empty()) {
      RecordErrorTrace(std::string_view(command.source), failed);
    } else {
      RecordErrorTrace(argv, failed);
    }
  };
  if ((max_steps_ != 0 || max_eval_ms_ > 0 || scripted_ms_trip_step_ != 0) &&
      !ChargeEvalStep()) {
    Result guard = CheckEvalBudget();
    if (guard.code != Status::kOk) {
      g_error_count.Increment();
      trace(guard);
      return guard;
    }
  }
  g_command_count.Increment();
  wobs::ScopedEvent obs_span("tcl", argv[0].String(), &g_command_duration);
  // Pin a strong ref for the duration of the call: the memo is weak (see
  // script.h — a strong memo would cycle on self-recursive procs), and a
  // redefinition (or a nested dispatch of this same command after one) may
  // drop the table's ref while the function is running.
  std::shared_ptr<const void> fn;
  if (command.resolved_owner == this && command.resolved_epoch == command_epoch_) {
    fn = command.resolved_fn.lock();
  }
  if (!fn) {
    auto it = commands_.find(argv[0].String());
    if (it == commands_.end()) {
      g_error_count.Increment();
      Result r = Result::Error("invalid command name \"" + argv[0].String() + "\"");
      trace(r);
      return r;
    }
    fn = it->second;
    command.resolved_fn = fn;
    command.resolved_owner = this;
    command.resolved_epoch = command_epoch_;
  }
  Result r = (*static_cast<const CommandFn*>(fn.get()))(*this, argv);
  if (r.code == Status::kError) {
    g_error_count.Increment();
    if (r.skip_trace) {
      r.skip_trace = false;  // consumed: enclosing commands record theirs
    } else {
      trace(r);
    }
  } else {
    error_trace_active_ = false;
  }
  return r;
}

Result Interp::EvalInFrame(std::string_view script, std::size_t frame_index) {
  std::size_t saved = active_frame_;
  active_frame_ = frame_index;
  Result r = Eval(script);
  active_frame_ = saved;
  return r;
}

// --- InterpInternal -------------------------------------------------------------

Result InterpInternal::DefineProc(Interp& interp, const std::string& name,
                                  const std::string& formals_source, const std::string& body) {
  auto proc = std::make_shared<Interp::Proc>();
  proc->formals_source = formals_source;
  proc->body = body;
  proc->compiled = CompileScript(body);
  // Parse the formal list: each element is a name or a {name default} pair.
  std::vector<std::string> items;
  if (!SplitList(formals_source, &items)) {
    return Result::Error("unbalanced braces in formal argument list");
  }
  for (const std::string& item : items) {
    std::vector<std::string> parts;
    if (!SplitList(item, &parts) || parts.empty() || parts.size() > 2) {
      return Result::Error("bad formal argument specifier \"" + item + "\"");
    }
    Interp::Proc::Formal formal;
    formal.name = parts[0];
    if (parts.size() == 2) {
      formal.default_value = parts[1];
      formal.has_default = true;
    }
    proc->formals.push_back(std::move(formal));
  }
  interp.procs_[name] = proc;
  interp.RegisterCommand(name, [proc, name](Interp& in, const ValueVec& argv) {
    // Bind actuals to formals in a fresh frame (recycled from the pool, so
    // steady-state calls reuse the var table's bucket array).
    std::unique_ptr<Interp::Frame> frame;
    bool primed = false;
    if (!proc->frame_pool.empty()) {
      // A spent frame of this very proc: the formal nodes are still in the
      // table and get rebound in place.
      frame = std::move(proc->frame_pool.back());
      proc->frame_pool.pop_back();
      primed = true;
    } else if (!in.frame_pool_.empty()) {
      frame = std::move(in.frame_pool_.back());
      in.frame_pool_.pop_back();
    } else {
      frame = std::make_unique<Interp::Frame>();
    }
    if (in.var_node_pool_ == nullptr) {
      in.var_node_pool_ = std::make_unique<Interp::VarNodePool>();
    }
    Interp::VarNodePool& pool = *in.var_node_pool_;
    auto recycle = [&in, &pool, &proc](std::unique_ptr<Interp::Frame> spent) {
      // Keep the frame primed for this proc while it stayed small and lean;
      // otherwise harvest the var-table nodes (oversized strings are let go
      // so the pools stay small) and return it to the shared pool.
      if (proc->frame_pool.size() < 4 && proc->formals.size() <= 8 &&
          spent->vars.size() <= proc->formals.size() + 4) {
        bool lean = true;
        for (const auto& entry : spent->vars) {
          if (entry.second.scalar.StringCapacity() > 4096 ||
              entry.second.scalar.HasListRep() || !entry.second.array.empty()) {
            lean = false;
            break;
          }
        }
        if (lean) {
          proc->frame_pool.push_back(std::move(spent));
          return;
        }
      }
      spent->formal_slots.clear();
      while (!spent->vars.empty()) {
        auto nh = spent->vars.extract(spent->vars.begin());
        if (pool.nodes.size() < 64 && nh.mapped().scalar.StringCapacity() <= 4096) {
          // Pooled nodes must not pin value reps (a kept rep could be shared
          // with cached IR or another variable).
          nh.mapped().scalar = Value();
          nh.mapped().array.clear();
          pool.nodes.push_back(std::move(nh));
        }
      }
      in.frame_pool_.push_back(std::move(spent));
    };
    Interp::Variable* slots[8];
    bool slots_cached = false;
    if (primed) {
      if (frame->slots_gen == frame->erase_gen &&
          frame->formal_slots.size() == proc->formals.size()) {
        // The previous call's slot cache is intact: no lookups at all.
        for (std::size_t f = 0; f < proc->formals.size(); ++f) {
          slots[f] = frame->formal_slots[f];
        }
        slots_cached = true;
      } else {
        // Locate every formal's retained node; a miss (a prior call unset
        // a formal) falls back to a from-scratch bind.
        for (std::size_t f = 0; f < proc->formals.size(); ++f) {
          auto it = frame->vars.find(proc->formals[f].name);
          if (it == frame->vars.end()) {
            primed = false;
            break;
          }
          slots[f] = &it->second;
        }
      }
      if (primed && frame->vars.size() != proc->formals.size()) {
        // Drop locals the previous call left behind (erasure keeps the
        // formal nodes' addresses valid: the table is node-based).
        ++frame->erase_gen;
        for (auto it = frame->vars.begin(); it != frame->vars.end();) {
          bool is_formal = false;
          for (const auto& formal : proc->formals) {
            if (formal.name == it->first) {
              is_formal = true;
              break;
            }
          }
          it = is_formal ? std::next(it) : frame->vars.erase(it);
        }
      }
      if (!primed) {
        ++frame->erase_gen;
        frame->vars.clear();
        frame->formal_slots.clear();
      }
    }
    auto bind = [&pool, &frame](const std::string& formal_name) -> Interp::Variable& {
      if (!pool.nodes.empty()) {
        auto nh = std::move(pool.nodes.back());
        pool.nodes.pop_back();
        nh.key() = formal_name;
        auto res = frame->vars.insert(std::move(nh));
        if (!res.inserted) {
          pool.nodes.push_back(std::move(res.node));  // duplicate formal name
        }
        return res.position->second;
      }
      return frame->vars.try_emplace(formal_name).first->second;
    };
    std::size_t actual = 1;
    for (std::size_t f = 0; f < proc->formals.size(); ++f) {
      const auto& formal = proc->formals[f];
      Interp::Variable* var_ptr = primed ? slots[f] : &bind(formal.name);
      if (!primed && f < 8) {
        slots[f] = var_ptr;  // feeds the slot cache below
      }
      Interp::Variable& var = *var_ptr;
      var.kind = Interp::Variable::Kind::kScalar;
      if (formal.name == "args" && f + 1 == proc->formals.size()) {
        // The rest of argv becomes a list value: the reps are shared and the
        // list string only materializes if the proc treats $args as a string.
        std::vector<Value> rest(argv.begin() + static_cast<long>(actual), argv.end());
        var.scalar = Value::FromList(std::move(rest));
        actual = argv.size();
      } else if (actual < argv.size()) {
        var.scalar = argv[actual++];
      } else if (formal.has_default) {
        var.scalar.SetString(formal.default_value);
      } else {
        recycle(std::move(frame));
        return Result::Error("no value given for parameter \"" + formal.name + "\" to \"" +
                             name + "\"");
      }
    }
    if (actual < argv.size()) {
      recycle(std::move(frame));
      return Result::Error("called \"" + name + "\" with too many arguments");
    }
    if (proc->formals.size() <= 8) {
      if (!slots_cached) {
        frame->formal_slots.assign(slots, slots + proc->formals.size());
      }
      frame->slots_gen = frame->erase_gen;
    }
    in.frames_.push_back(std::move(frame));
    std::size_t saved = in.active_frame_;
    in.active_frame_ = in.frames_.size() - 1;
    Result r = in.EvalCompiled(proc->compiled);
    in.active_frame_ = saved;
    recycle(std::move(in.frames_.back()));
    in.frames_.pop_back();
    if (r.code == Status::kReturn) {
      r.code = Status::kOk;
    } else if (r.code == Status::kBreak) {
      return Result::Error("invoked \"break\" outside of a loop");
    } else if (r.code == Status::kContinue) {
      return Result::Error("invoked \"continue\" outside of a loop");
    }
    return r;
  });
  return Result::Ok();
}

bool InterpInternal::ResolveLevel(Interp& interp, const std::string& spec, bool* was_explicit,
                                  std::size_t* frame_index, std::string* error) {
  *was_explicit = true;
  long current = static_cast<long>(interp.active_frame_);
  long target = 0;
  if (!spec.empty() && spec[0] == '#') {
    if (!ParseInt(std::string_view(spec).substr(1), &target, nullptr)) {
      *error = "bad level \"" + spec + "\"";
      return false;
    }
  } else if (!spec.empty() &&
             std::isdigit(static_cast<unsigned char>(spec[0]))) {
    long up = 0;
    if (!ParseInt(spec, &up, nullptr)) {
      *error = "bad level \"" + spec + "\"";
      return false;
    }
    target = current - up;
  } else {
    *was_explicit = false;
    target = current - 1;
  }
  if (target < 0 || target > current) {
    *error = "bad level \"" + spec + "\"";
    return false;
  }
  *frame_index = static_cast<std::size_t>(target);
  return true;
}

Result InterpInternal::Upvar(Interp& interp, const std::string& level_spec,
                             const std::string& other_name, const std::string& local_name) {
  bool explicit_level = false;
  std::size_t frame_index = 0;
  std::string error;
  if (!ResolveLevel(interp, level_spec, &explicit_level, &frame_index, &error)) {
    return Result::Error(error);
  }
  Interp::Frame& target = *interp.frames_[frame_index];
  // Ensure the target variable exists at least as a placeholder scalar so the
  // link has somewhere to land when written through.
  if (target.vars.find(other_name) == target.vars.end()) {
    target.vars[other_name] = Interp::Variable{};
  }
  Interp::Variable link;
  link.kind = Interp::Variable::Kind::kLink;
  link.link_frame = frame_index;
  link.link_name = other_name;
  interp.frames_[interp.active_frame_]->vars[local_name] = std::move(link);
  return Result::Ok();
}

Result InterpInternal::Uplevel(Interp& interp, const std::string& level_spec,
                               std::string_view script) {
  bool explicit_level = false;
  std::size_t frame_index = 0;
  std::string error;
  if (!ResolveLevel(interp, level_spec, &explicit_level, &frame_index, &error)) {
    return Result::Error(error);
  }
  return interp.EvalInFrame(script, frame_index);
}

Result InterpInternal::Global(Interp& interp, const std::string& name) {
  if (interp.active_frame_ == 0) {
    return Result::Ok();  // already global: no-op
  }
  Interp::Frame& global = *interp.frames_[0];
  if (global.vars.find(name) == global.vars.end()) {
    global.vars[name] = Interp::Variable{};
  }
  Interp::Variable link;
  link.kind = Interp::Variable::Kind::kLink;
  link.link_frame = 0;
  link.link_name = name;
  interp.frames_[interp.active_frame_]->vars[name] = std::move(link);
  return Result::Ok();
}

Result InterpInternal::ParseBracket(Interp& interp, std::string_view s, std::size_t* pos,
                                    std::string* out) {
  return interp.ParseBracket(s, pos, out);
}

Result InterpInternal::ParseVariable(Interp& interp, std::string_view s, std::size_t* pos,
                                     std::string* out) {
  return interp.ParseVariable(s, pos, out);
}

}  // namespace wtcl
