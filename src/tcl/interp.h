// wtcl: a from-scratch implementation of the Tcl command language as described
// in Ousterhout's "Tcl: An Embeddable Command Language" (USENIX 1990), at the
// feature level Wafe (USENIX 1993) embeds: procs, upvar / uplevel / global
// scoping, associative arrays, an expr evaluator and a C++ embedding API for
// registering application commands. Values keep Tcl's everything-is-a-string
// semantics but carry cached numeric and list reps (src/tcl/value.h), so hot
// loops do not reparse the same string per use.
#ifndef SRC_TCL_INTERP_H_
#define SRC_TCL_INTERP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/tcl/value.h"

namespace wtcl {

// Completion code of a script or command, mirroring TCL_OK .. TCL_CONTINUE.
enum class Status {
  kOk,
  kError,
  kReturn,
  kBreak,
  kContinue,
};

// Result of evaluating a command or script: a completion code plus the
// interpreter result string (the value on kOk, the error message on kError).
struct Result {
  Status code = Status::kOk;
  std::string value;
  // One-shot errorInfo suppression: set by control commands (if/while/for)
  // when propagating an error out of an evaluated body, whose levels Tcl's
  // byte-compiled control structures never add. The immediate dispatcher
  // consumes the flag (skips its trace level and clears it), so enclosing
  // commands — a proc call, a foreach — still record theirs.
  bool skip_trace = false;

  bool ok() const { return code == Status::kOk; }

  static Result Ok(std::string v = "") { return Result{Status::kOk, std::move(v)}; }
  static Result Error(std::string msg) { return Result{Status::kError, std::move(msg)}; }
};

class Interp;

// Compile-once script IR (src/tcl/script.h). Scripts compile to an immutable
// CompiledScript held by shared_ptr, so cached IR survives cache flushes and
// evictions that happen while it is still executing.
struct CompiledScript;
struct CompiledCommand;
using ScriptHandle = std::shared_ptr<const CompiledScript>;
class CompileCache;

// Opaque handle to a compiled `expr` AST (the node types are private to
// expr.cc); obtained from PrecompileExpr and evaluated with
// ExprBooleanCompiled, so loop conditions skip the cache lookup on every
// iteration.
using ExprHandle = std::shared_ptr<const void>;

// An application command. `argv[0]` is the command name, exactly as in Tcl's
// C interface; all arguments are fully substituted. Arguments arrive as
// Values: call `argv[i].String()` for the string rep, or the typed accessors
// to reuse (and fill) the cached numeric/list reps.
using CommandFn = std::function<Result(Interp&, const ValueVec&)>;

// --- Tcl list utilities -----------------------------------------------------
//
// Lists are strings; these helpers implement Tcl_SplitList / Tcl_Merge
// semantics (brace quoting, backslash escapes).

// Splits a Tcl list into its elements. Returns false on unbalanced quoting.
bool SplitList(std::string_view list, std::vector<std::string>* out);

// Quotes one element so that SplitList recovers it verbatim.
std::string QuoteListElement(std::string_view element);

// Joins elements into a canonical Tcl list string.
std::string MergeList(const std::vector<std::string>& elements);

// True if `str` matches the glob `pattern` (Tcl's string match rules:
// * ? [..] and backslash escapes).
bool GlobMatch(std::string_view pattern, std::string_view str);

// --- Interpreter ------------------------------------------------------------

class Interp {
 public:
  Interp();
  ~Interp();

  Interp(const Interp&) = delete;
  Interp& operator=(const Interp&) = delete;

  // Evaluates a script (a sequence of commands separated by newlines or
  // semicolons) in the current call frame. The script is compiled once into
  // an IR (memoized in a content-keyed cache) and executed from the IR.
  Result Eval(std::string_view script);

  // Compiles a script through the cache without executing it. The returned
  // handle can be executed any number of times with EvalCompiled; holders
  // (loop bodies, proc bodies) skip even the cache lookup on reuse.
  ScriptHandle Precompile(std::string_view script);

  // Executes a previously compiled script under exactly the same guards,
  // counters and errorInfo machinery as Eval.
  Result EvalCompiled(const ScriptHandle& script);

  // Evaluates a script in the global frame (Tcl_GlobalEval).
  Result GlobalEval(std::string_view script);

  // Evaluates an expression as the `expr` command would.
  Result EvalExpr(std::string_view expression);

  // Convenience: evaluates an expression and reports its boolean value.
  Result ExprBoolean(std::string_view expression, bool* value);

  // Compiles an expression through the expr cache without evaluating it, and
  // evaluates a handle repeatedly (loop conditions). Never null; expressions
  // the compiler cannot handle evaluate through the legacy parser.
  ExprHandle PrecompileExpr(std::string_view expression);
  Result ExprBooleanCompiled(const ExprHandle& expression, bool* value);

  // --- Commands -------------------------------------------------------------

  // Registers (or replaces) a command. Multiple names may map to the same
  // function; Wafe uses this for abbreviations such as sV / setValues.
  void RegisterCommand(const std::string& name, CommandFn fn);

  // Removes a command. Returns false if it did not exist.
  bool UnregisterCommand(const std::string& name);

  // Renames a command (Tcl's `rename`); empty `to` deletes it.
  bool RenameCommand(const std::string& from, const std::string& to);

  bool HasCommand(const std::string& name) const;

  // Names of all registered commands (procs included), sorted.
  std::vector<std::string> CommandNames() const;

  // --- Variables --------------------------------------------------------—--

  // Reads a variable in the current frame. `name` may be scalar ("x") or an
  // array element ("a(i)"). Returns false if unset.
  bool GetVar(const std::string& name, std::string* value) const;

  // Borrowed read of a plain scalar (no "a(i)" element syntax) in the
  // current frame, chasing scalar upvar links. Returns nullptr when the
  // name is unset, an array, or needs the full resolver — callers fall
  // back to GetVar. The pointer is invalidated by the next variable write
  // or frame change, so it must not outlive the current command. The string
  // overload materializes the slot's string rep.
  const std::string* GetVarPtr(const std::string& name) const;

  // Typed borrowed reads of a plain scalar, same resolution and lifetime
  // rules. The mutable overload is for read-modify-write commands (incr):
  // writes must go through the Value API (SetInt/SetString), which keeps the
  // copy-on-write contract with argv slots that share the rep.
  const Value* GetVarValuePtr(const std::string& name) const;
  Value* GetVarValuePtr(const std::string& name);

  // Writes a variable in the current frame.
  Result SetVar(const std::string& name, std::string value);

  // Typed write: the variable slot adopts `value` (rep shared, caches and
  // all), so e.g. a list rep cached on a loop variable survives the store.
  Result SetVarValue(const std::string& name, Value value);

  // Removes a variable (whole array if `name` is an array name).
  bool UnsetVar(const std::string& name);

  bool VarExists(const std::string& name) const;

  // Global-frame accessors, usable regardless of the current frame.
  bool GetGlobalVar(const std::string& name, std::string* value) const;
  Result SetGlobalVar(const std::string& name, std::string value);

  // Array introspection in the current frame: element names, unsorted.
  bool ArrayNames(const std::string& name, std::vector<std::string>* out) const;
  bool IsArray(const std::string& name) const;

  // --- Procs and frames ------------------------------------------------------

  // Current nesting level; 0 is the global frame.
  int CurrentLevel() const;

  // Total commands evaluated so far (info cmdcount).
  std::size_t CommandCount() const { return command_count_; }

  // --- Eval guards ----------------------------------------------------------
  //
  // Three independent limits contain runaway scripts. Each trips with a
  // catchable `limit exceeded ...` error; the steps/ms limits stay tripped
  // until evaluation unwinds to the top level, so a hostile `catch` loop
  // cannot swallow the error and keep running.

  // Maximum allowed eval recursion (guards runaway scripts).
  void set_max_nesting(int depth) { max_nesting_ = depth; }
  int max_nesting() const { return max_nesting_; }

  // Command budget per outermost Eval: a script that invokes more than
  // `steps` commands is interrupted. 0 disables.
  void set_max_steps(std::uint64_t steps) { max_steps_ = steps; }
  std::uint64_t max_steps() const { return max_steps_; }

  // Wall-clock watchdog per outermost Eval, in milliseconds; probed every 64
  // commands to keep the hot path cheap. 0 disables.
  void set_max_eval_ms(long ms) { max_eval_ms_ = ms; }
  long max_eval_ms() const { return max_eval_ms_; }

  // --- Record/replay hooks --------------------------------------------------
  //
  // The ms watchdog reads the wall clock, so which probe it trips at is
  // nondeterministic. The session recorder installs an observer to journal
  // the step count a trip fired at; replay arms a scripted trip at that
  // step, and the probe fires on step count instead of the (frozen virtual)
  // clock — the replayed script executes exactly as many commands as the
  // recorded one did.
  using LimitObserver = std::function<void(const char* kind, std::uint64_t steps)>;
  void set_limit_observer(LimitObserver fn) { limit_observer_ = std::move(fn); }

  // Arms (or, with 0, disarms) a one-shot forced ms-watchdog trip at the
  // given step count of the next outermost Eval. Probe granularity is 64
  // steps, matching recording, so a recorded trip step always lands on a
  // probe. Cleared when it fires.
  void ArmScriptedMsTrip(std::uint64_t at_step) { scripted_ms_trip_step_ = at_step; }

  // True while the errorInfo global holds the trace of the most recent
  // error; false e.g. for parse errors that never reached a command.
  bool error_trace_active() const { return error_trace_active_; }

  // Substitutes backslash sequences, variables, and bracketed commands in a
  // string, as double-quote context does. Public because Wafe's percent-code
  // engine composes with it.
  Result SubstituteWord(std::string_view word);

  // Output sink used by `puts` / `echo`. Defaults to stdout; Wafe redirects
  // it so script output reaches the frontend's stdout or the backend channel.
  using OutputFn = std::function<void(const std::string&)>;
  void set_output(OutputFn fn) { output_ = std::move(fn); }
  void Output(const std::string& text) const;

  // Drops every memoized compilation artifact (script IR and expr ASTs).
  // Returns the number of entries dropped. Running scripts are unaffected:
  // they hold shared_ptrs to their IR.
  std::size_t FlushCompileCaches();

  // Entry counts of the two compile caches (for tests and diagnostics).
  std::size_t ScriptCacheSize() const;
  std::size_t ExprCacheSize() const;

  // Names of user procs only, sorted.
  std::vector<std::string> ProcNames() const;

  // Body / formal-argument list for a proc (info body / info args).
  bool ProcBody(const std::string& name, std::string* body) const;
  bool ProcArgs(const std::string& name, std::string* args) const;

  // Variable names visible in the current frame / the global frame.
  std::vector<std::string> LocalVarNames() const;
  std::vector<std::string> GlobalVarNames() const;

 private:
  // Accessor for the built-in commands that must manipulate call frames
  // (proc, upvar, uplevel, global) and the expr evaluator.
  friend struct InterpInternal;

  struct Variable;
  struct Frame;
  struct Proc;

  Result EvalInFrame(std::string_view script, std::size_t frame_index);
  // `command` (when non-null) supplies the source span quoted in errorInfo;
  // without it the trace falls back to joining the substituted argv.
  Result InvokeCommand(const ValueVec& argv,
                       const CompiledCommand* command = nullptr);

  // Dispatch of a fully-literal compiled command, memoizing the command
  // lookup in the IR (revalidated against command_epoch_).
  Result InvokeLiteral(const CompiledCommand& command);

  // Same memoized dispatch for an assembled argv whose name word is a
  // literal (argv[0] is fixed for the life of the IR).
  Result InvokeMemoized(const CompiledCommand& command, const ValueVec& argv);

  // Runs the compiled IR: materializes each command's argv (running word
  // substitution programs) and dispatches through InvokeCommand.
  Result ExecuteCompiled(const CompiledScript& script);

  // Inline fast path of the eval budgets: charges one step and reports
  // whether the out-of-line slow path must run (a trip is pending, the
  // step budget is exhausted, or the periodic wall-clock probe is due).
  bool ChargeEvalStep() {
    if (limit_tripped_ != 0) {
      return false;
    }
    ++steps_used_;
    if (max_steps_ != 0 && steps_used_ > max_steps_) {
      return false;
    }
    return (max_eval_ms_ <= 0 && scripted_ms_trip_step_ == 0) ||
           (steps_used_ & 63u) != 0;
  }

  // Slow path: raises (or re-raises) the limit error when a budget is
  // exhausted, and runs the periodic wall-clock probe (arming the deadline
  // lazily on its first visit).
  Result CheckEvalBudget();

  // Appends one "while executing" level to the errorInfo trace. The argv
  // form is the fallback when no source span is available; the string form
  // takes the command text to quote (normally CompiledCommand::source).
  void RecordErrorTrace(const ValueVec& argv, const Result& r);
  void RecordErrorTrace(std::string_view cmd, const Result& r);

  // Parses one word starting at `pos`; appends the produced word (or words,
  // for a future expansion syntax) to `out`. Used by the script parser.
  Result ParseWord(std::string_view script, std::size_t* pos, std::string* out);
  Result ParseBracket(std::string_view script, std::size_t* pos, std::string* out);
  Result ParseVariable(std::string_view script, std::size_t* pos, std::string* out);

  Variable* FindVar(const std::string& name) const;
  Variable* FindVarInFrame(Frame& frame, const std::string& base) const;

  // A variable reference resolved through upvar links to its owning frame,
  // base name, and (for array elements) index.
  struct ResolvedVar;
  bool ResolveName(const std::string& name, ResolvedVar* out) const;

  // Functions are held by shared_ptr so dispatch can pin the implementation
  // with one refcount bump (no std::function copy per invocation) while a
  // command that renames or redefines itself mid-call stays safe.
  std::unordered_map<std::string, std::shared_ptr<const CommandFn>> commands_;
  // Bumped on every command-table mutation; invalidates the per-command
  // dispatch memos embedded in compiled scripts.
  std::uint64_t command_epoch_ = 1;
  std::unordered_map<std::string, std::shared_ptr<Proc>> procs_;
  // Content-keyed LRU memoization of compiled scripts and expr ASTs. The
  // expr cache lives here (rather than in expr.cc statics) so independent
  // interpreters cannot observe each other through cache timing, and so a
  // flush is a per-interpreter operation.
  std::unique_ptr<CompileCache> script_cache_;
  std::unique_ptr<CompileCache> expr_cache_;
  std::vector<std::unique_ptr<Frame>> frames_;
  std::size_t active_frame_ = 0;  // index into frames_
  // Recycled allocations for the hot dispatch path: spent argv vectors (with
  // their word strings' buffers) and spent proc frames (with their var
  // tables' bucket arrays). Both are used stack-wise, so a plain vector of
  // spares is enough.
  std::vector<ValueVec> argv_pool_;
  std::vector<std::unique_ptr<Frame>> frame_pool_;
  // Spare var-table nodes harvested from spent proc frames; rebinding a
  // formal reuses a node (and its string's buffer) instead of allocating.
  struct VarNodePool;
  std::unique_ptr<VarNodePool> var_node_pool_;
  OutputFn output_;
  int nesting_ = 0;
  int max_nesting_ = 1000;
  std::size_t command_count_ = 0;
  // Eval-guard state: budgets are armed when nesting_ goes 0 -> 1 and the
  // trip is sticky until that outermost Eval returns.
  std::uint64_t max_steps_ = 0;
  long max_eval_ms_ = 0;
  std::uint64_t steps_used_ = 0;
  std::uint64_t deadline_ns_ = 0;  // lazily armed at the first periodic probe
  int limit_tripped_ = 0;  // 0 = not tripped, else the kind that tripped
  // Record/replay: journals ms-watchdog trips / forces one at a fixed step.
  LimitObserver limit_observer_;
  std::uint64_t scripted_ms_trip_step_ = 0;  // 0 = disarmed
  // Source-line bookkeeping for errorInfo traces; true while errorInfo holds
  // the trace of the error currently unwinding (cleared on any success, so a
  // later unrelated error starts a fresh trace instead of appending).
  int current_line_ = 1;
  bool error_trace_active_ = false;
};

// Registers every built-in command (set, if, while, proc, string, list ...).
// Called by the Interp constructor; exposed for tests that build bare interps.
void RegisterCoreBuiltins(Interp& interp);
void RegisterStringBuiltins(Interp& interp);
void RegisterListBuiltins(Interp& interp);
void RegisterArrayBuiltins(Interp& interp);
void RegisterIoBuiltins(Interp& interp);

// printf-style formatting for the `format` command; returns an error result
// on a malformed specifier.
Result FormatCommandString(const ValueVec& argv);

}  // namespace wtcl

#endif  // SRC_TCL_INTERP_H_
