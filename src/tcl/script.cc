// Compile-once script IR: the one-time parser and the substitution-program
// evaluator. The compiler mirrors the character-level scanning of the fresh
// parser in interp.cc exactly — including its quirks — so that a compiled
// script produces byte-identical results, error messages, side-effect
// ordering, and errorInfo line numbers. Structural parse errors are embedded
// in the IR instead of failing compilation: fresh parsing evaluates every
// substitution to the left of the error before reporting it, so the executor
// must be able to replay those substitutions first.
#include "src/tcl/script.h"

#include <cctype>

#include "src/obs/obs.h"

namespace wtcl {

namespace detail {

bool IsWordSeparator(char c) { return c == ' ' || c == '\t'; }
bool IsCommandTerminator(char c) { return c == '\n' || c == ';'; }

bool IsVarNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

void SubstBackslash(std::string_view script, std::size_t* pos, std::string* out) {
  std::size_t i = *pos + 1;  // char after the backslash
  if (i >= script.size()) {
    out->push_back('\\');
    *pos = i;
    return;
  }
  char c = script[i];
  switch (c) {
    case 'n':
      out->push_back('\n');
      *pos = i + 1;
      return;
    case 't':
      out->push_back('\t');
      *pos = i + 1;
      return;
    case 'r':
      out->push_back('\r');
      *pos = i + 1;
      return;
    case 'b':
      out->push_back('\b');
      *pos = i + 1;
      return;
    case 'f':
      out->push_back('\f');
      *pos = i + 1;
      return;
    case 'v':
      out->push_back('\v');
      *pos = i + 1;
      return;
    case 'a':
      out->push_back('\a');
      *pos = i + 1;
      return;
    case '\n': {
      // Backslash-newline (plus following whitespace) collapses to a space.
      std::size_t j = i + 1;
      while (j < script.size() && (script[j] == ' ' || script[j] == '\t')) {
        ++j;
      }
      out->push_back(' ');
      *pos = j;
      return;
    }
    case 'x': {
      std::size_t j = i + 1;
      unsigned value = 0;
      bool any = false;
      while (j < script.size() && std::isxdigit(static_cast<unsigned char>(script[j]))) {
        value = value * 16 + static_cast<unsigned>(
                                 std::isdigit(static_cast<unsigned char>(script[j]))
                                     ? script[j] - '0'
                                     : std::tolower(static_cast<unsigned char>(script[j])) - 'a' +
                                           10);
        any = true;
        ++j;
      }
      if (any) {
        out->push_back(static_cast<char>(value & 0xff));
        *pos = j;
      } else {
        out->push_back('x');
        *pos = i + 1;
      }
      return;
    }
    default:
      if (c >= '0' && c <= '7') {
        unsigned value = 0;
        std::size_t j = i;
        int digits = 0;
        while (j < script.size() && digits < 3 && script[j] >= '0' && script[j] <= '7') {
          value = value * 8 + static_cast<unsigned>(script[j] - '0');
          ++j;
          ++digits;
        }
        out->push_back(static_cast<char>(value & 0xff));
        *pos = j;
        return;
      }
      out->push_back(c);
      *pos = i + 1;
      return;
  }
}

}  // namespace detail

namespace {

using detail::IsCommandTerminator;
using detail::IsVarNameChar;
using detail::IsWordSeparator;
using detail::SubstBackslash;

void AppendLiteralSegment(std::vector<WordSegment>* segments, std::string* pending) {
  if (pending->empty()) {
    return;
  }
  WordSegment segment;
  segment.kind = WordSegment::Kind::kLiteral;
  segment.text = std::move(*pending);
  pending->clear();
  segments->push_back(std::move(segment));
}

}  // namespace

bool CompileVariableSegments(std::string_view script, std::size_t* pos,
                             std::vector<WordSegment>* segments, std::string* error) {
  // *pos points at '$'. Mirrors Interp::ParseVariable.
  std::size_t i = *pos + 1;
  const std::size_t n = script.size();
  if (i >= n) {
    std::string dollar = "$";
    AppendLiteralSegment(segments, &dollar);
    *pos = i;
    return true;
  }
  if (script[i] == '{') {
    std::size_t close = script.find('}', i + 1);
    if (close == std::string_view::npos) {
      *error = "missing close-brace for variable name";
      return false;
    }
    WordSegment segment;
    segment.kind = WordSegment::Kind::kVariable;
    segment.text.assign(script.substr(i + 1, close - i - 1));
    segments->push_back(std::move(segment));
    *pos = close + 1;
    return true;
  }
  std::size_t start = i;
  while (i < n && IsVarNameChar(script[i])) {
    ++i;
  }
  if (i == start) {
    // Bare dollar sign.
    std::string dollar = "$";
    AppendLiteralSegment(segments, &dollar);
    *pos = start;
    return true;
  }
  std::string name(script.substr(start, i - start));
  if (i < n && script[i] == '(') {
    // Array element: the index itself undergoes substitution.
    std::size_t j = i + 1;
    std::vector<WordSegment> index;
    std::string pending;
    while (j < n && script[j] != ')') {
      char c = script[j];
      if (c == '\\') {
        SubstBackslash(script, &j, &pending);
      } else if (c == '$') {
        AppendLiteralSegment(&index, &pending);
        if (!CompileVariableSegments(script, &j, &index, error)) {
          return false;
        }
      } else if (c == '[') {
        AppendLiteralSegment(&index, &pending);
        if (!CompileBracketSegments(script, &j, &index, error)) {
          return false;
        }
      } else {
        pending.push_back(c);
        ++j;
      }
    }
    if (j >= n) {
      *error = "missing )";
      return false;
    }
    AppendLiteralSegment(&index, &pending);
    WordSegment segment;
    segment.kind = WordSegment::Kind::kArrayElement;
    segment.text = std::move(name);
    segment.index = std::move(index);
    segments->push_back(std::move(segment));
    *pos = j + 1;
    return true;
  }
  WordSegment segment;
  segment.kind = WordSegment::Kind::kVariable;
  segment.text = std::move(name);
  segments->push_back(std::move(segment));
  *pos = i;
  return true;
}

bool CompileBracketSegments(std::string_view script, std::size_t* pos,
                            std::vector<WordSegment>* segments, std::string* error) {
  // *pos points at '['. Mirrors the scan in Interp::ParseBracket; the inner
  // source is stored verbatim and evaluated (through the script cache) at
  // execution time, so the nesting guard still sees one Eval per bracket.
  std::size_t i = *pos + 1;
  const std::size_t n = script.size();
  int depth = 1;
  std::size_t start = i;
  while (i < n && depth > 0) {
    char c = script[i];
    if (c == '\\' && i + 1 < n) {
      i += 2;
      continue;
    }
    if (c == '[') {
      ++depth;
    } else if (c == ']') {
      --depth;
      if (depth == 0) {
        break;
      }
    } else if (c == '{') {
      int bd = 1;
      ++i;
      while (i < n && bd > 0) {
        if (script[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (script[i] == '{') {
          ++bd;
        } else if (script[i] == '}') {
          --bd;
        }
        ++i;
      }
      continue;
    } else if (c == '"') {
      ++i;
      while (i < n && script[i] != '"') {
        if (script[i] == '\\' && i + 1 < n) {
          i += 2;
        } else {
          ++i;
        }
      }
    }
    ++i;
  }
  if (depth != 0) {
    *error = "missing close-bracket";
    return false;
  }
  WordSegment segment;
  segment.kind = WordSegment::Kind::kScript;
  segment.text.assign(script.substr(start, i - start));
  segments->push_back(std::move(segment));
  *pos = i + 1;
  return true;
}

namespace {

// Compiles one word starting at *pos, mirroring Interp::ParseWord. A
// structural error is recorded in CompiledWord::parse_error together with
// the segments compiled before it (the executor replays them first).
CompiledWord CompileWord(std::string_view script, std::size_t* pos) {
  CompiledWord word;
  std::size_t i = *pos;
  const std::size_t n = script.size();
  std::vector<WordSegment> segments;
  std::string pending;

  auto fail = [&](const char* message) {
    AppendLiteralSegment(&segments, &pending);
    word.literal = false;
    word.text.clear();
    word.segments = std::move(segments);
    word.parse_error = message;
    *pos = i;
    return word;
  };
  auto finalize = [&]() {
    AppendLiteralSegment(&segments, &pending);
    if (segments.empty()) {
      word.literal = true;
      word.text.clear();
    } else if (segments.size() == 1 && segments[0].kind == WordSegment::Kind::kLiteral) {
      word.literal = true;
      word.text = std::move(segments[0].text);
      word.value = Value(word.text);
    } else {
      word.literal = false;
      word.segments = std::move(segments);
    }
    *pos = i;
    return word;
  };

  if (script[i] == '{') {
    int depth = 1;
    std::size_t start = i + 1;
    ++i;
    while (i < n && depth > 0) {
      char c = script[i];
      if (c == '\\' && i + 1 < n) {
        if (script[i + 1] == '\n') {
          // Backslash-newline is still processed inside braces.
          ++i;
        }
        i += 2;
        continue;
      }
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        if (depth == 0) {
          break;
        }
      }
      ++i;
    }
    if (depth != 0) {
      return fail("missing close-brace");
    }
    std::string_view inner = script.substr(start, i - start);
    // Inside braces: literal, except backslash-newline collapses to space.
    std::size_t j = 0;
    while (j < inner.size()) {
      if (inner[j] == '\\' && j + 1 < inner.size() && inner[j + 1] == '\n') {
        SubstBackslash(inner, &j, &pending);
      } else {
        pending.push_back(inner[j]);
        ++j;
      }
    }
    ++i;  // past closing brace
    if (i < n && !IsWordSeparator(script[i]) && !IsCommandTerminator(script[i])) {
      return fail("extra characters after close-brace");
    }
    word.literal = true;
    word.text = std::move(pending);
    word.value = Value(word.text);
    *pos = i;
    return word;
  }

  if (script[i] == '"') {
    ++i;
    while (i < n && script[i] != '"') {
      char c = script[i];
      if (c == '\\') {
        SubstBackslash(script, &i, &pending);
      } else if (c == '$') {
        AppendLiteralSegment(&segments, &pending);
        std::string error;
        if (!CompileVariableSegments(script, &i, &segments, &error)) {
          return fail(error.c_str());
        }
      } else if (c == '[') {
        AppendLiteralSegment(&segments, &pending);
        std::string error;
        if (!CompileBracketSegments(script, &i, &segments, &error)) {
          return fail(error.c_str());
        }
      } else {
        pending.push_back(c);
        ++i;
      }
    }
    if (i >= n) {
      return fail("missing \"");
    }
    ++i;  // past closing quote
    if (i < n && !IsWordSeparator(script[i]) && !IsCommandTerminator(script[i])) {
      return fail("extra characters after close-quote");
    }
    // A quoted word is a word even when empty, so an empty segment list
    // still finalizes to the literal "".
    return finalize();
  }

  // Bare word.
  while (i < n && !IsWordSeparator(script[i]) && !IsCommandTerminator(script[i])) {
    char c = script[i];
    if (c == '\\') {
      if (i + 1 < n && script[i + 1] == '\n') {
        break;  // acts as a word separator
      }
      SubstBackslash(script, &i, &pending);
    } else if (c == '$') {
      AppendLiteralSegment(&segments, &pending);
      std::string error;
      if (!CompileVariableSegments(script, &i, &segments, &error)) {
        return fail(error.c_str());
      }
    } else if (c == '[') {
      AppendLiteralSegment(&segments, &pending);
      std::string error;
      if (!CompileBracketSegments(script, &i, &segments, &error)) {
        return fail(error.c_str());
      }
    } else {
      pending.push_back(c);
      ++i;
    }
  }
  return finalize();
}

}  // namespace

ScriptHandle CompileScript(std::string_view source) {
  auto compiled = std::make_shared<CompiledScript>();
  compiled->source_bytes = source.size();
  const std::size_t n = source.size();
  std::size_t i = 0;
  std::size_t counted = 0;  // newline-scan position for errorInfo line numbers
  int line = 1;
  while (i < n) {
    // Skip separators between commands.
    while (i < n && (IsWordSeparator(source[i]) || IsCommandTerminator(source[i]))) {
      ++i;
    }
    if (i >= n) {
      break;
    }
    if (source[i] == '#') {
      // Comment runs to an unescaped newline.
      while (i < n && source[i] != '\n') {
        if (source[i] == '\\' && i + 1 < n) {
          ++i;
        }
        ++i;
      }
      continue;
    }
    for (; counted < i; ++counted) {
      if (source[counted] == '\n') {
        ++line;
      }
    }
    CompiledCommand command;
    command.line = line;
    const std::size_t command_start = i;
    bool stop = false;
    while (i < n && !IsCommandTerminator(source[i])) {
      while (i < n && IsWordSeparator(source[i])) {
        ++i;
      }
      if (i >= n || IsCommandTerminator(source[i])) {
        break;
      }
      if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
        // Backslash-newline between words: acts as a separator.
        std::string dummy;
        SubstBackslash(source, &i, &dummy);
        continue;
      }
      CompiledWord word = CompileWord(source, &i);
      bool failed = !word.parse_error.empty();
      command.words.push_back(std::move(word));
      if (failed) {
        // Fresh parsing aborts the whole script here; nothing after this
        // word can ever run, so compilation stops with it.
        stop = true;
        break;
      }
    }
    if (!command.words.empty()) {
      std::size_t command_end = i;
      while (command_end > command_start &&
             IsWordSeparator(source[command_end - 1])) {
        --command_end;
      }
      command.source =
          std::string(source.substr(command_start, command_end - command_start));
      bool all_literal = true;
      for (const CompiledWord& word : command.words) {
        if (!word.literal) {
          all_literal = false;
          break;
        }
      }
      if (all_literal) {
        command.literal_argv.reserve(command.words.size());
        for (const CompiledWord& word : command.words) {
          command.literal_argv.push_back(word.value);
        }
      }
      compiled->commands.push_back(std::move(command));
    }
    if (stop) {
      break;
    }
  }
  return compiled;
}

Result EvalWordSegments(Interp& interp, const std::vector<WordSegment>& segments,
                        std::string* out) {
  for (const WordSegment& segment : segments) {
    switch (segment.kind) {
      case WordSegment::Kind::kLiteral:
        out->append(segment.text);
        break;
      case WordSegment::Kind::kVariable: {
        if (const std::string* fast = interp.GetVarPtr(segment.text)) {
          out->append(*fast);
          break;
        }
        std::string value;
        if (!interp.GetVar(segment.text, &value)) {
          return Result::Error("can't read \"" + segment.text + "\": no such variable");
        }
        out->append(value);
        break;
      }
      case WordSegment::Kind::kArrayElement: {
        std::string index;
        Result r = EvalWordSegments(interp, segment.index, &index);
        if (r.code == Status::kError) {
          return r;
        }
        std::string name = segment.text;
        name += "(";
        name += index;
        name += ")";
        std::string value;
        if (!interp.GetVar(name, &value)) {
          return Result::Error("can't read \"" + name + "\": no such variable");
        }
        out->append(value);
        break;
      }
      case WordSegment::Kind::kScript: {
        // Only kError propagates: break/continue/return from a bracketed
        // script append their value, exactly as fresh parsing does.
        Result r = interp.Eval(segment.text);
        if (r.code == Status::kError) {
          return r;
        }
        out->append(r.value);
        break;
      }
    }
  }
  return Result::Ok();
}

// --- Compile cache ------------------------------------------------------------

CompileCache::CompileCache(std::size_t capacity, std::size_t max_key_bytes,
                           wobs::Counter* hits, wobs::Counter* misses,
                           wobs::Counter* evictions)
    : capacity_(capacity),
      max_key_bytes_(max_key_bytes),
      hits_(hits),
      misses_(misses),
      evictions_(evictions) {}

std::shared_ptr<const void> CompileCache::Get(std::string_view key) {
  // MRU fast path: re-evaluating the script that ran last (the callback
  // storm / loop-body pattern) is a byte-compare, not a hash lookup.
  if (!entries_.empty() && entries_.front().key == key) {
    hits_->Increment();
    return entries_.front().value;
  }
  if (key.size() > max_key_bytes_) {
    misses_->Increment();
    return nullptr;
  }
  auto it = index_.find(key);
  if (it == index_.end()) {
    misses_->Increment();
    return nullptr;
  }
  if (it->second != entries_.begin()) {
    entries_.splice(entries_.begin(), entries_, it->second);
  }
  hits_->Increment();
  return entries_.front().value;
}

void CompileCache::Put(std::string_view key, std::shared_ptr<const void> value) {
  if (key.size() > max_key_bytes_ || capacity_ == 0) {
    return;  // compiled but intentionally not retained
  }
  if (index_.find(key) != index_.end()) {
    return;  // already cached (single-threaded, but stay defensive)
  }
  entries_.push_front(Entry{std::string(key), std::move(value)});
  index_[std::string_view(entries_.front().key)] = entries_.begin();
  if (entries_.size() > capacity_) {
    index_.erase(std::string_view(entries_.back().key));
    entries_.pop_back();
    evictions_->Increment();
  }
}

std::size_t CompileCache::Flush() {
  std::size_t dropped = entries_.size();
  index_.clear();
  entries_.clear();
  return dropped;
}

}  // namespace wtcl
