// Compile-once script IR (the Tcl 7 -> Tcl 8 move, scaled to wtcl): a
// one-time parser turns a script into an immutable sequence of commands x
// words, where each word is either a fully-resolved literal or a small
// substitution program. The executor in interp.cc runs the IR under the
// same eval guards and errorInfo machinery as before; a content-keyed LRU
// cache (CompileCache) makes loop bodies, proc bodies, callbacks, and
// translation actions parse once and execute many times. The IR never
// embeds interpreter state that could go stale: variable lookup happens at
// execution time, and the per-command dispatch memo below revalidates
// against the interp's command epoch, so redefinition behaves exactly as
// with fresh parsing.
#ifndef SRC_TCL_SCRIPT_H_
#define SRC_TCL_SCRIPT_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/tcl/interp.h"

namespace wobs {
class Counter;
}

namespace wtcl {

// One substitution step of a compiled word, mirroring what the fresh parser
// would do at the same position.
struct WordSegment {
  enum class Kind {
    kLiteral,       // `text` is appended verbatim (backslash escapes resolved)
    kVariable,      // `text` is a variable name ($name / ${name})
    kArrayElement,  // `text` is the array base; `index` is the index program
    kScript,        // `text` is a bracketed script, evaluated via Interp::Eval
  };
  Kind kind = Kind::kLiteral;
  std::string text;
  std::vector<WordSegment> index;  // kArrayElement only
};

struct CompiledWord {
  // Fast path: the word is a fully-resolved literal (braced words, and bare
  // or quoted words without substitutions).
  bool literal = true;
  std::string text;                   // the literal value when `literal`
  // The literal as a prebuilt Value sharing one rep across every execution
  // of this IR, so numeric/list reps computed by one run are cached for the
  // next (the IR itself stays immutable — shimmer state lives in the rep).
  Value value;
  std::vector<WordSegment> segments;  // the substitution program otherwise
  // Structural parse error discovered inside this word ("missing \"",
  // "missing close-bracket", ...). Fresh parsing performs the preceding
  // substitutions before hitting the error, so the executor evaluates
  // `segments` first (for their side effects and their own errors) and then
  // fails with this message. A word carrying a parse error is always the
  // last word of the last command of its script.
  std::string parse_error;
};

struct CompiledCommand {
  std::vector<CompiledWord> words;
  // Prebuilt argv when every word is a fully-resolved literal: the executor
  // dispatches straight from the IR without assembling argv per evaluation.
  ValueVec literal_argv;
  // The command's verbatim source span, for errorInfo: Tcl quotes the
  // source text ("leaf $v", braces intact), not the substituted argv.
  std::string source;
  int line = 1;  // 1-based source line of the command within its script
  // Memoized command resolution for the literal-argv dispatch path: valid
  // while `resolved_owner` is the dispatching interp and its command table
  // has not changed since `resolved_epoch` (the interp is single-threaded,
  // so the mutable fields need no locking). Weak, not strong: a proc's
  // compiled body memoizes the proc's own closure when the proc recurses,
  // and a strong ref there is an ownership cycle that leaks the proc. The
  // dispatcher pins a strong ref for the duration of each call.
  mutable const void* resolved_owner = nullptr;
  mutable std::uint64_t resolved_epoch = 0;
  mutable std::weak_ptr<const void> resolved_fn;
};

// The immutable IR a script compiles to. Compilation never fails: structural
// parse errors are embedded so the executor reproduces fresh parsing's
// behavior (commands before the error still run).
struct CompiledScript {
  std::vector<CompiledCommand> commands;
  std::size_t source_bytes = 0;
};

// Compiles a script into its IR. Pure: depends only on the script text.
ScriptHandle CompileScript(std::string_view source);

// Compiles one `$...` substitution starting at (*pos) (which is the '$')
// into segments, mirroring the fresh parser's ParseVariable. Returns false
// and sets *error on a structural error. Used by the script compiler and
// the expr AST compiler.
bool CompileVariableSegments(std::string_view source, std::size_t* pos,
                             std::vector<WordSegment>* segments, std::string* error);

// Compiles one `[...]` substitution starting at (*pos) (which is the '[').
bool CompileBracketSegments(std::string_view source, std::size_t* pos,
                            std::vector<WordSegment>* segments, std::string* error);

// Runs a substitution program, appending to *out. Only kError results from
// nested scripts propagate (break/continue/return inside brackets append
// their value, exactly as fresh parsing does).
Result EvalWordSegments(Interp& interp, const std::vector<WordSegment>& segments,
                        std::string* out);

// --- Compile cache ------------------------------------------------------------
//
// Content-keyed LRU memoization of compiled artifacts (script IR, expr
// ASTs), following the converter-cache pattern from src/xt/converter.h.
// Values are type-erased shared_ptrs: the cached artifact stays alive while
// an evaluation still holds it, so a flush (or an eviction) during
// execution is safe. Entry count and per-key size are bounded; oversized
// keys are compiled but never stored.
class CompileCache {
 public:
  CompileCache(std::size_t capacity, std::size_t max_key_bytes, wobs::Counter* hits,
               wobs::Counter* misses, wobs::Counter* evictions);

  // Returns the cached value (refreshing its LRU position) or nullptr on a
  // miss; the caller compiles and calls Put.
  std::shared_ptr<const void> Get(std::string_view key);
  void Put(std::string_view key, std::shared_ptr<const void> value);

  // Drops every entry; returns how many were dropped.
  std::size_t Flush();
  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const void> value;
  };

  std::size_t capacity_;
  std::size_t max_key_bytes_;
  wobs::Counter* hits_;
  wobs::Counter* misses_;
  wobs::Counter* evictions_;
  std::list<Entry> entries_;  // front = most recently used
  // Keys view into the stable list-node strings.
  std::unordered_map<std::string_view, std::list<Entry>::iterator> index_;
};

// Low-level lexing helpers shared by the fresh parser (interp.cc), the
// script compiler, and the expr compiler. Semantics are identical across
// all three by construction.
namespace detail {

bool IsWordSeparator(char c);
bool IsCommandTerminator(char c);
bool IsVarNameChar(char c);

// Translates one backslash sequence starting at script[*pos] (the backslash
// itself), advancing *pos past it and appending the replacement to *out.
void SubstBackslash(std::string_view script, std::size_t* pos, std::string* out);

}  // namespace detail

}  // namespace wtcl

#endif  // SRC_TCL_SCRIPT_H_
