// Deterministic %-protocol session journaling (record) and re-execution
// (replay). The journal captures every external input a frontend session
// consumes — inbound %-lines, injected UI events, timer firings, and
// supervision transitions — as length-prefixed, sequence-numbered records,
// so a crashed session can be rebuilt byte-identically (crash recovery), a
// fault can be minimized into a committed regression journal, and recorded
// traffic can be replayed at multiplied rates as a load generator.
//
// Determinism contract: everything the session consumed from outside its
// process is in the journal; everything else (widget layout, Tcl evaluation,
// rendering) is a pure function of that stream. Replay installs a virtual
// clock (wobs::SetVirtualNowNs) advanced to each record's timestamp, so the
// two nondeterministic clock readers — eval-limit watchdog arming and
// supervision backoff — see the recorded time; the one decision a frozen
// clock cannot reproduce, *which probe* the ms watchdog tripped at, is
// journaled explicitly (kEvalTrip) and re-forced at the recorded step count.
#ifndef SRC_CORE_REPLAY_H_
#define SRC_CORE_REPLAY_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace xsim {
class Display;
}

namespace wafe {

class Wafe;

// --- Journal format -----------------------------------------------------------
//
// Binary journals open with the 8-byte magic "WAFEJ1\n\0"; each record is
//
//   u32 payload_len | u8 type | u64 seq | u64 vtime_ns | payload | u32 crc
//
// (little-endian, crc = CRC-32 over type..payload). A torn tail — the
// partial record a crash left behind — fails the length or CRC check and
// read-back stops at the last complete record, counting
// replay.journal.truncated. Text journals (committed regression corpus,
// human-editable) open with "# wafe-journal-text 1" and carry one
// `<keyword> <payload>` line per record.

enum class JournalRecordType : std::uint8_t {
  kLine = 1,         // payload: one inbound backend line, verbatim
  kEvent = 2,        // payload: display-injection encoding ("buttonpress x y b s")
  kTimer = 3,        // payload: decimal timer id
  kSpawn = 4,        // payload: backend program + args, space-joined
  kBackendGone = 5,  // payload: "<reason> <status|unknown> <restarts>"
  kCircuitTrip = 6,  // payload: decimal consecutive-error count
  kEvalTrip = 7,     // payload: "ms <steps>" — watchdog trip at that step
  kNote = 8,         // payload: free text (ignored by replay)
};

struct JournalRecord {
  JournalRecordType type = JournalRecordType::kNote;
  std::uint64_t seq = 0;
  std::uint64_t vtime_ns = 0;
  std::string payload;
};

// CRC-32 (IEEE, reflected) over `data`; the torn-tail detector.
std::uint32_t JournalCrc32(const char* data, std::size_t size);

// How often the appender fsyncs: kNone never (fastest, a crash may lose the
// OS buffer), kInterval every N records, kAlways after every record (the
// crash-recovery guarantee: every acknowledged record survives SIGKILL).
enum class FsyncPolicy { kNone, kInterval, kAlways };

class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  bool Open(const std::string& path, FsyncPolicy policy, int interval,
            std::string* error);
  void Close();
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  std::uint64_t records_written() const { return seq_; }
  FsyncPolicy policy() const { return policy_; }

  // Appends one record stamped with the next sequence number and the current
  // wobs::NowNs(); applies the fsync policy. Returns false on write failure
  // (the journal is closed: a half-written tail must not keep growing).
  bool Append(JournalRecordType type, std::string_view payload);

 private:
  int fd_ = -1;
  std::string path_;
  FsyncPolicy policy_ = FsyncPolicy::kNone;
  int interval_ = 256;
  int unsynced_ = 0;
  std::uint64_t seq_ = 0;
};

class JournalReader {
 public:
  JournalReader() = default;

  // Slurps and validates the journal (binary or text, detected by magic).
  // A torn binary tail truncates cleanly: every complete record is kept,
  // truncated() reports it, and replay.journal.truncated counts it.
  bool Open(const std::string& path, std::string* error);

  const std::vector<JournalRecord>& records() const { return records_; }
  bool truncated() const { return truncated_; }
  bool text_format() const { return text_format_; }

 private:
  bool ParseBinary(const std::string& data, std::string* error);
  bool ParseText(const std::string& data, std::string* error);

  std::vector<JournalRecord> records_;
  bool truncated_ = false;
  bool text_format_ = false;
};

// One text line per record ("line %set x 1", "event buttonpress 5 5 1 0",
// "vtime ..." emitted when the timestamp advances) — the committed-corpus
// and triage format.
void DumpJournalText(const std::vector<JournalRecord>& records, std::ostream& out);

// --- Recorder -----------------------------------------------------------------
//
// Owned by Wafe; while active it journals inbound lines (comm calls
// Wafe::RecordInboundLine from HandleLine), installs observers on the
// display (UI-event injection), the app context (timer firings), and the
// interp (ms-watchdog trips), journals supervision transitions, and
// contributes the journal path plus the last 64 recorded %-lines to every
// flight record so a flight dump is immediately replayable.
class Recorder {
 public:
  explicit Recorder(Wafe* wafe) : wafe_(wafe) {}
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  // Spec: "<path>[,fsync=always|none|<N>]" (N = sync every N records).
  bool Start(const std::string& spec, std::string* error);
  void Stop();
  // Closes the active journal and continues into "<path>.<n>" (n = 1, 2, ...).
  bool Rotate(std::string* error);

  bool active() const { return writer_.is_open(); }
  const std::string& path() const { return writer_.path(); }
  std::uint64_t records_written() const { return writer_.records_written(); }
  std::string StatusText() const;

  void RecordLine(const std::string& line);
  void RecordEvent(const std::string& encoded);
  void RecordTimer(int id);
  void RecordSpawn(const std::string& description);
  void RecordBackendGone(const std::string& payload);
  void RecordCircuitTrip(int consecutive);
  void RecordEvalTrip(const char* kind, std::uint64_t steps);
  void RecordNote(const std::string& text);

  // The last 64 recorded %-lines, oldest first (flight-record context).
  const std::deque<std::string>& last_lines() const { return last_lines_; }

 private:
  void InstallHooks();
  void RemoveHooks();
  void Append(JournalRecordType type, std::string_view payload);

  Wafe* wafe_;
  JournalWriter writer_;
  std::string base_path_;
  FsyncPolicy policy_ = FsyncPolicy::kNone;
  int interval_ = 256;
  int rotations_ = 0;
  std::deque<std::string> last_lines_;
};

// --- Replay -------------------------------------------------------------------

struct ReplayStats {
  std::uint64_t records = 0;
  std::uint64_t lines = 0;
  std::uint64_t events = 0;
  std::uint64_t timers = 0;
  std::uint64_t backend_gone = 0;
  std::uint64_t eval_trips = 0;
  std::uint64_t unmatched_timers = 0;  // kTimer with no pending timer of that id
  bool truncated = false;
};

// Re-executes `path` against `wafe` (a fresh instance: the journal IS the
// session). Installs the virtual clock for the duration, routes kLine
// records through Frontend::HandleLine, kEvent records through the display
// injection primitives, kTimer records through FireTimerForReplay, and
// arms recorded ms-watchdog trips. Returns false only on journal-level
// errors (unreadable file, bad magic); Tcl-level errors during replayed
// lines are part of the session being reproduced.
bool ReplayJournal(Wafe& wafe, const std::string& path, ReplayStats* stats,
                   std::string* error);

// --- Golden verification ------------------------------------------------------

// FNV-1a over the simulated framebuffer: byte-identical renders hash equal.
// (Same algorithm as the UI test harness, so goldens are comparable.)
std::uint64_t FramebufferChecksum(const xsim::Display& display);

// One line per widget, depth-indented, with geometry and viewability — the
// compact golden form of the widget tree under `root_name`.
std::string WindowTreeText(Wafe& wafe, const std::string& root_name = "topLevel");

}  // namespace wafe

#endif  // SRC_CORE_REPLAY_H_
