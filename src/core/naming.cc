#include "src/core/naming.h"

namespace wafe {

namespace {

std::string LowerFirst(std::string s) {
  if (!s.empty() && s[0] >= 'A' && s[0] <= 'Z') {
    s[0] = static_cast<char>(s[0] - 'A' + 'a');
  }
  return s;
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.size() > prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

std::string CommandNameFromC(const std::string& c_name) {
  // Order matters: Xaw before X, Xm before X, Xt before X.
  if (HasPrefix(c_name, "Xaw")) {
    return LowerFirst(c_name.substr(3));
  }
  if (HasPrefix(c_name, "Xm")) {
    return "m" + c_name.substr(2);
  }
  if (HasPrefix(c_name, "Xt")) {
    return LowerFirst(c_name.substr(2));
  }
  if (HasPrefix(c_name, "X")) {
    return LowerFirst(c_name.substr(1));
  }
  return c_name;
}

std::string CreationCommandFromClass(const std::string& class_name) {
  if (HasPrefix(class_name, "Xm")) {
    return "m" + class_name.substr(2);
  }
  return LowerFirst(class_name);
}

}  // namespace wafe
