#include "src/core/naming.h"

#include <mutex>
#include <unordered_map>

#include "src/xt/quark.h"

namespace wafe {

namespace {

std::string LowerFirst(std::string s) {
  if (!s.empty() && s[0] >= 'A' && s[0] <= 'Z') {
    s[0] = static_cast<char>(s[0] - 'A' + 'a');
  }
  return s;
}

bool HasPrefix(const std::string& s, const std::string& prefix) {
  return s.size() > prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string DeriveCommandNameFromC(const std::string& c_name) {
  // Order matters: Xaw before X, Xm before X, Xt before X.
  if (HasPrefix(c_name, "Xaw")) {
    return LowerFirst(c_name.substr(3));
  }
  if (HasPrefix(c_name, "Xm")) {
    return "m" + c_name.substr(2);
  }
  if (HasPrefix(c_name, "Xt")) {
    return LowerFirst(c_name.substr(2));
  }
  if (HasPrefix(c_name, "X")) {
    return LowerFirst(c_name.substr(1));
  }
  return c_name;
}

std::string DeriveCreationCommandFromClass(const std::string& class_name) {
  if (HasPrefix(class_name, "Xm")) {
    return "m" + class_name.substr(2);
  }
  return LowerFirst(class_name);
}

// Derivations memoized by the interned source name: every Wafe instance
// registers the same few hundred commands, so after the first startup the
// derivation is one quark intern plus one map hit. The maps are never
// destroyed (names may be derived during static teardown).
std::string Memoize(const std::string& input,
                    std::string (*derive)(const std::string&),
                    std::unordered_map<xtk::Quark, std::string>& memo,
                    std::mutex& mutex) {
  xtk::Quark quark = xtk::Intern(input);
  {
    std::lock_guard lock(mutex);
    auto it = memo.find(quark);
    if (it != memo.end()) {
      return it->second;
    }
  }
  std::string derived = derive(input);
  std::lock_guard lock(mutex);
  return memo.emplace(quark, std::move(derived)).first->second;
}

}  // namespace

std::string CommandNameFromC(const std::string& c_name) {
  static std::mutex* mutex = new std::mutex();
  static auto* memo = new std::unordered_map<xtk::Quark, std::string>();
  return Memoize(c_name, DeriveCommandNameFromC, *memo, *mutex);
}

std::string CreationCommandFromClass(const std::string& class_name) {
  static std::mutex* mutex = new std::mutex();
  static auto* memo = new std::unordered_map<xtk::Quark, std::string>();
  return Memoize(class_name, DeriveCreationCommandFromClass, *memo, *mutex);
}

}  // namespace wafe
