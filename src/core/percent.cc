#include "src/core/percent.h"

#include "src/obs/obs.h"
#include "src/xt/widget.h"

namespace wafe {

namespace {

wobs::Counter g_event_substitutions("comm.percent.event_subst");
wobs::Counter g_callback_substitutions("comm.percent.callback_subst");

bool IsSupportedType(xsim::EventType type) {
  switch (type) {
    case xsim::EventType::kButtonPress:
    case xsim::EventType::kButtonRelease:
    case xsim::EventType::kKeyPress:
    case xsim::EventType::kKeyRelease:
    case xsim::EventType::kEnterNotify:
    case xsim::EventType::kLeaveNotify:
      return true;
    default:
      return false;
  }
}

bool IsKeyEvent(xsim::EventType type) {
  return type == xsim::EventType::kKeyPress || type == xsim::EventType::kKeyRelease;
}

bool IsButtonEvent(xsim::EventType type) {
  return type == xsim::EventType::kButtonPress || type == xsim::EventType::kButtonRelease;
}

}  // namespace

std::string SubstituteEventCodes(const std::string& script, const xtk::Widget& widget,
                                 const xsim::Event& event) {
  g_event_substitutions.Increment();
  // Scripts with no % codes pass through untouched. Returning the original
  // string (not a copy assembled char by char) keeps the script byte-stable,
  // so the compiled-script cache sees one key per action instead of one per
  // dispatch.
  if (script.find('%') == std::string::npos) {
    return script;
  }
  std::string out;
  out.reserve(script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    if (script[i] != '%' || i + 1 >= script.size()) {
      out.push_back(script[i]);
      continue;
    }
    char code = script[++i];
    switch (code) {
      case '%':
        out.push_back('%');
        break;
      case 't':
        out += IsSupportedType(event.type) ? event.TypeName() : "unknown";
        break;
      case 'w':
        out += widget.name();
        break;
      case 'b':
        if (IsButtonEvent(event.type)) {
          out += std::to_string(event.button);
        }
        break;
      case 'x':
        out += std::to_string(event.x);
        break;
      case 'y':
        out += std::to_string(event.y);
        break;
      case 'X':
        out += std::to_string(event.x_root);
        break;
      case 'Y':
        out += std::to_string(event.y_root);
        break;
      case 'a':
        if (IsKeyEvent(event.type)) {
          if (auto ascii = xsim::KeysymToAscii(event.keysym)) {
            if (*ascii >= 0x20 && *ascii < 0x7f) {
              out.push_back(*ascii);
            }
          }
        }
        break;
      case 'k':
        if (IsKeyEvent(event.type)) {
          out += std::to_string(event.keycode);
        }
        break;
      case 's':
        if (IsKeyEvent(event.type)) {
          out += xsim::KeysymToString(event.keysym);
        }
        break;
      default:
        out.push_back('%');
        out.push_back(code);
        break;
    }
  }
  return out;
}

std::string SubstituteCallbackCodes(const std::string& script, const xtk::Widget& widget,
                                    const xtk::CallData& data) {
  g_callback_substitutions.Increment();
  if (script.find('%') == std::string::npos) {
    return script;
  }
  std::string out;
  out.reserve(script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    if (script[i] != '%' || i + 1 >= script.size()) {
      out.push_back(script[i]);
      continue;
    }
    char code = script[i + 1];
    if (code == '%') {
      out.push_back('%');
      ++i;
      continue;
    }
    if (code == 'w') {
      out += widget.name();
      ++i;
      continue;
    }
    auto it = data.fields.find(std::string(1, code));
    if (it != data.fields.end()) {
      out += it->second;
      ++i;
      continue;
    }
    out.push_back('%');  // unknown codes pass through untouched
  }
  return out;
}

}  // namespace wafe
