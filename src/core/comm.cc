#include "src/core/comm.h"

#include <csignal>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/core/wafe.h"
#include "src/obs/obs.h"

namespace wafe {

namespace {

// Observability instruments for the protocol channel (src/obs).
wobs::Counter g_lines_in("comm.lines.in");
wobs::Counter g_lines_out("comm.lines.out");
wobs::Counter g_bytes_in("comm.bytes.in");
wobs::Counter g_percent_commands("comm.percent.commands");
wobs::Counter g_passthrough_lines("comm.passthrough.lines");
wobs::Counter g_mass_bytes("comm.mass.bytes");
wobs::Counter g_mass_transfers("comm.mass.transfers");
wobs::Histogram g_line_duration("comm.line.duration");
wobs::Histogram g_mass_transfer_duration("comm.mass.duration");

}  // namespace

Frontend::Frontend(Wafe* wafe) : wafe_(wafe) {}

Frontend::~Frontend() { CloseBackend(); }

bool Frontend::SpawnBackend(const std::string& program, const std::vector<std::string>& args,
                            std::string* error) {
  // A dead backend must not kill the frontend with SIGPIPE; writes report
  // EPIPE instead and the main loop notices the hangup.
  ::signal(SIGPIPE, SIG_IGN);
  // The mass channel must exist before the fork so the child inherits the
  // write end under the fd number getChannel reports.
  if (mass_read_fd_ < 0 && !SetupMassChannel(error)) {
    return false;
  }
  // The preferred program-to-program communication is a socketpair (paper
  // §Availability); pipes are the fallback for systems without it.
  int sockets[2] = {-1, -1};
  bool using_sockets =
      !force_pipes_ && ::socketpair(AF_UNIX, SOCK_STREAM, 0, sockets) == 0;
  using_socketpair_ = using_sockets;
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (!using_sockets) {
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
      if (error != nullptr) {
        *error = std::string("cannot create pipes: ") + std::strerror(errno);
      }
      return false;
    }
  }
  int pid = ::fork();
  if (pid < 0) {
    if (error != nullptr) {
      *error = std::string("fork failed: ") + std::strerror(errno);
    }
    return false;
  }
  if (pid == 0) {
    // Child: wire stdio to the frontend and exec the backend.
    if (using_sockets) {
      ::dup2(sockets[1], 0);
      ::dup2(sockets[1], 1);
      ::close(sockets[0]);
      ::close(sockets[1]);
    } else {
      ::dup2(to_child[0], 0);
      ::dup2(from_child[1], 1);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
    }
    if (mass_read_fd_ >= 0) {
      ::close(mass_read_fd_);  // the child keeps only the write end
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(program.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(program.c_str(), argv.data());
    // exec failed; report over the (former) protocol channel and die.
    const char* msg = "wafe: cannot execute backend\n";
    ssize_t ignored = ::write(1, msg, std::strlen(msg));
    (void)ignored;
    ::_exit(127);
  }
  // Parent.
  pid_ = pid;
  backend_program_ = program;
  if (using_sockets) {
    ::close(sockets[1]);
    read_fd_ = sockets[0];
    write_fd_ = sockets[0];
  } else {
    ::close(to_child[0]);
    ::close(from_child[1]);
    read_fd_ = from_child[0];
    write_fd_ = to_child[1];
  }
  wobs::Log("proc", "forked backend pid=" + std::to_string(pid_) + " exec=" + program +
                        " transport=" + (using_sockets ? "socketpair" : "pipe"));
  // The backend write end of the mass channel stays open on the frontend
  // side too: in-process backends (AdoptBackend) write through it, and a
  // forked child inherited its own copy by fd number.
  RegisterInputHandlers();
  return true;
}

void Frontend::AdoptBackend(int read_fd, int write_fd) {
  ::signal(SIGPIPE, SIG_IGN);
  read_fd_ = read_fd;
  write_fd_ = write_fd;
  RegisterInputHandlers();
}

void Frontend::RegisterInputHandlers() {
  if (read_fd_ >= 0 && input_id_ < 0) {
    input_id_ = wafe_->app().AddInput(read_fd_, [this](int) { OnBackendReadable(); });
  }
  if (mass_read_fd_ >= 0 && mass_input_id_ < 0) {
    mass_input_id_ = wafe_->app().AddInput(mass_read_fd_, [this](int) { OnMassReadable(); });
  }
}

int Frontend::OnBackendReadable() {
  char chunk[8192];
  ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
  if (n <= 0) {
    // EOF or error: the backend is gone.
    wobs::Log("proc", "backend pid=" + std::to_string(pid_) +
                          " hung up (read returned " + std::to_string(n) + ")");
    if (input_id_ >= 0) {
      wafe_->app().RemoveInput(input_id_);
      input_id_ = -1;
    }
    if (!buffer_.empty()) {
      HandleLine(buffer_);
      buffer_.clear();
    }
    ::close(read_fd_);
    if (write_fd_ == read_fd_) {
      write_fd_ = -1;
    }
    read_fd_ = -1;
    wafe_->Quit(0);
    return -1;
  }
  bytes_received_ += static_cast<std::size_t>(n);
  g_bytes_in.Increment(static_cast<std::uint64_t>(n));
  buffer_.append(chunk, static_cast<std::size_t>(n));
  return DrainBuffer();
}

int Frontend::DrainBuffer() {
  int handled = 0;
  std::size_t start = 0;
  for (;;) {
    std::size_t nl = buffer_.find('\n', start);
    if (nl == std::string::npos) {
      break;
    }
    std::string line = buffer_.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();  // tolerate CRLF backends
    }
    start = nl + 1;
    if (overlong_in_progress_) {
      // This newline terminates a line that already blew the limit.
      overlong_in_progress_ = false;
      continue;
    }
    HandleLine(line);
    ++handled;
  }
  buffer_.erase(0, start);
  if (buffer_.size() > wafe_->options().max_line_length) {
    // A single protocol line must fit within the configured maximum (64 KB
    // by default); longer lines are dropped with a diagnostic.
    ++overlong_lines_;
    overlong_in_progress_ = true;
    buffer_.clear();
    std::fprintf(stderr, "wafe: protocol line exceeds maximum length, dropped\n");
  }
  return handled;
}

void Frontend::HandleLine(const std::string& line) {
  ++lines_received_;
  g_lines_in.Increment();
  if (!line.empty() && line[0] == wafe_->options().prefix) {
    g_percent_commands.Increment();
    wobs::ScopedEvent obs_span("comm", "protocol-line", &g_line_duration);
    wafe_->count_line();
    wtcl::Result r = wafe_->Eval(std::string_view(line).substr(1));
    if (r.code == wtcl::Status::kError) {
      // Errors from the backend's commands go to the frontend's stderr so
      // the backend protocol stream stays clean.
      std::fprintf(stderr, "wafe: %s\n", r.value.c_str());
    }
    return;
  }
  // Unprefixed lines pass through to Wafe's stdout (or the registered
  // passthrough hook).
  g_passthrough_lines.Increment();
  wafe_->WritePassthrough(line);
}

void Frontend::SendToBackend(const std::string& line) {
  if (write_fd_ < 0) {
    return;
  }
  std::string out = line;
  out.push_back('\n');
  std::size_t off = 0;
  while (off < out.size()) {
    ssize_t n = ::write(write_fd_, out.data() + off, out.size() - off);
    if (n <= 0) {
      if (errno == EINTR) {
        continue;
      }
      return;
    }
    off += static_cast<std::size_t>(n);
  }
  ++lines_sent_;
  g_lines_out.Increment();
}

int Frontend::WaitBackend() {
  if (pid_ < 0) {
    return 0;
  }
  int status = 0;
  int pid = pid_;
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
  if (WIFSIGNALED(status)) {
    // Abnormal deaths are always logged, even with observability off.
    wobs::Log("proc",
              "backend pid=" + std::to_string(pid) + " exec=" + backend_program_ +
                  " killed by signal " + std::to_string(WTERMSIG(status)),
              /*always=*/true);
    return -1;
  }
  int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  wobs::Log("proc",
            "backend pid=" + std::to_string(pid) + " exec=" + backend_program_ +
                " exited status=" + std::to_string(code),
            /*always=*/code != 0);
  return code;
}

void Frontend::CloseBackend() {
  if (input_id_ >= 0) {
    wafe_->app().RemoveInput(input_id_);
    input_id_ = -1;
  }
  if (mass_input_id_ >= 0) {
    wafe_->app().RemoveInput(mass_input_id_);
    mass_input_id_ = -1;
  }
  if (read_fd_ >= 0) {
    ::close(read_fd_);
  }
  if (write_fd_ >= 0 && write_fd_ != read_fd_) {
    ::close(write_fd_);
  }
  read_fd_ = -1;
  write_fd_ = -1;
  if (mass_read_fd_ >= 0) {
    ::close(mass_read_fd_);
    mass_read_fd_ = -1;
  }
  if (mass_backend_fd_ >= 0) {
    ::close(mass_backend_fd_);
    mass_backend_fd_ = -1;
  }
  if (pid_ > 0) {
    ::waitpid(pid_, nullptr, WNOHANG);
  }
}

// --- Mass channel ------------------------------------------------------------------

bool Frontend::SetupMassChannel(std::string* error) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    if (error != nullptr) {
      *error = std::string("cannot create mass channel: ") + std::strerror(errno);
    }
    return false;
  }
  mass_read_fd_ = fds[0];
  mass_backend_fd_ = fds[1];
  if (mass_input_id_ < 0) {
    mass_input_id_ = wafe_->app().AddInput(mass_read_fd_, [this](int) { OnMassReadable(); });
  }
  return true;
}

void Frontend::SetCommunicationVariable(const std::string& var, std::size_t nbytes,
                                        const std::string& completion) {
  mass_var_ = var;
  mass_expected_ = nbytes;
  mass_completion_ = completion;
  mass_buffer_.reserve(nbytes);
  // Data may already have arrived (the backend is free to write before the
  // arming command is processed); complete immediately in that case.
  if (mass_buffer_.size() >= mass_expected_) {
    FinishMassTransfer();
  }
}

void Frontend::FinishMassTransfer() {
  wobs::ScopedEvent obs_span("comm", "mass-transfer", &g_mass_transfer_duration);
  g_mass_transfers.Increment();
  g_mass_bytes.Increment(mass_expected_);
  std::string value = mass_buffer_.substr(0, mass_expected_);
  mass_buffer_.erase(0, mass_expected_);
  mass_expected_ = 0;
  wafe_->interp().SetVar(mass_var_, std::move(value));
  if (!mass_completion_.empty()) {
    wtcl::Result r = wafe_->Eval(mass_completion_);
    if (r.code == wtcl::Status::kError) {
      std::fprintf(stderr, "wafe: mass-transfer completion: %s\n", r.value.c_str());
    }
  }
}

void Frontend::OnMassReadable() {
  char chunk[16384];
  ssize_t n = ::read(mass_read_fd_, chunk, sizeof(chunk));
  if (n <= 0) {
    if (mass_input_id_ >= 0) {
      wafe_->app().RemoveInput(mass_input_id_);
      mass_input_id_ = -1;
    }
    return;
  }
  if (mass_expected_ == 0) {
    // Unsolicited data: buffer it for the next setCommunicationVariable.
    mass_buffer_.append(chunk, static_cast<std::size_t>(n));
    return;
  }
  mass_buffer_.append(chunk, static_cast<std::size_t>(n));
  if (mass_buffer_.size() >= mass_expected_) {
    FinishMassTransfer();
  }
}

}  // namespace wafe
