#include "src/core/comm.h"

#include <csignal>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/core/wafe.h"
#include "src/obs/obs.h"

namespace wafe {

namespace {

// Observability instruments for the protocol channel (src/obs).
wobs::Counter g_lines_in("comm.lines.in");
wobs::Counter g_lines_out("comm.lines.out");
wobs::Counter g_bytes_in("comm.bytes.in");
wobs::Counter g_percent_commands("comm.percent.commands");
wobs::Counter g_passthrough_lines("comm.passthrough.lines");
wobs::Counter g_mass_bytes("comm.mass.bytes");
wobs::Counter g_mass_transfers("comm.mass.transfers");
wobs::Counter g_mass_truncated("comm.mass.truncated");
wobs::Histogram g_line_duration("comm.line.duration");
wobs::Histogram g_mass_transfer_duration("comm.mass.duration");
// End-to-end %-request latency: eval plus any error reporting back over the
// channel, overall and fanned out by command name (top-K; the rest fold into
// comm.request.command.other).
wobs::Histogram g_request_latency("comm.request.latency");
wobs::LabeledHistogram g_request_by_command("comm.request.command");

// Outbound queue / backpressure / supervision instruments.
wobs::Counter g_queue_enqueued("comm.queue.enqueued");
wobs::Counter g_queue_dropped("comm.queue.dropped");
wobs::Gauge g_queue_depth("comm.queue.depth");
wobs::MaxGauge g_queue_highwater("comm.queue.highwater");
wobs::Counter g_backpressure_highwater("comm.backpressure.highwater");
wobs::Counter g_backpressure_blocked("comm.backpressure.blocked");
wobs::Histogram g_backpressure_block_duration("comm.backpressure.block.duration");
wobs::Counter g_write_errors("comm.write.errors");
wobs::Counter g_restarts("comm.restarts");
wobs::Counter g_eval_errors("comm.eval.errors");
wobs::Counter g_circuit_tripped("comm.eval.circuit.tripped");

// First word of a %-line's script: the label for the per-command request
// latency fan-out.
std::string_view CommandWord(std::string_view script) {
  std::size_t begin = script.find_first_not_of(" \t");
  if (begin == std::string_view::npos) {
    return {};
  }
  std::size_t end = begin;
  while (end < script.size() && script[end] != ' ' && script[end] != '\t' &&
         script[end] != ';' && script[end] != '\n') {
    ++end;
  }
  return script.substr(begin, end - begin);
}

// A dead backend must not kill the frontend with SIGPIPE; writes report
// EPIPE instead and the channel layer notices the hangup. Installed at most
// once per process via sigaction, only when the embedding application left
// the default disposition in place (a handler it installed is preserved),
// and restored when the last backend channel closes.
struct sigaction g_saved_sigpipe;
bool g_sigpipe_installed = false;
int g_sigpipe_refs = 0;

void AcquireSigpipeGuard() {
  if (g_sigpipe_refs++ > 0) {
    return;
  }
  struct sigaction current {};
  if (::sigaction(SIGPIPE, nullptr, &current) != 0) {
    return;
  }
  bool is_default =
      (current.sa_flags & SA_SIGINFO) == 0 && current.sa_handler == SIG_DFL;
  if (!is_default) {
    return;
  }
  struct sigaction ignore {};
  ignore.sa_handler = SIG_IGN;
  sigemptyset(&ignore.sa_mask);
  if (::sigaction(SIGPIPE, &ignore, &g_saved_sigpipe) == 0) {
    g_sigpipe_installed = true;
  }
}

void ReleaseSigpipeGuard() {
  if (g_sigpipe_refs <= 0 || --g_sigpipe_refs > 0) {
    return;
  }
  if (g_sigpipe_installed) {
    ::sigaction(SIGPIPE, &g_saved_sigpipe, nullptr);
    g_sigpipe_installed = false;
  }
}

void SetNonBlocking(int fd) {
  if (fd < 0) {
    return;
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) {
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
}

std::int64_t NowMsMono() {
  return static_cast<std::int64_t>(wobs::NowNs() / 1000000ull);
}

const char* PolicyName(OverflowPolicy policy) {
  switch (policy) {
    case OverflowPolicy::kBlock:
      return "block";
    case OverflowPolicy::kDropOldest:
      return "dropOldest";
    case OverflowPolicy::kFail:
      return "fail";
  }
  return "?";
}

}  // namespace

Frontend::Frontend(Wafe* wafe) : wafe_(wafe) {
  if (const char* spec = std::getenv("WAFE_COMM_FAULT")) {
    std::string error;
    if (!ApplyFaultSpec(spec, &error)) {
      wobs::Log("comm", "bad WAFE_COMM_FAULT: " + error, /*always=*/true);
    }
  }
}

Frontend::~Frontend() { CloseBackend(); }

bool Frontend::SpawnBackend(const std::string& program, const std::vector<std::string>& args,
                            std::string* error) {
  if (replay_mode_) {
    // Replay: no child process exists — only the supervision bookkeeping
    // (program name, respawn counting) advances, so the restart/backoff
    // decisions replayed lines trigger match the recorded session's.
    backend_program_ = program;
    backend_args_ = args;
    exit_recorded_ = false;
    last_exit_status_ = 0;
    buffer_.clear();
    overlong_in_progress_ = false;
    return true;
  }
  if (wafe_->recording()) {
    std::string description = program;
    for (const std::string& arg : args) {
      description += " " + arg;
    }
    wafe_->RecordSpawn(description);
  }
  if (!sigpipe_guard_held_) {
    AcquireSigpipeGuard();
    sigpipe_guard_held_ = true;
  }
  // The mass channel must exist before the fork so the child inherits the
  // write end under the fd number getChannel reports.
  if (mass_read_fd_ < 0 && !SetupMassChannel(error)) {
    return false;
  }
  // The preferred program-to-program communication is a socketpair (paper
  // §Availability); pipes are the fallback for systems without it.
  int sockets[2] = {-1, -1};
  bool using_sockets =
      !force_pipes_ && ::socketpair(AF_UNIX, SOCK_STREAM, 0, sockets) == 0;
  using_socketpair_ = using_sockets;
  int to_child[2] = {-1, -1};
  int from_child[2] = {-1, -1};
  if (!using_sockets) {
    if (::pipe(to_child) != 0 || ::pipe(from_child) != 0) {
      if (error != nullptr) {
        *error = std::string("cannot create pipes: ") + std::strerror(errno);
      }
      return false;
    }
  }
  int pid = ::fork();
  if (pid < 0) {
    if (error != nullptr) {
      *error = std::string("fork failed: ") + std::strerror(errno);
    }
    return false;
  }
  if (pid == 0) {
    // Child: wire stdio to the frontend and exec the backend.
    if (using_sockets) {
      ::dup2(sockets[1], 0);
      ::dup2(sockets[1], 1);
      ::close(sockets[0]);
      ::close(sockets[1]);
    } else {
      ::dup2(to_child[0], 0);
      ::dup2(from_child[1], 1);
      ::close(to_child[0]);
      ::close(to_child[1]);
      ::close(from_child[0]);
      ::close(from_child[1]);
    }
    if (mass_read_fd_ >= 0) {
      ::close(mass_read_fd_);  // the child keeps only the write end
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(program.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(program.c_str(), argv.data());
    // exec failed; report over the (former) protocol channel and die.
    const char* msg = "wafe: cannot execute backend\n";
    ssize_t ignored = ::write(1, msg, std::strlen(msg));
    (void)ignored;
    ::_exit(127);
  }
  // Parent.
  pid_ = pid;
  backend_program_ = program;
  backend_args_ = args;
  exit_recorded_ = false;
  last_exit_status_ = 0;
  buffer_.clear();
  overlong_in_progress_ = false;
  if (using_sockets) {
    ::close(sockets[1]);
    read_fd_ = sockets[0];
    write_fd_ = sockets[0];
  } else {
    ::close(to_child[0]);
    ::close(from_child[1]);
    read_fd_ = from_child[0];
    write_fd_ = to_child[1];
  }
  // The event loop owns both directions: reads are poll-driven and writes
  // drain through the write-ready source, so neither may ever block.
  SetNonBlocking(read_fd_);
  SetNonBlocking(write_fd_);
  wobs::Log("proc", "forked backend pid=" + std::to_string(pid_) + " exec=" + program +
                        " transport=" + (using_sockets ? "socketpair" : "pipe"));
  // The backend write end of the mass channel stays open on the frontend
  // side too: in-process backends (AdoptBackend) write through it, and a
  // forked child inherited its own copy by fd number.
  RegisterInputHandlers();
  return true;
}

void Frontend::AdoptBackend(int read_fd, int write_fd) {
  if (!sigpipe_guard_held_) {
    AcquireSigpipeGuard();
    sigpipe_guard_held_ = true;
  }
  read_fd_ = read_fd;
  write_fd_ = write_fd;
  SetNonBlocking(read_fd_);
  SetNonBlocking(write_fd_);
  RegisterInputHandlers();
}

void Frontend::RegisterInputHandlers() {
  if (read_fd_ >= 0 && input_id_ < 0) {
    input_id_ = wafe_->app().AddInput(read_fd_, [this](int) { OnBackendReadable(); });
  }
  if (mass_read_fd_ >= 0 && mass_input_id_ < 0) {
    mass_input_id_ = wafe_->app().AddInput(mass_read_fd_, [this](int) { OnMassReadable(); });
  }
}

int Frontend::OnBackendReadable() {
  char chunk[8192];
  ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
  if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
    return 0;  // spurious wakeup on the non-blocking fd; not a hangup
  }
  if (n <= 0) {
    // EOF or error: the backend is gone.
    wobs::Log("proc", "backend pid=" + std::to_string(pid_) +
                          " hung up (read returned " + std::to_string(n) + ")");
    HandleBackendGone("hangup");
    return -1;
  }
  bytes_received_ += static_cast<std::size_t>(n);
  g_bytes_in.Increment(static_cast<std::uint64_t>(n));
  buffer_.append(chunk, static_cast<std::size_t>(n));
  return DrainBuffer();
}

int Frontend::DrainBuffer() {
  int handled = 0;
  for (;;) {
    std::size_t nl = buffer_.find('\n');
    if (nl == std::string::npos) {
      break;
    }
    std::string line = buffer_.substr(0, nl);
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();  // tolerate CRLF backends
    }
    // Consume before evaluating: handling a line can kill the backend
    // (a %-command that writes into a dead pipe), and HandleBackendGone
    // flushes whatever is still buffered — lines already handled must not
    // be there to be replayed.
    buffer_.erase(0, nl + 1);
    if (overlong_in_progress_) {
      // This newline terminates a line that already blew the limit.
      overlong_in_progress_ = false;
      continue;
    }
    HandleLine(line);
    ++handled;
  }
  if (buffer_.size() > wafe_->options().max_line_length) {
    // A single protocol line must fit within the configured maximum (64 KB
    // by default); longer lines are dropped with a diagnostic.
    ++overlong_lines_;
    overlong_in_progress_ = true;
    buffer_.clear();
    // Routed through the toolkit warning stack: deduplicated by default, and
    // an installed warningProc can observe it.
    wafe_->app().errors().RaiseWarning("protocolLine",
                                       "protocol line exceeds maximum length, dropped");
  }
  return handled;
}

void Frontend::HandleLine(const std::string& line) {
  ++lines_received_;
  g_lines_in.Increment();
  // Journal the line before evaluating it: a crash mid-eval still leaves
  // the line that caused it in the journal (fsync policy permitting).
  if (wafe_->recording() && !replay_mode_) {
    wafe_->RecordInboundLine(line);
  }
  if (!line.empty() && line[0] == wafe_->options().prefix) {
    g_percent_commands.Increment();
    // The request scope opens before the span, so every event pushed while
    // this line is handled — the span itself, the eval, the callbacks it
    // fires, the damage flush they cause — carries the same request id and
    // renders on the request lane.
    wobs::RequestScope request;
    wobs::ScopedEvent obs_span("comm", "protocol-line", &g_line_duration);
    const std::uint64_t request_start =
        wobs::MetricsEnabled() ? wobs::NowNs() : 0;
    wafe_->count_line();
    std::string_view script = std::string_view(line).substr(1);
    wtcl::Result r = wafe_->Eval(script);
    if (r.code == wtcl::Status::kError) {
      HandleEvalError(r.value);
    } else if (eval_errors_consecutive_ != 0) {
      eval_errors_consecutive_ = 0;
    }
    if (request_start != 0) {
      std::uint64_t dur = wobs::NowNs() - request_start;
      g_request_latency.Record(dur);
      g_request_by_command.Record(CommandWord(script), dur);
    }
    return;
  }
  // Unprefixed lines pass through to Wafe's stdout (or the registered
  // passthrough hook).
  g_passthrough_lines.Increment();
  wafe_->WritePassthrough(line);
}

void Frontend::HandleEvalError(const std::string& message) {
  ++eval_errors_total_;
  g_eval_errors.Increment();
  // Paper convention: errors in application-supplied commands are reported
  // back over the channel — one "error <trace>" line on the backend's stdin
  // (embedded newlines collapsed) — never fatal to the frontend. The copy on
  // stderr keeps the failure visible to whoever launched the session.
  std::fprintf(stderr, "wafe: %s\n", message.c_str());
  std::string detail = message;
  if (wafe_->interp().error_trace_active()) {
    std::string info;
    if (wafe_->interp().GetGlobalVar("errorInfo", &info) && !info.empty()) {
      detail = info;
    }
  }
  std::string trace = "error " + detail;
  for (char& c : trace) {
    if (c == '\n') {
      c = ' ';
    }
  }
  SendToBackend(trace);
  if (eval_error_limit_ > 0 && ++eval_errors_consecutive_ >= eval_error_limit_ &&
      !gone_handling_) {
    // The backend is feeding a steady stream of failing %-lines: trip the
    // circuit instead of wedging. Supervision (if on) respawns it.
    g_circuit_tripped.Increment();
    if (wafe_->recording() && !replay_mode_) {
      wafe_->RecordCircuitTrip(eval_errors_consecutive_);
    }
    // Flight record before the breaker acts: recovery (a respawned backend,
    // the quit path) would overwrite the ring that still holds the offending
    // request's spans.
    wobs::DumpFlightRecord("circuit-breaker");
    wobs::Log("comm",
              "eval error limit (" + std::to_string(eval_error_limit_) +
                  " consecutive) tripped; dropping backend",
              true);
    eval_errors_consecutive_ = 0;
    HandleBackendGone("error-limit");
  }
}

// --- Outbound queue -----------------------------------------------------------------

bool Frontend::SendToBackend(const std::string& line) {
  if (write_fd_ < 0 && !restart_pending()) {
    return false;
  }
  std::string out;
  out.reserve(line.size() + 1);
  out = line;
  out.push_back('\n');
  // A single line is always admitted into an empty queue, whatever the
  // limit: the paper's protocol has no way to split one.
  if (!send_queue_.empty() && send_queue_bytes_ + out.size() > send_queue_limit_) {
    bool space = false;
    switch (overflow_policy_) {
      case OverflowPolicy::kBlock:
        space = BlockUntilSpace(out.size());
        break;
      case OverflowPolicy::kDropOldest: {
        // Drop whole queued lines, oldest first — but never the front line
        // once part of it reached the kernel (a half-sent line would corrupt
        // the stream).
        while (send_queue_bytes_ + out.size() > send_queue_limit_) {
          std::size_t first_droppable = send_front_offset_ == 0 ? 0 : 1;
          if (send_queue_.size() <= first_droppable) {
            break;
          }
          auto it = send_queue_.begin() + static_cast<long>(first_droppable);
          send_queue_bytes_ -= it->size() - (first_droppable == 0 ? send_front_offset_ : 0);
          if (first_droppable == 0) {
            send_front_offset_ = 0;
          }
          send_queue_.erase(it);
          ++lines_dropped_;
          g_queue_dropped.Increment();
        }
        space = send_queue_bytes_ + out.size() <= send_queue_limit_;
        break;
      }
      case OverflowPolicy::kFail:
        space = false;
        break;
    }
    if (!space) {
      ++lines_dropped_;
      g_queue_dropped.Increment();
      return false;
    }
  }
  send_queue_bytes_ += out.size();
  send_queue_.push_back(std::move(out));
  g_queue_enqueued.Increment();
  g_queue_depth.Set(send_queue_bytes_);
  g_queue_highwater.Observe(send_queue_bytes_);
  CheckHighWater();
  FlushSendQueue();
  return true;
}

void Frontend::OnBackendWritable() { FlushSendQueue(); }

ssize_t Frontend::WriteBackend(const char* data, std::size_t len) {
  if (faults_.eintr_storm > 0) {
    --faults_.eintr_storm;
    errno = EINTR;
    return -1;
  }
  if (faults_.eagain_storm > 0) {
    --faults_.eagain_storm;
    errno = EAGAIN;
    return -1;
  }
  if (faults_.hangup_after_bytes == 0) {
    faults_.hangup_after_bytes = -1;
    errno = EPIPE;
    return -1;
  }
  if (faults_.short_write_max > 0 && len > faults_.short_write_max) {
    len = faults_.short_write_max;
  }
  if (faults_.hangup_after_bytes > 0 &&
      static_cast<long>(len) > faults_.hangup_after_bytes) {
    len = static_cast<std::size_t>(faults_.hangup_after_bytes);
  }
  ssize_t n = ::write(write_fd_, data, len);
  if (n > 0 && faults_.hangup_after_bytes > 0) {
    faults_.hangup_after_bytes -= n;
  }
  return n;
}

void Frontend::FlushSendQueue() {
  while (write_fd_ >= 0 && !send_queue_.empty()) {
    const std::string& front = send_queue_.front();
    ssize_t n = WriteBackend(front.data() + send_front_offset_,
                             front.size() - send_front_offset_);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;  // kernel buffer full; the write-ready source resumes us
      }
      g_write_errors.Increment();
      wobs::Log("comm", std::string("backend write failed: ") + std::strerror(errno));
      HandleBackendGone(errno == EPIPE ? "write-epipe" : "write-error");
      return;  // HandleBackendGone already updated the watches
    }
    if (n == 0) {
      break;
    }
    send_front_offset_ += static_cast<std::size_t>(n);
    send_queue_bytes_ -= static_cast<std::size_t>(n);
    if (send_front_offset_ == front.size()) {
      send_queue_.pop_front();
      send_front_offset_ = 0;
      ++lines_sent_;
      g_lines_out.Increment();
    }
  }
  g_queue_depth.Set(send_queue_bytes_);
  UpdateWriteWatch();
  CheckHighWater();
}

void Frontend::UpdateWriteWatch() {
  bool want = write_fd_ >= 0 && !send_queue_.empty();
  if (want && output_id_ < 0) {
    output_id_ = wafe_->app().AddOutput(write_fd_, [this](int) { OnBackendWritable(); });
  } else if (!want && output_id_ >= 0) {
    wafe_->app().RemoveOutput(output_id_);
    output_id_ = -1;
  }
}

bool Frontend::BlockUntilSpace(std::size_t needed) {
  g_backpressure_blocked.Increment();
  std::uint64_t start_ns = wobs::NowNs();
  std::int64_t deadline = NowMsMono() + send_deadline_ms_;
  while (write_fd_ >= 0 && send_queue_bytes_ + needed > send_queue_limit_) {
    std::int64_t remaining = deadline - NowMsMono();
    if (remaining <= 0) {
      break;
    }
    pollfd pfd{write_fd_, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining));
    if (ready < 0 && errno == EINTR) {
      continue;
    }
    if (ready <= 0) {
      break;  // deadline passed
    }
    FlushSendQueue();  // may invalidate write_fd_ on a hard error
  }
  g_backpressure_block_duration.Record(wobs::NowNs() - start_ns);
  return write_fd_ >= 0 && send_queue_bytes_ + needed <= send_queue_limit_;
}

void Frontend::SetHighWater(std::size_t bytes, std::string script) {
  high_water_bytes_ = bytes;
  high_water_script_ = std::move(script);
  high_water_armed_ = true;
}

void Frontend::CheckHighWater() {
  if (high_water_bytes_ == 0 || high_water_script_.empty()) {
    return;
  }
  if (high_water_armed_ && send_queue_bytes_ > high_water_bytes_) {
    high_water_armed_ = false;  // edge-triggered; re-arms once drained
    g_backpressure_highwater.Increment();
    wafe_->interp().SetVar("backendQueueBytes", std::to_string(send_queue_bytes_));
    wtcl::Result r = wafe_->Eval(high_water_script_);
    if (r.code == wtcl::Status::kError) {
      wafe_->app().errors().RaiseError("highWaterCallback", r.value);
    }
  } else if (!high_water_armed_ && send_queue_bytes_ <= high_water_bytes_ / 2) {
    high_water_armed_ = true;
  }
}

// --- Supervision --------------------------------------------------------------------

void Frontend::set_backoff(int initial_ms, int max_ms) {
  backoff_initial_ms_ = initial_ms;
  backoff_max_ms_ = max_ms;
  backoff_ms_ = initial_ms;
}

void Frontend::ResetSupervision() {
  restarts_done_ = 0;
  backoff_ms_ = backoff_initial_ms_;
}

void Frontend::RecordExit(int wait_status) {
  exit_recorded_ = true;
  int pid = pid_;
  if (WIFSIGNALED(wait_status)) {
    last_exit_status_ = -1;
    // Abnormal deaths are always logged, even with observability off.
    wobs::Log("proc",
              "backend pid=" + std::to_string(pid) + " exec=" + backend_program_ +
                  " killed by signal " + std::to_string(WTERMSIG(wait_status)),
              /*always=*/true);
    return;
  }
  last_exit_status_ = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : -1;
  wobs::Log("proc",
            "backend pid=" + std::to_string(pid) + " exec=" + backend_program_ +
                " exited status=" + std::to_string(last_exit_status_),
            /*always=*/last_exit_status_ != 0);
}

bool Frontend::TryReap() {
  if (pid_ <= 0) {
    return true;
  }
  for (;;) {
    int status = 0;
    pid_t r = ::waitpid(pid_, &status, WNOHANG);
    if (r == pid_) {
      RecordExit(status);
      pid_ = -1;
      return true;
    }
    if (r == 0) {
      return false;  // still running
    }
    if (errno == EINTR) {
      continue;
    }
    pid_ = -1;  // ECHILD: already reaped elsewhere
    return true;
  }
}

void Frontend::HandleBackendGone(const char* reason) {
  if (gone_handling_) {
    return;
  }
  gone_handling_ = true;
  if (input_id_ >= 0) {
    wafe_->app().RemoveInput(input_id_);
    input_id_ = -1;
  }
  if (output_id_ >= 0) {
    wafe_->app().RemoveOutput(output_id_);
    output_id_ = -1;
  }
  // Deliver what already arrived: complete lines one by one, then any
  // unterminated tail as a final line. (gone_handling_ keeps a write error
  // raised by one of these lines from recursing back here.)
  DrainBuffer();
  if (!buffer_.empty() && !overlong_in_progress_) {
    HandleLine(buffer_);
  }
  buffer_.clear();
  overlong_in_progress_ = false;
  if (read_fd_ >= 0) {
    ::close(read_fd_);
  }
  if (write_fd_ >= 0 && write_fd_ != read_fd_) {
    ::close(write_fd_);
  }
  write_fd_ = -1;
  read_fd_ = -1;
  // A partially-written front line cannot be resumed against a new backend.
  if (send_front_offset_ > 0 && !send_queue_.empty()) {
    send_queue_bytes_ -= send_queue_.front().size() - send_front_offset_;
    send_queue_.pop_front();
    send_front_offset_ = 0;
    ++lines_dropped_;
    g_queue_dropped.Increment();
    g_queue_depth.Set(send_queue_bytes_);
  }
  bool will_respawn =
      supervise_ && !backend_program_.empty() && restarts_done_ < max_restarts_;
  // Reap: the child normally exited already (we saw EOF). Losing our fds is
  // its cue to go; give it a short grace, and — when a replacement is about
  // to be spawned — escalate so the old one cannot linger as a zombie.
  if (!TryReap()) {
    std::int64_t deadline = NowMsMono() + 200;
    while (NowMsMono() < deadline && !TryReap()) {
      ::usleep(1000);
    }
    if (pid_ > 0 && will_respawn) {
      ::kill(pid_, SIGTERM);
      deadline = NowMsMono() + 200;
      while (NowMsMono() < deadline && !TryReap()) {
        ::usleep(1000);
      }
      if (pid_ > 0) {
        ::kill(pid_, SIGKILL);
        int status = 0;
        while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
        }
        RecordExit(status);
        pid_ = -1;
      }
    }
  }
  // Journaled after the reap so the recorded transition carries the exit
  // status the Tcl hook is about to see. Breaker-driven deaths
  // ("error-limit") regenerate during replay from the recorded lines, so the
  // record is informational for them; external deaths (hangup, write
  // errors) are replayed from it.
  if (wafe_->recording() && !replay_mode_) {
    wafe_->RecordBackendGone(
        std::string(reason) + " " +
        (exit_recorded_ ? std::to_string(last_exit_status_) : "unknown") + " " +
        std::to_string(restarts_done_));
  }
  // The Tcl hook sees reason, status, and restart count as variables.
  wafe_->interp().SetVar("backendExitReason", reason);
  wafe_->interp().SetVar("backendExitStatus",
                         exit_recorded_ ? std::to_string(last_exit_status_) : "unknown");
  wafe_->interp().SetVar("backendRestarts", std::to_string(restarts_done_));
  if (!exit_command_.empty()) {
    wtcl::Result r = wafe_->Eval(exit_command_);
    if (r.code == wtcl::Status::kError) {
      wafe_->app().errors().RaiseError("backendExitCommand", r.value);
    }
  }
  if (will_respawn) {
    int delay = backoff_ms_;
    backoff_ms_ = std::min(backoff_ms_ * 2, backoff_max_ms_);
    wobs::Log("proc", "supervisor: respawn attempt " +
                          std::to_string(restarts_done_ + 1) + "/" +
                          std::to_string(max_restarts_) + " in " +
                          std::to_string(delay) + "ms (" + reason + ")");
    restart_timer_id_ = wafe_->app().AddTimeout(delay, [this] { RespawnNow(); });
  } else {
    wafe_->Quit(0);
  }
  gone_handling_ = false;
}

void Frontend::RespawnNow() {
  restart_timer_id_ = -1;
  ++restarts_done_;
  g_restarts.Increment();
  // Local copies: SpawnBackend re-assigns backend_program_/backend_args_.
  std::string program = backend_program_;
  std::vector<std::string> args = backend_args_;
  std::string error;
  if (!SpawnBackend(program, args, &error)) {
    wobs::Log("proc", "supervisor: respawn failed: " + error, /*always=*/true);
    if (supervise_ && restarts_done_ < max_restarts_) {
      int delay = backoff_ms_;
      backoff_ms_ = std::min(backoff_ms_ * 2, backoff_max_ms_);
      restart_timer_id_ = wafe_->app().AddTimeout(delay, [this] { RespawnNow(); });
    } else {
      wafe_->Quit(1);
    }
    return;
  }
  wobs::Log("proc", "supervisor: respawned backend pid=" + std::to_string(pid_) +
                        " (attempt " + std::to_string(restarts_done_) + "/" +
                        std::to_string(max_restarts_) + ")");
  // Lines queued while the backend was down flow to the replacement.
  FlushSendQueue();
}

void Frontend::ReplayBackendGone(const char* reason, bool has_status, int status) {
  exit_recorded_ = has_status;
  last_exit_status_ = has_status ? status : 0;
  // pid_ is -1 in replay mode, so the reap inside is an immediate no-op; the
  // rest — exit variables, the exit hook, respawn scheduling or Quit — runs
  // exactly as it did when the transition was recorded.
  HandleBackendGone(reason);
}

int Frontend::WaitBackend() {
  if (pid_ > 0) {
    for (;;) {
      int status = 0;
      pid_t r = ::waitpid(pid_, &status, 0);
      if (r == pid_) {
        RecordExit(status);
        pid_ = -1;
        break;
      }
      if (r < 0 && errno == EINTR) {
        continue;
      }
      pid_ = -1;  // ECHILD
      break;
    }
  }
  return exit_recorded_ ? last_exit_status_ : 0;
}

void Frontend::CloseBackend() {
  if (restart_timer_id_ >= 0) {
    wafe_->app().RemoveTimeout(restart_timer_id_);
    restart_timer_id_ = -1;
  }
  if (input_id_ >= 0) {
    wafe_->app().RemoveInput(input_id_);
    input_id_ = -1;
  }
  if (output_id_ >= 0) {
    wafe_->app().RemoveOutput(output_id_);
    output_id_ = -1;
  }
  if (read_fd_ >= 0) {
    ::close(read_fd_);
  }
  if (write_fd_ >= 0 && write_fd_ != read_fd_) {
    ::close(write_fd_);
  }
  read_fd_ = -1;
  write_fd_ = -1;
  send_queue_.clear();
  send_front_offset_ = 0;
  send_queue_bytes_ = 0;
  g_queue_depth.Set(0);
  if (mass_read_fd_ >= 0) {
    if (mass_input_id_ >= 0) {
      wafe_->app().RemoveInput(mass_input_id_);
      mass_input_id_ = -1;
    }
    // An armed transfer interrupted by shutdown: salvage what the pipe
    // already holds (non-blocking; the poll loop is no longer watching it)
    // before releasing the fd.
    if (mass_armed_) {
      SetNonBlocking(mass_read_fd_);
      char chunk[16384];
      ssize_t n;
      while (mass_buffer_.size() < mass_expected_ &&
             (n = ::read(mass_read_fd_, chunk, sizeof(chunk))) > 0) {
        mass_buffer_.append(chunk, static_cast<std::size_t>(n));
      }
    }
    ::close(mass_read_fd_);
    mass_read_fd_ = -1;
  }
  if (mass_backend_fd_ >= 0) {
    ::close(mass_backend_fd_);
    mass_backend_fd_ = -1;
  }
  // Complete-as-truncated, mirroring the EOF path: the armed Tcl variable is
  // set to whatever arrived and the completion script runs, instead of the
  // transfer silently evaporating. Ordered after the fd release and before
  // the reap — a backend blocked writing into a full mass pipe sees EPIPE
  // once the read end closes and can exit, so the reap below succeeds
  // without escalating.
  if (mass_armed_) {
    g_mass_truncated.Increment();
    wobs::Log("comm",
              "mass channel closed mid-transfer: expected " +
                  std::to_string(mass_expected_) + " bytes, got " +
                  std::to_string(mass_buffer_.size()),
              /*always=*/true);
    if (mass_buffer_.size() < mass_expected_) {
      mass_expected_ = mass_buffer_.size();
    }
    FinishMassTransfer();
  }
  if (pid_ > 0 && !TryReap()) {
    // Shutdown reap: closing stdin above is the child's cue to exit. A
    // single WNOHANG probe would leak a child that exits moments later as a
    // zombie, so poll briefly, then escalate.
    std::int64_t deadline = NowMsMono() + 500;
    while (NowMsMono() < deadline && !TryReap()) {
      ::usleep(1000);
    }
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      deadline = NowMsMono() + 200;
      while (NowMsMono() < deadline && !TryReap()) {
        ::usleep(1000);
      }
    }
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      int status = 0;
      while (::waitpid(pid_, &status, 0) < 0 && errno == EINTR) {
      }
      RecordExit(status);
      pid_ = -1;
    }
  }
  if (sigpipe_guard_held_) {
    ReleaseSigpipeGuard();
    sigpipe_guard_held_ = false;
  }
}

std::string Frontend::StatusText() const {
  std::string out;
  out += "alive " + std::to_string(backend_alive() ? 1 : 0);
  out += " pid " + std::to_string(pid_);
  out += " transport ";
  out += using_socketpair_ ? "socketpair" : "pipe";
  out += " queueBytes " + std::to_string(send_queue_bytes_);
  out += " queueLines " + std::to_string(send_queue_.size());
  out += " queueLimit " + std::to_string(send_queue_limit_);
  out += " policy ";
  out += PolicyName(overflow_policy_);
  out += " deadline " + std::to_string(send_deadline_ms_);
  out += " highWater " + std::to_string(high_water_bytes_);
  out += " dropped " + std::to_string(lines_dropped_);
  out += " supervise " + std::to_string(supervise_ ? 1 : 0);
  out += " restarts " + std::to_string(restarts_done_);
  out += " maxRestarts " + std::to_string(max_restarts_);
  out += " backoff " + std::to_string(backoff_initial_ms_);
  out += " restartPending " + std::to_string(restart_pending() ? 1 : 0);
  out += " errorLimit " + std::to_string(eval_error_limit_);
  out += " evalErrors " + std::to_string(eval_errors_total_);
  out += " lastExit ";
  out += exit_recorded_ ? std::to_string(last_exit_status_) : "none";
  return out;
}

// --- Fault injection ----------------------------------------------------------------

bool Frontend::ApplyFaultSpec(const std::string& spec, std::string* error) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t comma = spec.find(',', start);
    std::string token = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) {
      continue;
    }
    std::size_t eq = token.find('=');
    std::string kind = token.substr(0, eq);
    long value = 0;
    if (eq != std::string::npos) {
      value = std::strtol(token.c_str() + eq + 1, nullptr, 10);
    }
    if (kind == "clear" || kind == "none") {
      ClearFaults();
    } else if (kind == "shortWrites") {
      faults_.short_write_max = value < 0 ? 0 : static_cast<std::size_t>(value);
    } else if (kind == "eagain") {
      faults_.eagain_storm = static_cast<int>(value);
    } else if (kind == "eintr") {
      faults_.eintr_storm = static_cast<int>(value);
    } else if (kind == "hangupAfter") {
      faults_.hangup_after_bytes = value;
    } else if (kind == "massEofAfter") {
      faults_.mass_eof_after_bytes = value;
    } else {
      if (error != nullptr) {
        *error = "unknown fault \"" + kind +
                 "\": must be shortWrites, eagain, eintr, hangupAfter, "
                 "massEofAfter, or clear";
      }
      return false;
    }
  }
  return true;
}

std::string Frontend::FaultStatusText() const {
  return "shortWrites " + std::to_string(faults_.short_write_max) + " eagain " +
         std::to_string(faults_.eagain_storm) + " eintr " +
         std::to_string(faults_.eintr_storm) + " hangupAfter " +
         std::to_string(faults_.hangup_after_bytes) + " massEofAfter " +
         std::to_string(faults_.mass_eof_after_bytes);
}

// --- Mass channel ------------------------------------------------------------------

bool Frontend::SetupMassChannel(std::string* error) {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) {
    if (error != nullptr) {
      *error = std::string("cannot create mass channel: ") + std::strerror(errno);
    }
    return false;
  }
  mass_read_fd_ = fds[0];
  mass_backend_fd_ = fds[1];
  if (mass_input_id_ < 0) {
    mass_input_id_ = wafe_->app().AddInput(mass_read_fd_, [this](int) { OnMassReadable(); });
  }
  return true;
}

void Frontend::SetCommunicationVariable(const std::string& var, std::size_t nbytes,
                                        const std::string& completion) {
  mass_var_ = var;
  mass_expected_ = nbytes;
  mass_completion_ = completion;
  mass_armed_ = true;
  mass_buffer_.reserve(nbytes);
  // Data may already have arrived (the backend is free to write before the
  // arming command is processed), and a zero-byte transfer is complete by
  // definition: the variable is set empty and the completion runs now.
  if (mass_buffer_.size() >= mass_expected_) {
    FinishMassTransfer();
  }
}

void Frontend::FinishMassTransfer() {
  wobs::ScopedEvent obs_span("comm", "mass-transfer", &g_mass_transfer_duration);
  g_mass_transfers.Increment();
  g_mass_bytes.Increment(mass_expected_);
  std::string value = mass_buffer_.substr(0, mass_expected_);
  mass_buffer_.erase(0, mass_expected_);
  mass_expected_ = 0;
  mass_armed_ = false;
  wafe_->interp().SetVar(mass_var_, std::move(value));
  if (!mass_completion_.empty()) {
    wtcl::Result r = wafe_->Eval(mass_completion_);
    if (r.code == wtcl::Status::kError) {
      wafe_->app().errors().RaiseError("massTransferCompletion", r.value);
    }
  }
}

void Frontend::OnMassReadable() {
  char chunk[16384];
  std::size_t want = sizeof(chunk);
  bool simulated_eof = faults_.mass_eof_after_bytes == 0;
  if (faults_.mass_eof_after_bytes > 0 &&
      static_cast<long>(want) > faults_.mass_eof_after_bytes) {
    want = static_cast<std::size_t>(faults_.mass_eof_after_bytes);
  }
  ssize_t n = simulated_eof ? 0 : ::read(mass_read_fd_, chunk, want);
  if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
    return;
  }
  if (n > 0) {
    if (faults_.mass_eof_after_bytes > 0) {
      faults_.mass_eof_after_bytes -= n;
      // Budget exhausted: these bytes arrive, then the channel "ends" —
      // handled now, because no further read event will fire for it.
      simulated_eof = faults_.mass_eof_after_bytes == 0;
    }
    mass_buffer_.append(chunk, static_cast<std::size_t>(n));
    // Without an armed transfer the data is unsolicited: buffered for the
    // next setCommunicationVariable.
    if (mass_armed_ && mass_buffer_.size() >= mass_expected_) {
      FinishMassTransfer();
    }
    if (!simulated_eof) {
      return;
    }
  }
  // EOF, real or injected.
  if (simulated_eof) {
    faults_.mass_eof_after_bytes = -1;
  }
  if (mass_input_id_ >= 0) {
    wafe_->app().RemoveInput(mass_input_id_);
    mass_input_id_ = -1;
  }
  if (mass_armed_) {
    // The channel truncated mid-transfer: complete with what arrived so the
    // armed completion (and whatever cleanup it does) still runs.
    g_mass_truncated.Increment();
    wobs::Log("comm",
              "mass channel truncated: expected " + std::to_string(mass_expected_) +
                  " bytes, got " + std::to_string(mass_buffer_.size()),
              /*always=*/true);
    mass_expected_ = mass_buffer_.size();
    FinishMassTransfer();
  }
}

}  // namespace wafe
