// Entry point for the `wafe` (Athena) and `mofe` (OSF/Motif) binaries. The
// widget set is selected by the invoked name, exactly like the single-source
// dual-binary setup the paper describes.
#include <string>

#include "src/core/wafe.h"

int main(int argc, char** argv) {
  std::string invoked = argv[0];
  std::size_t slash = invoked.rfind('/');
  if (slash != std::string::npos) {
    invoked = invoked.substr(slash + 1);
  }
  wafe::Options options;
  if (invoked.find("mofe") != std::string::npos) {
    options.widget_set = wafe::WidgetSet::kMotif;
    options.app_name = "mofe";
    options.app_class = "Mofe";
  }
  wafe::Wafe app(options);
  return app.Main(argc, argv);
}
