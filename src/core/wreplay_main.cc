// wreplay: journal inspection and load-replay driver.
//
//   wreplay --dump <journal>              print the journal as text records
//   wreplay --stats <journal>             record counts, truncation, span
//   wreplay [--rate N] [--fanout M] <j>   replay the session (M concurrent
//                                         frontends, each fed the journal's
//                                         %-lines N times) and report
//                                         lines/sec plus request-latency p99
//
// Exit status: 0 on success, 1 on journal-level errors (unreadable, bad
// magic), 2 on usage errors. A truncated journal replays its complete
// prefix and still exits 0 — recovering the prefix is the point.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/comm.h"
#include "src/core/replay.h"
#include "src/core/wafe.h"
#include "src/obs/obs.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dump|--stats] [--rate N] [--fanout M] <journal>\n",
               argv0);
  return 2;
}

int DumpJournal(const std::string& path) {
  wafe::JournalReader reader;
  std::string error;
  if (!reader.Open(path, &error)) {
    std::fprintf(stderr, "wreplay: %s\n", error.c_str());
    return 1;
  }
  wafe::DumpJournalText(reader.records(), std::cout);
  return 0;
}

int StatsJournal(const std::string& path) {
  wafe::JournalReader reader;
  std::string error;
  if (!reader.Open(path, &error)) {
    std::fprintf(stderr, "wreplay: %s\n", error.c_str());
    return 1;
  }
  std::uint64_t by_type[16] = {0};
  std::uint64_t first_ns = 0;
  std::uint64_t last_ns = 0;
  for (const wafe::JournalRecord& record : reader.records()) {
    std::uint8_t t = static_cast<std::uint8_t>(record.type);
    if (t < 16) {
      ++by_type[t];
    }
    if (first_ns == 0) {
      first_ns = record.vtime_ns;
    }
    last_ns = record.vtime_ns;
  }
  std::printf("records %zu format %s truncated %d\n", reader.records().size(),
              reader.text_format() ? "text" : "binary", reader.truncated() ? 1 : 0);
  std::printf("lines %" PRIu64 " events %" PRIu64 " timers %" PRIu64
              " spawns %" PRIu64 " backendGone %" PRIu64 " circuitTrips %" PRIu64
              " evalTrips %" PRIu64 " notes %" PRIu64 "\n",
              by_type[1], by_type[2], by_type[3], by_type[4], by_type[5],
              by_type[6], by_type[7], by_type[8]);
  double span_ms = last_ns > first_ns
                       ? static_cast<double>(last_ns - first_ns) / 1e6
                       : 0.0;
  std::printf("span %.3f ms\n", span_ms);
  return 0;
}

// Full-fidelity replay of one session (fanout 1, rate 1): virtual clock,
// timers, supervision — exactly what `wafe --replay` does, with the same
// summary so the two drivers cross-check each other.
int ReplayOnce(const std::string& path) {
  wafe::Options options;
  options.app_name = "wreplay";
  wafe::Wafe wafe(options);
  wafe::ReplayStats stats;
  std::string error;
  if (!wafe::ReplayJournal(wafe, path, &stats, &error)) {
    std::fprintf(stderr, "wreplay: %s\n", error.c_str());
    return 1;
  }
  std::printf("replay: records %" PRIu64 " lines %" PRIu64 " events %" PRIu64
              " timers %" PRIu64 " gone %" PRIu64 " evalTrips %" PRIu64
              " unmatchedTimers %" PRIu64 " truncated %d\n",
              stats.records, stats.lines, stats.events, stats.timers,
              stats.backend_gone, stats.eval_trips, stats.unmatched_timers,
              stats.truncated ? 1 : 0);
  std::printf("replay: framebuffer %016" PRIx64 "\n",
              wafe::FramebufferChecksum(wafe.app().display()));
  // The guard trips the replay re-fired, for triage scripts to pin
  // (non-zero counters only; gated behind WAFE_METRICS like any session).
  for (wobs::Counter* counter : wobs::Registry::Instance().counters()) {
    std::uint64_t value = counter->Get();
    if (value != 0) {
      std::printf("replay: metric %s %" PRIu64 "\n", counter->name(), value);
    }
  }
  return 0;
}

// Load-generator mode: the journal's %-lines become a traffic corpus pushed
// through fresh frontends at multiplied volume. Each of the M frontends
// evaluates the line set N times; lines/sec is aggregate across the fleet.
int ReplayLoad(const std::string& path, int rate, int fanout) {
  wafe::JournalReader reader;
  std::string error;
  if (!reader.Open(path, &error)) {
    std::fprintf(stderr, "wreplay: %s\n", error.c_str());
    return 1;
  }
  std::vector<std::string> lines;
  for (const wafe::JournalRecord& record : reader.records()) {
    if (record.type == wafe::JournalRecordType::kLine) {
      lines.push_back(record.payload);
    }
  }
  if (lines.empty()) {
    std::fprintf(stderr, "wreplay: journal has no line records\n");
    return 1;
  }

  std::vector<std::unique_ptr<wafe::Wafe>> fleet;
  for (int i = 0; i < fanout; ++i) {
    wafe::Options options;
    options.app_name = "wreplay";
    fleet.push_back(std::make_unique<wafe::Wafe>(options));
    fleet.back()->frontend().set_replay_mode(true);
  }

  std::uint64_t start_ns = wobs::NowNs();
  std::uint64_t total = 0;
  for (int round = 0; round < rate; ++round) {
    for (std::unique_ptr<wafe::Wafe>& wafe : fleet) {
      for (const std::string& line : lines) {
        wafe->frontend().ReplayLine(line);
      }
      total += lines.size();
    }
  }
  std::uint64_t elapsed_ns = wobs::NowNs() - start_ns;
  double seconds = static_cast<double>(elapsed_ns) / 1e9;
  double lps = seconds > 0 ? static_cast<double>(total) / seconds : 0.0;

  double p99_us = 0.0;
  for (wobs::Histogram* histogram : wobs::Registry::Instance().histograms()) {
    if (std::strcmp(histogram->name(), "comm.request.latency") == 0) {
      p99_us = static_cast<double>(histogram->ApproxQuantileNs(0.99)) / 1e3;
      break;
    }
  }
  std::printf("load: lines %" PRIu64 " rate %d fanout %d elapsed %.3f s "
              "lines/sec %.0f p99 %.1f us\n",
              total, rate, fanout, seconds, lps, p99_us);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool dump = false;
  bool stats = false;
  int rate = 1;
  int fanout = 1;
  std::string journal;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--dump") {
      dump = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--rate" && i + 1 < argc) {
      rate = std::atoi(argv[++i]);
    } else if (arg == "--fanout" && i + 1 < argc) {
      fanout = std::atoi(argv[++i]);
    } else if (arg == "--help") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      journal = arg;
    }
  }
  if (journal.empty() || rate < 1 || fanout < 1) {
    return Usage(argv[0]);
  }
  if (dump) {
    return DumpJournal(journal);
  }
  if (stats) {
    return StatsJournal(journal);
  }
  if (rate == 1 && fanout == 1) {
    return ReplayOnce(journal);
  }
  return ReplayLoad(journal, rate, fanout);
}
