// Widget-set command registration: creation commands generated per widget
// class (the "~widgetClass" spec form), plus the programmatic interfaces of
// the Athena, Motif, and extension widget sets.
#include <memory>

#include "src/core/percent.h"
#include "src/core/wafe.h"
#include "src/ext/plotter.h"
#include "src/ext/rdd.h"
#include "src/xaw/athena.h"
#include "src/xm/motif.h"

namespace wafe {

namespace {

using wtcl::Result;

// Splits a Tcl list argument into items (for listChange etc.).
Result SplitItems(const std::string& list, std::vector<std::string>* items) {
  if (!wtcl::SplitList(list, items)) {
    return Result::Error("unmatched open brace in list");
  }
  return Result::Ok();
}

}  // namespace

void RegisterWidgetCommands(Wafe& wafe) {
  SpecRegistry& reg = wafe.specs();
  // Intrinsic shells get creation commands in both widget sets.
  reg.RegisterWidgetClass(xtk::ApplicationShellClass());
  reg.RegisterWidgetClass(xtk::TopLevelShellClass());
  reg.RegisterWidgetClass(xtk::TransientShellClass());
  reg.RegisterWidgetClass(xtk::OverrideShellClass());

  if (wafe.options().widget_set == WidgetSet::kAthena) {
    const xaw::AthenaClasses& classes = xaw::GetAthenaClasses(wafe.options().three_d);
    for (const xtk::WidgetClass* cls : classes.All()) {
      // ThreeD/Simple are base classes, not usually instantiated, but Wafe
      // exposes every configured class uniformly.
      reg.RegisterWidgetClass(cls);
    }
  } else {
    const xmw::MotifClasses& classes = xmw::GetMotifClasses();
    for (const xtk::WidgetClass* cls : classes.All()) {
      reg.RegisterWidgetClass(cls);
    }
  }
  if (wafe.options().extensions) {
    const wext::ExtClasses& ext = wext::GetExtClasses();
    reg.RegisterWidgetClass(ext.bar_graph);
    reg.RegisterWidgetClass(ext.line_graph);
    reg.RegisterWidgetClass(ext.graph);
  }
}

void RegisterAthenaCommands(Wafe& wafe) {
  SpecRegistry& reg = wafe.specs();

  reg.Register(CommandSpec{
      "XawFormDoLayout",
      "",
      "void",
      {{ArgType::kWidget, "form"}, {ArgType::kBoolean, "doLayout"}},
      "enable/disable (and run) Form layout",
      [](Invocation& inv) {
        xaw::FormDoLayout(*inv.widget(0), inv.boolean(1));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XawFormAllowResize",
      "",
      "void",
      {{ArgType::kWidget, "child"}, {ArgType::kBoolean, "allow"}},
      "allow or forbid resize requests of a Form child",
      [](Invocation& inv) {
        xaw::FormAllowResize(*inv.widget(0), inv.boolean(1));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XawListChange",
      "",
      "void",
      {{ArgType::kWidget, "list"},
       {ArgType::kString, "items"},
       {ArgType::kBoolean, "resize", true}},
      "replace the item list of a List widget",
      [](Invocation& inv) {
        std::vector<std::string> items;
        Result r = SplitItems(inv.str(1), &items);
        if (r.code != wtcl::Status::kOk) {
          return r;
        }
        xaw::ListChange(*inv.widget(0), items, inv.present(2) ? inv.boolean(2) : true);
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XawListHighlight",
      "",
      "void",
      {{ArgType::kWidget, "list"}, {ArgType::kInt, "index"}},
      "highlight an item of a List widget",
      [](Invocation& inv) {
        xaw::ListHighlight(*inv.widget(0), static_cast<int>(inv.integer(1)));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XawListUnhighlight",
      "",
      "void",
      {{ArgType::kWidget, "list"}},
      "remove the highlight of a List widget",
      [](Invocation& inv) {
        xaw::ListUnhighlight(*inv.widget(0));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XawListShowCurrent",
      "",
      "int",
      {{ArgType::kWidget, "list"}, {ArgType::kVarName, "varName", true}},
      "index of the highlighted item (-1 if none); the item text goes into "
      "varName",
      [](Invocation& inv) {
        std::string item;
        int index = xaw::ListCurrent(*inv.widget(0), &item);
        if (inv.present(1)) {
          inv.wafe->interp().SetVar(inv.str(1), item);
        }
        return Result::Ok(std::to_string(index));
      },
      true});

  reg.Register(CommandSpec{
      "XawTextSetInsertionPoint",
      "",
      "void",
      {{ArgType::kWidget, "text"}, {ArgType::kInt, "position"}},
      "move the insertion point of a text widget",
      [](Invocation& inv) {
        xaw::TextSetInsertionPoint(*inv.widget(0), inv.integer(1));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XawTextGetInsertionPoint",
      "",
      "int",
      {{ArgType::kWidget, "text"}},
      "insertion point of a text widget",
      [](Invocation& inv) {
        return Result::Ok(std::to_string(xaw::TextGetInsertionPoint(*inv.widget(0))));
      },
      true});

  reg.Register(CommandSpec{
      "XawTextInsert",
      "",
      "void",
      {{ArgType::kWidget, "text"}, {ArgType::kString, "string"}},
      "insert text at the insertion point",
      [](Invocation& inv) {
        xaw::TextInsert(*inv.widget(0), inv.str(1));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XawToggleSetCurrent",
      "",
      "void",
      {{ArgType::kWidget, "groupMember"}, {ArgType::kString, "radioData"}},
      "select the radio-group member carrying radioData",
      [](Invocation& inv) {
        xaw::ToggleSetCurrent(*inv.widget(0), inv.str(1));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XawToggleGetCurrent",
      "",
      "String",
      {{ArgType::kWidget, "groupMember"}},
      "radioData of the selected radio-group member",
      [](Invocation& inv) { return Result::Ok(xaw::ToggleGetCurrent(*inv.widget(0))); },
      true});

  reg.Register(CommandSpec{
      "XawToggleChangeRadioGroup",
      "",
      "void",
      {{ArgType::kWidget, "toggle"}, {ArgType::kWidget, "groupMember"}},
      "move a toggle into another radio group",
      [](Invocation& inv) {
        xaw::ToggleChangeRadioGroup(*inv.widget(0), inv.widget(1));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XawScrollbarSetThumb",
      "",
      "void",
      {{ArgType::kWidget, "scrollbar"},
       {ArgType::kDouble, "top"},
       {ArgType::kDouble, "shown"}},
      "set a scrollbar's thumb position and size (fractions)",
      [](Invocation& inv) {
        xaw::ScrollbarSetThumb(*inv.widget(0), inv.real(1), inv.real(2));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "stripChartAddValue",
      "stripChartAddValue",
      "void",
      {{ArgType::kWidget, "chart"}, {ArgType::kDouble, "value"}},
      "append a sample to a StripChart",
      [](Invocation& inv) {
        xaw::StripChartAddValue(*inv.widget(0), inv.real(1));
        return Result::Ok();
      },
      false});
}

void RegisterMotifCommands(Wafe& wafe) {
  SpecRegistry& reg = wafe.specs();

  reg.Register(CommandSpec{
      "XmCascadeButtonHighlight",
      "",
      "void",
      {{ArgType::kWidget, "cascade"}, {ArgType::kBoolean, "highlight"}},
      "toggle the highlight state of a cascade button",
      [](Invocation& inv) {
        xmw::CascadeButtonHighlight(*inv.widget(0), inv.boolean(1));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XmCommandAppendValue",
      "",
      "void",
      {{ArgType::kWidget, "command"}, {ArgType::kString, "value"}},
      "append text to the command line of an XmCommand widget",
      [](Invocation& inv) {
        xmw::CommandAppendValue(*inv.widget(0), inv.str(1));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XmCommandSetValue",
      "",
      "void",
      {{ArgType::kWidget, "command"}, {ArgType::kString, "value"}},
      "replace the command line of an XmCommand widget",
      [](Invocation& inv) {
        xmw::CommandSetValue(*inv.widget(0), inv.str(1));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XmCommandError",
      "",
      "void",
      {{ArgType::kWidget, "command"}, {ArgType::kString, "message"}},
      "show an error message in an XmCommand widget's history",
      [](Invocation& inv) {
        xmw::CommandError(*inv.widget(0), inv.str(1));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XmToggleButtonSetState",
      "",
      "void",
      {{ArgType::kWidget, "toggle"},
       {ArgType::kBoolean, "state"},
       {ArgType::kBoolean, "notify", true}},
      "set a toggle button's state",
      [](Invocation& inv) {
        xmw::ToggleButtonSetState(*inv.widget(0), inv.boolean(1),
                                  inv.present(2) && inv.boolean(2));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XmToggleButtonGetState",
      "",
      "Boolean",
      {{ArgType::kWidget, "toggle"}},
      "state of a toggle button",
      [](Invocation& inv) {
        return Result::Ok(xmw::ToggleButtonGetState(*inv.widget(0)) ? "1" : "0");
      },
      true});

  reg.Register(CommandSpec{
      "XmUpdateDisplay",
      "",
      "void",
      {{ArgType::kWidget, "widget"}},
      "process pending exposure events",
      [](Invocation& inv) {
        inv.wafe->app().ProcessPending();
        return Result::Ok();
      },
      true});
}

void RegisterExtCommands(Wafe& wafe) {
  SpecRegistry& reg = wafe.specs();

  reg.Register(CommandSpec{
      "plotterSetData",
      "plotterSetData",
      "void",
      {{ArgType::kWidget, "plot"}, {ArgType::kString, "values"}},
      "replace the data series of a BarGraph/LineGraph",
      [](Invocation& inv) {
        std::vector<std::string> items;
        Result r = SplitItems(inv.str(1), &items);
        if (r.code != wtcl::Status::kOk) {
          return r;
        }
        std::vector<double> values;
        for (const std::string& item : items) {
          values.push_back(std::strtod(item.c_str(), nullptr));
        }
        wext::PlotterSetData(*inv.widget(0), values);
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "plotterAddSample",
      "plotterAddSample",
      "void",
      {{ArgType::kWidget, "plot"}, {ArgType::kDouble, "value"}},
      "append one sample to a BarGraph/LineGraph",
      [](Invocation& inv) {
        wext::PlotterAddSample(*inv.widget(0), inv.real(1));
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "plotterGetData",
      "plotterGetData",
      "StringList",
      {{ArgType::kWidget, "plot"}},
      "current data series of a plot",
      [](Invocation& inv) {
        std::vector<std::string> items;
        char buffer[32];
        for (double v : wext::PlotterData(*inv.widget(0))) {
          std::snprintf(buffer, sizeof(buffer), "%g", v);
          items.push_back(buffer);
        }
        return Result::Ok(wtcl::MergeList(items));
      },
      false});

  reg.Register(CommandSpec{
      "graphAddNode",
      "graphAddNode",
      "void",
      {{ArgType::kWidget, "graph"}, {ArgType::kString, "node"}},
      "add a node to a Graph widget",
      [](Invocation& inv) {
        wext::GraphAddNode(*inv.widget(0), inv.str(1));
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "graphAddEdge",
      "graphAddEdge",
      "void",
      {{ArgType::kWidget, "graph"}, {ArgType::kString, "from"}, {ArgType::kString, "to"}},
      "add an edge to a Graph widget",
      [](Invocation& inv) {
        wext::GraphAddEdge(*inv.widget(0), inv.str(1), inv.str(2));
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "graphClear",
      "graphClear",
      "void",
      {{ArgType::kWidget, "graph"}},
      "remove all nodes and edges",
      [](Invocation& inv) {
        wext::GraphClear(*inv.widget(0));
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "graphNodes",
      "graphNodes",
      "StringList",
      {{ArgType::kWidget, "graph"}},
      "node names of a Graph widget",
      [](Invocation& inv) {
        return Result::Ok(wtcl::MergeList(wext::GraphNodes(*inv.widget(0))));
      },
      false});

  // --- Rdd drag and drop ---------------------------------------------------------
  // One drag-and-drop context per Wafe instance, created on first use and
  // shared by the three commands.
  auto dnd = std::make_shared<std::unique_ptr<wext::DragAndDrop>>();
  auto get_dnd = [dnd](Wafe* w) -> wext::DragAndDrop& {
    if (!*dnd) {
      *dnd = std::make_unique<wext::DragAndDrop>(&w->app());
    }
    return **dnd;
  };

  reg.Register(CommandSpec{
      "rddSource",
      "rddSource",
      "void",
      {{ArgType::kWidget, "widget"}, {ArgType::kString, "valueCommand"}},
      "register a drag source (Btn2Down starts a drag; valueCommand is "
      "evaluated to produce the dragged value)",
      [get_dnd](Invocation& inv) {
        Wafe* w = inv.wafe;
        std::string script = inv.str(1);
        get_dnd(w).RegisterSource(inv.widget(0), [w, script] {
          wtcl::Result r = w->Eval(script);
          return r.ok() ? r.value : std::string();
        });
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "rddTarget",
      "rddTarget",
      "void",
      {{ArgType::kWidget, "widget"}, {ArgType::kString, "command"}},
      "register a drop target (Btn2Up drops; %v expands to the dragged "
      "value, %f to the source widget, %w to the target)",
      [get_dnd](Invocation& inv) {
        Wafe* w = inv.wafe;
        std::string script = inv.str(1);
        xtk::Widget* target = inv.widget(0);
        get_dnd(w).RegisterTarget(
            target, [w, script, target](xtk::Widget& source, const std::string& value) {
              xtk::CallData data;
              data.fields["v"] = value;
              data.fields["f"] = source.name();
              wtcl::Result r = w->Eval(SubstituteCallbackCodes(script, *target, data));
              if (r.code == wtcl::Status::kError) {
                w->WriteOut("wafe: error in drop handler: " + r.value + "\n");
              }
            });
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "rddCancel",
      "rddCancel",
      "void",
      {},
      "cancel a drag in progress",
      [get_dnd](Invocation& inv) {
        get_dnd(inv.wafe).CancelDrag();
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "graphLayout",
      "graphLayout",
      "StringList",
      {{ArgType::kWidget, "graph"}},
      "run the layered layout; returns {layer slot} per node",
      [](Invocation& inv) {
        std::vector<std::string> cells;
        for (const auto& [layer, slot] : wext::GraphLayout(*inv.widget(0))) {
          cells.push_back(std::to_string(layer) + " " + std::to_string(slot));
        }
        return Result::Ok(wtcl::MergeList(cells));
      },
      false});
}

}  // namespace wafe
