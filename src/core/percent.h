// The printf-like percent-code engine (paper §Actions and §Callback
// converter). Action scripts bound via `exec(...)` may reference event
// fields (%t %w %b %x %y %X %Y %a %k %s); callback scripts may reference
// %w (always) plus the clientData codes the invoking widget class provides
// (e.g. the Athena List widget's %i index and %s active element).
#ifndef SRC_CORE_PERCENT_H_
#define SRC_CORE_PERCENT_H_

#include <string>

#include "src/xsim/event.h"
#include "src/xt/value.h"

namespace xtk {
class Widget;
}

namespace wafe {

// Substitutes event percent codes into an action script. %t expands to the
// event-type name for the six supported types and to "unknown" otherwise;
// key codes (%a %k %s) expand to empty strings on non-key events, button
// (%b) to empty on non-button events. "%%" yields a literal percent.
std::string SubstituteEventCodes(const std::string& script, const xtk::Widget& widget,
                                 const xsim::Event& event);

// Substitutes callback percent codes: %w is the widget name; a code whose
// letter appears in `data.fields` expands to that field; anything else is
// left untouched (so format strings survive in callback scripts).
std::string SubstituteCallbackCodes(const std::string& script, const xtk::Widget& widget,
                                    const xtk::CallData& data);

}  // namespace wafe

#endif  // SRC_CORE_PERCENT_H_
