#include "src/core/spec.h"

#include <sstream>

#include "src/core/naming.h"
#include "src/core/wafe.h"

namespace wafe {

namespace {

const char* ArgTypeDoc(ArgType type) {
  switch (type) {
    case ArgType::kWidget:
      return "Widget";
    case ArgType::kString:
      return "String";
    case ArgType::kInt:
      return "Int";
    case ArgType::kDouble:
      return "Double";
    case ArgType::kBoolean:
      return "Boolean";
    case ArgType::kVarName:
      return "VarName";
    case ArgType::kRest:
      return "...";
  }
  return "?";
}

}  // namespace

std::string SpecRegistry::Register(CommandSpec spec) {
  if (spec.wafe_name.empty()) {
    spec.wafe_name = CommandNameFromC(spec.c_name);
  }
  const std::string name = spec.wafe_name;
  spec.name_quark = xtk::Intern(name);
  if (spec.generated) {
    ++generated_;
  } else {
    ++handwritten_;
  }
  Wafe* wafe = wafe_;
  // The "generated" wrapper: uniform arity checking, conversion, and error
  // reporting, driven entirely by the spec table.
  CommandSpec stored = spec;
  wafe->interp().RegisterCommand(
      name, [wafe, spec = std::move(spec)](wtcl::Interp&, const wtcl::ValueVec& argv) {
        Invocation inv;
        inv.wafe = wafe;
        std::size_t required = 0;
        bool has_rest = false;
        for (const ArgSpec& arg : spec.args) {
          if (arg.type == ArgType::kRest) {
            has_rest = true;
          } else if (!arg.optional) {
            ++required;
          }
        }
        std::size_t fixed = spec.args.size() - (has_rest ? 1 : 0);
        std::size_t given = argv.size() - 1;
        if (given < required || (!has_rest && given > fixed)) {
          std::string usage = spec.wafe_name;
          for (const ArgSpec& arg : spec.args) {
            usage += arg.optional ? " ?" + arg.name + "?" : " " + arg.name;
          }
          return wtcl::Result::Error("wrong # args: should be \"" + usage + "\"");
        }
        inv.args.resize(fixed);
        std::size_t v = 1;
        for (std::size_t i = 0; i < fixed; ++i) {
          const ArgSpec& arg = spec.args[i];
          ParsedArg& parsed = inv.args[i];
          if (v >= argv.size()) {
            break;  // remaining optionals stay absent
          }
          const wtcl::Value& typed = argv[v++];
          const std::string& value = typed.String();
          parsed.present = true;
          parsed.str = value;
          switch (arg.type) {
            case ArgType::kWidget: {
              parsed.widget = wafe->app().FindWidget(value);
              if (parsed.widget == nullptr) {
                return wtcl::Result::Error("no such widget \"" + value + "\"");
              }
              break;
            }
            case ArgType::kInt: {
              // Central parser via the argument's cached classification; the
              // %-protocol and callback argv convert here, at the edge.
              if (!typed.GetInt(&parsed.integer)) {
                return wtcl::Result::Error("expected integer but got \"" + value + "\"");
              }
              break;
            }
            case ArgType::kDouble: {
              if (!wtcl::ParseDouble(value, &parsed.real, nullptr)) {
                return wtcl::Result::Error("expected number but got \"" + value + "\"");
              }
              break;
            }
            case ArgType::kBoolean: {
              if (value == "true" || value == "True" || value == "1" || value == "yes" ||
                  value == "on") {
                parsed.boolean = true;
              } else if (value == "false" || value == "False" || value == "0" ||
                         value == "no" || value == "off") {
                parsed.boolean = false;
              } else {
                return wtcl::Result::Error("expected boolean but got \"" + value + "\"");
              }
              break;
            }
            case ArgType::kString:
            case ArgType::kVarName:
            case ArgType::kRest:
              break;
          }
        }
        if (has_rest) {
          inv.rest.reserve(argv.size() - v);
          for (std::size_t r = v; r < argv.size(); ++r) {
            inv.rest.push_back(argv[r].String());
          }
        }
        return spec.handler(inv);
      });
  specs_[name] = std::move(stored);
  return name;
}

void SpecRegistry::RegisterAlias(const std::string& alias, const std::string& target) {
  auto it = specs_.find(target);
  if (it == specs_.end()) {
    return;
  }
  CommandSpec copy = it->second;
  copy.wafe_name = alias;
  copy.doc = "alias for " + target;
  // Reuse the already-wrapped interpreter command.
  // (Tcl allows registering the same command under various names.)
  aliases_[alias] = target;
  Register(std::move(copy));
  // Aliases should not inflate the generated/handwritten statistics twice;
  // compensate the counter bump from Register.
  if (it->second.generated) {
    --generated_;
  } else {
    --handwritten_;
  }
}

void SpecRegistry::RegisterWidgetClass(const xtk::WidgetClass* cls) {
  CommandSpec spec;
  spec.c_name = cls->name;
  spec.wafe_name = CreationCommandFromClass(cls->name);
  spec.result_doc = "Widget";
  spec.args = {
      ArgSpec{ArgType::kString, "name"},
      ArgSpec{ArgType::kString, "father"},
      ArgSpec{ArgType::kRest, "?unmanaged? ?attr value ...?"},
  };
  spec.doc = "create an instance of the " + cls->name + " widget class";
  spec.handler = [cls](Invocation& inv) {
    std::vector<std::string> argv;
    argv.push_back(inv.str(0));
    argv.push_back(inv.str(1));
    argv.insert(argv.end(), inv.rest.begin(), inv.rest.end());
    return CreateWidgetCommand(*inv.wafe, cls, argv);
  };
  Register(std::move(spec));
  ++creation_;
}

std::string SpecRegistry::ReferenceText() const {
  std::ostringstream out;
  out << "Wafe Short Reference (generated from " << specs_.size() << " command specs)\n";
  out << std::string(72, '=') << "\n";
  for (const auto& [name, spec] : specs_) {
    out << spec.result_doc << " " << name;
    for (const ArgSpec& arg : spec.args) {
      out << " ";
      if (arg.optional) {
        out << "?";
      }
      if (arg.type == ArgType::kRest) {
        out << arg.name;
      } else {
        out << arg.name << ":" << ArgTypeDoc(arg.type);
      }
      if (arg.optional) {
        out << "?";
      }
    }
    out << "\n";
    if (!spec.doc.empty()) {
      out << "    " << spec.doc << "\n";
    }
    if (!spec.c_name.empty() && spec.c_name != name) {
      out << "    [" << spec.c_name << "]\n";
    }
  }
  return out.str();
}

}  // namespace wafe
