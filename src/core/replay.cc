#include "src/core/replay.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "src/core/comm.h"
#include "src/core/wafe.h"
#include "src/obs/obs.h"
#include "src/tcl/interp.h"
#include "src/xsim/display.h"
#include "src/xt/app.h"
#include "src/xt/widget.h"

namespace wafe {

namespace {

// Ungated: a torn journal tail is evidence of a crash worth counting even in
// an otherwise uninstrumented session.
wobs::Counter g_journal_truncated("replay.journal.truncated");
wobs::Counter g_journal_records("replay.journal.records");
wobs::Counter g_replay_records("replay.applied.records");

constexpr char kBinaryMagic[8] = {'W', 'A', 'F', 'E', 'J', '1', '\n', '\0'};
constexpr char kTextMagic[] = "# wafe-journal-text 1";

// Payload-length sanity cap: a corrupt length field must not turn into a
// multi-gigabyte allocation. Generous above the 64KB protocol line limit.
constexpr std::uint32_t kMaxPayload = 16u * 1024 * 1024;

void PutU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

std::uint32_t GetU32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

std::uint64_t GetU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

const char* TypeKeyword(JournalRecordType type) {
  switch (type) {
    case JournalRecordType::kLine: return "line";
    case JournalRecordType::kEvent: return "event";
    case JournalRecordType::kTimer: return "timer";
    case JournalRecordType::kSpawn: return "spawn";
    case JournalRecordType::kBackendGone: return "backendgone";
    case JournalRecordType::kCircuitTrip: return "circuit";
    case JournalRecordType::kEvalTrip: return "evaltrip";
    case JournalRecordType::kNote: return "note";
  }
  return "note";
}

bool KeywordType(const std::string& word, JournalRecordType* type) {
  if (word == "line") *type = JournalRecordType::kLine;
  else if (word == "event") *type = JournalRecordType::kEvent;
  else if (word == "timer") *type = JournalRecordType::kTimer;
  else if (word == "spawn") *type = JournalRecordType::kSpawn;
  else if (word == "backendgone") *type = JournalRecordType::kBackendGone;
  else if (word == "circuit") *type = JournalRecordType::kCircuitTrip;
  else if (word == "evaltrip") *type = JournalRecordType::kEvalTrip;
  else if (word == "note") *type = JournalRecordType::kNote;
  else return false;
  return true;
}

std::vector<std::string> SplitWords(const std::string& text) {
  std::vector<std::string> words;
  std::istringstream in(text);
  std::string word;
  while (in >> word) {
    words.push_back(word);
  }
  return words;
}

}  // namespace

std::uint32_t JournalCrc32(const char* data, std::size_t size) {
  static std::uint32_t table[256];
  static bool ready = false;
  if (!ready) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    ready = true;
  }
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

// --- JournalWriter ------------------------------------------------------------

JournalWriter::~JournalWriter() { Close(); }

bool JournalWriter::Open(const std::string& path, FsyncPolicy policy, int interval,
                         std::string* error) {
  Close();
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "can't open journal \"" + path + "\": " + std::strerror(errno);
    }
    return false;
  }
  ssize_t n = ::write(fd, kBinaryMagic, sizeof(kBinaryMagic));
  if (n != static_cast<ssize_t>(sizeof(kBinaryMagic))) {
    if (error != nullptr) {
      *error = "can't write journal header to \"" + path + "\"";
    }
    ::close(fd);
    return false;
  }
  fd_ = fd;
  path_ = path;
  policy_ = policy;
  interval_ = interval > 0 ? interval : 1;
  unsynced_ = 0;
  seq_ = 0;
  return true;
}

void JournalWriter::Close() {
  if (fd_ >= 0) {
    if (policy_ != FsyncPolicy::kNone) {
      ::fsync(fd_);
    }
    ::close(fd_);
    fd_ = -1;
  }
}

bool JournalWriter::Append(JournalRecordType type, std::string_view payload) {
  if (fd_ < 0) {
    return false;
  }
  std::string body;
  body.reserve(1 + 16 + payload.size());
  body.push_back(static_cast<char>(type));
  PutU64(&body, seq_ + 1);
  PutU64(&body, wobs::NowNs());
  body.append(payload);
  std::string record;
  record.reserve(4 + body.size() + 4);
  PutU32(&record, static_cast<std::uint32_t>(payload.size()));
  record.append(body);
  PutU32(&record, JournalCrc32(body.data(), body.size()));
  std::size_t written = 0;
  while (written < record.size()) {
    ssize_t n = ::write(fd_, record.data() + written, record.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      wobs::Log("replay", "journal write failed (" + std::string(std::strerror(errno)) +
                              "), recording stopped", true);
      Close();
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  ++seq_;
  g_journal_records.Increment();
  if (policy_ == FsyncPolicy::kAlways ||
      (policy_ == FsyncPolicy::kInterval && ++unsynced_ >= interval_)) {
    ::fsync(fd_);
    unsynced_ = 0;
  }
  return true;
}

// --- JournalReader ------------------------------------------------------------

bool JournalReader::Open(const std::string& path, std::string* error) {
  records_.clear();
  truncated_ = false;
  text_format_ = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "can't read journal \"" + path + "\"";
    }
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string data = buf.str();
  if (data.compare(0, sizeof(kBinaryMagic), kBinaryMagic, sizeof(kBinaryMagic)) == 0) {
    return ParseBinary(data, error);
  }
  if (data.compare(0, sizeof(kTextMagic) - 1, kTextMagic) == 0) {
    text_format_ = true;
    return ParseText(data, error);
  }
  if (error != nullptr) {
    *error = "\"" + path + "\" is not a wafe journal (bad magic)";
  }
  return false;
}

bool JournalReader::ParseBinary(const std::string& data, std::string*) {
  std::size_t pos = sizeof(kBinaryMagic);
  while (pos < data.size()) {
    // Header fits? A shortfall anywhere below is the torn tail of a crashed
    // writer: keep everything complete, flag the truncation, stop.
    if (data.size() - pos < 4) {
      truncated_ = true;
      break;
    }
    std::uint32_t payload_len = GetU32(data.data() + pos);
    if (payload_len > kMaxPayload) {
      truncated_ = true;
      break;
    }
    std::size_t body_len = 1 + 16 + payload_len;
    if (data.size() - pos < 4 + body_len + 4) {
      truncated_ = true;
      break;
    }
    const char* body = data.data() + pos + 4;
    std::uint32_t crc = GetU32(body + body_len);
    if (crc != JournalCrc32(body, body_len)) {
      truncated_ = true;
      break;
    }
    JournalRecord record;
    record.type = static_cast<JournalRecordType>(static_cast<unsigned char>(body[0]));
    record.seq = GetU64(body + 1);
    record.vtime_ns = GetU64(body + 9);
    record.payload.assign(body + 17, payload_len);
    records_.push_back(std::move(record));
    pos += 4 + body_len + 4;
  }
  if (truncated_) {
    g_journal_truncated.IncrementAlways();
    wobs::Log("replay",
              "journal tail torn after record " + std::to_string(records_.size()) +
                  "; recovered to the last complete record", true);
  }
  return true;
}

bool JournalReader::ParseText(const std::string& data, std::string* error) {
  std::istringstream in(data);
  std::string line;
  std::uint64_t vtime = 0;
  std::uint64_t seq = 0;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::size_t space = line.find(' ');
    std::string keyword = line.substr(0, space);
    std::string payload = space == std::string::npos ? "" : line.substr(space + 1);
    if (keyword == "vtime") {
      vtime = std::strtoull(payload.c_str(), nullptr, 10);
      continue;
    }
    JournalRecord record;
    if (!KeywordType(keyword, &record.type)) {
      if (error != nullptr) {
        *error = "journal line " + std::to_string(line_no) + ": unknown keyword \"" +
                 keyword + "\"";
      }
      return false;
    }
    record.seq = ++seq;
    record.vtime_ns = vtime;
    record.payload = std::move(payload);
    records_.push_back(std::move(record));
  }
  return true;
}

void DumpJournalText(const std::vector<JournalRecord>& records, std::ostream& out) {
  out << kTextMagic << "\n";
  std::uint64_t vtime = 0;
  for (const JournalRecord& record : records) {
    if (record.vtime_ns != vtime) {
      vtime = record.vtime_ns;
      out << "vtime " << vtime << "\n";
    }
    out << TypeKeyword(record.type);
    if (!record.payload.empty()) {
      out << " " << record.payload;
    }
    out << "\n";
  }
}

// --- Recorder -----------------------------------------------------------------

namespace {

// Flight-record context: the active journal and the recent protocol traffic,
// as JSON members for the otherData block.
std::string RecorderFlightContext(void* user) {
  auto* recorder = static_cast<Recorder*>(user);
  if (!recorder->active()) {
    return "";
  }
  std::string out = "\"replay\":{\"journal\":\"";
  wobs::internal::AppendJsonEscaped(recorder->path(), &out);
  out += "\",\"records\":" + std::to_string(recorder->records_written());
  out += ",\"lastLines\":[";
  bool first = true;
  for (const std::string& line : recorder->last_lines()) {
    out += first ? "\"" : ",\"";
    first = false;
    wobs::internal::AppendJsonEscaped(line, &out);
    out += "\"";
  }
  out += "]}";
  return out;
}

}  // namespace

Recorder::~Recorder() { Stop(); }

bool Recorder::Start(const std::string& spec, std::string* error) {
  std::string path = spec;
  FsyncPolicy policy = FsyncPolicy::kNone;
  int interval = 256;
  if (std::size_t comma = spec.rfind(",fsync="); comma != std::string::npos) {
    path = spec.substr(0, comma);
    std::string value = spec.substr(comma + 7);
    if (value == "always") {
      policy = FsyncPolicy::kAlways;
    } else if (value == "none") {
      policy = FsyncPolicy::kNone;
    } else {
      char* end = nullptr;
      long n = std::strtol(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n <= 0) {
        if (error != nullptr) {
          *error = "bad fsync policy \"" + value + "\" (always, none, or a count)";
        }
        return false;
      }
      policy = FsyncPolicy::kInterval;
      interval = static_cast<int>(n);
    }
  }
  if (path.empty()) {
    if (error != nullptr) {
      *error = "empty journal path";
    }
    return false;
  }
  Stop();
  if (!writer_.Open(path, policy, interval, error)) {
    return false;
  }
  base_path_ = path;
  policy_ = policy;
  interval_ = interval;
  rotations_ = 0;
  last_lines_.clear();
  InstallHooks();
  wobs::Log("replay", "recording to " + path);
  return true;
}

void Recorder::Stop() {
  if (!writer_.is_open()) {
    return;
  }
  RemoveHooks();
  wobs::Log("replay", "recording stopped after " +
                          std::to_string(writer_.records_written()) + " records");
  writer_.Close();
}

bool Recorder::Rotate(std::string* error) {
  if (!writer_.is_open()) {
    if (error != nullptr) {
      *error = "not recording";
    }
    return false;
  }
  std::string next = base_path_ + "." + std::to_string(++rotations_);
  writer_.Close();
  if (!writer_.Open(next, policy_, interval_, error)) {
    RemoveHooks();
    return false;
  }
  wobs::Log("replay", "journal rotated to " + next);
  return true;
}

std::string Recorder::StatusText() const {
  if (!writer_.is_open()) {
    return "recording 0";
  }
  const char* policy = policy_ == FsyncPolicy::kAlways
                           ? "always"
                           : policy_ == FsyncPolicy::kInterval ? "interval" : "none";
  return "recording 1 path " + writer_.path() + " records " +
         std::to_string(writer_.records_written()) + " fsync " + policy;
}

void Recorder::InstallHooks() {
  wafe_->app().display().set_inject_observer(
      [this](const std::string& encoded) { RecordEvent(encoded); });
  wafe_->app().set_timer_fire_observer([this](int id) { RecordTimer(id); });
  wafe_->interp().set_limit_observer(
      [this](const char* kind, std::uint64_t steps) { RecordEvalTrip(kind, steps); });
  wobs::SetFlightContextProvider(&RecorderFlightContext, this);
}

void Recorder::RemoveHooks() {
  wafe_->app().display().set_inject_observer(nullptr);
  wafe_->app().set_timer_fire_observer(nullptr);
  wafe_->interp().set_limit_observer(nullptr);
  wobs::SetFlightContextProvider(nullptr, nullptr);
}

void Recorder::Append(JournalRecordType type, std::string_view payload) {
  std::uint64_t seq = writer_.records_written() + 1;
  wobs::SetJournalPosition(seq);
  writer_.Append(type, payload);
}

void Recorder::RecordLine(const std::string& line) {
  Append(JournalRecordType::kLine, line);
  last_lines_.push_back(line);
  if (last_lines_.size() > 64) {
    last_lines_.pop_front();
  }
}

void Recorder::RecordEvent(const std::string& encoded) {
  Append(JournalRecordType::kEvent, encoded);
}

void Recorder::RecordTimer(int id) {
  Append(JournalRecordType::kTimer, std::to_string(id));
}

void Recorder::RecordSpawn(const std::string& description) {
  Append(JournalRecordType::kSpawn, description);
}

void Recorder::RecordBackendGone(const std::string& payload) {
  Append(JournalRecordType::kBackendGone, payload);
}

void Recorder::RecordCircuitTrip(int consecutive) {
  Append(JournalRecordType::kCircuitTrip, std::to_string(consecutive));
}

void Recorder::RecordEvalTrip(const char* kind, std::uint64_t steps) {
  Append(JournalRecordType::kEvalTrip, std::string(kind) + " " + std::to_string(steps));
}

void Recorder::RecordNote(const std::string& text) {
  Append(JournalRecordType::kNote, text);
}

// --- Replay -------------------------------------------------------------------

namespace {

// Applies one recorded display-injection primitive.
void ApplyEvent(xsim::Display& display, const std::string& encoded,
                ReplayStats* stats) {
  std::vector<std::string> w = SplitWords(encoded);
  auto num = [&w](std::size_t i) {
    return i < w.size() ? std::strtol(w[i].c_str(), nullptr, 10) : 0;
  };
  if (w.empty()) {
    return;
  }
  if (w[0] == "buttonpress" && w.size() >= 5) {
    display.InjectButtonPress(static_cast<xsim::Position>(num(1)),
                              static_cast<xsim::Position>(num(2)),
                              static_cast<unsigned>(num(3)),
                              static_cast<unsigned>(num(4)));
  } else if (w[0] == "buttonrelease" && w.size() >= 5) {
    display.InjectButtonRelease(static_cast<xsim::Position>(num(1)),
                                static_cast<xsim::Position>(num(2)),
                                static_cast<unsigned>(num(3)),
                                static_cast<unsigned>(num(4)));
  } else if (w[0] == "motion" && w.size() >= 4) {
    display.InjectMotion(static_cast<xsim::Position>(num(1)),
                         static_cast<xsim::Position>(num(2)),
                         static_cast<unsigned>(num(3)));
  } else if (w[0] == "keypress" && w.size() >= 3) {
    display.InjectKeyPress(static_cast<xsim::KeySym>(num(1)),
                           static_cast<unsigned>(num(2)));
  } else if (w[0] == "keyrelease" && w.size() >= 3) {
    display.InjectKeyRelease(static_cast<xsim::KeySym>(num(1)),
                             static_cast<unsigned>(num(2)));
  }
  (void)stats;
}

}  // namespace

bool ReplayJournal(Wafe& wafe, const std::string& path, ReplayStats* stats,
                   std::string* error) {
  JournalReader reader;
  if (!reader.Open(path, error)) {
    return false;
  }
  ReplayStats local;
  ReplayStats* out = stats != nullptr ? stats : &local;
  out->truncated = reader.truncated();
  const std::vector<JournalRecord>& records = reader.records();

  Frontend& frontend = wafe.frontend();
  frontend.set_replay_mode(true);
  wafe.set_backend_output(true);
  wtcl::Interp& interp = wafe.interp();

  for (std::size_t i = 0; i < records.size(); ++i) {
    const JournalRecord& record = records[i];
    // The virtual clock must read non-zero to stay engaged even for text
    // journals that never advance it.
    wobs::SetVirtualNowNs(record.vtime_ns != 0 ? record.vtime_ns : 1);
    wobs::SetJournalPosition(record.seq);
    ++out->records;
    g_replay_records.Increment();

    // A kEvalTrip immediately following this record was journaled *during*
    // its evaluation: re-force the ms watchdog at the recorded step so the
    // replayed script runs exactly as many commands as the recorded one.
    bool armed = false;
    if (i + 1 < records.size() &&
        records[i + 1].type == JournalRecordType::kEvalTrip) {
      std::vector<std::string> w = SplitWords(records[i + 1].payload);
      if (w.size() == 2 && w[0] == "ms") {
        interp.ArmScriptedMsTrip(std::strtoull(w[1].c_str(), nullptr, 10));
        armed = true;
      }
    }

    switch (record.type) {
      case JournalRecordType::kLine:
        ++out->lines;
        frontend.ReplayLine(record.payload);
        break;
      case JournalRecordType::kEvent:
        ++out->events;
        ApplyEvent(wafe.app().display(), record.payload, out);
        break;
      case JournalRecordType::kTimer: {
        ++out->timers;
        int id = static_cast<int>(std::strtol(record.payload.c_str(), nullptr, 10));
        if (!wafe.app().FireTimerForReplay(id)) {
          ++out->unmatched_timers;
        }
        break;
      }
      case JournalRecordType::kSpawn: {
        std::vector<std::string> w = SplitWords(record.payload);
        if (!w.empty()) {
          std::vector<std::string> args(w.begin() + 1, w.end());
          std::string ignored;
          frontend.SpawnBackend(w[0], args, &ignored);
        }
        break;
      }
      case JournalRecordType::kBackendGone: {
        ++out->backend_gone;
        std::vector<std::string> w = SplitWords(record.payload);
        std::string reason = w.empty() ? "unknown" : w[0];
        if (reason == "error-limit") {
          // Regenerated deterministically: the circuit breaker re-trips
          // while the preceding kLine records replay.
          break;
        }
        bool has_status = w.size() >= 2 && w[1] != "unknown";
        int status = has_status
                         ? static_cast<int>(std::strtol(w[1].c_str(), nullptr, 10))
                         : 0;
        frontend.ReplayBackendGone(reason.c_str(), has_status, status);
        break;
      }
      case JournalRecordType::kEvalTrip:
        ++out->eval_trips;
        break;
      case JournalRecordType::kCircuitTrip:
      case JournalRecordType::kNote:
        break;
    }
    if (armed) {
      interp.ArmScriptedMsTrip(0);
    }
    wafe.app().ProcessPending();
  }

  interp.ArmScriptedMsTrip(0);
  frontend.set_replay_mode(false);
  wobs::SetJournalPosition(0);
  wobs::SetVirtualNowNs(0);
  return true;
}

// --- Golden verification ------------------------------------------------------

std::uint64_t FramebufferChecksum(const xsim::Display& display) {
  std::uint64_t hash = 1469598103934665603ull;
  for (xsim::Pixel pixel : display.framebuffer()) {
    hash = (hash ^ pixel) * 1099511628211ull;
  }
  return hash;
}

namespace {

void DumpWidget(xsim::Display& display, xtk::Widget* w, int depth,
                std::ostringstream& out) {
  for (int i = 0; i < depth; ++i) {
    out << "  ";
  }
  out << w->name() << " " << w->width() << "x" << w->height() << "+" << w->x() << "+"
      << w->y();
  if (w->realized() && display.IsViewable(w->window())) {
    out << " viewable";
  }
  out << "\n";
  for (xtk::Widget* child : w->children()) {
    DumpWidget(display, child, depth + 1, out);
  }
}

}  // namespace

std::string WindowTreeText(Wafe& wafe, const std::string& root_name) {
  std::ostringstream out;
  if (xtk::Widget* root = wafe.app().FindWidget(root_name)) {
    DumpWidget(wafe.app().display(), root, 0, out);
  }
  return out.str();
}

}  // namespace wafe
