// The command-specification layer: Wafe's equivalent of the paper's Perl
// code generator. Every Xt / widget-set command is declared as a CommandSpec
// — the same information content as the paper's specification snippets
// (result type, in/out argument types, the C name the Wafe name derives
// from) — and the registry "generates" the glue uniformly: argument count
// checking, widget lookup, numeric conversion, consistent error messages,
// registration under the derived name, and the short-reference document
// (`wafe --reference`). The registry also keeps the generated-vs-handwritten
// accounting the paper reports (about 60% of Wafe is generated).
#ifndef SRC_CORE_SPEC_H_
#define SRC_CORE_SPEC_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/tcl/interp.h"
#include "src/xt/quark.h"
#include "src/xt/widget.h"

namespace wafe {

class Wafe;

// Argument types a spec can declare (mirrors the paper's "in: Widget",
// "in: Boolean" notation).
enum class ArgType {
  kWidget,   // resolved through the widget name registry
  kString,   // passed through
  kInt,
  kDouble,
  kBoolean,
  kVarName,  // name of a Tcl variable the command fills (out parameter)
  kRest,     // remaining arguments (attribute-value pairs etc.); must be last
};

struct ArgSpec {
  ArgType type = ArgType::kString;
  std::string name;  // for the reference document
  bool optional = false;

  ArgSpec() = default;
  ArgSpec(ArgType t, std::string n, bool opt = false)
      : type(t), name(std::move(n)), optional(opt) {}
};

// One parsed argument, typed per its spec.
struct ParsedArg {
  bool present = false;
  xtk::Widget* widget = nullptr;
  std::string str;
  long integer = 0;
  double real = 0.0;
  bool boolean = false;
};

// What a handler receives: the owning Wafe, the parsed fixed args (aligned
// with the spec's arg list), and the rest-args if declared.
struct Invocation {
  Wafe* wafe = nullptr;
  std::vector<ParsedArg> args;
  std::vector<std::string> rest;

  xtk::Widget* widget(std::size_t i) const { return args[i].widget; }
  const std::string& str(std::size_t i) const { return args[i].str; }
  long integer(std::size_t i) const { return args[i].integer; }
  double real(std::size_t i) const { return args[i].real; }
  bool boolean(std::size_t i) const { return args[i].boolean; }
  bool present(std::size_t i) const { return args[i].present; }
};

using Handler = std::function<wtcl::Result(Invocation&)>;

struct CommandSpec {
  std::string c_name;      // e.g. "XtDestroyWidget" or a widget class name
  std::string wafe_name;   // derived from c_name when empty
  std::string result_doc = "void";
  std::vector<ArgSpec> args;
  std::string doc;  // one-line description for the reference
  Handler handler;
  bool generated = true;  // false for handwritten commands (echo, quit, ...)
  // Interned registered name, filled by SpecRegistry::Register: a stable
  // integer identity so spec comparisons avoid string compares.
  xtk::Quark name_quark = xtk::kNullQuark;
};

class SpecRegistry {
 public:
  explicit SpecRegistry(Wafe* wafe) : wafe_(wafe) {}

  // Registers a command spec: derives the Wafe name, wraps the handler with
  // the generated argument checking/conversion, and binds it into the
  // interpreter. Returns the bound name.
  std::string Register(CommandSpec spec);

  // Registers `alias` for an existing command (Tcl allows a command under
  // several names — Wafe uses this for sV / gV).
  void RegisterAlias(const std::string& alias, const std::string& target);

  // Registers the creation command for a widget class (the "~widgetClass"
  // spec form in the paper).
  void RegisterWidgetClass(const xtk::WidgetClass* cls);

  // The generated short-reference document (the code generator also emitted
  // TeX documentation; we emit plain text with the same content).
  std::string ReferenceText() const;

  std::size_t generated_count() const { return generated_; }
  std::size_t handwritten_count() const { return handwritten_; }
  std::size_t creation_command_count() const { return creation_; }
  std::size_t total_count() const { return specs_.size(); }

  const std::map<std::string, CommandSpec>& specs() const { return specs_; }

 private:
  Wafe* wafe_;
  std::map<std::string, CommandSpec> specs_;  // by wafe name
  std::map<std::string, std::string> aliases_;
  std::size_t generated_ = 0;
  std::size_t handwritten_ = 0;
  std::size_t creation_ = 0;
};

// Shared creation-command handler (used by RegisterWidgetClass).
wtcl::Result CreateWidgetCommand(Wafe& wafe, const xtk::WidgetClass* cls,
                                 const std::vector<std::string>& argv);

}  // namespace wafe

#endif  // SRC_CORE_SPEC_H_
