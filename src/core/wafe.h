// The Wafe application object: Tcl interpreter + Intrinsics app context +
// a widget set + the command registry + the frontend communication layer,
// assembled per the paper's formula
//
//   Wafe = Tcl + (Intrinsics + Widgets + Converters + Ext)
//              + (Memory Management + Communication)
//
// and offering the three modes of operation: interactive, file, frontend.
#ifndef SRC_CORE_WAFE_H_
#define SRC_CORE_WAFE_H_

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "src/core/spec.h"
#include "src/tcl/interp.h"
#include "src/xt/app.h"

namespace wafe {

class Frontend;
class Recorder;

// Which widget set the binary is configured with ("wafe" is the Athena
// binary, "mofe" the OSF/Motif one; the sets cannot be mixed, as the paper
// notes).
enum class WidgetSet { kAthena, kMotif };

struct Options {
  WidgetSet widget_set = WidgetSet::kAthena;
  bool three_d = true;  // Xaw3d relink
  bool extensions = true;  // Plotter / Graph extension widgets
  char prefix = '%';
  std::size_t max_line_length = 64 * 1024;  // paper: default 64KB
  std::string app_name = "wafe";
  std::string app_class = "Wafe";
};

class Wafe {
 public:
  explicit Wafe(Options options = {});
  ~Wafe();

  Wafe(const Wafe&) = delete;
  Wafe& operator=(const Wafe&) = delete;

  const Options& options() const { return options_; }
  wtcl::Interp& interp() { return interp_; }
  xtk::AppContext& app() { return app_; }
  SpecRegistry& specs() { return specs_; }
  Frontend& frontend() { return *frontend_; }

  // The automatically created top level shell every Wafe program has.
  xtk::Widget* top_level() { return top_level_; }

  // Evaluates a script / a protocol line (prefix already stripped).
  wtcl::Result Eval(std::string_view script);

  // Output routing: interactive/file-mode script output goes to stdout;
  // frontend-mode output (echo in callbacks) goes to the backend's stdin.
  void WriteOut(const std::string& text);
  void set_backend_output(bool to_backend) { output_to_backend_ = to_backend; }
  bool backend_output() const { return output_to_backend_; }

  // Unprefixed backend lines pass through here (default: stdout).
  using PassthroughFn = std::function<void(const std::string& line)>;
  void set_passthrough(PassthroughFn fn) { passthrough_ = std::move(fn); }
  void WritePassthrough(const std::string& line);

  // Termination (the `quit` command).
  void Quit(int code = 0);
  bool quit_requested() const { return quit_; }
  int exit_code() const { return exit_code_; }

  // --- Modes -------------------------------------------------------------------

  // File mode: executes the script (supports the #! magic line), then runs
  // the main loop until quit or until no event sources remain.
  int RunFile(const std::string& path);
  // Interactive mode: a REPL over the given streams.
  int RunInteractive(std::istream& in, std::ostream& out);
  // Frontend mode: spawns `program` as the backend and pumps the protocol.
  int RunFrontend(const std::string& program, const std::vector<std::string>& args);
  // Full command-line entry: splits args per the paper's rules ("--" args to
  // the frontend, X args to the toolkit, the rest to the application) and
  // dispatches to a mode. argv[0] of the form "x<name>" selects frontend
  // mode with backend <name>.
  int Main(int argc, const char* const* argv);

  // Number of protocol lines evaluated (test/bench introspection).
  std::size_t lines_evaluated() const { return lines_evaluated_; }
  void count_line() { ++lines_evaluated_; }

  // Tcl hooks on the Xt error-handler stack (the `errorProc` /
  // `warningProc` commands): the script runs with errorName/errorMessage
  // (resp. warningName/warningMessage) set; empty restores the default
  // warn-and-continue handlers.
  void set_error_proc(std::string script) { error_proc_ = std::move(script); }
  const std::string& error_proc() const { return error_proc_; }
  void set_warning_proc(std::string script) { warning_proc_ = std::move(script); }
  const std::string& warning_proc() const { return warning_proc_; }

  // --- Session record/replay (replay.h) ---------------------------------------
  //
  // WAFE_RECORD=<path>[,fsync=always|none|<N>] starts a journal at
  // construction; the `record` command manages one at runtime. `recording()`
  // is the one-branch check comm's hot path uses; the Record* forwarders
  // keep comm.cc free of a replay.h dependency.
  bool StartRecording(const std::string& spec, std::string* error);
  void StopRecording();
  bool RotateRecording(std::string* error);
  bool recording() const { return recording_; }
  Recorder& recorder() { return *recorder_; }

  void RecordInboundLine(const std::string& line);
  void RecordSpawn(const std::string& description);
  void RecordBackendGone(const std::string& payload);
  void RecordCircuitTrip(int consecutive);

 private:
  void RegisterEverything();
  // Base handlers bridging the toolkit error stack to the Tcl hooks.
  void InstallErrorHandlers();
  // WAFE_METRICS_DUMP=<path>[,<interval-ms>]: a repeating timer writes a
  // Prometheus snapshot to <path> (atomically, via rename) so an external
  // scraper or the bench harness can watch a live session.
  void ScheduleMetricsDump();
  void WriteMetricsSnapshot();

  Options options_;
  wtcl::Interp interp_;
  xtk::AppContext app_;
  SpecRegistry specs_;
  std::unique_ptr<Frontend> frontend_;
  std::unique_ptr<Recorder> recorder_;
  bool recording_ = false;
  xtk::Widget* top_level_ = nullptr;
  PassthroughFn passthrough_;
  bool output_to_backend_ = false;
  bool quit_ = false;
  int exit_code_ = 0;
  std::size_t lines_evaluated_ = 0;
  std::string error_proc_;
  std::string warning_proc_;
  std::string metrics_dump_path_;
  long metrics_dump_interval_ms_ = 0;
};

// Registration units (called by the constructor; exposed for tests).
void RegisterXtCommands(Wafe& wafe);
void RegisterWidgetCommands(Wafe& wafe);      // creation commands per class
void RegisterAthenaCommands(Wafe& wafe);      // Xaw programmatic interface
void RegisterMotifCommands(Wafe& wafe);       // Xm programmatic interface
void RegisterExtCommands(Wafe& wafe);         // Plotter / Graph
void RegisterCommCommands(Wafe& wafe);        // getChannel etc.
void RegisterObsCommands(Wafe& wafe);         // metrics / traceDump etc.
void RegisterWafeConverters(Wafe& wafe);      // callback / pixmap converters

// Command-line splitting per the paper: arguments starting with "--" go to
// the frontend, X Toolkit arguments (-display, -xrm, -geometry, ...) to the
// toolkit, everything else to the application program.
struct SplitArgs {
  std::vector<std::string> frontend;
  std::vector<std::string> toolkit;
  std::vector<std::string> application;
};
SplitArgs SplitCommandLine(int argc, const char* const* argv);

// Toolkit fault-spec parsing, shared by the `xtFault` command and the
// WAFE_XT_FAULT env var: "kind=value,..." with kinds convertFail (next N
// conversions fail), allocFailAt (the Nth allocation from now fails), and
// xerror=BadWindow|BadDrawable (deliver a synthetic X error now); "clear"
// resets everything.
bool ApplyXtFaultSpec(Wafe& wafe, const std::string& spec, std::string* error);
std::string XtFaultStatusText(Wafe& wafe);

// Eval-limit spec parsing, shared by the `evalLimit` command and the
// WAFE_EVAL_LIMIT env var: "depth=N,steps=N,ms=N" (each part optional).
bool ApplyEvalLimitSpec(wtcl::Interp& interp, const std::string& spec, std::string* error);

}  // namespace wafe

#endif  // SRC_CORE_WAFE_H_
