#include "src/core/wafe.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/core/comm.h"
#include "src/core/percent.h"
#include "src/core/replay.h"
#include "src/obs/obs.h"
#include "src/xaw/athena.h"
#include "src/xm/motif.h"
#include "src/ext/plotter.h"

namespace wafe {

Wafe::Wafe(Options options)
    : options_(std::move(options)),
      app_(options_.app_name, options_.app_class),
      specs_(this),
      frontend_(std::make_unique<Frontend>(this)) {
  if (options_.widget_set == WidgetSet::kAthena) {
    xaw::RegisterAthenaClasses(app_, options_.three_d);
  } else {
    xmw::RegisterMotifClasses(app_);
  }
  if (options_.extensions) {
    wext::RegisterExtClasses(app_);
  }
  RegisterEverything();
  // Script output (echo / puts) follows the mode's routing.
  interp_.set_output([this](const std::string& text) { WriteOut(text); });
  // The top level shell every Wafe program has.
  std::string error;
  top_level_ = app_.CreateShell("topLevel", "ApplicationShell", &app_.display(), {}, &error);
  // The global `exec` action: binds arbitrary Wafe commands to events, with
  // percent-code access to the triggering event.
  app_.RegisterAction("exec", [this](xtk::Widget& widget, const xsim::Event& event,
                                     const std::vector<std::string>& params) {
    std::string script;
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i != 0) {
        script += ", ";  // commas were translation-parameter separators
      }
      script += params[i];
    }
    wtcl::Result r = Eval(SubstituteEventCodes(script, widget, event));
    if (r.code == wtcl::Status::kError) {
      app_.errors().RaiseError("execAction", r.value);
    }
  });
  InstallErrorHandlers();
  if (const char* spec = std::getenv("WAFE_EVAL_LIMIT")) {
    std::string limit_error;
    if (!ApplyEvalLimitSpec(interp_, spec, &limit_error)) {
      app_.errors().RaiseWarning("evalLimit", "bad WAFE_EVAL_LIMIT: " + limit_error);
    }
  }
  if (const char* spec = std::getenv("WAFE_XT_FAULT")) {
    std::string fault_error;
    if (!ApplyXtFaultSpec(*this, spec, &fault_error)) {
      app_.errors().RaiseWarning("xtFault", "bad WAFE_XT_FAULT: " + fault_error);
    }
  }
  if (const char* spec = std::getenv("WAFE_METRICS_DUMP")) {
    std::string dump(spec);
    std::size_t comma = dump.rfind(',');
    long interval = 1000;
    if (comma != std::string::npos) {
      interval = std::atol(dump.c_str() + comma + 1);
      dump.resize(comma);
    }
    if (dump.empty() || interval <= 0) {
      app_.errors().RaiseWarning(
          "metricsDump", "bad WAFE_METRICS_DUMP (want <path>[,<interval-ms>])");
    } else {
      metrics_dump_path_ = dump;
      metrics_dump_interval_ms_ = interval;
      // Asking for periodic snapshots is asking for metrics.
      wobs::SetMetricsEnabled(true);
      ScheduleMetricsDump();
    }
  }
  if (const char* spec = std::getenv("WAFE_RECORD")) {
    std::string record_error;
    if (!StartRecording(spec, &record_error)) {
      app_.errors().RaiseWarning("record", "bad WAFE_RECORD: " + record_error);
    }
  }
}

// --- Session record/replay ----------------------------------------------------

bool Wafe::StartRecording(const std::string& spec, std::string* error) {
  if (recorder_ == nullptr) {
    recorder_ = std::make_unique<Recorder>(this);
  }
  if (!recorder_->Start(spec, error)) {
    recording_ = false;
    return false;
  }
  recording_ = true;
  return true;
}

void Wafe::StopRecording() {
  if (recorder_ != nullptr) {
    recorder_->Stop();
  }
  recording_ = false;
}

bool Wafe::RotateRecording(std::string* error) {
  if (recorder_ == nullptr || !recording_) {
    if (error != nullptr) {
      *error = "not recording";
    }
    return false;
  }
  if (!recorder_->Rotate(error)) {
    recording_ = false;
    return false;
  }
  return true;
}

void Wafe::RecordInboundLine(const std::string& line) {
  if (recording_) {
    recorder_->RecordLine(line);
  }
}

void Wafe::RecordSpawn(const std::string& description) {
  if (recording_) {
    recorder_->RecordSpawn(description);
  }
}

void Wafe::RecordBackendGone(const std::string& payload) {
  if (recording_) {
    recorder_->RecordBackendGone(payload);
  }
}

void Wafe::RecordCircuitTrip(int consecutive) {
  if (recording_) {
    recorder_->RecordCircuitTrip(consecutive);
  }
}

void Wafe::ScheduleMetricsDump() {
  app_.AddTimeout(metrics_dump_interval_ms_, [this] {
    WriteMetricsSnapshot();
    ScheduleMetricsDump();
  });
}

void Wafe::WriteMetricsSnapshot() {
  // Write-then-rename: a scraper reading mid-write must never see a torn
  // exposition.
  std::string tmp = metrics_dump_path_ + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) {
      wobs::Log("obs", "couldn't write metrics snapshot \"" + tmp + "\"", true);
      return;
    }
    out << wobs::MetricsPrometheus();
  }
  if (std::rename(tmp.c_str(), metrics_dump_path_.c_str()) != 0) {
    wobs::Log("obs", "couldn't rename metrics snapshot to \"" +
                         metrics_dump_path_ + "\"", true);
  }
}

void Wafe::InstallErrorHandlers() {
  // The base of the handler stack bridges toolkit errors to the Tcl hooks:
  // with no errorProc/warningProc set it falls through to the default
  // warn-and-continue disposition. Handlers tests push sit above this.
  app_.errors().PushErrorHandler([this](const xtk::ToolkitError& e) {
    if (error_proc_.empty()) {
      app_.errors().DefaultHandle(e);
      return;
    }
    interp_.SetGlobalVar("errorName", e.name);
    interp_.SetGlobalVar("errorMessage", e.message);
    wtcl::Result r = interp_.GlobalEval(error_proc_);
    if (r.code == wtcl::Status::kError) {
      // A failing hook must not recurse or hide the original condition.
      app_.errors().DefaultHandle(e);
      app_.errors().DefaultHandle({false, "errorProc", r.value});
    }
  });
  app_.errors().PushWarningHandler([this](const xtk::ToolkitError& e) {
    if (warning_proc_.empty()) {
      app_.errors().DefaultHandle(e);
      return;
    }
    interp_.SetGlobalVar("warningName", e.name);
    interp_.SetGlobalVar("warningMessage", e.message);
    wtcl::Result r = interp_.GlobalEval(warning_proc_);
    if (r.code == wtcl::Status::kError) {
      app_.errors().DefaultHandle(e);
      app_.errors().DefaultHandle({false, "warningProc", r.value});
    }
  });
}

Wafe::~Wafe() = default;

void Wafe::RegisterEverything() {
  RegisterWafeConverters(*this);
  RegisterXtCommands(*this);
  RegisterWidgetCommands(*this);
  if (options_.widget_set == WidgetSet::kAthena) {
    RegisterAthenaCommands(*this);
  } else {
    RegisterMotifCommands(*this);
  }
  if (options_.extensions) {
    RegisterExtCommands(*this);
  }
  RegisterCommCommands(*this);
  RegisterObsCommands(*this);
}

wtcl::Result Wafe::Eval(std::string_view script) { return interp_.Eval(script); }

void Wafe::WriteOut(const std::string& text) {
  if (output_to_backend_ &&
      (frontend_->backend_alive() || frontend_->restart_pending())) {
    // While a supervised restart is pending the line is queued and delivered
    // to the replacement backend.
    // Callbacks and actions talk back to the application program. The
    // protocol is line oriented; the text already ends in a newline for
    // echo, and SendToBackend appends one, so strip a single trailing
    // newline first.
    std::string line = text;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
    }
    frontend_->SendToBackend(line);
    return;
  }
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

void Wafe::WritePassthrough(const std::string& line) {
  if (passthrough_) {
    passthrough_(line);
    return;
  }
  std::string out = line;
  out.push_back('\n');
  std::fwrite(out.data(), 1, out.size(), stdout);
  std::fflush(stdout);
}

void Wafe::Quit(int code) {
  quit_ = true;
  exit_code_ = code;
  app_.BreakMainLoop();
}

// --- Modes --------------------------------------------------------------------------

int Wafe::RunFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "wafe: cannot read file \"%s\"\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  std::string script = buffer.str();
  // Skip the #! magic line.
  if (script.size() >= 2 && script[0] == '#' && script[1] == '!') {
    std::size_t nl = script.find('\n');
    script = nl == std::string::npos ? "" : script.substr(nl + 1);
  }
  wtcl::Result r = Eval(script);
  if (r.code == wtcl::Status::kError) {
    std::fprintf(stderr, "wafe: %s\n", r.value.c_str());
    return 1;
  }
  if (!quit_) {
    app_.MainLoop();
  }
  return exit_code_;
}

int Wafe::RunInteractive(std::istream& in, std::ostream& out) {
  std::string line;
  std::string pending;
  while (!quit_ && std::getline(in, line)) {
    pending += line;
    // Continue reading while braces/brackets are open (multi-line commands).
    int depth = 0;
    bool in_quote = false;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      char c = pending[i];
      if (c == '\\') {
        ++i;
        continue;
      }
      if (in_quote) {
        in_quote = c != '"';
        continue;
      }
      if (c == '"') {
        in_quote = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        --depth;
      }
    }
    if (depth > 0 || (!pending.empty() && pending.back() == '\\')) {
      pending += "\n";
      continue;
    }
    wtcl::Result r = Eval(pending);
    pending.clear();
    if (r.code == wtcl::Status::kError) {
      out << "error: " << r.value << "\n";
    } else if (!r.value.empty()) {
      out << r.value << "\n";
    }
    app_.ProcessPending();
  }
  return exit_code_;
}

int Wafe::RunFrontend(const std::string& program, const std::vector<std::string>& args) {
  std::string error;
  set_backend_output(true);
  if (!frontend_->SpawnBackend(program, args, &error)) {
    std::fprintf(stderr, "wafe: %s\n", error.c_str());
    return 1;
  }
  // Some interpretative languages want an initial command after the fork
  // (the InitCom resource; the paper's Prolog startup-goal example).
  std::vector<std::pair<std::string, std::string>> path{{options_.app_name,
                                                          options_.app_class}};
  if (auto init = app_.resource_db().Query(path, {"initCom", "InitCom"})) {
    frontend_->SendToBackend(*init);
  }
  app_.MainLoop();
  frontend_->CloseBackend();
  frontend_->WaitBackend();
  return exit_code_;
}

SplitArgs SplitCommandLine(int argc, const char* const* argv) {
  SplitArgs out;
  bool after_separator = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (after_separator) {
      out.application.push_back(arg);
      continue;
    }
    if (arg == "--") {
      after_separator = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      // Frontend arguments (e.g. --f, --reference); an option value follows.
      out.frontend.push_back(arg);
      if ((arg == "--f" || arg == "--file" || arg == "--replay") && i + 1 < argc) {
        out.frontend.push_back(argv[++i]);
      }
      continue;
    }
    if (arg == "-display" || arg == "-xrm" || arg == "-geometry" || arg == "-name" ||
        arg == "-title" || arg == "-fn" || arg == "-font" || arg == "-bg" || arg == "-fg") {
      // X Toolkit arguments consume a value.
      out.toolkit.push_back(arg);
      if (i + 1 < argc) {
        out.toolkit.push_back(argv[++i]);
      }
      continue;
    }
    if (arg == "-iconic" || arg == "-rv" || arg == "-reverse") {
      out.toolkit.push_back(arg);
      continue;
    }
    out.application.push_back(arg);
  }
  return out;
}

int Wafe::Main(int argc, const char* const* argv) {
  SplitArgs split = SplitCommandLine(argc, argv);

  // The resource-file mechanism: $XENVIRONMENT names a per-user resource
  // file merged at startup (the app-defaults path of a real X installation).
  if (const char* env_file = std::getenv("XENVIRONMENT")) {
    std::ifstream file(env_file);
    if (file) {
      std::ostringstream buffer;
      buffer << file.rdbuf();
      app_.resource_db().MergeString(buffer.str());
    }
  }

  // Apply toolkit arguments.
  for (std::size_t i = 0; i < split.toolkit.size(); ++i) {
    if (split.toolkit[i] == "-xrm" && i + 1 < split.toolkit.size()) {
      app_.resource_db().MergeLine(split.toolkit[++i]);
    } else if (split.toolkit[i] == "-display" && i + 1 < split.toolkit.size()) {
      // Re-home the top level shell onto the named display.
      top_level_->set_display(&app_.OpenDisplay(split.toolkit[++i]));
    } else if (split.toolkit[i] == "-name" && i + 1 < split.toolkit.size()) {
      ++i;  // accepted; the app name is fixed at construction
    }
  }

  // Frontend arguments.
  std::string script_file;
  std::string replay_file;
  for (std::size_t i = 0; i < split.frontend.size(); ++i) {
    const std::string& arg = split.frontend[i];
    if ((arg == "--f" || arg == "--file") && i + 1 < split.frontend.size()) {
      script_file = split.frontend[++i];
    } else if (arg == "--replay" && i + 1 < split.frontend.size()) {
      replay_file = split.frontend[++i];
    } else if (arg == "--reference") {
      std::fputs(specs_.ReferenceText().c_str(), stdout);
      return 0;
    } else if (arg == "--help") {
      std::fputs(
          "usage: wafe [--f script] [--replay journal] [--reference] [X options] "
          "[application args]\n"
          "  invoked as x<name>, spawns <name> as a backend (frontend mode)\n",
          stdout);
      return 0;
    }
  }

  if (!replay_file.empty()) {
    // Crash recovery: rebuild the session a journal recorded, then report
    // the golden state (render checksum, widget count, interp summary) so a
    // caller can diff it against the original's.
    ReplayStats stats;
    std::string error;
    if (!ReplayJournal(*this, replay_file, &stats, &error)) {
      std::fprintf(stderr, "wafe: %s\n", error.c_str());
      return 1;
    }
    std::printf("replay: records %llu lines %llu events %llu timers %llu "
                "gone %llu evalTrips %llu unmatchedTimers %llu truncated %d\n",
                static_cast<unsigned long long>(stats.records),
                static_cast<unsigned long long>(stats.lines),
                static_cast<unsigned long long>(stats.events),
                static_cast<unsigned long long>(stats.timers),
                static_cast<unsigned long long>(stats.backend_gone),
                static_cast<unsigned long long>(stats.eval_trips),
                static_cast<unsigned long long>(stats.unmatched_timers),
                stats.truncated ? 1 : 0);
    std::printf("replay: framebuffer %016llx\n",
                static_cast<unsigned long long>(
                    FramebufferChecksum(app_.display())));
    return 0;
  }

  if (!script_file.empty()) {
    return RunFile(script_file);
  }

  // The x<name> invocation convention: "ln -s wafe xwafeApp && xwafeApp"
  // spawns wafeApp as the backend.
  std::string invoked = argv[0];
  std::size_t slash = invoked.rfind('/');
  if (slash != std::string::npos) {
    invoked = invoked.substr(slash + 1);
  }
  if (invoked.size() > 1 && invoked[0] == 'x' && invoked != "xwafe" && invoked != "xmofe") {
    std::string backend = invoked.substr(1);
    return RunFrontend(backend, split.application);
  }
  if (!split.application.empty()) {
    // An explicit backend program on the command line.
    std::string backend = split.application.front();
    std::vector<std::string> args(split.application.begin() + 1, split.application.end());
    return RunFrontend(backend, args);
  }
  return RunInteractive(std::cin, std::cout);
}

}  // namespace wafe
