// Wafe's naming conventions (paper §Naming Conventions): commands derive
// from the C function names by stripping the "Xt" / "Xaw" / "X" prefix and
// lowering the first letter (XtDestroyWidget -> destroyWidget,
// XawFormAllowResize -> formAllowResize); OSF/Motif names strip "Xm" and
// gain a leading "m" (XmCommandAppendValue -> mCommandAppendValue). Widget
// creation commands derive the same way from the class name
// (Toggle -> toggle, XmCascadeButton -> mCascadeButton).
#ifndef SRC_CORE_NAMING_H_
#define SRC_CORE_NAMING_H_

#include <string>

namespace wafe {

// Derives the Wafe command name from a C function name.
std::string CommandNameFromC(const std::string& c_name);

// Derives the creation command name from a widget class name.
std::string CreationCommandFromClass(const std::string& class_name);

}  // namespace wafe

#endif  // SRC_CORE_NAMING_H_
