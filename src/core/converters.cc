// Wafe's additional converter procedures (paper §Converter Procedures):
// the Callback converter (a resource value that is an executable Tcl string,
// with percent-code access to clientData), the extended Pixmap converter
// (reads files, tries XBM first and falls back to XPM), and — for the Motif
// build — the XmString converter validating compound-string markup.
#include <fstream>
#include <sstream>

#include "src/core/comm.h"
#include "src/core/percent.h"
#include "src/core/wafe.h"
#include "src/xm/xmstring.h"

namespace wafe {

void RegisterWafeConverters(Wafe& wafe) {
  Wafe* w = &wafe;

  // --- Callback converter ------------------------------------------------------
  wafe.app().converters().Register(
      xtk::ResourceType::kCallback,
      [w](const std::string& input, xtk::Widget*, xtk::ResourceValue* out, std::string*) {
        xtk::CallbackList list;
        if (!input.empty()) {
          xtk::Callback callback;
          callback.source = input;
          callback.fn = [w, script = input](xtk::Widget& widget, const xtk::CallData& data) {
            std::string substituted = SubstituteCallbackCodes(script, widget, data);
            wtcl::Result r = w->Eval(substituted);
            if (r.code == wtcl::Status::kError) {
              w->WriteOut("wafe: error in callback of " + widget.name() + ": " + r.value +
                          "\n");
            }
          };
          list.push_back(std::move(callback));
        }
        *out = std::move(list);
        return true;
      },
      // Cacheable: the closure depends only on the script string and this
      // Wafe instance, and the registry lives inside that instance.
      /*cacheable=*/true);

  // --- Extended Pixmap converter --------------------------------------------------
  wafe.app().converters().Register(
      xtk::ResourceType::kPixmap,
      [](const std::string& input, xtk::Widget*, xtk::ResourceValue* out, std::string* error) {
        if (input.empty() || input == "None" || input == "none") {
          *out = xsim::PixmapPtr{};
          return true;
        }
        std::string source = input;
        std::string name = input;
        // A file path: read it; otherwise treat the string as inline source.
        if (input.find('\n') == std::string::npos) {
          std::ifstream file(input);
          if (file) {
            std::ostringstream buffer;
            buffer << file.rdbuf();
            source = buffer.str();
          }
        }
        // Try the standard X bitmap format first, then Xpm (the converter
        // behavior the paper describes).
        xsim::PixmapPtr pixmap = xsim::ParseBitmapOrPixmap(source);
        if (pixmap == nullptr) {
          *error = "cannot convert \"" + name + "\" to Pixmap (not XBM or XPM)";
          return false;
        }
        auto named = std::make_shared<xsim::Pixmap>(*pixmap);
        named->name = name;
        *out = xsim::PixmapPtr(named);
        return true;
      },
      // Not cacheable: reads the file system, whose contents may change
      // between conversions.
      /*cacheable=*/false);

  // --- XmString validation (Motif build) ---------------------------------------------
  if (wafe.options().widget_set == WidgetSet::kMotif) {
    // labelString stays a string resource, but setting it through setValues
    // or creation args validates the markup eagerly so errors surface at the
    // command, not at expose time. The validation accepts any tag when the
    // widget has no fontList yet (creation-order independence).
    wafe.app().converters().Register(
        xtk::ResourceType::kString,
        [](const std::string& input, xtk::Widget* widget, xtk::ResourceValue* out,
           std::string* error) {
          if (widget != nullptr && input.find('\\') != std::string::npos &&
              widget->FindSpec("labelString") != nullptr) {
            std::string fl = widget->GetString("fontList");
            std::string parse_error;
            if (!fl.empty()) {
              if (auto fonts = xmw::ParseFontList(fl)) {
                if (!xmw::ParseXmString(input, &*fonts, &parse_error)) {
                  *error = "bad compound string: " + parse_error;
                  return false;
                }
              }
            } else if (!xmw::ParseXmString(input, nullptr, &parse_error)) {
              *error = "bad compound string: " + parse_error;
              return false;
            }
          }
          *out = input;
          return true;
        },
        // Not cacheable: validation consults the widget's fontList.
        /*cacheable=*/false);
  }
}

}  // namespace wafe
