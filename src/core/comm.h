// Frontend-mode communication (paper §Using Wafe as a Frontend, Figure 4):
// the backend application runs as a child process whose stdout Wafe reads —
// lines starting with the prefix character are evaluated as Tcl commands,
// all other lines pass through to Wafe's stdout — and whose stdin receives
// the ASCII messages callbacks/actions emit. An optional mass-transfer
// channel moves bulk data into a Tcl variable without per-line parsing.
#ifndef SRC_CORE_COMM_H_
#define SRC_CORE_COMM_H_

#include <string>
#include <vector>

namespace wafe {

class Wafe;

class Frontend {
 public:
  explicit Frontend(Wafe* wafe);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  // Spawns `program` (searched in PATH) with `args`, wiring its stdio to a
  // socketpair (the paper's preferred transport, with a pipe fallback).
  // Returns false and fills *error on failure.
  bool SpawnBackend(const std::string& program, const std::vector<std::string>& args,
                    std::string* error);

  // Adopts existing descriptors instead of forking: `read_fd` carries
  // backend output, `write_fd` reaches backend stdin. Used by tests and by
  // in-process examples.
  void AdoptBackend(int read_fd, int write_fd);

  // Transport ablation: the paper prefers socketpair with a pipe fallback;
  // forcing pipes lets benches compare the two.
  void set_force_pipes(bool force) { force_pipes_ = force; }
  bool using_socketpair() const { return using_socketpair_; }

  bool backend_alive() const { return read_fd_ >= 0; }
  int backend_pid() const { return pid_; }
  int read_fd() const { return read_fd_; }
  int write_fd() const { return write_fd_; }

  // Registers the read fd with the app context's input sources.
  void RegisterInputHandlers();

  // Reads whatever is available and dispatches complete lines. Returns the
  // number of protocol lines evaluated; -1 once the backend hung up.
  int OnBackendReadable();

  // Sends one line (newline appended) to the backend's stdin.
  void SendToBackend(const std::string& line);

  // Waits for the child to exit (frontend shutdown).
  int WaitBackend();
  void CloseBackend();

  // --- Mass-transfer channel -----------------------------------------------------

  // Creates the mass channel (before spawn). getChannel reports the fd the
  // *backend* writes to; the frontend reads the other end.
  bool SetupMassChannel(std::string* error);
  int mass_channel_backend_fd() const { return mass_backend_fd_; }
  int mass_channel_read_fd() const { return mass_read_fd_; }

  // Arms the transfer: the next `nbytes` bytes arriving on the mass channel
  // are stored into Tcl variable `var`, then `completion` is evaluated.
  void SetCommunicationVariable(const std::string& var, std::size_t nbytes,
                                const std::string& completion);
  void OnMassReadable();
  bool mass_transfer_active() const { return mass_expected_ > 0; }

  // --- Statistics ------------------------------------------------------------------

  std::size_t lines_received() const { return lines_received_; }
  std::size_t bytes_received() const { return bytes_received_; }
  std::size_t lines_sent() const { return lines_sent_; }
  std::size_t overlong_lines() const { return overlong_lines_; }

 private:
  // Splits buffered input into lines, honoring the maximum line length.
  int DrainBuffer();
  // Stores the armed byte count into the Tcl variable and runs completion.
  void FinishMassTransfer();
  void HandleLine(const std::string& line);

  Wafe* wafe_;
  int pid_ = -1;
  int read_fd_ = -1;
  int write_fd_ = -1;
  int input_id_ = -1;
  bool force_pipes_ = false;
  bool using_socketpair_ = false;
  std::string backend_program_;  // for lifecycle log lines
  std::string buffer_;
  bool overlong_in_progress_ = false;

  int mass_read_fd_ = -1;
  int mass_backend_fd_ = -1;
  int mass_input_id_ = -1;
  std::string mass_var_;
  std::size_t mass_expected_ = 0;
  std::string mass_buffer_;
  std::string mass_completion_;

  std::size_t lines_received_ = 0;
  std::size_t bytes_received_ = 0;
  std::size_t lines_sent_ = 0;
  std::size_t overlong_lines_ = 0;
};

}  // namespace wafe

#endif  // SRC_CORE_COMM_H_
