// Frontend-mode communication (paper §Using Wafe as a Frontend, Figure 4):
// the backend application runs as a child process whose stdout Wafe reads —
// lines starting with the prefix character are evaluated as Tcl commands,
// all other lines pass through to Wafe's stdout — and whose stdin receives
// the ASCII messages callbacks/actions emit. An optional mass-transfer
// channel moves bulk data into a Tcl variable without per-line parsing.
//
// The channel is the reliability boundary of a frontend-mode system, so it
// is hardened against slow, flooding, and dying backends: writes are
// non-blocking behind a bounded in-process queue drained by a write-ready
// input source (a stalled backend never blocks Xt event dispatch), an
// opt-in supervisor respawns a dead backend with exponential backoff, and a
// deterministic fault-injection seam (the `commFault` command and the
// WAFE_COMM_FAULT environment variable) lets tests force the failure modes.
#ifndef SRC_CORE_COMM_H_
#define SRC_CORE_COMM_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace wafe {

class Wafe;

// What SendToBackend does when the outbound queue byte limit is reached.
enum class OverflowPolicy {
  kBlock,      // flush synchronously until space opens or the deadline passes
  kDropOldest, // drop queued lines (oldest first) to make room
  kFail,       // reject the new line
};

// Deterministic fault injection for the channel (the `commFault` command /
// WAFE_COMM_FAULT). All fields are consumed by the write and mass-read
// paths; zero / negative values mean "off".
struct CommFaults {
  std::size_t short_write_max = 0;  // cap every write() to this many bytes
  int eagain_storm = 0;             // next N writes fail with EAGAIN
  int eintr_storm = 0;              // next N writes fail with EINTR
  long hangup_after_bytes = -1;     // backend vanishes mid-line after N bytes
  long mass_eof_after_bytes = -1;   // mass channel truncates after N bytes
};

class Frontend {
 public:
  explicit Frontend(Wafe* wafe);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  // Spawns `program` (searched in PATH) with `args`, wiring its stdio to a
  // socketpair (the paper's preferred transport, with a pipe fallback).
  // Returns false and fills *error on failure.
  bool SpawnBackend(const std::string& program, const std::vector<std::string>& args,
                    std::string* error);

  // Adopts existing descriptors instead of forking: `read_fd` carries
  // backend output, `write_fd` reaches backend stdin. Used by tests and by
  // in-process examples.
  void AdoptBackend(int read_fd, int write_fd);

  // Transport ablation: the paper prefers socketpair with a pipe fallback;
  // forcing pipes lets benches compare the two.
  void set_force_pipes(bool force) { force_pipes_ = force; }
  bool using_socketpair() const { return using_socketpair_; }

  bool backend_alive() const { return read_fd_ >= 0; }
  int backend_pid() const { return pid_; }
  int read_fd() const { return read_fd_; }
  int write_fd() const { return write_fd_; }

  // Registers the read fd with the app context's input sources.
  void RegisterInputHandlers();

  // Reads whatever is available and dispatches complete lines. Returns the
  // number of protocol lines evaluated; -1 once the backend hung up.
  int OnBackendReadable();

  // Enqueues one line (newline appended) for the backend's stdin and
  // flushes as much as the kernel accepts without blocking; the remainder
  // drains through a write-ready input source. Returns false when the line
  // was rejected by the overflow policy (or there is no backend).
  bool SendToBackend(const std::string& line);
  // Drains the outbound queue; called by the write-ready source.
  void OnBackendWritable();

  // Waits for the child to exit (frontend shutdown). Returns the recorded
  // exit status if the supervisor already reaped the child.
  int WaitBackend();
  void CloseBackend();

  // --- Outbound queue / backpressure ------------------------------------------------

  void set_send_queue_limit(std::size_t bytes) { send_queue_limit_ = bytes; }
  std::size_t send_queue_limit() const { return send_queue_limit_; }
  void set_overflow_policy(OverflowPolicy policy) { overflow_policy_ = policy; }
  OverflowPolicy overflow_policy() const { return overflow_policy_; }
  // Deadline for OverflowPolicy::kBlock; past it the new line is dropped.
  void set_send_deadline_ms(int ms) { send_deadline_ms_ = ms; }
  int send_deadline_ms() const { return send_deadline_ms_; }
  // `script` is evaluated once when the queue grows past `bytes` and re-armed
  // when it drains below half of it. Empty script clears the callback.
  void SetHighWater(std::size_t bytes, std::string script);
  std::size_t high_water_bytes() const { return high_water_bytes_; }

  std::size_t send_queue_bytes() const { return send_queue_bytes_; }
  std::size_t send_queue_lines() const { return send_queue_.size(); }
  std::size_t lines_dropped() const { return lines_dropped_; }

  // --- Supervision ------------------------------------------------------------------

  // With supervision on, a backend that hangs up or dies abnormally is
  // respawned (up to max_restarts times, exponential backoff capped at
  // backoff_max). Without it, backend exit quits the session as before.
  void set_supervise(bool on) { supervise_ = on; }
  bool supervise() const { return supervise_; }
  void set_max_restarts(int n) { max_restarts_ = n; }
  int max_restarts() const { return max_restarts_; }
  void set_backoff(int initial_ms, int max_ms);
  int backoff_initial_ms() const { return backoff_initial_ms_; }
  int backoff_max_ms() const { return backoff_max_ms_; }
  // Tcl hook evaluated on every backend exit, after the Tcl variables
  // backendExitReason / backendExitStatus / backendRestarts are set.
  void set_exit_command(std::string script) { exit_command_ = std::move(script); }
  const std::string& exit_command() const { return exit_command_; }

  int restart_count() const { return restarts_done_; }
  bool restart_pending() const { return restart_timer_id_ >= 0; }
  bool exit_recorded() const { return exit_recorded_; }
  // Recorded exit status: the code for a normal exit, -1 for a signal death.
  int last_exit_status() const { return last_exit_status_; }

  // Zeroes restart bookkeeping (a fresh supervision episode).
  void ResetSupervision();

  // --- %-protocol degradation -------------------------------------------------

  // A failed %-line is reported back on the backend's stdin as
  // "error <trace>" (paper convention: errors in application-supplied
  // commands go over the channel, never fatal to the frontend) and counts
  // toward an optional circuit breaker: after `limit` consecutive eval
  // failures the backend is treated as faulty — HandleBackendGone, so the
  // supervision hook respawns it or the session ends — instead of the
  // channel wedging on an endless error stream. 0 disables the breaker.
  void set_eval_error_limit(int limit) { eval_error_limit_ = limit; }
  int eval_error_limit() const { return eval_error_limit_; }
  std::size_t eval_errors() const { return eval_errors_total_; }
  int consecutive_eval_errors() const { return eval_errors_consecutive_; }

  // One line of channel state for the `backend status` command.
  std::string StatusText() const;

  // --- Record/replay ----------------------------------------------------------
  //
  // In replay mode there is no child process: SpawnBackend only advances the
  // supervision bookkeeping, reaping is a no-op (pid_ stays -1), and the
  // replay engine feeds recorded lines/transitions through the entry points
  // below — the rest of the machinery (eval, circuit breaker, respawn
  // scheduling) runs unchanged, which is what makes the replay faithful.
  void set_replay_mode(bool on) { replay_mode_ = on; }
  bool replay_mode() const { return replay_mode_; }

  // Dispatches one recorded inbound line exactly as DrainBuffer would.
  void ReplayLine(const std::string& line) { HandleLine(line); }

  // Applies a recorded backend-death transition (hangup, write failure, ...).
  // `has_status` carries the recorded exit status when the supervisor had
  // reaped the child before the record was written.
  void ReplayBackendGone(const char* reason, bool has_status, int status);

  // --- Fault injection --------------------------------------------------------------

  CommFaults& faults() { return faults_; }
  const CommFaults& faults() const { return faults_; }
  void ClearFaults() { faults_ = CommFaults{}; }
  // Parses "kind=value,kind=value" (the WAFE_COMM_FAULT format; kinds:
  // shortWrites, eagain, eintr, hangupAfter, massEofAfter).
  bool ApplyFaultSpec(const std::string& spec, std::string* error);
  std::string FaultStatusText() const;

  // --- Mass-transfer channel -----------------------------------------------------

  // Creates the mass channel (before spawn). getChannel reports the fd the
  // *backend* writes to; the frontend reads the other end.
  bool SetupMassChannel(std::string* error);
  int mass_channel_backend_fd() const { return mass_backend_fd_; }
  int mass_channel_read_fd() const { return mass_read_fd_; }

  // Arms the transfer: the next `nbytes` bytes arriving on the mass channel
  // are stored into Tcl variable `var`, then `completion` is evaluated. A
  // zero-byte transfer completes immediately (the variable is set empty and
  // the completion runs before this returns).
  void SetCommunicationVariable(const std::string& var, std::size_t nbytes,
                                const std::string& completion);
  void OnMassReadable();
  bool mass_transfer_active() const { return mass_armed_; }

  // --- Statistics ------------------------------------------------------------------

  std::size_t lines_received() const { return lines_received_; }
  std::size_t bytes_received() const { return bytes_received_; }
  std::size_t lines_sent() const { return lines_sent_; }
  std::size_t overlong_lines() const { return overlong_lines_; }

 private:
  // Splits buffered input into lines, honoring the maximum line length.
  int DrainBuffer();
  // Stores the armed byte count into the Tcl variable and runs completion.
  void FinishMassTransfer();
  void HandleLine(const std::string& line);
  // Sends the "error <trace>" report for a failed %-line and runs the
  // circuit breaker.
  void HandleEvalError(const std::string& message);

  // Fault-aware write to the backend fd.
  ssize_t WriteBackend(const char* data, std::size_t len);
  // Writes queued bytes until the kernel would block; arms/disarms the
  // write-ready source accordingly.
  void FlushSendQueue();
  void UpdateWriteWatch();
  // kBlock overflow: flushes synchronously (poll + write) until `needed`
  // bytes fit or the deadline passes. Returns whether space opened.
  bool BlockUntilSpace(std::size_t needed);
  void CheckHighWater();

  // Backend death (read EOF, write EPIPE, injected hangup): tears down the
  // channel, reaps, fires the exit hook, then either schedules a supervised
  // respawn or quits the session.
  void HandleBackendGone(const char* reason);
  void RespawnNow();
  // Reaps the child without blocking (retrying EINTR); returns true once the
  // exit status has been recorded (or there is nothing to reap).
  bool TryReap();
  void RecordExit(int wait_status);

  Wafe* wafe_;
  int pid_ = -1;
  int read_fd_ = -1;
  int write_fd_ = -1;
  int input_id_ = -1;
  int output_id_ = -1;
  bool force_pipes_ = false;
  bool using_socketpair_ = false;
  bool sigpipe_guard_held_ = false;
  std::string backend_program_;  // for lifecycle log lines and respawns
  std::vector<std::string> backend_args_;
  std::string buffer_;
  bool overlong_in_progress_ = false;

  // Outbound queue: whole lines; the front one may be partially written.
  std::deque<std::string> send_queue_;
  std::size_t send_front_offset_ = 0;
  std::size_t send_queue_bytes_ = 0;
  std::size_t send_queue_limit_ = 4 * 1024 * 1024;
  OverflowPolicy overflow_policy_ = OverflowPolicy::kBlock;
  int send_deadline_ms_ = 1000;
  std::size_t high_water_bytes_ = 0;
  std::string high_water_script_;
  bool high_water_armed_ = true;
  std::size_t lines_dropped_ = 0;

  bool supervise_ = false;
  int max_restarts_ = 3;
  int backoff_initial_ms_ = 100;
  int backoff_max_ms_ = 5000;
  int backoff_ms_ = 100;
  int restarts_done_ = 0;
  int restart_timer_id_ = -1;
  bool gone_handling_ = false;
  bool replay_mode_ = false;
  int eval_error_limit_ = 0;
  int eval_errors_consecutive_ = 0;
  std::size_t eval_errors_total_ = 0;
  std::string exit_command_;
  bool exit_recorded_ = false;
  int last_exit_status_ = 0;

  CommFaults faults_;

  int mass_read_fd_ = -1;
  int mass_backend_fd_ = -1;
  int mass_input_id_ = -1;
  std::string mass_var_;
  bool mass_armed_ = false;
  std::size_t mass_expected_ = 0;
  std::string mass_buffer_;
  std::string mass_completion_;

  std::size_t lines_received_ = 0;
  std::size_t bytes_received_ = 0;
  std::size_t lines_sent_ = 0;
  std::size_t overlong_lines_ = 0;
};

}  // namespace wafe

#endif  // SRC_CORE_COMM_H_
