// The Xt-level Wafe commands: widget lifecycle, resource access, actions,
// callbacks (including the predefined popup callbacks), resources merging,
// timers, and introspection. Most entries are spec-generated wrappers of a
// single Xt function, per the paper's one-call-one-command rule.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/core/comm.h"
#include "src/core/naming.h"
#include "src/core/percent.h"
#include "src/core/replay.h"
#include "src/core/wafe.h"
#include "src/obs/obs.h"
#include "src/xt/classes.h"

namespace wafe {

namespace {

using wtcl::Result;

// Parses attribute-value pairs from a rest-arg list.
Result ParsePairs(const std::vector<std::string>& rest, std::size_t start,
                  std::vector<std::pair<std::string, std::string>>* out) {
  if ((rest.size() - start) % 2 != 0) {
    return Result::Error("attribute \"" + rest.back() + "\" has no value");
  }
  for (std::size_t i = start; i + 1 < rest.size(); i += 2) {
    out->emplace_back(rest[i], rest[i + 1]);
  }
  return Result::Ok();
}

xtk::GrabKind GrabKindFromName(const std::string& name) {
  if (name == "exclusive") {
    return xtk::GrabKind::kExclusive;
  }
  if (name == "nonexclusive") {
    return xtk::GrabKind::kNonexclusive;
  }
  return xtk::GrabKind::kNone;
}

// Finds the shell ancestor of a widget (for popup positioning).
xtk::Widget* ShellOf(xtk::Widget* widget) {
  xtk::Widget* w = widget;
  while (w != nullptr && !w->widget_class()->shell) {
    w = w->parent();
  }
  return w;
}

}  // namespace

// Shared creation handler (the "~widgetClass" spec form).
wtcl::Result CreateWidgetCommand(Wafe& wafe, const xtk::WidgetClass* cls,
                                 const std::vector<std::string>& argv) {
  // argv: name father ?unmanaged? ?attr value ...?
  const std::string& name = argv[0];
  const std::string& father_name = argv[1];
  std::size_t rest_start = 2;
  bool managed = !cls->shell;  // popup shells start unmanaged
  if (argv.size() > 2 && argv[2] == "unmanaged") {
    managed = false;
    rest_start = 3;
  }
  std::vector<std::pair<std::string, std::string>> args;
  if ((argv.size() - rest_start) % 2 != 0) {
    return Result::Error("attribute \"" + argv.back() + "\" has no value");
  }
  for (std::size_t i = rest_start; i + 1 < argv.size(); i += 2) {
    args.emplace_back(argv[i], argv[i + 1]);
  }
  std::string error;
  xtk::Widget* father = wafe.app().FindWidget(father_name);
  xtk::Widget* widget = nullptr;
  if (father == nullptr) {
    if (!cls->shell) {
      return Result::Error("no such widget \"" + father_name + "\"");
    }
    // Shells accept a display name in the father position (the paper's
    // multi-display example: applicationShell top2 dec4:0).
    widget = wafe.app().CreateShell(name, cls->name, &wafe.app().OpenDisplay(father_name),
                                    args, &error);
  } else {
    widget = wafe.app().CreateWidget(name, cls->name, father, args, managed, &error);
  }
  if (widget == nullptr) {
    return Result::Error(error);
  }
  return Result::Ok(name);
}

void RegisterXtCommands(Wafe& wafe) {
  SpecRegistry& reg = wafe.specs();

  reg.Register(CommandSpec{
      "XtDestroyWidget",
      "",
      "void",
      {{ArgType::kWidget, "widget"}},
      "destroy a widget and its descendants",
      [](Invocation& inv) {
        inv.wafe->app().DestroyWidget(inv.widget(0));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtRealizeWidget",
      "",
      "void",
      {{ArgType::kWidget, "widget"}},
      "realize a widget subtree (create and map its windows)",
      [](Invocation& inv) {
        inv.wafe->app().RealizeWidget(inv.widget(0));
        return Result::Ok();
      },
      true});

  // Bare `realize` — the form every example in the paper uses.
  reg.Register(CommandSpec{
      "realize",
      "realize",
      "void",
      {},
      "realize the application's top level shell",
      [](Invocation& inv) {
        inv.wafe->app().RealizeWidget(inv.wafe->top_level());
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "XtUnrealizeWidget",
      "",
      "void",
      {{ArgType::kWidget, "widget"}},
      "destroy the windows of a widget subtree",
      [](Invocation& inv) {
        inv.wafe->app().UnrealizeWidget(inv.widget(0));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtManageChild",
      "",
      "void",
      {{ArgType::kWidget, "widget"}},
      "manage (and map) a child widget",
      [](Invocation& inv) {
        inv.wafe->app().ManageChild(inv.widget(0));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtUnmanageChild",
      "",
      "void",
      {{ArgType::kWidget, "widget"}},
      "unmanage (and unmap) a child widget",
      [](Invocation& inv) {
        inv.wafe->app().UnmanageChild(inv.widget(0));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtSetValues",
      "",
      "void",
      {{ArgType::kWidget, "widget"}, {ArgType::kRest, "attr value ..."}},
      "set resource values of a widget",
      [](Invocation& inv) {
        std::vector<std::pair<std::string, std::string>> args;
        Result pr = ParsePairs(inv.rest, 0, &args);
        if (pr.code != wtcl::Status::kOk) {
          return pr;
        }
        std::string error;
        if (!inv.wafe->app().SetValues(inv.widget(0), args, &error)) {
          return Result::Error(error);
        }
        return Result::Ok();
      },
      true});
  reg.RegisterAlias("sV", "setValues");

  reg.Register(CommandSpec{
      "XtGetValues",
      "getValue",
      "String",
      {{ArgType::kWidget, "widget"}, {ArgType::kString, "resource"}},
      "retrieve a resource value in string form",
      [](Invocation& inv) {
        std::string out;
        std::string error;
        if (!inv.wafe->app().GetValue(inv.widget(0), inv.str(1), &out, &error)) {
          return Result::Error(error);
        }
        return Result::Ok(out);
      },
      true});
  reg.RegisterAlias("gV", "getValue");

  reg.Register(CommandSpec{
      "XtGetResourceList",
      "",
      "int",
      {{ArgType::kWidget, "widget"}, {ArgType::kVarName, "varName"}},
      "resource names of a widget's class; returns the count",
      [](Invocation& inv) {
        std::vector<const xtk::ResourceSpec*> specs =
            inv.widget(0)->widget_class()->AllResources();
        std::vector<std::string> names;
        names.reserve(specs.size());
        for (const xtk::ResourceSpec* spec : specs) {
          names.push_back(spec->name);
        }
        inv.wafe->interp().SetVar(inv.str(1), wtcl::MergeList(names));
        return Result::Ok(std::to_string(names.size()));
      },
      true});

  reg.Register(CommandSpec{
      "XtSetSensitive",
      "",
      "void",
      {{ArgType::kWidget, "widget"}, {ArgType::kBoolean, "sensitive"}},
      "set a widget's sensitivity",
      [](Invocation& inv) {
        std::string error;
        inv.wafe->app().SetValues(inv.widget(0),
                                  {{"sensitive", inv.boolean(1) ? "true" : "false"}}, &error);
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtPopup",
      "",
      "void",
      {{ArgType::kWidget, "shell"}, {ArgType::kString, "grabKind", true}},
      "pop up a shell (grabKind: none, nonexclusive, exclusive)",
      [](Invocation& inv) {
        inv.wafe->app().Popup(inv.widget(0),
                              GrabKindFromName(inv.present(1) ? inv.str(1) : "none"));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtPopdown",
      "",
      "void",
      {{ArgType::kWidget, "shell"}},
      "pop down a shell",
      [](Invocation& inv) {
        inv.wafe->app().Popdown(inv.widget(0));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtMoveWidget",
      "",
      "void",
      {{ArgType::kWidget, "widget"}, {ArgType::kInt, "x"}, {ArgType::kInt, "y"}},
      "move a widget",
      [](Invocation& inv) {
        xtk::Widget* w = inv.widget(0);
        w->SetGeometry(static_cast<xsim::Position>(inv.integer(1)),
                       static_cast<xsim::Position>(inv.integer(2)), w->width(), w->height());
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtResizeWidget",
      "",
      "void",
      {{ArgType::kWidget, "widget"},
       {ArgType::kInt, "width"},
       {ArgType::kInt, "height"},
       {ArgType::kInt, "borderWidth", true}},
      "resize a widget",
      [](Invocation& inv) {
        xtk::Widget* w = inv.widget(0);
        w->SetGeometry(w->x(), w->y(), static_cast<xsim::Dimension>(inv.integer(1)),
                       static_cast<xsim::Dimension>(inv.integer(2)));
        inv.wafe->app().Redraw(w);
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtParent",
      "",
      "Widget",
      {{ArgType::kWidget, "widget"}},
      "name of a widget's parent",
      [](Invocation& inv) {
        xtk::Widget* parent = inv.widget(0)->parent();
        return Result::Ok(parent == nullptr ? "" : parent->name());
      },
      true});

  reg.Register(CommandSpec{
      "XtClass",
      "",
      "String",
      {{ArgType::kWidget, "widget"}},
      "class name of a widget",
      [](Invocation& inv) { return Result::Ok(inv.widget(0)->widget_class()->name); },
      true});

  reg.Register(CommandSpec{
      "XtIsRealized",
      "",
      "Boolean",
      {{ArgType::kWidget, "widget"}},
      "whether the widget is realized",
      [](Invocation& inv) { return Result::Ok(inv.widget(0)->realized() ? "1" : "0"); },
      true});

  reg.Register(CommandSpec{
      "XtIsManaged",
      "",
      "Boolean",
      {{ArgType::kWidget, "widget"}},
      "whether the widget is managed",
      [](Invocation& inv) { return Result::Ok(inv.widget(0)->managed() ? "1" : "0"); },
      true});

  reg.Register(CommandSpec{
      "XtIsSensitive",
      "",
      "Boolean",
      {{ArgType::kWidget, "widget"}},
      "whether the widget (and its ancestors) are sensitive",
      [](Invocation& inv) { return Result::Ok(inv.widget(0)->IsSensitive() ? "1" : "0"); },
      true});

  reg.Register(CommandSpec{
      "XtWindow",
      "",
      "int",
      {{ArgType::kWidget, "widget"}},
      "window id of a realized widget",
      [](Invocation& inv) { return Result::Ok(std::to_string(inv.widget(0)->window())); },
      true});

  reg.Register(CommandSpec{
      "XtNameToWidget",
      "",
      "Widget",
      {{ArgType::kString, "name"}},
      "look up a widget by name (empty result if unknown)",
      [](Invocation& inv) {
        xtk::Widget* w = inv.wafe->app().FindWidget(inv.str(0));
        return Result::Ok(w == nullptr ? "" : w->name());
      },
      true});

  reg.Register(CommandSpec{
      "XtTranslateCoords",
      "",
      "void",
      {{ArgType::kWidget, "widget"}, {ArgType::kVarName, "varName"}},
      "root coordinates of a widget into an associative array (x, y)",
      [](Invocation& inv) {
        xsim::Point p = inv.widget(0)->display().RootPosition(inv.widget(0)->window());
        inv.wafe->interp().SetVar(inv.str(1) + "(x)", std::to_string(p.x));
        inv.wafe->interp().SetVar(inv.str(1) + "(y)", std::to_string(p.y));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtAppAddTimeOut",
      "addTimeOut",
      "int",
      {{ArgType::kInt, "interval"}, {ArgType::kString, "command"}},
      "run a Wafe command after `interval` milliseconds",
      [](Invocation& inv) {
        Wafe* w = inv.wafe;
        std::string script = inv.str(1);
        int id = w->app().AddTimeout(inv.integer(0), [w, script] { w->Eval(script); });
        return Result::Ok(std::to_string(id));
      },
      true});

  reg.Register(CommandSpec{
      "XtRemoveTimeOut",
      "removeTimeOut",
      "void",
      {{ArgType::kInt, "id"}},
      "cancel a pending timeout",
      [](Invocation& inv) {
        inv.wafe->app().RemoveTimeout(static_cast<int>(inv.integer(0)));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtSetKeyboardFocus",
      "",
      "void",
      {{ArgType::kWidget, "widget"}},
      "direct keyboard input to a widget",
      [](Invocation& inv) {
        inv.widget(0)->display().SetInputFocus(inv.widget(0)->window());
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XLoadQueryFont",
      "",
      "String",
      {{ArgType::kString, "pattern"}},
      "resolve a font pattern to the matching XLFD",
      [](Invocation& inv) {
        xsim::FontPtr font = xsim::FontRegistry::Default().Open(inv.str(0));
        if (font == nullptr) {
          return Result::Error("no font matches \"" + inv.str(0) + "\"");
        }
        return Result::Ok(font->name);
      },
      true});

  reg.Register(CommandSpec{
      "XListFonts",
      "",
      "int",
      {{ArgType::kString, "pattern"}, {ArgType::kVarName, "varName"}},
      "list fonts matching a pattern; returns the count",
      [](Invocation& inv) {
        std::vector<std::string> names = xsim::FontRegistry::Default().List(inv.str(0));
        inv.wafe->interp().SetVar(inv.str(1), wtcl::MergeList(names));
        return Result::Ok(std::to_string(names.size()));
      },
      true});

  reg.Register(CommandSpec{
      "XtOwnSelection",
      "",
      "void",
      {{ArgType::kWidget, "widget"},
       {ArgType::kString, "selection"},
       {ArgType::kString, "value"}},
      "claim a selection (e.g. PRIMARY) for a widget with the given value",
      [](Invocation& inv) {
        std::string value = inv.str(2);
        inv.wafe->app().OwnSelection(inv.widget(0), inv.str(1),
                                     [value] { return value; });
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtDisownSelection",
      "",
      "void",
      {{ArgType::kString, "selection"}},
      "release ownership of a selection",
      [](Invocation& inv) {
        inv.wafe->app().DisownSelection(inv.str(0));
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XtGetSelectionValue",
      "",
      "String",
      {{ArgType::kString, "selection"}},
      "current value of a selection (empty if unowned)",
      [](Invocation& inv) {
        auto value = inv.wafe->app().GetSelectionValue(inv.str(0));
        return Result::Ok(value.value_or(""));
      },
      true});

  reg.Register(CommandSpec{
      "selectionOwner",
      "selectionOwner",
      "Widget",
      {{ArgType::kString, "selection"}},
      "name of the widget owning a selection (empty if none)",
      [](Invocation& inv) {
        xtk::Widget* owner = inv.wafe->app().SelectionOwnerWidget(inv.str(0));
        return Result::Ok(owner == nullptr ? "" : owner->name());
      },
      false});

  reg.Register(CommandSpec{
      "XtInstallAccelerators",
      "",
      "void",
      {{ArgType::kWidget, "destination"}, {ArgType::kWidget, "source"}},
      "make the source widget's accelerators active in the destination",
      [](Invocation& inv) {
        if (!inv.wafe->app().InstallAccelerators(inv.widget(0), inv.widget(1))) {
          return Result::Error("widget \"" + inv.str(1) + "\" has no accelerators");
        }
        return Result::Ok();
      },
      true});

  reg.Register(CommandSpec{
      "XBell",
      "",
      "void",
      {{ArgType::kInt, "percent", true}},
      "ring the keyboard bell (a no-op on the simulated server)",
      [](Invocation&) { return Result::Ok(); },
      true});

  // --- Handwritten commands ----------------------------------------------------------

  reg.Register(CommandSpec{
      "action",
      "action",
      "void",
      {{ArgType::kWidget, "widget"},
       {ArgType::kString, "mode"},
       {ArgType::kRest, "translation ..."}},
      "override, augment, or replace a widget's translation table",
      [](Invocation& inv) {
        xtk::MergeMode mode;
        if (inv.str(1) == "override") {
          mode = xtk::MergeMode::kOverride;
        } else if (inv.str(1) == "augment") {
          mode = xtk::MergeMode::kAugment;
        } else if (inv.str(1) == "replace") {
          mode = xtk::MergeMode::kReplace;
        } else {
          return Result::Error("bad mode \"" + inv.str(1) +
                               "\": should be override, augment, or replace");
        }
        std::string text;
        for (const std::string& part : inv.rest) {
          if (!text.empty()) {
            text += "\n";
          }
          text += part;
        }
        std::string error;
        xtk::TranslationsPtr incoming = xtk::GetCompiledTranslations(text, &error);
        if (incoming == nullptr) {
          return Result::Error(error);
        }
        xtk::Widget* w = inv.widget(0);
        w->SetRawValue("translations",
                       xtk::MergeTranslations(w->GetTranslations(), incoming, mode));
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "mergeResources",
      "mergeResources",
      "int",
      {{ArgType::kRest, "binding value ... | spec-text"}},
      "merge specifications into the resource database",
      [](Invocation& inv) {
        xtk::ResourceDatabase& db = inv.wafe->app().resource_db();
        std::size_t merged = 0;
        if (inv.rest.size() == 1 && inv.rest[0].find('\n') != std::string::npos) {
          // A resource-file style block; accept both "binding: value" and
          // the paper's "binding value" form.
          std::string text = inv.rest[0];
          std::size_t pos = 0;
          while (pos <= text.size()) {
            std::size_t end = text.find('\n', pos);
            std::string line = end == std::string::npos ? text.substr(pos)
                                                        : text.substr(pos, end - pos);
            std::size_t first = line.find_first_not_of(" \t");
            if (first != std::string::npos && line[first] != '!' && line[first] != '#') {
              if (line.find(':') == std::string::npos) {
                std::size_t space = line.find_first_of(" \t", first);
                if (space != std::string::npos) {
                  line.insert(space, ":");
                }
              }
              if (db.MergeLine(line)) {
                ++merged;
              }
            }
            if (end == std::string::npos) {
              break;
            }
            pos = end + 1;
          }
        } else {
          if (inv.rest.size() % 2 != 0) {
            return Result::Error("mergeResources expects binding/value pairs");
          }
          for (std::size_t i = 0; i + 1 < inv.rest.size(); i += 2) {
            if (db.MergeLine(inv.rest[i] + ": " + inv.rest[i + 1])) {
              ++merged;
            }
          }
        }
        return Result::Ok(std::to_string(merged));
      },
      false});

  reg.Register(CommandSpec{
      "callback",
      "callback",
      "void",
      {{ArgType::kWidget, "widget"},
       {ArgType::kString, "resource"},
       {ArgType::kString, "type"},
       {ArgType::kString, "shell", true}},
      "bind a predefined callback (none, exclusive, nonexclusive, popdown, "
      "position, positionCursor) to a callback resource",
      [](Invocation& inv) {
        xtk::Widget* widget = inv.widget(0);
        const std::string& resource = inv.str(1);
        const std::string& type = inv.str(2);
        if (widget->FindSpec(resource) == nullptr) {
          return Result::Error("unknown resource \"" + resource + "\" for widget " +
                               widget->name());
        }
        xtk::Widget* shell = nullptr;
        if (inv.present(3)) {
          shell = inv.wafe->app().FindWidget(inv.str(3));
          if (shell == nullptr) {
            return Result::Error("no such widget \"" + inv.str(3) + "\"");
          }
        }
        Wafe* w = inv.wafe;
        xtk::Callback callback;
        callback.source = type + (shell != nullptr ? " " + shell->name() : "");
        if (type == "none" || type == "exclusive" || type == "nonexclusive") {
          if (shell == nullptr) {
            return Result::Error("predefined callback \"" + type + "\" needs a shell");
          }
          xtk::GrabKind grab = GrabKindFromName(type);
          callback.fn = [w, shell, grab](xtk::Widget&, const xtk::CallData&) {
            w->app().Popup(shell, grab);
          };
        } else if (type == "popdown") {
          callback.fn = [w, shell](xtk::Widget& invoking, const xtk::CallData&) {
            xtk::Widget* target = shell != nullptr ? shell : ShellOf(&invoking);
            w->app().Popdown(target);
          };
        } else if (type == "position" || type == "positionCursor") {
          if (shell == nullptr) {
            return Result::Error("predefined callback \"" + type + "\" needs a shell");
          }
          callback.fn = [shell](xtk::Widget& invoking, const xtk::CallData&) {
            xsim::Point p = invoking.display().PointerPosition();
            shell->SetGeometry(p.x, p.y, shell->width(), shell->height());
          };
        } else {
          return Result::Error("unknown predefined callback \"" + type + "\"");
        }
        xtk::CallbackList list;
        list.push_back(std::move(callback));
        widget->SetRawValue(resource, std::move(list));
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "quit",
      "quit",
      "void",
      {{ArgType::kInt, "code", true}},
      "terminate the Wafe application",
      [](Invocation& inv) {
        inv.wafe->Quit(inv.present(0) ? static_cast<int>(inv.integer(0)) : 0);
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "children",
      "children",
      "StringList",
      {{ArgType::kWidget, "widget"}},
      "names of a widget's children",
      [](Invocation& inv) {
        std::vector<std::string> names;
        for (xtk::Widget* child : inv.widget(0)->children()) {
          names.push_back(child->name());
        }
        return Result::Ok(wtcl::MergeList(names));
      },
      false});

  reg.Register(CommandSpec{
      "widgets",
      "widgets",
      "StringList",
      {},
      "names of all existing widgets",
      [](Invocation& inv) { return Result::Ok(wtcl::MergeList(inv.wafe->app().WidgetNames())); },
      false});

  reg.Register(CommandSpec{
      "sync",
      "sync",
      "int",
      {},
      "dispatch all pending events; returns the number processed",
      [](Invocation& inv) {
        return Result::Ok(std::to_string(inv.wafe->app().ProcessPending()));
      },
      false});

  reg.Register(CommandSpec{
      "sendToApplication",
      "sendToApplication",
      "void",
      {{ArgType::kString, "line"}},
      "send one line to the backend application's stdin",
      [](Invocation& inv) {
        Frontend& frontend = inv.wafe->frontend();
        bool had_channel = frontend.write_fd() >= 0 || frontend.restart_pending();
        if (!frontend.SendToBackend(inv.str(0)) && had_channel) {
          return Result::Error("sendToApplication: line rejected (send queue full)");
        }
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "loadResources",
      "loadResources",
      "int",
      {{ArgType::kString, "fileName"}},
      "merge a resource file into the database; returns the number of "
      "specifications merged",
      [](Invocation& inv) {
        std::ifstream file(inv.str(0));
        if (!file) {
          return Result::Error("couldn't read resource file \"" + inv.str(0) + "\"");
        }
        std::ostringstream buffer;
        buffer << file.rdbuf();
        std::size_t merged = inv.wafe->app().resource_db().MergeString(buffer.str());
        return Result::Ok(std::to_string(merged));
      },
      false});

  reg.Register(CommandSpec{
      "wafeReference",
      "wafeReference",
      "String",
      {},
      "the generated short-reference document",
      [](Invocation& inv) { return Result::Ok(inv.wafe->specs().ReferenceText()); },
      false});
}

void RegisterCommCommands(Wafe& wafe) {
  SpecRegistry& reg = wafe.specs();

  reg.Register(CommandSpec{
      "getChannel",
      "getChannel",
      "int",
      {},
      "file descriptor of the mass-transfer channel (backend side)",
      [](Invocation& inv) {
        std::string error;
        Frontend& frontend = inv.wafe->frontend();
        if (frontend.mass_channel_read_fd() < 0 && !frontend.SetupMassChannel(&error)) {
          return Result::Error(error);
        }
        return Result::Ok(std::to_string(frontend.mass_channel_backend_fd()));
      },
      false});

  reg.Register(CommandSpec{
      "setCommunicationVariable",
      "setCommunicationVariable",
      "void",
      {{ArgType::kVarName, "varName"},
       {ArgType::kInt, "byteCount"},
       {ArgType::kString, "completion"}},
      "store the next byteCount bytes from the mass channel into varName, "
      "then run the completion command",
      [](Invocation& inv) {
        Frontend& frontend = inv.wafe->frontend();
        if (frontend.mass_channel_read_fd() < 0) {
          std::string error;
          if (!frontend.SetupMassChannel(&error)) {
            return Result::Error(error);
          }
        }
        frontend.SetCommunicationVariable(inv.str(0),
                                          static_cast<std::size_t>(inv.integer(1)),
                                          inv.str(2));
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "backend",
      "backend",
      "String",
      {{ArgType::kString, "subcommand"},
       {ArgType::kString, "arg1", true},
       {ArgType::kString, "arg2", true}},
      "channel policy and supervision: status; supervise on|off; maxRestarts n; "
      "backoff initialMs ?maxMs?; queueLimit bytes; overflowPolicy "
      "block|dropOldest|fail; sendDeadline ms; highWater bytes ?script?; "
      "errorLimit n (trip after n consecutive %-line eval errors, 0 off); reset",
      [](Invocation& inv) {
        Frontend& frontend = inv.wafe->frontend();
        const std::string sub = inv.str(0);
        auto parse_num = [&inv](std::size_t i, long* out) {
          return wtcl::ParseInt(inv.str(i), out, nullptr);
        };
        if (sub == "status") {
          return Result::Ok(frontend.StatusText());
        }
        if (sub == "supervise") {
          if (!inv.present(1)) {
            return Result::Ok(frontend.supervise() ? "on" : "off");
          }
          if (inv.str(1) == "on") {
            frontend.set_supervise(true);
          } else if (inv.str(1) == "off") {
            frontend.set_supervise(false);
          } else {
            return Result::Error("backend supervise: expected on or off");
          }
          return Result::Ok();
        }
        if (sub == "reset") {
          frontend.ResetSupervision();
          return Result::Ok();
        }
        long value = 0;
        if (sub == "maxRestarts") {
          if (!inv.present(1) || !parse_num(1, &value) || value < 0) {
            return Result::Error("backend maxRestarts: expected a count >= 0");
          }
          frontend.set_max_restarts(static_cast<int>(value));
          return Result::Ok();
        }
        if (sub == "backoff") {
          long max_ms = 0;
          if (!inv.present(1) || !parse_num(1, &value) || value <= 0) {
            return Result::Error("backend backoff: expected initialMs > 0");
          }
          if (inv.present(2)) {
            if (!parse_num(2, &max_ms) || max_ms < value) {
              return Result::Error("backend backoff: maxMs must be >= initialMs");
            }
          } else {
            max_ms = frontend.backoff_max_ms();
          }
          frontend.set_backoff(static_cast<int>(value), static_cast<int>(max_ms));
          return Result::Ok();
        }
        if (sub == "queueLimit") {
          if (!inv.present(1) || !parse_num(1, &value) || value <= 0) {
            return Result::Error("backend queueLimit: expected a byte count > 0");
          }
          frontend.set_send_queue_limit(static_cast<std::size_t>(value));
          return Result::Ok();
        }
        if (sub == "overflowPolicy") {
          if (!inv.present(1)) {
            return Result::Error("backend overflowPolicy: expected block, dropOldest, or fail");
          }
          if (inv.str(1) == "block") {
            frontend.set_overflow_policy(OverflowPolicy::kBlock);
          } else if (inv.str(1) == "dropOldest") {
            frontend.set_overflow_policy(OverflowPolicy::kDropOldest);
          } else if (inv.str(1) == "fail") {
            frontend.set_overflow_policy(OverflowPolicy::kFail);
          } else {
            return Result::Error("backend overflowPolicy: expected block, dropOldest, or fail");
          }
          return Result::Ok();
        }
        if (sub == "sendDeadline") {
          if (!inv.present(1) || !parse_num(1, &value) || value < 0) {
            return Result::Error("backend sendDeadline: expected milliseconds >= 0");
          }
          frontend.set_send_deadline_ms(static_cast<int>(value));
          return Result::Ok();
        }
        if (sub == "highWater") {
          if (!inv.present(1) || !parse_num(1, &value) || value < 0) {
            return Result::Error("backend highWater: expected a byte count >= 0");
          }
          frontend.SetHighWater(static_cast<std::size_t>(value),
                                inv.present(2) ? inv.str(2) : std::string());
          return Result::Ok();
        }
        if (sub == "errorLimit") {
          if (!inv.present(1)) {
            return Result::Ok(std::to_string(frontend.eval_error_limit()));
          }
          if (!parse_num(1, &value) || value < 0) {
            return Result::Error("backend errorLimit: expected a count >= 0 (0 disables)");
          }
          frontend.set_eval_error_limit(static_cast<int>(value));
          return Result::Ok();
        }
        return Result::Error(
            "bad backend subcommand \"" + sub +
            "\": must be status, supervise, maxRestarts, backoff, queueLimit, "
            "overflowPolicy, sendDeadline, highWater, errorLimit, or reset");
      },
      false});

  reg.Register(CommandSpec{
      "backendExitCommand",
      "backendExitCommand",
      "String",
      {{ArgType::kString, "script", true}},
      "Tcl hook evaluated whenever the backend exits; backendExitReason, "
      "backendExitStatus, and backendRestarts are set first. Without an "
      "argument returns the current hook; an empty script clears it",
      [](Invocation& inv) {
        if (!inv.present(0)) {
          return Result::Ok(inv.wafe->frontend().exit_command());
        }
        inv.wafe->frontend().set_exit_command(inv.str(0));
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "commFault",
      "commFault",
      "String",
      {{ArgType::kString, "spec", true}},
      "deterministic channel fault injection (tests): \"kind=value,...\" with "
      "kinds shortWrites, eagain, eintr, hangupAfter, massEofAfter; \"clear\" "
      "resets; \"status\" or no argument reports the active faults",
      [](Invocation& inv) {
        Frontend& frontend = inv.wafe->frontend();
        if (!inv.present(0) || inv.str(0) == "status") {
          return Result::Ok(frontend.FaultStatusText());
        }
        std::string error;
        if (!frontend.ApplyFaultSpec(inv.str(0), &error)) {
          return Result::Error(error);
        }
        return Result::Ok();
      },
      false});

  // --- Fault containment -------------------------------------------------------

  reg.Register(CommandSpec{
      "evalLimit",
      "evalLimit",
      "String",
      {{ArgType::kString, "kind", true}, {ArgType::kString, "value", true}},
      "interpreter guards against runaway scripts: no argument reports all "
      "three limits; `evalLimit depth|steps|ms` reports one; with a value "
      "sets it (steps/ms 0 disables). Tripping raises a catchable `limit "
      "exceeded` error, sticky until evaluation unwinds to the top level",
      [](Invocation& inv) {
        wtcl::Interp& interp = inv.wafe->interp();
        if (!inv.present(0)) {
          return Result::Ok("depth " + std::to_string(interp.max_nesting()) + " steps " +
                            std::to_string(interp.max_steps()) + " ms " +
                            std::to_string(interp.max_eval_ms()));
        }
        const std::string kind = inv.str(0);
        if (kind != "depth" && kind != "steps" && kind != "ms") {
          return Result::Error("evalLimit: expected depth, steps, or ms");
        }
        if (!inv.present(1)) {
          if (kind == "depth") {
            return Result::Ok(std::to_string(interp.max_nesting()));
          }
          if (kind == "steps") {
            return Result::Ok(std::to_string(interp.max_steps()));
          }
          return Result::Ok(std::to_string(interp.max_eval_ms()));
        }
        std::string error;
        if (!ApplyEvalLimitSpec(interp, kind + "=" + inv.str(1), &error)) {
          return Result::Error("evalLimit: " + error);
        }
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "errorProc",
      "errorProc",
      "String",
      {{ArgType::kString, "script", true}},
      "Tcl hook receiving toolkit errors (errorName / errorMessage are set "
      "first); no argument returns the hook, an empty script restores the "
      "default log-and-continue handler",
      [](Invocation& inv) {
        if (!inv.present(0)) {
          return Result::Ok(inv.wafe->error_proc());
        }
        inv.wafe->set_error_proc(inv.str(0));
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "warningProc",
      "warningProc",
      "String",
      {{ArgType::kString, "script", true}},
      "Tcl hook receiving toolkit warnings (warningName / warningMessage are "
      "set first); no argument returns the hook, an empty script restores "
      "the default deduplicating handler",
      [](Invocation& inv) {
        if (!inv.present(0)) {
          return Result::Ok(inv.wafe->warning_proc());
        }
        inv.wafe->set_warning_proc(inv.str(0));
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "xtFault",
      "xtFault",
      "String",
      {{ArgType::kString, "spec", true}},
      "deterministic toolkit fault injection (tests): \"kind=value,...\" with "
      "kinds convertFail (next N conversions fail), allocFailAt (the Nth "
      "allocation from now fails), xerror=BadWindow|BadDrawable (deliver a "
      "synthetic X protocol error now); \"clear\" resets; \"status\" or no "
      "argument reports",
      [](Invocation& inv) {
        if (!inv.present(0) || inv.str(0) == "status") {
          return Result::Ok(XtFaultStatusText(*inv.wafe));
        }
        std::string error;
        if (!ApplyXtFaultSpec(*inv.wafe, inv.str(0), &error)) {
          return Result::Error(error);
        }
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "record",
      "record",
      "String",
      {{ArgType::kString, "subcommand", true},
       {ArgType::kString, "spec", true}},
      "session journaling: on <path>[,fsync=always|none|<N>] starts a "
      "journal, off stops it, rotate continues into <path>.<n>, status (or "
      "no argument) reports; WAFE_RECORD=<spec> starts one at launch",
      [](Invocation& inv) {
        Wafe& wafe = *inv.wafe;
        const std::string sub = inv.present(0) ? inv.str(0) : "status";
        if (sub == "status") {
          if (!wafe.recording()) {
            return Result::Ok("off");
          }
          return Result::Ok(wafe.recorder().StatusText());
        }
        if (sub == "on") {
          if (!inv.present(1)) {
            return Result::Error("record on: journal path required");
          }
          std::string error;
          if (!wafe.StartRecording(inv.str(1), &error)) {
            return Result::Error("record on: " + error);
          }
          return Result::Ok();
        }
        if (sub == "off") {
          wafe.StopRecording();
          return Result::Ok();
        }
        if (sub == "rotate") {
          if (!wafe.recording()) {
            return Result::Error("record rotate: not recording");
          }
          std::string error;
          if (!wafe.RotateRecording(&error)) {
            return Result::Error("record rotate: " + error);
          }
          return Result::Ok(wafe.recorder().path());
        }
        if (sub == "note") {
          if (wafe.recording()) {
            wafe.recorder().RecordNote(inv.present(1) ? inv.str(1) : "");
          }
          return Result::Ok();
        }
        return Result::Error("record: expected on, off, rotate, note, or status");
      },
      false});
}

// --- Fault-spec parsing (shared with the WAFE_* env vars) ----------------------------

namespace {

// Splits "kind=value,kind=value"; returns false on a part without '='.
bool SplitFaultSpec(const std::string& spec,
                    std::vector<std::pair<std::string, std::string>>* out, std::string* error) {
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) {
      comma = spec.size();
    }
    std::string part = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (part.empty()) {
      continue;
    }
    std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      *error = "expected kind=value, got \"" + part + "\"";
      return false;
    }
    out->emplace_back(part.substr(0, eq), part.substr(eq + 1));
  }
  return true;
}

bool ParseFaultNumber(const std::string& kind, const std::string& text, long* out,
                      std::string* error) {
  long value = 0;
  if (!wtcl::ParseInt(text, &value, nullptr) || value < 0) {
    *error = kind + ": expected a count >= 0, got \"" + text + "\"";
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

bool ApplyEvalLimitSpec(wtcl::Interp& interp, const std::string& spec, std::string* error) {
  std::vector<std::pair<std::string, std::string>> parts;
  if (!SplitFaultSpec(spec, &parts, error)) {
    return false;
  }
  for (const auto& [kind, text] : parts) {
    long value = 0;
    if (!ParseFaultNumber(kind, text, &value, error)) {
      return false;
    }
    if (kind == "depth") {
      if (value <= 0) {
        *error = "depth must be > 0";
        return false;
      }
      interp.set_max_nesting(static_cast<int>(value));
    } else if (kind == "steps") {
      interp.set_max_steps(static_cast<std::uint64_t>(value));
    } else if (kind == "ms") {
      interp.set_max_eval_ms(value);
    } else {
      *error = "unknown eval limit \"" + kind + "\": must be depth, steps, or ms";
      return false;
    }
  }
  return true;
}

bool ApplyXtFaultSpec(Wafe& wafe, const std::string& spec, std::string* error) {
  if (spec == "clear") {
    wafe.app().converters().InjectFailures(0);
    wafe.app().errors().faults() = xtk::XtFaults{};
    return true;
  }
  std::vector<std::pair<std::string, std::string>> parts;
  if (!SplitFaultSpec(spec, &parts, error)) {
    return false;
  }
  for (const auto& [kind, text] : parts) {
    if (kind == "xerror") {
      int code = 0;
      if (text == "BadWindow") {
        code = xsim::Display::kBadWindow;
      } else if (text == "BadDrawable") {
        code = xsim::Display::kBadDrawable;
      } else {
        *error = "xerror: expected BadWindow or BadDrawable, got \"" + text + "\"";
        return false;
      }
      wafe.app().display().InjectProtocolError(code, "xtFault", xsim::kNoWindow);
      continue;
    }
    long value = 0;
    if (!ParseFaultNumber(kind, text, &value, error)) {
      return false;
    }
    if (kind == "convertFail") {
      wafe.app().converters().InjectFailures(static_cast<int>(value));
    } else if (kind == "allocFailAt") {
      xtk::XtFaults& faults = wafe.app().errors().faults();
      faults.alloc_fail_at = value;
      faults.allocs_seen = 0;
    } else {
      *error = "unknown xtFault kind \"" + kind +
               "\": must be convertFail, allocFailAt, or xerror";
      return false;
    }
  }
  return true;
}

std::string XtFaultStatusText(Wafe& wafe) {
  const xtk::XtFaults& faults = wafe.app().errors().faults();
  std::string out;
  out += "convertFail " + std::to_string(wafe.app().converters().injected_failures_remaining());
  out += " allocFailAt " + std::to_string(faults.alloc_fail_at);
  out += " allocsSeen " + std::to_string(faults.allocs_seen);
  return out;
}

void RegisterObsCommands(Wafe& wafe) {
  SpecRegistry& reg = wafe.specs();

  reg.Register(CommandSpec{
      "metrics",
      "metrics",
      "String",
      {{ArgType::kString, "subcommand", true}, {ArgType::kString, "name", true}},
      "observability metrics: dump (default), prometheus (text exposition "
      "format), get <name>, reset, enable, disable",
      [](Invocation& inv) {
        std::string sub = inv.present(0) ? inv.str(0) : "dump";
        if (sub == "dump") {
          return Result::Ok(wobs::MetricsText());
        }
        if (sub == "prometheus") {
          return Result::Ok(wobs::MetricsPrometheus());
        }
        if (sub == "get") {
          if (!inv.present(1)) {
            return Result::Error("metrics get requires a metric name");
          }
          std::uint64_t value = 0;
          if (!wobs::Registry::Instance().GetMetric(inv.str(1), &value)) {
            return Result::Error("unknown metric \"" + inv.str(1) + "\"");
          }
          return Result::Ok(std::to_string(value));
        }
        if (sub == "reset") {
          wobs::Registry::Instance().ResetMetrics();
          return Result::Ok();
        }
        if (sub == "enable") {
          wobs::SetMetricsEnabled(true);
          return Result::Ok();
        }
        if (sub == "disable") {
          wobs::SetMetricsEnabled(false);
          return Result::Ok();
        }
        return Result::Error("bad metrics subcommand \"" + sub +
                             "\": must be dump, prometheus, get, reset, "
                             "enable, or disable");
      },
      false});

  reg.Register(CommandSpec{
      "converterCacheFlush",
      "converterCacheFlush",
      "int",
      {},
      "drop every memoized resource conversion (e.g. after the environment a "
      "converter consulted has changed); returns the number of entries dropped",
      [](Invocation& inv) {
        xtk::ConverterRegistry& converters = inv.wafe->app().converters();
        std::size_t dropped = converters.cache_size();
        converters.InvalidateCache();
        return Result::Ok(std::to_string(dropped));
      },
      false});

  reg.Register(CommandSpec{
      "scriptCacheFlush",
      "scriptCacheFlush",
      "int",
      {},
      "drop every memoized compiled script and expr AST (scripts re-compile "
      "on next evaluation); returns the number of entries dropped",
      [](Invocation& inv) {
        std::size_t dropped = inv.wafe->interp().FlushCompileCaches();
        return Result::Ok(std::to_string(dropped));
      },
      false});

  reg.Register(CommandSpec{
      "traceDump",
      "traceDump",
      "int",
      {{ArgType::kString, "fileName"}, {ArgType::kString, "format", true}},
      "write the trace ring to fileName (\"-\" returns it as the result) as "
      "Chrome trace_event JSON or, with format \"text\", one line per event; "
      "returns the number of events written",
      [](Invocation& inv) {
        std::string format = inv.present(1) ? inv.str(1) : "json";
        if (format != "json" && format != "text") {
          return Result::Error("bad trace format \"" + format +
                               "\": must be json or text");
        }
        std::ostringstream out;
        std::size_t events = 0;
        if (format == "json") {
          events = wobs::ExportChromeTrace(out);
        } else {
          std::string text = wobs::TraceText();
          events = wobs::Registry::Instance().ring().size();
          out << text;
        }
        if (inv.str(0) == "-") {
          return Result::Ok(out.str());
        }
        std::ofstream file(inv.str(0));
        if (!file) {
          return Result::Error("couldn't write trace file \"" + inv.str(0) + "\"");
        }
        file << out.str();
        return Result::Ok(std::to_string(events));
      },
      false});

  reg.Register(CommandSpec{
      "obsSlowThreshold",
      "obsSlowThreshold",
      "String",
      {{ArgType::kString, "ms", true}},
      "slow-span watchdog: with no argument returns the current threshold in "
      "milliseconds (0 = off); with one, sets it — callbacks, evals, and "
      "loop-lag stretches slower than the threshold are logged with their "
      "request id and counted in obs.slow.spans, independent of the "
      "metrics/trace gates",
      [](Invocation& inv) {
        if (inv.present(0)) {
          const std::string& arg = inv.str(0);
          double ms = 0;
          if (!wtcl::ParseDouble(arg, &ms, nullptr) || ms < 0) {
            return Result::Error("bad slow threshold \"" + arg +
                                 "\": must be a non-negative number of "
                                 "milliseconds");
          }
          wobs::SetSlowThresholdNs(static_cast<std::uint64_t>(ms * 1e6));
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g",
                      static_cast<double>(wobs::SlowThresholdNs()) / 1e6);
        return Result::Ok(buf);
      },
      false});

  reg.Register(CommandSpec{
      "flightDir",
      "flightDir",
      "String",
      {{ArgType::kString, "directory", true}},
      "fault flight recorder destination: with no argument returns the "
      "current directory (empty = recorder off, initialized from "
      "WAFE_FLIGHT_DIR); with one, sets it — circuit-breaker trips, eval "
      "limits, and toolkit errors then dump the trace ring and a metrics "
      "snapshot there before degradation proceeds",
      [](Invocation& inv) {
        if (inv.present(0)) {
          wobs::SetFlightDir(inv.str(0));
        }
        return Result::Ok(wobs::FlightDir());
      },
      false});

  reg.Register(CommandSpec{
      "flightDump",
      "flightDump",
      "String",
      {{ArgType::kString, "reason", true}},
      "write a flight record now (bypassing the rate limiter) and return its "
      "path; errors when no flight directory is configured",
      [](Invocation& inv) {
        std::string reason = inv.present(0) ? inv.str(0) : "manual";
        if (wobs::FlightDir().empty()) {
          return Result::Error(
              "no flight directory configured (flightDir / WAFE_FLIGHT_DIR)");
        }
        std::string path = wobs::DumpFlightRecord(reason, /*force=*/true);
        if (path.empty()) {
          return Result::Error("couldn't write flight record");
        }
        return Result::Ok(path);
      },
      false});

  reg.Register(CommandSpec{
      "traceEnable",
      "traceEnable",
      "void",
      {},
      "start recording trace events (implies metrics)",
      [](Invocation&) {
        wobs::SetTraceEnabled(true);
        wobs::SetMetricsEnabled(true);
        return Result::Ok();
      },
      false});

  reg.Register(CommandSpec{
      "traceDisable",
      "traceDisable",
      "void",
      {},
      "stop recording trace events",
      [](Invocation&) {
        wobs::SetTraceEnabled(false);
        return Result::Ok();
      },
      false});
}

}  // namespace wafe
