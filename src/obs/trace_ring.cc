#include "src/obs/obs.h"

namespace wobs {

namespace {

// Every event carries the ambient request id and lane of the moment it was
// pushed; a span pushed by a ScopedEvent destructor is still inside the
// RequestScope that covered its construction (comm opens the scope before
// the span), so capture-at-push and capture-at-construction agree.
void StampScope(TraceEvent* event) {
  event->request_id = CurrentRequestId();
  event->lane = CurrentLane();
  event->journal_pos = CurrentJournalPosition();
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  events_.resize(capacity_);
}

void TraceRing::Push(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (size_ == capacity_) {
    ++dropped_;  // the slot at head_ still holds the oldest event
  } else {
    ++size_;
  }
  events_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
}

void TraceRing::PushComplete(const char* category, std::string_view name,
                             std::uint64_t ts_ns, std::uint64_t dur_ns) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.category = category;
  event.name.assign(name);
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  StampScope(&event);
  Push(std::move(event));
}

void TraceRing::PushInstant(const char* category, std::string_view name,
                            std::uint64_t ts_ns) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.category = category;
  event.name.assign(name);
  event.ts_ns = ts_ns;
  StampScope(&event);
  Push(std::move(event));
}

void TraceRing::PushCounter(const char* category, std::string_view name,
                            std::uint64_t ts_ns, std::uint64_t value) {
  TraceEvent event;
  event.phase = TraceEvent::Phase::kCounter;
  event.category = category;
  event.name.assign(name);
  event.ts_ns = ts_ns;
  event.value = value;
  StampScope(&event);
  Push(std::move(event));
}

std::vector<TraceEvent> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(size_);
  // Oldest event: at head_ when full (head_ is about to overwrite it),
  // otherwise at slot 0 since a non-full ring has never wrapped.
  std::size_t start = size_ == capacity_ ? head_ : 0;
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(events_[(start + i) % capacity_]);
  }
  return out;
}

std::size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

std::size_t TraceRing::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

void TraceRing::SetCapacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  events_.assign(capacity_, TraceEvent{});
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

}  // namespace wobs
