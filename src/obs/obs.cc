#include "src/obs/obs.h"

#include <time.h>

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace wobs {

namespace {

// WAFE_OBS_SLOW: slow-span watchdog threshold in milliseconds (fractional
// allowed); unset or 0 leaves the watchdog disarmed.
std::uint64_t SlowNsFromEnv() {
  const char* ms = std::getenv("WAFE_OBS_SLOW");
  if (ms == nullptr || ms[0] == '\0') {
    return 0;
  }
  double value = std::strtod(ms, nullptr);
  return value > 0 ? static_cast<std::uint64_t>(value * 1e6) : 0;
}

unsigned MaskFromEnv() {
  unsigned mask = 0;
  const char* metrics = std::getenv("WAFE_METRICS");
  if (metrics != nullptr && metrics[0] != '\0' && metrics[0] != '0') {
    mask |= kMetricsBit;
  }
  const char* trace = std::getenv("WAFE_TRACE");
  if (trace != nullptr && trace[0] != '\0' && trace[0] != '0') {
    // Tracing implies metrics: a trace without the counters alongside is
    // rarely what anyone wants, and the paper-era env-var surface stays two
    // variables instead of three.
    mask |= kTraceBit | kMetricsBit;
  }
  if (SlowNsFromEnv() != 0) {
    mask |= kSlowBit;
  }
  return mask;
}

// Request-scope state: ambient, process-global (the event loop is single
// threaded; atomics keep concurrent readers like the trace ring race-free).
std::atomic<std::uint64_t> g_next_request_id{1};
std::atomic<std::uint64_t> g_current_request{0};
std::atomic<std::uint64_t> g_current_lane{kMainLane};

// Virtual clock (record/replay): non-zero freezes NowNs() at the value the
// replay engine last installed, so recorded sessions re-execute under the
// recorded timestamps. Journal position is the ambient record sequence
// number, stamped onto trace events alongside the request id.
std::atomic<std::uint64_t> g_virtual_now_ns{0};
std::atomic<std::uint64_t> g_journal_pos{0};

// Spans the watchdog flagged; ungated so the count survives metrics-off runs.
Counter g_slow_spans("obs.slow.spans");

}  // namespace

namespace internal {
std::atomic<unsigned> g_enabled{MaskFromEnv()};
std::atomic<std::uint64_t> g_slow_threshold_ns{SlowNsFromEnv()};

void NoteSlow(const char* category, std::string_view name, std::uint64_t dur_ns) {
  std::uint64_t threshold = g_slow_threshold_ns.load(std::memory_order_relaxed);
  if (threshold == 0 || dur_ns < threshold) {
    return;
  }
  g_slow_spans.IncrementAlways();
  std::string message = "slow span ";
  message.append(name);
  char detail[64];
  std::snprintf(detail, sizeof(detail), " took %.3fms (threshold %.3fms)",
                static_cast<double>(dur_ns) / 1e6,
                static_cast<double>(threshold) / 1e6);
  message += detail;
  if (std::uint64_t request = CurrentRequestId(); request != 0) {
    message += " request " + std::to_string(request);
  }
  Log(category, message, true);
}
}  // namespace internal

void SetMetricsEnabled(bool on) {
  if (on) {
    internal::g_enabled.fetch_or(kMetricsBit, std::memory_order_relaxed);
  } else {
    internal::g_enabled.fetch_and(~kMetricsBit, std::memory_order_relaxed);
  }
}

void SetTraceEnabled(bool on) {
  if (on) {
    internal::g_enabled.fetch_or(kTraceBit, std::memory_order_relaxed);
  } else {
    internal::g_enabled.fetch_and(~kTraceBit, std::memory_order_relaxed);
  }
}

void SetSlowThresholdNs(std::uint64_t ns) {
  internal::g_slow_threshold_ns.store(ns, std::memory_order_relaxed);
  if (ns != 0) {
    internal::g_enabled.fetch_or(kSlowBit, std::memory_order_relaxed);
  } else {
    internal::g_enabled.fetch_and(~kSlowBit, std::memory_order_relaxed);
  }
}

std::uint64_t SlowThresholdNs() {
  return internal::g_slow_threshold_ns.load(std::memory_order_relaxed);
}

// --- Request scope ------------------------------------------------------------

std::uint64_t CurrentRequestId() {
  return g_current_request.load(std::memory_order_relaxed);
}

std::uint64_t CurrentLane() {
  return g_current_lane.load(std::memory_order_relaxed);
}

void SetCurrentLane(std::uint64_t lane) {
  g_current_lane.store(lane, std::memory_order_relaxed);
}

RequestScope::RequestScope()
    : id_(g_next_request_id.fetch_add(1, std::memory_order_relaxed)),
      prev_id_(g_current_request.exchange(id_, std::memory_order_relaxed)),
      prev_lane_(g_current_lane.exchange(kRequestLane, std::memory_order_relaxed)) {}

RequestScope::~RequestScope() {
  g_current_request.store(prev_id_, std::memory_order_relaxed);
  g_current_lane.store(prev_lane_, std::memory_order_relaxed);
}

std::uint64_t NowNs() {
  if (std::uint64_t v = g_virtual_now_ns.load(std::memory_order_relaxed); v != 0) {
    return v;
  }
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void SetVirtualNowNs(std::uint64_t ns) {
  g_virtual_now_ns.store(ns, std::memory_order_relaxed);
}

bool VirtualClockActive() {
  return g_virtual_now_ns.load(std::memory_order_relaxed) != 0;
}

void SetJournalPosition(std::uint64_t seq) {
  g_journal_pos.store(seq, std::memory_order_relaxed);
}

std::uint64_t CurrentJournalPosition() {
  return g_journal_pos.load(std::memory_order_relaxed);
}

void Log(const char* category, const std::string& message, bool always) {
  if (!always && !AnyEnabled()) {
    return;
  }
  std::fprintf(stderr, "wafe[%s] t=%.3fms %s\n", category,
               static_cast<double>(NowNs()) / 1e6, message.c_str());
}

// --- Instruments -------------------------------------------------------------

Counter::Counter(const char* name) : name_(name) {
  Registry::Instance().Register(this);
}

Gauge::Gauge(const char* name) : name_(name) {
  Registry::Instance().Register(this);
}

MaxGauge::MaxGauge(const char* name) : name_(name) {
  Registry::Instance().Register(this);
}

Histogram::Histogram(const char* name) : name_(name) {
  Registry::Instance().Register(this);
}

void Histogram::Record(std::uint64_t ns) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (ns > cur &&
         !max_.compare_exchange_weak(cur, ns, std::memory_order_relaxed)) {
  }
  std::size_t bucket = static_cast<std::size_t>(std::bit_width(ns));
  if (bucket >= kBuckets) {
    bucket = kBuckets - 1;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::ApproxQuantileNs(double q) const {
  std::uint64_t total = Count();
  if (total == 0) {
    return 0;
  }
  // Smallest bucket whose cumulative share reaches q (round up: with 101
  // samples, p99.9 must land past the 100th sample).
  auto target = static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.9999);
  if (target == 0) {
    target = 1;
  }
  if (target > total) {
    target = total;
  }
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += BucketCount(i);
    if (cumulative >= target) {
      // Upper bound of bucket i: bit width i means value < 2^i.
      return i >= 64 ? ~0ull : (1ull << i) - 1;
    }
  }
  return MaxNs();
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

LabeledHistogram::LabeledHistogram(const char* prefix, std::size_t max_labels)
    : prefix_(prefix), max_labels_(max_labels == 0 ? 1 : max_labels) {}

void LabeledHistogram::Record(std::string_view label, std::uint64_t ns) {
  if (!MetricsEnabled()) {
    return;
  }
  Histogram* child;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    child = GetOrCreate(label);
  }
  child->Record(ns);
}

std::size_t LabeledHistogram::label_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return children_.size();
}

namespace {

// A child's registry name must live as long as the never-destroyed registry.
// A plain leaked buffer (rather than a leaked std::string) stays reachable
// through the Histogram's name pointer, so LeakSanitizer doesn't flag it.
const char* EternalName(const std::string& full) {
  char* name = new char[full.size() + 1];
  std::memcpy(name, full.c_str(), full.size() + 1);
  return name;
}

}  // namespace

Histogram* LabeledHistogram::GetOrCreate(std::string_view label) {
  // Keyed by the sanitized label: two raw labels that sanitize alike must
  // share one child, or the registry would hold duplicate names.
  std::string key;
  key.reserve(label.size());
  for (char c : label) {
    bool clean = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    key.push_back(clean ? c : '_');
    if (key.size() >= 48) {
      break;
    }
  }
  if (key.empty()) {
    key = "unknown";
  }
  auto it = children_.find(key);
  if (it != children_.end()) {
    return it->second;
  }
  if (children_.size() >= max_labels_) {
    if (other_ == nullptr) {
      other_ = new Histogram(EternalName(std::string(prefix_) + ".other"));
    }
    return other_;
  }
  auto* child = new Histogram(EternalName(std::string(prefix_) + "." + key));
  children_.emplace(std::move(key), child);
  return child;
}

// --- Registry ----------------------------------------------------------------

Registry& Registry::Instance() {
  static Registry* instance = new Registry();  // intentionally leaked
  return *instance;
}

void Registry::Register(Counter* counter) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.push_back(counter);
}

void Registry::Register(Gauge* gauge) {
  std::lock_guard<std::mutex> lock(mutex_);
  current_gauges_.push_back(gauge);
}

void Registry::Register(MaxGauge* gauge) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_.push_back(gauge);
}

void Registry::Register(Histogram* histogram) {
  std::lock_guard<std::mutex> lock(mutex_);
  histograms_.push_back(histogram);
}

std::vector<Counter*> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::vector<Gauge*> Registry::current_gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return current_gauges_;
}

std::vector<MaxGauge*> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_;
}

std::vector<Histogram*> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_;
}

void Registry::ResetMetrics() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Counter* counter : counters_) {
    counter->Reset();
  }
  for (Gauge* gauge : current_gauges_) {
    gauge->Reset();
  }
  for (MaxGauge* gauge : gauges_) {
    gauge->Reset();
  }
  for (Histogram* histogram : histograms_) {
    histogram->Reset();
  }
}

bool Registry::GetMetric(const std::string& name, std::uint64_t* value) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Counter* counter : counters_) {
    if (name == counter->name()) {
      *value = counter->Get();
      return true;
    }
  }
  for (const Gauge* gauge : current_gauges_) {
    if (name == gauge->name()) {
      *value = gauge->Get();
      return true;
    }
  }
  for (const MaxGauge* gauge : gauges_) {
    if (name == gauge->name()) {
      *value = gauge->Get();
      return true;
    }
  }
  for (const Histogram* histogram : histograms_) {
    if (name == histogram->name()) {
      *value = histogram->Count();
      return true;
    }
  }
  return false;
}

void TraceInstant(const char* category, std::string_view name) {
  if (TraceEnabled()) {
    Registry::Instance().ring().PushInstant(category, name, NowNs());
  }
}

}  // namespace wobs
