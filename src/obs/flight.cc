// The fault flight recorder: when a containment mechanism fires — the comm
// circuit breaker, an eval budget, a raised toolkit error — the trace ring
// and a metrics snapshot are dumped to a timestamped file before degradation
// proceeds, so the evidence of why survives the recovery (a respawned
// backend or an unwound eval overwrites the ring within seconds). The dump
// is regular Chrome trace JSON plus an otherData block, so it loads directly
// in Perfetto.
#include <time.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>

#include "src/obs/obs.h"

namespace wobs {

namespace {

// Ungated (IncrementAlways): a flight dump is an abnormal event worth
// counting even in an otherwise disabled session.
Counter g_flight_dumps("obs.flight.dumps");
Counter g_flight_suppressed("obs.flight.suppressed");

std::mutex g_mutex;
std::string g_dir;      // guarded by g_mutex
bool g_dir_set = false;  // env consulted at most once
std::uint64_t g_last_dump_ns = 0;
std::uint64_t g_sequence = 0;
FlightContextFn g_context_fn = nullptr;  // guarded by g_mutex
void* g_context_user = nullptr;

// A fault storm (a backend streaming failing %-lines, a translation raising
// per-event) must not turn into a disk-filling storm of identical dumps.
constexpr std::uint64_t kMinIntervalNs = 1000000000ull;

std::string SanitizeReason(const std::string& reason) {
  std::string out;
  for (char c : reason) {
    bool clean = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(clean ? c : '-');
    if (out.size() >= 48) {
      break;
    }
  }
  return out.empty() ? "unknown" : out;
}

}  // namespace

void SetFlightDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_dir = dir;
  g_dir_set = true;
  g_last_dump_ns = 0;  // a fresh destination re-arms the rate limiter
}

std::string FlightDir() {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_dir_set) {
    const char* env = std::getenv("WAFE_FLIGHT_DIR");
    g_dir = env != nullptr ? env : "";
    g_dir_set = true;
  }
  return g_dir;
}

void SetFlightContextProvider(FlightContextFn fn, void* user) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_context_fn = fn;
  g_context_user = user;
}

std::string FlightContextJson() {
  FlightContextFn fn;
  void* user;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    fn = g_context_fn;
    user = g_context_user;
  }
  // Invoked outside g_mutex: the provider may call back into obs (metrics,
  // Log) without deadlocking.
  return fn != nullptr ? fn(user) : std::string();
}

std::string DumpFlightRecord(const std::string& reason, bool force) {
  std::string dir = FlightDir();
  if (dir.empty()) {
    return "";
  }
  std::uint64_t now = NowNs();
  std::uint64_t sequence;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (!force && g_last_dump_ns != 0 && now - g_last_dump_ns < kMinIntervalNs) {
      g_flight_suppressed.IncrementAlways();
      return "";
    }
    g_last_dump_ns = now;
    sequence = ++g_sequence;
  }
  char stamp[32];
  time_t wall = ::time(nullptr);
  struct tm tm_buf {};
  ::localtime_r(&wall, &tm_buf);
  std::strftime(stamp, sizeof(stamp), "%Y%m%d-%H%M%S", &tm_buf);
  std::string path = dir + "/flight-" + stamp + "-" +
                     std::to_string(::getpid()) + "-" + std::to_string(sequence) +
                     "-" + SanitizeReason(reason) + ".json";
  std::string extra = "\"otherData\":{\"reason\":\"";
  internal::AppendJsonEscaped(reason, &extra);
  extra += "\",\"pid\":" + std::to_string(::getpid());
  extra += ",\"monotonic_ns\":" + std::to_string(now);
  // The request being handled when the trigger fired (0 outside a request):
  // the trace events with this id are the offending request's spans.
  extra += ",\"request\":" + std::to_string(CurrentRequestId());
  if (std::string context = FlightContextJson(); !context.empty()) {
    extra += "," + context;
  }
  extra += ",\"metrics\":\"";
  internal::AppendJsonEscaped(MetricsPrometheus(), &extra);
  extra += "\"}";
  std::ofstream out(path);
  if (!out) {
    Log("flight", "couldn't write flight record \"" + path + "\"", true);
    return "";
  }
  ExportChromeTrace(out, extra);
  out.close();
  if (!out) {
    Log("flight", "short write on flight record \"" + path + "\"", true);
    return "";
  }
  g_flight_dumps.IncrementAlways();
  Log("flight", "flight record (" + reason + ") written to " + path, true);
  return path;
}

}  // namespace wobs
