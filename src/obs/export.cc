// Exporters: the human-readable metrics/trace dumps, the Prometheus text
// exposition, and the Chrome trace_event JSON format (the "JSON Array
// Format" with a traceEvents wrapper; loadable in chrome://tracing and
// Perfetto).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <sstream>

#include "src/obs/obs.h"

namespace wobs {

namespace internal {

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace internal

namespace {

using internal::AppendJsonEscaped;

// Microseconds with fractional nanoseconds, the unit trace viewers expect.
std::string MicrosString(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

// Registration order is link order — not stable across builds and not
// meaningful to a reader — so every dump sorts its sections by name.
template <typename T>
std::vector<T*> SortedByName(std::vector<T*> items) {
  std::sort(items.begin(), items.end(), [](const T* a, const T* b) {
    return std::strcmp(a->name(), b->name()) < 0;
  });
  return items;
}

// Prometheus metric name: [a-zA-Z0-9_] only, so dots (and anything else)
// become underscores under a wafe_ prefix.
std::string PromName(const char* name, const char* suffix = "") {
  std::string out = "wafe_";
  for (const char* p = name; *p != '\0'; ++p) {
    char c = *p;
    bool clean = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_';
    out.push_back(clean ? c : '_');
  }
  out += suffix;
  return out;
}

// Upper bound (ns) of log2 bucket i: samples there have bit width i, i.e.
// value <= 2^i - 1.
std::uint64_t BucketUpperNs(std::size_t i) {
  return i >= 64 ? ~0ull : (1ull << i) - 1;
}

}  // namespace

std::string MetricsText() {
  Registry& registry = Registry::Instance();
  std::ostringstream out;
  out << "== counters ==\n";
  for (const Counter* counter : SortedByName(registry.counters())) {
    out << counter->name() << " " << counter->Get() << "\n";
  }
  out << "== gauges (current) ==\n";
  for (const Gauge* gauge : SortedByName(registry.current_gauges())) {
    out << gauge->name() << " " << gauge->Get() << "\n";
  }
  out << "== gauges (max) ==\n";
  for (const MaxGauge* gauge : SortedByName(registry.gauges())) {
    out << gauge->name() << " " << gauge->Get() << "\n";
  }
  out << "== histograms (ns) ==\n";
  for (const Histogram* histogram : SortedByName(registry.histograms())) {
    std::uint64_t count = histogram->Count();
    out << histogram->name() << " count=" << count;
    if (count > 0) {
      out << " mean=" << histogram->SumNs() / count
          << " p50<=" << histogram->ApproxQuantileNs(0.50)
          << " p99<=" << histogram->ApproxQuantileNs(0.99)
          << " max=" << histogram->MaxNs();
    }
    out << "\n";
  }
  const TraceRing& ring = registry.ring();
  out << "== trace ring ==\n"
      << "events " << ring.size() << " / " << ring.capacity() << " (dropped "
      << ring.dropped() << ")\n";
  return out.str();
}

std::string MetricsPrometheus() {
  Registry& registry = Registry::Instance();
  std::ostringstream out;
  for (const Counter* counter : SortedByName(registry.counters())) {
    std::string name = PromName(counter->name());
    out << "# TYPE " << name << " counter\n"
        << name << " " << counter->Get() << "\n";
  }
  for (const Gauge* gauge : SortedByName(registry.current_gauges())) {
    std::string name = PromName(gauge->name());
    out << "# TYPE " << name << " gauge\n" << name << " " << gauge->Get() << "\n";
  }
  for (const MaxGauge* gauge : SortedByName(registry.gauges())) {
    std::string name = PromName(gauge->name());
    out << "# TYPE " << name << " gauge\n" << name << " " << gauge->Get() << "\n";
  }
  for (const Histogram* histogram : SortedByName(registry.histograms())) {
    std::string name = PromName(histogram->name(), "_ns");
    out << "# TYPE " << name << " histogram\n";
    // Cumulative le-buckets; empty buckets are elided (the cumulative counts
    // carry their information), +Inf closes the family as required.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      std::uint64_t in_bucket = histogram->BucketCount(i);
      if (in_bucket == 0) {
        continue;
      }
      cumulative += in_bucket;
      out << name << "_bucket{le=\"" << BucketUpperNs(i) << "\"} " << cumulative
          << "\n";
    }
    out << name << "_bucket{le=\"+Inf\"} " << histogram->Count() << "\n"
        << name << "_sum " << histogram->SumNs() << "\n"
        << name << "_count " << histogram->Count() << "\n";
  }
  const TraceRing& ring = registry.ring();
  out << "# TYPE wafe_trace_ring_events gauge\n"
      << "wafe_trace_ring_events " << ring.size() << "\n"
      << "# TYPE wafe_trace_ring_dropped counter\n"
      << "wafe_trace_ring_dropped " << ring.dropped() << "\n";
  return out.str();
}

std::size_t ExportChromeTrace(std::ostream& out, std::string_view extra_json) {
  std::vector<TraceEvent> events = Registry::Instance().ring().Snapshot();
  const std::string pid = std::to_string(::getpid());
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    std::string entry = first ? "\n{" : ",\n{";
    first = false;
    entry += "\"name\":\"";
    AppendJsonEscaped(event.name, &entry);
    entry += "\",\"cat\":\"";
    AppendJsonEscaped(event.category, &entry);
    // Real pid, and the lane as tid: request work renders on its own lane
    // (and per-session lanes later) instead of one flat track.
    entry += "\",\"pid\":" + pid + ",\"tid\":" + std::to_string(event.lane) +
             ",\"ts\":" + MicrosString(event.ts_ns);
    std::string args;
    if (event.request_id != 0) {
      args = "\"req\":" + std::to_string(event.request_id);
    }
    if (event.journal_pos != 0) {
      args += (args.empty() ? "" : ",");
      args += "\"jpos\":" + std::to_string(event.journal_pos);
    }
    switch (event.phase) {
      case TraceEvent::Phase::kComplete:
        entry += ",\"ph\":\"X\",\"dur\":" + MicrosString(event.dur_ns);
        break;
      case TraceEvent::Phase::kInstant:
        entry += ",\"ph\":\"i\",\"s\":\"g\"";
        break;
      case TraceEvent::Phase::kCounter:
        entry += ",\"ph\":\"C\"";
        args = "\"value\":" + std::to_string(event.value) +
               (args.empty() ? "" : "," + args);
        break;
    }
    if (!args.empty()) {
      entry += ",\"args\":{" + args + "}";
    }
    entry += "}";
    out << entry;
  }
  out << "\n],\"displayTimeUnit\":\"ms\"";
  if (!extra_json.empty()) {
    out << ",";
    out.write(extra_json.data(), static_cast<std::streamsize>(extra_json.size()));
  }
  out << "}\n";
  return events.size();
}

std::string TraceText() {
  std::vector<TraceEvent> events = Registry::Instance().ring().Snapshot();
  std::ostringstream out;
  for (const TraceEvent& event : events) {
    out << MicrosString(event.ts_ns) << "us [" << event.category << "] "
        << event.name;
    switch (event.phase) {
      case TraceEvent::Phase::kComplete:
        out << " dur=" << MicrosString(event.dur_ns) << "us";
        break;
      case TraceEvent::Phase::kInstant:
        break;
      case TraceEvent::Phase::kCounter:
        out << " value=" << event.value;
        break;
    }
    if (event.request_id != 0) {
      out << " req=" << event.request_id;
    }
    if (event.journal_pos != 0) {
      out << " jpos=" << event.journal_pos;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace wobs
