// Exporters: the human-readable metrics/trace dumps and the Chrome
// trace_event JSON format (the "JSON Array Format" with a traceEvents
// wrapper; loadable in chrome://tracing and Perfetto).
#include <cstdio>
#include <ostream>
#include <sstream>

#include "src/obs/obs.h"

namespace wobs {

namespace {

void AppendJsonEscaped(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

// Microseconds with fractional nanoseconds, the unit trace viewers expect.
std::string MicrosString(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string MetricsText() {
  Registry& registry = Registry::Instance();
  std::ostringstream out;
  out << "== counters ==\n";
  for (const Counter* counter : registry.counters()) {
    out << counter->name() << " " << counter->Get() << "\n";
  }
  out << "== gauges (current) ==\n";
  for (const Gauge* gauge : registry.current_gauges()) {
    out << gauge->name() << " " << gauge->Get() << "\n";
  }
  out << "== gauges (max) ==\n";
  for (const MaxGauge* gauge : registry.gauges()) {
    out << gauge->name() << " " << gauge->Get() << "\n";
  }
  out << "== histograms (ns) ==\n";
  for (const Histogram* histogram : registry.histograms()) {
    std::uint64_t count = histogram->Count();
    out << histogram->name() << " count=" << count;
    if (count > 0) {
      out << " mean=" << histogram->SumNs() / count
          << " p50<=" << histogram->ApproxQuantileNs(0.50)
          << " p99<=" << histogram->ApproxQuantileNs(0.99)
          << " max=" << histogram->MaxNs();
    }
    out << "\n";
  }
  const TraceRing& ring = registry.ring();
  out << "== trace ring ==\n"
      << "events " << ring.size() << " / " << ring.capacity() << " (dropped "
      << ring.dropped() << ")\n";
  return out.str();
}

std::size_t ExportChromeTrace(std::ostream& out) {
  std::vector<TraceEvent> events = Registry::Instance().ring().Snapshot();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    std::string entry = first ? "\n{" : ",\n{";
    first = false;
    entry += "\"name\":\"";
    AppendJsonEscaped(event.name, &entry);
    entry += "\",\"cat\":\"";
    AppendJsonEscaped(event.category, &entry);
    entry += "\",\"pid\":1,\"tid\":1,\"ts\":" + MicrosString(event.ts_ns);
    switch (event.phase) {
      case TraceEvent::Phase::kComplete:
        entry += ",\"ph\":\"X\",\"dur\":" + MicrosString(event.dur_ns);
        break;
      case TraceEvent::Phase::kInstant:
        entry += ",\"ph\":\"i\",\"s\":\"g\"";
        break;
      case TraceEvent::Phase::kCounter:
        entry += ",\"ph\":\"C\",\"args\":{\"value\":" +
                 std::to_string(event.value) + "}";
        break;
    }
    entry += "}";
    out << entry;
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return events.size();
}

std::string TraceText() {
  std::vector<TraceEvent> events = Registry::Instance().ring().Snapshot();
  std::ostringstream out;
  for (const TraceEvent& event : events) {
    out << MicrosString(event.ts_ns) << "us [" << event.category << "] "
        << event.name;
    switch (event.phase) {
      case TraceEvent::Phase::kComplete:
        out << " dur=" << MicrosString(event.dur_ns) << "us";
        break;
      case TraceEvent::Phase::kInstant:
        break;
      case TraceEvent::Phase::kCounter:
        out << " value=" << event.value;
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace wobs
