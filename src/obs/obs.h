// wobs: the observability layer every hot path reports into — counters,
// high-water gauges, log2-bucketed duration histograms, and a fixed-capacity
// ring buffer of trace spans exportable as Chrome trace_event JSON. The
// whole layer sits behind one enable mask (WAFE_METRICS / WAFE_TRACE or the
// traceEnable / metrics commands): a disabled site costs a single relaxed
// atomic load and branch, so instrumentation can stay in the hot paths
// permanently. Instruments register themselves by construction and must
// have static storage duration; the registry is never destroyed.
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wobs {

// Bits of the global enable mask.
inline constexpr unsigned kMetricsBit = 1u;
inline constexpr unsigned kTraceBit = 2u;
// Set while the slow-span watchdog is armed (SetSlowThresholdNs != 0): a
// ScopedEvent then times its scope even with metrics and tracing both off.
inline constexpr unsigned kSlowBit = 4u;

namespace internal {
// Initialized from WAFE_METRICS / WAFE_TRACE / WAFE_OBS_SLOW before main;
// flipped at runtime by SetMetricsEnabled / SetTraceEnabled /
// SetSlowThresholdNs (and the Wafe commands they back).
extern std::atomic<unsigned> g_enabled;
extern std::atomic<std::uint64_t> g_slow_threshold_ns;
// Logs and counts a span that outran the watchdog threshold (called from
// ScopedEvent's destructor and the loop-lag probe while kSlowBit is set).
void NoteSlow(const char* category, std::string_view name, std::uint64_t dur_ns);
}  // namespace internal

// The single-branch fast path every instrumented site starts with.
inline unsigned EnabledMask() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline bool MetricsEnabled() { return (EnabledMask() & kMetricsBit) != 0; }
inline bool TraceEnabled() { return (EnabledMask() & kTraceBit) != 0; }
inline bool AnyEnabled() { return EnabledMask() != 0; }

void SetMetricsEnabled(bool on);
void SetTraceEnabled(bool on);

// Slow-span watchdog threshold in nanoseconds; 0 (the default) disarms it.
// Initialized from WAFE_OBS_SLOW (milliseconds, fractional allowed). While
// armed, every ScopedEvent that runs longer than the threshold is logged to
// stderr with the ambient request id and counted in obs.slow.spans —
// independently of the metrics/trace gates, so the watchdog can stay on in
// an otherwise uninstrumented production session.
void SetSlowThresholdNs(std::uint64_t ns);
std::uint64_t SlowThresholdNs();

// Monotonic clock, nanoseconds (CLOCK_MONOTONIC) — unless a replay has
// installed a virtual time below, in which case that value is returned
// verbatim so every time-dependent decision (eval-limit watchdog arming,
// supervision backoff arithmetic, span timestamps) re-executes under the
// recorded clock instead of the wall clock.
std::uint64_t NowNs();

// --- Virtual clock (record/replay) --------------------------------------------
//
// While non-zero, NowNs() returns this value instead of reading
// CLOCK_MONOTONIC. The replay engine advances it to each journal record's
// recorded timestamp before applying the record; 0 restores the real clock.
void SetVirtualNowNs(std::uint64_t ns);
bool VirtualClockActive();

// --- Journal position ---------------------------------------------------------
//
// Sequence number of the journal record currently being recorded or replayed;
// stamped onto every trace event pushed in its extent ("jpos" in the Chrome
// export) so a span maps back to the exact journal record that produced it.
// 0 = no journal active.
void SetJournalPosition(std::uint64_t seq);
std::uint64_t CurrentJournalPosition();

// Lifecycle / diagnostic log line to stderr, stamped with the monotonic
// clock ("wafe[cat] t=12.345ms message"). Suppressed while the layer is
// disabled unless `always` (abnormal events: signals, exec failures).
void Log(const char* category, const std::string& message, bool always = false);

// --- Request scope ------------------------------------------------------------
//
// Each inbound %-protocol line is one request: comm opens a RequestScope, and
// every trace event pushed inside its dynamic extent — the protocol-line span
// itself, the Tcl eval, the callbacks and actions it triggers, the damage
// flush they cause — is stamped with the request id ("args":{"req":N} in the
// Chrome export) and rendered on the request lane. The id is ambient (a
// process-global read at push time) rather than a parameter threaded through
// Interp::Eval: a %-line is handled in one dynamic extent on the event-loop
// thread, so scoping beats plumbing a parameter through four layers.

// Trace lanes ("tid" in the Chrome export): event-loop housekeeping renders
// on the main lane, %-request work on the request lane, and the planned
// multi-session server will allocate one lane per session via SetCurrentLane.
inline constexpr std::uint64_t kMainLane = 1;
inline constexpr std::uint64_t kRequestLane = 2;

std::uint64_t CurrentRequestId();  // 0 outside any request scope
std::uint64_t CurrentLane();
void SetCurrentLane(std::uint64_t lane);

// RAII: allocates the next request id and makes it (and the request lane)
// ambient for the enclosed scope; nests, restoring the previous id on exit.
class RequestScope {
 public:
  RequestScope();
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  std::uint64_t id() const { return id_; }

 private:
  std::uint64_t id_;
  std::uint64_t prev_id_;
  std::uint64_t prev_lane_;
};

// --- Instruments -------------------------------------------------------------
//
// All three register themselves with the global registry on construction;
// define them with static storage duration at the instrumented site.

class Counter {
 public:
  explicit Counter(const char* name);

  const char* name() const { return name_; }
  void Increment(std::uint64_t n = 1) {
    if (MetricsEnabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  // Ungated: for meta-instruments whose own switch lives elsewhere (the slow
  // watchdog's threshold, the flight recorder's directory) and that must
  // count abnormal events even in an otherwise disabled session.
  void IncrementAlways(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const char* name_;
  std::atomic<std::uint64_t> value_{0};
};

// Records the last value set (current queue depth, outstanding restarts).
class Gauge {
 public:
  explicit Gauge(const char* name);

  const char* name() const { return name_; }
  void Set(std::uint64_t v) {
    if (MetricsEnabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  std::uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const char* name_;
  std::atomic<std::uint64_t> value_{0};
};

// Records the maximum value ever observed (queue-depth high-water marks).
class MaxGauge {
 public:
  explicit MaxGauge(const char* name);

  const char* name() const { return name_; }
  void Observe(std::uint64_t v) {
    if (!MetricsEnabled()) {
      return;
    }
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const char* name_;
  std::atomic<std::uint64_t> value_{0};
};

// Duration histogram: nanosecond samples in log2 buckets (bucket i holds
// samples whose bit width is i, i.e. upper bound 2^i - 1 ns), plus exact
// count / sum / max for means. ~40 buckets cover up to ~18 minutes.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  explicit Histogram(const char* name);

  const char* name() const { return name_; }
  void Record(std::uint64_t ns);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t SumNs() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t MaxNs() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Upper bound (ns) of the bucket where the cumulative count reaches the
  // given quantile (0 < q <= 1); 0 when empty.
  std::uint64_t ApproxQuantileNs(double q) const;
  void Reset();

 private:
  const char* name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

// A histogram fanned out over a small dynamic label set (per-command request
// latency): Record(label, ns) routes to a lazily created child Histogram
// named "<prefix>.<label>", registered like any static instrument and thus
// visible to metrics get / dump / prometheus. The label set is bounded: once
// `max_labels` distinct labels exist, further labels fold into
// "<prefix>.other". Children (and their name strings) are intentionally
// leaked — the registry keeps raw instrument pointers forever.
class LabeledHistogram {
 public:
  explicit LabeledHistogram(const char* prefix, std::size_t max_labels = 16);

  LabeledHistogram(const LabeledHistogram&) = delete;
  LabeledHistogram& operator=(const LabeledHistogram&) = delete;

  void Record(std::string_view label, std::uint64_t ns);
  std::size_t label_count() const;

 private:
  // Called with mutex_ held.
  Histogram* GetOrCreate(std::string_view label);

  const char* prefix_;
  std::size_t max_labels_;
  mutable std::mutex mutex_;
  std::map<std::string, Histogram*, std::less<>> children_;
  Histogram* other_ = nullptr;
};

// --- Trace ring --------------------------------------------------------------

struct TraceEvent {
  enum class Phase : std::uint8_t {
    kComplete,  // a span with a duration ("ph":"X")
    kInstant,   // a point event ("ph":"i")
    kCounter,   // a sampled value ("ph":"C")
  };
  Phase phase = Phase::kComplete;
  const char* category = "";
  std::string name;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  // kComplete only
  std::uint64_t value = 0;   // kCounter only
  // Stamped from the ambient request scope at push time.
  std::uint64_t request_id = 0;   // 0 = outside any request
  std::uint64_t lane = kMainLane;  // "tid" in the Chrome export
  // Ambient journal position at push time ("jpos" in the Chrome export);
  // 0 = no session journal active.
  std::uint64_t journal_pos = 0;
};

// Fixed-capacity ring of trace events: once full the oldest event is
// overwritten (and counted as dropped), so a long session keeps the most
// recent window instead of growing without bound.
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 16384;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  void PushComplete(const char* category, std::string_view name,
                    std::uint64_t ts_ns, std::uint64_t dur_ns);
  void PushInstant(const char* category, std::string_view name,
                   std::uint64_t ts_ns);
  void PushCounter(const char* category, std::string_view name,
                   std::uint64_t ts_ns, std::uint64_t value);

  // Oldest-first copy of the buffered events.
  std::vector<TraceEvent> Snapshot() const;
  std::size_t size() const;
  std::size_t capacity() const;
  std::uint64_t dropped() const;
  // Drops all buffered events (capacity unchanged).
  void Clear();
  // Resizes the ring, dropping buffered events.
  void SetCapacity(std::size_t capacity);

 private:
  void Push(TraceEvent event);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;  // storage, capacity slots
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

// --- Registry ----------------------------------------------------------------

class Registry {
 public:
  // Never destroyed: instruments with static storage duration may outlive
  // any static destructor ordering.
  static Registry& Instance();

  void Register(Counter* counter);
  void Register(Gauge* gauge);
  void Register(MaxGauge* gauge);
  void Register(Histogram* histogram);

  TraceRing& ring() { return ring_; }

  // Snapshot accessors (export.cc).
  std::vector<Counter*> counters() const;
  std::vector<Gauge*> current_gauges() const;
  std::vector<MaxGauge*> gauges() const;
  std::vector<Histogram*> histograms() const;

  // Zeroes every counter, gauge, and histogram.
  void ResetMetrics();
  // Value of a named instrument (histograms report their sample count).
  // Returns false when no instrument has that name.
  bool GetMetric(const std::string& name, std::uint64_t* value) const;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::vector<Counter*> counters_;
  std::vector<Gauge*> current_gauges_;
  std::vector<MaxGauge*> gauges_;
  std::vector<Histogram*> histograms_;
  TraceRing ring_;
};

// --- Scoped instrumentation ---------------------------------------------------

// The one-liner for a hot path: times the enclosing scope into `histogram`
// (metrics) and emits a complete span (trace). Disabled cost: one relaxed
// load and branch at construction, one at destruction. `name` must outlive
// the scope (the ring copies it only at destruction).
class ScopedEvent {
 public:
  ScopedEvent(const char* category, std::string_view name,
              Histogram* histogram = nullptr)
      : mask_(EnabledMask()) {
    if (mask_ == 0) {
      return;
    }
    category_ = category;
    name_ = name;
    histogram_ = histogram;
    start_ns_ = NowNs();
  }

  ~ScopedEvent() {
    if (mask_ == 0) {
      return;
    }
    std::uint64_t dur = NowNs() - start_ns_;
    if ((mask_ & kMetricsBit) != 0 && histogram_ != nullptr) {
      histogram_->Record(dur);
    }
    if ((mask_ & kTraceBit) != 0) {
      Registry::Instance().ring().PushComplete(category_, name_, start_ns_, dur);
    }
    if ((mask_ & kSlowBit) != 0) {
      internal::NoteSlow(category_, name_, dur);
    }
  }

  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

 private:
  unsigned mask_;
  const char* category_ = "";
  std::string_view name_;
  Histogram* histogram_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

// Emits an instant trace event (no-op unless tracing).
void TraceInstant(const char* category, std::string_view name);

// --- Export (export.cc) -------------------------------------------------------

// Human-readable dump of every counter, gauge, and histogram. Each section
// is sorted by instrument name, so dumps diff cleanly across builds.
std::string MetricsText();

// Prometheus text exposition: one wafe_-prefixed family per instrument
// (dots become underscores), histograms in nanoseconds with cumulative
// le-buckets. Scrape this via `metrics prometheus` or WAFE_METRICS_DUMP.
std::string MetricsPrometheus();

// Writes the buffered trace as Chrome trace_event JSON ("chrome://tracing" /
// Perfetto loadable). `extra_json`, when non-empty, is spliced in as
// additional top-level members (the flight recorder's otherData block).
// Returns the number of events written.
std::size_t ExportChromeTrace(std::ostream& out, std::string_view extra_json = {});

// Human-readable one-line-per-span dump of the buffered trace.
std::string TraceText();

namespace internal {
// JSON string-body escaper shared by the exporters and the flight recorder.
void AppendJsonEscaped(std::string_view text, std::string* out);
}  // namespace internal

// --- Flight recorder (flight.cc) ----------------------------------------------

// Directory flight records are written to; empty (the default) disables the
// recorder. Read lazily from WAFE_FLIGHT_DIR on first use; SetFlightDir
// overrides the environment and re-arms the dump rate limiter.
void SetFlightDir(const std::string& dir);
std::string FlightDir();

// Dumps the trace ring plus a metrics snapshot to a timestamped JSON file in
// the flight directory — called automatically when the comm circuit breaker
// trips, an eval budget fires, or a toolkit error is raised, so the evidence
// of why survives the recovery that follows. The file is regular Chrome
// trace JSON (loads in Perfetto) with reason/pid/metrics under otherData.
// Returns the file path, or "" when disabled, rate-limited (at most one dump
// per second unless `force`), or the write failed.
std::string DumpFlightRecord(const std::string& reason, bool force = false);

// Extra context spliced into every flight record's otherData block. The
// provider returns either "" or one-or-more complete `"key":value` JSON
// members (no trailing comma) — e.g. the session recorder contributes the
// active journal path and the last recorded %-lines so a flight dump is
// immediately replayable. Pass nullptr to clear. The obs layer cannot
// depend on core, so this is the inversion point.
using FlightContextFn = std::string (*)(void* user);
void SetFlightContextProvider(FlightContextFn fn, void* user);
std::string FlightContextJson();

}  // namespace wobs

#endif  // SRC_OBS_OBS_H_
