// wobs: the observability layer every hot path reports into — counters,
// high-water gauges, log2-bucketed duration histograms, and a fixed-capacity
// ring buffer of trace spans exportable as Chrome trace_event JSON. The
// whole layer sits behind one enable mask (WAFE_METRICS / WAFE_TRACE or the
// traceEnable / metrics commands): a disabled site costs a single relaxed
// atomic load and branch, so instrumentation can stay in the hot paths
// permanently. Instruments register themselves by construction and must
// have static storage duration; the registry is never destroyed.
#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wobs {

// Bits of the global enable mask.
inline constexpr unsigned kMetricsBit = 1u;
inline constexpr unsigned kTraceBit = 2u;

namespace internal {
// Initialized from WAFE_METRICS / WAFE_TRACE before main; flipped at runtime
// by SetMetricsEnabled / SetTraceEnabled (and the Wafe commands they back).
extern std::atomic<unsigned> g_enabled;
}  // namespace internal

// The single-branch fast path every instrumented site starts with.
inline unsigned EnabledMask() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline bool MetricsEnabled() { return (EnabledMask() & kMetricsBit) != 0; }
inline bool TraceEnabled() { return (EnabledMask() & kTraceBit) != 0; }
inline bool AnyEnabled() { return EnabledMask() != 0; }

void SetMetricsEnabled(bool on);
void SetTraceEnabled(bool on);

// Monotonic clock, nanoseconds (CLOCK_MONOTONIC).
std::uint64_t NowNs();

// Lifecycle / diagnostic log line to stderr, stamped with the monotonic
// clock ("wafe[cat] t=12.345ms message"). Suppressed while the layer is
// disabled unless `always` (abnormal events: signals, exec failures).
void Log(const char* category, const std::string& message, bool always = false);

// --- Instruments -------------------------------------------------------------
//
// All three register themselves with the global registry on construction;
// define them with static storage duration at the instrumented site.

class Counter {
 public:
  explicit Counter(const char* name);

  const char* name() const { return name_; }
  void Increment(std::uint64_t n = 1) {
    if (MetricsEnabled()) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  std::uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const char* name_;
  std::atomic<std::uint64_t> value_{0};
};

// Records the last value set (current queue depth, outstanding restarts).
class Gauge {
 public:
  explicit Gauge(const char* name);

  const char* name() const { return name_; }
  void Set(std::uint64_t v) {
    if (MetricsEnabled()) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  std::uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const char* name_;
  std::atomic<std::uint64_t> value_{0};
};

// Records the maximum value ever observed (queue-depth high-water marks).
class MaxGauge {
 public:
  explicit MaxGauge(const char* name);

  const char* name() const { return name_; }
  void Observe(std::uint64_t v) {
    if (!MetricsEnabled()) {
      return;
    }
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  const char* name_;
  std::atomic<std::uint64_t> value_{0};
};

// Duration histogram: nanosecond samples in log2 buckets (bucket i holds
// samples whose bit width is i, i.e. upper bound 2^i - 1 ns), plus exact
// count / sum / max for means. ~40 buckets cover up to ~18 minutes.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  explicit Histogram(const char* name);

  const char* name() const { return name_; }
  void Record(std::uint64_t ns);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t SumNs() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t MaxNs() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Upper bound (ns) of the bucket where the cumulative count reaches the
  // given quantile (0 < q <= 1); 0 when empty.
  std::uint64_t ApproxQuantileNs(double q) const;
  void Reset();

 private:
  const char* name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

// --- Trace ring --------------------------------------------------------------

struct TraceEvent {
  enum class Phase : std::uint8_t {
    kComplete,  // a span with a duration ("ph":"X")
    kInstant,   // a point event ("ph":"i")
    kCounter,   // a sampled value ("ph":"C")
  };
  Phase phase = Phase::kComplete;
  const char* category = "";
  std::string name;
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;  // kComplete only
  std::uint64_t value = 0;   // kCounter only
};

// Fixed-capacity ring of trace events: once full the oldest event is
// overwritten (and counted as dropped), so a long session keeps the most
// recent window instead of growing without bound.
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 16384;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  void PushComplete(const char* category, std::string_view name,
                    std::uint64_t ts_ns, std::uint64_t dur_ns);
  void PushInstant(const char* category, std::string_view name,
                   std::uint64_t ts_ns);
  void PushCounter(const char* category, std::string_view name,
                   std::uint64_t ts_ns, std::uint64_t value);

  // Oldest-first copy of the buffered events.
  std::vector<TraceEvent> Snapshot() const;
  std::size_t size() const;
  std::size_t capacity() const;
  std::uint64_t dropped() const;
  // Drops all buffered events (capacity unchanged).
  void Clear();
  // Resizes the ring, dropping buffered events.
  void SetCapacity(std::size_t capacity);

 private:
  void Push(TraceEvent event);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;  // storage, capacity slots
  std::size_t capacity_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

// --- Registry ----------------------------------------------------------------

class Registry {
 public:
  // Never destroyed: instruments with static storage duration may outlive
  // any static destructor ordering.
  static Registry& Instance();

  void Register(Counter* counter);
  void Register(Gauge* gauge);
  void Register(MaxGauge* gauge);
  void Register(Histogram* histogram);

  TraceRing& ring() { return ring_; }

  // Snapshot accessors (export.cc).
  std::vector<Counter*> counters() const;
  std::vector<Gauge*> current_gauges() const;
  std::vector<MaxGauge*> gauges() const;
  std::vector<Histogram*> histograms() const;

  // Zeroes every counter, gauge, and histogram.
  void ResetMetrics();
  // Value of a named instrument (histograms report their sample count).
  // Returns false when no instrument has that name.
  bool GetMetric(const std::string& name, std::uint64_t* value) const;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::vector<Counter*> counters_;
  std::vector<Gauge*> current_gauges_;
  std::vector<MaxGauge*> gauges_;
  std::vector<Histogram*> histograms_;
  TraceRing ring_;
};

// --- Scoped instrumentation ---------------------------------------------------

// The one-liner for a hot path: times the enclosing scope into `histogram`
// (metrics) and emits a complete span (trace). Disabled cost: one relaxed
// load and branch at construction, one at destruction. `name` must outlive
// the scope (the ring copies it only at destruction).
class ScopedEvent {
 public:
  ScopedEvent(const char* category, std::string_view name,
              Histogram* histogram = nullptr)
      : mask_(EnabledMask()) {
    if (mask_ == 0) {
      return;
    }
    category_ = category;
    name_ = name;
    histogram_ = histogram;
    start_ns_ = NowNs();
  }

  ~ScopedEvent() {
    if (mask_ == 0) {
      return;
    }
    std::uint64_t dur = NowNs() - start_ns_;
    if ((mask_ & kMetricsBit) != 0 && histogram_ != nullptr) {
      histogram_->Record(dur);
    }
    if ((mask_ & kTraceBit) != 0) {
      Registry::Instance().ring().PushComplete(category_, name_, start_ns_, dur);
    }
  }

  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

 private:
  unsigned mask_;
  const char* category_ = "";
  std::string_view name_;
  Histogram* histogram_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

// Emits an instant trace event (no-op unless tracing).
void TraceInstant(const char* category, std::string_view name);

// --- Export (export.cc) -------------------------------------------------------

// Human-readable dump of every counter, gauge, and histogram.
std::string MetricsText();

// Writes the buffered trace as Chrome trace_event JSON ("chrome://tracing" /
// Perfetto loadable). Returns the number of events written.
std::size_t ExportChromeTrace(std::ostream& out);

// Human-readable one-line-per-span dump of the buffered trace.
std::string TraceText();

}  // namespace wobs

#endif  // SRC_OBS_OBS_H_
