// OSF/Motif compound strings (XmString) and font lists, at the level Wafe's
// XmString converter exposes: a markup syntax similar to TeX layout commands
// where a special character ('\') switches fonts (by fontList tag) or
// writing direction. The paper's Figure 3 example:
//
//   fontList "*b&h-lucida-medium-r*14*=ft,*b&h-lucida-bold-r*14*=bft"
//   labelString "I'm\bft bold\ft and\rl strange"
#ifndef SRC_XM_XMSTRING_H_
#define SRC_XM_XMSTRING_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/xsim/font.h"

namespace xmw {

// One entry of a font list: an XLFD pattern bound to a tag.
struct FontListEntry {
  std::string pattern;
  std::string tag;
  xsim::FontPtr font;  // resolved at parse time
};

using FontList = std::vector<FontListEntry>;

// Parses "pattern=tag,pattern=tag,..." (the Motif resource-file syntax).
// Unresolvable patterns fail the parse. A bare pattern gets the default tag.
std::optional<FontList> ParseFontList(std::string_view spec);

inline constexpr char kDefaultFontTag[] = "XmFONTLIST_DEFAULT_TAG";

// A compound string: a sequence of segments, each with a font tag and a
// writing direction.
struct XmStringSegment {
  std::string text;
  std::string tag;  // empty = default tag
  bool right_to_left = false;
};

struct XmString {
  std::vector<XmStringSegment> segments;
  std::string source;  // the original markup (Wafe can read it back)

  // Concatenated text, ignoring markup (direction applied per segment).
  std::string PlainText() const;
  // Rendered line width under a font list.
  unsigned Width(const FontList& fonts) const;
};

// Parses Wafe's markup: '\' + a fontList tag switches the font, "\rl"/"\lr"
// switch direction (checked only when no tag matches), "\\" is a literal
// backslash. Tags match longest-first. Unknown commands fail the parse when
// `tags` is non-null; with a null tag list any tag word is accepted.
std::optional<XmString> ParseXmString(std::string_view markup, const FontList* fonts,
                                      std::string* error);

// Looks up the font bound to a tag (default tag / empty falls back to the
// first entry, then to "fixed").
xsim::FontPtr FontForTag(const FontList& fonts, const std::string& tag);

}  // namespace xmw

#endif  // SRC_XM_XMSTRING_H_
