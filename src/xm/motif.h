// The OSF/Motif widget subset Wafe's `mofe` binary supports: enough of the
// XmPrimitive / XmManager hierarchy to run every Motif example in the paper
// (XmLabel with compound strings, XmPushButton with arm/activate/disarm
// callbacks, XmCascadeButton, XmCommand, XmToggleButton, XmRowColumn,
// XmSeparator).
#ifndef SRC_XM_MOTIF_H_
#define SRC_XM_MOTIF_H_

#include <string>

#include "src/xt/app.h"
#include "src/xt/classes.h"

namespace xmw {

struct MotifClasses {
  const xtk::WidgetClass* primitive = nullptr;
  const xtk::WidgetClass* label = nullptr;
  const xtk::WidgetClass* push_button = nullptr;
  const xtk::WidgetClass* cascade_button = nullptr;
  const xtk::WidgetClass* toggle_button = nullptr;
  const xtk::WidgetClass* separator = nullptr;
  const xtk::WidgetClass* manager = nullptr;
  const xtk::WidgetClass* row_column = nullptr;
  const xtk::WidgetClass* command = nullptr;

  std::vector<const xtk::WidgetClass*> All() const;
};

const MotifClasses& GetMotifClasses();

// Registers intrinsic + Motif classes with the app context.
void RegisterMotifClasses(xtk::AppContext& app);

// --- Programmatic interface (Xm functions Wafe wraps) -------------------------

// XmCascadeButtonHighlight — the paper's code-generation example.
void CascadeButtonHighlight(xtk::Widget& cascade, bool highlight);

// XmCommand functions — the paper's naming-convention example
// (XmCommandAppendValue -> mCommandAppendValue).
void CommandAppendValue(xtk::Widget& command, const std::string& value);
void CommandSetValue(xtk::Widget& command, const std::string& value);
void CommandError(xtk::Widget& command, const std::string& message);

// XmToggleButtonSetState / GetState.
void ToggleButtonSetState(xtk::Widget& toggle, bool state, bool notify);
bool ToggleButtonGetState(const xtk::Widget& toggle);

}  // namespace xmw

#endif  // SRC_XM_MOTIF_H_
