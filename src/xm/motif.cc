#include "src/xm/motif.h"

#include <algorithm>

#include "src/xm/xmstring.h"

namespace xmw {

namespace {

using RT = xtk::ResourceType;
using xtk::CallData;
using xtk::Widget;

FontList WidgetFontList(const Widget& widget) {
  std::string spec = widget.GetString("fontList");
  if (!spec.empty()) {
    if (auto fonts = ParseFontList(spec)) {
      return *fonts;
    }
  }
  FontList fallback;
  FontListEntry entry;
  entry.pattern = "fixed";
  entry.tag = kDefaultFontTag;
  entry.font = xsim::FontRegistry::Default().Open("fixed");
  fallback.push_back(std::move(entry));
  return fallback;
}

XmString WidgetLabelString(const Widget& widget, const FontList& fonts) {
  std::string markup = widget.GetString("labelString");
  if (markup.empty()) {
    markup = widget.name();
  }
  std::string error;
  if (auto parsed = ParseXmString(markup, &fonts, &error)) {
    return *parsed;
  }
  XmString plain;
  plain.source = markup;
  plain.segments.push_back(XmStringSegment{markup, "", false});
  return plain;
}

void DrawXmString(Widget& widget, const XmString& text, const FontList& fonts,
                  bool inverted) {
  if (!widget.realized()) {
    return;
  }
  xsim::Display& d = widget.display();
  xsim::Pixel fg = widget.GetPixel("foreground", xsim::kBlackPixel);
  xsim::Pixel bg = widget.GetPixel("background", xsim::kWhitePixel);
  if (inverted) {
    d.FillRect(widget.window(), xsim::Rect{0, 0, widget.width(), widget.height()}, fg);
    std::swap(fg, bg);
  }
  unsigned total = text.Width(fonts);
  std::string alignment = widget.GetString("alignment");
  xsim::Position x = static_cast<xsim::Position>(widget.GetLong("marginWidth", 2)) +
                     static_cast<xsim::Position>(widget.GetLong("shadowThickness", 2));
  if (alignment == "center" || alignment.empty()) {
    if (widget.width() > total) {
      x = static_cast<xsim::Position>((widget.width() - total) / 2);
    }
  } else if (alignment == "end") {
    if (widget.width() > total + static_cast<unsigned>(x)) {
      x = static_cast<xsim::Position>(widget.width() - total) - x;
    }
  }
  for (const XmStringSegment& segment : text.segments) {
    xsim::FontPtr font = FontForTag(fonts, segment.tag);
    xsim::Position baseline =
        static_cast<xsim::Position>((widget.height() + font->ascent - font->descent) / 2);
    std::string rendered = segment.text;
    if (segment.right_to_left) {
      std::reverse(rendered.begin(), rendered.end());
    }
    d.DrawText(widget.window(), x, baseline, rendered, font, fg);
    x += static_cast<xsim::Position>(font->TextWidth(segment.text));
  }
}

void DrawMotifShadow(Widget& widget, bool sunken) {
  long thickness = widget.GetLong("shadowThickness", 2);
  if (thickness <= 0 || !widget.realized()) {
    return;
  }
  xsim::Pixel top = widget.GetPixel("topShadowColor", xsim::MakePixel(230, 230, 230));
  xsim::Pixel bottom = widget.GetPixel("bottomShadowColor", xsim::MakePixel(90, 90, 90));
  if (sunken) {
    std::swap(top, bottom);
  }
  xsim::Display& d = widget.display();
  xsim::Dimension w = widget.width();
  xsim::Dimension h = widget.height();
  xsim::Dimension t = static_cast<xsim::Dimension>(thickness);
  d.FillRect(widget.window(), xsim::Rect{0, 0, w, t}, top);
  d.FillRect(widget.window(), xsim::Rect{0, 0, t, h}, top);
  d.FillRect(widget.window(), xsim::Rect{0, static_cast<xsim::Position>(h - t), w, t}, bottom);
  d.FillRect(widget.window(), xsim::Rect{static_cast<xsim::Position>(w - t), 0, t, h}, bottom);
}

bool ArmedFlag(const Widget& widget) {
  const xtk::ResourceValue& value = widget.Value("_armed");
  const bool* v = std::get_if<bool>(&value);
  return v != nullptr && *v;
}

void LabelInitialize(Widget& widget) {
  FontList fonts = WidgetFontList(widget);
  XmString text = WidgetLabelString(widget, fonts);
  unsigned height = 0;
  for (const XmStringSegment& segment : text.segments) {
    xsim::FontPtr font = FontForTag(fonts, segment.tag);
    height = std::max(height, font->Height());
  }
  if (height == 0) {
    height = xsim::FontRegistry::Default().Open("fixed")->Height();
  }
  long margin_w = widget.GetLong("marginWidth", 2);
  long margin_h = widget.GetLong("marginHeight", 2);
  long shadow = widget.GetLong("shadowThickness", 2);
  xsim::Dimension want_w = text.Width(fonts) +
                           2 * static_cast<xsim::Dimension>(margin_w + shadow);
  xsim::Dimension want_h = height + 2 * static_cast<xsim::Dimension>(margin_h + shadow);
  xsim::Dimension w = widget.WasExplicit("width") ? widget.width() : want_w;
  xsim::Dimension h = widget.WasExplicit("height") ? widget.height() : want_h;
  widget.SetGeometry(widget.x(), widget.y(), w, h);
}

void LabelExpose(Widget& widget) {
  FontList fonts = WidgetFontList(widget);
  DrawXmString(widget, WidgetLabelString(widget, fonts), fonts, false);
}

void RowColumnLayout(Widget& rc) {
  bool vertical = rc.GetString("orientation") != "horizontal";
  long spacing = rc.GetLong("spacing", 3);
  long margin_w = rc.GetLong("marginWidth", 3);
  long margin_h = rc.GetLong("marginHeight", 3);
  xsim::Position x = static_cast<xsim::Position>(margin_w);
  xsim::Position y = static_cast<xsim::Position>(margin_h);
  xsim::Dimension breadth = 0;
  for (Widget* child : rc.children()) {
    if (!child->managed()) {
      continue;
    }
    child->SetGeometry(x, y, child->width(), child->height());
    if (vertical) {
      y += static_cast<xsim::Position>(child->height() + spacing);
      breadth = std::max(breadth, child->width());
    } else {
      x += static_cast<xsim::Position>(child->width() + spacing);
      breadth = std::max(breadth, child->height());
    }
  }
  xsim::Dimension total_w =
      vertical ? breadth + 2 * static_cast<xsim::Dimension>(margin_w)
               : static_cast<xsim::Dimension>(x + margin_w);
  xsim::Dimension total_h =
      vertical ? static_cast<xsim::Dimension>(y + margin_h)
               : breadth + 2 * static_cast<xsim::Dimension>(margin_h);
  xsim::Dimension w = rc.WasExplicit("width") ? rc.width() : total_w;
  xsim::Dimension h = rc.WasExplicit("height") ? rc.height() : total_h;
  rc.SetGeometry(rc.x(), rc.y(), w, h);
}

}  // namespace

std::vector<const xtk::WidgetClass*> MotifClasses::All() const {
  return {primitive, label,   push_button, cascade_button, toggle_button,
          separator, manager, row_column,  command};
}

const MotifClasses& GetMotifClasses() {
  static const MotifClasses* classes = [] {
    auto* set = new MotifClasses();

    // --- XmPrimitive ---------------------------------------------------------
    auto* primitive = new xtk::WidgetClass();
    primitive->name = "XmPrimitive";
    primitive->superclass = xtk::CoreClass();
    primitive->resources = {
        {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
        {"shadowThickness", "ShadowThickness", RT::kDimension, "2"},
        {"highlightThickness", "HighlightThickness", RT::kDimension, "2"},
        {"highlightColor", "HighlightColor", RT::kPixel, "XtDefaultForeground"},
        {"topShadowColor", "TopShadowColor", RT::kPixel, "#e6e6e6"},
        {"bottomShadowColor", "BottomShadowColor", RT::kPixel, "#5a5a5a"},
        {"traversalOn", "TraversalOn", RT::kBoolean, "true"},
        {"userData", "UserData", RT::kString, ""},
        {"helpCallback", "Callback", RT::kCallback, ""},
    };
    set->primitive = primitive;

    // --- XmLabel -----------------------------------------------------------------
    auto* label = new xtk::WidgetClass();
    label->name = "XmLabel";
    label->superclass = primitive;
    label->resources = {
        {"labelString", "XmString", RT::kString, ""},
        {"fontList", "FontList", RT::kString, ""},
        {"alignment", "Alignment", RT::kString, "center"},
        {"marginWidth", "MarginWidth", RT::kDimension, "2"},
        {"marginHeight", "MarginHeight", RT::kDimension, "2"},
        {"labelType", "LabelType", RT::kString, "string"},
        {"labelPixmap", "Pixmap", RT::kPixmap, ""},
        {"recomputeSize", "RecomputeSize", RT::kBoolean, "true"},
        {"stringDirection", "StringDirection", RT::kString, "left_to_right"},
    };
    label->initialize = LabelInitialize;
    label->expose = LabelExpose;
    label->set_values = [](Widget& w, const std::string& resource) {
      if ((resource == "labelString" || resource == "fontList") &&
          w.GetBool("recomputeSize", true)) {
        LabelInitialize(w);
      }
    };
    set->label = label;

    // --- XmPushButton ----------------------------------------------------------------
    auto* push = new xtk::WidgetClass();
    push->name = "XmPushButton";
    push->superclass = label;
    push->resources = {
        {"armCallback", "Callback", RT::kCallback, ""},
        {"activateCallback", "Callback", RT::kCallback, ""},
        {"disarmCallback", "Callback", RT::kCallback, ""},
        {"armColor", "ArmColor", RT::kPixel, "#b0b0b0"},
        {"fillOnArm", "FillOnArm", RT::kBoolean, "true"},
        {"showAsDefault", "ShowAsDefault", RT::kDimension, "0"},
    };
    push->expose = [](Widget& w) {
      bool armed = ArmedFlag(w);
      FontList fonts = WidgetFontList(w);
      DrawXmString(w, WidgetLabelString(w, fonts), fonts, armed);
      DrawMotifShadow(w, armed);
    };
    push->default_translations =
        "<Btn1Down>: Arm()\n"
        "<Btn1Up>: Activate() Disarm()";
    push->actions["Arm"] = [](Widget& w, const xsim::Event&,
                              const std::vector<std::string>&) {
      w.SetRawValue("_armed", true);
      w.app().CallCallbacks(&w, "armCallback", CallData{});
      w.app().Redraw(&w);
    };
    push->actions["Activate"] = [](Widget& w, const xsim::Event&,
                                   const std::vector<std::string>&) {
      w.app().CallCallbacks(&w, "activateCallback", CallData{});
    };
    push->actions["Disarm"] = [](Widget& w, const xsim::Event&,
                                 const std::vector<std::string>&) {
      w.SetRawValue("_armed", false);
      w.app().CallCallbacks(&w, "disarmCallback", CallData{});
      w.app().Redraw(&w);
    };
    set->push_button = push;

    // --- XmCascadeButton ---------------------------------------------------------------
    auto* cascade = new xtk::WidgetClass();
    cascade->name = "XmCascadeButton";
    cascade->superclass = label;
    cascade->resources = {
        {"activateCallback", "Callback", RT::kCallback, ""},
        {"cascadingCallback", "Callback", RT::kCallback, ""},
        {"subMenuId", "MenuWidget", RT::kWidget, ""},
        {"mappingDelay", "MappingDelay", RT::kInt, "180"},
    };
    cascade->expose = [](Widget& w) {
      bool highlighted = ArmedFlag(w);
      FontList fonts = WidgetFontList(w);
      DrawXmString(w, WidgetLabelString(w, fonts), fonts, false);
      if (highlighted) {
        w.display().DrawRectOutline(w.window(), xsim::Rect{0, 0, w.width(), w.height()},
                                    w.GetPixel("highlightColor", xsim::kBlackPixel));
      }
    };
    cascade->default_translations =
        "<Btn1Down>: CascadePopup()\n"
        "<Btn1Up>: Activate()";
    cascade->actions["CascadePopup"] = [](Widget& w, const xsim::Event&,
                                          const std::vector<std::string>&) {
      w.app().CallCallbacks(&w, "cascadingCallback", CallData{});
      Widget* menu = w.GetWidget("subMenuId");
      if (menu != nullptr) {
        xsim::Point origin = w.display().RootPosition(w.window());
        menu->SetGeometry(origin.x, origin.y + static_cast<xsim::Position>(w.height()),
                          menu->width(), menu->height());
        w.app().Popup(menu, xtk::GrabKind::kExclusive);
      }
    };
    cascade->actions["Activate"] = [](Widget& w, const xsim::Event&,
                                      const std::vector<std::string>&) {
      w.app().CallCallbacks(&w, "activateCallback", CallData{});
    };
    set->cascade_button = cascade;

    // --- XmToggleButton ------------------------------------------------------------------
    auto* toggle = new xtk::WidgetClass();
    toggle->name = "XmToggleButton";
    toggle->superclass = label;
    toggle->resources = {
        {"set", "Set", RT::kBoolean, "false"},
        {"valueChangedCallback", "Callback", RT::kCallback, ""},
        {"armCallback", "Callback", RT::kCallback, ""},
        {"disarmCallback", "Callback", RT::kCallback, ""},
        {"indicatorType", "IndicatorType", RT::kString, "n_of_many"},
        {"indicatorOn", "IndicatorOn", RT::kBoolean, "true"},
    };
    toggle->expose = [](Widget& w) {
      FontList fonts = WidgetFontList(w);
      bool on = w.GetBool("set");
      // Indicator box to the left of the label.
      if (w.realized() && w.GetBool("indicatorOn", true)) {
        xsim::Rect box{2, static_cast<xsim::Position>(w.height() / 2) - 5, 10, 10};
        if (on) {
          w.display().FillRect(w.window(), box, w.GetPixel("foreground", xsim::kBlackPixel));
        } else {
          w.display().DrawRectOutline(w.window(), box,
                                      w.GetPixel("foreground", xsim::kBlackPixel));
        }
      }
      DrawXmString(w, WidgetLabelString(w, fonts), fonts, false);
    };
    toggle->default_translations = "<Btn1Up>: Toggle()";
    toggle->actions["Toggle"] = [](Widget& w, const xsim::Event&,
                                   const std::vector<std::string>&) {
      bool now = !w.GetBool("set");
      w.SetRawValue("set", now);
      CallData data;
      data.fields["s"] = now ? "1" : "0";
      w.app().CallCallbacks(&w, "valueChangedCallback", data);
      w.app().Redraw(&w);
    };
    set->toggle_button = toggle;

    // --- XmSeparator ------------------------------------------------------------------------
    auto* separator = new xtk::WidgetClass();
    separator->name = "XmSeparator";
    separator->superclass = primitive;
    separator->resources = {
        {"orientation", "Orientation", RT::kString, "horizontal"},
        {"separatorType", "SeparatorType", RT::kString, "shadow_etched_in"},
        {"margin", "Margin", RT::kDimension, "0"},
    };
    separator->initialize = [](Widget& w) {
      if (!w.WasExplicit("width")) {
        w.SetGeometry(w.x(), w.y(), 60, 2);
      }
    };
    separator->expose = [](Widget& w) {
      if (w.realized()) {
        w.display().DrawLine(
            w.window(), xsim::Point{0, 1},
            xsim::Point{static_cast<xsim::Position>(w.width()), 1},
            w.GetPixel("bottomShadowColor", xsim::kBlackPixel));
      }
    };
    set->separator = separator;

    // --- XmManager / XmRowColumn ----------------------------------------------------------------
    auto* manager = new xtk::WidgetClass();
    manager->name = "XmManager";
    manager->superclass = xtk::ConstraintClass();
    manager->composite = true;
    manager->resources = {
        {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
        {"shadowThickness", "ShadowThickness", RT::kDimension, "0"},
        {"topShadowColor", "TopShadowColor", RT::kPixel, "#e6e6e6"},
        {"bottomShadowColor", "BottomShadowColor", RT::kPixel, "#5a5a5a"},
        {"userData", "UserData", RT::kString, ""},
    };
    set->manager = manager;

    auto* row_column = new xtk::WidgetClass();
    row_column->name = "XmRowColumn";
    row_column->superclass = manager;
    row_column->composite = true;
    row_column->resources = {
        {"orientation", "Orientation", RT::kString, "vertical"},
        {"packing", "Packing", RT::kString, "pack_tight"},
        {"numColumns", "NumColumns", RT::kInt, "1"},
        {"spacing", "Spacing", RT::kDimension, "3"},
        {"marginWidth", "MarginWidth", RT::kDimension, "3"},
        {"marginHeight", "MarginHeight", RT::kDimension, "3"},
        {"rowColumnType", "RowColumnType", RT::kString, "work_area"},
        {"isHomogeneous", "IsHomogeneous", RT::kBoolean, "false"},
    };
    row_column->change_managed = RowColumnLayout;
    row_column->resize = RowColumnLayout;
    set->row_column = row_column;

    // --- XmCommand -------------------------------------------------------------------------------
    auto* command = new xtk::WidgetClass();
    command->name = "XmCommand";
    command->superclass = manager;
    command->composite = true;
    command->resources = {
        {"command", "TextString", RT::kString, ""},
        {"commandEnteredCallback", "Callback", RT::kCallback, ""},
        {"commandChangedCallback", "Callback", RT::kCallback, ""},
        {"historyItems", "Items", RT::kStringList, ""},
        {"historyItemCount", "ItemCount", RT::kInt, "0"},
        {"historyMaxItems", "MaxItems", RT::kInt, "100"},
        {"promptString", "XmString", RT::kString, ">"},
    };
    command->initialize = [](Widget& w) {
      if (!w.WasExplicit("width")) {
        w.SetGeometry(w.x(), w.y(), 200, 100);
      }
    };
    command->expose = [](Widget& w) {
      if (!w.realized()) {
        return;
      }
      xsim::FontPtr font = xsim::FontRegistry::Default().Open("fixed");
      xsim::Pixel fg = w.GetPixel("foreground", xsim::kBlackPixel);
      std::vector<std::string> history = w.GetStringList("historyItems");
      xsim::Position y = static_cast<xsim::Position>(font->ascent) + 2;
      long first = std::max(0L, static_cast<long>(history.size()) -
                                    static_cast<long>(w.height() / font->Height()) + 1);
      for (std::size_t i = static_cast<std::size_t>(first); i < history.size(); ++i) {
        w.display().DrawText(w.window(), 2, y, history[i], font, fg);
        y += static_cast<xsim::Position>(font->Height());
      }
      w.display().DrawText(w.window(), 2, y,
                           w.GetString("promptString") + " " + w.GetString("command"), font,
                           fg);
    };
    set->command = command;

    return set;
  }();
  return *classes;
}

void RegisterMotifClasses(xtk::AppContext& app) {
  xtk::RegisterIntrinsicClasses(app);
  for (const xtk::WidgetClass* cls : GetMotifClasses().All()) {
    app.RegisterClass(cls);
  }
}

// --- Programmatic interface ------------------------------------------------------

void CascadeButtonHighlight(xtk::Widget& cascade, bool highlight) {
  cascade.SetRawValue("_armed", highlight);
  cascade.app().Redraw(&cascade);
}

void CommandAppendValue(xtk::Widget& command, const std::string& value) {
  command.SetRawValue("command", command.GetString("command") + value);
  command.app().CallCallbacks(&command, "commandChangedCallback", CallData{});
  command.app().Redraw(&command);
}

void CommandSetValue(xtk::Widget& command, const std::string& value) {
  command.SetRawValue("command", value);
  command.app().CallCallbacks(&command, "commandChangedCallback", CallData{});
  command.app().Redraw(&command);
}

void CommandError(xtk::Widget& command, const std::string& message) {
  std::vector<std::string> history = command.GetStringList("historyItems");
  history.push_back(message);
  long max_items = command.GetLong("historyMaxItems", 100);
  while (static_cast<long>(history.size()) > max_items) {
    history.erase(history.begin());
  }
  command.SetRawValue("historyItems", history);
  command.SetRawValue("historyItemCount", static_cast<long>(history.size()));
  command.app().Redraw(&command);
}

void ToggleButtonSetState(xtk::Widget& toggle, bool state, bool notify) {
  toggle.SetRawValue("set", state);
  if (notify) {
    CallData data;
    data.fields["s"] = state ? "1" : "0";
    toggle.app().CallCallbacks(&toggle, "valueChangedCallback", data);
  }
  toggle.app().Redraw(&toggle);
}

bool ToggleButtonGetState(const xtk::Widget& toggle) { return toggle.GetBool("set"); }

}  // namespace xmw
