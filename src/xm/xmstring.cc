#include "src/xm/xmstring.h"

#include <algorithm>

namespace xmw {

std::optional<FontList> ParseFontList(std::string_view spec) {
  FontList fonts;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    std::string_view item =
        comma == std::string_view::npos ? spec.substr(pos) : spec.substr(pos, comma - pos);
    // Trim.
    std::size_t begin = item.find_first_not_of(" \t\n");
    if (begin != std::string_view::npos) {
      std::size_t end = item.find_last_not_of(" \t\n");
      item = item.substr(begin, end - begin + 1);
      FontListEntry entry;
      std::size_t eq = item.rfind('=');
      if (eq == std::string_view::npos) {
        entry.pattern = std::string(item);
        entry.tag = kDefaultFontTag;
      } else {
        entry.pattern = std::string(item.substr(0, eq));
        entry.tag = std::string(item.substr(eq + 1));
      }
      entry.font = xsim::FontRegistry::Default().Open(entry.pattern);
      if (entry.font == nullptr) {
        entry.font = xsim::FontRegistry::Default().Open("*" + entry.pattern + "*");
      }
      if (entry.font == nullptr) {
        return std::nullopt;
      }
      fonts.push_back(std::move(entry));
    }
    if (comma == std::string_view::npos) {
      break;
    }
    pos = comma + 1;
  }
  if (fonts.empty()) {
    return std::nullopt;
  }
  return fonts;
}

xsim::FontPtr FontForTag(const FontList& fonts, const std::string& tag) {
  for (const FontListEntry& entry : fonts) {
    if (entry.tag == tag) {
      return entry.font;
    }
  }
  if ((tag.empty() || tag == kDefaultFontTag) && !fonts.empty()) {
    return fonts.front().font;
  }
  return xsim::FontRegistry::Default().Open("fixed");
}

std::string XmString::PlainText() const {
  std::string out;
  for (const XmStringSegment& segment : segments) {
    if (segment.right_to_left) {
      out.append(segment.text.rbegin(), segment.text.rend());
    } else {
      out += segment.text;
    }
  }
  return out;
}

unsigned XmString::Width(const FontList& fonts) const {
  unsigned width = 0;
  for (const XmStringSegment& segment : segments) {
    xsim::FontPtr font = FontForTag(fonts, segment.tag);
    if (font != nullptr) {
      width += font->TextWidth(segment.text);
    }
  }
  return width;
}

std::optional<XmString> ParseXmString(std::string_view markup, const FontList* fonts,
                                      std::string* error) {
  XmString result;
  result.source = std::string(markup);
  XmStringSegment current;
  auto flush = [&] {
    if (!current.text.empty()) {
      XmStringSegment seg = current;
      result.segments.push_back(seg);
      current.text.clear();
    }
  };
  std::size_t i = 0;
  while (i < markup.size()) {
    char c = markup[i];
    if (c != '\\') {
      current.text.push_back(c);
      ++i;
      continue;
    }
    if (i + 1 < markup.size() && markup[i + 1] == '\\') {
      current.text.push_back('\\');
      i += 2;
      continue;
    }
    // Collect the command word (letters/digits).
    std::size_t start = i + 1;
    std::size_t j = start;
    while (j < markup.size() &&
           ((markup[j] >= 'a' && markup[j] <= 'z') || (markup[j] >= 'A' && markup[j] <= 'Z') ||
            (markup[j] >= '0' && markup[j] <= '9') || markup[j] == '_')) {
      ++j;
    }
    std::string word(markup.substr(start, j - start));
    if (word.empty()) {
      if (error != nullptr) {
        *error = "dangling '\\' in compound string";
      }
      return std::nullopt;
    }
    // Longest-first tag match against the font list; the remainder of the
    // word (if any) is literal text following the switch.
    std::string matched_tag;
    if (fonts != nullptr) {
      for (const FontListEntry& entry : *fonts) {
        if (word.rfind(entry.tag, 0) == 0 && entry.tag.size() > matched_tag.size()) {
          matched_tag = entry.tag;
        }
      }
    }
    if (!matched_tag.empty()) {
      flush();
      current.tag = matched_tag;
      current.text += word.substr(matched_tag.size());
      i = j;
      continue;
    }
    if (word.rfind("rl", 0) == 0 || word.rfind("lr", 0) == 0) {
      // Direction switch; the rest of the word is literal text.
      flush();
      current.right_to_left = word[0] == 'r';
      current.text += word.substr(2);
      i = j;
      continue;
    }
    if (fonts == nullptr) {
      // Without a font list any tag word is accepted verbatim.
      flush();
      current.tag = word;
      i = j;
      continue;
    }
    if (error != nullptr) {
      *error = "unknown compound string command \"\\" + word + "\"";
    }
    return std::nullopt;
  }
  flush();
  return result;
}

}  // namespace xmw
