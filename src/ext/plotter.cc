#include "src/ext/plotter.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "src/xt/classes.h"

namespace wext {

namespace {

using RT = xtk::ResourceType;
using xtk::Widget;

constexpr char kDataKey[] = "_plotData";
constexpr char kNodesKey[] = "_graphNodes";
constexpr char kEdgesKey[] = "_graphEdges";

std::vector<double> Samples(const Widget& plot) {
  std::vector<double> values;
  for (const std::string& s : plot.GetStringList(kDataKey)) {
    values.push_back(std::strtod(s.c_str(), nullptr));
  }
  return values;
}

void StoreSamples(Widget& plot, const std::vector<double>& values) {
  std::vector<std::string> strings;
  strings.reserve(values.size());
  char buffer[32];
  for (double v : values) {
    std::snprintf(buffer, sizeof(buffer), "%g", v);
    strings.push_back(buffer);
  }
  plot.SetRawValue(kDataKey, strings);
}

double MaxSample(const std::vector<double>& values, double fallback) {
  double max = fallback;
  for (double v : values) {
    max = std::max(max, v);
  }
  return max;
}

void BarGraphExpose(Widget& w) {
  if (!w.realized()) {
    return;
  }
  std::vector<double> values = Samples(w);
  if (values.empty()) {
    return;
  }
  double scale = MaxSample(values, static_cast<double>(w.GetLong("minScale", 1)));
  xsim::Pixel fg = w.GetPixel("foreground", xsim::kBlackPixel);
  long height = static_cast<long>(w.height());
  long bar_width =
      std::max(1L, static_cast<long>(w.width()) / static_cast<long>(values.size()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    long bar = static_cast<long>(values[i] / scale * static_cast<double>(height));
    bar = std::clamp(bar, 0L, height);
    w.display().FillRect(
        w.window(),
        xsim::Rect{static_cast<xsim::Position>(static_cast<long>(i) * bar_width),
                   static_cast<xsim::Position>(height - bar),
                   static_cast<xsim::Dimension>(std::max(1L, bar_width - 1)),
                   static_cast<xsim::Dimension>(bar)},
        fg);
  }
}

void LineGraphExpose(Widget& w) {
  if (!w.realized()) {
    return;
  }
  std::vector<double> values = Samples(w);
  if (values.size() < 2) {
    return;
  }
  double scale = MaxSample(values, static_cast<double>(w.GetLong("minScale", 1)));
  xsim::Pixel fg = w.GetPixel("foreground", xsim::kBlackPixel);
  long height = static_cast<long>(w.height());
  double step = static_cast<double>(w.width()) / static_cast<double>(values.size() - 1);
  for (std::size_t i = 0; i + 1 < values.size(); ++i) {
    auto y_of = [&](double v) {
      long y = height - static_cast<long>(v / scale * static_cast<double>(height));
      return static_cast<xsim::Position>(std::clamp(y, 0L, height - 1));
    };
    w.display().DrawLine(
        w.window(),
        xsim::Point{static_cast<xsim::Position>(static_cast<double>(i) * step), y_of(values[i])},
        xsim::Point{static_cast<xsim::Position>(static_cast<double>(i + 1) * step),
                    y_of(values[i + 1])},
        fg);
  }
}

// --- Graph layout -------------------------------------------------------------------

struct Edge {
  std::string from;
  std::string to;
};

std::vector<Edge> Edges(const Widget& graph) {
  std::vector<Edge> edges;
  for (const std::string& s : graph.GetStringList(kEdgesKey)) {
    std::size_t arrow = s.find("->");
    if (arrow != std::string::npos) {
      edges.push_back(Edge{s.substr(0, arrow), s.substr(arrow + 2)});
    }
  }
  return edges;
}

// Longest-path layering with per-layer slot assignment.
std::map<std::string, std::pair<int, int>> ComputeLayout(const Widget& graph) {
  std::vector<std::string> nodes = graph.GetStringList(kNodesKey);
  std::vector<Edge> edges = Edges(graph);
  std::map<std::string, int> layer;
  for (const std::string& node : nodes) {
    layer[node] = 0;
  }
  // Relax longest path; |V| passes suffice (cycles are cut by the cap).
  for (std::size_t pass = 0; pass < nodes.size(); ++pass) {
    bool changed = false;
    for (const Edge& edge : edges) {
      auto from = layer.find(edge.from);
      auto to = layer.find(edge.to);
      if (from == layer.end() || to == layer.end()) {
        continue;
      }
      if (to->second < from->second + 1 &&
          from->second + 1 <= static_cast<int>(nodes.size())) {
        to->second = from->second + 1;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }
  std::map<int, int> slots;
  std::map<std::string, std::pair<int, int>> out;
  for (const std::string& node : nodes) {
    int l = layer[node];
    out[node] = {l, slots[l]++};
  }
  return out;
}

void GraphExpose(Widget& w) {
  if (!w.realized()) {
    return;
  }
  std::map<std::string, std::pair<int, int>> layout = ComputeLayout(w);
  xsim::FontPtr font = xsim::FontRegistry::Default().Open("fixed");
  xsim::Pixel fg = w.GetPixel("foreground", xsim::kBlackPixel);
  long node_w = w.GetLong("nodeWidth", 60);
  long node_h = w.GetLong("nodeHeight", 20);
  long gap_x = w.GetLong("horizontalSpace", 20);
  long gap_y = w.GetLong("verticalSpace", 16);
  auto center = [&](const std::pair<int, int>& cell) {
    return xsim::Point{
        static_cast<xsim::Position>(cell.second * (node_w + gap_x) + gap_x + node_w / 2),
        static_cast<xsim::Position>(cell.first * (node_h + gap_y) + gap_y + node_h / 2)};
  };
  for (const Edge& edge : Edges(w)) {
    auto from = layout.find(edge.from);
    auto to = layout.find(edge.to);
    if (from == layout.end() || to == layout.end()) {
      continue;
    }
    w.display().DrawLine(w.window(), center(from->second), center(to->second), fg);
  }
  for (const auto& [node, cell] : layout) {
    xsim::Point c = center(cell);
    xsim::Rect box{static_cast<xsim::Position>(c.x - node_w / 2),
                   static_cast<xsim::Position>(c.y - node_h / 2),
                   static_cast<xsim::Dimension>(node_w), static_cast<xsim::Dimension>(node_h)};
    w.display().FillRect(w.window(), box, w.GetPixel("background", xsim::kWhitePixel));
    w.display().DrawRectOutline(w.window(), box, fg);
    w.display().DrawText(w.window(), box.x + 2,
                         c.y + static_cast<xsim::Position>(font->ascent / 2), node, font, fg);
  }
}

}  // namespace

const ExtClasses& GetExtClasses() {
  static const ExtClasses* classes = [] {
    auto* set = new ExtClasses();

    auto* bar = new xtk::WidgetClass();
    bar->name = "BarGraph";
    bar->superclass = xtk::CoreClass();
    bar->resources = {
        {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
        {"minScale", "Scale", RT::kInt, "1"},
        {"barWidth", "BarWidth", RT::kDimension, "0"},
        {"callback", "Callback", RT::kCallback, ""},
    };
    bar->initialize = [](Widget& w) {
      if (!w.WasExplicit("width")) {
        w.SetGeometry(w.x(), w.y(), 160, 80);
      }
    };
    bar->expose = BarGraphExpose;
    set->bar_graph = bar;

    auto* line = new xtk::WidgetClass();
    line->name = "LineGraph";
    line->superclass = xtk::CoreClass();
    line->resources = {
        {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
        {"minScale", "Scale", RT::kInt, "1"},
        {"callback", "Callback", RT::kCallback, ""},
    };
    line->initialize = [](Widget& w) {
      if (!w.WasExplicit("width")) {
        w.SetGeometry(w.x(), w.y(), 160, 80);
      }
    };
    line->expose = LineGraphExpose;
    set->line_graph = line;

    auto* graph = new xtk::WidgetClass();
    graph->name = "Graph";
    graph->superclass = xtk::CompositeClass();
    graph->composite = true;
    graph->resources = {
        {"foreground", "Foreground", RT::kPixel, "XtDefaultForeground"},
        {"nodeWidth", "NodeWidth", RT::kDimension, "60"},
        {"nodeHeight", "NodeHeight", RT::kDimension, "20"},
        {"horizontalSpace", "Space", RT::kDimension, "20"},
        {"verticalSpace", "Space", RT::kDimension, "16"},
        {"arcCallback", "Callback", RT::kCallback, ""},
        {"nodeCallback", "Callback", RT::kCallback, ""},
    };
    graph->initialize = [](Widget& w) {
      if (!w.WasExplicit("width")) {
        w.SetGeometry(w.x(), w.y(), 320, 200);
      }
    };
    graph->expose = GraphExpose;
    set->graph = graph;

    return set;
  }();
  return *classes;
}

void RegisterExtClasses(xtk::AppContext& app) {
  const ExtClasses& classes = GetExtClasses();
  app.RegisterClass(classes.bar_graph);
  app.RegisterClass(classes.line_graph);
  app.RegisterClass(classes.graph);
}

void PlotterSetData(xtk::Widget& plot, const std::vector<double>& values) {
  StoreSamples(plot, values);
  plot.app().Redraw(&plot);
}

void PlotterAddSample(xtk::Widget& plot, double value) {
  std::vector<double> values = Samples(plot);
  values.push_back(value);
  std::size_t limit = std::max<std::size_t>(plot.width(), 64);
  if (values.size() > limit) {
    values.erase(values.begin(), values.begin() + static_cast<long>(values.size() - limit));
  }
  StoreSamples(plot, values);
  plot.app().Redraw(&plot);
}

std::vector<double> PlotterData(const xtk::Widget& plot) { return Samples(plot); }

void GraphAddNode(xtk::Widget& graph, const std::string& node) {
  std::vector<std::string> nodes = graph.GetStringList(kNodesKey);
  if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
    nodes.push_back(node);
    graph.SetRawValue(kNodesKey, nodes);
    graph.app().Redraw(&graph);
  }
}

void GraphAddEdge(xtk::Widget& graph, const std::string& from, const std::string& to) {
  GraphAddNode(graph, from);
  GraphAddNode(graph, to);
  std::vector<std::string> edges = graph.GetStringList(kEdgesKey);
  edges.push_back(from + "->" + to);
  graph.SetRawValue(kEdgesKey, edges);
  graph.app().Redraw(&graph);
}

void GraphClear(xtk::Widget& graph) {
  graph.SetRawValue(kNodesKey, std::vector<std::string>{});
  graph.SetRawValue(kEdgesKey, std::vector<std::string>{});
  graph.app().Redraw(&graph);
}

std::vector<std::pair<int, int>> GraphLayout(xtk::Widget& graph) {
  std::map<std::string, std::pair<int, int>> layout = ComputeLayout(graph);
  std::vector<std::pair<int, int>> out;
  for (const std::string& node : graph.GetStringList(kNodesKey)) {
    out.push_back(layout[node]);
  }
  return out;
}

std::vector<std::string> GraphNodes(const xtk::Widget& graph) {
  return graph.GetStringList(kNodesKey);
}

}  // namespace wext
