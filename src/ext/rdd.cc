#include "src/ext/rdd.h"

#include "src/xt/translations.h"

namespace wext {

namespace {

// Installs a production `<event>: <action>()` on top of a widget's current
// translations.
void InstallTranslation(xtk::Widget* widget, const std::string& production) {
  std::string error;
  xtk::TranslationsPtr incoming = xtk::GetCompiledTranslations(production, &error);
  if (incoming == nullptr) {
    return;
  }
  widget->SetRawValue("translations",
                      xtk::MergeTranslations(widget->GetTranslations(), incoming,
                                             xtk::MergeMode::kOverride));
}

}  // namespace

DragAndDrop::DragAndDrop(xtk::AppContext* app) : app_(app) {
  // Global actions shared by all sources/targets of this instance.
  app_->RegisterAction("RddDragStart", [this](xtk::Widget& w, const xsim::Event&,
                                              const std::vector<std::string>&) {
    BeginDrag(w);
  });
  app_->RegisterAction("RddDrop", [this](xtk::Widget& w, const xsim::Event&,
                                         const std::vector<std::string>&) { Drop(w); });
}

void DragAndDrop::RegisterSource(xtk::Widget* widget,
                                 std::function<std::string()> provide) {
  if (widget == nullptr) {
    return;
  }
  sources_[widget->name()] = std::move(provide);
  InstallTranslation(widget, "<Btn2Down>: RddDragStart()");
}

void DragAndDrop::RegisterTarget(
    xtk::Widget* widget,
    std::function<void(xtk::Widget&, const std::string&)> receive) {
  if (widget == nullptr) {
    return;
  }
  targets_[widget->name()] = std::move(receive);
  InstallTranslation(widget, "<Btn2Up>: RddDrop()");
}

void DragAndDrop::Unregister(xtk::Widget* widget) {
  if (widget == nullptr) {
    return;
  }
  sources_.erase(widget->name());
  targets_.erase(widget->name());
}

void DragAndDrop::BeginDrag(xtk::Widget& source) {
  auto it = sources_.find(source.name());
  if (it == sources_.end()) {
    return;
  }
  dragging_ = true;
  drag_value_ = it->second ? it->second() : std::string();
  drag_source_ = source.name();
}

void DragAndDrop::Drop(xtk::Widget& target) {
  if (!dragging_) {
    return;
  }
  auto it = targets_.find(target.name());
  xtk::Widget* source = app_->FindWidget(drag_source_);
  dragging_ = false;
  if (it == targets_.end() || source == nullptr) {
    drag_value_.clear();
    return;
  }
  if (it->second) {
    it->second(*source, drag_value_);
  }
  drag_value_.clear();
}

void DragAndDrop::CancelDrag() {
  dragging_ = false;
  drag_value_.clear();
  drag_source_.clear();
}

}  // namespace wext
