// Rdd — a drag-and-drop library in the spirit of the one the paper links
// against ("it was easy to extend Wafe with other Xt based widgets, widget
// sets or libraries such as Xpm or for example a drag and drop library
// (Rdd)"). A widget registered as a drag source exports a value; dragging
// with Button2 from a source and releasing over a registered drop target
// invokes the target's handler with that value.
#ifndef SRC_EXT_RDD_H_
#define SRC_EXT_RDD_H_

#include <functional>
#include <map>
#include <string>

#include "src/xt/app.h"

namespace wext {

class DragAndDrop {
 public:
  explicit DragAndDrop(xtk::AppContext* app);

  DragAndDrop(const DragAndDrop&) = delete;
  DragAndDrop& operator=(const DragAndDrop&) = delete;

  // Registers `widget` as a drag source; `provide` supplies the dragged
  // value at drag-start time.
  void RegisterSource(xtk::Widget* widget, std::function<std::string()> provide);

  // Registers `widget` as a drop target; `receive` gets the dragged value
  // and the source widget.
  void RegisterTarget(xtk::Widget* widget,
                      std::function<void(xtk::Widget& source, const std::string& value)>
                          receive);

  void Unregister(xtk::Widget* widget);

  // Event feed: wire these to Btn2Down / Btn2Up translations (the
  // RegisterSource/Target calls install them automatically).
  void BeginDrag(xtk::Widget& source);
  void Drop(xtk::Widget& target);
  void CancelDrag();

  bool dragging() const { return dragging_; }
  const std::string& drag_value() const { return drag_value_; }

 private:
  xtk::AppContext* app_;
  std::map<std::string, std::function<std::string()>> sources_;  // by widget name
  std::map<std::string, std::function<void(xtk::Widget&, const std::string&)>> targets_;
  bool dragging_ = false;
  std::string drag_value_;
  std::string drag_source_;
};

}  // namespace wext

#endif  // SRC_EXT_RDD_H_
