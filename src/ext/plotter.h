// Extension widgets demonstrating the paper's extensibility claim: the
// Plotter widget set (BarGraph / LineGraph, as in the Wafe distribution's
// Plotter support) and an XmGraph-like node/edge layout widget (Figure 2).
#ifndef SRC_EXT_PLOTTER_H_
#define SRC_EXT_PLOTTER_H_

#include <string>
#include <vector>

#include "src/xt/app.h"

namespace wext {

struct ExtClasses {
  const xtk::WidgetClass* bar_graph = nullptr;
  const xtk::WidgetClass* line_graph = nullptr;
  const xtk::WidgetClass* graph = nullptr;
};

const ExtClasses& GetExtClasses();

// Registers the extension classes (requires intrinsics already registered).
void RegisterExtClasses(xtk::AppContext& app);

// --- Plotter programmatic interface ---------------------------------------------

// Replaces the data series of a BarGraph / LineGraph.
void PlotterSetData(xtk::Widget& plot, const std::vector<double>& values);
// Appends one sample (scrolling window).
void PlotterAddSample(xtk::Widget& plot, double value);
std::vector<double> PlotterData(const xtk::Widget& plot);

// --- Graph (XmGraph-like) programmatic interface ----------------------------------

// Adds a node / an edge; the widget lays nodes out in layers by longest
// path from a root and draws edges as lines.
void GraphAddNode(xtk::Widget& graph, const std::string& node);
void GraphAddEdge(xtk::Widget& graph, const std::string& from, const std::string& to);
void GraphClear(xtk::Widget& graph);
// Runs the layered layout; returns the assigned (layer, slot) per node in
// insertion order. Exposed for tests and benches.
std::vector<std::pair<int, int>> GraphLayout(xtk::Widget& graph);
std::vector<std::string> GraphNodes(const xtk::Widget& graph);

}  // namespace wext

#endif  // SRC_EXT_PLOTTER_H_
