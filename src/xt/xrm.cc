#include "src/xt/xrm.h"

#include <algorithm>
#include <functional>

#include "src/obs/obs.h"

namespace xtk {

namespace {

// Match scores per path level, higher wins; compared lexicographically from
// the root, which yields X's precedence (name over class over skip, tight
// over loose at the earliest differing level).
constexpr int kNameTight = 5;
constexpr int kNameLoose = 4;
constexpr int kClassTight = 3;
constexpr int kClassLoose = 2;
constexpr int kSkipped = 1;

wobs::Counter g_queries("xt.xrm.queries");

}  // namespace

bool ResourceDatabase::MergeLine(std::string_view line) {
  // Strip leading whitespace.
  std::size_t begin = line.find_first_not_of(" \t");
  if (begin == std::string_view::npos) {
    return false;
  }
  line = line.substr(begin);
  std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    return false;
  }
  std::string_view binding = line.substr(0, colon);
  std::string_view value = line.substr(colon + 1);
  // Trim the binding and skip leading blanks of the value (X keeps trailing
  // blanks of the value; we trim trailing \r only).
  std::size_t bend = binding.find_last_not_of(" \t");
  if (bend == std::string_view::npos) {
    return false;
  }
  binding = binding.substr(0, bend + 1);
  std::size_t vbegin = value.find_first_not_of(" \t");
  value = vbegin == std::string_view::npos ? std::string_view() : value.substr(vbegin);
  if (!value.empty() && value.back() == '\r') {
    value.remove_suffix(1);
  }

  Entry entry;
  bool loose = false;
  std::string token;
  for (char c : binding) {
    if (c == '.' || c == '*') {
      if (!token.empty()) {
        entry.components.push_back(Component{Intern(token), loose});
        token.clear();
        loose = false;
      }
      if (c == '*') {
        loose = true;
      }
      continue;
    }
    if (c == ' ' || c == '\t') {
      continue;
    }
    token.push_back(c);
  }
  if (!token.empty()) {
    entry.components.push_back(Component{Intern(token), loose});
  }
  if (entry.components.empty()) {
    return false;
  }
  entry.value = std::string(value);
  entry.serial = next_serial_++;
  // Replace an identical binding in place.
  for (Entry& existing : entries_) {
    if (existing.components.size() == entry.components.size()) {
      bool same = true;
      for (std::size_t i = 0; i < entry.components.size(); ++i) {
        if (existing.components[i].quark != entry.components[i].quark ||
            existing.components[i].loose != entry.components[i].loose) {
          same = false;
          break;
        }
      }
      if (same) {
        existing.value = entry.value;
        existing.serial = entry.serial;
        return true;
      }
    }
  }
  entries_.push_back(std::move(entry));
  return true;
}

std::size_t ResourceDatabase::MergeString(std::string_view text) {
  std::size_t merged = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    std::string_view line =
        end == std::string_view::npos ? text.substr(pos) : text.substr(pos, end - pos);
    std::size_t first = line.find_first_not_of(" \t");
    if (first != std::string_view::npos && line[first] != '!' && line[first] != '#') {
      if (MergeLine(line)) {
        ++merged;
      }
    }
    if (end == std::string_view::npos) {
      break;
    }
    pos = end + 1;
  }
  return merged;
}

std::optional<std::vector<int>> ResourceDatabase::Match(
    const Entry& entry, const std::vector<QuarkLevel>& full_path) {
  // Recursive matcher over (component index, path index) with memo-free
  // backtracking; path sizes are small (widget tree depth). Every compare
  // here is a quark (integer) compare.
  const auto& components = entry.components;
  const Quark question = QuestionQuark();
  std::vector<int> best;
  std::vector<int> current(full_path.size(), kSkipped);
  bool found = false;

  // The final component must match the final path level (the resource).
  std::function<void(std::size_t, std::size_t)> recurse = [&](std::size_t ci, std::size_t pi) {
    if (ci == components.size()) {
      if (pi == full_path.size()) {
        if (!found || current > best) {
          best = current;
          found = true;
        }
      }
      return;
    }
    if (pi == full_path.size()) {
      return;
    }
    const Component& component = components[ci];
    const auto& [name, cls] = full_path[pi];
    // Try matching this component at this level.
    if (component.quark == name || component.quark == question) {
      current[pi] = component.loose ? kNameLoose : kNameTight;
      recurse(ci + 1, pi + 1);
      current[pi] = kSkipped;
    } else if (component.quark == cls) {
      current[pi] = component.loose ? kClassLoose : kClassTight;
      recurse(ci + 1, pi + 1);
      current[pi] = kSkipped;
    }
    // A loose binding may skip this level entirely.
    if (component.loose) {
      recurse(ci, pi + 1);
    }
  };

  // A leading loose binding ("*foo") may skip leading levels; a leading
  // tight binding must anchor at the root. The first component's `loose`
  // flag records whether it was preceded by '*'.
  recurse(0, 0);
  if (!found) {
    return std::nullopt;
  }
  return best;
}

std::optional<std::string> ResourceDatabase::Query(
    const std::vector<QuarkLevel>& path, const QuarkLevel& resource) const {
  g_queries.Increment();
  std::vector<QuarkLevel> full_path = path;
  full_path.push_back(resource);
  const Entry* best_entry = nullptr;
  std::vector<int> best_score;
  for (const Entry& entry : entries_) {
    std::optional<std::vector<int>> score = Match(entry, full_path);
    if (!score) {
      continue;
    }
    if (best_entry == nullptr || *score > best_score ||
        (*score == best_score && entry.serial > best_entry->serial)) {
      best_entry = &entry;
      best_score = std::move(*score);
    }
  }
  if (best_entry == nullptr) {
    return std::nullopt;
  }
  return best_entry->value;
}

std::optional<std::string> ResourceDatabase::Query(
    const std::vector<std::pair<std::string, std::string>>& path,
    const std::pair<std::string, std::string>& resource) const {
  std::vector<QuarkLevel> quark_path;
  quark_path.reserve(path.size());
  for (const auto& [name, cls] : path) {
    quark_path.emplace_back(Intern(name), Intern(cls));
  }
  return Query(quark_path, QuarkLevel{Intern(resource.first), Intern(resource.second)});
}

}  // namespace xtk
