// The application context: owns displays, the widget tree, the resource
// database and converter/action registries, dispatches events through
// translation management, and runs the main loop with timers and
// file-descriptor input sources (XtAppAddInput — the hook Wafe's frontend
// communication is built on).
#ifndef SRC_XT_APP_H_
#define SRC_XT_APP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/xsim/display.h"
#include "src/xt/converter.h"
#include "src/xt/error.h"
#include "src/xt/widget.h"
#include "src/xt/xrm.h"

namespace xtk {

// Grab semantics for popup shells (XtGrabKind).
enum class GrabKind { kNone, kNonexclusive, kExclusive };

class AppContext {
 public:
  AppContext(std::string app_name, std::string app_class);
  ~AppContext();

  AppContext(const AppContext&) = delete;
  AppContext& operator=(const AppContext&) = delete;

  const std::string& app_name() const { return app_name_; }
  const std::string& app_class() const { return app_class_; }

  // --- Displays ---------------------------------------------------------------

  // The default display (created lazily on first use).
  xsim::Display& display();
  // Opens (or returns) a display by name; models multi-display Wafe
  // applications ("applicationShell top2 dec4:0").
  xsim::Display& OpenDisplay(const std::string& name);
  std::vector<xsim::Display*> Displays() const;

  // --- Registries --------------------------------------------------------------

  ResourceDatabase& resource_db() { return resource_db_; }
  ConverterRegistry& converters() { return converters_; }

  // Toolkit error/warning handler stack; protocol errors from displays this
  // context opened are routed here (XtAppSetErrorHandler equivalent).
  ErrorContext& errors() { return errors_; }

  void RegisterClass(const WidgetClass* cls);
  const WidgetClass* FindClass(const std::string& name) const;
  std::vector<std::string> ClassNames() const;

  // Global (application) actions, e.g. Wafe's `exec`.
  void RegisterAction(const std::string& name, ActionProc action);
  const ActionProc* FindGlobalAction(const std::string& name) const;

  // --- Widget lifecycle ----------------------------------------------------------

  // Creates a widget. `args` are name/value string pairs converted through
  // the registry. Widgets are registered under their instance name, which
  // must be unique (Wafe addresses widgets by name). Returns null and fills
  // *error on failure.
  Widget* CreateWidget(const std::string& name, const std::string& class_name, Widget* parent,
                       const std::vector<std::pair<std::string, std::string>>& args,
                       bool managed, std::string* error);
  // Creates a root shell on `display`.
  Widget* CreateShell(const std::string& name, const std::string& class_name,
                      xsim::Display* display,
                      const std::vector<std::pair<std::string, std::string>>& args,
                      std::string* error);

  void DestroyWidget(Widget* widget);
  Widget* FindWidget(const std::string& name) const;
  std::size_t WidgetCount() const { return widgets_.size(); }
  std::vector<std::string> WidgetNames() const;

  void ManageChild(Widget* widget);
  void UnmanageChild(Widget* widget);

  // Realizes a widget subtree: creates windows parent-first and maps managed
  // widgets (XtRealizeWidget).
  void RealizeWidget(Widget* widget);
  void UnrealizeWidget(Widget* widget);

  // --- Resources ------------------------------------------------------------------

  // Applies name/value pairs to an existing widget (XtSetValues).
  bool SetValues(Widget* widget, const std::vector<std::pair<std::string, std::string>>& args,
                 std::string* error);
  // Reads one resource back in string form (Wafe's getValue).
  bool GetValue(Widget* widget, const std::string& resource, std::string* out,
                std::string* error);

  // --- Callbacks and actions ---------------------------------------------------------

  // Invokes every callback on the named callback resource (XtCallCallbacks).
  // Honors sensitivity: insensitive widgets do not fire.
  void CallCallbacks(Widget* widget, const std::string& resource, const CallData& data);

  // Invokes an action by name: widget-class actions first, then global.
  bool InvokeAction(Widget* widget, const std::string& name, const xsim::Event& event,
                    const std::vector<std::string>& params);

  // --- Event handling -----------------------------------------------------------------

  // Dispatches one event through translation management.
  void DispatchEvent(const xsim::Event& event);
  // Drains every display queue; returns the number of events dispatched.
  std::size_t ProcessPending();

  Widget* WindowToWidget(const xsim::Display& display, xsim::WindowId window) const;

  // Forces a full redraw of a realized widget (clear + expose).
  void Redraw(Widget* widget);

  // --- Selections -----------------------------------------------------------------------

  // Claims selection ownership for a widget (XtOwnSelection); `convert`
  // produces the value on request. The previous owner is cleared.
  void OwnSelection(Widget* widget, const std::string& selection,
                    std::function<std::string()> convert);
  void DisownSelection(const std::string& selection);
  // Value of a selection, if owned (XtGetSelectionValue).
  std::optional<std::string> GetSelectionValue(const std::string& selection) const;
  Widget* SelectionOwnerWidget(const std::string& selection) const;

  // --- Accelerators ----------------------------------------------------------------------

  // XtInstallAccelerators: merges `src`'s accelerators resource into
  // `dest`'s translations; matched actions run on `src`.
  bool InstallAccelerators(Widget* dest, Widget* src);

  // --- Popups ------------------------------------------------------------------------

  void Popup(Widget* shell, GrabKind grab);
  void Popdown(Widget* shell);
  bool IsPoppedUp(const Widget* shell) const;

  // --- Main loop: timers and input sources ----------------------------------------------

  using TimerFn = std::function<void()>;
  using InputFn = std::function<void(int fd)>;

  // One-shot timeout after `ms` milliseconds of real time.
  int AddTimeout(long ms, TimerFn fn);
  void RemoveTimeout(int id);
  // Watches `fd` for readability.
  int AddInput(int fd, InputFn fn);
  void RemoveInput(int id);
  // Watches `fd` for writability (XtAppAddInput with XtInputWriteMask);
  // the hook Wafe's backpressured backend writes are built on.
  int AddOutput(int fd, InputFn fn);
  void RemoveOutput(int id);

  // Runs one iteration: dispatches pending display events, then polls the
  // input fds / timers. With `block` it waits for the next source to fire.
  // Returns false when there was nothing to do in a non-blocking call.
  bool RunOneIteration(bool block);
  // Loops until BreakMainLoop (XtAppMainLoop).
  void MainLoop();
  void BreakMainLoop() { loop_break_ = true; }

  // --- Record/replay hooks ---------------------------------------------------------------
  //
  // Observer invoked just before a due timer's callback runs; the session
  // recorder journals the id so a replay can re-fire the same timer at the
  // same point in the record stream. Timer ids are deterministic (a
  // monotonically increasing counter), so the id recorded in one run names
  // the same logical timer in the replaying run.
  using TimerObserver = std::function<void(int id)>;
  void set_timer_fire_observer(TimerObserver fn) { timer_observer_ = std::move(fn); }

  // Fires the timer with `id` now, regardless of its deadline — the replay
  // engine's substitute for the poll loop's deadline check (the virtual
  // clock is frozen, so deadlines never expire on their own). Returns false
  // when no such timer is pending.
  bool FireTimerForReplay(int id);

  // Test hook: number of expose redraws performed.
  std::size_t redraw_count() const { return redraw_count_; }

 private:
  struct Timer {
    int id;
    std::int64_t deadline_ms;  // CLOCK_MONOTONIC
    TimerFn fn;
  };
  struct Input {
    int id;
    int fd;
    InputFn fn;
  };

  // Resolves and converts all resources for a fresh widget.
  bool InitializeResources(Widget* widget,
                           const std::vector<std::pair<std::string, std::string>>& args,
                           std::string* error);
  void RealizeTree(Widget* widget);
  void DestroySubtree(Widget* widget);
  static std::int64_t NowMs();

  std::string app_name_;
  std::string app_class_;
  std::map<std::string, std::unique_ptr<xsim::Display>> displays_;
  ResourceDatabase resource_db_;
  ConverterRegistry converters_;
  ErrorContext errors_;
  std::map<std::string, const WidgetClass*> classes_;
  std::map<std::string, ActionProc> global_actions_;
  std::map<std::string, std::unique_ptr<Widget>> widgets_;
  struct Selection {
    Widget* owner = nullptr;
    std::function<std::string()> convert;
  };
  std::map<std::string, Selection> selections_;
  std::vector<Widget*> roots_;
  std::vector<Widget*> popped_up_;
  std::vector<Timer> timers_;
  std::vector<Input> inputs_;
  std::vector<Input> outputs_;
  int next_timer_id_ = 1;
  int next_input_id_ = 1;
  TimerObserver timer_observer_;
  bool loop_break_ = false;
  std::size_t redraw_count_ = 0;
  // When the last poll returned, while observability is on (0 otherwise):
  // the anchor the loop-lag probe measures busy stretches from.
  std::uint64_t loop_busy_anchor_ns_ = 0;
};

}  // namespace xtk

#endif  // SRC_XT_APP_H_
