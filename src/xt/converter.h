// Resource converters: string -> typed value (and back, a Wafe extension so
// getValue works for every resource type). The registry ships with the
// standard Xt converters; Wafe registers replacements for Callback, Pixmap
// and (in the Motif build) XmString.
//
// Conversions registered as cacheable are memoized per registry keyed by
// (type, input string) — the R5 XtCacheAll model. Context-dependent
// converters (kWidget, file-reading Pixmap) must stay uncacheable.
// Re-registering a type drops that type's cached entries; InvalidateCache
// drops everything (e.g. after the color or font environment changes).
#ifndef SRC_XT_CONVERTER_H_
#define SRC_XT_CONVERTER_H_

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "src/xt/value.h"

namespace xtk {

class Widget;

class ConverterRegistry {
 public:
  // Converts `input` for `widget` (may be null during class setup). Returns
  // false and fills *error on failure.
  using ConvertFn = std::function<bool(const std::string& input, Widget* widget,
                                       ResourceValue* out, std::string* error)>;
  // Formats a typed value back to its string form.
  using FormatFn = std::function<std::string(const ResourceValue& value)>;

  // A registry pre-loaded with the standard converters.
  ConverterRegistry();

  // `cacheable` asserts the converter is a pure function of the input
  // string: its result may then be memoized and shared across widgets.
  void Register(ResourceType type, ConvertFn convert, bool cacheable = false);
  void RegisterFormat(ResourceType type, FormatFn format);

  bool Convert(ResourceType type, const std::string& input, Widget* widget, ResourceValue* out,
               std::string* error) const;
  std::string Format(ResourceType type, const ResourceValue& value) const;

  // Explicit invalidation: everything, or one type's entries.
  void InvalidateCache();
  void InvalidateCache(ResourceType type);

  // A/B switch for benchmarks and tests; the cache is on by default.
  void set_cache_enabled(bool on) { cache_enabled_ = on; }
  bool cache_enabled() const { return cache_enabled_; }
  std::size_t cache_size() const { return cache_.size(); }

  // Fault injection (`xtFault convertFail=N`): the next `n` Convert calls
  // fail with an injected error, bypassing the cache, so every conversion
  // failure path is deterministically reachable from tests.
  void InjectFailures(int n) { inject_failures_ = n; }
  int injected_failures_remaining() const { return inject_failures_; }

 private:
  struct ConverterEntry {
    ConvertFn fn;
    bool cacheable = false;
  };

  std::map<ResourceType, ConverterEntry> converters_;
  std::map<ResourceType, FormatFn> formatters_;
  // Memoized successful conversions for cacheable types. Mutated under
  // const Convert(); registries are confined to the interpreter thread.
  mutable std::map<std::pair<ResourceType, std::string>, ResourceValue> cache_;
  bool cache_enabled_ = true;
  mutable int inject_failures_ = 0;
};

}  // namespace xtk

#endif  // SRC_XT_CONVERTER_H_
