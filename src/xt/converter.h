// Resource converters: string -> typed value (and back, a Wafe extension so
// getValue works for every resource type). The registry ships with the
// standard Xt converters; Wafe registers replacements for Callback, Pixmap
// and (in the Motif build) XmString.
#ifndef SRC_XT_CONVERTER_H_
#define SRC_XT_CONVERTER_H_

#include <functional>
#include <map>
#include <string>

#include "src/xt/value.h"

namespace xtk {

class Widget;

class ConverterRegistry {
 public:
  // Converts `input` for `widget` (may be null during class setup). Returns
  // false and fills *error on failure.
  using ConvertFn = std::function<bool(const std::string& input, Widget* widget,
                                       ResourceValue* out, std::string* error)>;
  // Formats a typed value back to its string form.
  using FormatFn = std::function<std::string(const ResourceValue& value)>;

  // A registry pre-loaded with the standard converters.
  ConverterRegistry();

  void Register(ResourceType type, ConvertFn convert);
  void RegisterFormat(ResourceType type, FormatFn format);

  bool Convert(ResourceType type, const std::string& input, Widget* widget, ResourceValue* out,
               std::string* error) const;
  std::string Format(ResourceType type, const ResourceValue& value) const;

 private:
  std::map<ResourceType, ConvertFn> converters_;
  std::map<ResourceType, FormatFn> formatters_;
};

}  // namespace xtk

#endif  // SRC_XT_CONVERTER_H_
