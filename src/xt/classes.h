// The intrinsic widget classes: Core, Composite, Constraint, and the shell
// hierarchy (Shell / OverrideShell / TransientShell / TopLevelShell /
// ApplicationShell). Widget sets (Athena, Motif) derive from these.
#ifndef SRC_XT_CLASSES_H_
#define SRC_XT_CLASSES_H_

#include "src/xt/app.h"
#include "src/xt/widget.h"

namespace xtk {

const WidgetClass* CoreClass();
const WidgetClass* CompositeClass();
const WidgetClass* ConstraintClass();
const WidgetClass* ShellClass();
const WidgetClass* OverrideShellClass();
const WidgetClass* TransientShellClass();
const WidgetClass* TopLevelShellClass();
const WidgetClass* ApplicationShellClass();

// Registers all intrinsic classes with an app context.
void RegisterIntrinsicClasses(AppContext& app);

}  // namespace xtk

#endif  // SRC_XT_CLASSES_H_
