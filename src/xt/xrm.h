// The Xrm resource database: parses resource-file syntax ("*foreground:
// blue", "app.form.button.background: red"), supports tight (.) and loose
// (*) bindings with name/class components, and answers queries with X's
// precedence rules. Backs resource files and Wafe's mergeResources command.
//
// Names are interned into the global quark table (src/xt/quark.h) at merge
// time, so matching compares quarks, not strings. Callers on the hot path
// (per-widget resource initialization) should intern their (name, class)
// path once and use the quark Query overload.
#ifndef SRC_XT_XRM_H_
#define SRC_XT_XRM_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/xt/quark.h"

namespace xtk {

class ResourceDatabase {
 public:
  // A fully-qualified (name, class) level of a widget path, interned.
  using QuarkLevel = std::pair<Quark, Quark>;

  // Parses and merges one specification line ("binding: value"). Later
  // entries override identical earlier bindings. Returns false on a
  // malformed line (no colon, empty binding).
  bool MergeLine(std::string_view line);

  // Merges a whole file / string: one specification per line; lines whose
  // first non-blank character is '!' or '#' are comments. Returns the number
  // of specifications merged.
  std::size_t MergeString(std::string_view text);

  // Queries the database. `path` is the fully-qualified (name, class) pair
  // per level from the application down to the widget, and `resource` is the
  // final (name, class) pair. Returns the best-matching value.
  std::optional<std::string> Query(
      const std::vector<std::pair<std::string, std::string>>& path,
      const std::pair<std::string, std::string>& resource) const;

  // Quark fast path: same semantics, no string work. The path quarks must
  // come from Intern() on the same names the string overload would use.
  std::optional<std::string> Query(const std::vector<QuarkLevel>& path,
                                   const QuarkLevel& resource) const;

  std::size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

 private:
  struct Component {
    Quark quark = kNullQuark;
    bool loose = false;  // preceded by '*'
  };
  struct Entry {
    std::vector<Component> components;  // last component is the resource
    std::string value;
    std::size_t serial = 0;  // later merges win ties
  };

  // Returns the match quality vector (one score per path level, higher is
  // better) or nullopt if the entry does not match.
  static std::optional<std::vector<int>> Match(
      const Entry& entry, const std::vector<QuarkLevel>& full_path);

  std::vector<Entry> entries_;
  std::size_t next_serial_ = 0;
};

}  // namespace xtk

#endif  // SRC_XT_XRM_H_
