// Widget classes and instances: the Xt object model. A WidgetClass bundles
// resource declarations, default translations, actions and lifecycle methods
// (initialize / expose / resize / set_values / change_managed); a Widget is
// an instance in the tree with resolved resource values and, once realized,
// a window on the simulated display.
#ifndef SRC_XT_WIDGET_H_
#define SRC_XT_WIDGET_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/xsim/display.h"
#include "src/xt/resource.h"
#include "src/xt/translations.h"
#include "src/xt/value.h"

namespace xtk {

class AppContext;
class Widget;

// An action procedure (XtActionProc): invoked with the widget, the
// triggering event, and the string parameters from the translation table.
using ActionProc =
    std::function<void(Widget&, const xsim::Event&, const std::vector<std::string>&)>;

struct WidgetClass {
  std::string name;  // e.g. "Label"
  const WidgetClass* superclass = nullptr;
  bool composite = false;  // manages children geometry
  bool shell = false;      // top-level or popup shell

  std::vector<ResourceSpec> resources;    // declared by this class only
  std::vector<ResourceSpec> constraints;  // constraint resources for children
  std::string default_translations;       // parsed at first use

  // Lifecycle methods; a null hook defers to the superclass.
  std::function<void(Widget&)> initialize;
  std::function<void(Widget&)> realize;  // post-window-creation hook
  std::function<void(Widget&)> expose;   // redraw content
  std::function<void(Widget&)> resize;
  std::function<void(Widget&)> destroy;
  // Called after a resource changes; `resource` is its name.
  std::function<void(Widget&, const std::string& resource)> set_values;
  // Composite hook: lay out children after the managed set changes.
  std::function<void(Widget&)> change_managed;

  std::map<std::string, ActionProc> actions;

  // True if this class is `ancestor` or derives from it.
  bool IsSubclassOf(const WidgetClass* ancestor) const;
  // Full resource list, superclass first, constraints excluded.
  std::vector<const ResourceSpec*> AllResources() const;
  // Finds a method walking up the chain.
  const ActionProc* FindAction(const std::string& name) const;
};

class Widget {
 public:
  Widget(std::string name, const WidgetClass* cls, Widget* parent, AppContext* app);

  Widget(const Widget&) = delete;
  Widget& operator=(const Widget&) = delete;

  const std::string& name() const { return name_; }
  const WidgetClass* widget_class() const { return class_; }
  Widget* parent() const { return parent_; }
  const std::vector<Widget*>& children() const { return children_; }
  AppContext& app() const { return *app_; }
  xsim::Display& display() const { return *display_; }
  void set_display(xsim::Display* display) { display_ = display; }

  bool realized() const { return realized_; }
  bool managed() const { return managed_; }
  xsim::WindowId window() const { return window_; }

  // --- Resources -------------------------------------------------------------

  // Finds the spec (own classes, then parent constraints). Null if unknown.
  const ResourceSpec* FindSpec(const std::string& name) const;
  bool HasValue(const std::string& name) const;
  const ResourceValue& Value(const std::string& name) const;
  void SetRawValue(const std::string& name, ResourceValue value);

  // Tracks resources set explicitly (creation args, setValues, resource
  // file) as opposed to class defaults; Athena widgets use this, e.g. Label
  // defaults its label to the widget name unless explicitly set.
  void MarkExplicit(const std::string& name) { explicit_.insert(name); }
  bool WasExplicit(const std::string& name) const { return explicit_.count(name) > 0; }

  // Typed accessors with sensible fallbacks for unset values.
  long GetLong(const std::string& name, long fallback = 0) const;
  bool GetBool(const std::string& name, bool fallback = false) const;
  double GetFloat(const std::string& name, double fallback = 0.0) const;
  std::string GetString(const std::string& name) const;
  xsim::Pixel GetPixel(const std::string& name, xsim::Pixel fallback = xsim::kBlackPixel) const;
  xsim::FontPtr GetFont(const std::string& name) const;
  xsim::PixmapPtr GetPixmap(const std::string& name) const;
  const CallbackList* GetCallbacks(const std::string& name) const;
  TranslationsPtr GetTranslations() const;
  std::vector<std::string> GetStringList(const std::string& name) const;
  Widget* GetWidget(const std::string& name) const;

  // Geometry shorthands over the core resources.
  xsim::Position x() const { return static_cast<xsim::Position>(GetLong("x")); }
  xsim::Position y() const { return static_cast<xsim::Position>(GetLong("y")); }
  xsim::Dimension width() const { return static_cast<xsim::Dimension>(GetLong("width", 1)); }
  xsim::Dimension height() const { return static_cast<xsim::Dimension>(GetLong("height", 1)); }
  xsim::Dimension border_width() const {
    return static_cast<xsim::Dimension>(GetLong("borderWidth"));
  }
  void SetGeometry(xsim::Position x, xsim::Position y, xsim::Dimension width,
                   xsim::Dimension height);

  // True when this widget and all ancestors are sensitive.
  bool IsSensitive() const;

  // Fully-qualified instance path ("app.form.button").
  std::string Path() const;

  // --- Lifecycle helpers used by AppContext ------------------------------------

  void AddChild(Widget* child) { children_.push_back(child); }
  void RemoveChild(Widget* child);
  void set_managed(bool managed) { managed_ = managed; }
  void set_realized(bool realized) { realized_ = realized; }
  void set_window(xsim::WindowId window) { window_ = window; }

  // Runs the most-derived non-null hook of the class chain.
  void RunInitialize();
  void RunExpose();
  void RunResize();
  void RunDestroy();
  void RunSetValues(const std::string& resource);
  void RunChangeManaged();

 private:
  std::string name_;
  const WidgetClass* class_;
  Widget* parent_;
  AppContext* app_;
  xsim::Display* display_ = nullptr;
  std::vector<Widget*> children_;
  std::map<std::string, ResourceValue> values_;
  std::set<std::string> explicit_;
  xsim::WindowId window_ = xsim::kNoWindow;
  bool managed_ = true;
  bool realized_ = false;
};

}  // namespace xtk

#endif  // SRC_XT_WIDGET_H_
