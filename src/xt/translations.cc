#include "src/xt/translations.h"

#include <cctype>
#include <map>
#include <mutex>

#include "src/obs/obs.h"

namespace xtk {

namespace {

// Observability instruments for translation management (src/obs).
wobs::Counter g_match_attempts("xt.translations.lookups");
wobs::Counter g_match_hits("xt.translations.matched");
wobs::Counter g_tables_parsed("xt.translations.parsed");
wobs::Counter g_compile_hits("xt.translations.compile.hits");
wobs::Counter g_compile_misses("xt.translations.compile.misses");

struct EventName {
  const char* name;
  xsim::EventType type;
  unsigned button;  // for BtnNDown shorthand
};

constexpr EventName kEventNames[] = {
    {"KeyPress", xsim::EventType::kKeyPress, 0},
    {"Key", xsim::EventType::kKeyPress, 0},
    {"KeyDown", xsim::EventType::kKeyPress, 0},
    {"KeyRelease", xsim::EventType::kKeyRelease, 0},
    {"KeyUp", xsim::EventType::kKeyRelease, 0},
    {"ButtonPress", xsim::EventType::kButtonPress, 0},
    {"BtnDown", xsim::EventType::kButtonPress, 0},
    {"Btn1Down", xsim::EventType::kButtonPress, 1},
    {"Btn2Down", xsim::EventType::kButtonPress, 2},
    {"Btn3Down", xsim::EventType::kButtonPress, 3},
    {"Btn4Down", xsim::EventType::kButtonPress, 4},
    {"Btn5Down", xsim::EventType::kButtonPress, 5},
    {"ButtonRelease", xsim::EventType::kButtonRelease, 0},
    {"BtnUp", xsim::EventType::kButtonRelease, 0},
    {"Btn1Up", xsim::EventType::kButtonRelease, 1},
    {"Btn2Up", xsim::EventType::kButtonRelease, 2},
    {"Btn3Up", xsim::EventType::kButtonRelease, 3},
    {"Btn4Up", xsim::EventType::kButtonRelease, 4},
    {"Btn5Up", xsim::EventType::kButtonRelease, 5},
    {"MotionNotify", xsim::EventType::kMotionNotify, 0},
    {"Motion", xsim::EventType::kMotionNotify, 0},
    {"Btn1Motion", xsim::EventType::kMotionNotify, 0},
    {"Btn2Motion", xsim::EventType::kMotionNotify, 0},
    {"Btn3Motion", xsim::EventType::kMotionNotify, 0},
    {"PtrMoved", xsim::EventType::kMotionNotify, 0},
    {"MouseMoved", xsim::EventType::kMotionNotify, 0},
    {"BtnMotion", xsim::EventType::kMotionNotify, 0},
    {"EnterNotify", xsim::EventType::kEnterNotify, 0},
    {"EnterWindow", xsim::EventType::kEnterNotify, 0},
    {"Enter", xsim::EventType::kEnterNotify, 0},
    {"LeaveNotify", xsim::EventType::kLeaveNotify, 0},
    {"LeaveWindow", xsim::EventType::kLeaveNotify, 0},
    {"Leave", xsim::EventType::kLeaveNotify, 0},
    {"Expose", xsim::EventType::kExpose, 0},
    {"FocusIn", xsim::EventType::kFocusIn, 0},
    {"FocusOut", xsim::EventType::kFocusOut, 0},
    {"ConfigureNotify", xsim::EventType::kConfigureNotify, 0},
    {"ClientMessage", xsim::EventType::kClientMessage, 0},
    {"Message", xsim::EventType::kClientMessage, 0},
};

struct ModifierName {
  const char* name;
  unsigned mask;
};

constexpr ModifierName kModifierNames[] = {
    {"Shift", xsim::kShiftMask}, {"Lock", xsim::kLockMask},
    {"Ctrl", xsim::kControlMask}, {"Control", xsim::kControlMask},
    {"Meta", xsim::kMod1Mask},   {"Mod1", xsim::kMod1Mask},
    {"Alt", xsim::kMod1Mask},    {"Button1", xsim::kButton1Mask},
    {"Button2", xsim::kButton2Mask}, {"Button3", xsim::kButton3Mask},
};

void SkipBlanks(std::string_view text, std::size_t* pos) {
  while (*pos < text.size() && (text[*pos] == ' ' || text[*pos] == '\t')) {
    ++*pos;
  }
}

std::string Trim(std::string_view text) {
  std::size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string_view::npos) {
    return "";
  }
  std::size_t end = text.find_last_not_of(" \t\r\n");
  return std::string(text.substr(begin, end - begin + 1));
}

// Parses the left-hand side of a production up to and including ':'.
bool ParseMatcher(std::string_view lhs, EventMatcher* matcher, std::string* error) {
  std::size_t pos = 0;
  SkipBlanks(lhs, &pos);
  // Modifier prefixes, possibly negated (~) or exact (!).
  for (;;) {
    SkipBlanks(lhs, &pos);
    if (pos < lhs.size() && lhs[pos] == '!') {
      matcher->exact_modifiers = true;
      ++pos;
      continue;
    }
    bool negate = false;
    std::size_t mark = pos;
    if (pos < lhs.size() && lhs[pos] == '~') {
      negate = true;
      ++pos;
    }
    std::size_t start = pos;
    while (pos < lhs.size() && (std::isalnum(static_cast<unsigned char>(lhs[pos])) != 0)) {
      ++pos;
    }
    std::string_view word = lhs.substr(start, pos - start);
    bool matched = false;
    for (const ModifierName& modifier : kModifierNames) {
      if (word == modifier.name) {
        if (negate) {
          matcher->forbidden_modifiers |= modifier.mask;
        } else {
          matcher->required_modifiers |= modifier.mask;
        }
        matched = true;
        break;
      }
    }
    if (!matched) {
      pos = mark;  // not a modifier; must be the '<'
      break;
    }
  }
  SkipBlanks(lhs, &pos);
  if (pos >= lhs.size() || lhs[pos] != '<') {
    *error = "expected '<' in event specification";
    return false;
  }
  ++pos;
  std::size_t close = lhs.find('>', pos);
  if (close == std::string_view::npos) {
    *error = "missing '>' in event specification";
    return false;
  }
  std::string event_name = Trim(lhs.substr(pos, close - pos));
  pos = close + 1;
  bool found = false;
  for (const EventName& name : kEventNames) {
    if (event_name == name.name) {
      matcher->type = name.type;
      matcher->button = name.button;
      found = true;
      break;
    }
  }
  if (!found) {
    *error = "unknown event type \"" + event_name + "\"";
    return false;
  }
  // Detail field (keysym for key events, button number for button events).
  std::string detail = Trim(lhs.substr(pos));
  if (!detail.empty()) {
    if (matcher->type == xsim::EventType::kKeyPress ||
        matcher->type == xsim::EventType::kKeyRelease) {
      std::optional<xsim::KeySym> keysym = xsim::StringToKeysym(detail);
      if (!keysym && detail.size() == 1) {
        keysym = xsim::AsciiToKeysym(detail[0]);
      }
      if (!keysym) {
        *error = "unknown keysym \"" + detail + "\"";
        return false;
      }
      matcher->keysym = *keysym;
    } else if (matcher->type == xsim::EventType::kButtonPress ||
               matcher->type == xsim::EventType::kButtonRelease) {
      if (detail.size() == 1 && detail[0] >= '1' && detail[0] <= '5') {
        matcher->button = static_cast<unsigned>(detail[0] - '0');
      } else {
        *error = "bad button detail \"" + detail + "\"";
        return false;
      }
    } else {
      *error = "detail not supported for this event type";
      return false;
    }
  }
  return true;
}

// Parses the action sequence on the right-hand side: name(args) name2() ...
bool ParseActions(std::string_view rhs, std::vector<ActionCall>* actions, std::string* error) {
  std::size_t pos = 0;
  for (;;) {
    SkipBlanks(rhs, &pos);
    if (pos >= rhs.size()) {
      break;
    }
    std::size_t start = pos;
    while (pos < rhs.size() && rhs[pos] != '(' &&
           !std::isspace(static_cast<unsigned char>(rhs[pos]))) {
      ++pos;
    }
    ActionCall call;
    call.name = std::string(rhs.substr(start, pos - start));
    if (call.name.empty()) {
      *error = "empty action name";
      return false;
    }
    SkipBlanks(rhs, &pos);
    if (pos < rhs.size() && rhs[pos] == '(') {
      ++pos;
      // Parameters are comma-separated at the top level; nested parens and
      // double quotes are respected so exec(echo [gV input string]) and
      // quoted strings survive intact.
      std::string current;
      int depth = 0;
      bool in_quotes = false;
      bool closed = false;
      while (pos < rhs.size()) {
        char c = rhs[pos];
        if (in_quotes) {
          if (c == '"') {
            in_quotes = false;
          } else {
            current.push_back(c);
          }
          ++pos;
          continue;
        }
        if (c == '"') {
          in_quotes = true;
          ++pos;
          continue;
        }
        if (c == '(') {
          ++depth;
          current.push_back(c);
          ++pos;
          continue;
        }
        if (c == ')') {
          if (depth == 0) {
            ++pos;
            closed = true;
            break;
          }
          --depth;
          current.push_back(c);
          ++pos;
          continue;
        }
        if (c == ',' && depth == 0) {
          call.params.push_back(Trim(current));
          current.clear();
          ++pos;
          continue;
        }
        current.push_back(c);
        ++pos;
      }
      if (!closed) {
        *error = "missing ')' in action \"" + call.name + "\"";
        return false;
      }
      std::string trimmed = Trim(current);
      if (!trimmed.empty() || !call.params.empty()) {
        call.params.push_back(trimmed);
      }
    }
    actions->push_back(std::move(call));
  }
  if (actions->empty()) {
    *error = "no actions in production";
    return false;
  }
  return true;
}

}  // namespace

bool EventMatcher::Matches(const xsim::Event& event) const {
  if (event.type != type) {
    return false;
  }
  if (exact_modifiers) {
    if ((event.state & 0xff) != required_modifiers) {
      return false;
    }
  } else {
    if ((event.state & required_modifiers) != required_modifiers) {
      return false;
    }
    if ((event.state & forbidden_modifiers) != 0) {
      return false;
    }
  }
  if (button != 0 && event.button != button) {
    return false;
  }
  if (keysym != xsim::kNoSymbol) {
    // Keysym details match case-insensitively for letters, as Xt does when
    // the Shift modifier is not part of the specification.
    xsim::KeySym event_sym = event.keysym;
    xsim::KeySym want = keysym;
    if (event_sym >= 'A' && event_sym <= 'Z') {
      event_sym = event_sym - 'A' + 'a';
    }
    if (want >= 'A' && want <= 'Z') {
      want = want - 'A' + 'a';
    }
    if (event_sym != want) {
      return false;
    }
  }
  return true;
}

const Production* TranslationTable::Match(const xsim::Event& event) const {
  g_match_attempts.Increment();
  for (const Production& production : productions) {
    if (production.matcher.Matches(event)) {
      g_match_hits.Increment();
      return &production;
    }
  }
  return nullptr;
}

std::shared_ptr<const TranslationTable> ParseTranslations(std::string_view text,
                                                          std::string* error) {
  g_tables_parsed.Increment();
  auto table = std::make_shared<TranslationTable>();
  table->source = std::string(text);
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find('\n', pos);
    std::string_view raw =
        end == std::string_view::npos ? text.substr(pos) : text.substr(pos, end - pos);
    std::string trimmed = Trim(raw);
    // "#override" / "#augment" directives are skipped as comments; the
    // caller decides the merge mode.
    if (!trimmed.empty() && trimmed[0] != '#' && trimmed[0] != '!') {
      std::size_t colon = std::string::npos;
      // The ':' separating matcher from actions is the first one after '>'.
      std::size_t gt = trimmed.find('>');
      if (gt != std::string::npos) {
        colon = trimmed.find(':', gt);
      }
      if (colon == std::string::npos) {
        if (error != nullptr) {
          *error = "missing ':' in translation \"" + trimmed + "\"";
        }
        return nullptr;
      }
      Production production;
      production.source = trimmed;
      std::string parse_error;
      if (!ParseMatcher(std::string_view(trimmed).substr(0, colon), &production.matcher,
                        &parse_error) ||
          !ParseActions(std::string_view(trimmed).substr(colon + 1), &production.actions,
                        &parse_error)) {
        if (error != nullptr) {
          *error = parse_error;
        }
        return nullptr;
      }
      table->productions.push_back(std::move(production));
    }
    if (end == std::string_view::npos) {
      break;
    }
    pos = end + 1;
  }
  return table;
}

namespace {

// The process-wide compilation memo. Tables are immutable once parsed, so
// sharing one instance across widgets (and AppContexts) is safe; the table
// only grows and is never destroyed (widgets may hold the shared_ptrs past
// static destruction).
struct CompiledTables {
  std::mutex mutex;
  std::map<std::string, std::shared_ptr<const TranslationTable>, std::less<>> by_source;

  static CompiledTables& Instance() {
    static CompiledTables* tables = new CompiledTables();
    return *tables;
  }
};

}  // namespace

std::shared_ptr<const TranslationTable> GetCompiledTranslations(std::string_view text,
                                                                std::string* error) {
  CompiledTables& tables = CompiledTables::Instance();
  {
    std::lock_guard lock(tables.mutex);
    auto it = tables.by_source.find(text);
    if (it != tables.by_source.end()) {
      g_compile_hits.Increment();
      return it->second;
    }
  }
  g_compile_misses.Increment();
  std::shared_ptr<const TranslationTable> table = ParseTranslations(text, error);
  if (table == nullptr) {
    return nullptr;
  }
  std::lock_guard lock(tables.mutex);
  return tables.by_source.emplace(std::string(text), std::move(table)).first->second;
}

std::size_t CompiledTranslationCount() {
  CompiledTables& tables = CompiledTables::Instance();
  std::lock_guard lock(tables.mutex);
  return tables.by_source.size();
}

std::shared_ptr<const TranslationTable> MergeTranslations(
    const std::shared_ptr<const TranslationTable>& base,
    const std::shared_ptr<const TranslationTable>& incoming, MergeMode mode) {
  if (mode == MergeMode::kReplace || base == nullptr) {
    return incoming;
  }
  auto merged = std::make_shared<TranslationTable>();
  if (mode == MergeMode::kOverride) {
    merged->productions = incoming->productions;
    merged->productions.insert(merged->productions.end(), base->productions.begin(),
                               base->productions.end());
    merged->source = incoming->source + "\n" + base->source;
  } else {  // augment: base wins
    merged->productions = base->productions;
    merged->productions.insert(merged->productions.end(), incoming->productions.begin(),
                               incoming->productions.end());
    merged->source = base->source + "\n" + incoming->source;
  }
  return merged;
}

}  // namespace xtk
