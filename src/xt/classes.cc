#include "src/xt/classes.h"

namespace xtk {

namespace {

using RT = ResourceType;

// Core resources, declared in the order X11R5 reports them (the paper's
// getResourceList example prints: destroyCallback ancestorSensitive x y
// width height borderWidth sensitive screen depth colormap background ...).
std::vector<ResourceSpec> CoreResources() {
  return {
      {"destroyCallback", "Callback", RT::kCallback, ""},
      {"ancestorSensitive", "Sensitive", RT::kBoolean, "true"},
      {"x", "Position", RT::kPosition, "0"},
      {"y", "Position", RT::kPosition, "0"},
      {"width", "Width", RT::kDimension, "1"},
      {"height", "Height", RT::kDimension, "1"},
      {"borderWidth", "BorderWidth", RT::kDimension, "1"},
      {"sensitive", "Sensitive", RT::kBoolean, "true"},
      {"screen", "Screen", RT::kString, ""},
      {"depth", "Depth", RT::kInt, "24"},
      {"colormap", "Colormap", RT::kString, ""},
      {"background", "Background", RT::kPixel, "XtDefaultBackground"},
      {"backgroundPixmap", "Pixmap", RT::kPixmap, ""},
      {"borderColor", "BorderColor", RT::kPixel, "XtDefaultForeground"},
      {"borderPixmap", "Pixmap", RT::kPixmap, ""},
      {"mappedWhenManaged", "MappedWhenManaged", RT::kBoolean, "true"},
      {"translations", "Translations", RT::kTranslations, ""},
      {"accelerators", "Accelerators", RT::kTranslations, ""},
  };
}

}  // namespace

const WidgetClass* CoreClass() {
  static const WidgetClass* cls = [] {
    auto* c = new WidgetClass();
    c->name = "Core";
    c->resources = CoreResources();
    return c;
  }();
  return cls;
}

const WidgetClass* CompositeClass() {
  static const WidgetClass* cls = [] {
    auto* c = new WidgetClass();
    c->name = "Composite";
    c->superclass = CoreClass();
    c->composite = true;
    return c;
  }();
  return cls;
}

const WidgetClass* ConstraintClass() {
  static const WidgetClass* cls = [] {
    auto* c = new WidgetClass();
    c->name = "Constraint";
    c->superclass = CompositeClass();
    return c;
  }();
  return cls;
}

const WidgetClass* ShellClass() {
  static const WidgetClass* cls = [] {
    auto* c = new WidgetClass();
    c->name = "Shell";
    c->superclass = CompositeClass();
    c->shell = true;
    c->resources = {
        {"allowShellResize", "AllowShellResize", RT::kBoolean, "false"},
        {"geometry", "Geometry", RT::kString, ""},
        {"overrideRedirect", "OverrideRedirect", RT::kBoolean, "false"},
        {"saveUnder", "SaveUnder", RT::kBoolean, "false"},
        {"popupCallback", "Callback", RT::kCallback, ""},
        {"popdownCallback", "Callback", RT::kCallback, ""},
    };
    return c;
  }();
  return cls;
}

const WidgetClass* OverrideShellClass() {
  static const WidgetClass* cls = [] {
    auto* c = new WidgetClass();
    c->name = "OverrideShell";
    c->superclass = ShellClass();
    c->shell = true;
    return c;
  }();
  return cls;
}

const WidgetClass* TransientShellClass() {
  static const WidgetClass* cls = [] {
    auto* c = new WidgetClass();
    c->name = "TransientShell";
    c->superclass = ShellClass();
    c->shell = true;
    c->resources = {
        {"transientFor", "TransientFor", RT::kWidget, ""},
    };
    return c;
  }();
  return cls;
}

const WidgetClass* TopLevelShellClass() {
  static const WidgetClass* cls = [] {
    auto* c = new WidgetClass();
    c->name = "TopLevelShell";
    c->superclass = ShellClass();
    c->shell = true;
    c->resources = {
        {"iconName", "IconName", RT::kString, ""},
        {"iconic", "Iconic", RT::kBoolean, "false"},
        {"title", "Title", RT::kString, ""},
    };
    return c;
  }();
  return cls;
}

const WidgetClass* ApplicationShellClass() {
  static const WidgetClass* cls = [] {
    auto* c = new WidgetClass();
    c->name = "ApplicationShell";
    c->superclass = TopLevelShellClass();
    c->shell = true;
    return c;
  }();
  return cls;
}

void RegisterIntrinsicClasses(AppContext& app) {
  app.RegisterClass(CoreClass());
  app.RegisterClass(CompositeClass());
  app.RegisterClass(ConstraintClass());
  app.RegisterClass(ShellClass());
  app.RegisterClass(OverrideShellClass());
  app.RegisterClass(TransientShellClass());
  app.RegisterClass(TopLevelShellClass());
  app.RegisterClass(ApplicationShellClass());
}

}  // namespace xtk
