#include "src/xt/widget.h"

namespace xtk {

const char* ResourceTypeName(ResourceType type) {
  switch (type) {
    case ResourceType::kInt:
      return "Int";
    case ResourceType::kDimension:
      return "Dimension";
    case ResourceType::kPosition:
      return "Position";
    case ResourceType::kBoolean:
      return "Boolean";
    case ResourceType::kString:
      return "String";
    case ResourceType::kPixel:
      return "Pixel";
    case ResourceType::kFont:
      return "FontStruct";
    case ResourceType::kPixmap:
      return "Pixmap";
    case ResourceType::kCallback:
      return "Callback";
    case ResourceType::kTranslations:
      return "TranslationTable";
    case ResourceType::kStringList:
      return "StringList";
    case ResourceType::kWidget:
      return "Widget";
    case ResourceType::kFloat:
      return "Float";
  }
  return "Unknown";
}

bool WidgetClass::IsSubclassOf(const WidgetClass* ancestor) const {
  for (const WidgetClass* c = this; c != nullptr; c = c->superclass) {
    if (c == ancestor) {
      return true;
    }
  }
  return false;
}

std::vector<const ResourceSpec*> WidgetClass::AllResources() const {
  // Superclass resources first (Core leads the list, as XtGetResourceList
  // reports it).
  std::vector<const WidgetClass*> chain;
  for (const WidgetClass* c = this; c != nullptr; c = c->superclass) {
    chain.push_back(c);
  }
  std::vector<const ResourceSpec*> specs;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    for (const ResourceSpec& spec : (*it)->resources) {
      specs.push_back(&spec);
    }
  }
  return specs;
}

const ActionProc* WidgetClass::FindAction(const std::string& name) const {
  for (const WidgetClass* c = this; c != nullptr; c = c->superclass) {
    auto it = c->actions.find(name);
    if (it != c->actions.end()) {
      return &it->second;
    }
  }
  return nullptr;
}

Widget::Widget(std::string name, const WidgetClass* cls, Widget* parent, AppContext* app)
    : name_(std::move(name)), class_(cls), parent_(parent), app_(app) {
  if (parent != nullptr) {
    display_ = &parent->display();
  }
}

const ResourceSpec* Widget::FindSpec(const std::string& name) const {
  // One intern up front turns the class-chain scan into quark compares.
  const Quark name_quark = Intern(name);
  for (const WidgetClass* c = class_; c != nullptr; c = c->superclass) {
    for (const ResourceSpec& spec : c->resources) {
      if (spec.name_quark() == name_quark) {
        return &spec;
      }
    }
  }
  if (parent_ != nullptr) {
    for (const WidgetClass* c = parent_->widget_class(); c != nullptr; c = c->superclass) {
      for (const ResourceSpec& spec : c->constraints) {
        if (spec.name_quark() == name_quark) {
          return &spec;
        }
      }
    }
  }
  return nullptr;
}

bool Widget::HasValue(const std::string& name) const { return values_.count(name) > 0; }

const ResourceValue& Widget::Value(const std::string& name) const {
  static const ResourceValue kUnset = std::monostate{};
  auto it = values_.find(name);
  return it == values_.end() ? kUnset : it->second;
}

void Widget::SetRawValue(const std::string& name, ResourceValue value) {
  values_[name] = std::move(value);
}

long Widget::GetLong(const std::string& name, long fallback) const {
  const ResourceValue& value = Value(name);
  if (const long* v = std::get_if<long>(&value)) {
    return *v;
  }
  return fallback;
}

bool Widget::GetBool(const std::string& name, bool fallback) const {
  const ResourceValue& value = Value(name);
  if (const bool* v = std::get_if<bool>(&value)) {
    return *v;
  }
  return fallback;
}

double Widget::GetFloat(const std::string& name, double fallback) const {
  const ResourceValue& value = Value(name);
  if (const double* v = std::get_if<double>(&value)) {
    return *v;
  }
  return fallback;
}

std::string Widget::GetString(const std::string& name) const {
  const ResourceValue& value = Value(name);
  if (const std::string* v = std::get_if<std::string>(&value)) {
    return *v;
  }
  return "";
}

xsim::Pixel Widget::GetPixel(const std::string& name, xsim::Pixel fallback) const {
  const ResourceValue& value = Value(name);
  if (const xsim::Pixel* v = std::get_if<xsim::Pixel>(&value)) {
    return *v;
  }
  return fallback;
}

xsim::FontPtr Widget::GetFont(const std::string& name) const {
  const ResourceValue& value = Value(name);
  if (const xsim::FontPtr* v = std::get_if<xsim::FontPtr>(&value)) {
    return *v;
  }
  return nullptr;
}

xsim::PixmapPtr Widget::GetPixmap(const std::string& name) const {
  const ResourceValue& value = Value(name);
  if (const xsim::PixmapPtr* v = std::get_if<xsim::PixmapPtr>(&value)) {
    return *v;
  }
  return nullptr;
}

const CallbackList* Widget::GetCallbacks(const std::string& name) const {
  const ResourceValue& value = Value(name);
  return std::get_if<CallbackList>(&value);
}

TranslationsPtr Widget::GetTranslations() const {
  const ResourceValue& value = Value("translations");
  if (const TranslationsPtr* v = std::get_if<TranslationsPtr>(&value)) {
    return *v;
  }
  return nullptr;
}

std::vector<std::string> Widget::GetStringList(const std::string& name) const {
  const ResourceValue& value = Value(name);
  if (const auto* v = std::get_if<std::vector<std::string>>(&value)) {
    return *v;
  }
  return {};
}

Widget* Widget::GetWidget(const std::string& name) const {
  const ResourceValue& value = Value(name);
  if (Widget* const* v = std::get_if<Widget*>(&value)) {
    return *v;
  }
  return nullptr;
}

void Widget::SetGeometry(xsim::Position x, xsim::Position y, xsim::Dimension width,
                         xsim::Dimension height) {
  if (this->x() == x && this->y() == y && this->width() == width && this->height() == height) {
    return;
  }
  values_["x"] = static_cast<long>(x);
  values_["y"] = static_cast<long>(y);
  values_["width"] = static_cast<long>(width);
  values_["height"] = static_cast<long>(height);
  if (realized_ && window_ != xsim::kNoWindow) {
    display().MoveResizeWindow(window_, xsim::Rect{x, y, width, height});
  }
}

bool Widget::IsSensitive() const {
  for (const Widget* w = this; w != nullptr; w = w->parent()) {
    if (!w->GetBool("sensitive", true)) {
      return false;
    }
  }
  return true;
}

std::string Widget::Path() const {
  if (parent_ == nullptr) {
    return name_;
  }
  return parent_->Path() + "." + name_;
}

void Widget::RemoveChild(Widget* child) {
  for (auto it = children_.begin(); it != children_.end(); ++it) {
    if (*it == child) {
      children_.erase(it);
      return;
    }
  }
}

namespace {

// Runs the most-derived non-null hook in the class chain.
template <typename Member, typename... Args>
void RunHook(const WidgetClass* cls, Member member, Args&&... args) {
  for (const WidgetClass* c = cls; c != nullptr; c = c->superclass) {
    if (c->*member) {
      (c->*member)(std::forward<Args>(args)...);
      return;
    }
  }
}

}  // namespace

void Widget::RunInitialize() {
  // Initialize runs the whole chain, base classes first (Xt semantics).
  std::vector<const WidgetClass*> chain;
  for (const WidgetClass* c = class_; c != nullptr; c = c->superclass) {
    chain.push_back(c);
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    if ((*it)->initialize) {
      (*it)->initialize(*this);
    }
  }
}

void Widget::RunExpose() { RunHook(class_, &WidgetClass::expose, *this); }

void Widget::RunResize() { RunHook(class_, &WidgetClass::resize, *this); }

void Widget::RunDestroy() {
  // Destroy hooks run for every class in the chain, derived first.
  for (const WidgetClass* c = class_; c != nullptr; c = c->superclass) {
    if (c->destroy) {
      c->destroy(*this);
    }
  }
}

void Widget::RunSetValues(const std::string& resource) {
  RunHook(class_, &WidgetClass::set_values, *this, resource);
}

void Widget::RunChangeManaged() { RunHook(class_, &WidgetClass::change_managed, *this); }

}  // namespace xtk
