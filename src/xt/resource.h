// Resource declarations: the per-class resource lists that drive default
// initialization, Xrm lookup, and the string converters.
#ifndef SRC_XT_RESOURCE_H_
#define SRC_XT_RESOURCE_H_

#include <string>

#include "src/xt/quark.h"
#include "src/xt/value.h"

namespace xtk {

// One declared resource of a widget class (XtResource analogue).
struct ResourceSpec {
  std::string name;        // e.g. "background"
  std::string class_name;  // e.g. "Background"
  ResourceType type = ResourceType::kString;
  std::string default_value;  // string form; converted during initialization

  ResourceSpec() = default;
  ResourceSpec(std::string n, std::string c, ResourceType t, std::string d)
      : name(std::move(n)), class_name(std::move(c)), type(t), default_value(std::move(d)) {}

  // Interned (name, class) quarks, filled on first use. Specs are mutated
  // and read on the interpreter thread only.
  Quark name_quark() const {
    if (name_quark_ == kNullQuark) {
      name_quark_ = Intern(name);
    }
    return name_quark_;
  }
  Quark class_quark() const {
    if (class_quark_ == kNullQuark) {
      class_quark_ = Intern(class_name);
    }
    return class_quark_;
  }

 private:
  mutable Quark name_quark_ = kNullQuark;
  mutable Quark class_quark_ = kNullQuark;
};

// Common resource class names are derived by capitalizing the first letter
// unless given explicitly.
inline std::string DefaultResourceClass(const std::string& name) {
  if (name.empty()) {
    return name;
  }
  std::string cls = name;
  if (cls[0] >= 'a' && cls[0] <= 'z') {
    cls[0] = static_cast<char>(cls[0] - 'a' + 'A');
  }
  return cls;
}

}  // namespace xtk

#endif  // SRC_XT_RESOURCE_H_
