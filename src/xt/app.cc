#include "src/xt/app.h"

#include <poll.h>
#include <time.h>

#include <algorithm>

#include "src/obs/obs.h"

namespace xtk {

namespace {

// Observability instruments for the dispatch hot paths (src/obs).
// Per-code protocol-error counters (the aggregate is xt.error.count).
wobs::Counter g_badwindow("xt.error.badwindow");
wobs::Counter g_baddrawable("xt.error.baddrawable");
wobs::Counter g_events_dispatched("xt.events.dispatched");
wobs::Counter g_callbacks_fired("xt.callbacks.fired");
wobs::Counter g_actions_invoked("xt.actions.invoked");
wobs::Histogram g_dispatch_duration("xt.dispatch.duration");
wobs::Histogram g_callback_duration("xt.callback.duration");
wobs::Histogram g_loop_iteration_duration("xt.loop.iteration.duration");
// Idle-anchored loop lag: the busy stretch between one poll returning and
// the next poll being entered — the window in which a slow callback or eval
// starves every other event source.
wobs::Histogram g_loop_lag("xt.loop.lag");

}  // namespace

AppContext::AppContext(std::string app_name, std::string app_class)
    : app_name_(std::move(app_name)), app_class_(std::move(app_class)) {}

AppContext::~AppContext() {
  // Destroy root widgets (and thereby all others) before displays go away.
  std::vector<Widget*> roots = roots_;
  for (Widget* root : roots) {
    DestroyWidget(root);
  }
}

xsim::Display& AppContext::display() { return OpenDisplay(":0"); }

xsim::Display& AppContext::OpenDisplay(const std::string& name) {
  auto it = displays_.find(name);
  if (it == displays_.end()) {
    it = displays_.emplace(name, std::make_unique<xsim::Display>(name)).first;
    // The toolkit drains events in dispatch cycles, so exposures can batch:
    // ProcessPending flushes the coalesced damage at cycle boundaries.
    it->second->SetDamageBatching(true);
    // Protocol errors (operations on destroyed windows) are delivered to the
    // toolkit's handler stack instead of being silently dropped — and never
    // kill the process, matching the fault-containment contract.
    it->second->SetProtocolErrorHandler([this](const xsim::Display::ProtocolError& e) {
      if (e.code == xsim::Display::kBadWindow) {
        g_badwindow.Increment();
      } else if (e.code == xsim::Display::kBadDrawable) {
        g_baddrawable.Increment();
      }
      errors_.RaiseError(xsim::Display::ErrorCodeName(e.code),
                         std::string(e.request) + " on nonexistent resource " +
                             std::to_string(e.resource));
    });
  }
  return *it->second;
}

std::vector<xsim::Display*> AppContext::Displays() const {
  std::vector<xsim::Display*> out;
  for (const auto& [name, display] : displays_) {
    out.push_back(display.get());
  }
  return out;
}

void AppContext::RegisterClass(const WidgetClass* cls) { classes_[cls->name] = cls; }

const WidgetClass* AppContext::FindClass(const std::string& name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : it->second;
}

std::vector<std::string> AppContext::ClassNames() const {
  std::vector<std::string> names;
  for (const auto& [name, cls] : classes_) {
    names.push_back(name);
  }
  return names;
}

void AppContext::RegisterAction(const std::string& name, ActionProc action) {
  global_actions_[name] = std::move(action);
}

const ActionProc* AppContext::FindGlobalAction(const std::string& name) const {
  auto it = global_actions_.find(name);
  return it == global_actions_.end() ? nullptr : &it->second;
}

// --- Widget lifecycle ------------------------------------------------------------

bool AppContext::InitializeResources(
    Widget* widget, const std::vector<std::pair<std::string, std::string>>& args,
    std::string* error) {
  if (!errors_.AllocCheck()) {
    // An armed allocation fault (xtFault allocFailAt=N) fires here, at the
    // start of resource setup: CreateWidget's rollback path must unwind the
    // half-built widget cleanly rather than die.
    errors_.RaiseError("allocError", "allocation failed initializing widget \"" +
                                         widget->name() + "\" (injected fault)");
    if (error != nullptr) {
      *error = "allocation failed for widget \"" + widget->name() + "\"";
    }
    return false;
  }
  // Build the fully-qualified (name, class) path for Xrm queries.
  std::vector<std::pair<std::string, std::string>> path;
  path.emplace_back(app_name_, app_class_);
  std::vector<const Widget*> lineage;
  for (const Widget* w = widget; w != nullptr; w = w->parent()) {
    lineage.push_back(w);
  }
  for (auto it = lineage.rbegin(); it != lineage.rend(); ++it) {
    path.emplace_back((*it)->name(), (*it)->widget_class()->name);
  }
  path.pop_back();  // the widget itself becomes part of the resource query

  // Gather all applicable specs: class chain + parent constraints.
  std::vector<const ResourceSpec*> specs = widget->widget_class()->AllResources();
  if (widget->parent() != nullptr) {
    for (const WidgetClass* c = widget->parent()->widget_class(); c != nullptr;
         c = c->superclass) {
      for (const ResourceSpec& spec : c->constraints) {
        specs.push_back(&spec);
      }
    }
  }

  // Intern the widget path once; each per-spec query below is then pure
  // quark (integer) matching against the database.
  std::vector<ResourceDatabase::QuarkLevel> widget_path;
  widget_path.reserve(path.size() + 1);
  for (const auto& [level_name, level_class] : path) {
    widget_path.emplace_back(Intern(level_name), Intern(level_class));
  }
  widget_path.emplace_back(Intern(widget->name()), Intern(widget->widget_class()->name));
  const bool have_db = resource_db_.size() != 0;
  // Reuse: Query() takes path-to-widget plus the resource pair, so the
  // widget itself is the last path element.
  for (const ResourceSpec* spec : specs) {
    std::string input;
    bool have_input = false;
    for (const auto& [arg_name, arg_value] : args) {
      if (arg_name == spec->name) {
        input = arg_value;
        have_input = true;
      }
    }
    bool from_db = false;
    if (!have_input && have_db) {
      if (auto db_value = resource_db_.Query(
              widget_path, {spec->name_quark(), spec->class_quark()})) {
        input = *db_value;
        have_input = true;
        from_db = true;
      }
    }
    if (!have_input) {
      input = spec->default_value;
    }
    ResourceValue value;
    std::string convert_error;
    bool converted = converters_.Convert(spec->type, input, widget, &value, &convert_error);
    if (!converted && from_db) {
      // A bad database value (e.g. `*background: nosuchcolor`) must not
      // abort every widget creation it touches: warn once — the default
      // warning handler dedups per (type, value) — and fall back to the
      // class default, as Xt's conversion warnings do.
      errors_.RaiseWarning("conversionError", convert_error + "; using class default");
      input = spec->default_value;
      convert_error.clear();
      converted = converters_.Convert(spec->type, input, widget, &value, &convert_error);
      have_input = false;
    }
    if (!converted) {
      errors_.RaiseError("conversionError", "resource " + spec->name + ": " + convert_error);
      if (error != nullptr) {
        *error = "resource " + spec->name + ": " + convert_error;
      }
      return false;
    }
    widget->SetRawValue(spec->name, std::move(value));
    if (have_input) {
      widget->MarkExplicit(spec->name);
    }
  }
  // Reject creation args that name no declared resource: Wafe reports these
  // instead of silently dropping them.
  for (const auto& [arg_name, arg_value] : args) {
    bool known = false;
    for (const ResourceSpec* spec : specs) {
      if (spec->name == arg_name) {
        known = true;
        break;
      }
    }
    if (!known) {
      if (error != nullptr) {
        *error = "unknown resource \"" + arg_name + "\" for widget class " +
                 widget->widget_class()->name;
      }
      return false;
    }
  }
  return true;
}

Widget* AppContext::CreateWidget(const std::string& name, const std::string& class_name,
                                 Widget* parent,
                                 const std::vector<std::pair<std::string, std::string>>& args,
                                 bool managed, std::string* error) {
  const WidgetClass* cls = FindClass(class_name);
  if (cls == nullptr) {
    if (error != nullptr) {
      *error = "unknown widget class \"" + class_name + "\"";
    }
    return nullptr;
  }
  if (widgets_.count(name) > 0) {
    if (error != nullptr) {
      *error = "widget \"" + name + "\" already exists";
    }
    return nullptr;
  }
  if (parent == nullptr && !cls->shell) {
    if (error != nullptr) {
      *error = "only shells can be created without a parent";
    }
    return nullptr;
  }
  auto owned = std::make_unique<Widget>(name, cls, parent, this);
  Widget* widget = owned.get();
  widgets_[name] = std::move(owned);
  if (parent != nullptr) {
    parent->AddChild(widget);
  } else {
    roots_.push_back(widget);
    widget->set_display(&display());
  }
  widget->set_managed(managed);
  if (!InitializeResources(widget, args, error)) {
    if (parent != nullptr) {
      parent->RemoveChild(widget);
    } else {
      roots_.erase(std::remove(roots_.begin(), roots_.end(), widget), roots_.end());
    }
    widgets_.erase(name);
    return nullptr;
  }
  // Default translations come from the class when the resource is unset.
  if (widget->GetTranslations() == nullptr) {
    for (const WidgetClass* c = cls; c != nullptr; c = c->superclass) {
      if (!c->default_translations.empty()) {
        std::string parse_error;
        // Compiled once per class text: every widget of the class shares the
        // same immutable table instead of re-parsing on creation.
        TranslationsPtr table = GetCompiledTranslations(c->default_translations, &parse_error);
        if (table != nullptr) {
          widget->SetRawValue("translations", table);
        }
        break;
      }
    }
  }
  widget->RunInitialize();
  if (parent != nullptr && managed) {
    parent->RunChangeManaged();
    // Creating a managed child under a realized parent realizes it too.
    if (parent->realized()) {
      RealizeTree(widget);
    }
  }
  return widget;
}

Widget* AppContext::CreateShell(const std::string& name, const std::string& class_name,
                                xsim::Display* shell_display,
                                const std::vector<std::pair<std::string, std::string>>& args,
                                std::string* error) {
  Widget* widget = CreateWidget(name, class_name, nullptr, args, /*managed=*/false, error);
  if (widget != nullptr && shell_display != nullptr) {
    widget->set_display(shell_display);
  }
  return widget;
}

void AppContext::DestroySubtree(Widget* widget) {
  // Children first.
  std::vector<Widget*> children = widget->children();
  for (Widget* child : children) {
    DestroySubtree(child);
  }
  // Selections owned by a dying widget are disposed with it.
  for (auto it = selections_.begin(); it != selections_.end();) {
    if (it->second.owner == widget) {
      it = selections_.erase(it);
    } else {
      ++it;
    }
  }
  widget->RunDestroy();
  if (widget->window() != xsim::kNoWindow) {
    widget->display().DestroyWindow(widget->window());
    widget->set_window(xsim::kNoWindow);
  }
  widgets_.erase(widget->name());  // frees the Widget and all its resources
}

void AppContext::DestroyWidget(Widget* widget) {
  if (widget == nullptr) {
    return;
  }
  // Fire destroyCallback before teardown, as Xt does.
  CallCallbacks(widget, "destroyCallback", CallData{});
  Widget* parent = widget->parent();
  popped_up_.erase(std::remove(popped_up_.begin(), popped_up_.end(), widget),
                   popped_up_.end());
  if (parent != nullptr) {
    parent->RemoveChild(widget);
  } else {
    roots_.erase(std::remove(roots_.begin(), roots_.end(), widget), roots_.end());
  }
  DestroySubtree(widget);
  if (parent != nullptr) {
    parent->RunChangeManaged();
  }
}

Widget* AppContext::FindWidget(const std::string& name) const {
  auto it = widgets_.find(name);
  return it == widgets_.end() ? nullptr : it->second.get();
}

std::vector<std::string> AppContext::WidgetNames() const {
  std::vector<std::string> names;
  for (const auto& [name, widget] : widgets_) {
    names.push_back(name);
  }
  return names;
}

void AppContext::ManageChild(Widget* widget) {
  if (widget == nullptr || widget->managed()) {
    return;
  }
  widget->set_managed(true);
  if (widget->parent() != nullptr) {
    widget->parent()->RunChangeManaged();
    if (widget->parent()->realized()) {
      if (!widget->realized()) {
        RealizeTree(widget);
      } else if (widget->window() != xsim::kNoWindow) {
        widget->display().MapWindow(widget->window());
      }
    }
  }
}

void AppContext::UnmanageChild(Widget* widget) {
  if (widget == nullptr || !widget->managed()) {
    return;
  }
  widget->set_managed(false);
  if (widget->window() != xsim::kNoWindow) {
    widget->display().UnmapWindow(widget->window());
  }
  if (widget->parent() != nullptr) {
    widget->parent()->RunChangeManaged();
  }
}

void AppContext::RealizeTree(Widget* widget) {
  if (!widget->realized()) {
    xsim::Display& d = widget->display();
    // Popup shells get root-level windows even when nested in the widget
    // tree: they must not be clipped by their parent.
    xsim::WindowId parent_window =
        widget->parent() != nullptr && widget->parent()->window() != xsim::kNoWindow &&
                !widget->widget_class()->shell
            ? widget->parent()->window()
            : d.root();
    xsim::Rect geometry{widget->x(), widget->y(), widget->width(), widget->height()};
    xsim::WindowId window = d.CreateWindow(parent_window, geometry, widget->border_width(),
                                           widget->GetPixel("background", xsim::kWhitePixel));
    widget->set_window(window);
    widget->set_realized(true);
    if (widget->widget_class()->realize) {
      widget->widget_class()->realize(*widget);
    }
  }
  for (Widget* child : widget->children()) {
    if (child->widget_class()->shell) {
      // Popup shells realize lazily, at popup time (XtPopup semantics).
      continue;
    }
    // Ensure each child inherits the display of its parent (multi-display
    // shells set their own).
    child->set_display(&widget->display());
    RealizeTree(child);
  }
  bool mapped_when_managed = widget->GetBool("mappedWhenManaged", true);
  if ((widget->managed() || widget->parent() == nullptr) && mapped_when_managed) {
    // Shells (roots) map on realize via XtRealizeWidget semantics only when
    // popped up or when they are application shells; Wafe's `realize`
    // command maps the top level, so we map roots here too.
    widget->display().MapWindow(widget->window());
  }
}

void AppContext::RealizeWidget(Widget* widget) {
  if (widget == nullptr) {
    return;
  }
  if (widget->parent() == nullptr && widget->widget_class()->shell &&
      !widget->WasExplicit("width") && !widget->children().empty()) {
    // Shells size themselves to the bounding box of their children
    // (simplified shell geometry management; popup-shell children are
    // positioned at popup time and do not contribute).
    xsim::Dimension want_w = 1;
    xsim::Dimension want_h = 1;
    for (Widget* child : widget->children()) {
      if (child->widget_class()->shell) {
        continue;
      }
      xsim::Dimension right = static_cast<xsim::Dimension>(
          std::max<long>(0, child->x()) + child->width() + 2 * child->border_width());
      xsim::Dimension bottom = static_cast<xsim::Dimension>(
          std::max<long>(0, child->y()) + child->height() + 2 * child->border_width());
      want_w = std::max(want_w, right);
      want_h = std::max(want_h, bottom);
    }
    if (want_w > 1 && want_h > 1) {
      widget->SetGeometry(widget->x(), widget->y(), want_w, want_h);
    }
  }
  RealizeTree(widget);
  ProcessPending();
}

void AppContext::UnrealizeWidget(Widget* widget) {
  if (widget == nullptr || !widget->realized()) {
    return;
  }
  for (Widget* child : widget->children()) {
    UnrealizeWidget(child);
  }
  if (widget->window() != xsim::kNoWindow) {
    widget->display().DestroyWindow(widget->window());
    widget->set_window(xsim::kNoWindow);
  }
  widget->set_realized(false);
}

// --- Resources ----------------------------------------------------------------------

bool AppContext::SetValues(Widget* widget,
                           const std::vector<std::pair<std::string, std::string>>& args,
                           std::string* error) {
  for (const auto& [name, input] : args) {
    const ResourceSpec* spec = widget->FindSpec(name);
    if (spec == nullptr) {
      if (error != nullptr) {
        *error = "unknown resource \"" + name + "\" for widget " + widget->name();
      }
      return false;
    }
    ResourceValue value;
    std::string convert_error;
    if (!converters_.Convert(spec->type, input, widget, &value, &convert_error)) {
      if (error != nullptr) {
        *error = "resource " + name + ": " + convert_error;
      }
      return false;
    }
    // Wafe's memory-management guarantee — "every time a string resource is
    // updated, the old value is freed" — falls out of value semantics here:
    // the assignment releases the previous value.
    widget->SetRawValue(name, std::move(value));
    widget->MarkExplicit(name);
    widget->RunSetValues(name);
    if (name == "x" || name == "y" || name == "width" || name == "height") {
      if (widget->realized()) {
        widget->display().MoveResizeWindow(
            widget->window(),
            xsim::Rect{widget->x(), widget->y(), widget->width(), widget->height()});
        if (widget->parent() != nullptr) {
          widget->parent()->RunChangeManaged();
        }
      }
    }
    if (name == "background" && widget->realized()) {
      widget->display().SetWindowBackground(widget->window(),
                                            widget->GetPixel("background", xsim::kWhitePixel));
    }
  }
  if (widget->realized()) {
    // Damage instead of painting directly: a geometry change above already
    // queued exposure damage, so going through the display coalesces both
    // into the single Redraw that ProcessPending triggers.
    widget->display().AddDamage(
        widget->window(), xsim::Rect{0, 0, widget->width(), widget->height()});
    ProcessPending();
  }
  return true;
}

bool AppContext::GetValue(Widget* widget, const std::string& resource, std::string* out,
                          std::string* error) {
  const ResourceSpec* spec = widget->FindSpec(resource);
  if (spec == nullptr) {
    if (error != nullptr) {
      *error = "unknown resource \"" + resource + "\" for widget " + widget->name();
    }
    return false;
  }
  *out = converters_.Format(spec->type, widget->Value(resource));
  return true;
}

// --- Callbacks and actions ---------------------------------------------------------

void AppContext::CallCallbacks(Widget* widget, const std::string& resource,
                               const CallData& data) {
  if (widget == nullptr || !widget->IsSensitive()) {
    return;
  }
  const CallbackList* list = widget->GetCallbacks(resource);
  if (list == nullptr) {
    return;
  }
  wobs::ScopedEvent obs_span("xt", resource, &g_callback_duration);
  // Copy: a callback may modify the list (or destroy the widget).
  CallbackList copy = *list;
  for (const Callback& callback : copy) {
    if (callback.fn) {
      g_callbacks_fired.Increment();
      callback.fn(*widget, data);
    }
  }
}

bool AppContext::InvokeAction(Widget* widget, const std::string& name,
                              const xsim::Event& event,
                              const std::vector<std::string>& params) {
  wobs::ScopedEvent obs_span("xt", name);
  if (widget != nullptr) {
    if (const ActionProc* action = widget->widget_class()->FindAction(name)) {
      g_actions_invoked.Increment();
      (*action)(*widget, event, params);
      return true;
    }
  }
  auto it = global_actions_.find(name);
  if (it != global_actions_.end() && widget != nullptr) {
    g_actions_invoked.Increment();
    it->second(*widget, event, params);
    return true;
  }
  return false;
}

// --- Event handling -------------------------------------------------------------------

Widget* AppContext::WindowToWidget(const xsim::Display& d, xsim::WindowId window) const {
  for (const auto& [name, widget] : widgets_) {
    if (widget->window() == window && &widget->display() == &d) {
      return widget.get();
    }
  }
  return nullptr;
}

void AppContext::Redraw(Widget* widget) {
  if (widget == nullptr || !widget->realized() || widget->window() == xsim::kNoWindow) {
    return;
  }
  if (!widget->display().IsViewable(widget->window())) {
    return;
  }
  widget->display().ClearWindow(widget->window());
  widget->RunExpose();
  ++redraw_count_;
  // The simulated display has a flat painter-model framebuffer, so repainting
  // a parent repaints over its children; repair them in stacking order.
  for (Widget* child : widget->children()) {
    Redraw(child);
  }
}

void AppContext::DispatchEvent(const xsim::Event& event) {
  g_events_dispatched.Increment();
  wobs::ScopedEvent obs_span("xt", xsim::EventTypeName(event.type),
                             &g_dispatch_duration);
  // Locate the owning display (events carry no display pointer).
  xsim::Display* event_display = nullptr;
  Widget* widget = nullptr;
  for (const auto& [name, d] : displays_) {
    if ((widget = WindowToWidget(*d, event.window)) != nullptr) {
      event_display = d.get();
      break;
    }
  }
  (void)event_display;
  if (widget == nullptr) {
    return;
  }
  switch (event.type) {
    case xsim::EventType::kExpose:
      Redraw(widget);
      return;
    case xsim::EventType::kConfigureNotify: {
      // Keep the geometry resources in sync with the window.
      widget->SetRawValue("x", static_cast<long>(event.configure.x));
      widget->SetRawValue("y", static_cast<long>(event.configure.y));
      widget->SetRawValue("width", static_cast<long>(event.configure.width));
      widget->SetRawValue("height", static_cast<long>(event.configure.height));
      widget->RunResize();
      return;
    }
    case xsim::EventType::kMapNotify:
    case xsim::EventType::kUnmapNotify:
    case xsim::EventType::kDestroyNotify:
      return;
    case xsim::EventType::kSelectionClear: {
      // Another widget (or client) took the selection away.
      auto it = selections_.find(event.message);
      if (it != selections_.end() && it->second.owner == widget) {
        selections_.erase(it);
      }
      return;
    }
    default:
      break;
  }
  if (!widget->IsSensitive()) {
    return;
  }
  TranslationsPtr translations = widget->GetTranslations();
  if (translations == nullptr) {
    return;
  }
  const Production* production = translations->Match(event);
  if (production == nullptr) {
    return;
  }
  // Accelerator productions redirect their actions to the source widget.
  Widget* action_widget = widget;
  if (!production->target.empty()) {
    action_widget = FindWidget(production->target);
    if (action_widget == nullptr || !action_widget->IsSensitive()) {
      return;
    }
  }
  for (const ActionCall& call : production->actions) {
    InvokeAction(action_widget, call.name, event, call.params);
  }
}

std::size_t AppContext::ProcessPending() {
  std::size_t dispatched = 0;
  bool any = true;
  while (any) {
    any = false;
    for (const auto& [name, d] : displays_) {
      while (d->Pending()) {
        xsim::Event event = d->NextEvent();
        DispatchEvent(event);
        ++dispatched;
        any = true;
      }
      // End of this display's dispatch cycle: deliver the damage that the
      // cycle accumulated, coalesced to one Expose per window subtree.
      if (d->FlushDamage() > 0) {
        any = true;
      }
    }
  }
  return dispatched;
}

// --- Selections ------------------------------------------------------------------------

void AppContext::OwnSelection(Widget* widget, const std::string& selection,
                              std::function<std::string()> convert) {
  if (widget == nullptr) {
    return;
  }
  selections_[selection] = Selection{widget, std::move(convert)};
  if (widget->window() != xsim::kNoWindow) {
    widget->display().SetSelectionOwner(selection, widget->window());
  }
}

void AppContext::DisownSelection(const std::string& selection) {
  auto it = selections_.find(selection);
  if (it == selections_.end()) {
    return;
  }
  Widget* owner = it->second.owner;
  if (owner != nullptr && owner->window() != xsim::kNoWindow) {
    owner->display().SetSelectionOwner(selection, xsim::kNoWindow);
  }
  selections_.erase(it);
}

std::optional<std::string> AppContext::GetSelectionValue(const std::string& selection) const {
  auto it = selections_.find(selection);
  if (it == selections_.end() || !it->second.convert) {
    return std::nullopt;
  }
  return it->second.convert();
}

Widget* AppContext::SelectionOwnerWidget(const std::string& selection) const {
  auto it = selections_.find(selection);
  return it == selections_.end() ? nullptr : it->second.owner;
}

// --- Accelerators ------------------------------------------------------------------------

bool AppContext::InstallAccelerators(Widget* dest, Widget* src) {
  if (dest == nullptr || src == nullptr) {
    return false;
  }
  const ResourceValue& value = src->Value("accelerators");
  const TranslationsPtr* accelerators = std::get_if<TranslationsPtr>(&value);
  if (accelerators == nullptr || *accelerators == nullptr ||
      (*accelerators)->productions.empty()) {
    return false;
  }
  auto merged = std::make_shared<TranslationTable>();
  for (Production production : (*accelerators)->productions) {
    production.target = src->name();
    merged->productions.push_back(std::move(production));
  }
  merged->source = (*accelerators)->source;
  dest->SetRawValue("translations",
                    MergeTranslations(dest->GetTranslations(), merged, MergeMode::kOverride));
  return true;
}

// --- Popups ---------------------------------------------------------------------------

void AppContext::Popup(Widget* shell, GrabKind grab) {
  if (shell == nullptr) {
    return;
  }
  if (!shell->realized()) {
    RealizeTree(shell);
  }
  shell->display().MapWindow(shell->window());
  shell->display().RaiseWindow(shell->window());
  if (grab != GrabKind::kNone) {
    shell->display().GrabPointer(shell->window(), grab == GrabKind::kNonexclusive);
  }
  popped_up_.push_back(shell);
  ProcessPending();
}

void AppContext::Popdown(Widget* shell) {
  if (shell == nullptr || shell->window() == xsim::kNoWindow) {
    return;
  }
  shell->display().UnmapWindow(shell->window());
  if (shell->display().PointerGrab() == shell->window()) {
    shell->display().UngrabPointer();
  }
  popped_up_.erase(std::remove(popped_up_.begin(), popped_up_.end(), shell),
                   popped_up_.end());
  ProcessPending();
}

bool AppContext::IsPoppedUp(const Widget* shell) const {
  return std::find(popped_up_.begin(), popped_up_.end(), shell) != popped_up_.end();
}

// --- Main loop ------------------------------------------------------------------------

std::int64_t AppContext::NowMs() {
  // Routed through the obs clock so a replay's virtual time governs timer
  // deadlines (and the supervision backoff built on AddTimeout) too.
  return static_cast<std::int64_t>(wobs::NowNs() / 1000000ull);
}

int AppContext::AddTimeout(long ms, TimerFn fn) {
  Timer timer;
  timer.id = next_timer_id_++;
  timer.deadline_ms = NowMs() + ms;
  timer.fn = std::move(fn);
  timers_.push_back(std::move(timer));
  return timers_.back().id;
}

void AppContext::RemoveTimeout(int id) {
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [id](const Timer& t) { return t.id == id; }),
                timers_.end());
}

int AppContext::AddInput(int fd, InputFn fn) {
  Input input;
  input.id = next_input_id_++;
  input.fd = fd;
  input.fn = std::move(fn);
  inputs_.push_back(std::move(input));
  return inputs_.back().id;
}

void AppContext::RemoveInput(int id) {
  inputs_.erase(std::remove_if(inputs_.begin(), inputs_.end(),
                               [id](const Input& i) { return i.id == id; }),
                inputs_.end());
}

int AppContext::AddOutput(int fd, InputFn fn) {
  Input output;
  output.id = next_input_id_++;
  output.fd = fd;
  output.fn = std::move(fn);
  outputs_.push_back(std::move(output));
  return outputs_.back().id;
}

void AppContext::RemoveOutput(int id) {
  outputs_.erase(std::remove_if(outputs_.begin(), outputs_.end(),
                                [id](const Input& i) { return i.id == id; }),
                 outputs_.end());
}

bool AppContext::RunOneIteration(bool block) {
  wobs::ScopedEvent obs_span("xt", "loop-iteration", &g_loop_iteration_duration);
  if (ProcessPending() > 0) {
    return true;
  }
  // Compute the poll timeout from the nearest timer.
  int timeout = block ? -1 : 0;
  std::int64_t now = NowMs();
  for (const Timer& timer : timers_) {
    long remaining = static_cast<long>(timer.deadline_ms - now);
    if (remaining < 0) {
      remaining = 0;
    }
    if (timeout < 0 || remaining < timeout) {
      timeout = static_cast<int>(remaining);
    }
  }
  if (inputs_.empty() && outputs_.empty() && timers_.empty()) {
    return false;
  }
  std::vector<pollfd> fds;
  fds.reserve(inputs_.size() + outputs_.size());
  for (const Input& input : inputs_) {
    fds.push_back(pollfd{input.fd, POLLIN | POLLHUP, 0});
  }
  for (const Input& output : outputs_) {
    fds.push_back(pollfd{output.fd, POLLOUT, 0});
  }
  // The loop-lag probe anchors on idle (the poll) rather than on iteration
  // boundaries: non-polling iterations — the early ProcessPending return
  // above — extend the measured busy stretch instead of resetting it.
  unsigned obs_mask = wobs::EnabledMask();
  if (obs_mask != 0 && loop_busy_anchor_ns_ != 0) {
    std::uint64_t lag = wobs::NowNs() - loop_busy_anchor_ns_;
    if ((obs_mask & wobs::kMetricsBit) != 0) {
      g_loop_lag.Record(lag);
    }
    if ((obs_mask & wobs::kSlowBit) != 0) {
      wobs::internal::NoteSlow("xt", "loop-lag", lag);
    }
  }
  int ready = ::poll(fds.data(), fds.size(), timeout);
  loop_busy_anchor_ns_ = wobs::EnabledMask() != 0 ? wobs::NowNs() : 0;
  bool worked = false;
  if (ready > 0) {
    // Snapshot ids: handlers may add/remove sources.
    struct Fired {
      bool output;
      int id;
      int fd;
    };
    std::vector<Fired> fired;
    for (std::size_t i = 0; i < inputs_.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        fired.push_back(Fired{false, inputs_[i].id, inputs_[i].fd});
      }
    }
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
      if ((fds[inputs_.size() + i].revents & (POLLOUT | POLLHUP | POLLERR)) != 0) {
        fired.push_back(Fired{true, outputs_[i].id, outputs_[i].fd});
      }
    }
    for (const Fired& f : fired) {
      const std::vector<Input>& sources = f.output ? outputs_ : inputs_;
      for (const Input& source : sources) {
        if (source.id == f.id) {
          InputFn fn = source.fn;
          fn(f.fd);
          worked = true;
          break;
        }
      }
    }
  }
  // Fire due timers.
  now = NowMs();
  std::vector<Timer> due;
  timers_.erase(std::remove_if(timers_.begin(), timers_.end(),
                               [&](const Timer& t) {
                                 if (t.deadline_ms <= now) {
                                   due.push_back(t);
                                   return true;
                                 }
                                 return false;
                               }),
                timers_.end());
  for (const Timer& timer : due) {
    if (timer_observer_) {
      timer_observer_(timer.id);
    }
    timer.fn();
    worked = true;
  }
  worked |= ProcessPending() > 0;
  return worked;
}

bool AppContext::FireTimerForReplay(int id) {
  auto it = std::find_if(timers_.begin(), timers_.end(),
                         [id](const Timer& t) { return t.id == id; });
  if (it == timers_.end()) {
    return false;
  }
  TimerFn fn = std::move(it->fn);
  timers_.erase(it);
  fn();
  return true;
}

void AppContext::MainLoop() {
  loop_break_ = false;
  while (!loop_break_) {
    if (inputs_.empty() && outputs_.empty() && timers_.empty()) {
      // Nothing can ever wake us again; drain events and stop.
      ProcessPending();
      break;
    }
    RunOneIteration(/*block=*/true);
  }
}

}  // namespace xtk
