#include "src/xt/quark.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/obs/obs.h"

namespace xtk {

namespace {

wobs::Counter g_quark_interns("xt.quark.interns");
wobs::Gauge g_quark_count("xt.quark.count");

// Names live in a deque so interned strings never move; the map keys are
// views into that storage and the by-quark vector points at it too.
struct QuarkTable {
  std::shared_mutex mutex;
  std::deque<std::string> names;
  std::unordered_map<std::string_view, Quark> by_name;
  std::vector<const std::string*> by_quark;  // index = quark - 1

  // Never destroyed: quarks handed out may be resolved from static
  // destructors (obs instruments, cached specs).
  static QuarkTable& Instance() {
    static QuarkTable* table = new QuarkTable();
    return *table;
  }
};

const std::string& EmptyName() {
  static const std::string* empty = new std::string();
  return *empty;
}

}  // namespace

Quark Intern(std::string_view name) {
  if (name.empty()) {
    return kNullQuark;
  }
  QuarkTable& table = QuarkTable::Instance();
  {
    std::shared_lock lock(table.mutex);
    auto it = table.by_name.find(name);
    if (it != table.by_name.end()) {
      return it->second;
    }
  }
  std::unique_lock lock(table.mutex);
  auto it = table.by_name.find(name);
  if (it != table.by_name.end()) {
    return it->second;
  }
  table.names.emplace_back(name);
  const std::string& stored = table.names.back();
  Quark quark = static_cast<Quark>(table.by_quark.size() + 1);
  table.by_quark.push_back(&stored);
  table.by_name.emplace(std::string_view(stored), quark);
  g_quark_interns.Increment();
  g_quark_count.Set(table.by_quark.size());
  return quark;
}

Quark FindQuark(std::string_view name) {
  if (name.empty()) {
    return kNullQuark;
  }
  QuarkTable& table = QuarkTable::Instance();
  std::shared_lock lock(table.mutex);
  auto it = table.by_name.find(name);
  return it == table.by_name.end() ? kNullQuark : it->second;
}

const std::string& QuarkName(Quark quark) {
  if (quark == kNullQuark) {
    return EmptyName();
  }
  QuarkTable& table = QuarkTable::Instance();
  std::shared_lock lock(table.mutex);
  std::size_t index = static_cast<std::size_t>(quark) - 1;
  if (index >= table.by_quark.size()) {
    return EmptyName();
  }
  return *table.by_quark[index];
}

std::size_t QuarkCount() {
  QuarkTable& table = QuarkTable::Instance();
  std::shared_lock lock(table.mutex);
  return table.by_quark.size();
}

Quark QuestionQuark() {
  static const Quark quark = Intern("?");
  return quark;
}

}  // namespace xtk
