// Global quark table: interns resource, class, and representation names so
// the resource pipeline (Xrm lookup, spec matching, command naming) compares
// small integers instead of strings. Mirrors XrmStringToQuark /
// XrmQuarkToString: quarks are stable for the process lifetime and the table
// only grows. All entry points are thread-safe.
#ifndef SRC_XT_QUARK_H_
#define SRC_XT_QUARK_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace xtk {

using Quark = std::uint32_t;

// The empty string interns to kNullQuark; no other name maps to it.
inline constexpr Quark kNullQuark = 0;

// Returns the quark for `name`, creating it on first sight. Two calls with
// equal strings always return the same quark.
Quark Intern(std::string_view name);

// Returns the quark for `name` if it has been interned, kNullQuark
// otherwise (never creates an entry).
Quark FindQuark(std::string_view name);

// The name a quark was interned from. Valid for the process lifetime.
// Passing a quark never returned by Intern yields the empty string.
const std::string& QuarkName(Quark quark);

// Number of distinct non-empty names interned so far.
std::size_t QuarkCount();

// The quark for "?" (the Xrm single-level wildcard), pre-interned.
Quark QuestionQuark();

}  // namespace xtk

#endif  // SRC_XT_QUARK_H_
