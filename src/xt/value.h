// Resource value representation for the Intrinsics clone. Xt stores typed
// values produced by string converters; we model that with a variant over
// the types the supported widget sets use.
#ifndef SRC_XT_VALUE_H_
#define SRC_XT_VALUE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/xsim/color.h"
#include "src/xsim/font.h"
#include "src/xsim/pixmap.h"

namespace xtk {

class Widget;
struct TranslationTable;

// Data a widget passes to its callback functions (Xt's client_data /
// call_data). Keyed by the percent-code letter Wafe exposes (e.g. the Athena
// List widget provides "i" = index and "s" = active element).
struct CallData {
  std::map<std::string, std::string> fields;

  std::string Get(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? std::string() : it->second;
  }
};

// One entry of a callback list: an invocable plus the string form it was
// converted from. Wafe (unlike Xt) can read a callback resource back as a
// string, so the source is kept alongside the function.
struct Callback {
  std::string source;
  std::function<void(Widget&, const CallData&)> fn;
};

using CallbackList = std::vector<Callback>;
using TranslationsPtr = std::shared_ptr<const TranslationTable>;

// The typed value of a resource.
using ResourceValue =
    std::variant<std::monostate,            // unset
                 long,                      // Int / Dimension / Position
                 bool,                      // Boolean
                 double,                    // Float
                 std::string,               // String and string-backed enums
                 xsim::Pixel,               // Pixel (colors)
                 xsim::FontPtr,             // Font
                 xsim::PixmapPtr,           // Bitmap / Pixmap
                 CallbackList,              // Callback
                 TranslationsPtr,           // TranslationTable
                 std::vector<std::string>,  // StringList (List widget items)
                 Widget*>;                  // Widget references (constraints)

// The declared type of a resource, selecting the converter.
enum class ResourceType {
  kInt,
  kDimension,
  kPosition,
  kBoolean,
  kString,
  kPixel,
  kFont,
  kPixmap,
  kCallback,
  kTranslations,
  kStringList,
  kWidget,
  kFloat,
};

const char* ResourceTypeName(ResourceType type);

}  // namespace xtk

#endif  // SRC_XT_VALUE_H_
