// Toolkit error containment: an R5-style XtAppSetErrorHandler /
// XtAppSetWarningHandler equivalent with explicit push/pop semantics, plus
// the fault-injection state the `xtFault` command arms. The resourceful
// defaults warn-and-continue — warnings deduplicated per (name, message)
// pair — instead of spamming stderr or aborting the process, so a frontend
// serving an untrusted backend outlives its toolkit-level failures.
#ifndef SRC_XT_ERROR_H_
#define SRC_XT_ERROR_H_

#include <cstddef>
#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace xtk {

// One toolkit-level error or warning, as delivered to a handler.
struct ToolkitError {
  bool warning = false;
  std::string name;     // e.g. "conversionError", "BadWindow", "allocError"
  std::string message;
};

using ErrorHandlerProc = std::function<void(const ToolkitError&)>;

// Fault-injection knobs for the toolkit layer (`xtFault` / WAFE_XT_FAULT).
// Converter failures are armed on the ConverterRegistry directly.
struct XtFaults {
  long alloc_fail_at = 0;  // fail the Nth allocation from arming; 0 disables
  long allocs_seen = 0;    // allocations counted since arming
};

class ErrorContext {
 public:
  // --- Handler stacks --------------------------------------------------------
  //
  // The top of each stack receives raised conditions; popping restores the
  // previous handler (XtAppSetErrorHandler's "returns the old handler"
  // idiom, made explicit). With an empty stack the defaults run.
  void PushErrorHandler(ErrorHandlerProc handler);
  bool PopErrorHandler();
  void PushWarningHandler(ErrorHandlerProc handler);
  bool PopWarningHandler();
  std::size_t error_handler_depth() const { return error_stack_.size(); }
  std::size_t warning_handler_depth() const { return warning_stack_.size(); }

  // --- Raising ---------------------------------------------------------------

  // Routes to the top handler, or to the default when the stack is empty or
  // a handler is already running (a handler that itself errors must not
  // recurse). Neither ever aborts the process.
  void RaiseError(const std::string& name, const std::string& message);
  void RaiseWarning(const std::string& name, const std::string& message);

  // The default disposition: errors log unconditionally; warnings log once
  // per (name, message) pair and count the rest as deduplicated. Public so
  // an installed handler can fall through to it.
  void DefaultHandle(const ToolkitError& e);

  std::size_t errors_raised() const { return errors_raised_; }
  std::size_t warnings_raised() const { return warnings_raised_; }
  std::size_t warnings_deduped() const { return warnings_deduped_; }
  void ResetWarningDedup() { seen_warnings_.clear(); }

  // --- Fault injection -------------------------------------------------------

  XtFaults& faults() { return faults_; }

  // Counts one simulated allocation; returns false when the armed failure
  // fires. The caller reports through RaiseError and unwinds with cleanup.
  bool AllocCheck();

 private:
  std::vector<ErrorHandlerProc> error_stack_;
  std::vector<ErrorHandlerProc> warning_stack_;
  std::set<std::pair<std::string, std::string>> seen_warnings_;
  bool in_handler_ = false;
  std::size_t errors_raised_ = 0;
  std::size_t warnings_raised_ = 0;
  std::size_t warnings_deduped_ = 0;
  XtFaults faults_;
};

}  // namespace xtk

#endif  // SRC_XT_ERROR_H_
