// Translation tables: the Xt mechanism binding event descriptions to action
// sequences. Parses the classic syntax the paper's examples use —
//   <EnterWindow>: PopupMenu()
//   <Key>Return:   exec(echo [gV input string])
//   Shift<Btn1Down>: set() notify()
// and matches incoming events against the productions.
#ifndef SRC_XT_TRANSLATIONS_H_
#define SRC_XT_TRANSLATIONS_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/xsim/event.h"

namespace xtk {

// One bound action invocation: name plus its parenthesized parameters.
struct ActionCall {
  std::string name;
  std::vector<std::string> params;
};

// The event half of a production.
struct EventMatcher {
  xsim::EventType type = xsim::EventType::kNone;
  unsigned required_modifiers = 0;   // must be set in event.state
  unsigned forbidden_modifiers = 0;  // must be clear (from ~Mod prefixes)
  bool exact_modifiers = false;      // '!' prefix: state must equal required
  unsigned button = 0;               // nonzero for BtnNDown/BtnNUp forms
  xsim::KeySym keysym = xsim::kNoSymbol;  // nonzero for <Key>X detail

  bool Matches(const xsim::Event& event) const;
};

struct Production {
  EventMatcher matcher;
  std::vector<ActionCall> actions;
  std::string source;  // the original line, for reverse conversion
  // Accelerators: when non-empty, the actions run on this widget (by name)
  // rather than on the widget the event arrived in.
  std::string target;
};

struct TranslationTable {
  std::vector<Production> productions;
  std::string source;  // full original text

  // First production whose matcher accepts the event (Xt uses first-match).
  const Production* Match(const xsim::Event& event) const;
};

// Parses a translation specification (one production per line or per
// newline-separated segment). Returns nullptr and fills *error on failure.
std::shared_ptr<const TranslationTable> ParseTranslations(std::string_view text,
                                                          std::string* error);

// Memoized front end to ParseTranslations: identical source text yields the
// same immutable shared table, compiled once per process. Class default
// translations and the Translations converter go through here so N widgets
// of a class share one parsed matcher structure. Parse failures are not
// cached. Thread-safe.
std::shared_ptr<const TranslationTable> GetCompiledTranslations(std::string_view text,
                                                                std::string* error);

// Number of distinct translation sources compiled so far (tests/metrics).
std::size_t CompiledTranslationCount();

// How `action`-style modifications combine tables.
enum class MergeMode { kReplace, kOverride, kAugment };

// Merges `incoming` into `base` per mode: override puts incoming productions
// first (they win), augment puts them last, replace discards base.
std::shared_ptr<const TranslationTable> MergeTranslations(
    const std::shared_ptr<const TranslationTable>& base,
    const std::shared_ptr<const TranslationTable>& incoming, MergeMode mode);

}  // namespace xtk

#endif  // SRC_XT_TRANSLATIONS_H_
