#include "src/xt/error.h"

#include <cstdio>

#include "src/obs/obs.h"

namespace xtk {

namespace {

wobs::Counter g_errors("xt.error.count");
wobs::Counter g_warnings("xt.warning.count");
wobs::Counter g_warnings_deduped("xt.warning.deduped");

}  // namespace

void ErrorContext::PushErrorHandler(ErrorHandlerProc handler) {
  error_stack_.push_back(std::move(handler));
}

bool ErrorContext::PopErrorHandler() {
  if (error_stack_.empty()) {
    return false;
  }
  error_stack_.pop_back();
  return true;
}

void ErrorContext::PushWarningHandler(ErrorHandlerProc handler) {
  warning_stack_.push_back(std::move(handler));
}

bool ErrorContext::PopWarningHandler() {
  if (warning_stack_.empty()) {
    return false;
  }
  warning_stack_.pop_back();
  return true;
}

void ErrorContext::DefaultHandle(const ToolkitError& e) {
  if (e.warning) {
    if (!seen_warnings_.emplace(e.name, e.message).second) {
      ++warnings_deduped_;
      g_warnings_deduped.Increment();
      return;
    }
    std::fprintf(stderr, "Wafe warning: %s: %s\n", e.name.c_str(), e.message.c_str());
    return;
  }
  // Unlike Xt's _XtDefaultError this never exits: the frontend must outlive
  // its toolkit errors and report them over the channel instead.
  std::fprintf(stderr, "Wafe error: %s: %s\n", e.name.c_str(), e.message.c_str());
}

void ErrorContext::RaiseError(const std::string& name, const std::string& message) {
  ++errors_raised_;
  g_errors.Increment();
  wobs::Log("xt", "error " + name + ": " + message, false);
  // A raised (not merely warned) toolkit error is a containment event:
  // preserve the evidence before any handler reacts. No-op without a flight
  // directory; rate-limited inside against error storms.
  wobs::DumpFlightRecord("xt-error-" + name);
  ToolkitError e{false, name, message};
  if (error_stack_.empty() || in_handler_) {
    DefaultHandle(e);
    return;
  }
  // Copy the handler: it may push/pop the stack while running.
  ErrorHandlerProc handler = error_stack_.back();
  in_handler_ = true;
  handler(e);
  in_handler_ = false;
}

void ErrorContext::RaiseWarning(const std::string& name, const std::string& message) {
  ++warnings_raised_;
  g_warnings.Increment();
  ToolkitError e{true, name, message};
  if (warning_stack_.empty() || in_handler_) {
    DefaultHandle(e);
    return;
  }
  ErrorHandlerProc handler = warning_stack_.back();
  in_handler_ = true;
  handler(e);
  in_handler_ = false;
}

bool ErrorContext::AllocCheck() {
  if (faults_.alloc_fail_at <= 0) {
    return true;
  }
  if (++faults_.allocs_seen == faults_.alloc_fail_at) {
    faults_.alloc_fail_at = 0;
    faults_.allocs_seen = 0;
    return false;
  }
  return true;
}

}  // namespace xtk
