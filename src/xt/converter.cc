#include "src/xt/converter.h"

#include <cstdlib>

#include "src/obs/obs.h"
#include "src/xsim/font.h"
#include "src/xt/app.h"
#include "src/xt/widget.h"

namespace xtk {

namespace {

wobs::Counter g_cache_hits("xt.converter.cache.hits");
wobs::Counter g_cache_misses("xt.converter.cache.misses");
wobs::Counter g_cache_invalidations("xt.converter.cache.invalidations");

bool ConvertLong(const std::string& input, long* out) {
  if (input.empty()) {
    *out = 0;
    return true;
  }
  char* end = nullptr;
  long v = std::strtol(input.c_str(), &end, 10);
  if (end == input.c_str() || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

std::string Lower(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  return out;
}

}  // namespace

ConverterRegistry::ConverterRegistry() {
  Register(ResourceType::kInt,
           [](const std::string& input, Widget*, ResourceValue* out, std::string* error) {
             long v = 0;
             if (!ConvertLong(input, &v)) {
               *error = "cannot convert \"" + input + "\" to Int";
               return false;
             }
             *out = v;
             return true;
           });
  Register(ResourceType::kDimension,
           [](const std::string& input, Widget*, ResourceValue* out, std::string* error) {
             long v = 0;
             if (!ConvertLong(input, &v) || v < 0) {
               *error = "cannot convert \"" + input + "\" to Dimension";
               return false;
             }
             *out = v;
             return true;
           });
  Register(ResourceType::kPosition,
           [](const std::string& input, Widget*, ResourceValue* out, std::string* error) {
             long v = 0;
             if (!ConvertLong(input, &v)) {
               *error = "cannot convert \"" + input + "\" to Position";
               return false;
             }
             *out = v;
             return true;
           });
  Register(ResourceType::kBoolean,
           [](const std::string& input, Widget*, ResourceValue* out, std::string* error) {
             std::string lower = Lower(input);
             if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") {
               *out = true;
               return true;
             }
             if (lower == "false" || lower == "no" || lower == "off" || lower == "0" ||
                 lower.empty()) {
               *out = false;
               return true;
             }
             *error = "cannot convert \"" + input + "\" to Boolean";
             return false;
           });
  Register(ResourceType::kFloat,
           [](const std::string& input, Widget*, ResourceValue* out, std::string* error) {
             if (input.empty()) {
               *out = 0.0;
               return true;
             }
             char* end = nullptr;
             double v = std::strtod(input.c_str(), &end);
             if (end == input.c_str() || *end != '\0') {
               *error = "cannot convert \"" + input + "\" to Float";
               return false;
             }
             *out = v;
             return true;
           });
  Register(ResourceType::kString,
           [](const std::string& input, Widget*, ResourceValue* out, std::string*) {
             *out = input;
             return true;
           });
  Register(ResourceType::kPixel,
           [](const std::string& input, Widget*, ResourceValue* out, std::string* error) {
             if (input.empty() || Lower(input) == "xtdefaultforeground") {
               *out = xsim::kBlackPixel;
               return true;
             }
             if (Lower(input) == "xtdefaultbackground") {
               *out = xsim::kWhitePixel;
               return true;
             }
             if (auto pixel = xsim::LookupColor(input)) {
               *out = *pixel;
               return true;
             }
             *error = "cannot convert \"" + input + "\" to Pixel: no such color";
             return false;
           });
  Register(ResourceType::kFont,
           [](const std::string& input, Widget*, ResourceValue* out, std::string* error) {
             std::string pattern = input;
             if (pattern.empty() || Lower(pattern) == "xtdefaultfont") {
               pattern = "fixed";
             }
             xsim::FontPtr font = xsim::FontRegistry::Default().Open(pattern);
             if (font == nullptr) {
               // XLFD patterns in resource files frequently lack the leading
               // dash-wildcard; retry with surrounding stars.
               font = xsim::FontRegistry::Default().Open("*" + pattern + "*");
             }
             if (font == nullptr) {
               *error = "cannot convert \"" + input + "\" to FontStruct: no matching font";
               return false;
             }
             *out = font;
             return true;
           });
  Register(ResourceType::kPixmap,
           [](const std::string& input, Widget*, ResourceValue* out, std::string* error) {
             if (input.empty() || Lower(input) == "none") {
               *out = xsim::PixmapPtr{};
               return true;
             }
             // The base converter only accepts inline XBM/XPM source; Wafe
             // replaces it with one that also reads files.
             xsim::PixmapPtr pixmap = xsim::ParseBitmapOrPixmap(input);
             if (pixmap == nullptr) {
               *error = "cannot convert \"" + input + "\" to Pixmap";
               return false;
             }
             *out = pixmap;
             return true;
           });
  Register(ResourceType::kTranslations,
           [](const std::string& input, Widget*, ResourceValue* out, std::string* error) {
             if (input.empty()) {
               // Unset: lets the class default translations apply.
               *out = TranslationsPtr{};
               return true;
             }
             std::string parse_error;
             TranslationsPtr table = GetCompiledTranslations(input, &parse_error);
             if (table == nullptr) {
               *error = "cannot convert to TranslationTable: " + parse_error;
               return false;
             }
             *out = table;
             return true;
           });
  Register(ResourceType::kStringList,
           [](const std::string& input, Widget*, ResourceValue* out, std::string*) {
             // Comma-separated, as the Athena List widget's resource file
             // syntax specifies.
             std::vector<std::string> items;
             std::string current;
             for (char c : input) {
               if (c == ',') {
                 items.push_back(current);
                 current.clear();
               } else {
                 current.push_back(c);
               }
             }
             if (!current.empty() || !items.empty()) {
               items.push_back(current);
             }
             *out = items;
             return true;
           });
  Register(ResourceType::kWidget,
           [](const std::string& input, Widget* widget, ResourceValue* out,
              std::string* error) {
             if (input.empty() || Lower(input) == "none" || Lower(input) == "null") {
               *out = static_cast<Widget*>(nullptr);
               return true;
             }
             if (widget == nullptr) {
               *error = "cannot resolve widget \"" + input + "\" without a context";
               return false;
             }
             Widget* target = widget->app().FindWidget(input);
             if (target == nullptr) {
               *error = "cannot convert \"" + input + "\" to Widget: no such widget";
               return false;
             }
             *out = target;
             return true;
           });
  Register(ResourceType::kCallback,
           [](const std::string& input, Widget*, ResourceValue* out, std::string*) {
             // Base behavior: store an inert callback carrying the source
             // string. Wafe replaces this converter with one that evaluates
             // the string as a Tcl script.
             CallbackList list;
             if (!input.empty()) {
               Callback callback;
               callback.source = input;
               list.push_back(std::move(callback));
             }
             *out = list;
             return true;
           });

  // --- Reverse converters -----------------------------------------------------

  RegisterFormat(ResourceType::kInt, [](const ResourceValue& value) {
    const long* v = std::get_if<long>(&value);
    return v == nullptr ? std::string() : std::to_string(*v);
  });
  RegisterFormat(ResourceType::kDimension, [](const ResourceValue& value) {
    const long* v = std::get_if<long>(&value);
    return v == nullptr ? std::string() : std::to_string(*v);
  });
  RegisterFormat(ResourceType::kPosition, [](const ResourceValue& value) {
    const long* v = std::get_if<long>(&value);
    return v == nullptr ? std::string() : std::to_string(*v);
  });
  RegisterFormat(ResourceType::kBoolean, [](const ResourceValue& value) {
    const bool* v = std::get_if<bool>(&value);
    return std::string(v != nullptr && *v ? "True" : "False");
  });
  RegisterFormat(ResourceType::kFloat, [](const ResourceValue& value) {
    const double* v = std::get_if<double>(&value);
    if (v == nullptr) {
      return std::string();
    }
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%g", *v);
    return std::string(buffer);
  });
  RegisterFormat(ResourceType::kString, [](const ResourceValue& value) {
    const std::string* v = std::get_if<std::string>(&value);
    return v == nullptr ? std::string() : *v;
  });
  RegisterFormat(ResourceType::kPixel, [](const ResourceValue& value) {
    const xsim::Pixel* v = std::get_if<xsim::Pixel>(&value);
    return v == nullptr ? std::string() : xsim::FormatColor(*v);
  });
  RegisterFormat(ResourceType::kFont, [](const ResourceValue& value) {
    const xsim::FontPtr* v = std::get_if<xsim::FontPtr>(&value);
    return v == nullptr || *v == nullptr ? std::string() : (*v)->name;
  });
  RegisterFormat(ResourceType::kPixmap, [](const ResourceValue& value) {
    const xsim::PixmapPtr* v = std::get_if<xsim::PixmapPtr>(&value);
    return v == nullptr || *v == nullptr ? std::string("None") : (*v)->name;
  });
  RegisterFormat(ResourceType::kCallback, [](const ResourceValue& value) {
    const CallbackList* list = std::get_if<CallbackList>(&value);
    if (list == nullptr || list->empty()) {
      return std::string();
    }
    std::string out;
    for (const Callback& callback : *list) {
      if (!out.empty()) {
        out += "; ";
      }
      out += callback.source;
    }
    return out;
  });
  RegisterFormat(ResourceType::kTranslations, [](const ResourceValue& value) {
    const TranslationsPtr* v = std::get_if<TranslationsPtr>(&value);
    return v == nullptr || *v == nullptr ? std::string() : (*v)->source;
  });
  RegisterFormat(ResourceType::kStringList, [](const ResourceValue& value) {
    const auto* v = std::get_if<std::vector<std::string>>(&value);
    if (v == nullptr) {
      return std::string();
    }
    std::string out;
    for (std::size_t i = 0; i < v->size(); ++i) {
      if (i != 0) {
        out.push_back(',');
      }
      out += (*v)[i];
    }
    return out;
  });
  RegisterFormat(ResourceType::kWidget, [](const ResourceValue& value) {
    Widget* const* v = std::get_if<Widget*>(&value);
    return v == nullptr || *v == nullptr ? std::string() : (*v)->name();
  });

  // Every standard converter above is a pure function of its input except
  // kWidget, which resolves names through the live widget tree. Replacements
  // registered later (Wafe's Callback / file-reading Pixmap / XmString)
  // declare their own cacheability.
  for (auto& [type, entry] : converters_) {
    entry.cacheable = type != ResourceType::kWidget;
  }
}

void ConverterRegistry::Register(ResourceType type, ConvertFn convert, bool cacheable) {
  // A replacement converter may compute different results; drop anything the
  // previous one cached for this type.
  InvalidateCache(type);
  converters_[type] = ConverterEntry{std::move(convert), cacheable};
}

void ConverterRegistry::RegisterFormat(ResourceType type, FormatFn format) {
  formatters_[type] = std::move(format);
}

void ConverterRegistry::InvalidateCache() {
  if (!cache_.empty()) {
    g_cache_invalidations.Increment();
  }
  cache_.clear();
}

void ConverterRegistry::InvalidateCache(ResourceType type) {
  std::size_t erased = std::erase_if(
      cache_, [type](const auto& entry) { return entry.first.first == type; });
  if (erased != 0) {
    g_cache_invalidations.Increment();
  }
}

bool ConverterRegistry::Convert(ResourceType type, const std::string& input, Widget* widget,
                                ResourceValue* out, std::string* error) const {
  auto it = converters_.find(type);
  if (it == converters_.end()) {
    *error = std::string("no converter for type ") + ResourceTypeName(type);
    return false;
  }
  if (inject_failures_ > 0) {
    --inject_failures_;
    *error = std::string("cannot convert \"") + input + "\" to " + ResourceTypeName(type) +
             ": injected converter fault";
    return false;
  }
  const ConverterEntry& entry = it->second;
  const bool use_cache = cache_enabled_ && entry.cacheable;
  if (use_cache) {
    auto hit = cache_.find({type, input});
    if (hit != cache_.end()) {
      g_cache_hits.Increment();
      *out = hit->second;
      return true;
    }
    g_cache_misses.Increment();
  }
  if (!entry.fn(input, widget, out, error)) {
    return false;
  }
  if (use_cache) {
    cache_.emplace(std::make_pair(type, input), *out);
  }
  return true;
}

std::string ConverterRegistry::Format(ResourceType type, const ResourceValue& value) const {
  auto it = formatters_.find(type);
  if (it == formatters_.end()) {
    return "";
  }
  return it->second(value);
}

}  // namespace xtk
