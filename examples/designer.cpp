// Miniature xwafedesign (Figure 6): an interactive-mode session that builds
// a widget tree step by step, inspects resources as it goes, and dumps the
// resulting tree — demonstrating the paper's point that the interactive
// mode lets a designer "see how the widget tree is built and modified step
// by step".
#include <cstdio>
#include <sstream>

#include "src/core/wafe.h"

namespace {

void DumpTree(xtk::Widget* widget, int depth) {
  std::printf("%*s%s (%s) %dx%d+%d+%d%s\n", depth * 2, "", widget->name().c_str(),
              widget->widget_class()->name.c_str(), widget->width(), widget->height(),
              widget->x(), widget->y(), widget->managed() ? "" : " [unmanaged]");
  for (xtk::Widget* child : widget->children()) {
    DumpTree(child, depth + 1);
  }
}

}  // namespace

int main() {
  wafe::Wafe app;

  // An interactive design session, fed line by line as a user would type it.
  std::istringstream session(
      "form layout topLevel\n"
      "label heading layout label {Designer Demo}\n"
      "command okBtn layout fromVert heading label OK\n"
      "command cancelBtn layout fromVert heading fromHoriz okBtn label Cancel\n"
      "toggle opt layout fromVert okBtn label {Option A} state true\n"
      "getResourceList okBtn names\n"
      "sV heading background gray75\n"
      "gV heading background\n"
      "realize\n");
  std::ostringstream transcript;
  app.RunInteractive(session, transcript);
  std::printf("== interactive transcript ==\n%s\n", transcript.str().c_str());

  std::printf("== resulting widget tree ==\n");
  DumpTree(app.top_level(), 0);

  std::printf("\n== generated reference (excerpt) ==\n");
  std::string reference = app.specs().ReferenceText();
  // Print the first dozen lines only.
  std::istringstream lines(reference);
  std::string line;
  for (int i = 0; i < 12 && std::getline(lines, line); ++i) {
    std::printf("%s\n", line.c_str());
  }
  std::printf("...\n(%zu commands total: %zu spec-generated, %zu handwritten, %zu creation)\n",
              app.specs().total_count(), app.specs().generated_count(),
              app.specs().handwritten_count(), app.specs().creation_command_count());
  return 0;
}
