// The paper's frontend-mode demo: a backend application (the Perl program in
// the paper, ported) computes prime factors for integers typed into an
// Athena asciiText widget. This binary plays both roles: run without
// arguments it is the *frontend* (it forks itself with --backend as the
// child) and simulates a user typing numbers; with --backend it is the
// application program, speaking the %-line protocol over stdio.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/comm.h"
#include "src/core/wafe.h"

namespace {

// --- The backend: the paper's Perl program, in C++ ------------------------------

void Send(const std::string& line) {
  std::string out = line + "\n";
  if (::write(1, out.data(), out.size()) < 0) {
    std::exit(1);
  }
}

bool ReadLine(std::string* line) {
  line->clear();
  char c = 0;
  for (;;) {
    ssize_t n = ::read(0, &c, 1);
    if (n <= 0) {
      return false;
    }
    if (c == '\n') {
      return true;
    }
    line->push_back(c);
  }
}

int RunBackend() {
  // Phase 2: build the widget tree (verbatim from the paper, modulo
  // brace-quoting of multi-word values).
  Send("%form top topLevel");
  Send("%asciiText input top editType edit width 200");
  Send("%action input override {<Key>Return: exec(echo [gV input string])}");
  Send("%label result top label {} width 200 fromVert input");
  Send("%command quit top fromVert result callback quit");
  Send("%label info top fromVert result fromHoriz quit label {} borderWidth 0 width 150");
  Send("%realize");
  // Phase 3: the read loop.
  std::string line;
  while (ReadLine(&line)) {
    bool numeric = !line.empty();
    for (char c : line) {
      numeric = numeric && c >= '0' && c <= '9';
    }
    if (!numeric) {
      Send("%sV info label {(invalid input)}");
      continue;
    }
    Send("%sV info label thinking...");
    long n = std::strtol(line.c_str(), nullptr, 10);
    std::string factors;
    for (long d = 2; d <= n; ++d) {
      while (n % d == 0) {
        if (!factors.empty()) {
          factors += "*";
        }
        factors += std::to_string(d);
        n /= d;
      }
    }
    if (factors.empty()) {
      factors = line;
    }
    Send("%sV result label {" + factors + "}");
    Send("%sV info label {0 seconds}");
  }
  return 0;
}

// --- The frontend: Wafe + a simulated user ----------------------------------------

int RunFrontendDemo(const char* self) {
  wafe::Wafe app;
  app.set_backend_output(true);
  std::string error;
  if (!app.frontend().SpawnBackend(self, {"--backend"}, &error)) {
    std::fprintf(stderr, "spawn failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("== phase 1: backend spawned (pid %d) ==\n", app.frontend().backend_pid());

  // Phase 2: wait until the backend has built and realized the tree.
  while (app.app().FindWidget("input") == nullptr ||
         !app.app().FindWidget("input")->realized()) {
    app.app().RunOneIteration(true);
  }
  std::printf("== phase 2: widget tree built by the backend ==\n");
  for (const char* name : {"top", "input", "result", "quit", "info"}) {
    xtk::Widget* w = app.app().FindWidget(name);
    std::printf("   %-6s %-10s at (%d,%d) %ux%u\n", name, w->widget_class()->name.c_str(),
                w->x(), w->y(), w->width(), w->height());
  }

  // Phase 3: the user types numbers; each Return round-trips to the backend.
  xsim::Display& display = app.app().display();
  xtk::Widget* input = app.app().FindWidget("input");
  display.SetInputFocus(input->window());

  for (const char* number : {"120", "1997", "65536"}) {
    // Clear the widget, type the number, press Return.
    app.Eval("sV input string {}");
    display.InjectText(number);
    display.InjectKeyPress(xsim::kKeyReturn);
    app.app().ProcessPending();
    // Pump until the backend's answer lands in the result label.
    std::string result;
    for (int i = 0; i < 1000; ++i) {
      app.app().RunOneIteration(true);
      result = app.app().FindWidget("result")->GetString("label");
      if (!result.empty() && app.app().FindWidget("info")->GetString("label") ==
                                  "0 seconds") {
        break;
      }
    }
    std::printf("== phase 3: %s = %s ==\n", number, result.c_str());
  }

  // The user clicks the quit button.
  xtk::Widget* quit = app.app().FindWidget("quit");
  xsim::Point p = display.RootPosition(quit->window());
  display.InjectButtonPress(p.x + 2, p.y + 2, 1);
  display.InjectButtonRelease(p.x + 2, p.y + 2, 1);
  app.app().ProcessPending();
  std::printf("== quit button pressed; session over ==\n");
  app.frontend().CloseBackend();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--backend") == 0) {
    return RunBackend();
  }
  return RunFrontendDemo(argv[0]);
}
