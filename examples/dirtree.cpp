// xdirtree analogue: browse a real directory tree in an Athena List widget.
// Selecting a directory entry (a synthetic click in this headless demo)
// descends into it; the ".." entry goes back up. The selection callback uses
// the List widget's %s percent code, exactly as a Wafe script would.
#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/wafe.h"
#include "src/xaw/athena.h"

namespace {

std::vector<std::string> ListDirectory(const std::string& path) {
  std::vector<std::string> entries;
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) {
    return entries;
  }
  while (dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") {
      continue;
    }
    struct stat st {};
    if (::stat((path + "/" + name).c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      name += "/";
    }
    entries.push_back(name);
  }
  ::closedir(dir);
  std::sort(entries.begin(), entries.end());
  entries.insert(entries.begin(), "..");
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : ".";
  wafe::Wafe app;

  app.Eval(
      "form f topLevel\n"
      "label path f label {} width 300 justify left borderWidth 0\n"
      "list files f fromVert path width 380 height 500\n"
      "realize");

  // The selection callback reports the chosen item back; a real application
  // program would receive this line on stdin.
  app.Eval("sV files callback {set selection %s}");

  std::string current = root;
  auto refresh = [&] {
    app.Eval("sV path label {" + current + "}");
    std::vector<std::string> entries = ListDirectory(current);
    xtk::Widget* files = app.app().FindWidget("files");
    xaw::ListChange(*files, entries, false);
    app.app().ProcessPending();
    return entries;
  };

  std::vector<std::string> entries = refresh();
  std::printf("browsing %s (%zu entries)\n", current.c_str(), entries.size());

  // Simulate a user descending into the first two subdirectories found.
  for (int step = 0; step < 2; ++step) {
    auto it = std::find_if(entries.begin() + 1, entries.end(),
                           [](const std::string& e) { return e.back() == '/'; });
    if (it == entries.end()) {
      std::printf("no further subdirectories.\n");
      break;
    }
    int index = static_cast<int>(it - entries.begin());
    // Click the row: row geometry mirrors the List widget's layout.
    xtk::Widget* files = app.app().FindWidget("files");
    xsim::FontPtr font = xsim::FontRegistry::Default().Open("fixed");
    long row_height = static_cast<long>(font->Height()) + 2;
    xsim::Point origin = app.app().display().RootPosition(files->window());
    xsim::Position y =
        origin.y + static_cast<xsim::Position>(2 + row_height * index + row_height / 2);
    app.app().display().InjectButtonPress(origin.x + 3, y, 1);
    app.app().display().InjectButtonRelease(origin.x + 3, y, 1);
    app.app().ProcessPending();

    std::string selection;
    app.interp().GetVar("selection", &selection);
    std::printf("selected: %s\n", selection.c_str());
    if (selection.empty() || selection.back() != '/') {
      break;
    }
    current += "/" + selection.substr(0, selection.size() - 1);
    entries = refresh();
    std::printf("now in %s (%zu entries)\n", current.c_str(), entries.size());
  }

  std::printf("path label shows: %s\n",
              app.app().FindWidget("path")->GetString("label").c_str());
  return 0;
}
