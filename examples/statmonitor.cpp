// xnetstats / xvmstats analogue (the Wafe distribution ships frontends for
// netstat/vmstat/iostat): a backend streams periodic interface statistics
// which the frontend displays in labels, a StripChart, and a Plotter
// BarGraph (one of the extension widget sets the paper mentions).
//
// The statistics are synthetic (deterministic waves) because the paper's
// substrate — a live network interface — is not available headlessly; the
// code path exercised (periodic %-commands updating realized widgets) is
// identical.
#include <cstdio>
#include <string>

#include "src/core/wafe.h"

namespace {

// Deterministic "interface packet counts" for tick t.
long RxPackets(int t) { return 500 + (t * 137) % 400 + (t % 7) * 55; }
long TxPackets(int t) { return 300 + (t * 91) % 350 + (t % 5) * 40; }

}  // namespace

int main() {
  wafe::Wafe app;

  // The frontend layout an xnetstats-style script would build.
  wtcl::Result r = app.Eval(
      "form f topLevel\n"
      "label title f label {Interface statistics (sim0)} borderWidth 0\n"
      "label rxLab f fromVert title label {rx: 0} width 120 justify left\n"
      "label txLab f fromVert rxLab label {tx: 0} width 120 justify left\n"
      "stripChart chart f fromVert txLab width 200 height 50\n"
      "barGraph bars f fromVert chart width 200 height 60\n"
      "realize\n");
  if (r.code != wtcl::Status::kOk) {
    std::fprintf(stderr, "error: %s\n", r.value.c_str());
    return 1;
  }

  std::printf("monitoring 24 intervals...\n");
  std::string bar_data = "{";
  for (int t = 0; t < 24; ++t) {
    long rx = RxPackets(t);
    long tx = TxPackets(t);
    // What the backend would send each interval over the %-protocol.
    app.Eval("sV rxLab label {rx: " + std::to_string(rx) + " pkts/s}");
    app.Eval("sV txLab label {tx: " + std::to_string(tx) + " pkts/s}");
    app.Eval("stripChartAddValue chart " + std::to_string(rx));
    app.Eval("plotterAddSample bars " + std::to_string(tx));
    app.app().ProcessPending();
    if (t % 6 == 5) {
      xtk::Widget* rx_lab = app.app().FindWidget("rxLab");
      std::printf("t=%2d  %-18s chart-samples=%zu\n", t,
                  rx_lab->GetString("label").c_str(),
                  app.app().FindWidget("chart")->GetStringList("_samples").size());
    }
    (void)bar_data;
  }

  std::string series = app.Eval("plotterGetData bars").value;
  std::printf("\nbar graph series (%zu samples): %.60s...\n",
              app.app().FindWidget("bars")->GetStringList("_plotData").size(),
              series.c_str());
  std::printf("redraws performed: %zu\n", app.app().redraw_count());
  std::printf("done.\n");
  return 0;
}
