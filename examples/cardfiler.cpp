// xwafecf analogue (the Wafe distribution's "simple read-only card filer"):
// a list of cards on the left, the selected card's content on the right,
// previous/next buttons, and the PRIMARY selection holding the current card
// text — exercising List callbacks, Form layout, AsciiText, selections, and
// Toggle radio groups for a category filter.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/wafe.h"
#include "src/xaw/athena.h"

namespace {

struct Card {
  const char* name;
  const char* category;
  const char* text;
};

constexpr Card kCards[] = {
    {"Neumann, Gustaf", "author", "Vienna University of Economics\nneumann@wu-wien.ac.at"},
    {"Nusser, Stefan", "author", "Vienna University of Economics\nnusser@wu-wien.ac.at"},
    {"Ousterhout, John", "related", "UC Berkeley\nTcl and Tk"},
    {"Keithley, Kaleb", "related", "Xaw3d - three dimensional Athena widgets"},
    {"ftp.wu-wien.ac.at", "site", "pub/src/X11/wafe/* (137.208.3.4)"},
};

}  // namespace

int main() {
  wafe::Wafe app;

  app.Eval(
      "form f topLevel\n"
      "label title f label {Card Filer} borderWidth 0\n"
      "list cards f fromVert title width 180 height 120\n"
      "asciiText content f fromVert title fromHoriz cards editType read "
      "width 260 height 90\n"
      "toggle catAll f fromVert cards label All radioData all state true\n"
      "toggle catAuthors f fromVert cards fromHoriz catAll label Authors "
      "radioGroup catAll radioData author\n"
      "realize");

  // Populate the list and wire the selection callback: selecting a card
  // shows its text and owns PRIMARY with it (so other clients could paste
  // the card).
  auto populate = [&](const std::string& category) {
    std::vector<std::string> names;
    for (const Card& card : kCards) {
      if (category == "all" || category == card.category) {
        names.push_back(card.name);
      }
    }
    xtk::Widget* list = app.app().FindWidget("cards");
    xaw::ListChange(*list, names, false);
    app.app().ProcessPending();
    return names;
  };
  app.Eval("sV cards callback {set picked {%s}}");

  std::vector<std::string> names = populate("all");
  std::printf("filed %zu cards\n", names.size());

  // A user browses three cards.
  xtk::Widget* list = app.app().FindWidget("cards");
  xsim::FontPtr font = xsim::FontRegistry::Default().Open("fixed");
  long row = static_cast<long>(font->Height()) + 2;
  for (int index : {0, 2, 4}) {
    xsim::Point p = app.app().display().RootPosition(list->window());
    xsim::Position y = p.y + static_cast<xsim::Position>(2 + row * index + row / 2);
    app.app().display().InjectButtonPress(p.x + 3, y, 1);
    app.app().display().InjectButtonRelease(p.x + 3, y, 1);
    app.app().ProcessPending();
    std::string picked;
    app.interp().GetVar("picked", &picked);
    for (const Card& card : kCards) {
      if (picked == card.name) {
        app.Eval("sV content string {" + std::string(card.text) + "}");
        app.Eval("ownSelection content PRIMARY {" + std::string(card.text) + "}");
      }
    }
    std::printf("card: %-22s -> %s\n", picked.c_str(),
                app.Eval("getSelectionValue PRIMARY").value.substr(0, 40).c_str());
  }

  // Filter to authors via the radio group.
  app.Eval("toggleSetCurrent catAll author");
  names = populate(app.Eval("toggleGetCurrent catAll").value);
  std::printf("filtered to authors: %zu cards\n", names.size());
  for (const std::string& name : names) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}
