// Quickstart: the paper's file-mode hello world, driven end to end.
//
//   #!/usr/bin/X11/wafe --f
//   command hello topLevel [backslash]
//      label "Wafe new World" [backslash]
//      callback "echo Goodbye; quit"
//   realize
//
// The example embeds Wafe, evaluates the script, injects a synthetic button
// press on the `hello` widget, and shows the callback firing — everything a
// real X session would do, on the simulated display.
#include <cstdio>

#include "src/core/wafe.h"

int main() {
  wafe::Wafe app;

  std::printf("== evaluating the hello-world script ==\n");
  wtcl::Result r = app.Eval(
      "command hello topLevel \\\n"
      "   label \"Wafe new World\" \\\n"
      "   callback \"echo Goodbye; quit\"\n"
      "realize\n");
  if (r.code != wtcl::Status::kOk) {
    std::fprintf(stderr, "error: %s\n", r.value.c_str());
    return 1;
  }

  xtk::Widget* hello = app.app().FindWidget("hello");
  std::printf("widget tree realized; `hello` is %ux%u showing \"%s\"\n", hello->width(),
              hello->height(), hello->GetString("label").c_str());
  std::printf("label rendered on screen: %s\n",
              app.app().display().WindowShowsText(hello->window(), "Wafe new World")
                  ? "yes"
                  : "no");

  std::printf("\n== user clicks the button ==\n");
  xsim::Point p = app.app().display().RootPosition(hello->window());
  app.app().display().InjectButtonPress(p.x + 3, p.y + 3, 1);
  app.app().display().InjectButtonRelease(p.x + 3, p.y + 3, 1);
  app.app().ProcessPending();

  std::printf("\nquit requested: %s\n", app.quit_requested() ? "yes" : "no");
  std::printf("(the callback's `echo Goodbye` printed above, then `quit` ended the app)\n");
  return app.exit_code();
}
