// E13 — paper §The Callback Converter: callback resources hold executable
// Tcl strings; Wafe can also read them back (gV) and feed them to other
// widgets, as the c1/c2 script demonstrates. Conversion, invocation, and
// round-trip costs.
#include "bench/bench_util.h"

namespace {

void BM_CallbackConversion(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("command c topLevel");
  long i = 0;
  for (auto _ : state) {
    app->Eval(i++ % 2 ? "sV c callback {echo variant one}"
                      : "sV c callback {echo variant two}");
  }
}
BENCHMARK(BM_CallbackConversion);

void BM_CallbackInvocation(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("command c topLevel callback {incr hits}");
  app->Eval("set hits 0");
  app->Eval("realize");
  xtk::Widget* c = app->app().FindWidget("c");
  for (auto _ : state) {
    app->app().CallCallbacks(c, "callback", xtk::CallData{});
  }
  std::string hits;
  app->interp().GetVar("hits", &hits);
  state.counters["invocations"] = std::stod(hits);
}
BENCHMARK(BM_CallbackInvocation);

void BM_CallbackWithPercentCodes(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("list lst topLevel list {a,b,c}");
  app->Eval("label lab topLevel label {}");
  app->Eval("sV lst callback {sV lab label {%s}}");
  app->Eval("realize");
  xtk::Widget* lst = app->app().FindWidget("lst");
  xtk::CallData data;
  data.fields["i"] = "1";
  data.fields["s"] = "selected item";
  for (auto _ : state) {
    app->app().CallCallbacks(lst, "callback", data);
  }
}
BENCHMARK(BM_CallbackWithPercentCodes);

void BM_GvCallbackRoundTrip(benchmark::State& state) {
  // The paper's c1/c2 example: read a callback with gV and install it on
  // another widget.
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("form f topLevel");
  app->Eval("command c1 f callback {echo i am %w.}");
  app->Eval("command c2 f fromVert c1");
  for (auto _ : state) {
    app->Eval("sV c2 callback [gV c1 callback]");
  }
}
BENCHMARK(BM_GvCallbackRoundTrip);

void BM_PredefinedCallbackPopup(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("transientShell popup topLevel");
  app->Eval("label inside popup");
  app->Eval("command b topLevel");
  app->Eval("callback b callback none popup");
  app->Eval("realize");
  xtk::Widget* b = app->app().FindWidget("b");
  xtk::Widget* popup = app->app().FindWidget("popup");
  for (auto _ : state) {
    app->app().CallCallbacks(b, "callback", xtk::CallData{});
    app->app().Popdown(popup);
  }
}
BENCHMARK(BM_PredefinedCallbackPopup);

}  // namespace

WAFE_BENCH_MAIN();
