// E10 — paper §Introduction: the three modes of operation. Startup cost of
// an interactive-ready instance, a file-mode hello world, and a frontend
// session with a forked backend.
#include <fstream>

#include "bench/bench_util.h"

#ifndef WAFE_TEST_BACKEND
#error "WAFE_TEST_BACKEND must point at the helper binary"
#endif

namespace {

void BM_StartupInteractiveReady(benchmark::State& state) {
  // Everything up to the prompt: interp + classes + commands + topLevel.
  for (auto _ : state) {
    wafe::Wafe app;
    benchmark::DoNotOptimize(app.top_level());
  }
}
BENCHMARK(BM_StartupInteractiveReady)->Unit(benchmark::kMillisecond);

void BM_StartupFileModeHelloWorld(benchmark::State& state) {
  const char* path = "/tmp/wafe_bench_hello.wafe";
  {
    std::ofstream script(path);
    script << "#!/usr/bin/X11/wafe --f\n"
              "command hello topLevel label \"Wafe new World\" callback quit\n"
              "realize\n"
              "quit\n";
  }
  for (auto _ : state) {
    wafe::Wafe app;
    int rc = app.RunFile(path);
    benchmark::DoNotOptimize(rc);
  }
}
BENCHMARK(BM_StartupFileModeHelloWorld)->Unit(benchmark::kMillisecond);

void BM_StartupFrontendMode(benchmark::State& state) {
  // Spawn the helper in `build` mode, run to quit (it builds a tree, does a
  // round trip, and quits).
  for (auto _ : state) {
    wafe::Wafe app;
    app.set_backend_output(true);
    app.set_passthrough([](const std::string&) {});  // keep bench output clean
    std::string error;
    if (!app.frontend().SpawnBackend(WAFE_TEST_BACKEND, {"build"}, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    while (!app.quit_requested()) {
      app.app().RunOneIteration(true);
    }
    app.frontend().CloseBackend();
    app.frontend().WaitBackend();
  }
}
BENCHMARK(BM_StartupFrontendMode)->Unit(benchmark::kMillisecond);

void BM_MotifStartup(benchmark::State& state) {
  for (auto _ : state) {
    wafe::Options options;
    options.widget_set = wafe::WidgetSet::kMotif;
    wafe::Wafe app(options);
    benchmark::DoNotOptimize(app.top_level());
  }
}
BENCHMARK(BM_MotifStartup)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
