// E10 — paper §Introduction: the three modes of operation. Startup cost of
// an interactive-ready instance, a file-mode hello world, and a frontend
// session with a forked backend.
#include <fstream>

#include "bench/bench_util.h"

#ifndef WAFE_TEST_BACKEND
#error "WAFE_TEST_BACKEND must point at the helper binary"
#endif

namespace {

void BM_StartupInteractiveReady(benchmark::State& state) {
  // Everything up to the prompt: interp + classes + commands + topLevel.
  for (auto _ : state) {
    wafe::Wafe app;
    benchmark::DoNotOptimize(app.top_level());
  }
}
BENCHMARK(BM_StartupInteractiveReady)->Unit(benchmark::kMillisecond);

void BM_StartupFileModeHelloWorld(benchmark::State& state) {
  const char* path = "/tmp/wafe_bench_hello.wafe";
  {
    std::ofstream script(path);
    script << "#!/usr/bin/X11/wafe --f\n"
              "command hello topLevel label \"Wafe new World\" callback quit\n"
              "realize\n"
              "quit\n";
  }
  for (auto _ : state) {
    wafe::Wafe app;
    int rc = app.RunFile(path);
    benchmark::DoNotOptimize(rc);
  }
}
BENCHMARK(BM_StartupFileModeHelloWorld)->Unit(benchmark::kMillisecond);

void BM_StartupFrontendMode(benchmark::State& state) {
  // Spawn the helper in `build` mode, run to quit (it builds a tree, does a
  // round trip, and quits).
  for (auto _ : state) {
    wafe::Wafe app;
    app.set_backend_output(true);
    app.set_passthrough([](const std::string&) {});  // keep bench output clean
    std::string error;
    if (!app.frontend().SpawnBackend(WAFE_TEST_BACKEND, {"build"}, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    while (!app.quit_requested()) {
      app.app().RunOneIteration(true);
    }
    app.frontend().CloseBackend();
    app.frontend().WaitBackend();
  }
}
BENCHMARK(BM_StartupFrontendMode)->Unit(benchmark::kMillisecond);

void BM_MotifStartup(benchmark::State& state) {
  for (auto _ : state) {
    wafe::Options options;
    options.widget_set = wafe::WidgetSet::kMotif;
    wafe::Wafe app(options);
    benchmark::DoNotOptimize(app.top_level());
  }
}
BENCHMARK(BM_MotifStartup)->Unit(benchmark::kMillisecond);

// Building a 30-widget UI — the realistic startup workload — with the
// converter cache warm vs disabled. Cold, every widget re-runs the string
// converters for its fonts and colors (the wildcarded XLFDs scan the font
// registry each time); warm, every widget after the first gets memoized
// values, which is where repeated widget creation earns its speedup.
void BuildAndTearDownUi(wafe::Wafe& app) {
  app.Eval("form f topLevel");
  for (int i = 0; i < 10; ++i) {
    std::string n = std::to_string(i);
    app.Eval("label l" + n + " f label {Field " + n +
             "} font {-*-times-*-*-*-*-14-*-*-*-*-*-*-*} foreground navy");
    app.Eval("command b" + n + " f label {Apply " + n +
             "} font {-*-helvetica-bold-r-*-*-12-*-*-*-*-*-*-*} background gray "
             "callback {echo apply}");
    app.Eval("toggle t" + n + " f label {Option " + n +
             "} font {-*-courier-*-*-*-*-12-*-*-*-*-*-*-*} foreground {dark slate blue}");
  }
  app.Eval("destroyWidget f");
}

void BM_UiBuildWarmCache(benchmark::State& state) {
  wafe::Wafe app;
  BuildAndTearDownUi(app);  // prime the cache
  for (auto _ : state) {
    BuildAndTearDownUi(app);
  }
}
BENCHMARK(BM_UiBuildWarmCache)->Unit(benchmark::kMillisecond);

void BM_UiBuildColdCache(benchmark::State& state) {
  wafe::Wafe app;
  app.app().converters().set_cache_enabled(false);
  app.app().converters().InvalidateCache();
  for (auto _ : state) {
    BuildAndTearDownUi(app);
  }
}
BENCHMARK(BM_UiBuildColdCache)->Unit(benchmark::kMillisecond);

}  // namespace

WAFE_BENCH_MAIN();
