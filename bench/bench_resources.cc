// E1 — paper §Value Passing: `getResourceList` on a Label widget reports 42
// resources under X11R5 Xaw3d, and the list begins with the Core resources
// in a fixed order. The bench verifies both facts and measures the lookup.
#include "bench/bench_util.h"

namespace {

void BM_GetResourceList(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("label l topLevel");
  long count = 0;
  for (auto _ : state) {
    wtcl::Result r = app->Eval("getResourceList l retVal");
    benchmark::DoNotOptimize(r);
    count = std::stol(r.value);
  }
  state.counters["resources"] = static_cast<double>(count);
}
BENCHMARK(BM_GetResourceList);

void BM_GetValueSingleResource(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("label l topLevel label {some text} background tomato");
  for (auto _ : state) {
    wtcl::Result r = app->Eval("gV l background");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GetValueSingleResource);

void BM_GetResourceListPlainXaw(benchmark::State& state) {
  wafe::Options options;
  options.three_d = false;
  wafe::Wafe app(options);
  app.Eval("label l topLevel");
  long count = 0;
  for (auto _ : state) {
    wtcl::Result r = app.Eval("getResourceList l retVal");
    count = std::stol(r.value);
  }
  state.counters["resources"] = static_cast<double>(count);
}
BENCHMARK(BM_GetResourceListPlainXaw);

// Repeated widget creation with the converter cache warm vs disabled: every
// creation resolves ~42 resources through the string converters (fonts glob
// the registry, colors parse, callbacks wrap scripts), so memoizing
// (type, input) pairs shows up directly in creation throughput. The font is
// a wildcarded XLFD — the form era .Xdefaults actually use — whose uncached
// conversion scans the whole font registry.
void CreateAndDestroyWidget(wafe::Wafe& app) {
  app.Eval(
      "command w topLevel label {a button} background gray foreground "
      "navy borderWidth 2 font {-*-helvetica-bold-r-*-*-14-*-*-*-*-*-*-*} "
      "callback {echo pressed}");
  app.Eval("destroyWidget w");
}

void BM_WidgetCreationWarmCache(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  CreateAndDestroyWidget(*app);  // prime the cache
  for (auto _ : state) {
    CreateAndDestroyWidget(*app);
  }
  state.counters["cacheEntries"] =
      static_cast<double>(app->app().converters().cache_size());
}
BENCHMARK(BM_WidgetCreationWarmCache);

void BM_WidgetCreationColdCache(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->app().converters().set_cache_enabled(false);
  app->app().converters().InvalidateCache();
  for (auto _ : state) {
    CreateAndDestroyWidget(*app);
  }
}
BENCHMARK(BM_WidgetCreationColdCache);

}  // namespace

int main(int argc, char** argv) {
  // The paper's interactive example, reproduced verbatim.
  wafe::Wafe app;
  app.Eval("label l topLevel");
  wtcl::Result count = app.Eval("getResourceList l retVal");
  std::string names;
  app.interp().GetVar("retVal", &names);
  std::printf("E1 getResourceList on Label (Xaw3d): %s resources (paper: 42)\n",
              count.value.c_str());
  std::printf("E1 list head: %.97s (...)\n", names.c_str());
  std::printf("E1 match: %s\n\n",
              count.value == "42" &&
                      names.rfind("destroyCallback ancestorSensitive x y width height", 0) == 0
                  ? "YES"
                  : "NO");
  bench_util::RunBenchmarks(argc, argv);
  return 0;
}
