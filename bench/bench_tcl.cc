// E15 — paper §Tcl (limitations): "the string representation of all data
// types is a disadvantage, when repetitious calculations have to be made in
// Tcl" and "it is not suitable for more complex programs". Quantifies the
// string-interpreter penalty against native C++ for the same computation,
// plus the interpreter's parse/dispatch costs.
#include "bench/bench_util.h"

#include "src/obs/obs.h"
#include "src/tcl/interp.h"

namespace {

// Re-runs the workload a few times with metrics on (outside the timed
// region) and reports the compile-cache hit rate it achieves, so the
// committed BENCH_TCL.json records cache effectiveness next to ns/op.
template <typename Fn>
void ReportCacheHitRate(benchmark::State& state, const char* prefix, Fn&& run_once) {
  wobs::SetMetricsEnabled(true);
  wobs::Registry::Instance().ResetMetrics();
  for (int i = 0; i < 100; ++i) {
    run_once();
  }
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  wobs::Registry::Instance().GetMetric(std::string(prefix) + ".hits", &hits);
  wobs::Registry::Instance().GetMetric(std::string(prefix) + ".misses", &misses);
  wobs::SetMetricsEnabled(false);
  if (hits + misses > 0) {
    state.counters["cache_hit_rate"] =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
  }
}

void BM_NativeSumLoop(benchmark::State& state) {
  const long n = state.range(0);
  for (auto _ : state) {
    long sum = 0;
    for (long i = 0; i < n; ++i) {
      sum += i;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_NativeSumLoop)->Arg(1000);

void BM_TclSumLoop(benchmark::State& state) {
  const long n = state.range(0);
  wtcl::Interp interp;
  std::string script =
      "set sum 0\n"
      "for {set i 0} {$i < " + std::to_string(n) + "} {incr i} {incr sum $i}\n"
      "set sum";
  for (auto _ : state) {
    wtcl::Result r = interp.Eval(script);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
  ReportCacheHitRate(state, "tcl.script.cache", [&] { interp.Eval(script); });
}
BENCHMARK(BM_TclSumLoop)->Arg(1000);

// The acceptance case for the compile-once layer: a tight `while` loop whose
// body and condition are re-evaluated every iteration. With cached IR the
// per-iteration work is executor-only (no parsing at all).
void BM_TclTightLoop(benchmark::State& state) {
  const long n = state.range(0);
  wtcl::Interp interp;
  std::string script =
      "set i 0\n"
      "while {$i < " + std::to_string(n) + "} {incr i}\n"
      "set i";
  for (auto _ : state) {
    wtcl::Result r = interp.Eval(script);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
  ReportCacheHitRate(state, "tcl.script.cache", [&] { interp.Eval(script); });
}
BENCHMARK(BM_TclTightLoop)->Arg(1000);

void BM_TclExprEvaluation(benchmark::State& state) {
  wtcl::Interp interp;
  interp.Eval("set a 12; set b 34");
  for (auto _ : state) {
    wtcl::Result r = interp.EvalExpr("($a + $b) * 3 - $a / 2");
    benchmark::DoNotOptimize(r);
  }
  ReportCacheHitRate(state, "tcl.expr.cache",
                     [&] { interp.EvalExpr("($a + $b) * 3 - $a / 2"); });
}
BENCHMARK(BM_TclExprEvaluation);

void BM_TclCommandDispatch(benchmark::State& state) {
  wtcl::Interp interp;
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("set x value");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TclCommandDispatch);

void BM_TclProcCall(benchmark::State& state) {
  wtcl::Interp interp;
  interp.Eval("proc f {a b} {return $a}");
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("f 1 2");
    benchmark::DoNotOptimize(r);
  }
  ReportCacheHitRate(state, "tcl.script.cache", [&] { interp.Eval("f 1 2"); });
}
BENCHMARK(BM_TclProcCall);

// A callback storm as the dispatch path sees it: the same small script —
// a button's callback body — evaluated once per event.
void BM_TclCallbackDispatch(benchmark::State& state) {
  wtcl::Interp interp;
  interp.Eval("set clicks 0");
  const std::string script = "incr clicks";
  for (auto _ : state) {
    wtcl::Result r = interp.Eval(script);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  ReportCacheHitRate(state, "tcl.script.cache", [&] { interp.Eval(script); });
}
BENCHMARK(BM_TclCallbackDispatch);

void BM_TclListManipulation(benchmark::State& state) {
  wtcl::Interp interp;
  interp.Eval("set l {}");
  interp.Eval("for {set i 0} {$i < 100} {incr i} {lappend l item$i}");
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("lindex $l 50");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TclListManipulation);

// foreach over a 100-element list variable: with the dual-rep cache the list
// is split once and iterated as Values thereafter; before, every pass
// re-split the string and re-parsed each element in the expr guard.
void BM_TclForeachSum(benchmark::State& state) {
  wtcl::Interp interp;
  interp.Eval("set nums {}");
  interp.Eval("for {set i 0} {$i < 100} {incr i} {lappend nums $i}");
  const std::string script =
      "set sum 0\n"
      "foreach x $nums {incr sum $x}\n"
      "set sum";
  for (auto _ : state) {
    wtcl::Result r = interp.Eval(script);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TclForeachSum);

// lsort -integer over a 100-element shuffled list: decorate-sort-undecorate
// parses each element once instead of once per comparison.
void BM_TclLsortIntegers(benchmark::State& state) {
  wtcl::Interp interp;
  interp.Eval("set nums {}");
  interp.Eval(
      "for {set i 0} {$i < 100} {incr i} {lappend nums [expr ($i * 37) % 101]}");
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("lsort -integer $nums");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TclLsortIntegers);

void BM_TclStringSubstitution(benchmark::State& state) {
  wtcl::Interp interp;
  interp.Eval("set name world; set greeting hello");
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("set msg \"$greeting, $name! [string length $name]\"");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TclStringSubstitution);

// --- Eval-guard overhead ------------------------------------------------------------
//
// The fault-containment acceptance bar: with the step and wall-clock
// watchdogs armed (high enough never to trip), eval throughput must stay
// within 3% of the unguarded baselines above.

void BM_TclSumLoopGuarded(benchmark::State& state) {
  const long n = state.range(0);
  wtcl::Interp interp;
  interp.set_max_steps(1u << 30);
  interp.set_max_eval_ms(60 * 1000);
  std::string script =
      "set sum 0\n"
      "for {set i 0} {$i < " + std::to_string(n) + "} {incr i} {incr sum $i}\n"
      "set sum";
  for (auto _ : state) {
    wtcl::Result r = interp.Eval(script);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_TclSumLoopGuarded)->Arg(1000);

void BM_TclCommandDispatchGuarded(benchmark::State& state) {
  wtcl::Interp interp;
  interp.set_max_steps(1u << 30);
  interp.set_max_eval_ms(60 * 1000);
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("set x value");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TclCommandDispatchGuarded);

}  // namespace

WAFE_BENCH_MAIN();
