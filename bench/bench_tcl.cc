// E15 — paper §Tcl (limitations): "the string representation of all data
// types is a disadvantage, when repetitious calculations have to be made in
// Tcl" and "it is not suitable for more complex programs". Quantifies the
// string-interpreter penalty against native C++ for the same computation,
// plus the interpreter's parse/dispatch costs.
#include "bench/bench_util.h"

#include "src/tcl/interp.h"

namespace {

void BM_NativeSumLoop(benchmark::State& state) {
  const long n = state.range(0);
  for (auto _ : state) {
    long sum = 0;
    for (long i = 0; i < n; ++i) {
      sum += i;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_NativeSumLoop)->Arg(1000);

void BM_TclSumLoop(benchmark::State& state) {
  const long n = state.range(0);
  wtcl::Interp interp;
  std::string script =
      "set sum 0\n"
      "for {set i 0} {$i < " + std::to_string(n) + "} {incr i} {incr sum $i}\n"
      "set sum";
  for (auto _ : state) {
    wtcl::Result r = interp.Eval(script);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_TclSumLoop)->Arg(1000);

void BM_TclExprEvaluation(benchmark::State& state) {
  wtcl::Interp interp;
  interp.Eval("set a 12; set b 34");
  for (auto _ : state) {
    wtcl::Result r = interp.EvalExpr("($a + $b) * 3 - $a / 2");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TclExprEvaluation);

void BM_TclCommandDispatch(benchmark::State& state) {
  wtcl::Interp interp;
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("set x value");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TclCommandDispatch);

void BM_TclProcCall(benchmark::State& state) {
  wtcl::Interp interp;
  interp.Eval("proc f {a b} {return $a}");
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("f 1 2");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TclProcCall);

void BM_TclListManipulation(benchmark::State& state) {
  wtcl::Interp interp;
  interp.Eval("set l {}");
  interp.Eval("for {set i 0} {$i < 100} {incr i} {lappend l item$i}");
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("lindex $l 50");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TclListManipulation);

void BM_TclStringSubstitution(benchmark::State& state) {
  wtcl::Interp interp;
  interp.Eval("set name world; set greeting hello");
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("set msg \"$greeting, $name! [string length $name]\"");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TclStringSubstitution);

// --- Eval-guard overhead ------------------------------------------------------------
//
// The fault-containment acceptance bar: with the step and wall-clock
// watchdogs armed (high enough never to trip), eval throughput must stay
// within 3% of the unguarded baselines above.

void BM_TclSumLoopGuarded(benchmark::State& state) {
  const long n = state.range(0);
  wtcl::Interp interp;
  interp.set_max_steps(1u << 30);
  interp.set_max_eval_ms(60 * 1000);
  std::string script =
      "set sum 0\n"
      "for {set i 0} {$i < " + std::to_string(n) + "} {incr i} {incr sum $i}\n"
      "set sum";
  for (auto _ : state) {
    wtcl::Result r = interp.Eval(script);
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_TclSumLoopGuarded)->Arg(1000);

void BM_TclCommandDispatchGuarded(benchmark::State& state) {
  wtcl::Interp interp;
  interp.set_max_steps(1u << 30);
  interp.set_max_eval_ms(60 * 1000);
  for (auto _ : state) {
    wtcl::Result r = interp.Eval("set x value");
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TclCommandDispatchGuarded);

}  // namespace

WAFE_BENCH_MAIN();
