// E6 — paper §Code generation: "The Wafe source is currently about 13000
// lines of C code. About 60% of the code is generated automatically from
// specifications." Our spec registry plays the generator's role; the bench
// reports the generated-vs-handwritten command split, the reference-document
// size, and measures the cost of "generating" (registering) everything.
#include "bench/bench_util.h"

#include <cstdio>

#include "src/core/wafe.h"

namespace {

void BM_RegisterAllCommands(benchmark::State& state) {
  // Constructing a Wafe instance runs the whole spec-driven registration.
  for (auto _ : state) {
    wafe::Wafe app;
    benchmark::DoNotOptimize(app.specs().total_count());
  }
}
BENCHMARK(BM_RegisterAllCommands);

void BM_GenerateReferenceDocument(benchmark::State& state) {
  wafe::Wafe app;
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string reference = app.specs().ReferenceText();
    bytes = reference.size();
    benchmark::DoNotOptimize(reference);
  }
  state.counters["reference_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_GenerateReferenceDocument);

}  // namespace

int main(int argc, char** argv) {
  {
    wafe::Wafe athena;
    wafe::Options motif_options;
    motif_options.widget_set = wafe::WidgetSet::kMotif;
    wafe::Wafe motif(motif_options);
    auto report = [](const char* name, wafe::Wafe& app) {
      double generated = static_cast<double>(app.specs().generated_count());
      double total = static_cast<double>(app.specs().total_count());
      std::printf("E6 %-6s commands: %3zu total = %zu spec-generated + %zu handwritten "
                  "(%2.0f%% generated; paper: ~60%% of the source)\n",
                  name, app.specs().total_count(), app.specs().generated_count(),
                  app.specs().handwritten_count(), 100.0 * generated / total);
      std::printf("E6 %-6s widget creation commands: %zu\n", name,
                  app.specs().creation_command_count());
    };
    report("wafe", athena);
    report("mofe", motif);
    std::printf("E6 note: the paper counts generated C lines; we count spec-driven "
                "commands, the same artifact one level up.\n\n");
  }
  bench_util::RunBenchmarks(argc, argv);
  return 0;
}
