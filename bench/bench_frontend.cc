// E7 — paper Figure 5: the three phases of a frontend-mode application —
// (1) Wafe starts the backend, (2) the backend builds the widget tree over
// the protocol, (3) the read loop exchanges event messages. Measured against
// the real forked helper backend.
#include <algorithm>
#include <chrono>

#include "bench/bench_util.h"

#ifndef WAFE_TEST_BACKEND
#error "WAFE_TEST_BACKEND must point at the helper binary"
#endif

namespace {

void PumpUntil(wafe::Wafe& app, const std::function<bool()>& done) {
  while (!done()) {
    app.app().RunOneIteration(true);
  }
}

void BM_Phase1And2SpawnAndBuildTree(benchmark::State& state) {
  for (auto _ : state) {
    wafe::Wafe app;
    app.set_backend_output(true);
    std::string error;
    if (!app.frontend().SpawnBackend(WAFE_TEST_BACKEND, {"primes"}, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    PumpUntil(app, [&] {
      xtk::Widget* input = app.app().FindWidget("input");
      return input != nullptr && input->realized();
    });
    app.frontend().CloseBackend();
  }
}
BENCHMARK(BM_Phase1And2SpawnAndBuildTree)->Unit(benchmark::kMillisecond);

void BM_Phase3ReadLoopRoundTrip(benchmark::State& state) {
  // One full user interaction: typed Return -> frontend sends the text ->
  // backend factors it -> three %sV updates come back.
  wafe::Wafe app;
  app.set_backend_output(true);
  std::string error;
  if (!app.frontend().SpawnBackend(WAFE_TEST_BACKEND, {"primes"}, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  PumpUntil(app, [&] {
    xtk::Widget* input = app.app().FindWidget("input");
    return input != nullptr && input->realized();
  });
  xtk::Widget* input = app.app().FindWidget("input");
  app.app().display().SetInputFocus(input->window());
  long round = 0;
  for (auto _ : state) {
    std::string number = std::to_string(100 + (round++ % 100));
    app.Eval("sV input string {}");
    app.Eval("sV info label waiting");
    app.app().display().InjectText(number);
    app.app().display().InjectKeyPress(xsim::kKeyReturn);
    app.app().ProcessPending();
    PumpUntil(app, [&] {
      return app.app().FindWidget("info")->GetString("label") == "0 seconds";
    });
  }
  state.SetItemsProcessed(state.iterations());
  app.frontend().CloseBackend();
}
BENCHMARK(BM_Phase3ReadLoopRoundTrip);

// Transport ablation (paper §Availability: "the preferred program-to-program
// communication is done via socketpair. Support for PIPES ... is included").
void BM_ForkedRoundTripByTransport(benchmark::State& state) {
  const bool force_pipes = state.range(0) != 0;
  wafe::Wafe app;
  app.set_backend_output(true);
  app.frontend().set_force_pipes(force_pipes);
  std::string error;
  if (!app.frontend().SpawnBackend(WAFE_TEST_BACKEND, {"primes"}, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  PumpUntil(app, [&] {
    xtk::Widget* input = app.app().FindWidget("input");
    return input != nullptr && input->realized();
  });
  xtk::Widget* input = app.app().FindWidget("input");
  app.app().display().SetInputFocus(input->window());
  for (auto _ : state) {
    app.Eval("sV input string 97");
    app.Eval("sV info label waiting");
    app.app().display().InjectKeyPress(xsim::kKeyReturn);
    app.app().ProcessPending();
    PumpUntil(app, [&] {
      return app.app().FindWidget("info")->GetString("label") == "0 seconds";
    });
  }
  state.SetLabel(app.frontend().using_socketpair() ? "socketpair" : "pipes");
  app.frontend().CloseBackend();
}
BENCHMARK(BM_ForkedRoundTripByTransport)->Arg(0)->Arg(1);

void BM_BackendEchoRoundTrip(benchmark::State& state) {
  // Minimal protocol round trip without widget work: %echo -> backend stdin.
  auto app = std::make_unique<wafe::Wafe>();
  bench_util::ProtocolHarness harness(app.get());
  for (auto _ : state) {
    harness.Send("%echo ping");
    harness.Pump();
    std::string back = harness.Read();
    if (back != "ping\n") {
      state.SkipWithError("round trip broken");
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackendEchoRoundTrip);

// The non-blocking write path against a slow consumer: the backend sleeps
// per line, so the kernel buffer fills and lines ride the in-process queue.
// Measures enqueue+flush cost per line and reports the queue's high-water
// mark; wall time stays decoupled from the backend's pace.
void BM_QueuedSendToSlowReader(benchmark::State& state) {
  const long delay_us = state.range(0);
  wafe::Wafe app;
  app.set_backend_output(true);
  std::string error;
  if (!app.frontend().SpawnBackend(WAFE_TEST_BACKEND,
                                   {"drain", std::to_string(delay_us)}, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  PumpUntil(app, [&] { return app.frontend().lines_received() >= 1; });
  app.frontend().set_send_queue_limit(64 * 1024 * 1024);
  const std::string line(256, 'q');
  std::size_t max_queue = 0;
  for (auto _ : state) {
    if (!app.frontend().SendToBackend(line)) {
      state.SkipWithError("send rejected");
      return;
    }
    app.app().RunOneIteration(false);
    max_queue = std::max(max_queue, app.frontend().send_queue_bytes());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["queue_highwater_bytes"] =
      benchmark::Counter(static_cast<double>(max_queue));
  app.frontend().CloseBackend();
}
BENCHMARK(BM_QueuedSendToSlowReader)->Arg(0)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

WAFE_BENCH_MAIN();
