// E12 — paper §Internals / Memory Management: "every time a string resource,
// a callback - or other objects larger than one word - are updated, the old
// value is freed. If a widget is destroyed the associated resources in
// Wafe's memory are disposed too." The bench churns creations, destructions
// and string-resource updates and reports heap growth across the run (it
// must stay flat) plus the per-operation cost.
#include <malloc.h>

#include "bench/bench_util.h"

namespace {

// Heap bytes currently allocated (glibc).
double HeapInUse() {
#if defined(__GLIBC__)
  struct mallinfo2 info = ::mallinfo2();
  return static_cast<double>(info.uordblks);
#else
  return 0.0;
#endif
}

void BM_CreateDestroyChurn(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->app().display().set_draw_op_limit(512);  // steady-state op log
  app->Eval("form churn topLevel");
  // Warm up allocator pools before sampling.
  for (int i = 0; i < 100; ++i) {
    app->Eval("label w churn");
    app->Eval("destroyWidget w");
    app->app().ProcessPending();
  }
  double before = HeapInUse();
  std::size_t widgets_before = app->app().WidgetCount();
  for (auto _ : state) {
    app->Eval("label w churn label {some label text that allocates}");
    app->Eval("destroyWidget w");
    app->app().ProcessPending();  // drain the notify events, as a real loop would
  }
  state.counters["heap_delta_bytes"] = HeapInUse() - before;
  state.counters["widget_leak"] =
      static_cast<double>(app->app().WidgetCount() - widgets_before);
}
BENCHMARK(BM_CreateDestroyChurn);

void BM_StringResourceUpdateChurn(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->app().display().set_draw_op_limit(512);
  app->Eval("label l topLevel width 200");
  for (int i = 0; i < 100; ++i) {
    app->Eval("sV l label {warmup value}");
  }
  double before = HeapInUse();
  long i = 0;
  for (auto _ : state) {
    // Alternating values of different lengths: stale values must be freed.
    app->Eval(i++ % 2 ? "sV l label {a fairly long replacement label value xxxxxxxxxxxx}"
                      : "sV l label {short}");
  }
  state.counters["heap_delta_bytes"] = HeapInUse() - before;
}
BENCHMARK(BM_StringResourceUpdateChurn);

void BM_CallbackResourceUpdateChurn(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->app().display().set_draw_op_limit(512);
  app->Eval("command c topLevel");
  for (int i = 0; i < 100; ++i) {
    app->Eval("sV c callback {echo warmup}");
  }
  double before = HeapInUse();
  long i = 0;
  for (auto _ : state) {
    app->Eval(i++ % 2 ? "sV c callback {echo first variant of the callback}"
                      : "sV c callback {echo second}");
  }
  state.counters["heap_delta_bytes"] = HeapInUse() - before;
}
BENCHMARK(BM_CallbackResourceUpdateChurn);

void BM_SubtreeDestroyCost(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  const int children = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    app->Eval("form tree topLevel");
    for (int i = 0; i < children; ++i) {
      app->Eval("label n" + std::to_string(i) + " tree");
    }
    state.ResumeTiming();
    app->Eval("destroyWidget tree");
  }
  state.counters["subtree"] = static_cast<double>(children);
}
BENCHMARK(BM_SubtreeDestroyCost)->Arg(10)->Arg(100);

}  // namespace

WAFE_BENCH_MAIN();
