// E9 — the record/replay subsystem as a load generator: journal append and
// read-back throughput, the recording tax on the protocol hot path, and
// recorded traffic multiplied through the protocol read path
// (DrainBuffer -> HandleLine) at N-way fan-out. The headline counter is
// lines/sec through DrainBuffer; with metrics enabled the p99 of
// comm.request.latency is reported alongside.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/replay.h"
#include "src/obs/obs.h"

namespace {

std::string TempJournal(const char* stem) {
  return "/tmp/" + std::string(stem) + "." + std::to_string(::getpid()) + ".wj";
}

// Journal appender throughput: length-prefix + CRC + write per record,
// fsync policy none (the recording-session default).
void BM_JournalAppend(benchmark::State& state) {
  std::string path = TempJournal("bench_append");
  {
    wafe::JournalWriter writer;
    std::string error;
    if (!writer.Open(path, wafe::FsyncPolicy::kNone, 0, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    const std::string payload = "%sV result label {42 = 2 * 3 * 7}";
    for (auto _ : state) {
      writer.Append(wafe::JournalRecordType::kLine, payload);
    }
    state.SetItemsProcessed(state.iterations());
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(payload.size()));
  }
  ::unlink(path.c_str());
}
BENCHMARK(BM_JournalAppend);

// Read-back + CRC validation throughput over a 100k-record journal.
void BM_JournalRead(benchmark::State& state) {
  std::string path = TempJournal("bench_read");
  {
    wafe::JournalWriter writer;
    std::string error;
    if (!writer.Open(path, wafe::FsyncPolicy::kNone, 0, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    for (int i = 0; i < 100000; ++i) {
      writer.Append(wafe::JournalRecordType::kLine, "%sV result label waiting");
    }
  }
  for (auto _ : state) {
    wafe::JournalReader reader;
    std::string error;
    if (!reader.Open(path, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    benchmark::DoNotOptimize(reader.records().size());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
  ::unlink(path.c_str());
}
BENCHMARK(BM_JournalRead)->Unit(benchmark::kMillisecond);

// The headline: %-lines through the real read path — written into the
// channel pipe in batches, split by DrainBuffer, dispatched by HandleLine —
// with recording off (arg 0) and on (arg 1): the recording tax on the
// protocol hot path is the delta.
void BM_DrainBufferLines(benchmark::State& state) {
  const bool recording = state.range(0) != 0;
  wafe::Wafe app;
  bench_util::ProtocolHarness harness(&app);
  app.set_passthrough([](const std::string&) {});
  std::string path = TempJournal("bench_drain");
  if (recording) {
    std::string error;
    if (!app.StartRecording(path, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
  }
  // One pipe-sized batch of short eval lines per pump: the protocol mix a
  // chatty backend produces (variable updates against the interp).
  std::string batch;
  int per_batch = 0;
  while (batch.size() < 48 * 1024) {
    batch += "%set i ";
    batch += std::to_string(per_batch & 15);
    batch += "\n";
    ++per_batch;
  }
  std::size_t handled = 0;
  for (auto _ : state) {
    ssize_t ignored = ::write(harness.write_fd(), batch.data(), batch.size());
    (void)ignored;
    while (app.app().RunOneIteration(false)) {
    }
    handled += static_cast<std::size_t>(per_batch);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(handled));
  state.counters["lines_per_sec"] = benchmark::Counter(
      static_cast<double>(handled), benchmark::Counter::kIsRate);
  if (recording) {
    app.StopRecording();
  }
  ::unlink(path.c_str());
}
BENCHMARK(BM_DrainBufferLines)->Arg(0)->Arg(1);

// Journal replay end to end: a recorded 4096-line session re-executed from
// disk through ReplayJournal (virtual clock, fresh instance per run).
void BM_ReplayJournal(benchmark::State& state) {
  std::string path = TempJournal("bench_replay");
  {
    wafe::JournalWriter writer;
    std::string error;
    if (!writer.Open(path, wafe::FsyncPolicy::kNone, 0, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    for (int i = 0; i < 4096; ++i) {
      writer.Append(wafe::JournalRecordType::kLine,
                    "%set v(" + std::to_string(i & 255) + ") " + std::to_string(i));
    }
  }
  for (auto _ : state) {
    wafe::Wafe app;
    wafe::ReplayStats stats;
    std::string error;
    if (!wafe::ReplayJournal(app, path, &stats, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
  ::unlink(path.c_str());
}
BENCHMARK(BM_ReplayJournal)->Unit(benchmark::kMillisecond);

// M-way fan-out: the same recorded line set multiplied across M frontend
// instances (the traffic-multiplying load-generator mode). With metrics on,
// the p99 of comm.request.latency lands in the counters.
void BM_ReplayFanout(benchmark::State& state) {
  const int fanout = static_cast<int>(state.range(0));
  wobs::SetMetricsEnabled(true);
  wobs::Registry::Instance().ResetMetrics();
  std::vector<std::string> lines;
  lines.reserve(512);
  for (int i = 0; i < 512; ++i) {
    lines.push_back("%set i " + std::to_string(i));
  }
  std::vector<std::unique_ptr<wafe::Wafe>> fleet;
  for (int i = 0; i < fanout; ++i) {
    fleet.push_back(std::make_unique<wafe::Wafe>());
    fleet.back()->frontend().set_replay_mode(true);
  }
  std::size_t handled = 0;
  for (auto _ : state) {
    for (std::unique_ptr<wafe::Wafe>& app : fleet) {
      for (const std::string& line : lines) {
        app->frontend().ReplayLine(line);
      }
      handled += lines.size();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(handled));
  state.counters["lines_per_sec"] = benchmark::Counter(
      static_cast<double>(handled), benchmark::Counter::kIsRate);
  for (wobs::Histogram* histogram : wobs::Registry::Instance().histograms()) {
    if (std::strcmp(histogram->name(), "comm.request.latency") == 0) {
      state.counters["latency_p99_ns"] = benchmark::Counter(
          static_cast<double>(histogram->ApproxQuantileNs(0.99)));
      break;
    }
  }
  wobs::SetMetricsEnabled(false);
}
BENCHMARK(BM_ReplayFanout)->Arg(1)->Arg(4)->Arg(8);

}  // namespace

WAFE_BENCH_MAIN()
