// E4 — paper §Experiences: "Wafe achieves a better refresh behavior when the
// application program is busy". In a single-process GUI, a busy application
// cannot service Expose events; with Wafe, the frontend process keeps
// redrawing while the backend computes. The bench models a computation of
// `work` iterations and measures the latency from an Expose event to the
// completed redraw under both architectures.
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/obs/obs.h"

namespace {

volatile long sink = 0;

void BusyWork(long iterations) {
  long acc = 0;
  for (long i = 0; i < iterations; ++i) {
    acc += i * 31 + 7;
  }
  sink = acc;
}

// Single-process model: the expose arrives while the app computes; it can
// only be handled after the computation finishes.
void BM_SingleProcessRefreshLatency(benchmark::State& state) {
  const long work = state.range(0);
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("label busyLabel topLevel label {application output}");
  app->Eval("realize");
  xtk::Widget* label = app->app().FindWidget("busyLabel");
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    // The expose arrives...
    xsim::Event expose;
    expose.type = xsim::EventType::kExpose;
    expose.window = label->window();
    app->app().display().SendEvent(expose);
    // ...but the single process is busy computing first.
    BusyWork(work);
    app->app().ProcessPending();  // only now is the redraw serviced
    auto end = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(end - start).count());
  }
  state.counters["work"] = static_cast<double>(work);
}
BENCHMARK(BM_SingleProcessRefreshLatency)->UseManualTime()->Arg(100000)->Arg(10000000);

// Frontend model: the backend computes in its own process; the frontend
// handles the expose immediately.
void BM_FrontendRefreshLatency(benchmark::State& state) {
  const long work = state.range(0);
  auto app = std::make_unique<wafe::Wafe>();
  bench_util::ProtocolHarness harness(app.get());
  harness.Send("%label busyLabel topLevel label {application output}");
  harness.Send("%realize");
  harness.Pump();
  xtk::Widget* label = app->app().FindWidget("busyLabel");
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    xsim::Event expose;
    expose.type = xsim::EventType::kExpose;
    expose.window = label->window();
    app->app().display().SendEvent(expose);
    app->app().ProcessPending();  // frontend redraws immediately
    auto end = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(end - start).count());
    // The backend's computation happens elsewhere; it does not block the
    // redraw. (Executed outside the timed region to model the separate
    // process without forking per iteration.)
    BusyWork(work);
  }
  state.counters["work"] = static_cast<double>(work);
}
BENCHMARK(BM_FrontendRefreshLatency)->UseManualTime()->Arg(100000)->Arg(10000000);

// Damage batching: a busy backend streams many value updates per dispatch
// cycle, but each window subtree refreshes at most once per cycle. The
// `updates` counter is how many damage rects the cycle accumulated; the
// `refreshes` counter is how many Expose events FlushDamage actually sent —
// coalescing means refreshes < updates.
void BM_CoalescedRefresh(benchmark::State& state) {
  const int updates = static_cast<int>(state.range(0));
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("form f topLevel");
  std::vector<xtk::Widget*> labels;
  for (int i = 0; i < 8; ++i) {
    std::string n = std::to_string(i);
    app->Eval("label v" + n + " f width 80 height 20 label {v" + n + "}");
    labels.push_back(app->app().FindWidget("v" + n));
  }
  app->app().ProcessPending();
  xsim::Display& display = app->app().display();
  std::size_t updates_total = 0;
  std::size_t refreshes_total = 0;
  for (auto _ : state) {
    for (int u = 0; u < updates; ++u) {
      xtk::Widget* w = labels[static_cast<std::size_t>(u) % labels.size()];
      display.AddDamage(w->window(),
                        xsim::Rect{0, 0, w->width(), w->height()});
    }
    updates_total += static_cast<std::size_t>(updates);
    refreshes_total += display.FlushDamage();
    app->app().ProcessPending();  // drain the coalesced exposes into redraws
  }
  state.counters["updates"] =
      static_cast<double>(updates_total) / static_cast<double>(state.iterations());
  state.counters["refreshes"] =
      static_cast<double>(refreshes_total) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_CoalescedRefresh)->Arg(16)->Arg(256);

// The same property observed end-to-end through the `sV` command and the
// xsim.refresh.* metrics: every setValues both resizes and repaints its
// widget (two damage records), yet each dispatch cycle flushes one Expose.
void BM_ValueUpdateRefresh(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("label status topLevel label idle");
  app->app().ProcessPending();
  const bool metrics_were_enabled = wobs::MetricsEnabled();
  wobs::SetMetricsEnabled(true);
  std::uint64_t requested0 = 0;
  std::uint64_t flushed0 = 0;
  wobs::Registry::Instance().GetMetric("xsim.refresh.requested", &requested0);
  wobs::Registry::Instance().GetMetric("xsim.refresh.flushed", &flushed0);
  int tick = 0;
  for (auto _ : state) {
    app->Eval("sV status label {tick " + std::to_string(tick++) + "} width " +
              std::to_string(100 + tick % 7));
  }
  std::uint64_t requested1 = 0;
  std::uint64_t flushed1 = 0;
  wobs::Registry::Instance().GetMetric("xsim.refresh.requested", &requested1);
  wobs::Registry::Instance().GetMetric("xsim.refresh.flushed", &flushed1);
  wobs::SetMetricsEnabled(metrics_were_enabled);
  state.counters["updates"] = static_cast<double>(requested1 - requested0) /
                              static_cast<double>(state.iterations());
  state.counters["refreshes"] = static_cast<double>(flushed1 - flushed0) /
                                static_cast<double>(state.iterations());
}
BENCHMARK(BM_ValueUpdateRefresh);

}  // namespace

WAFE_BENCH_MAIN();
