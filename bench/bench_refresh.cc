// E4 — paper §Experiences: "Wafe achieves a better refresh behavior when the
// application program is busy". In a single-process GUI, a busy application
// cannot service Expose events; with Wafe, the frontend process keeps
// redrawing while the backend computes. The bench models a computation of
// `work` iterations and measures the latency from an Expose event to the
// completed redraw under both architectures.
#include <chrono>

#include "bench/bench_util.h"

namespace {

volatile long sink = 0;

void BusyWork(long iterations) {
  long acc = 0;
  for (long i = 0; i < iterations; ++i) {
    acc += i * 31 + 7;
  }
  sink = acc;
}

// Single-process model: the expose arrives while the app computes; it can
// only be handled after the computation finishes.
void BM_SingleProcessRefreshLatency(benchmark::State& state) {
  const long work = state.range(0);
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("label busyLabel topLevel label {application output}");
  app->Eval("realize");
  xtk::Widget* label = app->app().FindWidget("busyLabel");
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    // The expose arrives...
    xsim::Event expose;
    expose.type = xsim::EventType::kExpose;
    expose.window = label->window();
    app->app().display().SendEvent(expose);
    // ...but the single process is busy computing first.
    BusyWork(work);
    app->app().ProcessPending();  // only now is the redraw serviced
    auto end = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(end - start).count());
  }
  state.counters["work"] = static_cast<double>(work);
}
BENCHMARK(BM_SingleProcessRefreshLatency)->UseManualTime()->Arg(100000)->Arg(10000000);

// Frontend model: the backend computes in its own process; the frontend
// handles the expose immediately.
void BM_FrontendRefreshLatency(benchmark::State& state) {
  const long work = state.range(0);
  auto app = std::make_unique<wafe::Wafe>();
  bench_util::ProtocolHarness harness(app.get());
  harness.Send("%label busyLabel topLevel label {application output}");
  harness.Send("%realize");
  harness.Pump();
  xtk::Widget* label = app->app().FindWidget("busyLabel");
  for (auto _ : state) {
    auto start = std::chrono::steady_clock::now();
    xsim::Event expose;
    expose.type = xsim::EventType::kExpose;
    expose.window = label->window();
    app->app().display().SendEvent(expose);
    app->app().ProcessPending();  // frontend redraws immediately
    auto end = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(end - start).count());
    // The backend's computation happens elsewhere; it does not block the
    // redraw. (Executed outside the timed region to model the separate
    // process without forking per iteration.)
    BusyWork(work);
  }
  state.counters["work"] = static_cast<double>(work);
}
BENCHMARK(BM_FrontendRefreshLatency)->UseManualTime()->Arg(100000)->Arg(10000000);

}  // namespace

BENCHMARK_MAIN();
