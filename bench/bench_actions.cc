// E9 — paper §Actions: percent-code substitution for the exec action. The
// scenario is the paper's key-echo example (typing "w!" prints 198 w w /
// 174 Shift_L / 197 ! exclam): per-event costs of substitution alone, of the
// substitution + eval, and of the full translation-dispatch pipeline.
#include "bench/bench_util.h"
#include "src/core/percent.h"

namespace {

void BM_PercentSubstitutionOnly(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("label xev topLevel");
  xtk::Widget* xev = app->app().FindWidget("xev");
  xsim::Event event;
  event.type = xsim::EventType::kKeyPress;
  event.keysym = xsim::AsciiToKeysym('w');
  event.keycode = xsim::KeysymToKeycode(event.keysym);
  for (auto _ : state) {
    std::string s = wafe::SubstituteEventCodes("echo %k %a %s", *xev, event);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_PercentSubstitutionOnly);

void BM_ExecActionKeyEcho(benchmark::State& state) {
  // The full pipeline: injected key press -> translation match -> exec ->
  // percent substitution -> Tcl eval -> echo.
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("label xev topLevel");
  app->Eval("action xev override {<KeyPress>: exec(set keyinfo {%k %a %s})}");
  app->Eval("realize");
  xtk::Widget* xev = app->app().FindWidget("xev");
  app->app().display().SetInputFocus(xev->window());
  for (auto _ : state) {
    app->app().display().InjectKeyPress(xsim::AsciiToKeysym('w'));
    app->app().ProcessPending();
  }
  std::string keyinfo;
  app->interp().GetVar("keyinfo", &keyinfo);
  // Assert the paper's expansion once (outside the timed loop).
  if (keyinfo != "198 w w") {
    state.SkipWithError("percent expansion mismatch");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecActionKeyEcho);

void BM_PaperKeyEchoScenario(benchmark::State& state) {
  // The complete "w!" sequence: three key presses, three echo lines.
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("label xev topLevel");
  app->Eval("action xev override {<KeyPress>: exec(echo %k %a %s)}");
  app->Eval("realize");
  xtk::Widget* xev = app->app().FindWidget("xev");
  app->app().display().SetInputFocus(xev->window());
  std::string captured;
  app->interp().set_output([&captured](const std::string& t) { captured += t; });
  for (auto _ : state) {
    captured.clear();
    app->app().display().InjectKeyPress(xsim::AsciiToKeysym('w'));
    app->app().display().InjectKeyPress(xsim::kKeyShiftL);
    app->app().display().InjectKeyPress(xsim::AsciiToKeysym('!'), xsim::kShiftMask);
    app->app().ProcessPending();
  }
  if (captured != "198 w w\n174 Shift_L\n197 ! exclam\n") {
    state.SkipWithError("paper output mismatch");
  }
}
BENCHMARK(BM_PaperKeyEchoScenario);

void BM_TranslationMatchOnly(benchmark::State& state) {
  std::string error;
  xtk::TranslationsPtr table = xtk::ParseTranslations(
      "<EnterWindow>: highlight()\n"
      "<LeaveWindow>: reset()\n"
      "<Btn1Down>: set()\n"
      "<Btn1Up>: notify() unset()\n"
      "<KeyPress>: exec(echo %k)",
      &error);
  xsim::Event event;
  event.type = xsim::EventType::kKeyPress;
  event.keysym = xsim::AsciiToKeysym('q');
  for (auto _ : state) {
    const xtk::Production* p = table->Match(event);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_TranslationMatchOnly);

void BM_ParseTranslationTable(benchmark::State& state) {
  std::string error;
  for (auto _ : state) {
    auto table = xtk::ParseTranslations(
        "Shift<Key>Return: exec(echo shifted)\n"
        "<Key>Return: exec(echo [gV input string])\n"
        "<Btn3Down>: PopupMenu()",
        &error);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_ParseTranslationTable);

}  // namespace

WAFE_BENCH_MAIN();
