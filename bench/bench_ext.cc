// E14 — paper Figure 2 / §Comparison: extension widget sets (the Plotter bar
// and line graphs, the XmGraph-like layout widget) plug into Wafe through
// the same spec mechanism. Update rates and layout scaling.
#include "bench/bench_util.h"
#include "src/ext/plotter.h"

namespace {

void BM_BarGraphUpdate(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("barGraph bars topLevel width 200 height 60");
  app->Eval("realize");
  xtk::Widget* bars = app->app().FindWidget("bars");
  double v = 0;
  for (auto _ : state) {
    wext::PlotterAddSample(*bars, v);
    v = v < 100 ? v + 1 : 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BarGraphUpdate);

void BM_LineGraphRedraw(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("lineGraph line topLevel width 200 height 60");
  app->Eval("realize");
  xtk::Widget* line = app->app().FindWidget("line");
  std::vector<double> series;
  for (int i = 0; i < 200; ++i) {
    series.push_back(50 + 40 * ((i * 37) % 100) / 100.0);
  }
  wext::PlotterSetData(*line, series);
  for (auto _ : state) {
    app->app().Redraw(line);
  }
}
BENCHMARK(BM_LineGraphRedraw);

void BM_GraphLayoutVsNodes(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("graph g topLevel width 600 height 400");
  app->Eval("realize");
  xtk::Widget* g = app->app().FindWidget("g");
  const int nodes = static_cast<int>(state.range(0));
  wext::GraphClear(*g);
  for (int i = 1; i < nodes; ++i) {
    // A DAG: each node hangs under node i/2 (a binary-ish tree) with a few
    // cross edges.
    wext::GraphAddEdge(*g, "n" + std::to_string(i / 2), "n" + std::to_string(i));
    if (i % 5 == 0 && i > 5) {
      wext::GraphAddEdge(*g, "n" + std::to_string(i - 5), "n" + std::to_string(i));
    }
  }
  for (auto _ : state) {
    auto layout = wext::GraphLayout(*g);
    benchmark::DoNotOptimize(layout);
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_GraphLayoutVsNodes)->Arg(8)->Arg(64)->Arg(256);

void BM_GraphRedraw(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("graph g topLevel width 600 height 400");
  app->Eval("realize");
  xtk::Widget* g = app->app().FindWidget("g");
  for (int i = 1; i < 32; ++i) {
    wext::GraphAddEdge(*g, "n" + std::to_string(i / 2), "n" + std::to_string(i));
  }
  for (auto _ : state) {
    app->app().Redraw(g);
  }
}
BENCHMARK(BM_GraphRedraw);

void BM_StripChartThroughProtocol(benchmark::State& state) {
  // The xnetstats pattern: periodic samples arriving as protocol lines.
  auto app = std::make_unique<wafe::Wafe>();
  bench_util::ProtocolHarness harness(app.get());
  harness.Send("%stripChart chart topLevel width 200 height 50");
  harness.Send("%realize");
  harness.Pump();
  long v = 0;
  for (auto _ : state) {
    harness.Send("%stripChartAddValue chart " + std::to_string(v++ % 100));
    harness.Pump();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StripChartThroughProtocol);

}  // namespace

WAFE_BENCH_MAIN();
