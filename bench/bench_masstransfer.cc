// E5 — paper §Mass Transfer: bulk data (the paper's example arms a 100000
// byte transfer) moves over the dedicated mass channel without per-line
// parsing, vs. pushing the same bytes through the parsed %-command channel.
#include <unistd.h>

#include "bench/bench_util.h"

namespace {

void BM_MassChannelTransfer(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  auto app = std::make_unique<wafe::Wafe>();
  bench_util::ProtocolHarness harness(app.get());
  std::string error;
  if (!app->frontend().SetupMassChannel(&error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  int mass_fd = app->frontend().mass_channel_backend_fd();
  std::string payload(size, 'x');
  for (auto _ : state) {
    app->frontend().SetCommunicationVariable("C", size, "");
    std::size_t off = 0;
    while (off < payload.size()) {
      std::size_t chunk = std::min<std::size_t>(32768, payload.size() - off);
      ssize_t n = ::write(mass_fd, payload.data() + off, chunk);
      if (n <= 0) {
        state.SkipWithError("mass write failed");
        return;
      }
      off += static_cast<std::size_t>(n);
      harness.Pump();  // keep the pipe drained so the writer never blocks
    }
    while (app->frontend().mass_transfer_active()) {
      harness.Pump();
    }
  }
  state.SetBytesProcessed(static_cast<long>(size) * state.iterations());
}
BENCHMARK(BM_MassChannelTransfer)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_CommandChannelTransfer(benchmark::State& state) {
  // The same payload pushed as `append` commands over the parsed channel,
  // 1000 payload bytes per protocol line.
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  auto app = std::make_unique<wafe::Wafe>();
  bench_util::ProtocolHarness harness(app.get());
  const std::size_t per_line = 1000;
  std::string line = "%append C " + std::string(per_line, 'x');
  for (auto _ : state) {
    app->Eval("set C {}");
    std::size_t sent = 0;
    while (sent < size) {
      harness.Send(line);
      harness.Pump();
      sent += per_line;
    }
  }
  state.SetBytesProcessed(static_cast<long>(size) * state.iterations());
}
BENCHMARK(BM_CommandChannelTransfer)->Arg(1000)->Arg(100000);

void BM_ProtocolLineThroughput(benchmark::State& state) {
  // Baseline: plain protocol lines per second (no payload).
  auto app = std::make_unique<wafe::Wafe>();
  bench_util::ProtocolHarness harness(app.get());
  for (auto _ : state) {
    harness.Send("%set tick 1");
    harness.Pump();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtocolLineThroughput);

#ifdef WAFE_TEST_BACKEND
void BM_MassDribbleTransfer(benchmark::State& state) {
  // Slow producer: a forked backend dribbles the payload in small delayed
  // chunks. End-to-end latency is producer-bound; the point is that the
  // frontend's loop keeps turning between chunks instead of blocking in read.
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const long delay_us = state.range(1);
  for (auto _ : state) {
    wafe::Wafe app;
    app.set_backend_output(true);
    std::string error;
    if (!app.frontend().SpawnBackend(
            WAFE_TEST_BACKEND,
            {"massdribble", std::to_string(size), "4096",
             std::to_string(delay_us)}, &error)) {
      state.SkipWithError(error.c_str());
      return;
    }
    while (!app.quit_requested()) {
      app.app().RunOneIteration(true);
    }
    app.frontend().CloseBackend();
  }
  state.SetBytesProcessed(static_cast<long>(size) * state.iterations());
}
BENCHMARK(BM_MassDribbleTransfer)
    ->Args({100000, 0})
    ->Args({100000, 100})
    ->Unit(benchmark::kMillisecond);
#endif

}  // namespace

WAFE_BENCH_MAIN();
