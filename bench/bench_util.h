// Shared helpers for the experiment benches. Each bench binary regenerates
// one entry of the paper's evaluation index (see DESIGN.md / EXPERIMENTS.md).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/comm.h"
#include "src/core/wafe.h"

namespace bench_util {

// Runs the registered benchmarks, first rewriting a `--json PATH` (or
// `--json=PATH`) flag into google-benchmark's --benchmark_out /
// --benchmark_out_format pair, so every runner can emit the machine-readable
// report behind the committed BENCH_*.json files:
//   bench_resources --json BENCH_RESOURCES.json
inline void RunBenchmarks(int argc, char** argv) {
  std::vector<std::string> args;
  args.emplace_back(argc > 0 ? argv[0] : "bench");
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      args.push_back(std::move(arg));
    }
  }
  if (!json_path.empty()) {
    args.push_back("--benchmark_out=" + json_path);
    args.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (std::string& arg : args) {
    argv2.push_back(arg.data());
  }
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) {
    return;
  }
  benchmark::RunSpecifiedBenchmarks();
}

// A Wafe instance with a realized hello-world tree.
inline std::unique_ptr<wafe::Wafe> MakeRealizedWafe() {
  auto app = std::make_unique<wafe::Wafe>();
  app->Eval("label bench topLevel label benchmark");
  app->Eval("realize");
  return app;
}

// An in-process protocol harness: writes protocol bytes into Wafe the way a
// backend would and reads what Wafe sends back.
class ProtocolHarness {
 public:
  explicit ProtocolHarness(wafe::Wafe* app) : app_(app) {
    int to_wafe[2];
    int from_wafe[2];
    if (::pipe(to_wafe) != 0 || ::pipe(from_wafe) != 0) {
      return;
    }
    write_fd_ = to_wafe[1];
    read_fd_ = from_wafe[0];
    app_->set_backend_output(true);
    app_->frontend().AdoptBackend(to_wafe[0], from_wafe[1]);
  }

  ~ProtocolHarness() {
    ::close(write_fd_);
    ::close(read_fd_);
  }

  void Send(const std::string& line) {
    std::string out = line + "\n";
    ssize_t ignored = ::write(write_fd_, out.data(), out.size());
    (void)ignored;
  }

  void Pump() {
    while (app_->app().RunOneIteration(false)) {
    }
  }

  std::string Read() {
    char buffer[65536];
    ssize_t n = ::read(read_fd_, buffer, sizeof(buffer));
    return n > 0 ? std::string(buffer, static_cast<std::size_t>(n)) : std::string();
  }

  int write_fd() const { return write_fd_; }

 private:
  wafe::Wafe* app_;
  int write_fd_ = -1;
  int read_fd_ = -1;
};

}  // namespace bench_util

// Drop-in replacement for BENCHMARK_MAIN() with the --json flag wired in.
#define WAFE_BENCH_MAIN()                  \
  int main(int argc, char** argv) {        \
    bench_util::RunBenchmarks(argc, argv); \
    return 0;                              \
  }

#endif  // BENCH_BENCH_UTIL_H_
