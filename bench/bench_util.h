// Shared helpers for the experiment benches. Each bench binary regenerates
// one entry of the paper's evaluation index (see DESIGN.md / EXPERIMENTS.md).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <memory>
#include <string>

#include "src/core/comm.h"
#include "src/core/wafe.h"

namespace bench_util {

// A Wafe instance with a realized hello-world tree.
inline std::unique_ptr<wafe::Wafe> MakeRealizedWafe() {
  auto app = std::make_unique<wafe::Wafe>();
  app->Eval("label bench topLevel label benchmark");
  app->Eval("realize");
  return app;
}

// An in-process protocol harness: writes protocol bytes into Wafe the way a
// backend would and reads what Wafe sends back.
class ProtocolHarness {
 public:
  explicit ProtocolHarness(wafe::Wafe* app) : app_(app) {
    int to_wafe[2];
    int from_wafe[2];
    if (::pipe(to_wafe) != 0 || ::pipe(from_wafe) != 0) {
      return;
    }
    write_fd_ = to_wafe[1];
    read_fd_ = from_wafe[0];
    app_->set_backend_output(true);
    app_->frontend().AdoptBackend(to_wafe[0], from_wafe[1]);
  }

  ~ProtocolHarness() {
    ::close(write_fd_);
    ::close(read_fd_);
  }

  void Send(const std::string& line) {
    std::string out = line + "\n";
    ssize_t ignored = ::write(write_fd_, out.data(), out.size());
    (void)ignored;
  }

  void Pump() {
    while (app_->app().RunOneIteration(false)) {
    }
  }

  std::string Read() {
    char buffer[65536];
    ssize_t n = ::read(read_fd_, buffer, sizeof(buffer));
    return n > 0 ? std::string(buffer, static_cast<std::size_t>(n)) : std::string();
  }

  int write_fd() const { return write_fd_; }

 private:
  wafe::Wafe* app_;
  int write_fd_ = -1;
  int read_fd_ = -1;
};

}  // namespace bench_util

#endif  // BENCH_BENCH_UTIL_H_
