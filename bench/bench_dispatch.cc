// E2 — paper §Experiences: "from its performance a user cannot distinguish
// whether a widget application was developed using C or Wafe". Compares the
// cost of the same operation (updating a label resource) through three
// layers: the direct C++ (Xt) interface, the Tcl command layer, and the
// full frontend protocol (pipe + parse + eval). Human perception sits around
// 50-100 ms; all three layers must be orders of magnitude below that.
#include "bench/bench_util.h"

namespace {

void BM_DirectXtSetValues(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("label l topLevel width 120");
  xtk::Widget* l = app->app().FindWidget("l");
  std::string error;
  long i = 0;
  for (auto _ : state) {
    app->app().SetValues(l, {{"label", i++ % 2 ? "tick" : "tock"}}, &error);
  }
}
BENCHMARK(BM_DirectXtSetValues);

void BM_TclCommandSetValues(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("label l topLevel width 120");
  long i = 0;
  for (auto _ : state) {
    wtcl::Result r = app->Eval(i++ % 2 ? "sV l label tick" : "sV l label tock");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TclCommandSetValues);

void BM_ProtocolSetValues(benchmark::State& state) {
  auto app = std::make_unique<wafe::Wafe>();
  bench_util::ProtocolHarness harness(app.get());
  harness.Send("%label l topLevel width 120");
  harness.Send("%realize");
  harness.Pump();
  long i = 0;
  for (auto _ : state) {
    harness.Send(i++ % 2 ? "%sV l label tick" : "%sV l label tock");
    harness.Pump();
  }
  state.counters["lines"] = static_cast<double>(app->lines_evaluated());
}
BENCHMARK(BM_ProtocolSetValues);

void BM_DirectWidgetCreateDestroy(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  std::string error;
  for (auto _ : state) {
    xtk::Widget* w =
        app->app().CreateWidget("tmp", "Label", app->top_level(), {}, true, &error);
    app->app().DestroyWidget(w);
  }
}
BENCHMARK(BM_DirectWidgetCreateDestroy);

void BM_TclWidgetCreateDestroy(benchmark::State& state) {
  auto app = bench_util::MakeRealizedWafe();
  for (auto _ : state) {
    app->Eval("label tmp topLevel");
    app->Eval("destroyWidget tmp");
  }
}
BENCHMARK(BM_TclWidgetCreateDestroy);

void BM_ClickToCallbackLatency(benchmark::State& state) {
  // End-to-end: injected button press/release -> translation match ->
  // notify action -> Tcl callback script.
  auto app = bench_util::MakeRealizedWafe();
  app->Eval("command b topLevel callback {set hits 1}");
  app->Eval("realize");
  xtk::Widget* b = app->app().FindWidget("b");
  xsim::Point p = app->app().display().RootPosition(b->window());
  for (auto _ : state) {
    app->app().display().InjectButtonPress(p.x + 2, p.y + 2, 1);
    app->app().display().InjectButtonRelease(p.x + 2, p.y + 2, 1);
    app->app().ProcessPending();
  }
}
BENCHMARK(BM_ClickToCallbackLatency);

}  // namespace

WAFE_BENCH_MAIN();
